// Regenerates the golden regression corpus (invoked by
// scripts/regen_golden). Usage:
//
//     golden_tool --regen <dir>   write one .golden file per scenario
//     golden_tool --check <dir>   recompute and diff (exit 1 on drift)
//     golden_tool --list          print scenario names
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "golden_io.hpp"
#include "golden_scenarios.hpp"
#include "linalg/backend/backend.hpp"

int main(int argc, char** argv) {
  using namespace roarray::golden;
  // Regeneration always runs the scalar kernel table: the committed
  // record bytes must not depend on the build machine's vector units.
  // The test suite diffs against these records with per-field
  // tolerances, so it passes under any backend.
  roarray::linalg::backend::force(&roarray::linalg::backend::scalar());
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s --regen <dir> | --check <dir> | --list\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  if (mode == "--list") {
    for (const auto& s : golden_scenarios()) std::printf("%s\n", s.name.c_str());
    return 0;
  }
  if (argc < 3 || (mode != "--regen" && mode != "--check")) {
    std::fprintf(stderr, "usage: %s --regen <dir> | --check <dir> | --list\n",
                 argv[0]);
    return 2;
  }
  const std::string dir = argv[2];
  int failures = 0;
  for (const auto& s : golden_scenarios()) {
    const GoldenRecord rec = compute_golden(s);
    const std::string path = golden_file_path(dir, s.name);
    if (mode == "--regen") {
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      write_record(out, rec);
      out.flush();
      if (!out) {
        std::fprintf(stderr, "write failed for %s\n", path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
    } else {
      GoldenRecord committed;
      std::string error;
      if (!read_record(path, committed, error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        ++failures;
        continue;
      }
      std::string report;
      if (!diff_records(committed, rec, report)) {
        std::fprintf(stderr, "golden drift in %s:\n%s", s.name.c_str(),
                     report.c_str());
        ++failures;
      }
    }
  }
  if (mode == "--check") {
    std::printf("%d scenario(s) drifted\n", failures);
  }
  return failures == 0 ? 0 : 1;
}
