// Serve-layer properties.
//
// Differential: ShardedReplayMatchesSingleService — any generated
// workload pushed through ShardedService{k, dispatchers = 0} in
// deterministic pump/drain mode produces per-submission responses
// bit-identical to a single LocalizationService{dispatchers = 0} run
// of the same submissions, for k in {1, 2, 4}. Routing, admission
// order, work stealing, and batch grouping all vary with k; results
// must not (DESIGN.md §10 replay-determinism contract).
//
// Concurrent: randomized submitter threads against a dispatcher-mode
// ShardedService over a shared pool — the leg the TSan build
// instruments. Accounting invariants (callbacks == completions ==
// accepted net of transfers; transfer conservation) are checked after
// stop(); threads only touch atomics, never gtest asserts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "channel/csi.hpp"
#include "channel/multipath.hpp"
#include "proptest.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/service.hpp"
#include "serve/sharded.hpp"

namespace pt = roarray::proptest;

namespace roarray {
namespace {

/// Small per-shard configuration (mirrors tests/serve): coarse grids,
/// few iterations, two APs — one solve costs a few milliseconds.
serve::ServeConfig tiny_serve_config(int dispatchers) {
  serve::ServeConfig cfg;
  cfg.estimator.aoa_grid = dsp::Grid(0.0, 180.0, 19);
  cfg.estimator.toa_grid = dsp::Grid(0.0, 784e-9, 8);
  cfg.estimator.solver.max_iterations = 30;
  cfg.localize.grid_step_m = 0.5;
  cfg.ap_poses = {{{0.0, 6.0}, 90.0}, {{18.0, 6.0}, 90.0}};
  cfg.dispatchers = dispatchers;
  return cfg;
}

/// One clean-channel request; all case randomness is folded into
/// `seed` so the request can be re-synthesized identically in every
/// service run of the same case.
serve::Request seeded_request(std::uint64_t client_id, serve::Tick tick,
                              std::uint64_t seed) {
  channel::Path direct;
  direct.aoa_deg = 100.0;
  direct.toa_s = 60e-9;
  direct.gain = {1.0, 0.0};
  std::mt19937_64 rng(seed);
  serve::Request req;
  req.client_id = client_id;
  req.submit_tick = tick;
  for (std::uint32_t ap = 0; ap < 2; ++ap) {
    serve::ApSubmission sub;
    sub.ap_id = ap;
    linalg::CMat csi = channel::synthesize_csi({direct}, dsp::ArrayConfig{});
    (void)channel::add_noise(csi, 20.0, rng);
    sub.packets.push_back(std::move(csi));
    req.aps.push_back(std::move(sub));
  }
  return req;
}

/// Exact bit pattern of every numeric response field, in a fixed
/// order, so replays compare with operator==.
std::vector<std::uint64_t> response_bits(const serve::Response& r) {
  std::vector<std::uint64_t> bits;
  auto push_double = [&bits](double d) {
    std::uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(d));
    std::memcpy(&u, &d, sizeof(u));
    bits.push_back(u);
  };
  bits.push_back(static_cast<std::uint64_t>(r.status));
  bits.push_back(r.client_id);
  bits.push_back(r.location.valid ? 1u : 0u);
  push_double(r.location.position.x);
  push_double(r.location.position.y);
  push_double(r.location.cost);
  for (const serve::ApEstimate& ae : r.ap_estimates) {
    bits.push_back(ae.ap_id);
    bits.push_back(ae.valid ? 1u : 0u);
    push_double(ae.aoa_deg);
    push_double(ae.toa_s);
    push_double(ae.power);
    push_double(ae.weight);
  }
  return bits;
}

// ---------------------------------------------------------------------------
// Differential: sharded pump/drain replay vs the single service.

struct Submission {
  std::uint64_t client_id = 0;
  serve::Tick tick = 0;
  std::uint64_t seed = 0;
};

struct ServeWorkload {
  std::vector<Submission> subs;
  int pump_every = 2;        ///< pump() after every this-many submissions.
  int steal_min_backlog = 1;
};

pt::Gen<ServeWorkload> workload_gen() {
  return [](pt::Rng& rng) {
    ServeWorkload w;
    std::uniform_int_distribution<int> n_dist(1, 6);
    std::uniform_int_distribution<std::uint64_t> client_dist(0, 7);
    std::uniform_int_distribution<serve::Tick> gap_dist(0, 3);
    std::uniform_int_distribution<int> pump_dist(1, 4);
    std::uniform_int_distribution<int> backlog_dist(1, 3);
    const int n = n_dist(rng);
    serve::Tick tick = 0;
    for (int i = 0; i < n; ++i) {
      tick += gap_dist(rng);  // non-decreasing logical time
      w.subs.push_back({client_dist(rng), tick, rng()});
    }
    w.pump_every = pump_dist(rng);
    w.steal_min_backlog = backlog_dist(rng);
    return w;
  };
}

/// Shrink by dropping one submission at a time, then by pumping after
/// every submission (the simplest interleaving).
pt::Shrinker<ServeWorkload> workload_shrinker() {
  return [](const ServeWorkload& w) {
    std::vector<ServeWorkload> out;
    for (std::size_t i = 0; i < w.subs.size(); ++i) {
      ServeWorkload c = w;
      c.subs.erase(c.subs.begin() + static_cast<std::ptrdiff_t>(i));
      if (!c.subs.empty()) out.push_back(std::move(c));
    }
    if (w.pump_every != 1) {
      ServeWorkload c = w;
      c.pump_every = 1;
      out.push_back(std::move(c));
    }
    return out;
  };
}

pt::Show<ServeWorkload> workload_show() {
  return [](const ServeWorkload& w) {
    std::ostringstream os;
    os << "pump_every=" << w.pump_every
       << " steal_min_backlog=" << w.steal_min_backlog << " subs=[";
    for (const Submission& s : w.subs) {
      os << "(c" << s.client_id << ",t" << s.tick << ",s" << s.seed << ")";
    }
    os << "]";
    return os.str();
  };
}

/// Runs the workload through `svc` (single or sharded — same surface),
/// pumping at the workload's cadence, and returns the per-submission
/// fingerprints. Every submission must be accepted (queue capacities
/// are far above the generated sizes).
template <typename Service>
std::optional<std::string> run_workload(
    Service& svc, const ServeWorkload& w,
    std::vector<std::vector<std::uint64_t>>& slots) {
  slots.assign(w.subs.size(), {});
  for (std::size_t i = 0; i < w.subs.size(); ++i) {
    const Submission& s = w.subs[i];
    auto* slot = &slots[i];
    const serve::SubmitStatus st = svc.submit(
        seeded_request(s.client_id, s.tick, s.seed),
        [slot](const serve::Response& r) { *slot = response_bits(r); });
    if (st != serve::SubmitStatus::kAccepted) {
      return std::string("submission ") + std::to_string(i) + " rejected: " +
             serve::submit_status_name(st);
    }
    if ((i + 1) % static_cast<std::size_t>(w.pump_every) == 0) {
      (void)svc.pump();
    }
  }
  svc.drain();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].empty()) {
      return std::string("submission ") + std::to_string(i) +
             " never completed";
    }
  }
  return std::nullopt;
}

TEST(ServeProperties, ShardedReplayMatchesSingleService) {
  pt::CheckConfig cfg;
  cfg.cases = 6;  // each case runs 4 full service replays
  pt::check<ServeWorkload>(
      "sharded pump/drain replay is bit-identical to the single service",
      workload_gen(),
      [](const ServeWorkload& w) -> std::optional<std::string> {
        std::vector<std::vector<std::uint64_t>> reference;
        {
          serve::LocalizationService svc(tiny_serve_config(0));
          if (auto err = run_workload(svc, w, reference)) {
            return "single service: " + *err;
          }
        }
        for (const int k : {1, 2, 4}) {
          serve::ShardedConfig scfg;
          scfg.shard = tiny_serve_config(0);
          scfg.shards = k;
          scfg.steal_min_backlog = w.steal_min_backlog;
          serve::ShardedService svc(scfg);
          std::vector<std::vector<std::uint64_t>> got;
          if (auto err = run_workload(svc, w, got)) {
            return "shards=" + std::to_string(k) + ": " + *err;
          }
          for (std::size_t i = 0; i < reference.size(); ++i) {
            if (got[i] != reference[i]) {
              return "shards=" + std::to_string(k) + ": submission " +
                     std::to_string(i) +
                     " differs bitwise from the single-service result";
            }
          }
        }
        return std::nullopt;
      },
      workload_shrinker(), workload_show(), cfg);
}

// ---------------------------------------------------------------------------
// Concurrent submitters against dispatcher-mode shards (TSan target).

struct ConcurrentPlan {
  int submitters = 2;        ///< 2..3 threads.
  int per_thread = 2;        ///< 2..4 submissions each.
  int shards = 2;
  linalg::index_t admission_depth = 0;  ///< 0 = shed only at queue capacity.
  std::uint64_t seed = 1;
};

pt::Gen<ConcurrentPlan> concurrent_gen() {
  return [](pt::Rng& rng) {
    ConcurrentPlan p;
    std::uniform_int_distribution<int> threads_dist(2, 3);
    std::uniform_int_distribution<int> per_dist(2, 4);
    std::uniform_int_distribution<int> shards_dist(1, 3);
    std::uniform_int_distribution<int> depth_dist(0, 2);
    p.submitters = threads_dist(rng);
    p.per_thread = per_dist(rng);
    p.shards = shards_dist(rng);
    p.admission_depth = depth_dist(rng);
    p.seed = rng();
    return p;
  };
}

pt::Show<ConcurrentPlan> concurrent_show() {
  return [](const ConcurrentPlan& p) {
    std::ostringstream os;
    os << "submitters=" << p.submitters << " per_thread=" << p.per_thread
       << " shards=" << p.shards << " admission_depth=" << p.admission_depth
       << " seed=" << p.seed;
    return os.str();
  };
}

TEST(ServeProperties, ConcurrentShardedSubmitAccountsForEveryRequest) {
  pt::CheckConfig cfg;
  cfg.cases = 4;  // each case spawns threads and real dispatcher shards
  pt::check<ConcurrentPlan>(
      "concurrent sharded submit: exactly-once callbacks and conserved "
      "transfer accounting",
      concurrent_gen(),
      [](const ConcurrentPlan& p) -> std::optional<std::string> {
        serve::ShardedConfig scfg;
        scfg.shard = tiny_serve_config(1);
        scfg.shard.queue_capacity = 64;
        scfg.shards = p.shards;
        scfg.admission_depth = p.admission_depth;
        runtime::ThreadPool pool(2);

        // Pre-synthesize every request so submitter threads only move
        // data and touch atomics.
        std::vector<std::vector<serve::Request>> plans(
            static_cast<std::size_t>(p.submitters));
        for (int t = 0; t < p.submitters; ++t) {
          for (int i = 0; i < p.per_thread; ++i) {
            const auto id =
                static_cast<std::uint64_t>(t * p.per_thread + i);
            plans[static_cast<std::size_t>(t)].push_back(seeded_request(
                id, static_cast<serve::Tick>(i), p.seed + id));
          }
        }

        std::atomic<std::uint64_t> accepted{0};
        std::atomic<std::uint64_t> shed{0};
        std::atomic<std::uint64_t> callbacks{0};
        std::atomic<std::uint64_t> unexpected{0};
        serve::ShardedService svc(scfg, &pool);
        {
          std::vector<std::thread> threads;
          for (int t = 0; t < p.submitters; ++t) {
            threads.emplace_back([&, t] {
              for (serve::Request& req : plans[static_cast<std::size_t>(t)]) {
                const auto st = svc.submit(
                    std::move(req), [&callbacks](const serve::Response&) {
                      callbacks.fetch_add(1, std::memory_order_relaxed);
                    });
                if (st == serve::SubmitStatus::kAccepted) {
                  accepted.fetch_add(1, std::memory_order_relaxed);
                } else if (st == serve::SubmitStatus::kQueueFull) {
                  shed.fetch_add(1, std::memory_order_relaxed);
                } else {
                  unexpected.fetch_add(1, std::memory_order_relaxed);
                }
              }
            });
          }
          for (auto& t : threads) t.join();
        }
        svc.stop();

        const auto total =
            static_cast<std::uint64_t>(p.submitters * p.per_thread);
        if (unexpected.load() != 0) {
          return "submit returned a status other than accepted/queue-full";
        }
        if (accepted.load() + shed.load() != total) {
          return "accepted + shed != submitted";
        }
        if (callbacks.load() != accepted.load()) {
          return "callbacks (" + std::to_string(callbacks.load()) +
                 ") != accepted (" + std::to_string(accepted.load()) + ")";
        }
        const serve::ShardedStats stats = svc.stats();
        if (stats.aggregate.accepted != accepted.load()) {
          return "aggregate.accepted disagrees with the submitters";
        }
        if (stats.aggregate.completed_ok +
                stats.aggregate.completed_no_observations !=
            accepted.load()) {
          return "aggregate completions != accepted";
        }
        if (stats.aggregate.transferred_in != stats.aggregate.transferred_out) {
          return "transfer accounting not conserved across shards";
        }
        if (stats.aggregate.transferred_out != stats.stolen_requests) {
          return "router stolen_requests disagrees with shard transfers";
        }
        // Per-shard quiescence: completed == accepted net of transfers.
        for (std::size_t s = 0; s < stats.per_shard.size(); ++s) {
          const serve::ServiceStats& st = stats.per_shard[s];
          if (st.completed_ok + st.completed_no_observations !=
              st.accepted - st.transferred_out + st.transferred_in) {
            return "shard " + std::to_string(s) +
                   " completion accounting broken";
          }
        }
        return std::nullopt;
      },
      /*shrink=*/{}, concurrent_show(), cfg);
}

}  // namespace
}  // namespace roarray
