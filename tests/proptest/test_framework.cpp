// Self-tests for the property-testing framework itself: generator
// determinism, shrink convergence, the seed-reproduction contract, and
// the environment knobs. These guard the harness every other proptest
// suite stands on.
#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "generators.hpp"
#include "proptest.hpp"
#include "runtime/seed.hpp"

namespace pt = roarray::proptest;

namespace {

/// Restores (or clears) one environment variable on scope exit so tests
/// that exercise the env knobs cannot leak state into later tests.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* v = std::getenv(name);
    if (v != nullptr) saved_ = v;
  }
  EnvGuard(const char* name, const std::string& value) : EnvGuard(name) {
    ::setenv(name_.c_str(), value.c_str(), 1);
  }
  ~EnvGuard() {
    if (saved_) {
      ::setenv(name_.c_str(), saved_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::string name_;
  std::optional<std::string> saved_;
};

TEST(ProptestFramework, GeneratorsAreDeterministicPerSeed) {
  const auto gen = pt::in_range(-5.0, 5.0);
  pt::Rng a(123);
  pt::Rng b(123);
  pt::Rng c(124);
  const double va = gen(a);
  const double vb = gen(b);
  const double vc = gen(c);
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(ProptestFramework, DerivedCaseSeedsDifferAcrossCases) {
  const std::uint64_t s0 = roarray::runtime::derive_seed(7, 0);
  const std::uint64_t s1 = roarray::runtime::derive_seed(7, 1);
  const std::uint64_t t0 = roarray::runtime::derive_seed(8, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, t0);
}

TEST(ProptestFramework, PassingPropertyReportsNoFailure) {
  const bool ok = pt::check<double>(
      "abs is non-negative", pt::in_range(-100.0, 100.0),
      [](const double& v) -> std::optional<std::string> {
        if (std::abs(v) >= 0.0) return std::nullopt;
        return "negative abs";
      });
  EXPECT_TRUE(ok);
}

TEST(ProptestFramework, IntShrinkConvergesToMinimalCounterexample) {
  // Property "x < 10" fails for any generated x >= 10; greedy shrinking
  // toward 0 must land exactly on the boundary value 10.
  int shrunk_to = -1;
  EXPECT_NONFATAL_FAILURE(
      {
        pt::check<int>(
            "small ints", pt::int_in_range(500, 1000),
            [&](const int& v) -> std::optional<std::string> {
              if (v < 10) return std::nullopt;
              shrunk_to = v;
              return "x >= 10";
            },
            [](const int& v) { return pt::shrink_int(v, 0); });
      },
      "ROARRAY_PROPTEST_SEED=");
  EXPECT_EQ(shrunk_to, 10);
}

TEST(ProptestFramework, VectorShrinkDropsToSingleOffendingElement) {
  // Failure = "contains an element >= 50". The minimal counterexample is
  // the one-element vector {50}.
  std::vector<int> last;
  EXPECT_NONFATAL_FAILURE(
      {
        pt::Shrinker<int> elem = [](const int& v) {
          return pt::shrink_int(v, 0);
        };
        pt::check<std::vector<int>>(
            "vectors stay small",
            pt::vector_of(pt::int_in_range(3, 8), pt::int_in_range(60, 90)),
            [&](const std::vector<int>& v) -> std::optional<std::string> {
              for (int x : v) {
                if (x >= 50) {
                  last = v;
                  return "element >= 50";
                }
              }
              return std::nullopt;
            },
            [elem](const std::vector<int>& v) {
              return pt::shrink_vector(v, elem);
            });
      },
      "falsified");
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0], 50);
}

TEST(ProptestFramework, FailureReportCarriesReproducibleSeedLine) {
  // Capture the failure message, extract the seed, and replay it: the
  // replayed case must regenerate the identical pre-shrink value.
  double failing_value = 0.0;
  const pt::Gen<double> gen = pt::in_range(10.0, 20.0);
  const pt::Property<double> prop =
      [&](const double& v) -> std::optional<std::string> {
    failing_value = v;
    return "always fails";
  };

  testing::TestPartResultArray failures;
  {
    testing::ScopedFakeTestPartResultReporter reporter(
        testing::ScopedFakeTestPartResultReporter::INTERCEPT_ONLY_CURRENT_THREAD,
        &failures);
    pt::check<double>("always fails", gen, prop);
  }
  ASSERT_EQ(failures.size(), 1);
  const std::string msg = failures.GetTestPartResult(0).message();
  const auto pos = msg.find("ROARRAY_PROPTEST_SEED=");
  ASSERT_NE(pos, std::string::npos) << msg;
  const std::uint64_t seed =
      std::strtoull(msg.c_str() + pos + std::string("ROARRAY_PROPTEST_SEED=").size(),
                    nullptr, 10);
  const double original = failing_value;

  // Replay: env set, one case, same seed -> same generated value.
  EnvGuard guard("ROARRAY_PROPTEST_SEED", std::to_string(seed));
  testing::TestPartResultArray replay_failures;
  {
    testing::ScopedFakeTestPartResultReporter reporter(
        testing::ScopedFakeTestPartResultReporter::INTERCEPT_ONLY_CURRENT_THREAD,
        &replay_failures);
    pt::check<double>("always fails", gen, prop);
  }
  ASSERT_EQ(replay_failures.size(), 1);
  EXPECT_EQ(failing_value, original);
}

TEST(ProptestFramework, ExceptionsAreFoldedIntoFailures) {
  EXPECT_NONFATAL_FAILURE(
      {
        pt::check<int>("throws", pt::int_in_range(1, 5),
                       [](const int&) -> std::optional<std::string> {
                         throw std::runtime_error("boom");
                       });
      },
      "unhandled exception: boom");
}

TEST(ProptestFramework, CasesEnvOverridesCaseCount) {
  EnvGuard guard("ROARRAY_PROPTEST_CASES", "5");
  int invocations = 0;
  pt::check<int>("count cases", pt::int_in_range(0, 100),
                 [&](const int&) -> std::optional<std::string> {
                   ++invocations;
                   return std::nullopt;
                 });
  EXPECT_EQ(invocations, 5);
}

TEST(ProptestFramework, BaseSeedEnvChangesGeneratedStream) {
  std::vector<double> first;
  std::vector<double> second;
  auto collect = [](std::vector<double>& sink) {
    return [&sink](const double& v) -> std::optional<std::string> {
      sink.push_back(v);
      return std::nullopt;
    };
  };
  {
    EnvGuard guard("ROARRAY_PROPTEST_BASE_SEED", "101");
    pt::check<double>("stream A", pt::in_range(0.0, 1.0), collect(first));
  }
  {
    EnvGuard guard("ROARRAY_PROPTEST_BASE_SEED", "202");
    pt::check<double>("stream B", pt::in_range(0.0, 1.0), collect(second));
  }
  ASSERT_EQ(first.size(), second.size());
  EXPECT_NE(first, second);
}

TEST(ProptestFramework, TimeBudgetStopsStartingNewCases) {
  EnvGuard cases("ROARRAY_PROPTEST_CASES", "100000");
  EnvGuard budget("ROARRAY_PROPTEST_TIME_MS", "20");
  int invocations = 0;
  pt::check<int>("slow cases", pt::int_in_range(0, 10),
                 [&](const int&) -> std::optional<std::string> {
                   ++invocations;
                   std::this_thread::sleep_for(std::chrono::milliseconds(5));
                   return std::nullopt;
                 });
  EXPECT_GE(invocations, 1);
  EXPECT_LT(invocations, 100000);
}

TEST(ProptestFramework, DoubleShrinkReachesTargetWhenTargetFails) {
  // If the target itself falsifies the property, shrinking must reach it
  // in one step (the target is proposed first).
  double last = -1.0;
  EXPECT_NONFATAL_FAILURE(
      {
        pt::check<double>(
            "never zero", pt::in_range(5.0, 9.0),
            [&](const double& v) -> std::optional<std::string> {
              last = v;
              return "all values fail";
            },
            [](const double& v) { return pt::shrink_double(v, 0.0); });
      },
      "falsified");
  EXPECT_EQ(last, 0.0);
}

TEST(ProptestFramework, DomainGeneratorsProduceValidObjects) {
  pt::Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const auto cfg = pt::gen_array_config(rng);
    EXPECT_NO_THROW(cfg.validate());
    const auto toa = pt::gen_toa_grid(cfg, rng);
    EXPECT_LE(toa.hi(), cfg.max_unambiguous_toa_s());
    const auto s = pt::gen_fuzz_scenario(rng);
    EXPECT_TRUE(s.room().contains(s.ap.position));
    EXPECT_TRUE(s.room().contains(s.client));
    EXPECT_GE(roarray::channel::distance(s.client, s.ap.position), 1.0);
    for (const auto& sc : s.scatterers) {
      EXPECT_TRUE(s.room().contains(sc));
    }
  }
}

TEST(ProptestFramework, ScenarioShrinkerMovesTowardSimplestScene) {
  pt::Rng rng(7);
  pt::FuzzScenario s = pt::gen_fuzz_scenario(rng);
  s.scatterers = {{1.0, 1.0}, {2.0, 2.0}};
  s.num_packets = 4;
  s.max_reflections = 2;
  // Greedy shrink with an always-failing property must terminate at the
  // simplest scene the shrinker can express.
  const auto shrink = pt::shrink_fuzz_scenario();
  const pt::Property<pt::FuzzScenario> always_fail =
      [](const pt::FuzzScenario&) -> std::optional<std::string> {
    return "fail";
  };
  std::string msg = "fail";
  pt::detail::shrink_to_minimal(shrink, always_fail, s, msg, 1000);
  EXPECT_TRUE(s.scatterers.empty());
  EXPECT_EQ(s.num_packets, 1);
  EXPECT_EQ(s.max_reflections, 0);
  EXPECT_EQ(s.max_detection_delay_s, 0.0);
  EXPECT_EQ(s.path_phase_jitter_rad, 0.0);
  EXPECT_EQ(s.snr_db, 30.0);
}

}  // namespace
