// Domain generators and shrinkers for the ROArray property suites:
// random array front-ends, search grids, linear operators, multipath
// scenes, and full end-to-end scenarios (room + AP + client + burst).
//
// Everything here draws exclusively from the proptest RNG, so a case is
// fully determined by its seed. Shrinkers move toward the simplest
// member of each domain (fewest antennas/paths/packets, cleanest
// channel) so minimal counterexamples stay human-readable.
#pragma once

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "channel/csi.hpp"
#include "channel/geometry.hpp"
#include "channel/multipath.hpp"
#include "dsp/constants.hpp"
#include "dsp/grid.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "proptest.hpp"

namespace roarray::proptest {

using linalg::CMat;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

// ---------------------------------------------------------------------------
// Linear-algebra generators.

inline cxd gen_cxd(Rng& rng) {
  std::normal_distribution<double> n(0.0, 1.0);
  return {n(rng), n(rng)};
}

inline CVec gen_cvec(index_t n, Rng& rng) {
  CVec v(n);
  for (index_t i = 0; i < n; ++i) v[i] = gen_cxd(rng);
  return v;
}

inline CMat gen_cmat(index_t rows, index_t cols, Rng& rng) {
  CMat m(rows, cols);
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i) m(i, j) = gen_cxd(rng);
  return m;
}

// ---------------------------------------------------------------------------
// Front-end / grid generators.

/// Random but physically valid front end: 2-4 antennas, 8-30 reported
/// subcarriers, spacing at most lambda/2 (never aliased).
inline dsp::ArrayConfig gen_array_config(Rng& rng) {
  dsp::ArrayConfig cfg;
  cfg.num_antennas = std::uniform_int_distribution<index_t>(2, 4)(rng);
  cfg.num_subcarriers = std::uniform_int_distribution<index_t>(8, 30)(rng);
  cfg.antenna_spacing_m =
      cfg.wavelength_m *
      std::uniform_real_distribution<double>(0.25, 0.5)(rng);
  cfg.subcarrier_spacing_hz =
      std::uniform_real_distribution<double>(0.3e6, 1.25e6)(rng);
  return cfg;
}

/// AoA grid over [0, 180] degrees with 21-61 points.
inline dsp::Grid gen_aoa_grid(Rng& rng) {
  const index_t n = std::uniform_int_distribution<index_t>(21, 61)(rng);
  return dsp::Grid(0.0, 180.0, n);
}

/// ToA grid covering the front end's unambiguous delay range with 11-31
/// points (the grid must not exceed 1/f_delta or columns alias).
inline dsp::Grid gen_toa_grid(const dsp::ArrayConfig& cfg, Rng& rng) {
  const index_t n = std::uniform_int_distribution<index_t>(11, 31)(rng);
  return dsp::Grid(0.0, 0.98 * cfg.max_unambiguous_toa_s(), n);
}

// ---------------------------------------------------------------------------
// Operator generators (adjoint / Kronecker-vs-dense properties).

/// Factor sizes for a Kronecker operator; deliberately non-square and
/// small enough that the dense reference stays cheap.
struct KronSizes {
  index_t m = 2;    ///< left rows (antennas).
  index_t nl = 3;   ///< left cols (AoA grid).
  index_t l = 2;    ///< right rows (subcarriers).
  index_t nr = 3;   ///< right cols (ToA grid).
  index_t k = 1;    ///< snapshot columns for the _mat paths.
};

inline KronSizes gen_kron_sizes(Rng& rng) {
  KronSizes s;
  s.m = std::uniform_int_distribution<index_t>(1, 5)(rng);
  s.nl = std::uniform_int_distribution<index_t>(1, 7)(rng);
  s.l = std::uniform_int_distribution<index_t>(1, 5)(rng);
  s.nr = std::uniform_int_distribution<index_t>(1, 7)(rng);
  s.k = std::uniform_int_distribution<index_t>(1, 4)(rng);
  return s;
}

inline Shrinker<KronSizes> shrink_kron_sizes();

/// A complete operator test case: random non-square Kronecker factors
/// plus matching random probe vectors / snapshot blocks. Data is
/// regenerated deterministically from `data_seed` whenever the sizes
/// shrink, so shrinking the structure keeps the case self-consistent.
struct KronCase {
  KronSizes sizes;
  std::uint64_t data_seed = 0;

  [[nodiscard]] CMat left() const {
    Rng rng(data_seed);
    return gen_cmat(sizes.m, sizes.nl, rng);
  }
  [[nodiscard]] CMat right() const {
    Rng rng(runtime::mix_seed(data_seed));
    return gen_cmat(sizes.l, sizes.nr, rng);
  }
  [[nodiscard]] CVec x() const {
    Rng rng(runtime::derive_seed(data_seed, 2));
    return gen_cvec(sizes.nl * sizes.nr, rng);
  }
  [[nodiscard]] CVec y() const {
    Rng rng(runtime::derive_seed(data_seed, 3));
    return gen_cvec(sizes.m * sizes.l, rng);
  }
  [[nodiscard]] CMat x_mat() const {
    Rng rng(runtime::derive_seed(data_seed, 4));
    return gen_cmat(sizes.nl * sizes.nr, sizes.k, rng);
  }
  [[nodiscard]] CMat y_mat() const {
    Rng rng(runtime::derive_seed(data_seed, 5));
    return gen_cmat(sizes.m * sizes.l, sizes.k, rng);
  }
};

inline KronCase gen_kron_case(Rng& rng) {
  KronCase c;
  c.sizes = gen_kron_sizes(rng);
  c.data_seed = rng();
  return c;
}

inline Shrinker<KronCase> shrink_kron_case() {
  return [](const KronCase& c) {
    std::vector<KronCase> out;
    for (const KronSizes& s : shrink_kron_sizes()(c.sizes)) {
      out.push_back(KronCase{s, c.data_seed});
    }
    return out;
  };
}

inline std::string show_kron_case(const KronCase& c);

inline Shrinker<KronSizes> shrink_kron_sizes() {
  return [](const KronSizes& s) {
    std::vector<KronSizes> out;
    auto push_dim = [&](index_t KronSizes::* dim, index_t floor) {
      for (int cand : shrink_int(static_cast<int>(s.*dim),
                                 static_cast<int>(floor))) {
        KronSizes c = s;
        c.*dim = cand;
        out.push_back(c);
      }
    };
    push_dim(&KronSizes::m, 1);
    push_dim(&KronSizes::nl, 1);
    push_dim(&KronSizes::l, 1);
    push_dim(&KronSizes::nr, 1);
    push_dim(&KronSizes::k, 1);
    return out;
  };
}

inline std::string show_kron_sizes(const KronSizes& s) {
  std::ostringstream os;
  os << "left " << s.m << "x" << s.nl << ", right " << s.l << "x" << s.nr
     << ", snapshots " << s.k;
  return os.str();
}

inline std::string show_kron_case(const KronCase& c) {
  std::ostringstream os;
  os << show_kron_sizes(c.sizes) << ", data_seed " << c.data_seed;
  return os.str();
}

// ---------------------------------------------------------------------------
// Scene / end-to-end scenario generators.

/// One fuzzed end-to-end localization scene: a room, an AP pose, a
/// client position, scatterers, and the capture parameters of one burst.
/// The property suites trace paths / synthesize CSI / run the estimator
/// from exactly these fields, so the scene is the whole case.
struct FuzzScenario {
  double room_w = 10.0;
  double room_h = 8.0;
  channel::ApPose ap;
  channel::Vec2 client;
  std::vector<channel::Vec2> scatterers;
  int max_reflections = 1;
  int num_packets = 2;
  double snr_db = 25.0;
  double max_detection_delay_s = 0.0;
  double path_phase_jitter_rad = 0.0;
  /// Seed for the burst's noise / delay draws; properties seed a fresh
  /// Rng from it so the whole case stays a pure function of the scene.
  std::uint64_t burst_seed = 1;

  [[nodiscard]] channel::Room room() const {
    return channel::Room{room_w, room_h};
  }

  [[nodiscard]] channel::MultipathConfig multipath() const {
    channel::MultipathConfig mp;
    mp.max_reflections = max_reflections;
    mp.reflection_loss = 0.55;
    mp.min_rel_amplitude = 0.1;
    return mp;
  }

  [[nodiscard]] channel::BurstConfig burst_config() const {
    channel::BurstConfig bc;
    bc.num_packets = num_packets;
    bc.snr_db = snr_db;
    bc.max_detection_delay_s = max_detection_delay_s;
    bc.path_phase_jitter_rad = path_phase_jitter_rad;
    return bc;
  }
};

/// Uniform point inside the room, `margin` away from every wall.
inline channel::Vec2 gen_point_in_room(double w, double h, double margin,
                                       Rng& rng) {
  std::uniform_real_distribution<double> px(margin, w - margin);
  std::uniform_real_distribution<double> py(margin, h - margin);
  return {px(rng), py(rng)};
}

inline FuzzScenario gen_fuzz_scenario(Rng& rng) {
  FuzzScenario s;
  s.room_w = std::uniform_real_distribution<double>(6.0, 18.0)(rng);
  s.room_h = std::uniform_real_distribution<double>(5.0, 12.0)(rng);
  s.ap.position = gen_point_in_room(s.room_w, s.room_h, 0.5, rng);
  s.ap.axis_deg = std::uniform_real_distribution<double>(0.0, 180.0)(rng);
  // Keep the client away from the AP so the direct bearing is well
  // defined and path lengths stay non-degenerate.
  do {
    s.client = gen_point_in_room(s.room_w, s.room_h, 1.0, rng);
  } while (channel::distance(s.client, s.ap.position) < 1.0);
  const int nscat = std::uniform_int_distribution<int>(0, 2)(rng);
  for (int i = 0; i < nscat; ++i) {
    s.scatterers.push_back(gen_point_in_room(s.room_w, s.room_h, 0.3, rng));
  }
  s.max_reflections = std::uniform_int_distribution<int>(0, 2)(rng);
  s.num_packets = std::uniform_int_distribution<int>(1, 4)(rng);
  s.snr_db = std::uniform_real_distribution<double>(15.0, 30.0)(rng);
  s.max_detection_delay_s =
      std::uniform_real_distribution<double>(0.0, 100e-9)(rng);
  s.path_phase_jitter_rad =
      std::uniform_real_distribution<double>(0.0, 0.3)(rng);
  s.burst_seed = rng();
  return s;
}

/// Shrinks toward the simplest scene: direct path only, one clean
/// high-SNR packet, no scatterers, no detection delay or jitter.
inline Shrinker<FuzzScenario> shrink_fuzz_scenario() {
  return [](const FuzzScenario& s) {
    std::vector<FuzzScenario> out;
    auto with = [&](auto&& mutate) {
      FuzzScenario c = s;
      mutate(c);
      out.push_back(std::move(c));
    };
    if (!s.scatterers.empty()) {
      with([](FuzzScenario& c) { c.scatterers.clear(); });
      with([](FuzzScenario& c) { c.scatterers.pop_back(); });
    }
    for (int r : shrink_int(s.max_reflections, 0)) {
      with([r](FuzzScenario& c) { c.max_reflections = r; });
    }
    for (int p : shrink_int(s.num_packets, 1)) {
      with([p](FuzzScenario& c) { c.num_packets = p; });
    }
    if (s.max_detection_delay_s != 0.0) {
      with([](FuzzScenario& c) { c.max_detection_delay_s = 0.0; });
    }
    if (s.path_phase_jitter_rad != 0.0) {
      with([](FuzzScenario& c) { c.path_phase_jitter_rad = 0.0; });
    }
    for (double v : shrink_double(s.snr_db, 30.0)) {
      with([v](FuzzScenario& c) { c.snr_db = v; });
    }
    for (double v : shrink_double(s.ap.axis_deg, 0.0)) {
      with([v](FuzzScenario& c) { c.ap.axis_deg = v; });
    }
    return out;
  };
}

inline std::string show_fuzz_scenario(const FuzzScenario& s) {
  std::ostringstream os;
  os.precision(4);
  os << "room " << s.room_w << "x" << s.room_h << " m, AP ("
     << s.ap.position.x << ", " << s.ap.position.y << ") axis "
     << s.ap.axis_deg << " deg, client (" << s.client.x << ", " << s.client.y
     << "), " << s.scatterers.size() << " scatterer(s)";
  for (const auto& sc : s.scatterers) {
    os << " (" << sc.x << ", " << sc.y << ")";
  }
  os << ", refl "
     << s.max_reflections << ", " << s.num_packets << " pkt, snr "
     << s.snr_db << " dB, delay<=" << s.max_detection_delay_s * 1e9
     << " ns, jitter " << s.path_phase_jitter_rad << " rad";
  return os.str();
}

}  // namespace roarray::proptest
