// Differential oracles and metamorphic relations over fuzzed inputs.
//
// Differential: two independent implementations must agree —
//   * FISTA and ADMM minimize the same l1 objective (compared by
//     objective value at a shared explicit kappa; the minimizer itself
//     need not be unique);
//   * the Kronecker operator matches its materialized dense matrix on
//     random non-square sizes;
//   * sparse recovery, MUSIC, and SpotFi agree on high-SNR scenes with
//     well-separated paths.
//
// Metamorphic: a known input transformation must produce a known output
// transformation —
//   * a global CSI phase shift leaves the AoA spectrum invariant;
//   * rotating the array axis rotates every path's AoA (folded to the
//     ULA range) and nothing else;
//   * a uniform detection-delay shift translates the ToA estimate;
//   * permuting the packets of a burst leaves the l1-SVD fusion fixed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "channel/csi.hpp"
#include "channel/multipath.hpp"
#include "core/roarray.hpp"
#include "dsp/angles.hpp"
#include "generators.hpp"
#include "loc/localize.hpp"
#include "music/covariance.hpp"
#include "music/music.hpp"
#include "music/spotfi.hpp"
#include "proptest.hpp"
#include "linalg/backend/backend.hpp"
#include "linalg/gemm.hpp"
#include "sparse/admm.hpp"
#include "sparse/fista.hpp"
#include "sparse/operator.hpp"
#include "sparse/prox.hpp"

namespace pt = roarray::proptest;
using roarray::channel::Path;
using roarray::linalg::CMat;
using roarray::linalg::CVec;
using roarray::linalg::cxd;
using roarray::linalg::index_t;

namespace {

// ---------------------------------------------------------------------------
// A controlled two-path scene: high SNR, well-separated AoA and ToA, so
// every estimator in the repo should find (at least) the direct path.

struct TwoPathScene {
  double aoa1_deg = 60.0;   ///< direct path.
  double aoa2_deg = 110.0;  ///< reflection, >= 30 deg away from aoa1.
  double toa1_ns = 60.0;
  double toa_gap_ns = 150.0;
  double rel_amp = 0.5;     ///< reflection amplitude relative to direct.
  double phase2 = 1.0;      ///< reflection phase [rad].
  int num_packets = 3;
  std::uint64_t noise_seed = 1;

  [[nodiscard]] std::vector<Path> paths() const {
    Path direct;
    direct.aoa_deg = aoa1_deg;
    direct.toa_s = toa1_ns * 1e-9;
    direct.gain = cxd{1.0, 0.0};
    direct.reflections = 0;
    Path bounce;
    bounce.aoa_deg = aoa2_deg;
    bounce.toa_s = (toa1_ns + toa_gap_ns) * 1e-9;
    bounce.gain = std::polar(rel_amp, phase2);
    bounce.reflections = 1;
    return {direct, bounce};
  }
};

pt::Gen<TwoPathScene> gen_two_path_scene() {
  return [](pt::Rng& rng) {
    TwoPathScene s;
    s.aoa1_deg = std::uniform_real_distribution<double>(25.0, 115.0)(rng);
    s.aoa2_deg =
        s.aoa1_deg + std::uniform_real_distribution<double>(30.0, 55.0)(rng);
    s.toa1_ns = std::uniform_real_distribution<double>(30.0, 120.0)(rng);
    s.toa_gap_ns = std::uniform_real_distribution<double>(120.0, 250.0)(rng);
    s.rel_amp = std::uniform_real_distribution<double>(0.3, 0.6)(rng);
    s.phase2 = std::uniform_real_distribution<double>(0.0, 6.28)(rng);
    s.num_packets = std::uniform_int_distribution<int>(2, 4)(rng);
    s.noise_seed = rng();
    return s;
  };
}

std::string show_two_path_scene(const TwoPathScene& s) {
  std::ostringstream os;
  os.precision(4);
  os << "aoa " << s.aoa1_deg << "/" << s.aoa2_deg << " deg, toa " << s.toa1_ns
     << "/+" << s.toa_gap_ns << " ns, rel_amp " << s.rel_amp << ", phase2 "
     << s.phase2 << ", pkts " << s.num_packets << ", noise_seed "
     << s.noise_seed;
  return os.str();
}

/// Reduced grids shared by the estimator-level differential checks.
const roarray::dsp::Grid kAoaGrid(0.0, 180.0, 61);
const roarray::dsp::Grid kToaGrid(0.0, 784e-9, 29);

roarray::channel::PacketBurst make_burst(const TwoPathScene& s,
                                         const roarray::dsp::ArrayConfig& array,
                                         double snr_db = 30.0,
                                         double max_delay_s = 0.0) {
  roarray::channel::BurstConfig bc;
  bc.num_packets = s.num_packets;
  bc.snr_db = snr_db;
  bc.max_detection_delay_s = max_delay_s;
  pt::Rng rng(s.noise_seed);
  return roarray::channel::generate_burst(s.paths(), array, bc, rng);
}

roarray::core::RoArrayConfig scene_estimator_config() {
  roarray::core::RoArrayConfig cfg;
  cfg.aoa_grid = kAoaGrid;
  cfg.toa_grid = kToaGrid;
  cfg.solver.max_iterations = 150;
  cfg.sanitize = false;  // scenes carry no detection delay unless stated.
  return cfg;
}

// ---------------------------------------------------------------------------
// Differential oracles.

TEST(ProptestDifferential, FistaAndAdmmReachTheSameObjective) {
  pt::CheckConfig cfg;
  cfg.cases = 12;
  pt::check<pt::KronCase>(
      "FISTA and ADMM objective values agree at a shared kappa",
      pt::gen_kron_case,
      [](const pt::KronCase& c) -> std::optional<std::string> {
        const roarray::sparse::KroneckerOperator op(c.left(), c.right());
        const CVec y = c.y();
        const double kappa = 0.3 * roarray::sparse::kappa_max(op, y);
        if (kappa <= 0.0) return std::nullopt;  // degenerate: x = 0 for all.

        roarray::sparse::SolveConfig fcfg;
        fcfg.kappa = kappa;
        fcfg.max_iterations = 800;
        fcfg.tolerance = 1e-10;
        const auto fr = roarray::sparse::solve_l1(op, y, fcfg);

        roarray::sparse::AdmmConfig acfg;
        acfg.kappa = kappa;
        acfg.max_iterations = 800;
        acfg.tolerance = 1e-10;
        // rho on the problem's scale: for a weak random operator the
        // default rho = 1 can sit orders of magnitude above ||S||^2,
        // which stalls the x-update (steps shrink like ||S||^2 / rho).
        // rho ~ kappa is the standard lasso scaling.
        acfg.rho = kappa;
        const auto ar = roarray::sparse::solve_l1_admm(op, y, acfg);

        const double fo = roarray::sparse::l1_objective(op, y, fr.x, kappa);
        const double ao = roarray::sparse::l1_objective(op, y, ar.x, kappa);
        // The oracle is directional: restarted FISTA at this iteration
        // budget is the tight reference for the shared convex optimum,
        // while ADMM's splitting can lag it by a fraction of a percent
        // on ill-conditioned draws. FISTA must never be meaningfully
        // worse (it carries its own ~1e-4 convergence slack on tiny
        // problems), and ADMM must approach the same optimum within 1%.
        const double scale = std::max(1.0, std::max(fo, ao));
        if (fo > ao + 1e-4 * scale) {
          std::ostringstream os;
          os << "FISTA objective " << fo << " worse than ADMM " << ao
             << " (kappa " << kappa << ")";
          return os.str();
        }
        if (ao - fo > 1e-2 * scale) {
          std::ostringstream os;
          os << "ADMM objective " << ao << " far above FISTA " << fo
             << " (kappa " << kappa << ")";
          return os.str();
        }
        return std::nullopt;
      },
      pt::shrink_kron_case(), pt::show_kron_case, cfg);
}

TEST(ProptestDifferential, KroneckerMatchesDenseOnRandomSizes) {
  pt::CheckConfig cfg;
  cfg.cases = 40;
  pt::check<pt::KronCase>(
      "Kronecker operator == materialized dense operator",
      pt::gen_kron_case,
      [](const pt::KronCase& c) -> std::optional<std::string> {
        const roarray::sparse::KroneckerOperator kron(c.left(), c.right());
        const roarray::sparse::DenseOperator dense(kron.to_dense());
        if (kron.rows() != dense.rows() || kron.cols() != dense.cols()) {
          return "shape mismatch between kron and to_dense";
        }
        const CVec x = c.x();
        const CVec y = c.y();
        const double xs = std::max(1.0, roarray::linalg::norm2(x));
        const double ys = std::max(1.0, roarray::linalg::norm2(y));

        const CVec kf = kron.apply(x);
        const CVec df = dense.apply(x);
        for (index_t i = 0; i < kf.size(); ++i) {
          if (std::abs(kf[i] - df[i]) > 1e-9 * xs) {
            return "forward apply differs from dense";
          }
        }
        const CVec ka = kron.apply_adjoint(y);
        const CVec da = dense.apply_adjoint(y);
        for (index_t i = 0; i < ka.size(); ++i) {
          if (std::abs(ka[i] - da[i]) > 1e-9 * ys) {
            return "adjoint apply differs from dense";
          }
        }
        const CMat xm = c.x_mat();
        const CMat km = kron.apply_mat(xm);
        const CMat dm = dense.apply_mat(xm);
        for (index_t j = 0; j < km.cols(); ++j) {
          for (index_t i = 0; i < km.rows(); ++i) {
            if (std::abs(km(i, j) - dm(i, j)) >
                1e-9 * std::max(1.0, roarray::linalg::norm_fro(xm))) {
              return "batched apply_mat differs from dense";
            }
          }
        }
        const CMat kg = kron.row_gram();
        const CMat dg = dense.row_gram();
        const double gs = std::max(1.0, roarray::linalg::norm_max(dg));
        for (index_t j = 0; j < kg.cols(); ++j) {
          for (index_t i = 0; i < kg.rows(); ++i) {
            if (std::abs(kg(i, j) - dg(i, j)) > 1e-9 * gs) {
              return "row_gram differs from dense";
            }
          }
        }
        return std::nullopt;
      },
      pt::shrink_kron_case(), pt::show_kron_case, cfg);
}

TEST(ProptestDifferential, SparseRecoveryAgreesWithMusicAndSpotfi) {
  pt::CheckConfig cfg;
  cfg.cases = 4;
  pt::check<TwoPathScene>(
      "ROArray, MUSIC, and SpotFi agree on high-SNR well-separated scenes",
      gen_two_path_scene(),
      [](const TwoPathScene& s) -> std::optional<std::string> {
        const roarray::dsp::ArrayConfig array;
        const auto burst = make_burst(s, array);

        // Sparse recovery.
        const auto rr = roarray::core::roarray_estimate(
            burst.csi, scene_estimator_config(), array,
            roarray::runtime::EstimateContext{});
        if (!rr.valid) return "roarray_estimate found no path";
        const double ro_err =
            roarray::dsp::angle_diff_deg(rr.direct.aoa_deg, s.aoa1_deg);
        if (ro_err > 6.0) {
          std::ostringstream os;
          os << "roarray direct AoA off by " << ro_err << " deg";
          return os.str();
        }

        // Spatial MUSIC: one of the top-2 peaks must sit on the direct
        // path. MUSIC's resolution guarantee only holds for
        // decorrelated sources — on a static channel the two paths are
        // fully coherent and the covariance is rank-1 (the failure
        // mode sparse recovery exists to fix) — so give MUSIC what its
        // model assumes: a burst with per-packet path-phase
        // decorrelation, covariances averaged across packets and
        // forward-backward averaged.
        roarray::channel::BurstConfig mbc;
        mbc.num_packets = 12;
        mbc.snr_db = 30.0;
        mbc.max_detection_delay_s = 0.0;
        mbc.path_phase_jitter_rad = 1.2;
        pt::Rng mrng(roarray::runtime::mix_seed(s.noise_seed));
        const auto mburst =
            roarray::channel::generate_burst(s.paths(), array, mbc, mrng);
        CMat cov = roarray::music::sample_covariance(mburst.csi.front());
        for (std::size_t p = 1; p < mburst.csi.size(); ++p) {
          const CMat rp = roarray::music::sample_covariance(mburst.csi[p]);
          for (index_t j = 0; j < cov.cols(); ++j) {
            for (index_t i = 0; i < cov.rows(); ++i) cov(i, j) += rp(i, j);
          }
        }
        for (index_t j = 0; j < cov.cols(); ++j) {
          for (index_t i = 0; i < cov.rows(); ++i) {
            cov(i, j) /= static_cast<double>(mburst.csi.size());
          }
        }
        cov = roarray::music::forward_backward_average(cov);
        // MUSIC nulls are razor sharp, so normalized peak height is
        // dominated by how far each true angle sits from the nearest
        // grid point: the peak of a path 0.25 deg off-grid can sit
        // four orders of magnitude below one 0.05 deg off-grid, which
        // makes any fixed peak-height floor brittle. The robust oracle
        // is CONTRAST: the pseudo-spectrum within 1.5 deg of the true
        // direct angle must stand at least 20 dB above the median
        // background level.
        const auto mus = roarray::music::music_spectrum_aoa(
            cov, 2, roarray::dsp::Grid(0.0, 180.0, 361), array);
        double near_direct = 0.0;
        std::vector<double> background;
        background.reserve(static_cast<std::size_t>(mus.grid.size()));
        for (index_t i = 0; i < mus.grid.size(); ++i) {
          if (roarray::dsp::angle_diff_deg(mus.grid[i], s.aoa1_deg) <= 1.5) {
            near_direct = std::max(near_direct, mus.values[i]);
          }
          background.push_back(mus.values[i]);
        }
        std::nth_element(background.begin(),
                         background.begin() + background.size() / 2,
                         background.end());
        const double median_bg = background[background.size() / 2];
        if (near_direct < 100.0 * median_bg) {
          std::ostringstream os;
          os << "MUSIC shows no direct-path response: spectrum near "
             << s.aoa1_deg << " deg is " << near_direct
             << " vs median background " << median_bg;
          return os.str();
        }

        // SpotFi end to end (on its default fine grids: SpotFi's
        // cluster features degrade on the reduced tier-1 grids). SpotFi
        // is the fragile baseline the paper criticizes: on coherent
        // two-path draws its smoothed MUSIC can collapse both paths
        // into one cluster, and its direct-pick heuristic can land on
        // the reflection or on a smeared mixture peak between the
        // paths. Those are expected behaviors, not bugs, so the
        // differential constraint is one-sided: SpotFi must produce a
        // valid estimate, and whenever its pick DOES land on the
        // direct path it must agree with ROArray's.
        roarray::music::SpotfiConfig scfg;
        scfg.sanitize = false;
        const auto sr = roarray::music::spotfi_estimate(burst.csi, scfg, array);
        if (!sr.valid) return "spotfi_estimate found no path";
        const double sf_pick_err =
            roarray::dsp::angle_diff_deg(sr.direct_aoa_deg, s.aoa1_deg);
        if (sf_pick_err <= 8.0 &&
            roarray::dsp::angle_diff_deg(rr.direct.aoa_deg, sr.direct_aoa_deg) >
                12.0) {
          return "roarray and SpotFi disagree on the direct path";
        }
        return std::nullopt;
      },
      /*shrink=*/{}, show_two_path_scene, cfg);
}

TEST(ProptestDifferential, CoarseToFineAgreesWithFullGridSolve) {
  pt::CheckConfig cfg;
  cfg.cases = 6;
  pt::check<TwoPathScene>(
      "coarse-to-fine factored solve agrees with the full-grid solve",
      gen_two_path_scene(),
      [](const TwoPathScene& s) -> std::optional<std::string> {
        const roarray::dsp::ArrayConfig array;
        const auto burst = make_burst(s, array);

        const auto full_cfg = scene_estimator_config();
        const auto full = roarray::core::roarray_estimate(
            burst.csi, full_cfg, array, roarray::runtime::EstimateContext{});

        auto cf_cfg = full_cfg;
        cf_cfg.coarse_fine.enabled = true;
        const auto fast = roarray::core::roarray_estimate(
            burst.csi, cf_cfg, array, roarray::runtime::EstimateContext{});

        if (full.valid != fast.valid) {
          return "coarse-to-fine flipped the validity of the estimate";
        }
        if (!full.valid) return std::nullopt;
        const double daoa = roarray::dsp::folded_aoa_separation_deg(
            fast.direct.aoa_deg, full.direct.aoa_deg);
        if (daoa > 2.0 * full_cfg.aoa_grid.step() + 1e-12) {
          std::ostringstream os;
          os << "direct AoA moved " << daoa << " deg (full "
             << full.direct.aoa_deg << ", coarse-fine " << fast.direct.aoa_deg
             << ")";
          return os.str();
        }
        const double dtoa = std::abs(fast.direct.toa_s - full.direct.toa_s);
        if (dtoa > 2.0 * full_cfg.toa_grid.step() + 1e-15) {
          std::ostringstream os;
          os << "direct ToA moved " << dtoa * 1e9 << " ns (full "
             << full.direct.toa_s * 1e9 << " ns, coarse-fine "
             << fast.direct.toa_s * 1e9 << " ns)";
          return os.str();
        }
        return std::nullopt;
      },
      /*shrink=*/{}, show_two_path_scene, cfg);
}

// ---------------------------------------------------------------------------
// Compute-backend differential: the SIMD kernel table must agree with
// the scalar table on random problems within the documented tolerances
// (backend.hpp). Runs vacuously on builds/machines without a SIMD
// table — the adversarial fixed-input suite lives in
// tests/linalg/test_backend.cpp and reports the skip visibly.

namespace {

struct BackendCase {
  roarray::linalg::index_t m = 24, n = 6, k = 80;
  std::uint64_t seed = 1;
  double t = 0.5;  ///< prox threshold
};

pt::Gen<BackendCase> gen_backend_case() {
  return [](pt::Rng& rng) {
    BackendCase c;
    c.m = std::uniform_int_distribution<roarray::linalg::index_t>(1, 140)(rng);
    c.n = std::uniform_int_distribution<roarray::linalg::index_t>(1, 36)(rng);
    c.k = std::uniform_int_distribution<roarray::linalg::index_t>(1, 300)(rng);
    c.seed = rng();
    c.t = std::uniform_real_distribution<double>(0.0, 2.0)(rng);
    return c;
  };
}

pt::Shrinker<BackendCase> shrink_backend_case() {
  return [](const BackendCase& c) {
    std::vector<BackendCase> out;
    for (auto dim : {&BackendCase::m, &BackendCase::n, &BackendCase::k}) {
      if (c.*dim > 1) {
        BackendCase s = c;
        s.*dim = std::max<roarray::linalg::index_t>(1, c.*dim / 2);
        out.push_back(s);
      }
    }
    return out;
  };
}

std::string show_backend_case(const BackendCase& c) {
  std::ostringstream os;
  os << "m=" << c.m << " n=" << c.n << " k=" << c.k << " seed=" << c.seed
     << " t=" << c.t;
  return os.str();
}

}  // namespace

TEST(ProptestDifferential, SimdBackendMatchesScalar) {
  namespace be = roarray::linalg::backend;
  pt::CheckConfig cfg;
  cfg.cases = 25;
  pt::check<BackendCase>(
      "SIMD backend kernels == scalar backend kernels (to rounding)",
      gen_backend_case(),
      [](const BackendCase& c) -> std::optional<std::string> {
        const be::Backend* simd = be::simd();
        if (simd == nullptr) return std::nullopt;  // nothing to compare
        pt::Rng mrng(c.seed);
        const CMat a = pt::gen_cmat(c.m, c.k, mrng);
        CMat b = pt::gen_cmat(c.k, c.n, mrng);
        for (index_t i = 0; i < c.k; i += 3) {  // row-sparse like iterates
          for (index_t j = 0; j < c.n; ++j) b(i, j) = cxd{0.0, 0.0};
        }
        const double eps = std::numeric_limits<double>::epsilon();
        double amax = 0.0, bsum = 0.0;
        for (index_t j = 0; j < c.k; ++j)
          for (index_t i = 0; i < c.m; ++i)
            amax = std::max(amax, std::abs(a(i, j)));
        for (index_t j = 0; j < c.n; ++j) {
          double s = 0.0;
          for (index_t i = 0; i < c.k; ++i) s += std::abs(b(i, j));
          bsum = std::max(bsum, s);
        }

        const CMat cs = roarray::linalg::matmul_blocked(a, b, nullptr,
                                                        &be::scalar());
        const CMat cv = roarray::linalg::matmul_blocked(a, b, nullptr, simd);
        // The backend.hpp gemm bound: gamma_k * max|A| * col-sum of |B|.
        const double gtol =
            8.0 * eps * static_cast<double>(c.k) * amax * bsum;
        for (index_t j = 0; j < c.n; ++j) {
          for (index_t i = 0; i < c.m; ++i) {
            if (std::abs(cv(i, j) - cs(i, j)) > 2.0 * gtol) {
              std::ostringstream os;
              os << "gemm differs at (" << i << "," << j << "): "
                 << cv(i, j) << " vs " << cs(i, j) << " tol " << gtol;
              return os.str();
            }
          }
        }

        // Group prox: row_sq_accumulate + row_scale against scalar.
        CMat ps = cs;
        CMat pv = cs;
        roarray::sparse::group_soft_threshold_rows_inplace(ps, c.t,
                                                           &be::scalar());
        roarray::sparse::group_soft_threshold_rows_inplace(pv, c.t, simd);
        for (index_t j = 0; j < c.n; ++j) {
          for (index_t i = 0; i < c.m; ++i) {
            const double tol = 32.0 * eps * (std::abs(ps(i, j)) + 1.0);
            if (std::abs(pv(i, j) - ps(i, j)) > tol) {
              std::ostringstream os;
              os << "group prox differs at (" << i << "," << j << ")";
              return os.str();
            }
          }
        }

        // Elementwise prox on a column (normal-range values only: the
        // underflow divergence is documented and tested separately).
        CVec xs(c.m), xv(c.m);
        for (index_t i = 0; i < c.m; ++i) xs[i] = pt::gen_cxd(mrng);
        xv = xs;
        roarray::sparse::soft_threshold_inplace(xs, c.t, &be::scalar());
        roarray::sparse::soft_threshold_inplace(xv, c.t, simd);
        for (index_t i = 0; i < c.m; ++i) {
          if (std::abs(xv[i] - xs[i]) > 8.0 * eps * (std::abs(xs[i]) + 1.0)) {
            std::ostringstream os;
            os << "soft_threshold differs at " << i;
            return os.str();
          }
        }
        return std::nullopt;
      },
      shrink_backend_case(), show_backend_case, cfg);
}

// ---------------------------------------------------------------------------
// Robust-fusion differential: on all-inlier data the robust path must
// land where the naive weighted grid argmin lands (it refines the same
// optimum off-grid, so agreement is within a grid cell), report every
// AP as an inlier, and never escalate to RANSAC.

namespace {

struct FusionCase {
  std::vector<roarray::channel::ApPose> aps;
  roarray::channel::Vec2 target;
  std::vector<double> weights;
};

pt::Gen<FusionCase> gen_fusion_case() {
  return [](pt::Rng& rng) {
    FusionCase c;
    const roarray::channel::Room room;
    std::uniform_real_distribution<double> ux(1.0, room.width_m - 1.0);
    std::uniform_real_distribution<double> uy(1.0, room.height_m - 1.0);
    std::uniform_real_distribution<double> uaxis(0.0, 360.0);
    std::uniform_real_distribution<double> uw(0.2, 3.0);
    c.target = {ux(rng), uy(rng)};
    const int n = std::uniform_int_distribution<int>(3, 6)(rng);
    while (static_cast<int>(c.aps.size()) < n) {
      roarray::channel::ApPose ap{{ux(rng), uy(rng)}, uaxis(rng)};
      // Keep APs off the client: AoA is undefined on top of it and the
      // arc-length residual scale collapses at point-blank range.
      if (roarray::channel::distance(ap.position, c.target) < 1.5) continue;
      c.aps.push_back(ap);
      c.weights.push_back(uw(rng));
    }
    return c;
  };
}

std::string show_fusion_case(const FusionCase& c) {
  std::ostringstream os;
  os.precision(4);
  os << "target (" << c.target.x << ", " << c.target.y << "), aps";
  for (const auto& ap : c.aps) {
    os << " (" << ap.position.x << "," << ap.position.y << ";" << ap.axis_deg
       << ")";
  }
  return os.str();
}

}  // namespace

TEST(ProptestDifferential, RobustFusionMatchesNaiveWhenAllInliers) {
  pt::CheckConfig cfg;
  cfg.cases = 25;
  pt::check<FusionCase>(
      "robust fusion == naive weighted argmin on all-inlier rounds",
      gen_fusion_case(),
      [](const FusionCase& c) -> std::optional<std::string> {
        std::vector<roarray::loc::ApObservation> obs;
        for (std::size_t i = 0; i < c.aps.size(); ++i) {
          roarray::loc::ApObservation o;
          o.pose = c.aps[i];
          o.aoa_deg = c.aps[i].aoa_of_point(c.target);
          o.weight = c.weights[i];
          obs.push_back(o);
        }
        roarray::loc::LocalizeConfig robust_cfg;  // robust on by default.
        roarray::loc::LocalizeConfig naive_cfg;
        naive_cfg.robust = false;

        const auto r = roarray::loc::localize(obs, robust_cfg);
        const auto n = roarray::loc::localize(obs, naive_cfg);
        if (!r.valid || !n.valid) return "localize flagged all-inlier round";
        if (!r.used_fusion) return "robust path did not engage";
        if (r.fusion.used_ransac) return "RANSAC engaged on clean data";
        // The robust solve polishes the same basin the grid argmin found,
        // so the two fixes sit within a grid cell of each other.
        const double tol = 2.0 * robust_cfg.grid_step_m;
        if (std::abs(r.position.x - n.position.x) > tol ||
            std::abs(r.position.y - n.position.y) > tol) {
          std::ostringstream os;
          os << "fixes diverged: robust (" << r.position.x << ", "
             << r.position.y << ") vs naive (" << n.position.x << ", "
             << n.position.y << ")";
          return os.str();
        }
        if (r.fusion.inliers != static_cast<int>(obs.size())) {
          std::ostringstream os;
          os << "only " << r.fusion.inliers << "/" << obs.size()
             << " APs flagged inlier on clean data";
          return os.str();
        }
        return std::nullopt;
      },
      /*shrink=*/{}, show_fusion_case, cfg);
}

// ---------------------------------------------------------------------------
// Metamorphic relations.

TEST(ProptestMetamorphic, GlobalPhaseShiftLeavesAoaSpectrumInvariant) {
  pt::CheckConfig cfg;
  cfg.cases = 5;
  pt::check<TwoPathScene>(
      "csi -> e^{j phi} csi leaves the AoA spectrum unchanged",
      gen_two_path_scene(),
      [](const TwoPathScene& s) -> std::optional<std::string> {
        const roarray::dsp::ArrayConfig array;
        const auto burst = make_burst(s, array);
        const CMat& csi = burst.csi.front();
        // Derive the phase from the scene so it is seed-reproducible.
        const double phi = s.phase2 + 0.7;
        CMat shifted = csi;
        const cxd rot = std::polar(1.0, phi);
        for (index_t j = 0; j < shifted.cols(); ++j) {
          for (index_t i = 0; i < shifted.rows(); ++i) shifted(i, j) *= rot;
        }
        const roarray::dsp::Grid grid(0.0, 180.0, 46);
        roarray::sparse::SolveConfig solver;
        solver.max_iterations = 100;
        const auto a = roarray::core::roarray_aoa_spectrum(csi, grid, array, solver);
        const auto b =
            roarray::core::roarray_aoa_spectrum(shifted, grid, array, solver);
        for (index_t i = 0; i < grid.size(); ++i) {
          if (std::abs(a.values[i] - b.values[i]) > 1e-6) {
            std::ostringstream os;
            os << "spectrum changed at " << grid[i] << " deg: " << a.values[i]
               << " -> " << b.values[i] << " (phi " << phi << ")";
            return os.str();
          }
        }
        return std::nullopt;
      },
      /*shrink=*/{}, show_two_path_scene, cfg);
}

TEST(ProptestMetamorphic, ArrayRotationRotatesAoaOnly) {
  pt::CheckConfig cfg;
  cfg.cases = 25;
  pt::check<pt::FuzzScenario>(
      "rotating the array axis rotates every path AoA, nothing else",
      pt::gen_fuzz_scenario,
      [](const pt::FuzzScenario& s) -> std::optional<std::string> {
        const roarray::dsp::ArrayConfig array;
        // Reuse the scene's jitter field as a deterministic rotation.
        const double delta = 17.0 + 40.0 * s.path_phase_jitter_rad;
        roarray::channel::ApPose rotated = s.ap;
        rotated.axis_deg = s.ap.axis_deg + delta;
        const auto base = roarray::channel::trace_paths(
            s.room(), s.ap, s.client, s.multipath(), array, s.scatterers);
        const auto rot = roarray::channel::trace_paths(
            s.room(), rotated, s.client, s.multipath(), array, s.scatterers);
        if (base.size() != rot.size()) {
          return "rotation changed the number of traced paths";
        }
        for (std::size_t i = 0; i < base.size(); ++i) {
          if (std::abs(base[i].toa_s - rot[i].toa_s) > 1e-15) {
            return "rotation changed a path ToA";
          }
          if (std::abs(std::abs(base[i].gain) - std::abs(rot[i].gain)) > 1e-12) {
            return "rotation changed a path amplitude";
          }
          // aoa0 = fold(bearing - axis) loses the side of the array, so
          // the rotated AoA is fold(aoa0 - delta) or fold(aoa0 + delta).
          const double cand1 =
              roarray::dsp::fold_to_ula_range(base[i].aoa_deg - delta);
          const double cand2 =
              roarray::dsp::fold_to_ula_range(base[i].aoa_deg + delta);
          const double got = rot[i].aoa_deg;
          if (std::abs(got - cand1) > 1e-9 && std::abs(got - cand2) > 1e-9) {
            std::ostringstream os;
            os << "path " << i << " AoA " << base[i].aoa_deg << " rotated to "
               << got << ", expected " << cand1 << " or " << cand2;
            return os.str();
          }
        }
        return std::nullopt;
      },
      pt::shrink_fuzz_scenario(), pt::show_fuzz_scenario, cfg);
}

TEST(ProptestMetamorphic, DetectionDelayShiftTranslatesToa) {
  pt::CheckConfig cfg;
  cfg.cases = 5;
  pt::check<TwoPathScene>(
      "adding a uniform detection delay translates the ToA estimate",
      gen_two_path_scene(),
      [](const TwoPathScene& s) -> std::optional<std::string> {
        const roarray::dsp::ArrayConfig array;
        auto est_cfg = scene_estimator_config();
        const double step = est_cfg.toa_grid.step();
        const double delay = 3.0 * step;  // exactly three grid cells.

        roarray::channel::CsiImpairments clean;
        roarray::channel::CsiImpairments delayed;
        delayed.detection_delay_s = delay;
        // Snap the direct ToA onto the grid: an off-grid direct path
        // sitting near a cell boundary can legitimately quantize to a
        // different cell in the shifted solve, which would test peak
        // quantization rather than the translation relation.
        auto paths = s.paths();
        paths[0].toa_s = std::max(1.0, std::round(paths[0].toa_s / step)) * step;
        std::vector<CMat> base{
            roarray::channel::synthesize_csi(paths, array, clean)};
        std::vector<CMat> shifted{
            roarray::channel::synthesize_csi(paths, array, delayed)};

        const auto rb = roarray::core::roarray_estimate(
            base, est_cfg, array, roarray::runtime::EstimateContext{});
        const auto rs = roarray::core::roarray_estimate(
            shifted, est_cfg, array, roarray::runtime::EstimateContext{});
        if (!rb.valid || !rs.valid) return "estimate invalid";
        const double got = rs.direct.toa_s - rb.direct.toa_s;
        if (std::abs(got - delay) > step + 1e-15) {
          std::ostringstream os;
          os << "ToA moved by " << got * 1e9 << " ns for a " << delay * 1e9
             << " ns delay (grid step " << step * 1e9 << " ns)";
          return os.str();
        }
        return std::nullopt;
      },
      /*shrink=*/{}, show_two_path_scene, cfg);
}

TEST(ProptestMetamorphic, PacketPermutationLeavesFusionFixed) {
  pt::CheckConfig cfg;
  cfg.cases = 4;
  pt::check<TwoPathScene>(
      "permuting the packets of a burst leaves the fused estimate fixed",
      gen_two_path_scene(),
      [](const TwoPathScene& s) -> std::optional<std::string> {
        const roarray::dsp::ArrayConfig array;
        auto burst = make_burst(s, array);
        if (burst.csi.size() < 2) return std::nullopt;
        std::vector<CMat> permuted(burst.csi.rbegin(), burst.csi.rend());

        const auto est_cfg = scene_estimator_config();
        const auto a = roarray::core::roarray_estimate(
            burst.csi, est_cfg, array, roarray::runtime::EstimateContext{});
        const auto b = roarray::core::roarray_estimate(
            permuted, est_cfg, array, roarray::runtime::EstimateContext{});
        if (a.valid != b.valid) return "permutation flipped validity";
        if (!a.valid) return std::nullopt;
        const auto& av = a.spectrum.values;
        const auto& bv = b.spectrum.values;
        for (index_t j = 0; j < av.cols(); ++j) {
          for (index_t i = 0; i < av.rows(); ++i) {
            if (std::abs(av(i, j) - bv(i, j)) > 1e-5) {
              std::ostringstream os;
              os << "fused spectrum changed at (" << i << ", " << j
                 << "): " << av(i, j) << " -> " << bv(i, j);
              return os.str();
            }
          }
        }
        if (std::abs(a.direct.toa_s - b.direct.toa_s) >
            est_cfg.toa_grid.step() + 1e-15) {
          return "permutation moved the direct ToA pick";
        }
        if (roarray::dsp::angle_diff_deg(a.direct.aoa_deg, b.direct.aoa_deg) >
            est_cfg.aoa_grid.step() + 1e-12) {
          return "permutation moved the direct AoA pick";
        }
        return std::nullopt;
      },
      /*shrink=*/{}, show_two_path_scene, cfg);
}

}  // namespace
