// Reading / writing the golden corpus record files. The format is one
// deliberately trivial line-based text file per scenario:
//
//     # ROArray golden record: <name>
//     field <key> <value> <tolerance>
//
// Values are printed with enough digits to round-trip a double, so a
// regenerated file only changes when the computed result changed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "golden_scenarios.hpp"

namespace roarray::golden {

inline std::string golden_file_path(const std::string& dir,
                                    const std::string& name) {
  return dir + "/" + name + ".golden";
}

inline void write_record(std::ostream& os, const GoldenRecord& rec) {
  os << "# ROArray golden record: " << rec.name << "\n";
  os << "# regenerate with scripts/regen_golden after intentional changes\n";
  char buf[64];
  for (const GoldenField& f : rec.fields) {
    std::snprintf(buf, sizeof(buf), "%.17g", f.value);
    os << "field " << f.key << " " << buf;
    std::snprintf(buf, sizeof(buf), "%.17g", f.tol);
    os << " " << buf << "\n";
  }
}

/// Parses a record file. Returns false (with a reason) on missing file
/// or malformed lines so the caller can report actionably.
inline bool read_record(const std::string& path, GoldenRecord& rec,
                        std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path + " (run scripts/regen_golden to create it)";
    return false;
  }
  rec.fields.clear();
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    GoldenField f;
    if (!(ls >> tag >> f.key >> f.value >> f.tol) || tag != "field") {
      error = path + ":" + std::to_string(lineno) + ": malformed line '" +
              line + "'";
      return false;
    }
    rec.fields.push_back(std::move(f));
  }
  return true;
}

/// Diffs a recomputed record against the committed one. Returns true on
/// match; otherwise fills `report` with a per-field table of expected /
/// actual / delta / tolerance for every failing field.
inline bool diff_records(const GoldenRecord& expected,
                         const GoldenRecord& actual, std::string& report) {
  std::ostringstream os;
  bool ok = true;
  if (expected.fields.size() != actual.fields.size()) {
    os << "  field count mismatch: committed " << expected.fields.size()
       << ", computed " << actual.fields.size()
       << " (stale record? run scripts/regen_golden)\n";
    ok = false;
  }
  const std::size_t n =
      std::min(expected.fields.size(), actual.fields.size());
  for (std::size_t i = 0; i < n; ++i) {
    const GoldenField& e = expected.fields[i];
    const GoldenField& a = actual.fields[i];
    if (e.key != a.key) {
      os << "  field order mismatch at #" << i << ": committed '" << e.key
         << "', computed '" << a.key << "'\n";
      ok = false;
      continue;
    }
    const double delta = std::abs(e.value - a.value);
    if (delta > e.tol) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "  %-24s expected %-22.12g got %-22.12g |diff| %.3g > tol %.3g\n",
                    e.key.c_str(), e.value, a.value, delta, e.tol);
      os << buf;
      ok = false;
    }
  }
  if (!ok) report = os.str();
  return ok;
}

}  // namespace roarray::golden
