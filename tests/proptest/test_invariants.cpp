// Invariant properties over fuzzed inputs: structural guarantees that
// must hold for EVERY input in the domain, checked end-to-end through
// sim -> channel -> core::roarray_estimate -> loc and at the solver /
// operator layer.
//
//   * trace_paths returns ToA-sorted paths with the direct path first;
//   * roarray_estimate keeps paths ToA-sorted, its spectrum in [0, 1],
//     and picks the smallest-ToA qualifying peak as the direct path;
//   * localize on the estimate stays inside the room;
//   * <S x, y> == <x, S^H y> for random Kronecker and dense operators,
//     with the batched _mat paths matching per-column applies;
//   * FISTA's recorded objective sequence is non-increasing (the
//     monotone-restart guarantee), as is ISTA's;
//   * the l1 / l2,1 proximal operators are firmly nonexpansive.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "channel/csi.hpp"
#include "channel/multipath.hpp"
#include "core/roarray.hpp"
#include "generators.hpp"
#include "loc/localize.hpp"
#include "proptest.hpp"
#include "sparse/fista.hpp"
#include "sparse/operator.hpp"
#include "sparse/prox.hpp"

namespace pt = roarray::proptest;
using roarray::linalg::CMat;
using roarray::linalg::CVec;
using roarray::linalg::cxd;
using roarray::linalg::index_t;

namespace {

/// Reduced search grids keeping the end-to-end solve fast enough for
/// dozens of fuzz cases on one core; resolution stays fine enough that
/// the structural invariants (ordering, direct pick) are meaningful.
roarray::core::RoArrayConfig fast_estimator_config() {
  roarray::core::RoArrayConfig cfg;
  cfg.aoa_grid = roarray::dsp::Grid(0.0, 180.0, 41);
  cfg.toa_grid = roarray::dsp::Grid(0.0, 784e-9, 25);
  cfg.solver.max_iterations = 120;
  return cfg;
}

TEST(ProptestInvariants, EndToEndPipelineInvariants) {
  pt::CheckConfig cfg;
  cfg.cases = 8;
  pt::check<pt::FuzzScenario>(
      "sim->channel->estimate->loc structural invariants",
      pt::gen_fuzz_scenario,
      [](const pt::FuzzScenario& s) -> std::optional<std::string> {
        const roarray::dsp::ArrayConfig array;
        const auto paths = roarray::channel::trace_paths(
            s.room(), s.ap, s.client, s.multipath(), array, s.scatterers);
        if (paths.empty()) return "trace_paths returned no paths";
        // Channel invariants: ToA-sorted, direct first and LoS-consistent.
        for (std::size_t i = 1; i < paths.size(); ++i) {
          if (paths[i].toa_s < paths[i - 1].toa_s) {
            return "trace_paths output not sorted by ToA";
          }
        }
        if (paths.front().reflections != 0) {
          return "first traced path is not the direct path";
        }
        const double los_aoa = s.ap.aoa_of_point(s.client);
        if (std::abs(paths.front().aoa_deg - los_aoa) > 1e-9) {
          return "direct path AoA disagrees with LoS geometry";
        }

        pt::Rng rng(s.burst_seed);
        const auto burst =
            roarray::channel::generate_burst(paths, array, s.burst_config(), rng);
        auto est_cfg = fast_estimator_config();
        const auto r = roarray::core::roarray_estimate(
            burst.csi, est_cfg, array, roarray::runtime::EstimateContext{});

        // Spectrum invariants: normalized power in [0, 1].
        const auto& sp = r.spectrum.values;
        double sp_max = 0.0;
        for (index_t j = 0; j < sp.cols(); ++j) {
          for (index_t i = 0; i < sp.rows(); ++i) {
            const double v = sp(i, j);
            if (!(v >= 0.0)) return "spectrum has a negative or NaN sample";
            sp_max = std::max(sp_max, v);
          }
        }
        if (sp_max > 1.0 + 1e-12) return "spectrum exceeds 1 after normalization";

        if (!r.valid) return std::nullopt;  // no peak found: nothing to pick.

        // Estimate invariants: sorted paths, direct = smallest qualifying ToA.
        double peak_power = 0.0;
        for (std::size_t i = 0; i < r.paths.size(); ++i) {
          if (i > 0 && r.paths[i].toa_s < r.paths[i - 1].toa_s) {
            return "estimated paths not sorted by ToA";
          }
          peak_power = std::max(peak_power, r.paths[i].power);
        }
        const double power_floor = est_cfg.min_direct_rel_power * peak_power;
        double expected_toa = std::numeric_limits<double>::infinity();
        for (const auto& p : r.paths) {
          if (p.power >= power_floor) expected_toa = std::min(expected_toa, p.toa_s);
        }
        if (r.direct.toa_s != expected_toa) {
          std::ostringstream os;
          os << "direct pick is not the smallest qualifying ToA (picked "
             << r.direct.toa_s * 1e9 << " ns, expected " << expected_toa * 1e9
             << " ns)";
          return os.str();
        }
        if (r.direct.power < power_floor) {
          return "direct pick below the relative power floor";
        }

        // Localization invariant: a valid fix inside the room.
        roarray::loc::LocalizeConfig lcfg;
        lcfg.room = s.room();
        lcfg.grid_step_m = 0.5;
        const roarray::loc::ApObservation obs{s.ap, r.direct.aoa_deg, 1.0};
        const auto fix = roarray::loc::localize({&obs, 1}, lcfg);
        if (!fix.valid) return "localize returned invalid with one observation";
        if (!lcfg.room.contains(fix.position)) {
          return "localize fix escaped the room";
        }
        return std::nullopt;
      },
      pt::shrink_fuzz_scenario(), pt::show_fuzz_scenario, cfg);
}

TEST(ProptestInvariants, AdjointConsistencyKroneckerAndDense) {
  pt::CheckConfig cfg;
  cfg.cases = 40;
  pt::check<pt::KronCase>(
      "<Sx,y> == <x,S^H y> and batched applies match per-column",
      pt::gen_kron_case,
      [](const pt::KronCase& c) -> std::optional<std::string> {
        const roarray::sparse::KroneckerOperator kron(c.left(), c.right());
        const roarray::sparse::DenseOperator dense(kron.to_dense());
        const CVec x = c.x();
        const CVec y = c.y();

        // Scale for relative comparisons.
        const double scale =
            std::max(1.0, roarray::linalg::norm2(x) * roarray::linalg::norm2(y));
        for (const roarray::sparse::LinearOperator* op :
             {static_cast<const roarray::sparse::LinearOperator*>(&kron),
              static_cast<const roarray::sparse::LinearOperator*>(&dense)}) {
          const cxd lhs = roarray::linalg::dot(op->apply(x), y);
          const cxd rhs = roarray::linalg::dot(x, op->apply_adjoint(y));
          if (std::abs(lhs - rhs) > 1e-10 * scale) {
            std::ostringstream os;
            os << "adjoint identity violated: <Sx,y>=" << lhs
               << " vs <x,S^H y>=" << rhs;
            return os.str();
          }
        }

        // Batched multi-snapshot paths match per-column single applies.
        const CMat xm = c.x_mat();
        const CMat ym_in = c.y_mat();
        const CMat ym = kron.apply_mat(xm);
        const CMat xm_adj = kron.apply_adjoint_mat(ym_in);
        for (index_t j = 0; j < xm.cols(); ++j) {
          const CVec per_col = kron.apply(xm.col_vec(j));
          for (index_t i = 0; i < per_col.size(); ++i) {
            if (std::abs(per_col[i] - ym(i, j)) > 1e-10 * scale) {
              return "apply_mat disagrees with per-column apply";
            }
          }
          const CVec per_col_adj = kron.apply_adjoint(ym_in.col_vec(j));
          for (index_t i = 0; i < per_col_adj.size(); ++i) {
            if (std::abs(per_col_adj[i] - xm_adj(i, j)) > 1e-10 * scale) {
              return "apply_adjoint_mat disagrees with per-column adjoint";
            }
          }
        }
        return std::nullopt;
      },
      pt::shrink_kron_case(), pt::show_kron_case, cfg);
}

TEST(ProptestInvariants, SolverObjectiveMonotone) {
  pt::CheckConfig cfg;
  cfg.cases = 15;
  pt::check<pt::KronCase>(
      "FISTA (monotone restart) and ISTA objectives never increase",
      pt::gen_kron_case,
      [](const pt::KronCase& c) -> std::optional<std::string> {
        const roarray::sparse::KroneckerOperator op(c.left(), c.right());
        const CVec y = c.y();
        for (const auto algo : {roarray::sparse::Algorithm::kFista,
                                roarray::sparse::Algorithm::kIsta}) {
          roarray::sparse::SolveConfig scfg;
          scfg.algorithm = algo;
          scfg.max_iterations = 60;
          const auto r = roarray::sparse::solve_l1(op, y, scfg);
          for (std::size_t i = 1; i < r.objective.size(); ++i) {
            const double slack =
                1e-10 * std::max(1.0, std::abs(r.objective[i - 1]));
            if (r.objective[i] > r.objective[i - 1] + slack) {
              std::ostringstream os;
              os << (algo == roarray::sparse::Algorithm::kFista ? "FISTA"
                                                                : "ISTA")
                 << " objective increased at iteration " << i << ": "
                 << r.objective[i - 1] << " -> " << r.objective[i];
              return os.str();
            }
          }
        }
        return std::nullopt;
      },
      pt::shrink_kron_case(), pt::show_kron_case, cfg);
}

/// A pair of same-length complex vectors plus a threshold, regenerated
/// from a stored seed like KronCase so it shrinks cleanly.
struct ProxCase {
  index_t n = 1;
  index_t k = 1;  ///< snapshot columns for the group prox.
  double t = 0.5;
  std::uint64_t data_seed = 0;
};

pt::Gen<ProxCase> gen_prox_case() {
  return [](pt::Rng& rng) {
    ProxCase c;
    c.n = std::uniform_int_distribution<index_t>(1, 32)(rng);
    c.k = std::uniform_int_distribution<index_t>(1, 4)(rng);
    c.t = std::uniform_real_distribution<double>(0.0, 2.0)(rng);
    c.data_seed = rng();
    return c;
  };
}

TEST(ProptestInvariants, ProxOperatorsFirmlyNonexpansive) {
  pt::CheckConfig cfg;
  cfg.cases = 60;
  pt::check<ProxCase>(
      "soft-threshold and row-group prox satisfy "
      "||P(x)-P(y)||^2 <= Re<P(x)-P(y), x-y>",
      gen_prox_case(),
      [](const ProxCase& c) -> std::optional<std::string> {
        pt::Rng rng(c.data_seed);
        // l1 prox on vectors.
        CVec x = pt::gen_cvec(c.n, rng);
        CVec y = pt::gen_cvec(c.n, rng);
        CVec px = x;
        CVec py = y;
        roarray::sparse::soft_threshold_inplace(px, c.t);
        roarray::sparse::soft_threshold_inplace(py, c.t);
        double lhs = 0.0;
        double rhs = 0.0;
        for (index_t i = 0; i < c.n; ++i) {
          const cxd dp = px[i] - py[i];
          lhs += std::norm(dp);
          rhs += std::real(std::conj(dp) * (x[i] - y[i]));
        }
        if (lhs > rhs + 1e-10 * std::max(1.0, lhs)) {
          std::ostringstream os;
          os << "l1 prox not firmly nonexpansive: ||dP||^2=" << lhs
             << " > Re<dP, dx>=" << rhs;
          return os.str();
        }
        // l2,1 prox on row groups.
        CMat xm = pt::gen_cmat(c.n, c.k, rng);
        CMat ym = pt::gen_cmat(c.n, c.k, rng);
        CMat pxm = xm;
        CMat pym = ym;
        roarray::sparse::group_soft_threshold_rows_inplace(pxm, c.t);
        roarray::sparse::group_soft_threshold_rows_inplace(pym, c.t);
        lhs = 0.0;
        rhs = 0.0;
        for (index_t j = 0; j < c.k; ++j) {
          for (index_t i = 0; i < c.n; ++i) {
            const cxd dp = pxm(i, j) - pym(i, j);
            lhs += std::norm(dp);
            rhs += std::real(std::conj(dp) * (xm(i, j) - ym(i, j)));
          }
        }
        if (lhs > rhs + 1e-10 * std::max(1.0, lhs)) {
          std::ostringstream os;
          os << "group prox not firmly nonexpansive: ||dP||_F^2=" << lhs
             << " > Re<dP, dX>=" << rhs;
          return os.str();
        }
        return std::nullopt;
      },
      /*shrink=*/{},
      [](const ProxCase& c) {
        std::ostringstream os;
        os << "n=" << c.n << " k=" << c.k << " t=" << c.t << " data_seed="
           << c.data_seed;
        return os.str();
      },
      cfg);
}

}  // namespace
