// The golden regression corpus: ~10 fixed, fully deterministic
// estimation scenarios with their expected outputs committed under
// tests/proptest/golden/. test_golden.cpp recomputes each scenario and
// diffs against the committed record; scripts/regen_golden rebuilds the
// records via golden_tool when an intentional behavior change lands.
//
// Every scenario is a pure constant (fixed path geometry, fixed noise
// seed), so records are reproducible across machines and build modes up
// to the committed per-field tolerances.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "channel/csi.hpp"
#include "channel/multipath.hpp"
#include "core/roarray.hpp"
#include "dsp/angles.hpp"
#include "dsp/grid.hpp"
#include "loc/localize.hpp"
#include "sim/scenario.hpp"
#include "sim/testbed.hpp"

namespace roarray::golden {

using channel::Path;
using linalg::cxd;
using linalg::index_t;

/// One corpus entry: a burst specification plus the estimator config it
/// is evaluated with.
struct GoldenScenario {
  std::string name;
  std::vector<Path> paths;
  channel::BurstConfig burst;
  std::uint64_t noise_seed = 1;
  core::RoArrayConfig estimator;
  /// When set, `paths`/`burst` are unused: the scenario is a full
  /// adversarial measurement round through sim + per-AP estimation +
  /// the robust localize path (compute_fusion_golden).
  bool fusion_round = false;
};

/// One checked quantity: value plus the tolerance committed next to it
/// (|expected - actual| <= tol passes).
struct GoldenField {
  std::string key;
  double value = 0.0;
  double tol = 0.0;
};

struct GoldenRecord {
  std::string name;
  std::vector<GoldenField> fields;
};

inline Path make_path(double aoa_deg, double toa_ns, double amp,
                      double phase_rad, int reflections) {
  Path p;
  p.aoa_deg = aoa_deg;
  p.toa_s = toa_ns * 1e-9;
  p.gain = std::polar(amp, phase_rad);
  p.reflections = reflections;
  p.length_m = toa_ns * 1e-9 * dsp::kSpeedOfLight;
  return p;
}

/// The estimator configuration shared by the corpus: reduced grids (the
/// tier-1 budget) with the default FISTA solver capped at 150 iterations.
inline core::RoArrayConfig golden_estimator_config() {
  core::RoArrayConfig cfg;
  cfg.aoa_grid = dsp::Grid(0.0, 180.0, 61);
  cfg.toa_grid = dsp::Grid(0.0, 784e-9, 29);
  cfg.solver.max_iterations = 150;
  cfg.sanitize = false;
  return cfg;
}

/// The committed corpus. Append new scenarios at the end; renaming or
/// reordering existing ones orphans their golden files.
inline std::vector<GoldenScenario> golden_scenarios() {
  std::vector<GoldenScenario> out;
  auto add = [&out](std::string name, std::vector<Path> paths,
                    index_t packets, double snr_db, std::uint64_t seed) {
    GoldenScenario s;
    s.name = std::move(name);
    s.paths = std::move(paths);
    s.burst.num_packets = packets;
    s.burst.snr_db = snr_db;
    s.burst.max_detection_delay_s = 0.0;
    s.noise_seed = seed;
    s.estimator = golden_estimator_config();
    out.push_back(std::move(s));
  };

  add("single_path_clean", {make_path(72.0, 95.0, 1.0, 0.3, 0)}, 1, 35.0, 11);
  add("two_path_separated",
      {make_path(50.0, 60.0, 1.0, 0.0, 0), make_path(105.0, 210.0, 0.5, 1.1, 1)},
      2, 30.0, 12);
  add("two_path_close_aoa",
      {make_path(80.0, 70.0, 1.0, 0.4, 0), make_path(96.0, 240.0, 0.6, 2.0, 1)},
      2, 28.0, 13);
  add("three_path_rich",
      {make_path(40.0, 50.0, 1.0, 0.0, 0), make_path(95.0, 180.0, 0.5, 2.4, 1),
       make_path(140.0, 320.0, 0.35, 4.0, 2)},
      3, 30.0, 14);
  add("fusion_five_packets",
      {make_path(66.0, 85.0, 1.0, 0.9, 0), make_path(118.0, 260.0, 0.45, 3.1, 1)},
      5, 20.0, 15);
  add("low_snr_single", {make_path(57.0, 110.0, 1.0, 1.7, 0)}, 3, 8.0, 16);
  add("blocked_direct",
      {make_path(62.0, 65.0, 0.45, 0.2, 0), make_path(125.0, 190.0, 1.0, 2.8, 1)},
      2, 28.0, 17);
  add("edge_aoa_low", {make_path(12.0, 90.0, 1.0, 0.0, 0)}, 1, 30.0, 18);

  // Detection delays + sanitization on: exercises the detrend path.
  {
    GoldenScenario s;
    s.name = "detection_delay_sanitized";
    s.paths = {make_path(84.0, 75.0, 1.0, 0.5, 0),
               make_path(33.0, 230.0, 0.5, 1.9, 1)};
    s.burst.num_packets = 3;
    s.burst.snr_db = 25.0;
    s.burst.max_detection_delay_s = 80e-9;
    s.noise_seed = 19;
    s.estimator = golden_estimator_config();
    s.estimator.sanitize = true;
    out.push_back(std::move(s));
  }

  // ISTA instead of FISTA: pins the baseline solver flavor too.
  {
    GoldenScenario s;
    s.name = "ista_solver";
    s.paths = {make_path(70.0, 100.0, 1.0, 0.0, 0),
               make_path(115.0, 280.0, 0.5, 2.2, 1)};
    s.burst.num_packets = 2;
    s.burst.snr_db = 30.0;
    s.noise_seed = 20;
    s.estimator = golden_estimator_config();
    s.estimator.solver.algorithm = sparse::Algorithm::kIsta;
    s.estimator.solver.max_iterations = 300;
    out.push_back(std::move(s));
  }

  // Robust-fusion round: one adversarially blocked AP in the paper
  // testbed, run end-to-end (sim -> per-AP estimate -> robust localize).
  // Pins the fused fix and the per-AP inlier verdicts (DESIGN.md §13).
  {
    GoldenScenario s;
    s.name = "fusion_blocked_ap";
    s.noise_seed = 26;
    s.estimator = golden_estimator_config();
    s.fusion_round = true;
    out.push_back(std::move(s));
  }
  return out;
}

/// Runs one adversarial measurement round — fixed client, one blocked
/// AP whose direct path is erased so it reports a confidently wrong AoA
/// through its reflections — through the per-AP estimator and the
/// robust localize path. Per-AP picks are grid-pinned and the IRLS
/// polish is plain scalar arithmetic over them, so the fused position
/// carries a tight (millimeter) tolerance across build modes.
inline GoldenRecord compute_fusion_golden(const GoldenScenario& s) {
  std::mt19937_64 rng(s.noise_seed);
  const sim::Testbed tb = sim::make_paper_testbed();
  const channel::Vec2 client{11.0, 7.5};
  sim::ScenarioConfig cfg;
  cfg.num_packets = 3;
  cfg.los_block_probability = 0.0;  // the blocked AP is the only liar
  cfg.residual_phase_noise_rad = 0.0;
  cfg.max_detection_delay_s = 0.0;  // keep ToA absolute for the bias model
  cfg.adversarial.num_blocked_aps = 1;
  const auto round = sim::generate_measurements(tb, client, cfg, rng);

  std::vector<loc::ApObservation> obs;
  int blocked_ap = -1;   ///< index into round.
  int blocked_obs = -1;  ///< index into obs (per_ap alignment), -1 if dropped.
  for (std::size_t i = 0; i < round.size(); ++i) {
    const sim::ApMeasurement& m = round[i];
    if (m.adversarial_blocked) blocked_ap = static_cast<int>(i);
    const auto est = core::roarray_estimate(m.burst.csi, s.estimator,
                                            cfg.array,
                                            runtime::EstimateContext{});
    if (!est.valid) continue;
    if (m.adversarial_blocked) blocked_obs = static_cast<int>(obs.size());
    loc::ApObservation o;
    o.pose = m.pose;
    o.aoa_deg = est.direct.aoa_deg;
    o.weight = m.rssi_weight;
    o.toa_s = est.direct.toa_s;
    o.has_toa = true;
    obs.push_back(o);
  }

  loc::LocalizeConfig lcfg;
  lcfg.room = tb.room;
  const loc::LocalizeResult r = loc::localize(obs, lcfg);

  GoldenRecord rec;
  rec.name = s.name;
  auto field = [&rec](const char* key, double value, double tol) {
    rec.fields.push_back({key, value, tol});
  };
  field("valid", r.valid ? 1.0 : 0.0, 0.0);
  field("num_estimates", static_cast<double>(obs.size()), 0.0);
  field("blocked_ap", static_cast<double>(blocked_ap), 0.0);
  field("used_fusion", r.used_fusion ? 1.0 : 0.0, 0.0);
  field("used_ransac", r.fusion.used_ransac ? 1.0 : 0.0, 0.0);
  field("fallback_none",
        r.fusion.fallback == fusion::FusionFallback::kNone ? 1.0 : 0.0, 0.0);
  field("inliers", static_cast<double>(r.fusion.inliers), 0.0);
  const bool blocked_inlier = blocked_obs >= 0 && r.used_fusion &&
                              static_cast<std::size_t>(blocked_obs) <
                                  r.fusion.per_ap.size() &&
                              r.fusion.per_ap[static_cast<std::size_t>(
                                  blocked_obs)].inlier;
  field("blocked_ap_inlier", blocked_inlier ? 1.0 : 0.0, 0.0);
  field("pos_x_m", r.position.x, 1e-3);
  field("pos_y_m", r.position.y, 1e-3);
  field("err_m", channel::distance(r.position, client), 2e-3);
  return rec;
}

/// Runs the estimator on a scenario and summarizes the result as the
/// checked fields with their tolerances. Grid-pinned quantities (AoA /
/// ToA picks) carry tight tolerances; accumulated floating-point
/// summaries (spectrum mass) carry loose ones so records survive
/// compiler / sanitizer build differences.
inline GoldenRecord compute_golden(const GoldenScenario& s) {
  if (s.fusion_round) return compute_fusion_golden(s);
  std::mt19937_64 rng(s.noise_seed);
  const dsp::ArrayConfig array;
  const auto burst = channel::generate_burst(s.paths, array, s.burst, rng);
  const auto r = core::roarray_estimate(burst.csi, s.estimator, array,
                                        runtime::EstimateContext{});
  GoldenRecord rec;
  rec.name = s.name;
  auto field = [&rec](const char* key, double value, double tol) {
    rec.fields.push_back({key, value, tol});
  };
  field("valid", r.valid ? 1.0 : 0.0, 0.0);
  field("num_paths", static_cast<double>(r.paths.size()), 0.0);
  field("direct_aoa_deg", r.direct.aoa_deg, 1e-6);
  field("direct_toa_ns", r.direct.toa_s * 1e9, 1e-6);
  field("direct_power", r.direct.power, 1e-5);
  field("solver_iterations", r.solver_iterations, 3.0);
  double spectrum_sum = 0.0;
  const auto& sp = r.spectrum.values;
  for (index_t j = 0; j < sp.cols(); ++j) {
    for (index_t i = 0; i < sp.rows(); ++i) spectrum_sum += sp(i, j);
  }
  field("spectrum_sum", spectrum_sum, 1e-4 * std::max(1.0, spectrum_sum));
  const auto marginal = r.spectrum.aoa_marginal();
  const auto peaks = marginal.find_peaks(1);
  field("aoa_marginal_peak_deg", peaks.empty() ? -1.0 : peaks.front().aoa_deg,
        1e-6);

  // Coarse-to-fine pruned-support path: pins its direct pick and its
  // agreement with the full-grid solve above. The restricted solve is
  // numerically different (not bit-identical), so the picks carry the
  // same grid-pinned tolerances and the agreement field encodes the
  // documented within-2-grid-steps contract.
  auto cf_est = s.estimator;
  cf_est.coarse_fine.enabled = true;
  const auto cf = core::roarray_estimate(burst.csi, cf_est, array,
                                         runtime::EstimateContext{});
  field("cf_valid", cf.valid ? 1.0 : 0.0, 0.0);
  field("cf_direct_aoa_deg", cf.valid ? cf.direct.aoa_deg : -1.0, 1e-6);
  field("cf_direct_toa_ns", cf.valid ? cf.direct.toa_s * 1e9 : -1.0, 1e-6);
  const bool cf_agrees =
      r.valid == cf.valid &&
      (!r.valid ||
       (dsp::folded_aoa_separation_deg(cf.direct.aoa_deg, r.direct.aoa_deg) <=
            2.0 * s.estimator.aoa_grid.step() + 1e-12 &&
        std::abs(cf.direct.toa_s - r.direct.toa_s) <=
            2.0 * s.estimator.toa_grid.step() + 1e-15));
  field("cf_agrees_with_full", cf_agrees ? 1.0 : 0.0, 0.0);
  return rec;
}

}  // namespace roarray::golden
