// Golden regression suite: recomputes every corpus scenario and diffs
// against the committed record under tests/proptest/golden/. A failure
// prints a per-field expected/actual/tolerance table; if the change is
// intentional, regenerate the records with scripts/regen_golden and
// commit the diff.
#include <gtest/gtest.h>

#include <string>

#include "golden_io.hpp"
#include "golden_scenarios.hpp"

#ifndef ROARRAY_GOLDEN_DIR
#error "ROARRAY_GOLDEN_DIR must point at the committed golden corpus"
#endif

namespace {

using namespace roarray::golden;

TEST(GoldenCorpus, ScenarioNamesAreUnique) {
  const auto scenarios = golden_scenarios();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    for (std::size_t j = i + 1; j < scenarios.size(); ++j) {
      EXPECT_NE(scenarios[i].name, scenarios[j].name);
    }
  }
  EXPECT_GE(scenarios.size(), 10u);
}

TEST(GoldenCorpus, RecordsRoundTripThroughTheFileFormat) {
  const auto scenarios = golden_scenarios();
  const GoldenRecord rec = compute_golden(scenarios.front());
  std::ostringstream os;
  write_record(os, rec);
  // Parse the serialized form back and require an exact match: %.17g
  // printing must round-trip every double.
  std::istringstream is(os.str());
  GoldenRecord parsed;
  parsed.name = rec.name;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    GoldenField f;
    ASSERT_TRUE(static_cast<bool>(ls >> tag >> f.key >> f.value >> f.tol))
        << line;
    parsed.fields.push_back(f);
  }
  ASSERT_EQ(parsed.fields.size(), rec.fields.size());
  for (std::size_t i = 0; i < rec.fields.size(); ++i) {
    EXPECT_EQ(parsed.fields[i].key, rec.fields[i].key);
    EXPECT_EQ(parsed.fields[i].value, rec.fields[i].value);
    EXPECT_EQ(parsed.fields[i].tol, rec.fields[i].tol);
  }
}

TEST(GoldenCorpus, AllScenariosMatchCommittedRecords) {
  const std::string dir = ROARRAY_GOLDEN_DIR;
  for (const GoldenScenario& s : golden_scenarios()) {
    SCOPED_TRACE(s.name);
    GoldenRecord committed;
    std::string error;
    ASSERT_TRUE(read_record(golden_file_path(dir, s.name), committed, error))
        << error;
    const GoldenRecord actual = compute_golden(s);
    std::string report;
    EXPECT_TRUE(diff_records(committed, actual, report))
        << "golden drift in scenario '" << s.name << "':\n"
        << report
        << "if this change is intentional, run scripts/regen_golden and "
           "commit the updated records";
  }
}

}  // namespace
