// Dependency-free property-based testing on top of googletest.
//
// A property is checked over many generated inputs, each drawn from a
// deterministic per-case RNG stream. When a case fails, the input is
// shrunk — greedily, deterministically — to a minimal counterexample,
// and the failure report carries a single
//
//     ROARRAY_PROPTEST_SEED=<n>
//
// line. Re-running any proptest binary with that environment variable
// set replays exactly that case: the same value is generated and the
// same shrink path is walked, so the minimal counterexample reproduces
// deterministically (generation and shrinking consume no other
// randomness).
//
// Environment knobs (all optional):
//   ROARRAY_PROPTEST_SEED       replay one case with this exact RNG seed.
//   ROARRAY_PROPTEST_BASE_SEED  change the base seed the per-case seeds
//                               derive from (soak runs randomize this).
//   ROARRAY_PROPTEST_CASES      override the per-property case count.
//   ROARRAY_PROPTEST_TIME_MS    per-property wall-clock budget; once
//                               exceeded no further cases are started
//                               (soak runs bound time, not case count).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/seed.hpp"

namespace roarray::proptest {

using Rng = std::mt19937_64;

/// A generator draws a value of T from the RNG (and nothing else — all
/// case randomness must flow through the RNG for seed replay to work).
template <typename T>
using Gen = std::function<T(Rng&)>;

/// A shrinker proposes strictly-simpler candidates for a failing value,
/// most aggressive first. It must be deterministic and must terminate:
/// repeated application of "first candidate that still fails" has to
/// reach a fixed point (candidates should be *smaller* in some
/// well-founded order). Empty result = nothing simpler to try.
template <typename T>
using Shrinker = std::function<std::vector<T>(const T&)>;

/// A property returns std::nullopt on success or a failure description.
template <typename T>
using Property = std::function<std::optional<std::string>(const T&)>;

/// Renders a counterexample for the failure report.
template <typename T>
using Show = std::function<std::string(const T&)>;

struct CheckConfig {
  int cases = 40;
  std::uint64_t base_seed = 0x5eedba5eULL;  ///< tier-1 default: fixed.
  int max_shrink_steps = 1000;
  /// 0 = no time budget. Overridden by ROARRAY_PROPTEST_TIME_MS.
  long time_budget_ms = 0;
};

namespace detail {

inline std::optional<std::uint64_t> env_u64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::strtoull(v, nullptr, 10);
}

/// Applies the environment overrides to a property's local defaults.
inline CheckConfig resolve(CheckConfig cfg) {
  if (const auto s = env_u64("ROARRAY_PROPTEST_BASE_SEED")) cfg.base_seed = *s;
  if (const auto c = env_u64("ROARRAY_PROPTEST_CASES")) {
    cfg.cases = static_cast<int>(*c);
  }
  if (const auto t = env_u64("ROARRAY_PROPTEST_TIME_MS")) {
    cfg.time_budget_ms = static_cast<long>(*t);
  }
  return cfg;
}

/// Runs the property, folding any exception into a failure message so a
/// throwing case shrinks like any other counterexample.
template <typename T>
std::optional<std::string> run_property(const Property<T>& prop, const T& v) {
  try {
    return prop(v);
  } catch (const std::exception& e) {
    return std::string("unhandled exception: ") + e.what();
  } catch (...) {
    return std::string("unhandled non-standard exception");
  }
}

/// Greedy deterministic shrink: repeatedly replace the counterexample
/// with the first proposed candidate that still fails, until no
/// candidate fails or the step budget runs out. Returns the number of
/// successful shrink steps and updates value/failure in place.
template <typename T>
int shrink_to_minimal(const Shrinker<T>& shrink, const Property<T>& prop,
                      T& value, std::string& failure, int max_steps) {
  if (!shrink) return 0;
  int steps = 0;
  while (steps < max_steps) {
    bool advanced = false;
    for (T& candidate : shrink(value)) {
      if (auto err = run_property(prop, candidate)) {
        value = std::move(candidate);
        failure = std::move(*err);
        ++steps;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return steps;
}

}  // namespace detail

/// Checks `prop` over generated inputs. On failure, shrinks to a
/// minimal counterexample and reports it through googletest (non-fatal,
/// so one gtest TEST can host several check() calls) together with the
/// single-line seed reproduction. Returns true when every case passed.
template <typename T>
bool check(const std::string& name, const Gen<T>& gen, const Property<T>& prop,
           const Shrinker<T>& shrink = {}, const Show<T>& show = {},
           CheckConfig cfg = {}) {
  using clock = std::chrono::steady_clock;
  cfg = detail::resolve(cfg);

  // Replay mode: one case, RNG seeded with exactly the printed value.
  const auto replay = detail::env_u64("ROARRAY_PROPTEST_SEED");
  const int cases = replay ? 1 : cfg.cases;
  const auto start = clock::now();

  for (int i = 0; i < cases; ++i) {
    if (!replay && cfg.time_budget_ms > 0 && i > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                               clock::now() - start)
                               .count();
      if (elapsed >= cfg.time_budget_ms) break;
    }
    const std::uint64_t case_seed =
        replay ? *replay
               : runtime::derive_seed(cfg.base_seed,
                                      static_cast<std::uint64_t>(i));
    Rng rng(case_seed);
    T value = gen(rng);
    auto err = detail::run_property(prop, value);
    if (!err) continue;

    std::string failure = std::move(*err);
    const int steps = detail::shrink_to_minimal(shrink, prop, value, failure,
                                                cfg.max_shrink_steps);
    std::ostringstream os;
    os << "property '" << name << "' falsified (case " << (i + 1) << " of "
       << cases << ", minimized in " << steps << " shrink step"
       << (steps == 1 ? "" : "s") << ")\n";
    if (show) os << "  counterexample: " << show(value) << "\n";
    os << "  failure: " << failure << "\n"
       << "reproduce this exact counterexample with:\n"
       << "ROARRAY_PROPTEST_SEED=" << case_seed << "\n";
    ADD_FAILURE() << os.str();
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Generator combinators.

/// Always produces `v`.
template <typename T>
Gen<T> constant(T v) {
  return [v](Rng&) { return v; };
}

/// Uniform double in [lo, hi].
inline Gen<double> in_range(double lo, double hi) {
  return [lo, hi](Rng& rng) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
}

/// Uniform integer in [lo, hi] (inclusive).
inline Gen<int> int_in_range(int lo, int hi) {
  return [lo, hi](Rng& rng) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
}

/// Uniformly one of the given values.
template <typename T>
Gen<T> element_of(std::vector<T> pool) {
  return [pool = std::move(pool)](Rng& rng) {
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    return pool[pick(rng)];
  };
}

/// Applies f to the generated value.
template <typename T, typename F>
auto map(Gen<T> g, F f) -> Gen<decltype(f(std::declval<T>()))> {
  return [g = std::move(g), f = std::move(f)](Rng& rng) { return f(g(rng)); };
}

/// Vector whose length is drawn from `size` and elements from `elem`.
template <typename T>
Gen<std::vector<T>> vector_of(Gen<int> size, Gen<T> elem) {
  return [size = std::move(size), elem = std::move(elem)](Rng& rng) {
    const int n = size(rng);
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) out.push_back(elem(rng));
    return out;
  };
}

// ---------------------------------------------------------------------------
// Shrinking building blocks.

/// Candidates between `v` and a simplest `target`: the target itself,
/// then geometric midpoints (each keeps roughly half the remaining
/// distance), then a decimal rounding of v. Strictly decreasing
/// distance-to-target guarantees the greedy loop terminates.
std::vector<double> shrink_double(double v, double target);

/// Integer shrink toward `target`: target first, then halvings, then
/// the immediate predecessor.
std::vector<int> shrink_int(int v, int target);

/// Vector shrink: drop the back half, drop single elements (back to
/// front), then shrink individual elements with `elem` (front first).
template <typename T>
std::vector<std::vector<T>> shrink_vector(const std::vector<T>& v,
                                          const Shrinker<T>& elem,
                                          std::size_t min_size = 0) {
  std::vector<std::vector<T>> out;
  if (v.size() > min_size) {
    const std::size_t keep =
        std::max(min_size, v.size() - (v.size() - min_size + 1) / 2);
    if (keep < v.size()) {
      out.emplace_back(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(keep));
    }
    for (std::size_t i = v.size(); i-- > 0;) {
      if (v.size() - 1 < min_size) break;
      std::vector<T> smaller;
      smaller.reserve(v.size() - 1);
      for (std::size_t j = 0; j < v.size(); ++j) {
        if (j != i) smaller.push_back(v[j]);
      }
      out.push_back(std::move(smaller));
    }
  }
  if (elem) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (T& cand : elem(v[i])) {
        std::vector<T> copy = v;
        copy[i] = std::move(cand);
        out.push_back(std::move(copy));
      }
    }
  }
  return out;
}

inline std::vector<double> shrink_double(double v, double target) {
  std::vector<double> out;
  if (v == target) return out;
  out.push_back(target);
  // Geometric approach to the target; stop when the step underflows.
  double d = v - target;
  for (int i = 0; i < 8; ++i) {
    d *= 0.5;
    const double cand = target + d;
    if (cand == v || cand == target) break;
    out.push_back(cand);
  }
  // A 3-significant-digit rounding of v (often enough to make the
  // counterexample readable without changing the failure).
  std::ostringstream os;
  os.precision(3);
  os << v;
  const double rounded = std::strtod(os.str().c_str(), nullptr);
  if (rounded != v && rounded != target) out.push_back(rounded);
  return out;
}

inline std::vector<int> shrink_int(int v, int target) {
  std::vector<int> out;
  if (v == target) return out;
  out.push_back(target);
  int d = v - target;
  while (true) {
    d /= 2;
    if (d == 0) break;
    const int cand = target + d;
    if (cand != v && cand != target) out.push_back(cand);
  }
  const int pred = v > target ? v - 1 : v + 1;
  if (pred != target) out.push_back(pred);
  return out;
}

}  // namespace roarray::proptest
