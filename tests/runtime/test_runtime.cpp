// Tests for the estimation runtime: the deterministic thread pool, the
// steering-operator cache, and the batched estimation API's contract
// that results are bit-identical at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "channel/csi.hpp"
#include "core/roarray.hpp"
#include "runtime/operator_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/power.hpp"
#include "../test_util.hpp"

namespace roarray::runtime {
namespace {

namespace rt = roarray::testing;
using linalg::cxd;
using linalg::index_t;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    constexpr index_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](index_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (index_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, BackToBackJobsDoNotInterfere) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const index_t n = 1 + (round % 17);
    std::atomic<index_t> sum{0};
    pool.parallel_for(n, [&](index_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPool, NestedParallelForRunsSerially) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(8, [&](index_t outer) {
    pool.parallel_for(8, [&](index_t inner) {
      hits[static_cast<std::size_t>(outer * 8 + inner)].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](index_t i) {
                                   if (i == 57) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, MapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out = pool.map<index_t>(257, [](index_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (index_t i = 0; i < 257; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, RangeVariantCoversEveryIndexInDisjointRanges) {
  for (int threads : {1, 3}) {
    ThreadPool pool(threads);
    for (index_t grain : {1, 7, 32, 1000}) {
      constexpr index_t kN = 250;
      std::vector<std::atomic<int>> hits(kN);
      std::atomic<int> ranges{0};
      pool.parallel_for_range(kN, grain, [&](index_t begin, index_t end) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, kN);
        ASSERT_LE(end - begin, grain);
        ranges.fetch_add(1);
        for (index_t i = begin; i < end; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
      // The partition depends only on (n, grain): ceil(n / grain) ranges.
      EXPECT_EQ(ranges.load(), (kN + grain - 1) / grain)
          << "threads " << threads << " grain " << grain;
      for (index_t i = 0; i < kN; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "index " << i << " grain " << grain;
      }
    }
  }
}

TEST(ThreadPool, RangeVariantHandlesEdgeArguments) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for_range(0, 8, [&](index_t, index_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  // Non-positive grain degrades to single-index ranges instead of UB.
  std::vector<std::atomic<int>> hits(5);
  pool.parallel_for_range(5, 0, [&](index_t begin, index_t end) {
    EXPECT_EQ(end, begin + 1);
    hits[static_cast<std::size_t>(begin)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EnvKnobParsesPositiveIntegers) {
  // Only checks the constructor-side clamping here; the env var itself
  // is read once per call and exercised by CI with ROARRAY_THREADS set.
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

TEST(ThreadAnnotations, MutexAndCondVarImplementLockableHandshake) {
  // The annotated wrappers must behave exactly like the std primitives
  // they wrap: exclusive try_lock, and a CondVar handshake that hands
  // a guarded value from one thread to another.
  Mutex m;
  ASSERT_TRUE(m.try_lock());
  std::atomic<bool> other_got_it{true};
  std::thread prober([&] { other_got_it.store(m.try_lock()); });
  prober.join();
  EXPECT_FALSE(other_got_it.load());
  m.unlock();

  CondVar cv;
  int stage = 0;  // guarded by m
  std::thread consumer([&] {
    MutexLock lk(m);
    while (stage != 1) cv.wait(m);
    stage = 2;
    cv.notify_all();
  });
  {
    MutexLock lk(m);
    stage = 1;
    cv.notify_all();
    while (stage != 2) cv.wait(m);
  }
  consumer.join();
  EXPECT_EQ(stage, 2);
}

TEST(OperatorCache, SameKeyReturnsSameInstance) {
  OperatorCache cache;
  const dsp::ArrayConfig arr;
  const dsp::Grid aoa(0.0, 180.0, 31);
  const dsp::Grid toa(0.0, 784e-9, 11);
  const auto a = cache.get(aoa, toa, arr);
  const auto b = cache.get(dsp::Grid(0.0, 180.0, 31), toa, arr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(OperatorCache, DifferentGridsOrArrayGetDistinctEntries) {
  OperatorCache cache;
  const dsp::ArrayConfig arr;
  const dsp::Grid aoa(0.0, 180.0, 31);
  const dsp::Grid toa(0.0, 784e-9, 11);
  const auto base = cache.get(aoa, toa, arr);
  const auto finer_aoa = cache.get(dsp::Grid(0.0, 180.0, 61), toa, arr);
  const auto shifted_toa = cache.get(aoa, dsp::Grid(0.0, 700e-9, 11), arr);
  dsp::ArrayConfig wider = arr;
  wider.antenna_spacing_m *= 0.5;
  const auto other_array = cache.get(aoa, toa, wider);
  EXPECT_NE(base.get(), finer_aoa.get());
  EXPECT_NE(base.get(), shifted_toa.get());
  EXPECT_NE(base.get(), other_array.get());
  EXPECT_EQ(cache.size(), 4u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(OperatorCache, CachedNormMatchesFreshPowerIteration) {
  // The cached Lipschitz estimate must be the bit-identical value a
  // per-call solve would compute — that is what makes cached and
  // uncached estimation results exactly equal.
  OperatorCache cache;
  const dsp::ArrayConfig arr;
  const dsp::Grid aoa(0.0, 180.0, 31);
  const dsp::Grid toa(0.0, 784e-9, 11);
  const auto entry = cache.get(aoa, toa, arr);
  EXPECT_EQ(entry->norm_sq, sparse::operator_norm_sq(entry->op));
  EXPECT_EQ(entry->row_gram.rows(), entry->op.rows());
  EXPECT_EQ(entry->row_gram.cols(), entry->op.rows());
}

std::vector<core::CsiBurst> test_bursts(index_t count) {
  const dsp::ArrayConfig arr;
  std::vector<core::CsiBurst> bursts;
  for (index_t b = 0; b < count; ++b) {
    channel::Path direct;
    direct.aoa_deg = 60.0 + 10.0 * static_cast<double>(b);
    direct.toa_s = 50e-9 + 20e-9 * static_cast<double>(b);
    direct.gain = cxd{1.0, 0.0};
    channel::Path refl;
    refl.aoa_deg = 150.0 - 8.0 * static_cast<double>(b);
    refl.toa_s = 250e-9;
    refl.gain = cxd{0.5, 0.2};
    auto rng = rt::make_rng(900 + static_cast<std::uint64_t>(b));
    channel::BurstConfig bc;
    bc.num_packets = 3;
    bc.snr_db = 18.0;
    bursts.push_back(channel::generate_burst({direct, refl}, arr, bc, rng).csi);
  }
  return bursts;
}

void expect_identical_results(const core::RoArrayResult& a,
                              const core::RoArrayResult& b) {
  ASSERT_EQ(a.valid, b.valid);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t p = 0; p < a.paths.size(); ++p) {
    EXPECT_EQ(a.paths[p].aoa_deg, b.paths[p].aoa_deg);
    EXPECT_EQ(a.paths[p].toa_s, b.paths[p].toa_s);
    EXPECT_EQ(a.paths[p].power, b.paths[p].power);
  }
  EXPECT_EQ(a.direct.aoa_deg, b.direct.aoa_deg);
  EXPECT_EQ(a.direct.toa_s, b.direct.toa_s);
  const auto& av = a.spectrum.values;
  const auto& bv = b.spectrum.values;
  ASSERT_EQ(av.rows(), bv.rows());
  ASSERT_EQ(av.cols(), bv.cols());
  for (index_t j = 0; j < av.cols(); ++j) {
    for (index_t i = 0; i < av.rows(); ++i) {
      ASSERT_EQ(av(i, j), bv(i, j)) << "spectrum (" << i << "," << j << ")";
    }
  }
}

TEST(EstimateBatch, BitIdenticalAcrossThreadCountsAndVsPerCall) {
  const dsp::ArrayConfig arr;
  core::RoArrayConfig cfg;
  cfg.solver.max_iterations = 150;
  const auto bursts = test_bursts(4);

  // Reference: the legacy per-call API, no cache, no pool.
  std::vector<core::RoArrayResult> reference;
  for (const auto& b : bursts) {
    reference.push_back(core::roarray_estimate(b, cfg, arr));
  }

  OperatorCache cache;
  ThreadPool pool1(1), pool4(4);
  const auto serial =
      core::roarray_estimate_batch(bursts, cfg, arr, {&cache, &pool1});
  const auto parallel =
      core::roarray_estimate_batch(bursts, cfg, arr, {&cache, &pool4});

  ASSERT_EQ(serial.size(), bursts.size());
  ASSERT_EQ(parallel.size(), bursts.size());
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    expect_identical_results(serial[i], parallel[i]);
    expect_identical_results(reference[i], serial[i]);
  }
  EXPECT_EQ(cache.size(), 1u);  // one grid/array combination, shared.
}

}  // namespace
}  // namespace roarray::runtime
