// Concurrency stress tests for the runtime layer: contended
// OperatorCache access, concurrent top-level ThreadPool submitters, and
// pool shutdown while a job is in flight. These are the cases the
// ThreadSanitizer preset (build-tsan) exists to instrument — each test
// creates real cross-thread contention on the mutex-guarded state that
// the thread-safety annotations describe statically. They also run
// under the plain and ASan presets (label: runtime).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/operator_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace roarray::runtime {
namespace {

using linalg::index_t;

// Small grids so entry construction (power iteration + row gram) is
// cheap enough to hammer, but not trivial — a first-touch build still
// takes long enough for other threads to pile onto the lock.
dsp::Grid aoa_grid_for(int which) { return {0.0, 180.0, 9 + which}; }
dsp::Grid toa_grid_for(int which) { return {0.0, 400e-9, 4 + which}; }

TEST(ConcurrencyCache, ContendedGetYieldsOneInstancePerKey) {
  OperatorCache cache;
  const dsp::ArrayConfig arr;
  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  constexpr int kKeys = 3;

  // Every thread records the entry pointer it saw for each key; all
  // threads must agree, and the cache must hold exactly kKeys entries.
  std::vector<std::vector<const CachedOperator*>> seen(
      kThreads, std::vector<const CachedOperator*>(kKeys, nullptr));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int which = (t + i) % kKeys;
        const auto entry =
            cache.get(aoa_grid_for(which), toa_grid_for(which), arr);
        ASSERT_NE(entry, nullptr);
        // Entries are immutable once published: reading derived fields
        // from many threads at once must be race-free.
        ASSERT_GT(entry->norm_sq, 0.0);
        ASSERT_EQ(entry->row_gram.rows(), entry->op.rows());
        if (seen[t][which] == nullptr) {
          seen[t][which] = entry.get();
        } else {
          ASSERT_EQ(seen[t][which], entry.get()) << "thread " << t;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  for (int k = 0; k < kKeys; ++k) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][k], seen[0][k]) << "key " << k;
    }
  }
}

TEST(ConcurrencyCache, GetRacingClearKeepsHandedOutEntriesAlive) {
  OperatorCache cache;
  const dsp::ArrayConfig arr;
  std::atomic<bool> stop{false};
  std::atomic<int> gets{0};

  std::vector<std::thread> getters;
  for (int t = 0; t < 4; ++t) {
    getters.emplace_back([&] {
      while (!stop.load()) {
        const auto entry = cache.get(aoa_grid_for(0), toa_grid_for(0), arr);
        // The shared_ptr must keep the entry valid even if clear() just
        // dropped it from the map.
        ASSERT_GT(entry->norm_sq, 0.0);
        gets.fetch_add(1);
      }
    });
  }
  std::thread clearer([&] {
    while (gets.load() < 200) {
      cache.clear();
      std::this_thread::yield();
    }
  });
  clearer.join();
  stop.store(true);
  for (auto& th : getters) th.join();
  EXPECT_GE(gets.load(), 200);
}

TEST(ConcurrencyPool, ConcurrentTopLevelSubmittersEachRunEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr index_t kN = 300;
  std::vector<std::vector<std::atomic<int>>> hits(kSubmitters);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(static_cast<std::size_t>(kN));
  }
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 5; ++round) {
        pool.parallel_for(kN, [&, s](index_t i) {
          hits[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]
              .fetch_add(1);
        });
      }
    });
  }
  for (auto& th : submitters) th.join();
  for (int s = 0; s < kSubmitters; ++s) {
    for (index_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]
                    .load(),
                5)
          << "submitter " << s << " index " << i;
    }
  }
}

TEST(ConcurrencyPool, ExceptionUnderContentionPropagatesToItsSubmitterOnly) {
  ThreadPool pool(4);
  std::atomic<int> ok_done{0};
  std::thread ok_submitter([&] {
    for (int round = 0; round < 20; ++round) {
      pool.parallel_for(64, [&](index_t) { ok_done.fetch_add(1); });
    }
  });
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](index_t i) {
                                     if (i == 13) throw std::runtime_error("x");
                                   }),
                 std::runtime_error);
  }
  ok_submitter.join();
  EXPECT_EQ(ok_done.load(), 20 * 64);
}

TEST(ConcurrencyPool, DestructorDrainsJobInFlight) {
  for (int round = 0; round < 10; ++round) {
    auto pool = std::make_unique<ThreadPool>(4);
    constexpr index_t kN = 64;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(kN));
    std::atomic<bool> started{false};
    std::thread submitter([&] {
      pool->parallel_for(kN, [&](index_t i) {
        started.store(true);
        // Slow bodies so destruction overlaps the job, not just its tail.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
    });
    while (!started.load()) std::this_thread::yield();
    // Shutdown-while-busy: the destructor must block until the in-flight
    // parallel_for has finished (drain via call_mutex_), so the submitter
    // never touches freed pool state.
    pool.reset();
    submitter.join();
    for (index_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "round " << round << " index " << i;
    }
  }
}

TEST(ConcurrencyPool, RangeVariantUnderConcurrentSubmitters) {
  ThreadPool pool(3);
  std::vector<std::thread> submitters;
  std::vector<std::atomic<long>> sums(4);
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 10; ++round) {
        pool.parallel_for_range(101, 7, [&, s](index_t begin, index_t end) {
          long acc = 0;
          for (index_t i = begin; i < end; ++i) acc += i;
          sums[static_cast<std::size_t>(s)].fetch_add(acc);
        });
      }
    });
  }
  for (auto& th : submitters) th.join();
  for (auto& s : sums) EXPECT_EQ(s.load(), 10L * (100 * 101 / 2));
}

}  // namespace
}  // namespace roarray::runtime
