#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::linalg {
namespace {

TEST(Qr, ReconstructsSquareMatrix) {
  auto rng = testing::make_rng(1);
  const CMat a = testing::random_cmat(5, 5, rng);
  const QrResult f = qr(a);
  testing::expect_mat_near(matmul(f.q, f.r), a, 1e-10, "QR = A");
}

TEST(Qr, ReconstructsTallMatrix) {
  auto rng = testing::make_rng(2);
  const CMat a = testing::random_cmat(9, 4, rng);
  const QrResult f = qr(a);
  EXPECT_EQ(f.q.rows(), 9);
  EXPECT_EQ(f.q.cols(), 4);
  EXPECT_EQ(f.r.rows(), 4);
  testing::expect_mat_near(matmul(f.q, f.r), a, 1e-10, "QR = A");
}

TEST(Qr, QHasOrthonormalColumns) {
  auto rng = testing::make_rng(3);
  const CMat a = testing::random_cmat(8, 5, rng);
  const QrResult f = qr(a);
  testing::expect_orthonormal_columns(f.q, 1e-10);
}

TEST(Qr, RIsUpperTriangular) {
  auto rng = testing::make_rng(4);
  const CMat a = testing::random_cmat(6, 6, rng);
  const QrResult f = qr(a);
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = j + 1; i < 6; ++i)
      EXPECT_NEAR(std::abs(f.r(i, j)), 0.0, 1e-12);
}

TEST(Qr, WideMatrixThrows) {
  EXPECT_THROW(qr(CMat(2, 5)), std::invalid_argument);
}

TEST(Qr, SolveRecoversKnownSolution) {
  auto rng = testing::make_rng(5);
  const CMat a = testing::random_cmat(7, 7, rng);
  const CVec x_true = testing::random_cvec(7, rng);
  const CVec b = matvec(a, x_true);
  const CVec x = solve(a, b);
  testing::expect_vec_near(x, x_true, 1e-9, "solve");
}

TEST(Qr, SolveMultipleRhs) {
  auto rng = testing::make_rng(6);
  const CMat a = testing::random_cmat(5, 5, rng);
  const CMat x_true = testing::random_cmat(5, 3, rng);
  const CMat b = matmul(a, x_true);
  const CMat x = solve(a, b);
  testing::expect_mat_near(x, x_true, 1e-9, "multi-rhs solve");
}

TEST(Qr, SolveRejectsNonSquare) {
  EXPECT_THROW(solve(CMat(3, 2), CVec(3)), std::invalid_argument);
}

TEST(Qr, SolveSingularThrows) {
  CMat a(3, 3);  // rank 1
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) a(i, j) = cxd{1.0, 0.0};
  EXPECT_THROW(solve(a, CVec(3)), std::domain_error);
}

TEST(Qr, LstsqExactForConsistentSystem) {
  auto rng = testing::make_rng(7);
  const CMat a = testing::random_cmat(10, 4, rng);
  const CVec x_true = testing::random_cvec(4, rng);
  const CVec b = matvec(a, x_true);
  testing::expect_vec_near(lstsq(a, b), x_true, 1e-9, "consistent lstsq");
}

TEST(Qr, LstsqResidualIsOrthogonalToRange) {
  auto rng = testing::make_rng(8);
  const CMat a = testing::random_cmat(12, 5, rng);
  const CVec b = testing::random_cvec(12, rng);
  const CVec x = lstsq(a, b);
  CVec r = matvec(a, x);
  r -= b;
  // Normal equations: A^H r = 0 at the least-squares optimum.
  const CVec g = matvec_adj(a, r);
  EXPECT_NEAR(norm2(g), 0.0, 1e-8);
}

TEST(Qr, LstsqSizeMismatchThrows) {
  EXPECT_THROW(lstsq(CMat(4, 2), CVec(3)), std::invalid_argument);
}

TEST(Qr, HandlesZeroColumnGracefully) {
  CMat a(3, 2);
  a(0, 1) = cxd{1.0, 0.0};  // first column all zero
  EXPECT_THROW(lstsq(a, CVec(3)), std::domain_error);
}

class QrRandomSizes : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(QrRandomSizes, FactorizationInvariantsHold) {
  const auto [m, n] = GetParam();
  auto rng = testing::make_rng(static_cast<std::uint64_t>(m * 100 + n));
  const CMat a = testing::random_cmat(m, n, rng);
  const QrResult f = qr(a);
  testing::expect_mat_near(matmul(f.q, f.r), a, 1e-9, "QR = A");
  testing::expect_orthonormal_columns(f.q, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, QrRandomSizes,
    ::testing::Values(std::pair<index_t, index_t>{1, 1},
                      std::pair<index_t, index_t>{3, 1},
                      std::pair<index_t, index_t>{4, 4},
                      std::pair<index_t, index_t>{10, 3},
                      std::pair<index_t, index_t>{20, 12},
                      std::pair<index_t, index_t>{30, 30},
                      std::pair<index_t, index_t>{50, 8}));

}  // namespace
}  // namespace roarray::linalg
