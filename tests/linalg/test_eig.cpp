#include "linalg/eig.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::linalg {
namespace {

TEST(EigHermitian, DiagonalMatrix) {
  CMat a(3, 3);
  a(0, 0) = cxd{3.0, 0.0};
  a(1, 1) = cxd{1.0, 0.0};
  a(2, 2) = cxd{2.0, 0.0};
  const EigResult e = eig_hermitian(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[2], 3.0, 1e-12);
}

TEST(EigHermitian, KnownTwoByTwo) {
  // [[2, i], [-i, 2]] has eigenvalues 1 and 3.
  CMat a(2, 2);
  a(0, 0) = cxd{2.0, 0.0};
  a(0, 1) = cxd{0.0, 1.0};
  a(1, 0) = cxd{0.0, -1.0};
  a(1, 1) = cxd{2.0, 0.0};
  const EigResult e = eig_hermitian(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-10);
}

TEST(EigHermitian, NonSquareThrows) {
  EXPECT_THROW(eig_hermitian(CMat(2, 3)), std::invalid_argument);
}

TEST(EigHermitian, NonHermitianThrows) {
  CMat a(2, 2);
  a(0, 1) = cxd{1.0, 0.0};
  a(1, 0) = cxd{5.0, 0.0};
  EXPECT_THROW(eig_hermitian(a), std::invalid_argument);
}

TEST(EigHermitian, EigenvectorsAreUnitary) {
  auto rng = testing::make_rng(31);
  const CMat a = testing::random_hermitian(8, rng);
  const EigResult e = eig_hermitian(a);
  testing::expect_orthonormal_columns(e.eigenvectors, 1e-9);
}

TEST(EigHermitian, SatisfiesEigenEquation) {
  auto rng = testing::make_rng(32);
  const CMat a = testing::random_hermitian(10, rng);
  const EigResult e = eig_hermitian(a);
  for (index_t k = 0; k < 10; ++k) {
    const CVec v = e.eigenvectors.col_vec(k);
    CVec av = matvec(a, v);
    CVec lv = v;
    lv *= cxd{e.eigenvalues[k], 0.0};
    av -= lv;
    EXPECT_NEAR(norm2(av), 0.0, 1e-8) << "eigenpair " << k;
  }
}

TEST(EigHermitian, ReconstructsMatrix) {
  auto rng = testing::make_rng(33);
  const CMat a = testing::random_hermitian(6, rng);
  const EigResult e = eig_hermitian(a);
  CMat d(6, 6);
  for (index_t i = 0; i < 6; ++i) d(i, i) = cxd{e.eigenvalues[i], 0.0};
  const CMat rec = matmul(matmul(e.eigenvectors, d), adjoint(e.eigenvectors));
  testing::expect_mat_near(rec, a, 1e-8, "V D V^H = A");
}

TEST(EigHermitian, TraceEqualsEigenvalueSum) {
  auto rng = testing::make_rng(34);
  const CMat a = testing::random_hermitian(12, rng);
  const EigResult e = eig_hermitian(a);
  double tr = 0.0;
  for (index_t i = 0; i < 12; ++i) tr += a(i, i).real();
  double sum = 0.0;
  for (index_t i = 0; i < 12; ++i) sum += e.eigenvalues[i];
  EXPECT_NEAR(tr, sum, 1e-8);
}

TEST(EigHermitian, PsdMatrixHasNonNegativeEigenvalues) {
  auto rng = testing::make_rng(35);
  const CMat b = testing::random_cmat(6, 3, rng);
  const CMat a = matmul(b, adjoint(b));  // rank <= 3, PSD
  const EigResult e = eig_hermitian(a);
  for (index_t i = 0; i < 6; ++i) EXPECT_GE(e.eigenvalues[i], -1e-9);
  // Rank deficiency: the three smallest eigenvalues vanish.
  EXPECT_NEAR(e.eigenvalues[0], 0.0, 1e-8);
  EXPECT_NEAR(e.eigenvalues[2], 0.0, 1e-8);
  EXPECT_GT(e.eigenvalues[3], 1e-6);
}

TEST(EigHermitian, RepeatedEigenvaluesHandled) {
  const CMat a = CMat::identity(5) * cxd{4.0, 0.0};
  const EigResult e = eig_hermitian(a);
  for (index_t i = 0; i < 5; ++i) EXPECT_NEAR(e.eigenvalues[i], 4.0, 1e-12);
  testing::expect_orthonormal_columns(e.eigenvectors, 1e-10);
}

class EigSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(EigSizes, InvariantsAcrossSizes) {
  const index_t n = GetParam();
  auto rng = testing::make_rng(static_cast<std::uint64_t>(1000 + n));
  const CMat a = testing::random_hermitian(n, rng);
  const EigResult e = eig_hermitian(a);
  testing::expect_orthonormal_columns(e.eigenvectors, 1e-8);
  // Ascending order.
  for (index_t i = 1; i < n; ++i) {
    EXPECT_LE(e.eigenvalues[i - 1], e.eigenvalues[i] + 1e-12);
  }
  // Frobenius norm preserved: sum lambda_i^2 = ||A||_F^2.
  double sum_sq = 0.0;
  for (index_t i = 0; i < n; ++i) sum_sq += e.eigenvalues[i] * e.eigenvalues[i];
  EXPECT_NEAR(std::sqrt(sum_sq), norm_fro(a), 1e-7 * std::max(1.0, norm_fro(a)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 30, 48));

}  // namespace
}  // namespace roarray::linalg
