#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::linalg {
namespace {

TEST(Cholesky, ReconstructsHpdMatrix) {
  auto rng = testing::make_rng(51);
  const CMat a = testing::random_hpd(6, rng);
  const CMat l = cholesky(a);
  testing::expect_mat_near(matmul(l, adjoint(l)), a, 1e-9, "L L^H = A");
}

TEST(Cholesky, FactorIsLowerTriangularWithPositiveDiagonal) {
  auto rng = testing::make_rng(52);
  const CMat a = testing::random_hpd(5, rng);
  const CMat l = cholesky(a);
  for (index_t j = 0; j < 5; ++j) {
    EXPECT_GT(l(j, j).real(), 0.0);
    EXPECT_NEAR(l(j, j).imag(), 0.0, 1e-12);
    for (index_t i = 0; i < j; ++i) EXPECT_NEAR(std::abs(l(i, j)), 0.0, 1e-15);
  }
}

TEST(Cholesky, NonSquareThrows) {
  EXPECT_THROW(cholesky(CMat(2, 3)), std::invalid_argument);
}

TEST(Cholesky, IndefiniteThrows) {
  CMat a = CMat::identity(3);
  a(1, 1) = cxd{-1.0, 0.0};
  EXPECT_THROW(cholesky(a), std::domain_error);
}

TEST(Cholesky, SingularThrows) {
  CMat a(2, 2);
  a(0, 0) = cxd{1.0, 0.0};
  a(0, 1) = cxd{1.0, 0.0};
  a(1, 0) = cxd{1.0, 0.0};
  a(1, 1) = cxd{1.0, 0.0};
  EXPECT_THROW(cholesky(a), std::domain_error);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  auto rng = testing::make_rng(53);
  const CMat a = testing::random_hpd(8, rng);
  const CVec x_true = testing::random_cvec(8, rng);
  const CVec b = matvec(a, x_true);
  const CMat l = cholesky(a);
  testing::expect_vec_near(cholesky_solve(l, b), x_true, 1e-8, "chol solve");
}

TEST(Cholesky, SolveSizeMismatchThrows) {
  auto rng = testing::make_rng(54);
  const CMat l = cholesky(testing::random_hpd(3, rng));
  EXPECT_THROW(cholesky_solve(l, CVec(4)), std::invalid_argument);
}

class CholeskySizes : public ::testing::TestWithParam<index_t> {};

TEST_P(CholeskySizes, SolveConsistentAcrossSizes) {
  const index_t n = GetParam();
  auto rng = testing::make_rng(static_cast<std::uint64_t>(500 + n));
  const CMat a = testing::random_hpd(n, rng);
  const CVec x_true = testing::random_cvec(n, rng);
  const CVec b = matvec(a, x_true);
  const CVec x = cholesky_solve(cholesky(a), b);
  CVec err = x;
  err -= x_true;
  EXPECT_NEAR(norm2(err), 0.0, 1e-7 * std::max(1.0, norm2(x_true)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1, 2, 4, 10, 24, 64, 90));

}  // namespace
}  // namespace roarray::linalg
