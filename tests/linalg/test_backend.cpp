// Differential suite for the compute-backend tables: every published
// SIMD table must match the scalar table over adversarial inputs within
// the per-kernel tolerances documented in backend.hpp. The inputs are
// crafted around the documented divergences (zero-skip granularity in
// gemm_tile, squared-magnitude underflow in soft_threshold): those
// regions get their own semantics tests instead of a comparison.
#include "linalg/backend/backend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "runtime/thread_pool.hpp"
#include "../test_util.hpp"

namespace roarray::linalg::backend {
namespace {

namespace rt = roarray::testing;

constexpr double kEps = std::numeric_limits<double>::epsilon();

double max_abs(const CMat& m) {
  double mx = 0.0;
  for (index_t j = 0; j < m.cols(); ++j)
    for (index_t i = 0; i < m.rows(); ++i) mx = std::max(mx, std::abs(m(i, j)));
  return mx;
}

/// max_j sum_l |B(l,j)| — the magnitude-sum factor of the gemm
/// forward-error bound in backend.hpp.
double max_col_abs_sum(const CMat& m) {
  double mx = 0.0;
  for (index_t j = 0; j < m.cols(); ++j) {
    double s = 0.0;
    for (index_t i = 0; i < m.rows(); ++i) s += std::abs(m(i, j));
    mx = std::max(mx, s);
  }
  return mx;
}

void expect_gemm_close(const CMat& simd_c, const CMat& scalar_c, index_t k,
                       double amax, double bsum, const char* what) {
  // backend.hpp gemm tolerance: the gamma_k dot-product bound,
  // 8 * eps * k * max|A| * max_j sum_l |B(l,j)| per element.
  const double tol = 8.0 * kEps * static_cast<double>(k) * amax * bsum;
  for (index_t j = 0; j < scalar_c.cols(); ++j) {
    for (index_t i = 0; i < scalar_c.rows(); ++i) {
      EXPECT_NEAR(simd_c(i, j).real(), scalar_c(i, j).real(), tol)
          << what << " at (" << i << "," << j << ")";
      EXPECT_NEAR(simd_c(i, j).imag(), scalar_c(i, j).imag(), tol)
          << what << " at (" << i << "," << j << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Selection and provenance.

TEST(BackendDispatch, ScalarTableIsAlwaysPublished) {
  EXPECT_STREQ(scalar().name, "scalar");
  EXPECT_NE(scalar().gemm_tile, nullptr);
  EXPECT_NE(scalar().phase_ramp_accum, nullptr);
}

TEST(BackendDispatch, DispatchInfoIsConsistent) {
  const Dispatch d = dispatch_info();
  ASSERT_NE(d.selected, nullptr);
  EXPECT_EQ(d.selected, &active());
  EXPECT_EQ(d.simd_compiled, simd_compiled());
  // A supported SIMD table implies a compiled one, and the published
  // table pointer agrees with the support flag.
  if (d.simd_supported) EXPECT_TRUE(d.simd_compiled);
  EXPECT_EQ(simd() != nullptr, d.simd_compiled && d.simd_supported);
  const std::string req = d.requested;
  EXPECT_TRUE(req == "auto" || req == "scalar" || req == "simd") << req;
}

TEST(BackendDispatch, ForceRoundTrips) {
  const Backend* before = &active();
  force(&scalar());
  EXPECT_EQ(&active(), &scalar());
  EXPECT_STREQ(dispatch_info().requested, "force");
  force(nullptr);
  EXPECT_EQ(&active(), before);
}

// ---------------------------------------------------------------------------
// Storage alignment (the SIMD tables may use aligned loads on column
// bases; alignment is a property of the allocation so it must survive
// moves and swaps).

TEST(BackendStorage, MatrixAndVectorBuffersAreCacheLineAligned) {
  static_assert(kBufferAlign >= 64);
  CMat m(7, 3);
  CVec v(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % kBufferAlign, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kBufferAlign, 0u);
}

TEST(BackendStorage, AlignmentSurvivesMoveAndSwap) {
  CMat m(33, 4);
  const cxd* before = m.data();
  CMat moved = std::move(m);
  EXPECT_EQ(moved.data(), before);  // the buffer moved owner, not address
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(moved.data()) % kBufferAlign, 0u);
  CVec a(9), b(17);
  const cxd* pa = a.data();
  const cxd* pb = b.data();
  std::swap(a, b);
  EXPECT_EQ(a.data(), pb);
  EXPECT_EQ(b.data(), pa);
}

// ---------------------------------------------------------------------------
// Differential: simd vs scalar. Skipped (visibly) when this binary or
// machine has no SIMD table — the scalar-vs-scalar comparison would be
// vacuous.

class BackendDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    simd_ = simd();
    if (simd_ == nullptr) {
      GTEST_SKIP() << "no SIMD table on this build/machine";
    }
  }
  const Backend* simd_ = nullptr;
};

// Adversarial B matrices exercise the zero-skip: whole zero rows (the
// row-sparse iterates the skip exists for), denormal entries, and
// signed zeros. A stays finite and normal-range: the documented
// zero-skip granularity divergence means a zero B entry *next to* a
// nonzero one contributes exact +/-0 terms on the simd path, which only
// matters for non-finite or sign-of-zero A contributions.
CMat adversarial_b(index_t k, index_t n, std::mt19937_64& rng) {
  CMat b = rt::random_cmat(k, n, rng);
  for (index_t i = 0; i < k; i += 3) {        // whole zero rows
    for (index_t j = 0; j < n; ++j) b(i, j) = cxd{0.0, 0.0};
  }
  if (k > 1) {
    for (index_t j = 0; j < n; j += 2) {      // scattered signed zeros
      b(1, j) = cxd{-0.0, 0.0};
    }
  }
  if (k > 4) {
    for (index_t j = 0; j < n; ++j) {         // denormals
      b(4, j) = cxd{5e-320, -3e-310};
    }
  }
  return b;
}

TEST_F(BackendDifferential, GemmMatchesScalarOnAdversarialInputs) {
  auto rng = rt::make_rng(701);
  // Shapes hit every dispatch path: fixed-height (m <= 16), fixed-depth
  // (k <= 8), the packed tile fast path (m, k large; n covers full
  // 4-column groups plus every tail width), odd row tails, and a
  // reduction crossing the k-chunk boundary (kKc = 256).
  const index_t shapes[][3] = {
      {7, 5, 40},    {16, 9, 33},  {17, 3, 9},   {37, 11, 300},
      {90, 8, 641},  {129, 7, 260}, {130, 33, 12}, {20, 6, 257},
  };
  for (const auto& s : shapes) {
    const index_t m = s[0], n = s[1], k = s[2];
    const CMat a = rt::random_cmat(m, k, rng);
    const CMat b = adversarial_b(k, n, rng);
    const CMat cs = matmul_blocked(a, b, nullptr, &scalar());
    const CMat cv = matmul_blocked(a, b, nullptr, simd_);
    expect_gemm_close(cv, cs, k, max_abs(a), max_col_abs_sum(b), "gemm");
  }
}

TEST_F(BackendDifferential, GemmAdjointMatchesScalar) {
  auto rng = rt::make_rng(702);
  const index_t shapes[][3] = {{5, 4, 30}, {33, 9, 101}, {64, 17, 7}};
  for (const auto& s : shapes) {
    const index_t m = s[0], n = s[1], k = s[2];
    const CMat a = rt::random_cmat(k, m, rng);
    const CMat b = rt::random_cmat(k, n, rng);
    const CMat cs = matmul_adj_left_blocked(a, b, nullptr, &scalar());
    const CMat cv = matmul_adj_left_blocked(a, b, nullptr, simd_);
    expect_gemm_close(cv, cs, k, max_abs(a), max_col_abs_sum(b), "gemm_adj");
  }
}

TEST_F(BackendDifferential, GemmZeroSkipIsExactOnRowSparseB) {
  // When B's zero structure is whole rows (the case the skip exists
  // for), the simd path skips exactly the steps scalar skips: results
  // stay within rounding even though the skip granularity differs.
  auto rng = rt::make_rng(703);
  const index_t m = 37, n = 9, k = 120;
  const CMat a = rt::random_cmat(m, k, rng);
  CMat b = rt::random_cmat(k, n, rng);
  for (index_t i = 0; i < k; ++i) {
    if (i % 4 != 0) {  // keep every 4th row: 75% zero rows
      for (index_t j = 0; j < n; ++j) b(i, j) = cxd{0.0, 0.0};
    }
  }
  const CMat cs = matmul_blocked(a, b, nullptr, &scalar());
  const CMat cv = matmul_blocked(a, b, nullptr, simd_);
  expect_gemm_close(cv, cs, k, max_abs(a), max_col_abs_sum(b), "sparse gemm");
}

TEST_F(BackendDifferential, SoftThresholdMatchesScalarIncludingEdges) {
  auto rng = rt::make_rng(704);
  const double t = 0.8;
  // Magnitudes straddling t from both sides, exact zeros, huge values,
  // and elements exactly at |x| = t (both tables must zero them). NaN
  // and (inf, finite) go through the semantics test below, not a
  // numeric comparison.
  for (const index_t n : {index_t{1}, index_t{2}, index_t{7}, index_t{64},
                          index_t{257}}) {
    CVec x = rt::random_cvec(n, rng);
    if (n > 2) x[1] = cxd{0.0, -0.0};
    if (n > 3) x[3] = cxd{t, 0.0};            // exactly at the threshold
    if (n > 4) x[4] = cxd{1e200, -1e200};     // |x|^2 overflows to inf
    CVec xs = x;
    CVec xv = x;
    scalar().soft_threshold(xs.data(), n, t);
    simd_->soft_threshold(xv.data(), n, t);
    for (index_t i = 0; i < n; ++i) {
      const double tol = 4.0 * kEps * std::abs(x[i]);
      EXPECT_NEAR(xv[i].real(), xs[i].real(), tol) << "i=" << i << " n=" << n;
      EXPECT_NEAR(xv[i].imag(), xs[i].imag(), tol) << "i=" << i << " n=" << n;
    }
  }
}

TEST_F(BackendDifferential, SoftThresholdKeepsNanOnScaleBranch) {
  // NaN magnitudes fail |x| <= t on both tables, so the element is
  // scaled (stays NaN) rather than zeroed.
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  for (const Backend* be : {&scalar(), simd_}) {
    CVec x(4);
    x[0] = cxd{qnan, 1.0};
    x[1] = cxd{2.0, qnan};
    x[2] = cxd{0.1, 0.1};   // below threshold: zeroed
    x[3] = cxd{3.0, -4.0};  // above: scaled, finite
    be->soft_threshold(x.data(), 4, 1.0);
    EXPECT_TRUE(std::isnan(x[0].real())) << be->name;
    EXPECT_TRUE(std::isnan(x[1].imag())) << be->name;
    EXPECT_EQ(x[2], (cxd{0.0, 0.0})) << be->name;
    EXPECT_NEAR(std::abs(x[3]), 4.0, 1e-12) << be->name;
  }
}

TEST_F(BackendDifferential, RowScaleIsBitIdentical) {
  auto rng = rt::make_rng(705);
  for (const index_t n : {index_t{1}, index_t{6}, index_t{31}}) {
    CVec col = rt::random_cvec(n, rng);
    std::vector<double> s(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      s[static_cast<std::size_t>(i)] = (i % 3 == 0) ? -1.0 : 0.25 * double(i);
    }
    CVec cs = col;
    CVec cv = col;
    scalar().row_scale(cs.data(), n, s.data());
    simd_->row_scale(cv.data(), n, s.data());
    EXPECT_EQ(0, std::memcmp(cs.data(), cv.data(),
                             static_cast<std::size_t>(n) * sizeof(cxd)))
        << "row_scale must be bit-identical (n=" << n << ")";
    // Negative markers produce exact +0, not -0.
    EXPECT_EQ(0.0, cv[0].real());
    EXPECT_FALSE(std::signbit(cv[0].real()));
  }
}

TEST_F(BackendDifferential, RowSqAccumulateMatchesScalar) {
  auto rng = rt::make_rng(706);
  for (const index_t n : {index_t{1}, index_t{8}, index_t{129}}) {
    const CVec col = rt::random_cvec(n, rng);
    std::vector<double> as(static_cast<std::size_t>(n), 0.5);
    std::vector<double> av = as;
    scalar().row_sq_accumulate(col.data(), n, as.data());
    simd_->row_sq_accumulate(col.data(), n, av.data());
    for (index_t i = 0; i < n; ++i) {
      const double tol = 2.0 * kEps * std::norm(col[i]) + 2.0 * kEps;
      EXPECT_NEAR(av[static_cast<std::size_t>(i)],
                  as[static_cast<std::size_t>(i)], tol) << "i=" << i;
    }
  }
}

TEST_F(BackendDifferential, PhaseRampMatchesScalar) {
  const cxd step = std::polar(1.0, 0.37);  // |step| = 1 like every caller
  const cxd gain = std::polar(1.7, -1.1);
  for (const index_t n : {index_t{1}, index_t{2}, index_t{3}, index_t{5},
                          index_t{64}, index_t{1001}}) {
    CVec os(n), ov(n);
    scalar().phase_ramp(gain, step, n, os.data());
    simd_->phase_ramp(gain, step, n, ov.data());
    for (index_t i = 0; i < n; ++i) {
      const double tol = 2.0 * kEps * static_cast<double>(n) * std::abs(gain);
      EXPECT_NEAR(ov[i].real(), os[i].real(), tol) << "i=" << i << " n=" << n;
      EXPECT_NEAR(ov[i].imag(), os[i].imag(), tol) << "i=" << i << " n=" << n;
    }
    // The accumulating variant adds the same ramp on top of a payload.
    CVec bs(n, cxd{0.5, -0.25});
    CVec bv = bs;
    scalar().phase_ramp_accum(gain, step, n, bs.data());
    simd_->phase_ramp_accum(gain, step, n, bv.data());
    for (index_t i = 0; i < n; ++i) {
      const double tol =
          4.0 * kEps * static_cast<double>(n) * (std::abs(gain) + 1.0);
      EXPECT_NEAR(bv[i].real(), bs[i].real(), tol) << "i=" << i << " n=" << n;
    }
  }
}

TEST_F(BackendDifferential, PooledGemmIsBitIdenticalPerTable) {
  // The determinism contract: on a fixed table, pooled and serial runs
  // produce bit-identical results (the tile partition never depends on
  // the pool). Checked for both tables.
  auto rng = rt::make_rng(707);
  const CMat a = rt::random_cmat(130, 300, rng);
  const CMat b = rt::random_cmat(300, 40, rng);
  runtime::ThreadPool pool(3);
  for (const Backend* be : {&scalar(), simd_}) {
    const CMat serial = matmul_blocked(a, b, nullptr, be);
    const CMat pooled = matmul_blocked(a, b, &pool, be);
    EXPECT_EQ(0, std::memcmp(serial.data(), pooled.data(),
                             static_cast<std::size_t>(serial.size()) *
                                 sizeof(cxd)))
        << be->name;
  }
}

}  // namespace
}  // namespace roarray::linalg::backend
