#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::linalg {
namespace {

CMat reconstruct(const SvdResult& s) {
  CMat usv(s.u.rows(), s.v.rows());
  for (index_t k = 0; k < s.singular_values.size(); ++k) {
    for (index_t j = 0; j < s.v.rows(); ++j) {
      for (index_t i = 0; i < s.u.rows(); ++i) {
        usv(i, j) += s.u(i, k) * s.singular_values[k] * std::conj(s.v(j, k));
      }
    }
  }
  return usv;
}

TEST(Svd, ReconstructsTallMatrix) {
  auto rng = testing::make_rng(41);
  const CMat a = testing::random_cmat(8, 4, rng);
  const SvdResult s = svd(a);
  testing::expect_mat_near(reconstruct(s), a, 1e-8, "U S V^H = A");
}

TEST(Svd, ReconstructsWideMatrix) {
  auto rng = testing::make_rng(42);
  const CMat a = testing::random_cmat(3, 9, rng);
  const SvdResult s = svd(a);
  testing::expect_mat_near(reconstruct(s), a, 1e-8, "U S V^H = A");
}

TEST(Svd, FactorsAreOrthonormal) {
  auto rng = testing::make_rng(43);
  const CMat a = testing::random_cmat(7, 5, rng);
  const SvdResult s = svd(a);
  testing::expect_orthonormal_columns(s.u, 1e-8);
  testing::expect_orthonormal_columns(s.v, 1e-8);
}

TEST(Svd, SingularValuesDescendingAndNonNegative) {
  auto rng = testing::make_rng(44);
  const CMat a = testing::random_cmat(10, 6, rng);
  const SvdResult s = svd(a);
  for (index_t i = 0; i < s.singular_values.size(); ++i) {
    EXPECT_GE(s.singular_values[i], 0.0);
    if (i > 0) EXPECT_LE(s.singular_values[i], s.singular_values[i - 1] + 1e-12);
  }
}

TEST(Svd, FrobeniusNormIdentity) {
  auto rng = testing::make_rng(45);
  const CMat a = testing::random_cmat(6, 6, rng);
  const SvdResult s = svd(a);
  double acc = 0.0;
  for (index_t i = 0; i < s.singular_values.size(); ++i) {
    acc += s.singular_values[i] * s.singular_values[i];
  }
  EXPECT_NEAR(std::sqrt(acc), norm_fro(a), 1e-8 * std::max(1.0, norm_fro(a)));
}

TEST(Svd, RankDeficientMatrix) {
  auto rng = testing::make_rng(46);
  const CMat b = testing::random_cmat(8, 2, rng);
  const CMat c = testing::random_cmat(2, 5, rng);
  const CMat a = matmul(b, c);  // rank 2
  const SvdResult s = svd(a);
  EXPECT_EQ(s.rank(1e-8), 2);
  EXPECT_NEAR(s.singular_values[2], 0.0, 1e-7);
  testing::expect_mat_near(reconstruct(s), a, 1e-7, "rank-2 reconstruction");
  // Basis completion must keep U orthonormal even for null directions.
  testing::expect_orthonormal_columns(s.u, 1e-6);
}

TEST(Svd, KnownDiagonalCase) {
  CMat a(3, 2);
  a(0, 0) = cxd{3.0, 0.0};
  a(1, 1) = cxd{0.0, 4.0};  // magnitude 4
  const SvdResult s = svd(a);
  EXPECT_NEAR(s.singular_values[0], 4.0, 1e-10);
  EXPECT_NEAR(s.singular_values[1], 3.0, 1e-10);
}

TEST(Svd, DominantSubspaceOfNoisyLowRank) {
  // Signal: rank-1 outer product with large amplitude + small noise.
  auto rng = testing::make_rng(47);
  const CVec u = testing::random_cvec(20, rng);
  const CVec v = testing::random_cvec(6, rng);
  CMat a(20, 6);
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i < 20; ++i) a(i, j) = 10.0 * u[i] * std::conj(v[j]);
  const CMat noise = testing::random_cmat(20, 6, rng);
  CMat noisy = a;
  CMat small_noise = noise;
  small_noise *= cxd{0.01, 0.0};
  noisy += small_noise;
  const SvdResult s = svd(noisy);
  // One dominant singular value, the rest tiny.
  EXPECT_GT(s.singular_values[0], 50.0 * s.singular_values[1]);
}

TEST(Svd, EmptyAndSingleElement) {
  const SvdResult s1 = svd(CMat(1, 1, cxd{2.0, 0.0}));
  EXPECT_NEAR(s1.singular_values[0], 2.0, 1e-12);
}

class SvdSizes
    : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(SvdSizes, InvariantsAcrossShapes) {
  const auto [m, n] = GetParam();
  auto rng = testing::make_rng(static_cast<std::uint64_t>(m * 37 + n));
  const CMat a = testing::random_cmat(m, n, rng);
  const SvdResult s = svd(a);
  EXPECT_EQ(s.singular_values.size(), std::min(m, n));
  testing::expect_mat_near(reconstruct(s), a, 1e-7, "reconstruction");
  testing::expect_orthonormal_columns(s.u, 1e-7);
  testing::expect_orthonormal_columns(s.v, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdSizes,
    ::testing::Values(std::pair<index_t, index_t>{1, 4},
                      std::pair<index_t, index_t>{4, 1},
                      std::pair<index_t, index_t>{5, 5},
                      std::pair<index_t, index_t>{12, 4},
                      std::pair<index_t, index_t>{4, 12},
                      std::pair<index_t, index_t>{30, 10},
                      std::pair<index_t, index_t>{90, 15}));

}  // namespace
}  // namespace roarray::linalg
