#include "linalg/gemm.hpp"

#include <gtest/gtest.h>

#include "runtime/thread_pool.hpp"
#include "../test_util.hpp"

namespace roarray::linalg {
namespace {

namespace rt = roarray::testing;

// Shapes chosen to hit every dispatch path in gemm():
//  - m <= 16: fixed-height column kernels,
//  - k <= 8 (m > 16): fixed-depth kernels,
//  - both large: the generic blocked tile,
// plus degenerate edges.
struct Shape {
  index_t m, n, k;
};

const Shape kShapes[] = {
    {1, 1, 1},    // scalar
    {3, 50, 91},  // Kronecker forward first GEMM (small m)
    {15, 30, 50}, // small m near the kSmallRowLimit boundary
    {16, 5, 40},  // exactly at the fixed-height limit
    {91, 250, 3}, // Kronecker adjoint final GEMM (small k)
    {90, 12, 8},  // exactly at the fixed-depth limit
    {17, 9, 9},   // just past both small limits: generic tile
    {130, 40, 33},// spans multiple row tiles
    {20, 70, 140},// spans multiple column tiles
};

TEST(GemmBlocked, MatchesNaiveMatmulAcrossDispatchPaths) {
  auto rng = rt::make_rng(610);
  for (const auto& s : kShapes) {
    const CMat a = rt::random_cmat(s.m, s.k, rng);
    const CMat b = rt::random_cmat(s.k, s.n, rng);
    rt::expect_mat_near(matmul_blocked(a, b), matmul(a, b), 1e-12, "gemm");
  }
}

TEST(GemmBlocked, AdjointLeftMatchesNaive) {
  auto rng = rt::make_rng(611);
  for (const auto& s : kShapes) {
    // A is k x m here (the adjoint contracts over rows).
    const CMat a = rt::random_cmat(s.k, s.m, rng);
    const CMat b = rt::random_cmat(s.k, s.n, rng);
    rt::expect_mat_near(matmul_adj_left_blocked(a, b), matmul_adj_left(a, b),
                        1e-12, "gemm_adj_left");
  }
}

TEST(GemmBlocked, HandlesZeroEntriesLikeNaive) {
  // The zero-skip must not change values when B is sparse.
  auto rng = rt::make_rng(612);
  CMat a = rt::random_cmat(21, 30, rng);
  CMat b = rt::random_cmat(30, 10, rng);
  for (index_t j = 0; j < b.cols(); ++j) {
    for (index_t i = 0; i < b.rows(); ++i) {
      if ((i + j) % 3 != 0) b(i, j) = cxd{0.0, 0.0};
    }
  }
  rt::expect_mat_near(matmul_blocked(a, b), matmul(a, b), 1e-12, "sparse b");
}

TEST(GemmBlocked, EmptyInnerDimensionYieldsZero) {
  const CMat a(4, 0);
  const CMat b(0, 3);
  const CMat c = matmul_blocked(a, b);
  ASSERT_EQ(c.rows(), 4);
  ASSERT_EQ(c.cols(), 3);
  for (index_t j = 0; j < 3; ++j) {
    for (index_t i = 0; i < 4; ++i) {
      EXPECT_EQ(c(i, j), (cxd{0.0, 0.0}));
    }
  }
}

TEST(GemmBlocked, ShapeMismatchThrows) {
  const CMat a(4, 5);
  const CMat b(6, 3);
  EXPECT_THROW(matmul_blocked(a, b), std::invalid_argument);
  EXPECT_THROW(matmul_adj_left_blocked(a, b), std::invalid_argument);
}

TEST(GemmBlocked, PooledRunsBitIdenticalToSerial) {
  // The output partition depends only on the output shape, so results
  // must match serial execution bit for bit at any thread count.
  auto rng = rt::make_rng(613);
  runtime::ThreadPool pool(4);
  for (const auto& s : kShapes) {
    const CMat a = rt::random_cmat(s.m, s.k, rng);
    const CMat b = rt::random_cmat(s.k, s.n, rng);
    const CMat serial = matmul_blocked(a, b);
    const CMat pooled = matmul_blocked(a, b, &pool);
    ASSERT_EQ(serial.rows(), pooled.rows());
    ASSERT_EQ(serial.cols(), pooled.cols());
    for (index_t j = 0; j < serial.cols(); ++j) {
      for (index_t i = 0; i < serial.rows(); ++i) {
        EXPECT_EQ(serial(i, j), pooled(i, j))
            << "m=" << s.m << " n=" << s.n << " k=" << s.k << " at (" << i
            << "," << j << ")";
      }
    }
    const CMat at = rt::random_cmat(s.k, s.m, rng);
    const CMat serial_adj = matmul_adj_left_blocked(at, b);
    const CMat pooled_adj = matmul_adj_left_blocked(at, b, &pool);
    for (index_t j = 0; j < serial_adj.cols(); ++j) {
      for (index_t i = 0; i < serial_adj.rows(); ++i) {
        EXPECT_EQ(serial_adj(i, j), pooled_adj(i, j)) << "adj";
      }
    }
  }
}

}  // namespace
}  // namespace roarray::linalg
