#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  CMat m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 2; ++i) EXPECT_EQ(m(i, j), cxd{});
}

TEST(Matrix, NegativeDimensionThrows) {
  EXPECT_THROW(CMat(-1, 2), std::invalid_argument);
  EXPECT_THROW(CMat(2, -1), std::invalid_argument);
}

TEST(Matrix, InitializerListIsRowMajorNotation) {
  RMat m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((RMat{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const CMat i3 = CMat::identity(3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i)
      EXPECT_EQ(i3(i, j), (i == j ? cxd{1.0, 0.0} : cxd{}));
}

TEST(Matrix, ColumnMajorStorageColIsContiguous) {
  RMat m{{1.0, 2.0}, {3.0, 4.0}};
  auto c0 = m.col(0);
  EXPECT_DOUBLE_EQ(c0[0], 1.0);
  EXPECT_DOUBLE_EQ(c0[1], 3.0);
  c0[1] = 30.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 30.0);
}

TEST(Matrix, RowVecAndSetCol) {
  CMat m(2, 2);
  m.set_col(1, CVec{cxd{1.0, 0.0}, cxd{2.0, 0.0}});
  const CVec r0 = m.row_vec(0);
  EXPECT_EQ(r0.size(), 2);
  EXPECT_NEAR(std::abs(r0[1] - cxd{1.0, 0.0}), 0.0, 1e-15);
  EXPECT_THROW(m.set_col(0, CVec(3)), std::invalid_argument);
  EXPECT_THROW(m.col(5), std::out_of_range);
}

TEST(Matrix, TransposeAndAdjointDifferOnComplex) {
  CMat m(1, 2);
  m(0, 0) = cxd{1.0, 2.0};
  m(0, 1) = cxd{3.0, -4.0};
  const CMat t = transpose(m);
  const CMat h = adjoint(m);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_NEAR(std::abs(t(0, 0) - cxd{1.0, 2.0}), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(h(0, 0) - cxd{1.0, -2.0}), 0.0, 1e-15);
}

TEST(Matrix, AdjointIsInvolution) {
  auto rng = testing::make_rng(3);
  const CMat m = testing::random_cmat(4, 6, rng);
  testing::expect_mat_near(adjoint(adjoint(m)), m, 1e-15, "A^HH = A");
}

TEST(Matrix, MatvecAgainstHandComputed) {
  CMat a{{cxd{1.0, 0.0}, cxd{0.0, 1.0}},   // [1, i]
         {cxd{2.0, 0.0}, cxd{0.0, 0.0}}};  // [2, 0]
  const CVec x{cxd{1.0, 0.0}, cxd{1.0, 0.0}};
  const CVec y = matvec(a, x);
  EXPECT_NEAR(std::abs(y[0] - cxd{1.0, 1.0}), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(y[1] - cxd{2.0, 0.0}), 0.0, 1e-15);
}

TEST(Matrix, MatvecAdjMatchesExplicitAdjoint) {
  auto rng = testing::make_rng(5);
  const CMat a = testing::random_cmat(5, 7, rng);
  const CVec y = testing::random_cvec(5, rng);
  testing::expect_vec_near(matvec_adj(a, y), matvec(adjoint(a), y), 1e-12,
                           "A^H y");
}

TEST(Matrix, MatmulAssociativity) {
  auto rng = testing::make_rng(9);
  const CMat a = testing::random_cmat(3, 4, rng);
  const CMat b = testing::random_cmat(4, 5, rng);
  const CMat c = testing::random_cmat(5, 2, rng);
  testing::expect_mat_near(matmul(matmul(a, b), c), matmul(a, matmul(b, c)),
                           1e-10, "(AB)C = A(BC)");
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(CMat(2, 3), CMat(2, 3)), std::invalid_argument);
  EXPECT_THROW(matvec(CMat(2, 3), CVec(2)), std::invalid_argument);
  EXPECT_THROW(matvec_adj(CMat(2, 3), CVec(3)), std::invalid_argument);
}

TEST(Matrix, MatmulAdjLeftMatchesExplicit) {
  auto rng = testing::make_rng(13);
  const CMat a = testing::random_cmat(6, 3, rng);
  const CMat b = testing::random_cmat(6, 4, rng);
  testing::expect_mat_near(matmul_adj_left(a, b), matmul(adjoint(a), b), 1e-12,
                           "A^H B");
}

TEST(Matrix, AdjointReversesProducts) {
  auto rng = testing::make_rng(17);
  const CMat a = testing::random_cmat(3, 4, rng);
  const CMat b = testing::random_cmat(4, 5, rng);
  testing::expect_mat_near(adjoint(matmul(a, b)),
                           matmul(adjoint(b), adjoint(a)), 1e-12,
                           "(AB)^H = B^H A^H");
}

TEST(Matrix, FrobeniusNormMatchesVectorization) {
  auto rng = testing::make_rng(21);
  const CMat a = testing::random_cmat(4, 4, rng);
  double acc = 0.0;
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) acc += std::norm(a(i, j));
  EXPECT_NEAR(norm_fro(a), std::sqrt(acc), 1e-12);
  // The squared variant must be the pre-sqrt accumulator exactly (it
  // exists so callers never compute sqrt-then-square).
  EXPECT_DOUBLE_EQ(norm_fro_sq(a), acc);
}

TEST(Matrix, ArithmeticOperators) {
  RMat a{{1.0, 2.0}, {3.0, 4.0}};
  RMat b{{1.0, 1.0}, {1.0, 1.0}};
  const RMat s = a + b;
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
  const RMat d = a - b;
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
  const RMat m = a * 2.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 6.0);
  EXPECT_THROW(a += RMat(3, 3), std::invalid_argument);
}

TEST(Matrix, ToComplexPreservesValues) {
  RMat a{{1.0, -2.0}};
  const CMat c = to_complex(a);
  EXPECT_NEAR(std::abs(c(0, 1) - cxd{-2.0, 0.0}), 0.0, 1e-15);
}

TEST(Matrix, AtBoundsChecked) {
  CMat m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

}  // namespace
}  // namespace roarray::linalg
