#include "linalg/vector.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::linalg {
namespace {

TEST(Vector, DefaultConstructedIsEmpty) {
  CVec v;
  EXPECT_EQ(v.size(), 0);
  EXPECT_TRUE(v.empty());
}

TEST(Vector, SizedConstructorZeroInitializes) {
  CVec v(5);
  EXPECT_EQ(v.size(), 5);
  for (index_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], cxd{});
}

TEST(Vector, FillConstructor) {
  RVec v(4, 2.5);
  for (index_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(v[i], 2.5);
}

TEST(Vector, NegativeSizeThrows) {
  EXPECT_THROW(CVec(-1), std::invalid_argument);
}

TEST(Vector, InitializerList) {
  RVec v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(Vector, AtBoundsChecked) {
  CVec v(3);
  EXPECT_THROW(v.at(3), std::out_of_range);
  EXPECT_THROW(v.at(-1), std::out_of_range);
  EXPECT_NO_THROW(v.at(2));
}

TEST(Vector, AdditionAndSubtraction) {
  RVec a{1.0, 2.0};
  RVec b{10.0, 20.0};
  const RVec sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 11.0);
  EXPECT_DOUBLE_EQ(sum[1], 22.0);
  const RVec diff = b - a;
  EXPECT_DOUBLE_EQ(diff[0], 9.0);
  EXPECT_DOUBLE_EQ(diff[1], 18.0);
}

TEST(Vector, SizeMismatchThrows) {
  RVec a(2), b(3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(dot(CVec(2), CVec(3)), std::invalid_argument);
  CVec y(3);
  EXPECT_THROW(axpy(cxd{1.0, 0.0}, CVec(2), y), std::invalid_argument);
}

TEST(Vector, ScalarMultiply) {
  CVec v{cxd{1.0, 1.0}, cxd{2.0, 0.0}};
  v *= cxd{0.0, 1.0};  // multiply by i
  EXPECT_NEAR(std::abs(v[0] - cxd{-1.0, 1.0}), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(v[1] - cxd{0.0, 2.0}), 0.0, 1e-15);
}

TEST(Vector, DotIsConjugateLinearInFirstArgument) {
  const CVec x{cxd{0.0, 1.0}};  // i
  const CVec y{cxd{1.0, 0.0}};
  // <x, y> = conj(i) * 1 = -i
  const cxd d = dot(x, y);
  EXPECT_NEAR(std::abs(d - cxd{0.0, -1.0}), 0.0, 1e-15);
}

TEST(Vector, DotOfSelfIsNormSquared) {
  auto rng = testing::make_rng();
  const CVec v = testing::random_cvec(16, rng);
  const cxd d = dot(v, v);
  EXPECT_NEAR(d.real(), norm2_sq(v), 1e-10);
  EXPECT_NEAR(d.imag(), 0.0, 1e-10);
}

TEST(Vector, Norms) {
  const CVec v{cxd{3.0, 4.0}, cxd{0.0, 0.0}};  // |v0| = 5
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm2_sq(v), 25.0);
  EXPECT_DOUBLE_EQ(norm1(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 5.0);
}

TEST(Vector, TriangleInequalityHolds) {
  auto rng = testing::make_rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const CVec a = testing::random_cvec(8, rng);
    const CVec b = testing::random_cvec(8, rng);
    EXPECT_LE(norm2(a + b), norm2(a) + norm2(b) + 1e-12);
    EXPECT_LE(norm1(a + b), norm1(a) + norm1(b) + 1e-12);
  }
}

TEST(Vector, CauchySchwarzHolds) {
  auto rng = testing::make_rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const CVec a = testing::random_cvec(6, rng);
    const CVec b = testing::random_cvec(6, rng);
    EXPECT_LE(std::abs(dot(a, b)), norm2(a) * norm2(b) + 1e-12);
  }
}

TEST(Vector, AxpyMatchesManualComputation) {
  const CVec x{cxd{1.0, 0.0}, cxd{0.0, 1.0}};
  CVec y{cxd{1.0, 1.0}, cxd{2.0, 2.0}};
  axpy(cxd{2.0, 0.0}, x, y);
  EXPECT_NEAR(std::abs(y[0] - cxd{3.0, 1.0}), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(y[1] - cxd{2.0, 4.0}), 0.0, 1e-15);
}

TEST(Vector, SpanRoundTrip) {
  RVec v{1.0, 2.0, 3.0};
  auto s = v.span();
  s[1] = 20.0;
  EXPECT_DOUBLE_EQ(v[1], 20.0);
  const RVec copy{std::span<const double>(v.span())};
  EXPECT_EQ(copy.size(), 3);
  EXPECT_DOUBLE_EQ(copy[1], 20.0);
}

TEST(Vector, ResizePreservesAndZeroFills) {
  RVec v{1.0, 2.0};
  v.resize(4);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

}  // namespace
}  // namespace roarray::linalg
