#include "sparse/l1svd.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::sparse {
namespace {

namespace rt = roarray::testing;
using linalg::CVec;
using linalg::cxd;

/// Builds snapshots Y = A X with a rank-k signal plus noise.
CMat make_snapshots(index_t m, index_t p, index_t rank, double noise,
                    std::mt19937_64& rng) {
  const CMat basis = rt::random_cmat(m, rank, rng);
  const CMat coeffs = rt::random_cmat(rank, p, rng);
  CMat y = matmul(basis, coeffs);
  if (noise > 0.0) {
    CMat n = rt::random_cmat(m, p, rng);
    n *= cxd{noise, 0.0};
    y += n;
  }
  return y;
}

TEST(L1Svd, ReducedShapeAndExplicitRank) {
  auto rng = rt::make_rng(91);
  const CMat y = make_snapshots(12, 20, 3, 0.0, rng);
  const SvdReduction r = reduce_snapshots(y, 5);
  EXPECT_EQ(r.reduced.rows(), 12);
  EXPECT_EQ(r.reduced.cols(), 5);
  EXPECT_EQ(r.rank_estimate, 5);
}

TEST(L1Svd, RankEstimateFindsSignalSubspace) {
  auto rng = rt::make_rng(92);
  const CMat y = make_snapshots(16, 30, 4, 0.001, rng);
  const SvdReduction r = reduce_snapshots(y, -1, 0.05);
  EXPECT_EQ(r.rank_estimate, 4);
}

TEST(L1Svd, ReductionPreservesColumnSpaceEnergy) {
  // ||Y V_k||_F^2 = sum of top-k sigma^2; with k = rank it captures
  // (almost) all the energy of a rank-k matrix.
  auto rng = rt::make_rng(93);
  const CMat y = make_snapshots(10, 25, 2, 0.0, rng);
  const SvdReduction r = reduce_snapshots(y, 2);
  const double full = norm_fro(y);
  const double kept = norm_fro(r.reduced);
  EXPECT_NEAR(kept, full, 1e-8 * full);
}

TEST(L1Svd, SingularValuesDescending) {
  auto rng = rt::make_rng(94);
  const CMat y = make_snapshots(8, 12, 8, 0.1, rng);
  const SvdReduction r = reduce_snapshots(y, 3);
  for (index_t i = 1; i < r.singular_values.size(); ++i) {
    EXPECT_LE(r.singular_values[i], r.singular_values[i - 1] + 1e-12);
  }
}

TEST(L1Svd, KeepClampedToAvailable) {
  auto rng = rt::make_rng(95);
  const CMat y = make_snapshots(6, 4, 2, 0.0, rng);
  const SvdReduction r = reduce_snapshots(y, 10);
  EXPECT_EQ(r.reduced.cols(), 4);  // min(m, p) = 4
}

TEST(L1Svd, EmptyThrows) {
  EXPECT_THROW(reduce_snapshots(CMat(0, 0)), std::invalid_argument);
}

TEST(L1Svd, SingleSnapshotPassesThrough) {
  auto rng = rt::make_rng(96);
  const CMat y = rt::random_cmat(9, 1, rng);
  const SvdReduction r = reduce_snapshots(y, 1);
  // One snapshot: the reduction is the snapshot itself up to phase.
  EXPECT_EQ(r.reduced.cols(), 1);
  EXPECT_NEAR(norm_fro(r.reduced), norm_fro(y), 1e-10);
}

TEST(L1Svd, NoiseAveragingImprovesSubspace) {
  // The dominant direction of the reduction from many noisy snapshots of
  // a rank-1 signal must align better with the true direction than a
  // single noisy snapshot does.
  auto rng = rt::make_rng(97);
  const CVec u = rt::random_cvec(20, rng);
  CMat many(20, 40);
  std::normal_distribution<double> n(0.0, 0.5);
  for (index_t p = 0; p < 40; ++p) {
    std::normal_distribution<double> coeff(0.0, 1.0);
    const cxd c{coeff(rng), coeff(rng)};
    for (index_t i = 0; i < 20; ++i) {
      many(i, p) = u[i] * c + cxd{n(rng), n(rng)};
    }
  }
  const SvdReduction r = reduce_snapshots(many, 1);
  const CVec dom = r.reduced.col_vec(0);
  const double align =
      std::abs(dot(u, dom)) / (norm2(u) * norm2(dom));
  const CVec single = many.col_vec(0);
  const double align_single =
      std::abs(dot(u, single)) / (norm2(u) * norm2(single));
  EXPECT_GT(align, align_single);
  EXPECT_GT(align, 0.9);
}

}  // namespace
}  // namespace roarray::sparse
