// Coarse-to-fine factored dictionary search: grid decimation, config
// validation, and candidate-support selection (sparse/coarse_fine.hpp).
#include "sparse/coarse_fine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "dsp/grid.hpp"
#include "dsp/steering.hpp"

namespace roarray::sparse {
namespace {

KroneckerOperator coarse_operator(const dsp::Grid& fine_aoa,
                                  const dsp::Grid& fine_toa,
                                  const CoarseFineConfig& cfg,
                                  const dsp::ArrayConfig& array) {
  return KroneckerOperator(
      dsp::steering_matrix_aoa(decimate_grid(fine_aoa, cfg.aoa_decimation),
                               array),
      dsp::steering_matrix_toa(decimate_grid(fine_toa, cfg.toa_decimation),
                               array));
}

TEST(CoarseFineConfig, ValidateRejectsNonsense) {
  {
    CoarseFineConfig cfg;
    cfg.aoa_decimation = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    CoarseFineConfig cfg;
    cfg.toa_decimation = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    CoarseFineConfig cfg;
    cfg.max_candidates = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    CoarseFineConfig cfg;
    cfg.coarse_residual_tolerance = -0.1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    CoarseFineConfig cfg;
    cfg.min_rel_gain = 1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.min_rel_gain = -0.01;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    CoarseFineConfig cfg;
    cfg.refine_tolerance = 1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  EXPECT_NO_THROW(CoarseFineConfig{}.validate());
}

TEST(DecimateGrid, KeepsEveryDecimationThFineSample) {
  const dsp::Grid fine(0.0, 180.0, 91);
  const dsp::Grid coarse = decimate_grid(fine, 4);
  // (91 - 1) / 4 + 1 = 23 points, each landing exactly on a fine sample.
  EXPECT_EQ(coarse.size(), 23);
  EXPECT_EQ(coarse.lo(), fine.lo());
  for (index_t c = 0; c < coarse.size(); ++c) {
    EXPECT_DOUBLE_EQ(coarse[c], fine[c * 4]) << "coarse sample " << c;
  }
  // 90 does not divide by 4: the last coarse point (176 deg) sits short
  // of the fine hi; the tail cells stay reachable via window extension.
  EXPECT_LT(coarse.hi(), fine.hi());
}

TEST(DecimateGrid, IdentityAndEdgeCases) {
  const dsp::Grid fine(0.0, 784e-9, 50);
  const dsp::Grid same = decimate_grid(fine, 1);
  EXPECT_EQ(same.size(), fine.size());
  EXPECT_EQ(same.hi(), fine.hi());
  // Decimation larger than the grid collapses to the single lo point.
  const dsp::Grid one = decimate_grid(fine, 100);
  EXPECT_EQ(one.size(), 1);
  EXPECT_EQ(one.lo(), fine.lo());
  EXPECT_THROW((void)decimate_grid(fine, 0), std::invalid_argument);
}

TEST(SelectFactoredSupport, FindsTheCellsOfAPlantedAtom) {
  const dsp::Grid aoa(0.0, 180.0, 61);
  const dsp::Grid toa(0.0, 784e-9, 29);
  const dsp::ArrayConfig array;
  CoarseFineConfig cfg;
  cfg.enabled = true;
  const KroneckerOperator coarse = coarse_operator(aoa, toa, cfg, array);
  const KroneckerOperator fine_op(dsp::steering_matrix_aoa(aoa, array),
                                  dsp::steering_matrix_toa(toa, array));

  // Measurement = one exact fine atom (AoA index 24, ToA index 10).
  const index_t ti = 24, tj = 10;
  CVec e(fine_op.cols());
  e[tj * aoa.size() + ti] = linalg::cxd{1.0, 0.0};
  CMat y(fine_op.rows(), 1);
  y.set_col(0, fine_op.apply(e));

  const FactoredSupport s =
      select_factored_support(coarse, y, aoa.size(), toa.size(), cfg);
  ASSERT_FALSE(s.empty());
  // The refinement windows must cover the true cell in both dimensions.
  EXPECT_TRUE(std::binary_search(s.aoa.begin(), s.aoa.end(), ti));
  EXPECT_TRUE(std::binary_search(s.toa.begin(), s.toa.end(), tj));
  // And prune most of the grid (that is the whole point).
  EXPECT_LT(static_cast<double>(s.aoa.size()), 0.6 * aoa.size());
  EXPECT_LT(static_cast<double>(s.toa.size()), 0.8 * toa.size());
  // Indices come back sorted, unique, in range.
  EXPECT_TRUE(std::is_sorted(s.aoa.begin(), s.aoa.end()));
  EXPECT_TRUE(std::is_sorted(s.toa.begin(), s.toa.end()));
  EXPECT_GE(s.aoa.front(), 0);
  EXPECT_LT(s.aoa.back(), aoa.size());
  EXPECT_GE(s.toa.front(), 0);
  EXPECT_LT(s.toa.back(), toa.size());
}

TEST(SelectFactoredSupport, GridTailPastLastCoarseSampleStaysReachable) {
  // 61-point AoA grid, decimation 4: last coarse sample = fine index 60
  // exactly; use a ToA grid whose tail does NOT divide evenly, and an
  // atom in that tail. 29-point ToA grid, decimation 4: coarse samples
  // at fine indices 0,4,...,28 — divides; use decimation 6 -> samples
  // 0,6,12,18,24 and a tail of fine cells 25..28.
  const dsp::Grid aoa(0.0, 180.0, 61);
  const dsp::Grid toa(0.0, 784e-9, 29);
  const dsp::ArrayConfig array;
  CoarseFineConfig cfg;
  cfg.toa_decimation = 6;
  // A delay this close to the grid's wrap aliases most of its coarse
  // correlation toward tau = 0, leaving the true last-coarse-atom pick
  // weak; disable the gain filter so the test exercises the tail
  // window extension in isolation.
  cfg.min_rel_gain = 0.0;
  const KroneckerOperator coarse = coarse_operator(aoa, toa, cfg, array);
  const KroneckerOperator fine_op(dsp::steering_matrix_aoa(aoa, array),
                                  dsp::steering_matrix_toa(toa, array));

  const index_t ti = 30, tj = 28;  // last fine ToA cell, in the tail
  CVec e(fine_op.cols());
  e[tj * aoa.size() + ti] = linalg::cxd{1.0, 0.0};
  CMat y(fine_op.rows(), 1);
  y.set_col(0, fine_op.apply(e));

  const FactoredSupport s =
      select_factored_support(coarse, y, aoa.size(), toa.size(), cfg);
  ASSERT_FALSE(s.empty());
  EXPECT_TRUE(std::binary_search(s.toa.begin(), s.toa.end(), tj));
}

TEST(SelectFactoredSupport, AllZeroMeasurementYieldsEmptySupport) {
  const dsp::Grid aoa(0.0, 180.0, 31);
  const dsp::Grid toa(0.0, 784e-9, 15);
  const dsp::ArrayConfig array;
  const CoarseFineConfig cfg;
  const KroneckerOperator coarse = coarse_operator(aoa, toa, cfg, array);
  const CMat y(coarse.rows(), 2);  // zero-initialized
  const FactoredSupport s =
      select_factored_support(coarse, y, aoa.size(), toa.size(), cfg);
  EXPECT_TRUE(s.empty());
}

TEST(SelectFactoredSupport, RejectsMismatchedOperatorOrShapes) {
  const dsp::Grid aoa(0.0, 180.0, 31);
  const dsp::Grid toa(0.0, 784e-9, 15);
  const dsp::ArrayConfig array;
  const CoarseFineConfig cfg;
  const KroneckerOperator coarse = coarse_operator(aoa, toa, cfg, array);
  CMat y(coarse.rows(), 1);
  // Wrong fine grid sizes for this coarse operator.
  EXPECT_THROW(select_factored_support(coarse, y, 91, toa.size(), cfg),
               std::invalid_argument);
  // Wrong measurement row count.
  CMat bad(coarse.rows() + 1, 1);
  EXPECT_THROW(
      select_factored_support(coarse, bad, aoa.size(), toa.size(), cfg),
      std::invalid_argument);
}

TEST(SelectFactoredSupport, UnionsCandidatesAcrossSnapshots) {
  const dsp::Grid aoa(0.0, 180.0, 61);
  const dsp::Grid toa(0.0, 784e-9, 29);
  const dsp::ArrayConfig array;
  CoarseFineConfig cfg;
  cfg.max_candidates = 2;
  const KroneckerOperator coarse = coarse_operator(aoa, toa, cfg, array);
  const KroneckerOperator fine_op(dsp::steering_matrix_aoa(aoa, array),
                                  dsp::steering_matrix_toa(toa, array));

  // Two snapshots, each dominated by a different atom.
  const index_t i1 = 8, j1 = 4, i2 = 48, j2 = 22;
  CMat y(fine_op.rows(), 2);
  CVec e1(fine_op.cols()), e2(fine_op.cols());
  e1[j1 * aoa.size() + i1] = linalg::cxd{1.0, 0.0};
  e2[j2 * aoa.size() + i2] = linalg::cxd{1.0, 0.0};
  y.set_col(0, fine_op.apply(e1));
  y.set_col(1, fine_op.apply(e2));

  const FactoredSupport s =
      select_factored_support(coarse, y, aoa.size(), toa.size(), cfg);
  ASSERT_FALSE(s.empty());
  for (const index_t i : {i1, i2}) {
    EXPECT_TRUE(std::binary_search(s.aoa.begin(), s.aoa.end(), i))
        << "aoa " << i;
  }
  for (const index_t j : {j1, j2}) {
    EXPECT_TRUE(std::binary_search(s.toa.begin(), s.toa.end(), j))
        << "toa " << j;
  }
}

}  // namespace
}  // namespace roarray::sparse
