// Property-style tests on the l1 solvers: KKT/subgradient optimality,
// scaling invariances, and cross-solver agreement over parameter sweeps.
#include <gtest/gtest.h>

#include "dsp/steering.hpp"
#include "linalg/eig.hpp"
#include "sparse/admm.hpp"
#include "sparse/fista.hpp"
#include "sparse/operator.hpp"
#include "../test_util.hpp"

namespace roarray::sparse {
namespace {

namespace rt = roarray::testing;

/// Verifies the subgradient optimality conditions of
/// min 1/2||y - Sx||^2 + kappa||x||_1 at x:
///   g = S^H (y - S x);  |g_i| <= kappa (+tol) for x_i = 0,
///   g_i ~= kappa * x_i / |x_i| for x_i != 0.
void expect_kkt(const LinearOperator& op, const CVec& y, const CVec& x,
                double kappa, double tol) {
  CVec r = op.apply(x);
  r *= cxd{-1.0, 0.0};
  r += y;
  const CVec g = op.apply_adjoint(r);
  for (index_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i]) > 1e-9) {
      const cxd dir = x[i] / std::abs(x[i]);
      EXPECT_NEAR(std::abs(g[i] - kappa * dir), 0.0, tol)
          << "active coordinate " << i;
    } else {
      EXPECT_LE(std::abs(g[i]), kappa + tol) << "inactive coordinate " << i;
    }
  }
}

class KktSweep : public ::testing::TestWithParam<double> {};

TEST_P(KktSweep, FistaSolutionSatisfiesOptimality) {
  const double kappa_ratio = GetParam();
  auto rng = rt::make_rng(static_cast<std::uint64_t>(kappa_ratio * 1000));
  const CMat s = rt::random_cmat(10, 40, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(10, rng);
  SolveConfig cfg;
  cfg.kappa_ratio = kappa_ratio;
  cfg.max_iterations = 5000;
  cfg.tolerance = 1e-12;
  const SolveResult r = solve_l1(op, y, cfg);
  expect_kkt(op, y, r.x, r.kappa, 2e-3 * r.kappa);
}

INSTANTIATE_TEST_SUITE_P(KappaRatios, KktSweep,
                         ::testing::Values(0.05, 0.15, 0.3, 0.6, 0.9));

TEST(SolverProperties, SolutionScalesWithMeasurement) {
  // x*(alpha * y, alpha * kappa) = alpha * x*(y, kappa) for real alpha>0.
  auto rng = rt::make_rng(901);
  const CMat s = rt::random_cmat(8, 24, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(8, rng);
  SolveConfig cfg;
  cfg.kappa = 0.2;
  cfg.max_iterations = 4000;
  cfg.tolerance = 1e-12;
  const SolveResult base = solve_l1(op, y, cfg);

  const double alpha = 3.5;
  CVec y2 = y;
  y2 *= cxd{alpha, 0.0};
  SolveConfig cfg2 = cfg;
  cfg2.kappa = 0.2 * alpha;
  const SolveResult scaled = solve_l1(op, y2, cfg2);
  CVec expect = base.x;
  expect *= cxd{alpha, 0.0};
  rt::expect_vec_near(scaled.x, expect, 1e-4 * alpha, "scaling invariance");
}

TEST(SolverProperties, GlobalPhaseEquivariance) {
  // Rotating y by a global phase rotates the solution identically
  // (complex soft-thresholding is phase-equivariant).
  auto rng = rt::make_rng(902);
  const CMat s = rt::random_cmat(8, 30, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(8, rng);
  SolveConfig cfg;
  cfg.kappa = 0.3;
  cfg.max_iterations = 3000;
  cfg.tolerance = 1e-12;
  const SolveResult base = solve_l1(op, y, cfg);
  const cxd phase = std::polar(1.0, 1.234);
  CVec y_rot = y;
  y_rot *= phase;
  const SolveResult rotated = solve_l1(op, y_rot, cfg);
  CVec expect = base.x;
  expect *= phase;
  rt::expect_vec_near(rotated.x, expect, 1e-5, "phase equivariance");
}

TEST(SolverProperties, SparsityMonotoneInKappa) {
  auto rng = rt::make_rng(903);
  const CMat s = rt::random_cmat(10, 60, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(10, rng);
  index_t prev_nnz = 61;
  for (double ratio : {0.05, 0.2, 0.5, 0.8}) {
    SolveConfig cfg;
    cfg.kappa_ratio = ratio;
    cfg.max_iterations = 2000;
    cfg.tolerance = 1e-10;
    const SolveResult r = solve_l1(op, y, cfg);
    index_t nnz = 0;
    for (index_t i = 0; i < r.x.size(); ++i) {
      if (std::abs(r.x[i]) > 1e-7) ++nnz;
    }
    EXPECT_LE(nnz, prev_nnz + 2) << "ratio " << ratio;  // small slack
    prev_nnz = nnz;
  }
}

class SolverAgreement : public ::testing::TestWithParam<double> {};

TEST_P(SolverAgreement, FistaIstaAdmmReachSameObjective) {
  const double kappa = GetParam();
  auto rng = rt::make_rng(static_cast<std::uint64_t>(kappa * 100 + 7));
  const CMat s = rt::random_cmat(12, 36, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(12, rng);

  SolveConfig fista_cfg;
  fista_cfg.kappa = kappa;
  fista_cfg.max_iterations = 4000;
  fista_cfg.tolerance = 1e-11;
  SolveConfig ista_cfg = fista_cfg;
  ista_cfg.algorithm = Algorithm::kIsta;
  ista_cfg.max_iterations = 20000;
  AdmmConfig admm_cfg;
  admm_cfg.kappa = kappa;
  admm_cfg.max_iterations = 4000;
  admm_cfg.tolerance = 1e-10;

  const double f_fista = l1_objective(op, y, solve_l1(op, y, fista_cfg).x, kappa);
  const double f_ista = l1_objective(op, y, solve_l1(op, y, ista_cfg).x, kappa);
  const double f_admm = l1_objective(op, y, solve_l1_admm(op, y, admm_cfg).x, kappa);
  const double scale = std::max(1.0, f_fista);
  EXPECT_NEAR(f_fista, f_ista, 1e-4 * scale);
  EXPECT_NEAR(f_fista, f_admm, 1e-4 * scale);
}

INSTANTIATE_TEST_SUITE_P(Kappas, SolverAgreement,
                         ::testing::Values(0.05, 0.2, 0.5, 1.0));

TEST(SolverProperties, KroneckerAndDenseGiveSameSolution) {
  // The structured operator must be numerically interchangeable with the
  // materialized matrix inside the solver.
  dsp::ArrayConfig arr;
  arr.num_subcarriers = 10;
  const roarray::dsp::Grid aoa(0.0, 180.0, 19);
  const roarray::dsp::Grid toa(0.0, 700e-9, 6);
  const KroneckerOperator kop(roarray::dsp::steering_matrix_aoa(aoa, arr),
                              roarray::dsp::steering_matrix_toa(toa, arr));
  const DenseOperator dop(roarray::dsp::steering_matrix_joint(aoa, toa, arr));
  auto rng = rt::make_rng(904);
  const CVec y = rt::random_cvec(kop.rows(), rng);
  SolveConfig cfg;
  cfg.kappa_ratio = 0.2;
  cfg.max_iterations = 2000;
  cfg.tolerance = 1e-11;
  const SolveResult a = solve_l1(kop, y, cfg);
  const SolveResult b = solve_l1(dop, y, cfg);
  rt::expect_vec_near(a.x, b.x, 1e-5, "kron == dense");
}

TEST(SolverProperties, AdmmRhoInsensitivity) {
  // Different rho values converge to the same minimizer.
  auto rng = rt::make_rng(905);
  const CMat s = rt::random_cmat(10, 30, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(10, rng);
  CVec ref;
  for (double rho : {0.3, 1.0, 4.0}) {
    AdmmConfig cfg;
    cfg.kappa = 0.25;
    cfg.rho = rho;
    cfg.max_iterations = 5000;
    cfg.tolerance = 1e-11;
    const SolveResult r = solve_l1_admm(op, y, cfg);
    if (ref.size() == 0) {
      ref = r.x;
    } else {
      rt::expect_vec_near(r.x, ref, 2e-4, "rho insensitivity");
    }
  }
}

}  // namespace
}  // namespace roarray::sparse
