#include "sparse/reweighted.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::sparse {
namespace {

namespace rt = roarray::testing;

index_t count_above(const CVec& x, double level) {
  index_t n = 0;
  for (index_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i]) > level) ++n;
  }
  return n;
}

TEST(Reweighted, OneRoundEqualsPlainL1) {
  auto rng = rt::make_rng(981);
  const CMat s = rt::random_cmat(10, 40, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(10, rng);
  ReweightedConfig cfg;
  cfg.rounds = 1;
  cfg.inner.max_iterations = 2000;
  cfg.inner.tolerance = 1e-11;
  const ReweightedResult rw = solve_reweighted_l1(op, y, cfg);
  const SolveResult plain = solve_l1(op, y, cfg.inner);
  rt::expect_vec_near(rw.x, plain.x, 1e-10, "rounds=1 == plain l1");
  EXPECT_DOUBLE_EQ(rw.kappa, plain.kappa);
}

TEST(Reweighted, SharpensSolutionOverRounds) {
  // Reweighting suppresses the small "shadow" coefficients that plain
  // l1 leaves around the true support.
  // 16 x 40 keeps the dictionary coherence low enough that the planted
  // 2-sparse representation is the identifiable one.
  auto rng = rt::make_rng(982);
  const CMat s = rt::random_cmat(16, 40, rng);
  const DenseOperator op(s);
  CVec x_true(40);
  x_true[11] = cxd{1.5, 0.0};
  x_true[37] = cxd{0.0, -1.0};
  CVec y = op.apply(x_true);
  const CVec noise = rt::random_cvec(16, rng);
  axpy(cxd{0.05, 0.0}, noise, y);

  ReweightedConfig one;
  one.rounds = 1;
  one.inner.max_iterations = 1500;
  // Light regularization so the plain-l1 round keeps the full support
  // (with shadow clutter); the reweighting rounds then clean it up.
  one.inner.kappa_ratio = 0.04;
  ReweightedConfig three = one;
  three.rounds = 3;
  const ReweightedResult r1 = solve_reweighted_l1(op, y, one);
  const ReweightedResult r3 = solve_reweighted_l1(op, y, three);
  // Count near-zero-but-not-zero clutter above 1% of the peak.
  double peak1 = 0.0, peak3 = 0.0;
  for (index_t i = 0; i < 40; ++i) {
    peak1 = std::max(peak1, std::abs(r1.x[i]));
    peak3 = std::max(peak3, std::abs(r3.x[i]));
  }
  EXPECT_LE(count_above(r3.x, 0.01 * peak3), count_above(r1.x, 0.01 * peak1));
  // True support survives the reweighting.
  EXPECT_GT(std::abs(r3.x[11]), 0.5);
  EXPECT_GT(std::abs(r3.x[37]), 0.3);
}

TEST(Reweighted, TracksInnerIterationBudget) {
  auto rng = rt::make_rng(983);
  const CMat s = rt::random_cmat(8, 24, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(8, rng);
  ReweightedConfig cfg;
  cfg.rounds = 3;
  cfg.inner.max_iterations = 50;
  cfg.inner.tolerance = 0.0;
  const ReweightedResult r = solve_reweighted_l1(op, y, cfg);
  EXPECT_EQ(r.total_inner_iterations, 150);
}

TEST(Reweighted, InvalidConfigThrows) {
  const DenseOperator op(CMat(4, 8, cxd{1.0, 0.0}));
  ReweightedConfig cfg;
  cfg.rounds = 0;
  EXPECT_THROW(solve_reweighted_l1(op, CVec(4), cfg), std::invalid_argument);
  cfg = ReweightedConfig{};
  cfg.epsilon = 0.0;
  EXPECT_THROW(solve_reweighted_l1(op, CVec(4), cfg), std::invalid_argument);
}

TEST(Reweighted, AllZeroSolutionShortCircuits) {
  // Huge kappa: first round returns zero; later rounds must not divide
  // by zero or crash.
  auto rng = rt::make_rng(984);
  const CMat s = rt::random_cmat(6, 20, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(6, rng);
  ReweightedConfig cfg;
  cfg.rounds = 4;
  cfg.inner.kappa = 1e9;
  const ReweightedResult r = solve_reweighted_l1(op, y, cfg);
  EXPECT_NEAR(norm2(r.x), 0.0, 1e-12);
}

}  // namespace
}  // namespace roarray::sparse
