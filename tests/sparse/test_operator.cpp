#include "sparse/operator.hpp"

#include <gtest/gtest.h>

#include "dsp/grid.hpp"
#include "dsp/steering.hpp"
#include "runtime/thread_pool.hpp"
#include "../test_util.hpp"

namespace roarray::sparse {
namespace {

namespace rt = roarray::testing;

TEST(DenseOperator, MatchesMatrixProducts) {
  auto rng = rt::make_rng(61);
  const CMat s = rt::random_cmat(6, 10, rng);
  const DenseOperator op(s);
  EXPECT_EQ(op.rows(), 6);
  EXPECT_EQ(op.cols(), 10);
  const CVec x = rt::random_cvec(10, rng);
  rt::expect_vec_near(op.apply(x), matvec(s, x), 1e-12, "apply");
  const CVec y = rt::random_cvec(6, rng);
  rt::expect_vec_near(op.apply_adjoint(y), matvec_adj(s, y), 1e-12, "adjoint");
}

TEST(DenseOperator, RowGramMatchesSSH) {
  auto rng = rt::make_rng(62);
  const CMat s = rt::random_cmat(5, 12, rng);
  const DenseOperator op(s);
  rt::expect_mat_near(op.row_gram(), matmul(s, adjoint(s)), 1e-12, "gram");
}

TEST(LinearOperator, AdjointIdentityHolds) {
  // <S x, y> == <x, S^H y> for all x, y.
  auto rng = rt::make_rng(63);
  const CMat s = rt::random_cmat(7, 9, rng);
  const DenseOperator op(s);
  for (int trial = 0; trial < 10; ++trial) {
    const CVec x = rt::random_cvec(9, rng);
    const CVec y = rt::random_cvec(7, rng);
    const cxd lhs = dot(op.apply(x), y);
    const cxd rhs = dot(x, op.apply_adjoint(y));
    EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-10);
  }
}

TEST(LinearOperator, MatVariantsMatchColumnwise) {
  auto rng = rt::make_rng(64);
  const CMat s = rt::random_cmat(6, 8, rng);
  const DenseOperator op(s);
  const CMat x = rt::random_cmat(8, 4, rng);
  const CMat y = op.apply_mat(x);
  for (index_t j = 0; j < 4; ++j) {
    rt::expect_vec_near(y.col_vec(j), op.apply(x.col_vec(j)), 1e-12, "col");
  }
  const CMat z = rt::random_cmat(6, 3, rng);
  const CMat back = op.apply_adjoint_mat(z);
  for (index_t j = 0; j < 3; ++j) {
    rt::expect_vec_near(back.col_vec(j), op.apply_adjoint(z.col_vec(j)), 1e-12,
                        "adj col");
  }
}

class KroneckerVsDense : public ::testing::Test {
 protected:
  KroneckerVsDense() {
    cfg_.num_antennas = 3;
    cfg_.num_subcarriers = 8;
    aoa_ = dsp::Grid(0.0, 180.0, 13);
    toa_ = dsp::Grid(0.0, 700e-9, 5);
    op_ = std::make_unique<KroneckerOperator>(
        dsp::steering_matrix_aoa(aoa_, cfg_),
        dsp::steering_matrix_toa(toa_, cfg_));
    dense_ = dsp::steering_matrix_joint(aoa_, toa_, cfg_);
  }

  dsp::ArrayConfig cfg_;
  dsp::Grid aoa_, toa_;
  std::unique_ptr<KroneckerOperator> op_;
  CMat dense_;
};

TEST_F(KroneckerVsDense, DimensionsMatchJointMatrix) {
  EXPECT_EQ(op_->rows(), dense_.rows());
  EXPECT_EQ(op_->cols(), dense_.cols());
}

TEST_F(KroneckerVsDense, ToDenseEqualsJointSteeringMatrix) {
  rt::expect_mat_near(op_->to_dense(), dense_, 1e-10,
                      "Kronecker == Eq.16 matrix");
}

TEST_F(KroneckerVsDense, ApplyMatchesDense) {
  auto rng = rt::make_rng(65);
  for (int t = 0; t < 5; ++t) {
    const CVec x = rt::random_cvec(op_->cols(), rng);
    rt::expect_vec_near(op_->apply(x), matvec(dense_, x), 1e-9, "apply");
  }
}

TEST_F(KroneckerVsDense, AdjointMatchesDense) {
  auto rng = rt::make_rng(66);
  for (int t = 0; t < 5; ++t) {
    const CVec y = rt::random_cvec(op_->rows(), rng);
    rt::expect_vec_near(op_->apply_adjoint(y), matvec_adj(dense_, y), 1e-9,
                        "adjoint");
  }
}

TEST_F(KroneckerVsDense, RowGramMatchesDense) {
  rt::expect_mat_near(op_->row_gram(), matmul(dense_, adjoint(dense_)), 1e-8,
                      "gram");
}

TEST_F(KroneckerVsDense, SizeMismatchThrows) {
  EXPECT_THROW(op_->apply(CVec(op_->cols() + 1)), std::invalid_argument);
  EXPECT_THROW(op_->apply_adjoint(CVec(op_->rows() - 1)), std::invalid_argument);
}

TEST(Kronecker, GenericFactorsAgainstExplicitKroneckerProduct) {
  auto rng = rt::make_rng(67);
  const CMat left = rt::random_cmat(3, 4, rng);   // M x Nl
  const CMat right = rt::random_cmat(5, 2, rng);  // L x Nr
  const KroneckerOperator op(left, right);
  // Explicit small Kronecker product, column (j * Nl + i), row (l * M + m).
  CMat full(15, 8);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < 4; ++i)
      for (index_t l = 0; l < 5; ++l)
        for (index_t m = 0; m < 3; ++m)
          full(l * 3 + m, j * 4 + i) = right(l, j) * left(m, i);
  const CVec x = rt::random_cvec(8, rng);
  rt::expect_vec_near(op.apply(x), matvec(full, x), 1e-10, "generic apply");
  const CVec y = rt::random_cvec(15, rng);
  rt::expect_vec_near(op.apply_adjoint(y), matvec_adj(full, y), 1e-10,
                      "generic adjoint");
}

// Non-square factors with four pairwise-distinct dimensions (M=4, Nl=7,
// L=6, Nr=3): catches any transposed-dimension mix-up in the batched
// reshape path that square or matching shapes would mask.
class KroneckerNonSquare : public ::testing::Test {
 protected:
  KroneckerNonSquare() {
    auto rng = rt::make_rng(68);
    left_ = rt::random_cmat(4, 7, rng);   // M x Nl
    right_ = rt::random_cmat(6, 3, rng);  // L x Nr
    op_ = std::make_unique<KroneckerOperator>(left_, right_);
    full_ = CMat(24, 21);
    for (index_t j = 0; j < 3; ++j)
      for (index_t i = 0; i < 7; ++i)
        for (index_t l = 0; l < 6; ++l)
          for (index_t m = 0; m < 4; ++m)
            full_(l * 4 + m, j * 7 + i) = right_(l, j) * left_(m, i);
  }

  CMat left_, right_, full_;
  std::unique_ptr<KroneckerOperator> op_;
};

TEST_F(KroneckerNonSquare, ApplyAndAdjointMatchExplicitProduct) {
  auto rng = rt::make_rng(69);
  EXPECT_EQ(op_->rows(), 24);
  EXPECT_EQ(op_->cols(), 21);
  for (int trial = 0; trial < 5; ++trial) {
    const CVec x = rt::random_cvec(21, rng);
    rt::expect_vec_near(op_->apply(x), matvec(full_, x), 1e-10, "apply");
    const CVec y = rt::random_cvec(24, rng);
    rt::expect_vec_near(op_->apply_adjoint(y), matvec_adj(full_, y), 1e-10,
                        "adjoint");
  }
}

TEST_F(KroneckerNonSquare, BatchedMatApplyIdenticalToPerColumn) {
  // The batched reshape-trick override must reproduce the per-column
  // base-class path bit for bit (same GEMM kernels, same per-element
  // reduction order).
  auto rng = rt::make_rng(70);
  const CMat x = rt::random_cmat(21, 5, rng);
  const CMat batched = op_->apply_mat(x);
  CMat percol;
  op_->LinearOperator::apply_mat_into(x, percol, nullptr);
  ASSERT_EQ(batched.rows(), percol.rows());
  ASSERT_EQ(batched.cols(), percol.cols());
  for (index_t j = 0; j < batched.cols(); ++j) {
    for (index_t i = 0; i < batched.rows(); ++i) {
      EXPECT_EQ(batched(i, j), percol(i, j)) << "at (" << i << "," << j << ")";
    }
  }
  rt::expect_mat_near(batched, matmul(full_, x), 1e-10, "vs dense");

  const CMat y = rt::random_cmat(24, 5, rng);
  const CMat adj_batched = op_->apply_adjoint_mat(y);
  CMat adj_percol;
  op_->LinearOperator::apply_adjoint_mat_into(y, adj_percol, nullptr);
  for (index_t j = 0; j < adj_batched.cols(); ++j) {
    for (index_t i = 0; i < adj_batched.rows(); ++i) {
      EXPECT_EQ(adj_batched(i, j), adj_percol(i, j)) << "adjoint";
    }
  }
  rt::expect_mat_near(adj_batched, matmul_adj_left(full_, y), 1e-10,
                      "adjoint vs dense");
}

TEST_F(KroneckerNonSquare, PooledMatApplyIdenticalToSerial) {
  auto rng = rt::make_rng(71);
  runtime::ThreadPool pool(3);
  const CMat x = rt::random_cmat(21, 4, rng);
  const CMat serial = op_->apply_mat(x);
  const CMat pooled = op_->apply_mat(x, &pool);
  for (index_t j = 0; j < serial.cols(); ++j) {
    for (index_t i = 0; i < serial.rows(); ++i) {
      EXPECT_EQ(serial(i, j), pooled(i, j)) << "pooled forward";
    }
  }
  const CMat y = rt::random_cmat(24, 4, rng);
  const CMat adj_serial = op_->apply_adjoint_mat(y);
  const CMat adj_pooled = op_->apply_adjoint_mat(y, &pool);
  for (index_t j = 0; j < adj_serial.cols(); ++j) {
    for (index_t i = 0; i < adj_serial.rows(); ++i) {
      EXPECT_EQ(adj_serial(i, j), adj_pooled(i, j)) << "pooled adjoint";
    }
  }
}

TEST_F(KroneckerNonSquare, RowGramAndToDenseMatchExplicitProduct) {
  rt::expect_mat_near(op_->to_dense(), full_, 1e-10, "to_dense");
  rt::expect_mat_near(op_->row_gram(), matmul(full_, adjoint(full_)), 1e-9,
                      "row_gram");
}

TEST_F(KroneckerNonSquare, MatShapeMismatchThrows) {
  CMat out;
  const CMat bad_x(20, 2);
  EXPECT_THROW(op_->apply_mat_into(bad_x, out, nullptr),
               std::invalid_argument);
  const CMat bad_y(25, 2);
  EXPECT_THROW(op_->apply_adjoint_mat_into(bad_y, out, nullptr),
               std::invalid_argument);
}

// --- SupportOperator: Cartesian restriction of a Kronecker dictionary ---

class SupportOperatorTest : public KroneckerNonSquare {
 protected:
  SupportOperatorTest()
      : left_support_({1, 4, 6}), right_support_({0, 2}),
        sub_(*op_, left_support_, right_support_) {}

  /// Dense gather of the kept full columns, in local order b*|I| + a.
  [[nodiscard]] CMat restricted_dense() const {
    CMat d(full_.rows(), sub_.cols());
    for (index_t local = 0; local < sub_.cols(); ++local) {
      d.set_col(local, full_.col_vec(sub_.full_index(local)));
    }
    return d;
  }

  std::vector<index_t> left_support_, right_support_;
  SupportOperator sub_;
};

TEST_F(SupportOperatorTest, FullIndexMapsLocalToFullColumns) {
  EXPECT_EQ(sub_.rows(), op_->rows());
  EXPECT_EQ(sub_.cols(), 6);  // |I| * |J| = 3 * 2
  EXPECT_EQ(sub_.full_cols(), op_->cols());
  // local b * |I| + a -> right_support[b] * Nl + left_support[a].
  EXPECT_EQ(sub_.full_index(0), 0 * 7 + 1);
  EXPECT_EQ(sub_.full_index(2), 0 * 7 + 6);
  EXPECT_EQ(sub_.full_index(3), 2 * 7 + 1);
  EXPECT_EQ(sub_.full_index(5), 2 * 7 + 6);
  EXPECT_THROW((void)sub_.full_index(-1), std::out_of_range);
  EXPECT_THROW((void)sub_.full_index(6), std::out_of_range);
}

TEST_F(SupportOperatorTest, ApplyAndAdjointMatchTheGatheredDenseColumns) {
  auto rng = rt::make_rng(72);
  const CMat d = restricted_dense();
  for (int t = 0; t < 5; ++t) {
    const CVec x = rt::random_cvec(sub_.cols(), rng);
    rt::expect_vec_near(sub_.apply(x), matvec(d, x), 1e-10, "apply");
    const CVec y = rt::random_cvec(sub_.rows(), rng);
    rt::expect_vec_near(sub_.apply_adjoint(y), matvec_adj(d, y), 1e-10,
                        "adjoint");
  }
  rt::expect_mat_near(sub_.row_gram(), matmul(d, adjoint(d)), 1e-9,
                      "row_gram");
}

TEST_F(SupportOperatorTest, ScatterEmbedsOnSupportAndZerosElsewhere) {
  auto rng = rt::make_rng(73);
  const CVec x = rt::random_cvec(sub_.cols(), rng);
  const CVec full = sub_.scatter(x);
  ASSERT_EQ(full.size(), op_->cols());
  for (index_t local = 0; local < sub_.cols(); ++local) {
    EXPECT_EQ(full[sub_.full_index(local)], x[local]);
  }
  index_t nonzero = 0;
  for (index_t i = 0; i < full.size(); ++i) {
    if (full[i] != cxd{0.0, 0.0}) ++nonzero;
  }
  EXPECT_EQ(nonzero, sub_.cols());
  // Restricted apply == full apply of the scattered vector.
  rt::expect_vec_near(sub_.apply(x), op_->apply(full), 1e-10, "consistency");

  // Matrix overload scatters every snapshot column.
  const CMat xm = rt::random_cmat(sub_.cols(), 3, rng);
  const CMat fm = sub_.scatter(xm);
  ASSERT_EQ(fm.rows(), op_->cols());
  for (index_t k = 0; k < 3; ++k) {
    rt::expect_vec_near(fm.col_vec(k), sub_.scatter(xm.col_vec(k)), 0.0,
                        "scatter mat");
  }
}

TEST_F(SupportOperatorTest, RejectsInvalidSupports) {
  EXPECT_THROW(SupportOperator(*op_, {}, {0}), std::invalid_argument);
  EXPECT_THROW(SupportOperator(*op_, {0}, {}), std::invalid_argument);
  EXPECT_THROW(SupportOperator(*op_, {0, 0}, {0}), std::invalid_argument);
  EXPECT_THROW(SupportOperator(*op_, {2, 1}, {0}), std::invalid_argument);
  EXPECT_THROW(SupportOperator(*op_, {0, 7}, {0}), std::invalid_argument);
  EXPECT_THROW(SupportOperator(*op_, {0}, {3}), std::invalid_argument);
  EXPECT_THROW(SupportOperator(*op_, {0}, {-1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace roarray::sparse
