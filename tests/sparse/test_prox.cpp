#include "sparse/prox.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::sparse {
namespace {

namespace rt = roarray::testing;

TEST(SoftThreshold, ShrinksMagnitudePreservesPhase) {
  CVec x{cxd{3.0, 4.0}};  // magnitude 5, phase atan2(4, 3)
  const double phase_before = std::arg(x[0]);
  soft_threshold_inplace(x, 2.0);
  EXPECT_NEAR(std::abs(x[0]), 3.0, 1e-12);
  EXPECT_NEAR(std::arg(x[0]), phase_before, 1e-12);
}

TEST(SoftThreshold, ZeroesSmallElements) {
  CVec x{cxd{0.5, 0.0}, cxd{0.0, -0.9}, cxd{2.0, 0.0}};
  soft_threshold_inplace(x, 1.0);
  EXPECT_EQ(x[0], cxd{});
  EXPECT_EQ(x[1], cxd{});
  EXPECT_NEAR(std::abs(x[2] - cxd{1.0, 0.0}), 0.0, 1e-12);
}

TEST(SoftThreshold, ZeroThresholdIsIdentity) {
  auto rng = rt::make_rng(71);
  CVec x = rt::random_cvec(10, rng);
  const CVec before = x;
  soft_threshold_inplace(x, 0.0);
  rt::expect_vec_near(x, before, 1e-15, "identity at t=0");
}

TEST(SoftThreshold, IsNonExpansive) {
  // ||prox(x) - prox(y)|| <= ||x - y|| — the key property FISTA needs.
  auto rng = rt::make_rng(72);
  for (int trial = 0; trial < 20; ++trial) {
    CVec x = rt::random_cvec(12, rng);
    CVec y = rt::random_cvec(12, rng);
    CVec diff_before = x;
    diff_before -= y;
    soft_threshold_inplace(x, 0.7);
    soft_threshold_inplace(y, 0.7);
    CVec diff_after = x;
    diff_after -= y;
    EXPECT_LE(norm2(diff_after), norm2(diff_before) + 1e-12);
  }
}

TEST(SoftThreshold, MinimizesProxObjective) {
  // prox_t(z) = argmin_x 1/2 ||x - z||^2 + t ||x||_1: the prox output must
  // beat random perturbations of itself.
  auto rng = rt::make_rng(73);
  const CVec z = rt::random_cvec(6, rng);
  CVec p = z;
  const double t = 0.5;
  soft_threshold_inplace(p, t);
  auto objective = [&](const CVec& x) {
    CVec d = x;
    d -= z;
    return 0.5 * norm2_sq(d) + t * norm1(x);
  };
  const double best = objective(p);
  for (int trial = 0; trial < 50; ++trial) {
    CVec cand = p;
    CVec noise = rt::random_cvec(6, rng);
    axpy(cxd{0.05, 0.0}, noise, cand);
    EXPECT_GE(objective(cand), best - 1e-12);
  }
}

TEST(GroupSoftThreshold, ZeroesWeakRowsKeepsStrong) {
  CMat x(3, 2);
  x(0, 0) = cxd{0.3, 0.0};
  x(0, 1) = cxd{0.0, 0.4};  // row norm 0.5 < 1 -> zeroed
  x(2, 0) = cxd{3.0, 0.0};
  x(2, 1) = cxd{0.0, 4.0};  // row norm 5 -> shrunk to 4
  group_soft_threshold_rows_inplace(x, 1.0);
  EXPECT_EQ(x(0, 0), cxd{});
  EXPECT_EQ(x(0, 1), cxd{});
  double row2 = std::sqrt(std::norm(x(2, 0)) + std::norm(x(2, 1)));
  EXPECT_NEAR(row2, 4.0, 1e-12);
}

TEST(GroupSoftThreshold, PreservesRowDirection) {
  CMat x(1, 3);
  x(0, 0) = cxd{1.0, 1.0};
  x(0, 1) = cxd{-2.0, 0.5};
  x(0, 2) = cxd{0.0, 3.0};
  CMat before = x;
  group_soft_threshold_rows_inplace(x, 0.5);
  // Shrunk row must be a positive scalar multiple of the original.
  const double scale = std::abs(x(0, 0)) / std::abs(before(0, 0));
  for (index_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(std::abs(x(0, j) - before(0, j) * scale), 0.0, 1e-12);
  }
}

TEST(GroupSoftThreshold, ReducesToVectorProxForSingleColumn) {
  auto rng = rt::make_rng(74);
  const CVec v = rt::random_cvec(8, rng);
  CMat x(8, 1);
  x.set_col(0, v);
  group_soft_threshold_rows_inplace(x, 0.6);
  CVec w = v;
  soft_threshold_inplace(w, 0.6);
  rt::expect_vec_near(x.col_vec(0), w, 1e-12, "single column");
}

TEST(NormL21, MatchesManualRowSum) {
  CMat x(2, 2);
  x(0, 0) = cxd{3.0, 0.0};
  x(0, 1) = cxd{0.0, 4.0};  // row norm 5
  x(1, 0) = cxd{1.0, 0.0};  // row norm 1
  EXPECT_NEAR(norm_l21_rows(x), 6.0, 1e-12);
}

}  // namespace
}  // namespace roarray::sparse
