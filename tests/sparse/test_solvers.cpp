#include <gtest/gtest.h>

#include "dsp/grid.hpp"
#include "dsp/steering.hpp"
#include "linalg/eig.hpp"
#include "sparse/admm.hpp"
#include "sparse/fista.hpp"
#include "sparse/power.hpp"
#include "../test_util.hpp"

namespace roarray::sparse {
namespace {

namespace rt = roarray::testing;

TEST(PowerMethod, MatchesLargestEigenvalueOfGram) {
  auto rng = rt::make_rng(81);
  const CMat s = rt::random_cmat(6, 20, rng);
  const DenseOperator op(s);
  const double lam = operator_norm_sq(op, 200);
  // Reference: largest eigenvalue of S S^H.
  const auto eg = linalg::eig_hermitian(matmul(s, adjoint(s)));
  EXPECT_NEAR(lam, eg.eigenvalues[5], 1e-6 * eg.eigenvalues[5]);
}

TEST(PowerMethod, ZeroOperator) {
  const DenseOperator op(CMat(4, 4));
  EXPECT_DOUBLE_EQ(operator_norm_sq(op), 0.0);
}

TEST(PowerMethod, NonPositiveIterationsThrow) {
  const DenseOperator op(CMat(4, 4));
  EXPECT_THROW(operator_norm_sq(op, 0), std::invalid_argument);
  EXPECT_THROW(operator_norm_sq(op, -5), std::invalid_argument);
}

TEST(PowerMethod, DefaultEstimateTightForKroneckerSteeringOperator) {
  // The default iteration budget must land within a few percent of the
  // true largest eigenvalue of S S^H for a (small) joint steering
  // operator — this is the Lipschitz constant every proximal solve
  // steps against.
  dsp::ArrayConfig arr;
  arr.num_subcarriers = 8;
  const dsp::Grid aoa(0.0, 180.0, 13);
  const dsp::Grid toa(0.0, 784e-9, 7);
  const KroneckerOperator op(dsp::steering_matrix_aoa(aoa, arr),
                             dsp::steering_matrix_toa(toa, arr));
  const double lam = operator_norm_sq(op);
  const CMat s = dsp::steering_matrix_joint(aoa, toa, arr);
  const auto eg = linalg::eig_hermitian(matmul(s, adjoint(s)));
  const double ref = eg.eigenvalues[s.rows() - 1];
  ASSERT_GT(ref, 0.0);
  EXPECT_NEAR(lam, ref, 0.03 * ref);
}

TEST(KappaMax, GivesZeroSolution) {
  auto rng = rt::make_rng(82);
  const CMat s = rt::random_cmat(8, 30, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(8, rng);
  SolveConfig cfg;
  cfg.kappa = kappa_max(op, y) * 1.001;
  const SolveResult r = solve_l1(op, y, cfg);
  EXPECT_NEAR(norm2(r.x), 0.0, 1e-9);
}

TEST(Fista, RecoversSparseVectorInNoiselessOvercompleteSystem) {
  // 8 x 40 random dictionary, 3-sparse ground truth, tiny kappa.
  auto rng = rt::make_rng(83);
  const CMat s = rt::random_cmat(8, 40, rng);
  const DenseOperator op(s);
  CVec x_true(40);
  x_true[5] = cxd{2.0, 1.0};
  x_true[17] = cxd{-1.5, 0.5};
  x_true[33] = cxd{0.0, 2.5};
  const CVec y = op.apply(x_true);
  SolveConfig cfg;
  cfg.kappa_ratio = 0.01;
  cfg.max_iterations = 2000;
  cfg.tolerance = 1e-10;
  const SolveResult r = solve_l1(op, y, cfg);
  // Support recovery: the three true entries dominate.
  for (index_t i : {5, 17, 33}) {
    EXPECT_GT(std::abs(r.x[i]), 0.5 * std::abs(x_true[i])) << "support " << i;
  }
  double off_support = 0.0;
  for (index_t i = 0; i < 40; ++i) {
    if (i == 5 || i == 17 || i == 33) continue;
    off_support = std::max(off_support, std::abs(r.x[i]));
  }
  EXPECT_LT(off_support, 0.25);
}

TEST(Fista, ObjectiveDecreasesOverall) {
  auto rng = rt::make_rng(84);
  const CMat s = rt::random_cmat(10, 50, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(10, rng);
  SolveConfig cfg;
  cfg.max_iterations = 150;
  const SolveResult r = solve_l1(op, y, cfg);
  ASSERT_GE(r.objective.size(), 10u);
  // With function restart the objective is monotone non-increasing.
  for (std::size_t i = 1; i < r.objective.size(); ++i) {
    EXPECT_LE(r.objective[i], r.objective[i - 1] + 1e-9);
  }
}

TEST(Fista, ConvergesFasterThanIsta) {
  auto rng = rt::make_rng(85);
  const CMat s = rt::random_cmat(12, 60, rng);
  const DenseOperator op(s);
  CVec x_true(60);
  x_true[7] = cxd{1.0, 0.0};
  x_true[42] = cxd{0.0, -2.0};
  const CVec y = op.apply(x_true);
  SolveConfig fista_cfg;
  fista_cfg.max_iterations = 2000;
  fista_cfg.tolerance = 1e-8;
  SolveConfig ista_cfg = fista_cfg;
  ista_cfg.algorithm = Algorithm::kIsta;
  const SolveResult rf = solve_l1(op, y, fista_cfg);
  const SolveResult ri = solve_l1(op, y, ista_cfg);
  EXPECT_TRUE(rf.converged);
  EXPECT_LT(rf.iterations, ri.iterations);
  // Both reach (near) the same objective.
  EXPECT_NEAR(rf.objective.back(), ri.objective.back(),
              1e-3 * std::max(1.0, ri.objective.back()));
}

TEST(Fista, CallbackSeesEveryIteration) {
  auto rng = rt::make_rng(86);
  const CMat s = rt::random_cmat(6, 20, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(6, rng);
  SolveConfig cfg;
  cfg.max_iterations = 37;
  cfg.tolerance = 0.0;  // never converge early
  int count = 0;
  const SolveResult r = solve_l1(op, y, cfg, [&](int it, const CVec& x) {
    ++count;
    EXPECT_EQ(it, count);
    EXPECT_EQ(x.size(), 20);
  });
  EXPECT_EQ(count, 37);
  EXPECT_EQ(r.iterations, 37);
}

TEST(Fista, InvalidInputsThrow) {
  const DenseOperator op(CMat(4, 8, cxd{1.0, 0.0}));
  EXPECT_THROW(solve_l1(op, CVec(5)), std::invalid_argument);
  SolveConfig cfg;
  cfg.max_iterations = 0;
  EXPECT_THROW(solve_l1(op, CVec(4), cfg), std::invalid_argument);
}

TEST(Admm, MatchesFistaSolution) {
  auto rng = rt::make_rng(87);
  const CMat s = rt::random_cmat(10, 40, rng);
  const DenseOperator op(s);
  CVec x_true(40);
  x_true[3] = cxd{1.5, -0.5};
  x_true[28] = cxd{-1.0, 1.0};
  CVec y = op.apply(x_true);
  const CVec noise = rt::random_cvec(10, rng);
  axpy(cxd{0.01, 0.0}, noise, y);

  SolveConfig fcfg;
  fcfg.kappa = 0.05;
  fcfg.max_iterations = 3000;
  fcfg.tolerance = 1e-10;
  AdmmConfig acfg;
  acfg.kappa = 0.05;
  acfg.max_iterations = 3000;
  acfg.tolerance = 1e-10;
  const SolveResult rf = solve_l1(op, y, fcfg);
  const SolveResult ra = solve_l1_admm(op, y, acfg);
  // Same convex objective: solutions must agree closely.
  EXPECT_NEAR(l1_objective(op, y, ra.x, 0.05), l1_objective(op, y, rf.x, 0.05),
              1e-5);
  CVec diff = ra.x;
  diff -= rf.x;
  EXPECT_LT(norm2(diff), 5e-3 * std::max(1.0, norm2(rf.x)));
}

TEST(Admm, ProducesExactlySparseIterate) {
  auto rng = rt::make_rng(88);
  const CMat s = rt::random_cmat(8, 60, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(8, rng);
  AdmmConfig cfg;
  cfg.kappa_ratio = 0.3;
  const SolveResult r = solve_l1_admm(op, y, cfg);
  index_t zeros = 0;
  for (index_t i = 0; i < 60; ++i) {
    if (r.x[i] == cxd{}) ++zeros;
  }
  EXPECT_GT(zeros, 30);  // strongly regularized: mostly exact zeros
}

TEST(Admm, InvalidConfigThrows) {
  const DenseOperator op(CMat(4, 8, cxd{1.0, 0.0}));
  AdmmConfig cfg;
  cfg.rho = 0.0;
  EXPECT_THROW(solve_l1_admm(op, CVec(4), cfg), std::invalid_argument);
  cfg = AdmmConfig{};
  EXPECT_THROW(solve_l1_admm(op, CVec(3), cfg), std::invalid_argument);
}

TEST(GroupSolver, RecoversRowSparseSupport) {
  auto rng = rt::make_rng(89);
  const CMat s = rt::random_cmat(8, 30, rng);
  const DenseOperator op(s);
  CMat x_true(30, 4);
  for (index_t k = 0; k < 4; ++k) {
    x_true(6, k) = cxd{1.0 + 0.2 * static_cast<double>(k), 0.5};
    x_true(21, k) = cxd{-0.8, 0.3 * static_cast<double>(k)};
  }
  const CMat y = op.apply_mat(x_true);
  SolveConfig cfg;
  cfg.kappa_ratio = 0.05;
  cfg.max_iterations = 1500;
  cfg.tolerance = 1e-9;
  const GroupSolveResult r = solve_group_l1(op, y, cfg);
  auto row_norm = [&](index_t i) {
    double acc = 0.0;
    for (index_t k = 0; k < 4; ++k) acc += std::norm(r.x(i, k));
    return std::sqrt(acc);
  };
  EXPECT_GT(row_norm(6), 0.8);
  EXPECT_GT(row_norm(21), 0.6);
  for (index_t i = 0; i < 30; ++i) {
    if (i == 6 || i == 21) continue;
    EXPECT_LT(row_norm(i), 0.3) << "row " << i;
  }
}

TEST(GroupSolver, SingleColumnMatchesVectorSolver) {
  auto rng = rt::make_rng(90);
  const CMat s = rt::random_cmat(8, 24, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(8, rng);
  SolveConfig cfg;
  cfg.kappa = 0.1;
  cfg.max_iterations = 2000;
  cfg.tolerance = 1e-10;
  const SolveResult rv = solve_l1(op, y, cfg);
  CMat ym(8, 1);
  ym.set_col(0, y);
  const GroupSolveResult rg = solve_group_l1(op, ym, cfg);
  rt::expect_vec_near(rg.x.col_vec(0), rv.x, 1e-4, "group == vector for k=1");
}

TEST(GroupSolver, ApplyReuseMatchesDirectIterates) {
  // The momentum identity S z = (1 + beta) S x_new - beta S x_prev must
  // reproduce the direct 3-application path to solver tolerance: run
  // both at a fixed iteration count (tolerance 0 so neither stops
  // early) and compare iterates and per-iteration objectives.
  auto rng = rt::make_rng(91);
  const CMat s = rt::random_cmat(10, 40, rng);
  const DenseOperator op(s);
  const CMat y = rt::random_cmat(10, 3, rng);
  SolveConfig cfg;
  cfg.kappa_ratio = 0.1;
  cfg.max_iterations = 300;
  cfg.tolerance = 0.0;
  cfg.reuse_applies = true;
  const GroupSolveResult reuse = solve_group_l1(op, y, cfg);
  cfg.reuse_applies = false;
  const GroupSolveResult direct = solve_group_l1(op, y, cfg);
  EXPECT_EQ(reuse.iterations, direct.iterations);
  EXPECT_EQ(reuse.kappa, direct.kappa);
  rt::expect_mat_near(reuse.x, direct.x, 1e-6, "reuse == direct");
  ASSERT_EQ(reuse.objective.size(), direct.objective.size());
  for (std::size_t i = 0; i < reuse.objective.size(); ++i) {
    EXPECT_NEAR(reuse.objective[i], direct.objective[i],
                1e-6 * (1.0 + std::abs(direct.objective[i])))
        << "objective at " << i;
  }
}

TEST(Fista, ApplyReuseMatchesDirectIterates) {
  auto rng = rt::make_rng(92);
  const CMat s = rt::random_cmat(9, 36, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(9, rng);
  SolveConfig cfg;
  cfg.kappa_ratio = 0.1;
  cfg.max_iterations = 300;
  cfg.tolerance = 0.0;
  cfg.reuse_applies = true;
  const SolveResult reuse = solve_l1(op, y, cfg);
  cfg.reuse_applies = false;
  const SolveResult direct = solve_l1(op, y, cfg);
  EXPECT_EQ(reuse.iterations, direct.iterations);
  rt::expect_vec_near(reuse.x, direct.x, 1e-6, "reuse == direct");
}

TEST(GroupSolver, InvalidInputsThrow) {
  const DenseOperator op(CMat(4, 8, cxd{1.0, 0.0}));
  EXPECT_THROW(solve_group_l1(op, CMat(5, 2)), std::invalid_argument);
  EXPECT_THROW(solve_group_l1(op, CMat(4, 0)), std::invalid_argument);
}

// Sparse recovery on the actual joint steering operator: plant two
// paths on grid points, recover them across SNR levels.
class SteeringRecovery : public ::testing::TestWithParam<double> {};

TEST_P(SteeringRecovery, TwoPathsRecoveredAtVaryingSnr) {
  const double snr_db = GetParam();
  dsp::ArrayConfig cfg;
  const dsp::Grid aoa(0.0, 180.0, 46);   // 4-degree grid
  const dsp::Grid toa(0.0, 700e-9, 15);  // 50 ns grid
  const KroneckerOperator op(dsp::steering_matrix_aoa(aoa, cfg),
                             dsp::steering_matrix_toa(toa, cfg));
  // Ground truth on grid points (10, 3) and (30, 7).
  CVec x_true(op.cols());
  x_true[3 * 46 + 10] = cxd{1.0, 0.3};
  x_true[7 * 46 + 30] = cxd{0.5, -0.4};
  CVec y = op.apply(x_true);
  auto rng = rt::make_rng(static_cast<std::uint64_t>(snr_db * 10 + 1000));
  const double sig_power = norm2_sq(y) / static_cast<double>(y.size());
  const double sigma = std::sqrt(sig_power / std::pow(10.0, snr_db / 10.0) / 2.0);
  std::normal_distribution<double> n(0.0, sigma);
  for (index_t i = 0; i < y.size(); ++i) y[i] += cxd{n(rng), n(rng)};

  SolveConfig scfg;
  scfg.kappa_ratio = 0.15;
  scfg.max_iterations = 600;
  const SolveResult r = solve_l1(op, y, scfg);
  // Find the two largest coefficients; they must sit on (or next to)
  // the planted grid points.
  index_t best = 0, second = 0;
  double best_v = 0.0, second_v = 0.0;
  for (index_t i = 0; i < r.x.size(); ++i) {
    const double v = std::abs(r.x[i]);
    if (v > best_v) {
      second = best;
      second_v = best_v;
      best = i;
      best_v = v;
    } else if (v > second_v) {
      second = i;
      second_v = v;
    }
  }
  auto near_truth = [&](index_t idx) {
    const index_t i = idx % 46, j = idx / 46;
    const bool near_a = std::abs(i - 10) <= 1 && std::abs(j - 3) <= 1;
    const bool near_b = std::abs(i - 30) <= 1 && std::abs(j - 7) <= 1;
    return near_a || near_b;
  };
  EXPECT_TRUE(near_truth(best)) << "best at " << best;
  EXPECT_TRUE(near_truth(second)) << "second at " << second;
}

INSTANTIATE_TEST_SUITE_P(SnrSweep, SteeringRecovery,
                         ::testing::Values(30.0, 20.0, 10.0, 5.0));

}  // namespace
}  // namespace roarray::sparse
