#include "sparse/omp.hpp"

#include <gtest/gtest.h>

#include "dsp/steering.hpp"
#include "sparse/fista.hpp"
#include "../test_util.hpp"

namespace roarray::sparse {
namespace {

namespace rt = roarray::testing;

TEST(Omp, RecoversExactSupportNoiseless) {
  auto rng = rt::make_rng(971);
  const CMat s = rt::random_cmat(12, 50, rng);
  const DenseOperator op(s);
  CVec x_true(50);
  x_true[4] = cxd{2.0, -1.0};
  x_true[23] = cxd{-1.0, 0.5};
  x_true[41] = cxd{0.7, 0.7};
  const CVec y = op.apply(x_true);
  OmpConfig cfg;
  cfg.max_atoms = 3;
  cfg.residual_tolerance = 1e-8;
  const OmpResult r = solve_omp(op, y, cfg);
  ASSERT_EQ(r.support.size(), 3u);
  std::vector<index_t> sorted = r.support;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted[0], 4);
  EXPECT_EQ(sorted[1], 23);
  EXPECT_EQ(sorted[2], 41);
  // Least-squares refit recovers the exact coefficients.
  rt::expect_vec_near(r.x, x_true, 1e-8, "OMP coefficients");
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-8);
}

TEST(Omp, StopsEarlyOnSmallResidual) {
  auto rng = rt::make_rng(972);
  const CMat s = rt::random_cmat(10, 30, rng);
  const DenseOperator op(s);
  CVec x_true(30);
  x_true[7] = cxd{1.0, 0.0};
  const CVec y = op.apply(x_true);
  OmpConfig cfg;
  cfg.max_atoms = 10;
  cfg.residual_tolerance = 1e-6;
  const OmpResult r = solve_omp(op, y, cfg);
  EXPECT_EQ(r.support.size(), 1u);  // one atom suffices
  EXPECT_EQ(r.iterations, 1);
}

TEST(Omp, ZeroMeasurementGivesEmptySolution) {
  const DenseOperator op(CMat(5, 10, cxd{1.0, 0.0}));
  const OmpResult r = solve_omp(op, CVec(5));
  EXPECT_TRUE(r.support.empty());
  EXPECT_NEAR(norm2(r.x), 0.0, 1e-15);
}

TEST(Omp, InvalidInputsThrow) {
  const DenseOperator op(CMat(5, 10, cxd{1.0, 0.0}));
  EXPECT_THROW(solve_omp(op, CVec(4)), std::invalid_argument);
  OmpConfig cfg;
  cfg.max_atoms = 0;
  EXPECT_THROW(solve_omp(op, CVec(5), cfg), std::invalid_argument);
}

TEST(Omp, BudgetCapsSupportSize) {
  auto rng = rt::make_rng(973);
  const CMat s = rt::random_cmat(10, 40, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(10, rng);  // dense target: never converges
  OmpConfig cfg;
  cfg.max_atoms = 4;
  cfg.residual_tolerance = 0.0;
  const OmpResult r = solve_omp(op, y, cfg);
  EXPECT_EQ(r.support.size(), 4u);
}

TEST(Omp, ResidualDecreasesWithMoreAtoms) {
  auto rng = rt::make_rng(974);
  const CMat s = rt::random_cmat(12, 40, rng);
  const DenseOperator op(s);
  const CVec y = rt::random_cvec(12, rng);
  double prev = norm2(y);
  for (index_t k : {1, 2, 4, 8}) {
    OmpConfig cfg;
    cfg.max_atoms = k;
    cfg.residual_tolerance = 0.0;
    const OmpResult r = solve_omp(op, y, cfg);
    EXPECT_LE(r.residual_norm, prev + 1e-10) << "atoms " << k;
    prev = r.residual_norm;
  }
}

TEST(Omp, WorksOnSteeringOperatorAtHighSnr) {
  // Two well-separated on-grid paths: greedy finds them both.
  dsp::ArrayConfig arr;
  const dsp::Grid aoa(0.0, 180.0, 46);
  const dsp::Grid toa(0.0, 700e-9, 15);
  const KroneckerOperator op(dsp::steering_matrix_aoa(aoa, arr),
                             dsp::steering_matrix_toa(toa, arr));
  CVec x_true(op.cols());
  const index_t idx1 = 3 * 46 + 12;
  const index_t idx2 = 9 * 46 + 33;
  x_true[idx1] = cxd{1.0, 0.2};
  x_true[idx2] = cxd{0.6, -0.3};
  CVec y = op.apply(x_true);
  auto rng = rt::make_rng(975);
  std::normal_distribution<double> n(0.0, 0.05);
  for (index_t i = 0; i < y.size(); ++i) y[i] += cxd{n(rng), n(rng)};
  OmpConfig cfg;
  cfg.max_atoms = 2;
  const OmpResult r = solve_omp(op, y, cfg);
  ASSERT_EQ(r.support.size(), 2u);
  for (index_t picked : r.support) {
    const bool near1 = std::abs(picked % 46 - idx1 % 46) <= 1 &&
                       std::abs(picked / 46 - idx1 / 46) <= 1;
    const bool near2 = std::abs(picked % 46 - idx2 % 46) <= 1 &&
                       std::abs(picked / 46 - idx2 / 46) <= 1;
    EXPECT_TRUE(near1 || near2) << "atom " << picked;
  }
}

TEST(Omp, L1IsMoreRobustAtLowSnr) {
  // The ablation the solver exists for: average support-recovery rate of
  // OMP vs FISTA on a noisy 2-path steering problem. l1 must win (or at
  // least tie) at low SNR.
  dsp::ArrayConfig arr;
  const dsp::Grid aoa(0.0, 180.0, 46);
  const dsp::Grid toa(0.0, 700e-9, 15);
  const KroneckerOperator op(dsp::steering_matrix_aoa(aoa, arr),
                             dsp::steering_matrix_toa(toa, arr));
  const index_t idx1 = 3 * 46 + 12;
  const index_t idx2 = 9 * 46 + 33;
  auto near_any = [&](index_t picked) {
    const bool near1 = std::abs(picked % 46 - idx1 % 46) <= 1 &&
                       std::abs(picked / 46 - idx1 / 46) <= 1;
    const bool near2 = std::abs(picked % 46 - idx2 % 46) <= 1 &&
                       std::abs(picked / 46 - idx2 / 46) <= 1;
    return near1 || near2;
  };
  int omp_hits = 0;
  int l1_hits = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    CVec x_true(op.cols());
    x_true[idx1] = cxd{1.0, 0.2};
    x_true[idx2] = cxd{0.6, -0.3};
    CVec y = op.apply(x_true);
    auto rng = rt::make_rng(976 + static_cast<std::uint64_t>(t));
    const double sigma = std::sqrt(norm2_sq(y) / static_cast<double>(y.size()));
    std::normal_distribution<double> n(0.0, 0.7 * sigma);  // ~ 0 dB
    for (index_t i = 0; i < y.size(); ++i) y[i] += cxd{n(rng), n(rng)};

    OmpConfig ocfg;
    ocfg.max_atoms = 2;
    const OmpResult omp_r = solve_omp(op, y, ocfg);
    bool omp_ok = omp_r.support.size() == 2;
    for (index_t p : omp_r.support) omp_ok = omp_ok && near_any(p);
    omp_hits += omp_ok ? 1 : 0;

    SolveConfig scfg;
    scfg.max_iterations = 400;
    const SolveResult l1_r = solve_l1(op, y, scfg);
    // Top-2 coefficients of the l1 solution.
    index_t b1 = 0, b2 = 0;
    double v1 = 0.0, v2 = 0.0;
    for (index_t i = 0; i < l1_r.x.size(); ++i) {
      const double v = std::abs(l1_r.x[i]);
      if (v > v1) {
        b2 = b1;
        v2 = v1;
        b1 = i;
        v1 = v;
      } else if (v > v2) {
        b2 = i;
        v2 = v;
      }
    }
    l1_hits += (near_any(b1) && near_any(b2)) ? 1 : 0;
  }
  EXPECT_GE(l1_hits, omp_hits);
  EXPECT_GE(l1_hits, trials - 2);  // l1 succeeds on most trials
}

}  // namespace
}  // namespace roarray::sparse
