// Trace format robustness: bit-exact round trips, typed rejection of
// damaged headers, and strict-vs-recovery behavior on truncated or
// corrupted records.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "io/crc32.hpp"
#include "io/trace_reader.hpp"
#include "io/trace_writer.hpp"
#include "sim/recorder.hpp"
#include "sim/scenario.hpp"
#include "sim/testbed.hpp"

namespace roarray {
namespace {

using testing::make_rng;
using testing::random_cmat;

/// Serializes `records` (shape from `cfg`) into an in-memory trace.
std::string build_trace(const std::vector<io::TraceRecord>& records,
                        const dsp::ArrayConfig& cfg = {}) {
  std::stringstream ss;
  io::TraceWriter writer(ss, cfg);
  for (const auto& r : records) writer.append(r);
  return ss.str();
}

std::vector<io::TraceRecord> sample_records(int n, std::uint64_t seed = 42) {
  const dsp::ArrayConfig cfg;
  auto rng = make_rng(seed);
  std::vector<io::TraceRecord> out;
  for (int i = 0; i < n; ++i) {
    io::TraceRecord r;
    r.ap_id = static_cast<std::uint32_t>(i % 3);
    r.client_id = static_cast<std::uint64_t>(100 + i / 3);
    r.timestamp_tick = static_cast<std::uint64_t>(i);
    r.snr_db = 20.0 - i;
    r.csi = random_cmat(cfg.num_antennas, cfg.num_subcarriers, rng);
    out.push_back(r);
  }
  return out;
}

void expect_record_eq(const io::TraceRecord& got, const io::TraceRecord& want) {
  EXPECT_EQ(got.ap_id, want.ap_id);
  EXPECT_EQ(got.client_id, want.client_id);
  EXPECT_EQ(got.timestamp_tick, want.timestamp_tick);
  EXPECT_EQ(got.snr_db, want.snr_db);  // bit-exact, not near
  ASSERT_EQ(got.csi.rows(), want.csi.rows());
  ASSERT_EQ(got.csi.cols(), want.csi.cols());
  for (linalg::index_t j = 0; j < got.csi.cols(); ++j) {
    for (linalg::index_t i = 0; i < got.csi.rows(); ++i) {
      EXPECT_EQ(got.csi(i, j).real(), want.csi(i, j).real());
      EXPECT_EQ(got.csi(i, j).imag(), want.csi(i, j).imag());
    }
  }
}

TEST(TraceRoundTrip, RecordsComeBackBitExact) {
  const auto records = sample_records(7);
  std::stringstream ss(build_trace(records));
  io::TraceReader reader(ss);
  EXPECT_EQ(reader.header().num_antennas, 3u);
  EXPECT_EQ(reader.header().num_subcarriers, 30u);
  io::TraceRecord rec;
  for (const auto& want : records) {
    ASSERT_EQ(reader.next(rec), io::ReadStatus::kOk);
    expect_record_eq(rec, want);
  }
  EXPECT_EQ(reader.next(rec), io::ReadStatus::kEndOfTrace);
  EXPECT_EQ(reader.records_read(), records.size());
  EXPECT_EQ(reader.records_skipped(), 0u);
  EXPECT_EQ(reader.bytes_skipped(), 0u);
}

TEST(TraceRoundTrip, SimulatedRoundSurvivesRecordAndRegroup) {
  sim::Testbed tb = sim::make_paper_testbed();
  tb.aps.resize(3);
  sim::ScenarioConfig scfg = sim::scenario_for_band(sim::SnrBand::kHigh);
  scfg.num_packets = 4;
  auto rng = make_rng(5);
  const auto clients = sim::sample_client_locations(2, tb.room, rng);

  std::stringstream ss;
  io::TraceWriter writer(ss, scfg.array);
  std::vector<std::vector<sim::ApMeasurement>> live;
  std::uint64_t tick = 0;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    live.push_back(sim::generate_measurements(tb, clients[c], scfg, rng));
    tick = sim::record_round(writer, live.back(), c, tick);
  }
  EXPECT_EQ(writer.records_written(), 2u * 3u * 4u);

  ss.seekg(0);
  io::TraceReader reader(ss);
  const auto rounds = io::read_client_rounds(reader);
  ASSERT_EQ(rounds.size(), live.size());
  for (std::size_t c = 0; c < rounds.size(); ++c) {
    EXPECT_EQ(rounds[c].client_id, c);
    ASSERT_EQ(rounds[c].bursts.size(), live[c].size());
    for (std::size_t a = 0; a < live[c].size(); ++a) {
      EXPECT_EQ(rounds[c].ap_ids[a], static_cast<std::uint32_t>(a));
      EXPECT_EQ(rounds[c].snr_db[a], live[c][a].snr_db);
      const auto& packets = live[c][a].burst.csi;
      ASSERT_EQ(rounds[c].bursts[a].size(), packets.size());
      for (std::size_t p = 0; p < packets.size(); ++p) {
        for (linalg::index_t j = 0; j < packets[p].cols(); ++j) {
          for (linalg::index_t i = 0; i < packets[p].rows(); ++i) {
            EXPECT_EQ(rounds[c].bursts[a][p](i, j), packets[p](i, j));
          }
        }
      }
    }
  }
}

TEST(TraceRoundTrip, NonFiniteDoublesRoundTrip) {
  io::TraceRecord r;
  r.snr_db = std::numeric_limits<double>::quiet_NaN();
  r.csi = linalg::CMat(3, 30);
  r.csi(0, 0) = {std::numeric_limits<double>::infinity(), -0.0};
  std::stringstream ss(build_trace({r}));
  io::TraceReader reader(ss);
  io::TraceRecord got;
  ASSERT_EQ(reader.next(got), io::ReadStatus::kOk);
  EXPECT_TRUE(std::isnan(got.snr_db));
  EXPECT_EQ(got.csi(0, 0).real(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::signbit(got.csi(0, 0).imag()));
}

TEST(TraceRoundTrip, EmptyTraceIsCleanEnd) {
  std::stringstream ss(build_trace({}));
  io::TraceReader reader(ss);
  io::TraceRecord rec;
  EXPECT_EQ(reader.next(rec), io::ReadStatus::kEndOfTrace);
  // Latched: asking again is still a clean end.
  EXPECT_EQ(reader.next(rec), io::ReadStatus::kEndOfTrace);
}

TEST(TraceHeaderValidation, RejectsForeignFile) {
  // Long enough that a full 64-byte header can be read; rejection must
  // come from the magic check, not from hitting end-of-file.
  std::string foreign = "this is not a trace file at all, not even close. ";
  foreign += foreign;
  std::stringstream ss(foreign);
  try {
    io::TraceReader reader(ss);
    FAIL() << "expected TraceError";
  } catch (const io::TraceError& e) {
    EXPECT_EQ(e.code(), io::TraceErrorCode::kBadMagic);
  }
}

TEST(TraceHeaderValidation, RejectsTruncatedHeader) {
  std::string bytes = build_trace({});
  bytes.resize(20);
  std::stringstream ss(bytes);
  try {
    io::TraceReader reader(ss);
    FAIL() << "expected TraceError";
  } catch (const io::TraceError& e) {
    EXPECT_EQ(e.code(), io::TraceErrorCode::kBadHeader);
  }
}

TEST(TraceHeaderValidation, RejectsUnsupportedVersion) {
  std::string bytes = build_trace(sample_records(1));
  // Bump the version field (offset 8) and re-seal the header CRC so the
  // reader sees a valid header from the future, not a corrupt one.
  bytes[8] = static_cast<char>(io::kTraceVersion + 1);
  const std::uint32_t crc = io::crc32(
      reinterpret_cast<const unsigned char*>(bytes.data()), 60);
  for (int i = 0; i < 4; ++i) {
    bytes[60 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  std::stringstream ss(bytes);
  try {
    io::TraceReader reader(ss);
    FAIL() << "expected TraceError";
  } catch (const io::TraceError& e) {
    EXPECT_EQ(e.code(), io::TraceErrorCode::kVersionMismatch);
  }
}

TEST(TraceHeaderValidation, RejectsHeaderBitFlip) {
  std::string bytes = build_trace({});
  bytes[17] = static_cast<char>(bytes[17] ^ 0x40);  // inside num_antennas
  std::stringstream ss(bytes);
  try {
    io::TraceReader reader(ss);
    FAIL() << "expected TraceError";
  } catch (const io::TraceError& e) {
    EXPECT_EQ(e.code(), io::TraceErrorCode::kBadHeader);
  }
}

TEST(TraceWriterValidation, RejectsGeometryMismatch) {
  std::stringstream ss;
  io::TraceWriter writer(ss, dsp::ArrayConfig{});
  io::TraceRecord r;
  r.csi = linalg::CMat(2, 30);  // header says 3 x 30
  try {
    writer.append(r);
    FAIL() << "expected TraceError";
  } catch (const io::TraceError& e) {
    EXPECT_EQ(e.code(), io::TraceErrorCode::kGeometryMismatch);
  }
}

TEST(TraceWriterValidation, UnwritablePathIsTyped) {
  try {
    io::TraceWriter writer("/nonexistent-dir/trace.bin", dsp::ArrayConfig{});
    FAIL() << "expected TraceError";
  } catch (const io::TraceError& e) {
    EXPECT_EQ(e.code(), io::TraceErrorCode::kWriteFailed);
  }
}

TEST(TraceReaderValidation, UnreadablePathIsTyped) {
  try {
    io::TraceReader reader("/nonexistent-dir/trace.bin");
    FAIL() << "expected TraceError";
  } catch (const io::TraceError& e) {
    EXPECT_EQ(e.code(), io::TraceErrorCode::kBadHeader);
  }
}

TEST(TraceTruncation, StrictModeLatchesTruncated) {
  const auto records = sample_records(3);
  std::string bytes = build_trace(records);
  bytes.resize(bytes.size() - 17);  // chop into the last record
  std::stringstream ss(bytes);
  io::TraceReader reader(ss);
  io::TraceRecord rec;
  ASSERT_EQ(reader.next(rec), io::ReadStatus::kOk);
  ASSERT_EQ(reader.next(rec), io::ReadStatus::kOk);
  EXPECT_EQ(reader.next(rec), io::ReadStatus::kTruncated);
  EXPECT_EQ(reader.next(rec), io::ReadStatus::kTruncated);  // latched
  EXPECT_EQ(reader.records_read(), 2u);
}

TEST(TraceTruncation, RecoveryModeCountsTailBytes) {
  const auto records = sample_records(3);
  std::string bytes = build_trace(records);
  bytes.resize(bytes.size() - 17);
  std::stringstream ss(bytes);
  io::TraceReader reader(ss, io::RecoveryMode::kSkipCorrupt);
  io::TraceRecord rec;
  ASSERT_EQ(reader.next(rec), io::ReadStatus::kOk);
  ASSERT_EQ(reader.next(rec), io::ReadStatus::kOk);
  EXPECT_EQ(reader.next(rec), io::ReadStatus::kEndOfTrace);
  EXPECT_EQ(reader.records_read(), 2u);
  EXPECT_EQ(reader.bytes_skipped(),
            reader.header().record_size_bytes() - 17);
}

TEST(TraceCorruption, StrictModeLatchesCorrupt) {
  const auto records = sample_records(3);
  std::string bytes = build_trace(records);
  const std::size_t record_size =
      io::TraceHeader::of(dsp::ArrayConfig{}).record_size_bytes();
  // Flip one payload byte in the middle record.
  const std::size_t pos = io::kHeaderBytes + record_size + 50;
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x01);
  std::stringstream ss(bytes);
  io::TraceReader reader(ss);
  io::TraceRecord rec;
  ASSERT_EQ(reader.next(rec), io::ReadStatus::kOk);
  EXPECT_EQ(reader.next(rec), io::ReadStatus::kCorrupt);
  EXPECT_EQ(reader.next(rec), io::ReadStatus::kCorrupt);  // latched
}

TEST(TraceCorruption, RecoveryModeSkipsExactlyTheDamagedRecord) {
  const auto records = sample_records(5);
  std::string bytes = build_trace(records);
  const std::size_t record_size =
      io::TraceHeader::of(dsp::ArrayConfig{}).record_size_bytes();
  const std::size_t pos = io::kHeaderBytes + 2 * record_size + 50;
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x01);
  std::stringstream ss(bytes);
  io::TraceReader reader(ss, io::RecoveryMode::kSkipCorrupt);
  io::TraceRecord rec;
  for (const std::size_t want : {0u, 1u, 3u, 4u}) {
    ASSERT_EQ(reader.next(rec), io::ReadStatus::kOk);
    expect_record_eq(rec, records[want]);
  }
  EXPECT_EQ(reader.next(rec), io::ReadStatus::kEndOfTrace);
  EXPECT_EQ(reader.records_read(), 4u);
  EXPECT_EQ(reader.records_skipped(), 1u);
  EXPECT_EQ(reader.bytes_skipped(), record_size);
}

TEST(TraceCorruption, RecoveryResyncsPastSmashedRecordMagic) {
  const auto records = sample_records(4);
  std::string bytes = build_trace(records);
  const std::size_t record_size =
      io::TraceHeader::of(dsp::ArrayConfig{}).record_size_bytes();
  // Destroy the magic of record 1 so resync has to scan for record 2.
  const std::size_t pos = io::kHeaderBytes + record_size;
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0xFF);
  std::stringstream ss(bytes);
  io::TraceReader reader(ss, io::RecoveryMode::kSkipCorrupt);
  io::TraceRecord rec;
  for (const std::size_t want : {0u, 2u, 3u}) {
    ASSERT_EQ(reader.next(rec), io::ReadStatus::kOk);
    expect_record_eq(rec, records[want]);
  }
  EXPECT_EQ(reader.next(rec), io::ReadStatus::kEndOfTrace);
  EXPECT_EQ(reader.records_skipped(), 1u);
  EXPECT_EQ(reader.bytes_skipped(), record_size);
}

TEST(TraceCorruption, FlippedByteCorpusNeverCrashesEitherMode) {
  // Every position in a small trace gets one bit flipped; strict must
  // report a typed status (or a header throw) and recovery must always
  // run to a clean end, both without UB (ASan/TSan legs run this too).
  const auto records = sample_records(2);
  const std::string clean = build_trace(records);
  for (std::size_t pos = 0; pos < clean.size(); ++pos) {
    std::string bytes = clean;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x10);
    for (const auto mode :
         {io::RecoveryMode::kStrict, io::RecoveryMode::kSkipCorrupt}) {
      std::stringstream ss(bytes);
      try {
        io::TraceReader reader(ss, mode);
        io::TraceRecord rec;
        io::ReadStatus status;
        do {
          status = reader.next(rec);
        } while (status == io::ReadStatus::kOk);
        if (mode == io::RecoveryMode::kSkipCorrupt) {
          EXPECT_EQ(status, io::ReadStatus::kEndOfTrace) << "pos " << pos;
        }
      } catch (const io::TraceError&) {
        EXPECT_LT(pos, io::kHeaderBytes) << "record damage must not throw";
      }
    }
  }
}

TEST(TraceClientRounds, StrictGroupingThrowsOnCorruptRecord) {
  const auto records = sample_records(3);
  std::string bytes = build_trace(records);
  bytes[io::kHeaderBytes + 40] = static_cast<char>(
      bytes[io::kHeaderBytes + 40] ^ 0x02);
  std::stringstream ss(bytes);
  io::TraceReader reader(ss);
  try {
    (void)io::read_client_rounds(reader);
    FAIL() << "expected TraceError";
  } catch (const io::TraceError& e) {
    EXPECT_EQ(e.code(), io::TraceErrorCode::kCorruptRecord);
  }
}

TEST(TraceClientRounds, GroupsInterleavedClientsInFirstAppearanceOrder) {
  // Two clients interleaved packet-by-packet across two APs.
  const dsp::ArrayConfig cfg;
  auto rng = make_rng(9);
  std::vector<io::TraceRecord> records;
  for (int p = 0; p < 2; ++p) {
    for (const std::uint64_t client : {7u, 3u}) {
      for (const std::uint32_t ap : {1u, 0u}) {
        io::TraceRecord r;
        r.ap_id = ap;
        r.client_id = client;
        r.timestamp_tick = static_cast<std::uint64_t>(records.size());
        r.csi = random_cmat(cfg.num_antennas, cfg.num_subcarriers, rng);
        records.push_back(r);
      }
    }
  }
  std::stringstream ss(build_trace(records));
  io::TraceReader reader(ss);
  const auto rounds = io::read_client_rounds(reader);
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].client_id, 7u);
  EXPECT_EQ(rounds[1].client_id, 3u);
  for (const auto& round : rounds) {
    ASSERT_EQ(round.ap_ids.size(), 2u);
    EXPECT_EQ(round.ap_ids[0], 1u);  // first-appearance order, not sorted
    EXPECT_EQ(round.ap_ids[1], 0u);
    EXPECT_EQ(round.bursts[0].size(), 2u);
    EXPECT_EQ(round.bursts[1].size(), 2u);
  }
}

}  // namespace
}  // namespace roarray
