// LocalizationService behavior: config validation, admission control,
// logical-time batching/deadlines in deterministic manual-pump mode,
// bit-exact replay against the offline pipeline, and concurrent
// submit/shutdown (the TSan/ASan legs instrument exactly these).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "channel/csi.hpp"
#include "io/trace_reader.hpp"
#include "io/trace_writer.hpp"
#include "runtime/operator_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/service.hpp"
#include "sim/recorder.hpp"
#include "sim/scenario.hpp"
#include "sim/testbed.hpp"

namespace roarray {
namespace {

using testing::make_rng;
using testing::random_cmat;

/// Small, fast configuration: coarse grids, few iterations, two APs.
serve::ServeConfig small_config(int dispatchers) {
  serve::ServeConfig cfg;
  cfg.estimator.aoa_grid = dsp::Grid(0.0, 180.0, 19);
  cfg.estimator.toa_grid = dsp::Grid(0.0, 784e-9, 8);
  cfg.estimator.solver.max_iterations = 40;
  cfg.localize.grid_step_m = 0.5;
  cfg.ap_poses = {{{0.0, 6.0}, 90.0}, {{18.0, 6.0}, 90.0}};
  cfg.dispatchers = dispatchers;
  return cfg;
}

/// A request whose bursts hold a clean synthesized one-path channel, so
/// the estimator reliably produces a direct-path AoA.
serve::Request clean_request(std::uint64_t client_id, serve::Tick tick,
                             std::uint64_t seed = 3) {
  channel::Path direct;
  direct.aoa_deg = 100.0;
  direct.toa_s = 60e-9;
  direct.gain = {1.0, 0.0};
  auto rng = make_rng(seed);
  serve::Request req;
  req.client_id = client_id;
  req.submit_tick = tick;
  for (std::uint32_t ap = 0; ap < 2; ++ap) {
    serve::ApSubmission sub;
    sub.ap_id = ap;
    for (int p = 0; p < 2; ++p) {
      linalg::CMat csi = channel::synthesize_csi({direct}, dsp::ArrayConfig{});
      channel::add_noise(csi, 20.0, rng);
      sub.packets.push_back(std::move(csi));
    }
    req.aps.push_back(std::move(sub));
  }
  return req;
}

TEST(ServeConfigValidation, RejectsNonsenseValues) {
  {
    serve::ServeConfig cfg = small_config(0);
    cfg.ap_poses.clear();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    serve::ServeConfig cfg = small_config(0);
    cfg.max_batch = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    serve::ServeConfig cfg = small_config(0);
    cfg.queue_capacity = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    serve::ServeConfig cfg = small_config(0);
    cfg.dispatchers = -2;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    serve::ServeConfig cfg = small_config(0);
    cfg.localize.grid_step_m = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    serve::ServeConfig cfg = small_config(0);
    cfg.array.num_antennas = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    serve::ServeConfig cfg = small_config(0);
    cfg.latency_sample_cap = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  EXPECT_NO_THROW(small_config(0).validate());
}

TEST(ServeAdmission, RejectsMalformedRequests) {
  serve::LocalizationService svc(small_config(0));
  // No APs at all.
  EXPECT_EQ(svc.submit({}, {}), serve::SubmitStatus::kInvalidRequest);
  // Unknown AP id.
  serve::Request bad_ap = clean_request(1, 0);
  bad_ap.aps[0].ap_id = 9;
  EXPECT_EQ(svc.submit(std::move(bad_ap), {}),
            serve::SubmitStatus::kInvalidRequest);
  // Empty burst.
  serve::Request empty_burst = clean_request(1, 0);
  empty_burst.aps[0].packets.clear();
  EXPECT_EQ(svc.submit(std::move(empty_burst), {}),
            serve::SubmitStatus::kInvalidRequest);
  // CSI shape mismatch.
  serve::Request bad_shape = clean_request(1, 0);
  bad_shape.aps[0].packets[0] = linalg::CMat(2, 30);
  EXPECT_EQ(svc.submit(std::move(bad_shape), {}),
            serve::SubmitStatus::kInvalidRequest);
  EXPECT_EQ(svc.stats().rejected_invalid, 4u);
  EXPECT_EQ(svc.stats().accepted, 0u);
}

TEST(ServeAdmission, QueueFullIsTypedBackpressure) {
  serve::ServeConfig cfg = small_config(0);
  cfg.queue_capacity = 2;
  serve::LocalizationService svc(cfg);
  EXPECT_EQ(svc.submit(clean_request(0, 0), {}),
            serve::SubmitStatus::kAccepted);
  EXPECT_EQ(svc.submit(clean_request(1, 0), {}),
            serve::SubmitStatus::kAccepted);
  EXPECT_EQ(svc.submit(clean_request(2, 0), {}),
            serve::SubmitStatus::kQueueFull);
  svc.drain();
  // Capacity freed: accepted again.
  EXPECT_EQ(svc.submit(clean_request(3, 0), {}),
            serve::SubmitStatus::kAccepted);
  svc.drain();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
}

TEST(ServeAdmission, SubmitAfterStopIsRejected) {
  serve::LocalizationService svc(small_config(0));
  svc.stop();
  EXPECT_EQ(svc.submit(clean_request(0, 0), {}),
            serve::SubmitStatus::kStopped);
  EXPECT_EQ(svc.stats().rejected_stopped, 1u);
}

TEST(ServeBatching, LingerHoldsUntilTickOrFullBatch) {
  serve::ServeConfig cfg = small_config(0);
  cfg.max_batch = 4;
  cfg.batch_linger_ticks = 100;
  serve::LocalizationService svc(cfg);
  ASSERT_EQ(svc.submit(clean_request(0, 10), {}),
            serve::SubmitStatus::kAccepted);
  ASSERT_EQ(svc.submit(clean_request(1, 20), {}),
            serve::SubmitStatus::kAccepted);
  EXPECT_FALSE(svc.pump());  // linger window still open at tick 20
  svc.advance_time(109);
  EXPECT_FALSE(svc.pump());  // window not over yet
  // Boundary convention: the window is over STRICTLY after submit +
  // linger, so the batch still lingers at exactly tick 110 — same rule
  // as the deadline checks (regression: linger used >= here).
  svc.advance_time(110);
  EXPECT_FALSE(svc.pump());
  svc.advance_time(111);
  EXPECT_TRUE(svc.pump());  // both requests go as one batch
  const auto stats = svc.stats();
  EXPECT_EQ(stats.batches, 1u);
  ASSERT_EQ(stats.batch_size_hist.size(), 4u);
  EXPECT_EQ(stats.batch_size_hist[1], 1u);  // one batch of size 2
  EXPECT_EQ(stats.completed_ok, 2u);
  EXPECT_EQ(stats.latency_ticks.size(), 2u);
  EXPECT_EQ(stats.latency_ticks[0], 101.0);  // done 111 - submitted 10
  EXPECT_EQ(stats.latency_ticks[1], 91.0);
}

TEST(ServeBatching, FullBatchDispatchesInsideLingerWindow) {
  serve::ServeConfig cfg = small_config(0);
  cfg.max_batch = 2;
  cfg.batch_linger_ticks = 1000;
  serve::LocalizationService svc(cfg);
  ASSERT_EQ(svc.submit(clean_request(0, 0), {}),
            serve::SubmitStatus::kAccepted);
  EXPECT_FALSE(svc.pump());
  ASSERT_EQ(svc.submit(clean_request(1, 1), {}),
            serve::SubmitStatus::kAccepted);
  EXPECT_TRUE(svc.pump());  // batch full; linger does not apply
  EXPECT_EQ(svc.stats().batch_size_hist[1], 1u);
}

TEST(ServeBatching, OverflowSplitsAcrossBatches) {
  serve::ServeConfig cfg = small_config(0);
  cfg.max_batch = 2;
  serve::LocalizationService svc(cfg);
  for (std::uint64_t c = 0; c < 3; ++c) {
    ASSERT_EQ(svc.submit(clean_request(c, 0), {}),
              serve::SubmitStatus::kAccepted);
  }
  EXPECT_TRUE(svc.pump());
  EXPECT_TRUE(svc.pump());
  EXPECT_FALSE(svc.pump());
  const auto stats = svc.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.batch_size_hist[1], 1u);  // one batch of 2
  EXPECT_EQ(stats.batch_size_hist[0], 1u);  // one batch of 1
}

TEST(ServeDeadline, ExpiredRequestsAreDroppedWithCallback) {
  serve::ServeConfig cfg = small_config(0);
  cfg.deadline_ticks = 5;
  serve::LocalizationService svc(cfg);
  std::vector<serve::Response> got;
  ASSERT_EQ(svc.submit(clean_request(42, 0),
                       [&](const serve::Response& r) { got.push_back(r); }),
            serve::SubmitStatus::kAccepted);
  svc.advance_time(6);  // past 0 + 5
  EXPECT_TRUE(svc.pump());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].status, serve::ResponseStatus::kDeadlineExpired);
  EXPECT_EQ(got[0].client_id, 42u);
  EXPECT_TRUE(got[0].ap_estimates.empty());
  const auto stats = svc.stats();
  EXPECT_EQ(stats.deadline_dropped, 1u);
  EXPECT_EQ(stats.completed_ok, 0u);
  EXPECT_TRUE(stats.latency_ticks.empty());
  EXPECT_EQ(stats.batches, 0u);  // nothing was estimated
}

TEST(ServeDeadline, RequestProcessedAtExactDeadlineTickCompletesOk) {
  // Pins the documented boundary: a request expires STRICTLY after
  // submit_tick + deadline_ticks, so one processed at exactly that tick
  // is estimated normally.
  serve::ServeConfig cfg = small_config(0);
  cfg.deadline_ticks = 5;
  serve::LocalizationService svc(cfg);
  serve::Response resp;
  ASSERT_EQ(svc.submit(clean_request(3, 10),
                       [&](const serve::Response& r) { resp = r; }),
            serve::SubmitStatus::kAccepted);
  svc.advance_time(15);  // exactly submit (10) + deadline (5)
  EXPECT_TRUE(svc.pump());
  EXPECT_EQ(resp.status, serve::ResponseStatus::kOk);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.deadline_dropped, 0u);
  EXPECT_EQ(stats.completed_ok, 1u);
  ASSERT_EQ(stats.latency_ticks.size(), 1u);
  EXPECT_EQ(stats.latency_ticks[0], 5.0);
}

TEST(ServeDeadline, FreshRequestInSameQueueStillCompletes) {
  serve::ServeConfig cfg = small_config(0);
  cfg.deadline_ticks = 5;
  serve::LocalizationService svc(cfg);
  std::vector<serve::Response> got;
  auto keep = [&](const serve::Response& r) { got.push_back(r); };
  ASSERT_EQ(svc.submit(clean_request(1, 0), keep),
            serve::SubmitStatus::kAccepted);
  ASSERT_EQ(svc.submit(clean_request(2, 4), keep),
            serve::SubmitStatus::kAccepted);
  svc.advance_time(7);  // request 1 expired, request 2 still live
  EXPECT_TRUE(svc.pump());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].status, serve::ResponseStatus::kOk);
  EXPECT_EQ(got[0].client_id, 2u);
  EXPECT_EQ(got[1].status, serve::ResponseStatus::kDeadlineExpired);
  EXPECT_EQ(got[1].client_id, 1u);
}

TEST(ServeStats, LatencySamplesAreABoundedRing) {
  // latency_ticks must never outgrow latency_sample_cap no matter how
  // many requests complete (a soak run cannot inflate service memory);
  // latency_recorded keeps the true total, and the ring overwrites
  // oldest-first so the surviving samples are the most recent ones.
  serve::ServeConfig cfg = small_config(0);
  cfg.latency_sample_cap = 4;
  serve::LocalizationService svc(cfg);
  for (std::uint64_t c = 0; c < 10; ++c) {
    // Submit at tick c, complete at tick c + 1 + c: latency = 1 + c.
    ASSERT_EQ(svc.submit(clean_request(c, c), {}),
              serve::SubmitStatus::kAccepted);
    svc.advance_time(2 * c + 1);
    ASSERT_TRUE(svc.pump());
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed_ok, 10u);
  EXPECT_EQ(stats.latency_recorded, 10u);
  ASSERT_EQ(stats.latency_ticks.size(), 4u);
  // Samples 1..10 were taken; the ring (cap 4) holds the last four
  // {7,8,9,10} with the write cursor at latency_recorded % cap.
  EXPECT_EQ(stats.latency_ticks[0], 9.0);
  EXPECT_EQ(stats.latency_ticks[1], 10.0);
  EXPECT_EQ(stats.latency_ticks[2], 7.0);
  EXPECT_EQ(stats.latency_ticks[3], 8.0);
}

TEST(ServeResponses, ValidRequestLocalizesWithPerApEstimates) {
  serve::LocalizationService svc(small_config(0));
  serve::Response resp;
  bool called = false;
  ASSERT_EQ(svc.submit(clean_request(7, 3),
                       [&](const serve::Response& r) {
                         resp = r;
                         called = true;
                       }),
            serve::SubmitStatus::kAccepted);
  svc.drain();
  ASSERT_TRUE(called);
  EXPECT_EQ(resp.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(resp.client_id, 7u);
  EXPECT_EQ(resp.submit_tick, 3u);
  EXPECT_TRUE(resp.location.valid);
  ASSERT_EQ(resp.ap_estimates.size(), 2u);
  for (const auto& ae : resp.ap_estimates) {
    EXPECT_TRUE(ae.valid);
    EXPECT_GT(ae.weight, 0.0);
    EXPECT_GE(ae.aoa_deg, 0.0);
    EXPECT_LE(ae.aoa_deg, 180.0);
  }
}

TEST(ServeResponses, AllZeroCsiYieldsNoObservations) {
  serve::LocalizationService svc(small_config(0));
  serve::Request req;
  req.client_id = 1;
  for (std::uint32_t ap = 0; ap < 2; ++ap) {
    serve::ApSubmission sub;
    sub.ap_id = ap;
    sub.packets.emplace_back(3, 30);  // zero matrix: nothing to estimate
    req.aps.push_back(std::move(sub));
  }
  serve::Response resp;
  ASSERT_EQ(svc.submit(std::move(req),
                       [&](const serve::Response& r) { resp = r; }),
            serve::SubmitStatus::kAccepted);
  svc.drain();
  EXPECT_EQ(resp.status, serve::ResponseStatus::kNoObservations);
  EXPECT_FALSE(resp.location.valid);
  EXPECT_EQ(svc.stats().completed_no_observations, 1u);
}

TEST(ServeReplay, TraceReplayMatchesOfflinePipelineBitExactly) {
  // Record a simulated round, replay it through the service, and check
  // the response equals estimate_batch + localize on the original data.
  sim::Testbed tb = sim::make_paper_testbed();
  tb.aps.resize(2);
  sim::ScenarioConfig scfg = sim::scenario_for_band(sim::SnrBand::kHigh);
  scfg.num_packets = 3;
  auto rng = make_rng(17);
  const auto clients = sim::sample_client_locations(1, tb.room, rng);
  const auto ms = sim::generate_measurements(tb, clients[0], scfg, rng);

  std::stringstream ss;
  io::TraceWriter writer(ss, scfg.array);
  (void)sim::record_round(writer, ms, 0, 0);

  serve::ServeConfig cfg = small_config(0);
  cfg.estimator.solver.max_iterations = 60;
  cfg.array = scfg.array;
  cfg.ap_poses.assign(tb.aps.begin(), tb.aps.end());
  cfg.localize.room = tb.room;

  // Offline pipeline on the live measurements.
  std::vector<core::CsiBurst> bursts;
  for (const auto& m : ms) bursts.push_back(m.burst.csi);
  const auto offline =
      core::roarray_estimate_batch(bursts, cfg.estimator, cfg.array, {});
  std::vector<loc::ApObservation> obs;
  for (std::size_t a = 0; a < ms.size(); ++a) {
    if (!offline[a].valid) continue;
    obs.push_back({ms[a].pose, offline[a].direct.aoa_deg, ms[a].rssi_weight});
  }
  const loc::LocalizeResult direct_fix = loc::localize(obs, cfg.localize);

  // Replay through the service.
  ss.seekg(0);
  io::TraceReader reader(ss);
  const auto rounds = io::read_client_rounds(reader);
  ASSERT_EQ(rounds.size(), 1u);
  serve::LocalizationService svc(cfg);
  serve::Request req;
  req.client_id = rounds[0].client_id;
  for (std::size_t a = 0; a < rounds[0].ap_ids.size(); ++a) {
    req.aps.push_back({rounds[0].ap_ids[a], rounds[0].bursts[a]});
  }
  serve::Response resp;
  ASSERT_EQ(svc.submit(std::move(req),
                       [&](const serve::Response& r) { resp = r; }),
            serve::SubmitStatus::kAccepted);
  svc.drain();

  ASSERT_EQ(resp.status, serve::ResponseStatus::kOk);
  ASSERT_EQ(resp.ap_estimates.size(), ms.size());
  for (std::size_t a = 0; a < ms.size(); ++a) {
    EXPECT_EQ(resp.ap_estimates[a].valid, offline[a].valid);
    if (offline[a].valid) {
      EXPECT_EQ(resp.ap_estimates[a].aoa_deg, offline[a].direct.aoa_deg);
      EXPECT_EQ(resp.ap_estimates[a].toa_s, offline[a].direct.toa_s);
    }
    // The service recomputes the fusion weight from the replayed
    // packets; it must equal the simulator's measurement weight bit
    // for bit (both call channel::burst_rssi_weight).
    EXPECT_EQ(resp.ap_estimates[a].weight, ms[a].rssi_weight);
  }
  EXPECT_EQ(resp.location.position.x, direct_fix.position.x);
  EXPECT_EQ(resp.location.position.y, direct_fix.position.y);
  EXPECT_EQ(resp.location.cost, direct_fix.cost);
}

TEST(ServeCallbacks, ThrowingCallbackDoesNotWedgeOrRobSiblings) {
  // Regression: a throwing on_done used to escape process_batch between
  // the in_flight_ decrement's siblings — the remaining callbacks of
  // the batch were skipped and (in dispatcher mode) the exception would
  // std::terminate the thread. The service must swallow it, count it,
  // invoke every sibling, and still reach quiescence in drain().
  serve::ServeConfig cfg = small_config(0);
  cfg.max_batch = 2;
  serve::LocalizationService svc(cfg);
  bool second_called = false;
  ASSERT_EQ(svc.submit(clean_request(1, 0),
                       [](const serve::Response&) {
                         throw std::runtime_error("client bug");
                       }),
            serve::SubmitStatus::kAccepted);
  ASSERT_EQ(svc.submit(clean_request(2, 0),
                       [&](const serve::Response&) { second_called = true; }),
            serve::SubmitStatus::kAccepted);
  EXPECT_NO_THROW(svc.drain());  // must not propagate and must not hang
  EXPECT_TRUE(second_called);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.callback_exceptions, 1u);
  EXPECT_EQ(stats.completed_ok, 2u);
  // The service stays fully usable afterwards.
  bool third_called = false;
  ASSERT_EQ(svc.submit(clean_request(3, 1),
                       [&](const serve::Response&) { third_called = true; }),
            serve::SubmitStatus::kAccepted);
  svc.drain();
  EXPECT_TRUE(third_called);
}

// --- concurrent paths (runtime label; TSan/ASan instrument these) ---

TEST(ServeConcurrency, ContendedSubmitCompletesEveryAcceptedRequest) {
  serve::ServeConfig cfg = small_config(2);
  cfg.queue_capacity = 256;
  runtime::OperatorCache cache;
  runtime::ThreadPool pool(2);
  serve::LocalizationService svc(cfg, {&cache, &pool});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;
  std::atomic<int> callbacks{0};
  std::atomic<int> accepted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto st = svc.submit(
            clean_request(static_cast<std::uint64_t>(t * kPerThread + i),
                          static_cast<serve::Tick>(i)),
            [&](const serve::Response&) {
              callbacks.fetch_add(1, std::memory_order_relaxed);
            });
        if (st == serve::SubmitStatus::kAccepted) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  svc.stop();
  EXPECT_EQ(accepted.load(), kThreads * kPerThread);
  EXPECT_EQ(callbacks.load(), accepted.load());
  const auto stats = svc.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(stats.completed_ok + stats.completed_no_observations,
            static_cast<std::uint64_t>(callbacks.load()));
}

TEST(ServeConcurrency, QueueFullUnderContentionNeverLosesRequests) {
  serve::ServeConfig cfg = small_config(1);
  cfg.queue_capacity = 2;
  serve::LocalizationService svc(cfg);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4;
  std::atomic<int> callbacks{0};
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto st = svc.submit(clean_request(1, 0), [&](const serve::Response&) {
          callbacks.fetch_add(1, std::memory_order_relaxed);
        });
        if (st == serve::SubmitStatus::kAccepted) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(st, serve::SubmitStatus::kQueueFull);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  svc.stop();
  EXPECT_EQ(accepted.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_EQ(callbacks.load(), accepted.load());
}

TEST(ServeConcurrency, StopDrainsInFlightRequests) {
  serve::ServeConfig cfg = small_config(2);
  cfg.queue_capacity = 64;
  serve::LocalizationService svc(cfg);
  std::atomic<int> callbacks{0};
  int accepted = 0;
  for (std::uint64_t c = 0; c < 6; ++c) {
    if (svc.submit(clean_request(c, c), [&](const serve::Response&) {
          callbacks.fetch_add(1, std::memory_order_relaxed);
        }) == serve::SubmitStatus::kAccepted) {
      ++accepted;
    }
  }
  // Stop immediately: everything accepted must still complete.
  svc.stop();
  EXPECT_EQ(callbacks.load(), accepted);
  // And stop is idempotent.
  svc.stop();
  EXPECT_EQ(svc.submit(clean_request(99, 0), {}),
            serve::SubmitStatus::kStopped);
}

TEST(ServeConcurrency, DestructorActsAsGracefulStop) {
  std::atomic<int> callbacks{0};
  {
    serve::LocalizationService svc(small_config(1));
    for (std::uint64_t c = 0; c < 3; ++c) {
      ASSERT_EQ(svc.submit(clean_request(c, 0),
                           [&](const serve::Response&) {
                             callbacks.fetch_add(1, std::memory_order_relaxed);
                           }),
                serve::SubmitStatus::kAccepted);
    }
  }
  EXPECT_EQ(callbacks.load(), 3);
}

}  // namespace
}  // namespace roarray
