// ShardedService behavior: config validation, sticky-routing
// determinism across instances/restarts, bit-identical results under
// work stealing, early admission shedding (typed kQueueFull before any
// deadline can expire), drain/stop idempotence across shards, and
// exact per-shard vs aggregate stats reconciliation.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "../test_util.hpp"
#include "channel/csi.hpp"
#include "runtime/seed.hpp"
#include "serve/service.hpp"
#include "serve/sharded.hpp"

namespace roarray {
namespace {

using testing::make_rng;

/// Small, fast per-shard configuration (mirrors test_service.cpp).
serve::ServeConfig small_shard_config(int dispatchers) {
  serve::ServeConfig cfg;
  cfg.estimator.aoa_grid = dsp::Grid(0.0, 180.0, 19);
  cfg.estimator.toa_grid = dsp::Grid(0.0, 784e-9, 8);
  cfg.estimator.solver.max_iterations = 40;
  cfg.localize.grid_step_m = 0.5;
  cfg.ap_poses = {{{0.0, 6.0}, 90.0}, {{18.0, 6.0}, 90.0}};
  cfg.dispatchers = dispatchers;
  return cfg;
}

serve::ShardedConfig sharded_config(int shards, int dispatchers) {
  serve::ShardedConfig cfg;
  cfg.shard = small_shard_config(dispatchers);
  cfg.shards = shards;
  return cfg;
}

/// A request with a clean synthesized one-path channel; `seed` varies
/// the noise so different clients produce different (still valid)
/// responses, making bitwise comparisons meaningful.
serve::Request clean_request(std::uint64_t client_id, serve::Tick tick,
                             std::uint64_t seed = 3) {
  channel::Path direct;
  direct.aoa_deg = 100.0;
  direct.toa_s = 60e-9;
  direct.gain = {1.0, 0.0};
  auto rng = make_rng(seed);
  serve::Request req;
  req.client_id = client_id;
  req.submit_tick = tick;
  for (std::uint32_t ap = 0; ap < 2; ++ap) {
    serve::ApSubmission sub;
    sub.ap_id = ap;
    for (int p = 0; p < 2; ++p) {
      linalg::CMat csi = channel::synthesize_csi({direct}, dsp::ArrayConfig{});
      channel::add_noise(csi, 20.0, rng);
      sub.packets.push_back(std::move(csi));
    }
    req.aps.push_back(std::move(sub));
  }
  return req;
}

/// First `n` client ids whose home shard (splitmix64 mod `shards`) is
/// shard 0 — lets a test pile every submission onto one shard.
std::vector<std::uint64_t> clients_on_shard0(int shards, int n) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t id = 0; static_cast<int>(out.size()) < n; ++id) {
    if (runtime::mix_seed(id) % static_cast<std::uint64_t>(shards) == 0) {
      out.push_back(id);
    }
  }
  return out;
}

/// Bitwise response equality (EXPECT_EQ on doubles is exact).
void expect_identical(const serve::Response& a, const serve::Response& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.client_id, b.client_id);
  EXPECT_EQ(a.location.valid, b.location.valid);
  EXPECT_EQ(a.location.position.x, b.location.position.x);
  EXPECT_EQ(a.location.position.y, b.location.position.y);
  EXPECT_EQ(a.location.cost, b.location.cost);
  ASSERT_EQ(a.ap_estimates.size(), b.ap_estimates.size());
  for (std::size_t i = 0; i < a.ap_estimates.size(); ++i) {
    EXPECT_EQ(a.ap_estimates[i].ap_id, b.ap_estimates[i].ap_id);
    EXPECT_EQ(a.ap_estimates[i].valid, b.ap_estimates[i].valid);
    EXPECT_EQ(a.ap_estimates[i].aoa_deg, b.ap_estimates[i].aoa_deg);
    EXPECT_EQ(a.ap_estimates[i].toa_s, b.ap_estimates[i].toa_s);
    EXPECT_EQ(a.ap_estimates[i].power, b.ap_estimates[i].power);
    EXPECT_EQ(a.ap_estimates[i].weight, b.ap_estimates[i].weight);
  }
}

TEST(ShardedConfigValidation, RejectsNonsenseValues) {
  {
    serve::ShardedConfig cfg = sharded_config(0, 0);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    serve::ShardedConfig cfg = sharded_config(2, 0);
    cfg.admission_depth = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    serve::ShardedConfig cfg = sharded_config(2, 0);
    cfg.steal_min_backlog = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    // Delegates to the per-shard validation.
    serve::ShardedConfig cfg = sharded_config(2, 0);
    cfg.shard.max_batch = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  EXPECT_NO_THROW(sharded_config(4, 0).validate());
  // The constructor validates too.
  EXPECT_THROW(serve::ShardedService(sharded_config(-3, 0)),
               std::invalid_argument);
}

TEST(ShardedRouting, StickyHashIsStableAcrossInstancesAndRestarts) {
  // shard_of is a pure hash: two independently constructed services
  // (standing in for two processes, or one process restarted) must
  // route every client identically, and the hash must spread clients
  // over all shards.
  serve::ShardedService a(sharded_config(4, 0));
  serve::ShardedService b(sharded_config(4, 0));
  std::vector<int> hits(4, 0);
  for (std::uint64_t id = 0; id < 256; ++id) {
    const int home = a.shard_of(id);
    ASSERT_GE(home, 0);
    ASSERT_LT(home, 4);
    EXPECT_EQ(home, b.shard_of(id));
    ++hits[static_cast<std::size_t>(home)];
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(hits[static_cast<std::size_t>(s)], 0)
        << "shard " << s << " never chosen over 256 clients";
  }
}

TEST(ShardedRouting, SubmissionLandsOnHomeShard) {
  serve::ShardedConfig cfg = sharded_config(4, 0);
  cfg.work_stealing = false;  // keep the request where routing put it
  serve::ShardedService svc(cfg);
  const std::uint64_t client = 11;
  const int home = svc.shard_of(client);
  ASSERT_EQ(svc.submit(clean_request(client, 0), {}),
            serve::SubmitStatus::kAccepted);
  for (int s = 0; s < svc.num_shards(); ++s) {
    EXPECT_EQ(svc.shard(s).stats().accepted, s == home ? 1u : 0u);
  }
  svc.drain();
  EXPECT_EQ(svc.shard(home).stats().completed_ok, 1u);
}

TEST(ShardedStealing, StolenWorkCompletesBitIdenticallyElsewhere) {
  // Pile five clients onto shard 0 of a two-shard service with an
  // aggressive steal threshold: the idle shard 1 must pick up backlog,
  // and every response must be bit-identical to a single-service run
  // of the same submissions (results are shard- and grouping-
  // independent).
  const auto clients = clients_on_shard0(2, 5);

  std::map<std::uint64_t, serve::Response> single;
  {
    serve::LocalizationService svc(small_shard_config(0));
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const std::uint64_t c = clients[i];
      ASSERT_EQ(svc.submit(clean_request(c, static_cast<serve::Tick>(i),
                                        /*seed=*/c + 10),
                           [&, c](const serve::Response& r) { single[c] = r; }),
                serve::SubmitStatus::kAccepted);
    }
    svc.drain();
  }
  ASSERT_EQ(single.size(), clients.size());

  serve::ShardedConfig cfg = sharded_config(2, 0);
  cfg.steal_min_backlog = 1;
  serve::ShardedService svc(cfg);
  std::map<std::uint64_t, serve::Response> sharded;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::uint64_t c = clients[i];
    ASSERT_EQ(svc.shard_of(c), 0);
    ASSERT_EQ(svc.submit(clean_request(c, static_cast<serve::Tick>(i),
                                      /*seed=*/c + 10),
                         [&, c](const serve::Response& r) { sharded[c] = r; }),
              serve::SubmitStatus::kAccepted);
  }
  svc.drain();

  const serve::ShardedStats stats = svc.stats();
  EXPECT_GT(stats.stolen_requests, 0u) << "backlog never moved to shard 1";
  EXPECT_GT(stats.steal_events, 0u);
  // Transfer accounting: everything out of shard 0 went into shard 1,
  // and the router counted exactly the moved requests.
  EXPECT_EQ(stats.per_shard[0].transferred_out, stats.stolen_requests);
  EXPECT_EQ(stats.per_shard[1].transferred_in, stats.stolen_requests);
  EXPECT_EQ(stats.per_shard[1].accepted, 0u);  // routing never sent one there
  EXPECT_GT(stats.per_shard[1].completed_ok, 0u);  // but it completed some
  // Quiescence invariant, per shard and in aggregate:
  //   completed == accepted - transferred_out + transferred_in.
  for (const serve::ServiceStats& s : stats.per_shard) {
    EXPECT_EQ(s.completed_ok + s.completed_no_observations,
              s.accepted - s.transferred_out + s.transferred_in);
  }
  EXPECT_EQ(stats.aggregate.completed_ok, clients.size());

  ASSERT_EQ(sharded.size(), clients.size());
  for (const std::uint64_t c : clients) {
    expect_identical(sharded.at(c), single.at(c));
  }
}

TEST(ShardedAdmission, ShedsWithTypedBackpressureBeforeAnyDeadline) {
  // admission_depth (2) below queue_capacity (64) with a deadline so
  // generous nothing can expire: overload must surface as immediate
  // kQueueFull at the router, never as a deadline drop later, and the
  // shard itself never sees the shed submissions.
  serve::ShardedConfig cfg = sharded_config(2, 0);
  cfg.work_stealing = false;  // keep the backlog measurable on one shard
  cfg.admission_depth = 2;
  cfg.shard.queue_capacity = 64;
  cfg.shard.deadline_ticks = 1000000;
  serve::ShardedService svc(cfg);
  const std::uint64_t client = clients_on_shard0(2, 1)[0];
  int accepted = 0;
  int shed = 0;
  for (int i = 0; i < 5; ++i) {
    const auto st =
        svc.submit(clean_request(client, static_cast<serve::Tick>(i)), {});
    if (st == serve::SubmitStatus::kAccepted) {
      ++accepted;
    } else {
      EXPECT_EQ(st, serve::SubmitStatus::kQueueFull);
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(shed, 3);
  svc.drain();
  const serve::ShardedStats stats = svc.stats();
  EXPECT_EQ(stats.shed_admission, 3u);
  // Shed at the router: the shard's own queue-full counter stays 0.
  EXPECT_EQ(stats.aggregate.rejected_queue_full, 0u);
  EXPECT_EQ(stats.aggregate.deadline_dropped, 0u);
  EXPECT_EQ(stats.aggregate.accepted, 2u);
  EXPECT_EQ(stats.aggregate.completed_ok, 2u);
}

TEST(ShardedLifecycle, DrainThenStopIsIdempotentAcrossShards) {
  serve::ShardedService svc(sharded_config(3, 0));
  int callbacks = 0;
  for (std::uint64_t c = 0; c < 6; ++c) {
    ASSERT_EQ(svc.submit(clean_request(c, c),
                         [&](const serve::Response&) { ++callbacks; }),
              serve::SubmitStatus::kAccepted);
  }
  svc.drain();
  EXPECT_EQ(callbacks, 6);
  svc.stop();
  svc.stop();   // idempotent
  svc.drain();  // post-stop drain must return immediately, not wedge
  EXPECT_EQ(svc.submit(clean_request(99, 0), {}),
            serve::SubmitStatus::kStopped);
  EXPECT_EQ(svc.stats().aggregate.rejected_stopped, 1u);
  EXPECT_EQ(callbacks, 6);  // nothing double-completed
}

TEST(ShardedStats, AggregateReconcilesExactlyWithPerShard) {
  serve::ShardedService svc(sharded_config(4, 0));
  int callbacks = 0;
  std::uint64_t accepted = 0;
  for (std::uint64_t c = 0; c < 12; ++c) {
    if (svc.submit(clean_request(c, c, /*seed=*/c + 1),
                   [&](const serve::Response&) { ++callbacks; }) ==
        serve::SubmitStatus::kAccepted) {
      ++accepted;
    }
  }
  svc.drain();
  const serve::ShardedStats stats = svc.stats();
  ASSERT_EQ(stats.per_shard.size(), 4u);

  // Recompute the aggregate independently with the exposed accumulator
  // and pin every counter against the snapshot's own aggregate.
  serve::ServiceStats sum;
  for (const serve::ServiceStats& s : stats.per_shard) {
    serve::accumulate_stats(sum, s);
  }
  EXPECT_EQ(stats.aggregate.accepted, sum.accepted);
  EXPECT_EQ(stats.aggregate.rejected_queue_full, sum.rejected_queue_full);
  EXPECT_EQ(stats.aggregate.rejected_stopped, sum.rejected_stopped);
  EXPECT_EQ(stats.aggregate.rejected_invalid, sum.rejected_invalid);
  EXPECT_EQ(stats.aggregate.deadline_dropped, sum.deadline_dropped);
  EXPECT_EQ(stats.aggregate.completed_ok, sum.completed_ok);
  EXPECT_EQ(stats.aggregate.completed_no_observations,
            sum.completed_no_observations);
  EXPECT_EQ(stats.aggregate.batches, sum.batches);
  EXPECT_EQ(stats.aggregate.transferred_out, sum.transferred_out);
  EXPECT_EQ(stats.aggregate.transferred_in, sum.transferred_in);
  EXPECT_EQ(stats.aggregate.callback_exceptions, sum.callback_exceptions);
  EXPECT_EQ(stats.aggregate.latency_recorded, sum.latency_recorded);
  EXPECT_EQ(stats.aggregate.latency_ticks.size(), sum.latency_ticks.size());
  EXPECT_EQ(stats.aggregate.batch_size_hist, sum.batch_size_hist);

  // And against externally observable truth.
  EXPECT_EQ(stats.aggregate.accepted, accepted);
  EXPECT_EQ(stats.aggregate.completed_ok +
                stats.aggregate.completed_no_observations,
            static_cast<std::uint64_t>(callbacks));
  EXPECT_EQ(stats.aggregate.latency_recorded,
            static_cast<std::uint64_t>(callbacks));
  // Work stealing conserves requests in aggregate.
  EXPECT_EQ(stats.aggregate.transferred_out, stats.aggregate.transferred_in);
  EXPECT_EQ(stats.aggregate.transferred_out, stats.stolen_requests);
}

TEST(ShardedStats, LatencyRingStaysBoundedPerShard) {
  serve::ShardedConfig cfg = sharded_config(2, 0);
  cfg.shard.latency_sample_cap = 3;
  serve::ShardedService svc(cfg);
  for (std::uint64_t c = 0; c < 10; ++c) {
    ASSERT_EQ(svc.submit(clean_request(c, c), {}),
              serve::SubmitStatus::kAccepted);
    svc.drain();  // complete one at a time so every sample is recorded
  }
  const serve::ShardedStats stats = svc.stats();
  for (const serve::ServiceStats& s : stats.per_shard) {
    EXPECT_LE(s.latency_ticks.size(), 3u);
  }
  // The aggregate still counts every sample ever taken.
  EXPECT_EQ(stats.aggregate.latency_recorded, 10u);
  EXPECT_LE(stats.aggregate.latency_ticks.size(), 6u);
}

}  // namespace
}  // namespace roarray
