#include "core/roarray.hpp"

#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "../test_util.hpp"

namespace roarray::core {
namespace {

namespace rt = roarray::testing;
using channel::Path;
using linalg::cxd;

const dsp::ArrayConfig kArray;

Path make_path(double aoa, double toa, cxd gain) {
  Path p;
  p.aoa_deg = aoa;
  p.toa_s = toa;
  p.gain = gain;
  return p;
}

std::vector<linalg::CMat> noisy_packets(const std::vector<Path>& paths,
                                        double snr_db, linalg::index_t n,
                                        std::uint64_t seed,
                                        double max_delay = 100e-9) {
  auto rng = rt::make_rng(seed);
  channel::BurstConfig bc;
  bc.num_packets = n;
  bc.snr_db = snr_db;
  bc.max_detection_delay_s = max_delay;
  return channel::generate_burst(paths, kArray, bc, rng).csi;
}

TEST(StackCsi, OrderingMatchesEq15) {
  linalg::CMat csi(3, 30);
  csi(2, 0) = cxd{1.0, 0.0};   // antenna 3, subcarrier 1
  csi(0, 29) = cxd{2.0, 0.0};  // antenna 1, subcarrier 30
  const linalg::CVec y = stack_csi(csi);
  ASSERT_EQ(y.size(), 90);
  EXPECT_EQ(y[2], (cxd{1.0, 0.0}));
  EXPECT_EQ(y[29 * 3 + 0], (cxd{2.0, 0.0}));
}

TEST(CoefficientsToSpectrum, ReshapeAndNormalization) {
  const dsp::Grid aoa(0.0, 180.0, 4);
  const dsp::Grid toa(0.0, 700e-9, 3);
  linalg::CVec c(12);
  c[2 * 4 + 1] = cxd{0.0, 2.0};  // (aoa index 1, toa index 2), magnitude 2
  c[0] = cxd{1.0, 0.0};
  const auto spec = coefficients_to_spectrum(c, aoa, toa);
  EXPECT_DOUBLE_EQ(spec.values(1, 2), 1.0);  // normalized peak
  EXPECT_DOUBLE_EQ(spec.values(0, 0), 0.5);
  EXPECT_THROW(coefficients_to_spectrum(linalg::CVec(11), aoa, toa),
               std::invalid_argument);
}

TEST(RoArray, SinglePacketSinglePathHighSnr) {
  const auto packets =
      noisy_packets({make_path(110.0, 50e-9, cxd{1.0, 0.0})}, 25.0, 1, 301);
  RoArrayConfig cfg;
  const RoArrayResult r = roarray_estimate(packets, cfg, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.direct.aoa_deg, 110.0, 5.0);
}

TEST(RoArray, DirectPathIsSmallestToaAmongPaths) {
  const std::vector<Path> paths = {
      make_path(120.0, 60e-9, cxd{1.0, 0.0}),
      make_path(55.0, 240e-9, cxd{0.5, 0.3}),
  };
  const auto packets = noisy_packets(paths, 25.0, 1, 302);
  RoArrayConfig cfg;
  const RoArrayResult r = roarray_estimate(packets, cfg, kArray);
  ASSERT_TRUE(r.valid);
  ASSERT_GE(r.paths.size(), 2u);
  EXPECT_NEAR(r.direct.aoa_deg, 120.0, 5.0);
  for (const PathEstimate& p : r.paths) {
    EXPECT_GE(p.toa_s, r.direct.toa_s);
  }
}

TEST(RoArray, ResolvesMorePathsThanAntennas) {
  // 4 paths > M = 3 antennas: only possible thanks to the subcarrier
  // aperture expansion (paper Section III-B).
  const std::vector<Path> paths = {
      make_path(40.0, 50e-9, cxd{1.0, 0.0}),
      make_path(80.0, 180e-9, cxd{0.8, 0.2}),
      make_path(120.0, 320e-9, cxd{0.7, -0.3}),
      make_path(160.0, 470e-9, cxd{0.6, 0.1}),
  };
  const auto packets = noisy_packets(paths, 30.0, 1, 303, 0.0);
  RoArrayConfig cfg;
  cfg.sanitize = false;  // keep absolute ToAs
  cfg.solver.max_iterations = 800;
  const RoArrayResult r = roarray_estimate(packets, cfg, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_GE(r.paths.size(), 4u);
  // Each true path matched by some estimate within grid resolution.
  for (const Path& truth : paths) {
    double best = 1e9;
    for (const PathEstimate& est : r.paths) {
      best = std::min(best, std::abs(est.aoa_deg - truth.aoa_deg));
    }
    EXPECT_LT(best, 6.0) << "path at " << truth.aoa_deg;
  }
}

TEST(RoArray, PeakSeparationConfigControlsResolvability) {
  // Two strong paths 8 deg (4 bins of the default 2-deg AoA grid) apart
  // with nearby ToAs. With the minimum separation at 1 bin both are
  // resolved; widening the exclusion window to 10 bins (20 deg) merges
  // them into a single reported path in that angular window.
  const std::vector<Path> paths = {
      make_path(90.0, 60e-9, cxd{1.0, 0.0}),
      make_path(98.0, 120e-9, cxd{0.9, 0.2}),
  };
  const auto packets = noisy_packets(paths, 30.0, 1, 304, 0.0);
  const auto count_in_window = [](const RoArrayResult& r) {
    std::size_t n = 0;
    for (const PathEstimate& p : r.paths) {
      if (p.aoa_deg >= 84.0 && p.aoa_deg <= 104.0) ++n;
    }
    return n;
  };

  RoArrayConfig tight;
  tight.sanitize = false;
  tight.solver.max_iterations = 800;
  tight.min_peak_sep_aoa = 1;
  tight.min_peak_sep_toa = 1;
  const RoArrayResult resolved = roarray_estimate(packets, tight, kArray);
  ASSERT_TRUE(resolved.valid);
  EXPECT_GE(count_in_window(resolved), 2u);

  RoArrayConfig coarse = tight;
  coarse.min_peak_sep_aoa = 10;
  coarse.min_peak_sep_toa = 5;
  const RoArrayResult merged = roarray_estimate(packets, coarse, kArray);
  ASSERT_TRUE(merged.valid);
  EXPECT_EQ(count_in_window(merged), 1u);
}

TEST(RoArray, InsensitiveToModelOrder) {
  // No K anywhere in the configuration: the same config handles 1 and 4
  // paths. (Contrast with MUSIC baselines that need K.)
  RoArrayConfig cfg;
  const auto one = noisy_packets({make_path(90.0, 60e-9, cxd{1.0, 0.0})}, 22.0,
                                 1, 304);
  const RoArrayResult r1 = roarray_estimate(one, cfg, kArray);
  ASSERT_TRUE(r1.valid);
  EXPECT_NEAR(r1.direct.aoa_deg, 90.0, 5.0);

  const std::vector<Path> four = {
      make_path(60.0, 55e-9, cxd{1.0, 0.0}),
      make_path(100.0, 200e-9, cxd{0.6, 0.1}),
      make_path(140.0, 350e-9, cxd{0.5, -0.2}),
      make_path(30.0, 500e-9, cxd{0.4, 0.3}),
  };
  const RoArrayResult r4 =
      roarray_estimate(noisy_packets(four, 22.0, 1, 305), cfg, kArray);
  ASSERT_TRUE(r4.valid);
  EXPECT_NEAR(r4.direct.aoa_deg, 60.0, 6.0);
}

TEST(RoArray, CoarseToFineAgreesWithFullGridSolve) {
  // The pruned factored-dictionary path must land on the same direct
  // path as the full-grid solve, to within grid resolution. Exercised
  // both single-packet (solve_l1) and multi-packet (group solve).
  const std::vector<Path> paths = {
      make_path(105.0, 70e-9, cxd{1.0, 0.0}),
      make_path(48.0, 260e-9, cxd{0.5, 0.2}),
  };
  for (linalg::index_t packets : {linalg::index_t{1}, linalg::index_t{4}}) {
    const auto burst = noisy_packets(paths, 22.0, packets, 310 + packets);
    RoArrayConfig full;
    const RoArrayResult ref = roarray_estimate(burst, full, kArray);
    ASSERT_TRUE(ref.valid);

    RoArrayConfig cf = full;
    cf.coarse_fine.enabled = true;
    const RoArrayResult fast = roarray_estimate(burst, cf, kArray);
    ASSERT_TRUE(fast.valid) << "packets " << packets;
    EXPECT_NEAR(fast.direct.aoa_deg, ref.direct.aoa_deg,
                2.0 * full.aoa_grid.step())
        << "packets " << packets;
    EXPECT_NEAR(fast.direct.toa_s, ref.direct.toa_s,
                2.0 * full.toa_grid.step())
        << "packets " << packets;
  }
}

TEST(RoArray, CoarseToFineHonorsIterationCallbackInFullCoordinates) {
  // Callback vectors from the restricted solve are scattered back to
  // the full grid so observers see consistent coefficient shapes.
  const auto packets =
      noisy_packets({make_path(130.0, 70e-9, cxd{1.0, 0.0})}, 20.0, 1, 311);
  RoArrayConfig cfg;
  cfg.coarse_fine.enabled = true;
  cfg.solver.max_iterations = 10;
  cfg.solver.tolerance = 0.0;
  const linalg::index_t full_cols =
      cfg.aoa_grid.size() * cfg.toa_grid.size();
  int calls = 0;
  bool shapes_ok = true;
  const RoArrayResult r = roarray_estimate(
      packets, cfg, kArray, [&](int, const linalg::CVec& x) {
        ++calls;
        shapes_ok = shapes_ok && x.size() == full_cols;
      });
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(calls, 10);
  EXPECT_TRUE(shapes_ok);
}

TEST(RoArray, SanitizePlacesDirectNearRebias) {
  const auto packets =
      noisy_packets({make_path(75.0, 40e-9, cxd{1.0, 0.0})}, 25.0, 1, 306);
  RoArrayConfig cfg;  // sanitize on, rebias 100 ns
  const RoArrayResult r = roarray_estimate(packets, cfg, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.direct.toa_s, 100e-9, 60e-9);
}

TEST(RoArray, WithoutSanitizeToaIncludesDetectionDelay) {
  // One packet with a 200 ns detection delay: estimated ToA shifts.
  channel::CsiImpairments imp;
  imp.detection_delay_s = 200e-9;
  const linalg::CMat csi = channel::synthesize_csi(
      {make_path(100.0, 60e-9, cxd{1.0, 0.0})}, kArray, imp);
  RoArrayConfig cfg;
  cfg.sanitize = false;
  const std::vector<linalg::CMat> packets = {csi};
  const RoArrayResult r = roarray_estimate(packets, cfg, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.direct.toa_s, 260e-9, 40e-9);
}

TEST(RoArray, IterationCallbackTracksProgress) {
  const auto packets =
      noisy_packets({make_path(130.0, 70e-9, cxd{1.0, 0.0})}, 20.0, 1, 307);
  RoArrayConfig cfg;
  cfg.solver.max_iterations = 25;
  cfg.solver.tolerance = 0.0;
  int calls = 0;
  const RoArrayResult r = roarray_estimate(
      packets, cfg, kArray, [&](int, const linalg::CVec&) { ++calls; });
  EXPECT_EQ(calls, 25);
  EXPECT_EQ(r.solver_iterations, 25);
}

TEST(RoArray, EmptyAndMalformedInputsThrow) {
  RoArrayConfig cfg;
  EXPECT_THROW(roarray_estimate({}, cfg, kArray), std::invalid_argument);
  const std::vector<linalg::CMat> bad = {linalg::CMat(2, 30)};
  EXPECT_THROW(roarray_estimate(bad, cfg, kArray), std::invalid_argument);
}

TEST(RoArrayAoaSpectrum, PeaksAtTrueAngle) {
  auto rng = rt::make_rng(308);
  linalg::CMat csi = channel::synthesize_csi(
      {make_path(65.0, 90e-9, cxd{1.0, 0.0})}, kArray);
  channel::add_noise(csi, 20.0, rng);
  const auto spec =
      roarray_aoa_spectrum(csi, dsp::Grid(0.0, 180.0, 91), kArray);
  const auto peaks = spec.find_peaks(1);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks[0].aoa_deg, 65.0, 4.0);
}

TEST(RoArrayAoaSpectrum, SparseSpectrumIsSharp) {
  // Most grid weights must be (near) zero — the defining property of the
  // sparse formulation vs the smooth MUSIC pseudo-spectrum.
  auto rng = rt::make_rng(309);
  linalg::CMat csi = channel::synthesize_csi(
      {make_path(125.0, 90e-9, cxd{1.0, 0.0})}, kArray);
  channel::add_noise(csi, 15.0, rng);
  const auto spec =
      roarray_aoa_spectrum(csi, dsp::Grid(0.0, 180.0, 91), kArray);
  linalg::index_t near_zero = 0;
  for (linalg::index_t i = 0; i < spec.values.size(); ++i) {
    if (spec.values[i] < 0.02) ++near_zero;
  }
  EXPECT_GT(near_zero, 70);  // > ~77% of the 91 grid points empty
}

class RoArraySnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(RoArraySnrSweep, DirectAoaAcrossSnr) {
  const double snr = GetParam();
  const std::vector<Path> paths = {
      make_path(115.0, 55e-9, cxd{1.0, 0.0}),
      make_path(60.0, 230e-9, cxd{0.45, 0.2}),
  };
  const auto packets = noisy_packets(
      paths, snr, 5, static_cast<std::uint64_t>(400 + snr * 3));
  RoArrayConfig cfg;
  const RoArrayResult r = roarray_estimate(packets, cfg, kArray);
  ASSERT_TRUE(r.valid);
  // Tolerance widens as SNR falls but stays bounded — the robustness
  // claim under test.
  const double tol = snr >= 15.0 ? 6.0 : (snr >= 5.0 ? 8.0 : 14.0);
  EXPECT_NEAR(r.direct.aoa_deg, 115.0, tol) << "snr " << snr;
}

INSTANTIATE_TEST_SUITE_P(Snr, RoArraySnrSweep,
                         ::testing::Values(25.0, 15.0, 8.0, 2.0, 0.0));

}  // namespace
}  // namespace roarray::core
