// Multi-packet fusion tests (paper Section III-D / Fig. 4): sanitation +
// l1-SVD fusion must sharpen the spectrum and beat single packets at
// low SNR.
#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "core/roarray.hpp"
#include "../test_util.hpp"

namespace roarray::core {
namespace {

namespace rt = roarray::testing;
using channel::Path;
using linalg::cxd;
using linalg::index_t;

const dsp::ArrayConfig kArray;

std::vector<Path> default_paths() {
  Path direct;
  direct.aoa_deg = 105.0;
  direct.toa_s = 55e-9;
  direct.gain = cxd{1.0, 0.0};
  Path refl;
  refl.aoa_deg = 45.0;
  refl.toa_s = 220e-9;
  refl.gain = cxd{0.5, 0.25};
  return {direct, refl};
}

channel::PacketBurst burst_at(double snr_db, index_t packets,
                              std::uint64_t seed) {
  auto rng = rt::make_rng(seed);
  channel::BurstConfig bc;
  bc.num_packets = packets;
  bc.snr_db = snr_db;
  bc.max_detection_delay_s = 150e-9;
  return channel::generate_burst(default_paths(), kArray, bc, rng);
}

double aoa_error_of(const RoArrayResult& r) {
  return std::abs(r.direct.aoa_deg - 105.0);
}

TEST(Fusion, MultiPacketRunsGroupSolver) {
  const auto burst = burst_at(15.0, 10, 311);
  RoArrayConfig cfg;
  const RoArrayResult r = roarray_estimate(burst.csi, cfg, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.solver_iterations, 0);
  EXPECT_LT(aoa_error_of(r), 8.0);
}

TEST(Fusion, FusionBeatsSinglePacketAtLowSnr) {
  // Average single-packet error vs fused error over several trials.
  double single_err = 0.0;
  double fused_err = 0.0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    const auto burst = burst_at(0.0, 15, 320 + static_cast<std::uint64_t>(t));
    RoArrayConfig cfg;
    const std::vector<linalg::CMat> first = {burst.csi[0]};
    single_err += aoa_error_of(roarray_estimate(first, cfg, kArray));
    fused_err += aoa_error_of(roarray_estimate(burst.csi, cfg, kArray));
  }
  EXPECT_LT(fused_err, single_err);
}

TEST(Fusion, ExplicitRankRespected) {
  const auto burst = burst_at(20.0, 12, 331);
  RoArrayConfig cfg;
  cfg.fusion_rank = 2;
  const RoArrayResult r = roarray_estimate(burst.csi, cfg, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(aoa_error_of(r), 6.0);
}

TEST(Fusion, WithoutSanitizationFusionDegrades) {
  // Per-packet detection delays decohere the stacked snapshots; skipping
  // sanitization must hurt the ToA estimate badly (design-choice ablation).
  const auto burst = burst_at(20.0, 15, 332);
  RoArrayConfig clean_cfg;
  RoArrayConfig dirty_cfg;
  dirty_cfg.sanitize = false;
  const RoArrayResult clean = roarray_estimate(burst.csi, clean_cfg, kArray);
  const RoArrayResult dirty = roarray_estimate(burst.csi, dirty_cfg, kArray);
  ASSERT_TRUE(clean.valid);
  // The sanitized run finds the direct path near the rebias point with a
  // sharp spectrum; the unsanitized one smears across ToA. Compare
  // spectrum concentration (fraction of energy in the top cell).
  auto concentration = [](const RoArrayResult& r) {
    double total = 0.0;
    double peak = 0.0;
    for (index_t j = 0; j < r.spectrum.values.cols(); ++j) {
      for (index_t i = 0; i < r.spectrum.values.rows(); ++i) {
        total += r.spectrum.values(i, j);
        peak = std::max(peak, r.spectrum.values(i, j));
      }
    }
    return total > 0.0 ? peak / total : 0.0;
  };
  EXPECT_GT(concentration(clean), concentration(dirty));
}

TEST(Fusion, PacketCountSweepImprovesAccuracy) {
  // More packets, (weakly) monotone better accuracy at low SNR, on
  // average over seeds.
  double err1 = 0.0, err15 = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    const auto b1 = burst_at(-2.0, 1, 340 + s);
    const auto b15 = burst_at(-2.0, 15, 360 + s);
    RoArrayConfig cfg;
    err1 += aoa_error_of(roarray_estimate(b1.csi, cfg, kArray));
    err15 += aoa_error_of(roarray_estimate(b15.csi, cfg, kArray));
  }
  EXPECT_LE(err15, err1 + 1.0);
}

TEST(Fusion, Figure4Shape_DelayScatterGoneAfterFusion) {
  // Fig. 4: (a)/(b) two raw packets of the same static channel show the
  // direct peak at *different* ToAs (packet detection delay); (c) after
  // delay estimation + fusion the estimate is stable and accurate.
  const auto burst = burst_at(8.0, 30, 341);
  RoArrayConfig raw_cfg;
  raw_cfg.sanitize = false;

  // Raw per-packet direct-ToA scatter across the first packets.
  std::vector<double> raw_toas;
  for (index_t p = 0; p < 6; ++p) {
    const std::vector<linalg::CMat> one = {burst.csi[p]};
    const RoArrayResult r = roarray_estimate(one, raw_cfg, kArray);
    if (r.valid) raw_toas.push_back(r.direct.toa_s);
  }
  ASSERT_GE(raw_toas.size(), 4u);
  double mn = raw_toas[0], mx = raw_toas[0];
  for (double t : raw_toas) {
    mn = std::min(mn, t);
    mx = std::max(mx, t);
  }
  // Detection delays are uniform in [0, 150 ns]: raw ToAs must scatter.
  EXPECT_GT(mx - mn, 30e-9);

  // Fused halves agree with each other and with the rebias target.
  RoArrayConfig cfg;
  const std::vector<linalg::CMat> first_half(burst.csi.begin(),
                                             burst.csi.begin() + 15);
  const std::vector<linalg::CMat> second_half(burst.csi.begin() + 15,
                                              burst.csi.end());
  const RoArrayResult a = roarray_estimate(first_half, cfg, kArray);
  const RoArrayResult b = roarray_estimate(second_half, cfg, kArray);
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_LE(std::abs(a.direct.toa_s - b.direct.toa_s), 32e-9);  // ~2 cells
  EXPECT_LT(aoa_error_of(a), 6.0);
  EXPECT_LT(aoa_error_of(b), 6.0);
}

}  // namespace
}  // namespace roarray::core
