// Generality tests (paper Section III-C): ROArray's formulation does not
// depend on a specific array geometry or subcarrier plan, so the same
// code must work for 2- and 4-antenna arrays, 802.11ac-style subcarrier
// maps, and non-default grids.
#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "core/roarray.hpp"
#include "../test_util.hpp"

namespace roarray::core {
namespace {

namespace rt = roarray::testing;
using channel::Path;
using linalg::cxd;

Path make_path(double aoa, double toa, cxd gain) {
  Path p;
  p.aoa_deg = aoa;
  p.toa_s = toa;
  p.gain = gain;
  return p;
}

/// Runs a two-path single-packet estimate on the given front end and
/// checks the direct path is found.
void expect_recovery(const dsp::ArrayConfig& arr, double tol_deg,
                     std::uint64_t seed) {
  const std::vector<Path> paths = {
      make_path(115.0, 60e-9, cxd{1.0, 0.0}),
      make_path(55.0, 60e-9 + 0.3 / arr.subcarrier_spacing_hz, cxd{0.4, 0.2}),
  };
  auto rng = rt::make_rng(seed);
  linalg::CMat csi = channel::synthesize_csi(paths, arr);
  channel::add_noise(csi, 20.0, rng);
  RoArrayConfig cfg;
  cfg.toa_grid = dsp::Grid(0.0, 0.98 / arr.subcarrier_spacing_hz, 50);
  cfg.solver.max_iterations = 400;
  const std::vector<linalg::CMat> packets = {csi};
  const RoArrayResult r = roarray_estimate(packets, cfg, arr);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.direct.aoa_deg, 115.0, tol_deg);
}

TEST(Generality, TwoAntennaArray) {
  dsp::ArrayConfig arr;
  arr.num_antennas = 2;
  expect_recovery(arr, 8.0, 911);
}

TEST(Generality, FourAntennaArray) {
  dsp::ArrayConfig arr;
  arr.num_antennas = 4;
  expect_recovery(arr, 5.0, 912);
}

TEST(Generality, Ac80MhzStyleSubcarrierMap) {
  // 802.11ac 80 MHz-flavored: more, denser-reported subcarriers.
  dsp::ArrayConfig arr;
  arr.num_subcarriers = 58;
  arr.subcarrier_spacing_hz = 1.25e6;
  expect_recovery(arr, 5.0, 913);
}

TEST(Generality, CoarseSubcarrierPlan) {
  // A sparser CSI report (every 8th subcarrier on 40 MHz): f_delta 2.5 MHz,
  // unambiguous ToA range 400 ns.
  dsp::ArrayConfig arr;
  arr.num_subcarriers = 15;
  arr.subcarrier_spacing_hz = 2.5e6;
  expect_recovery(arr, 8.0, 914);
}

TEST(Generality, SubHalfWavelengthSpacing) {
  // d = 0.4 lambda (denser than critical): allowed, slightly less
  // aperture, still works.
  dsp::ArrayConfig arr;
  arr.antenna_spacing_m = 0.4 * arr.wavelength_m;
  expect_recovery(arr, 8.0, 915);
}

TEST(Generality, FinerGridsImproveResolution) {
  const dsp::ArrayConfig arr;
  const std::vector<Path> paths = {make_path(103.0, 70e-9, cxd{1.0, 0.0})};
  auto rng = rt::make_rng(916);
  linalg::CMat csi = channel::synthesize_csi(paths, arr);
  channel::add_noise(csi, 25.0, rng);
  const std::vector<linalg::CMat> packets = {csi};

  RoArrayConfig coarse;
  coarse.aoa_grid = dsp::Grid(0.0, 180.0, 31);  // 6-deg cells
  coarse.solver.max_iterations = 400;
  RoArrayConfig fine;
  fine.aoa_grid = dsp::Grid(0.0, 180.0, 181);   // 1-deg cells
  fine.solver.max_iterations = 400;

  const RoArrayResult rc = roarray_estimate(packets, coarse, arr);
  const RoArrayResult rf = roarray_estimate(packets, fine, arr);
  ASSERT_TRUE(rc.valid);
  ASSERT_TRUE(rf.valid);
  EXPECT_LE(std::abs(rf.direct.aoa_deg - 103.0),
            std::abs(rc.direct.aoa_deg - 103.0) + 0.5);
  EXPECT_NEAR(rf.direct.aoa_deg, 103.0, 2.0);
}

TEST(Generality, OffGridPathStillRecoveredToGridResolution) {
  // A path between grid points (basis mismatch) lands on the nearest
  // cell — the known behavior of grid-based sparse recovery.
  const dsp::ArrayConfig arr;
  const std::vector<Path> paths = {make_path(101.3, 63e-9, cxd{1.0, 0.0})};
  auto rng = rt::make_rng(917);
  linalg::CMat csi = channel::synthesize_csi(paths, arr);
  channel::add_noise(csi, 25.0, rng);
  RoArrayConfig cfg;  // 2-deg AoA grid
  const std::vector<linalg::CMat> packets = {csi};
  const RoArrayResult r = roarray_estimate(packets, cfg, arr);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.direct.aoa_deg, 101.3, 2.5);
}

class GeneralityAntennaSweep : public ::testing::TestWithParam<linalg::index_t> {};

TEST_P(GeneralityAntennaSweep, PipelineAcceptsAnyAntennaCount) {
  dsp::ArrayConfig arr;
  arr.num_antennas = GetParam();
  expect_recovery(arr, 10.0, 920 + static_cast<std::uint64_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Antennas, GeneralityAntennaSweep,
                         ::testing::Values(2, 3, 4, 6, 8));

}  // namespace
}  // namespace roarray::core
