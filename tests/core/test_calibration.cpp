#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "core/roarray.hpp"
#include "dsp/angles.hpp"
#include "../test_util.hpp"

namespace roarray::core {
namespace {

namespace rt = roarray::testing;
using channel::Path;
using linalg::CMat;
using linalg::cxd;

const dsp::ArrayConfig kArray;

std::vector<CMat> offset_packets(const std::vector<double>& offsets,
                                 double snr_db, linalg::index_t n,
                                 std::uint64_t seed) {
  Path direct;
  direct.aoa_deg = 118.0;
  direct.toa_s = 60e-9;
  direct.gain = cxd{1.0, 0.0};
  Path refl;
  refl.aoa_deg = 55.0;
  refl.toa_s = 200e-9;
  refl.gain = cxd{0.4, 0.2};
  auto rng = rt::make_rng(seed);
  channel::BurstConfig bc;
  bc.num_packets = n;
  bc.snr_db = snr_db;
  bc.antenna_phase_offsets_rad = offsets;
  return channel::generate_burst({direct, refl}, kArray, bc, rng).csi;
}

double wrapped_offset_error(double est, double truth) {
  double d = std::fmod(est - truth, 2.0 * dsp::kPi);
  if (d > dsp::kPi) d -= 2.0 * dsp::kPi;
  if (d < -dsp::kPi) d += 2.0 * dsp::kPi;
  return std::abs(d);
}

TEST(Calibration, ApplyPhaseCorrectionInvertsImpairment) {
  const std::vector<double> offsets = {0.0, 1.3, -0.9};
  const auto dirty = offset_packets(offsets, 40.0, 1, 351);
  const auto clean = offset_packets({0.0, 0.0, 0.0}, 40.0, 1, 351);
  const CMat corrected = apply_phase_correction(dirty[0], offsets);
  // Same seed means same noise; correction must undo the rotation
  // exactly (noise is rotated too, but |difference| stays tiny at 40 dB).
  rt::expect_mat_near(corrected, clean[0], 0.05, "correction inverts offsets");
}

TEST(Calibration, ApplyPhaseCorrectionWrongCountThrows) {
  const CMat csi(3, 30);
  const std::vector<double> two = {0.0, 1.0};
  EXPECT_THROW(apply_phase_correction(csi, two), std::invalid_argument);
}

TEST(Calibration, RecoversInjectedOffsetsWithRoArraySpectrum) {
  const std::vector<double> truth = {0.0, 2.1, 0.7};
  const auto packets = offset_packets(truth, 25.0, 3, 352);
  CalibrationConfig cfg;
  cfg.method = CalibrationMethod::kRoArray;
  const CalibrationResult r = estimate_phase_offsets(packets, 118.0, kArray, cfg);
  ASSERT_EQ(r.offsets_rad.size(), 3u);
  EXPECT_DOUBLE_EQ(r.offsets_rad[0], 0.0);
  EXPECT_LT(wrapped_offset_error(r.offsets_rad[1], truth[1]), 0.35);
  EXPECT_LT(wrapped_offset_error(r.offsets_rad[2], truth[2]), 0.35);
}

TEST(Calibration, MusicMethodAlsoRecoversOffsets) {
  const std::vector<double> truth = {0.0, 0.9, 2.6};
  const auto packets = offset_packets(truth, 25.0, 3, 353);
  CalibrationConfig cfg;
  cfg.method = CalibrationMethod::kMusic;
  const CalibrationResult r = estimate_phase_offsets(packets, 118.0, kArray, cfg);
  EXPECT_LT(wrapped_offset_error(r.offsets_rad[1], truth[1]), 0.6);
  EXPECT_LT(wrapped_offset_error(r.offsets_rad[2], truth[2]), 0.6);
}

TEST(Calibration, CorrectionRestoresAoaAccuracy) {
  const std::vector<double> truth = {0.0, 2.4, 1.1};
  const auto packets = offset_packets(truth, 25.0, 3, 354);
  // Uncalibrated estimate is way off; calibrated estimate is accurate.
  RoArrayConfig rcfg;
  const RoArrayResult dirty = roarray_estimate(packets, rcfg, kArray);
  const CalibrationResult cal = estimate_phase_offsets(packets, 118.0, kArray);
  std::vector<CMat> corrected;
  for (const CMat& c : packets) {
    corrected.push_back(apply_phase_correction(c, cal.offsets_rad));
  }
  const RoArrayResult clean = roarray_estimate(corrected, rcfg, kArray);
  ASSERT_TRUE(clean.valid);
  const double clean_err = std::abs(clean.direct.aoa_deg - 118.0);
  EXPECT_LT(clean_err, 10.0);
  if (dirty.valid) {
    EXPECT_LE(clean_err, std::abs(dirty.direct.aoa_deg - 118.0) + 1.0);
  }
}

TEST(Calibration, ZeroOffsetsEstimatedAsNearZero) {
  const auto packets = offset_packets({0.0, 0.0, 0.0}, 30.0, 2, 355);
  const CalibrationResult r = estimate_phase_offsets(packets, 118.0, kArray);
  EXPECT_LT(wrapped_offset_error(r.offsets_rad[1], 0.0), 0.3);
  EXPECT_LT(wrapped_offset_error(r.offsets_rad[2], 0.0), 0.3);
}

TEST(Calibration, InvalidInputsThrow) {
  EXPECT_THROW(estimate_phase_offsets({}, 118.0, kArray), std::invalid_argument);
  dsp::ArrayConfig big;
  big.num_antennas = 5;
  big.antenna_spacing_m = big.wavelength_m / 2.0;
  const std::vector<CMat> packets = {CMat(5, 30)};
  EXPECT_THROW(estimate_phase_offsets(packets, 90.0, big), std::invalid_argument);
  CalibrationConfig cfg;
  cfg.coarse_steps = 1;
  const auto ok = offset_packets({0.0, 0.0, 0.0}, 30.0, 1, 356);
  EXPECT_THROW(estimate_phase_offsets(ok, 118.0, kArray, cfg), std::invalid_argument);
}

TEST(Calibration, SharpnessImprovesWithCorrectOffsets) {
  const std::vector<double> truth = {0.0, 1.8, 2.9};
  const auto packets = offset_packets(truth, 25.0, 2, 357);
  const CalibrationResult r = estimate_phase_offsets(packets, 118.0, kArray);
  // The optimizer's sharpness at the optimum must beat the sharpness of
  // the uncorrected hypothesis (all zeros).
  CalibrationConfig cfg;
  cfg.coarse_steps = 2;  // trivial search just to evaluate objective
  EXPECT_GT(r.sharpness, 1.0);
}

}  // namespace
}  // namespace roarray::core
