#include "core/tracker.hpp"

#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "../test_util.hpp"

namespace roarray::core {
namespace {

namespace rt = roarray::testing;
using channel::Path;
using linalg::cxd;

const dsp::ArrayConfig kArray;

channel::PacketBurst make_burst(linalg::index_t n, std::uint64_t seed,
                                double aoa = 105.0) {
  Path direct;
  direct.aoa_deg = aoa;
  direct.toa_s = 60e-9;
  direct.gain = cxd{1.0, 0.0};
  auto rng = rt::make_rng(seed);
  channel::BurstConfig bc;
  bc.num_packets = n;
  bc.snr_db = 18.0;
  return channel::generate_burst({direct}, kArray, bc, rng);
}

TrackerConfig tracker_config(linalg::index_t window = 15) {
  TrackerConfig cfg;
  cfg.array = kArray;
  cfg.window_packets = window;
  cfg.estimator.solver.max_iterations = 200;
  return cfg;
}

TEST(Tracker, EmptyTrackerHasNoEstimate) {
  RoArrayTracker t(tracker_config());
  EXPECT_EQ(t.size(), 0);
  EXPECT_FALSE(t.estimate().has_value());
}

TEST(Tracker, InvalidConfigThrows) {
  TrackerConfig cfg = tracker_config(0);
  EXPECT_THROW(RoArrayTracker{cfg}, std::invalid_argument);
}

TEST(Tracker, ShapeMismatchThrows) {
  RoArrayTracker t(tracker_config());
  EXPECT_THROW(t.push(linalg::CMat(2, 30)), std::invalid_argument);
}

TEST(Tracker, SinglePacketEstimate) {
  RoArrayTracker t(tracker_config());
  const auto burst = make_burst(1, 1001);
  t.push(burst.csi[0]);
  const auto r = t.estimate();
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->valid);
  EXPECT_NEAR(r->direct.aoa_deg, 105.0, 5.0);
}

TEST(Tracker, WindowEvictsOldestPackets) {
  RoArrayTracker t(tracker_config(3));
  const auto burst = make_burst(6, 1002);
  for (const auto& csi : burst.csi) t.push(csi);
  EXPECT_EQ(t.size(), 3);
}

TEST(Tracker, EstimateIsCachedUntilNewPacket) {
  RoArrayTracker t(tracker_config());
  const auto burst = make_burst(4, 1003);
  for (const auto& csi : burst.csi) t.push(csi);
  const auto first = t.estimate();
  const auto second = t.estimate();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(first->direct.aoa_deg, second->direct.aoa_deg);
  // New packet invalidates the cache (no crash, fresh estimate).
  t.push(burst.csi[0]);
  EXPECT_TRUE(t.estimate().has_value());
}

TEST(Tracker, ResetClearsEverything) {
  RoArrayTracker t(tracker_config());
  const auto burst = make_burst(3, 1004);
  for (const auto& csi : burst.csi) t.push(csi);
  t.reset();
  EXPECT_EQ(t.size(), 0);
  EXPECT_FALSE(t.estimate().has_value());
}

TEST(Tracker, TracksMovingSource) {
  // Push packets from angle A, then slide the window over to angle B:
  // the estimate follows.
  RoArrayTracker t(tracker_config(5));
  const auto a = make_burst(5, 1005, 60.0);
  for (const auto& csi : a.csi) t.push(csi);
  const auto ra = t.estimate();
  ASSERT_TRUE(ra.has_value());
  EXPECT_NEAR(ra->direct.aoa_deg, 60.0, 6.0);

  const auto b = make_burst(5, 1006, 130.0);
  for (const auto& csi : b.csi) t.push(csi);  // fully replaces the window
  const auto rb = t.estimate();
  ASSERT_TRUE(rb.has_value());
  EXPECT_NEAR(rb->direct.aoa_deg, 130.0, 6.0);
}

}  // namespace
}  // namespace roarray::core
