// Shared helpers for the test suites.
#pragma once

#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::testing {

using linalg::CMat;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

/// Deterministic RNG for reproducible tests.
inline std::mt19937_64 make_rng(std::uint64_t seed = 42) {
  return std::mt19937_64{seed};
}

/// Random complex matrix with iid standard normal re/im parts.
inline CMat random_cmat(index_t rows, index_t cols, std::mt19937_64& rng) {
  std::normal_distribution<double> n(0.0, 1.0);
  CMat m(rows, cols);
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i) m(i, j) = cxd{n(rng), n(rng)};
  return m;
}

/// Random complex vector.
inline CVec random_cvec(index_t n, std::mt19937_64& rng) {
  std::normal_distribution<double> d(0.0, 1.0);
  CVec v(n);
  for (index_t i = 0; i < n; ++i) v[i] = cxd{d(rng), d(rng)};
  return v;
}

/// Random Hermitian matrix A = B + B^H.
inline CMat random_hermitian(index_t n, std::mt19937_64& rng) {
  const CMat b = random_cmat(n, n, rng);
  CMat a = b;
  const CMat bh = adjoint(b);
  a += bh;
  return a;
}

/// Random Hermitian positive-definite matrix A = B B^H + eps I.
inline CMat random_hpd(index_t n, std::mt19937_64& rng, double eps = 0.5) {
  const CMat b = random_cmat(n, n, rng);
  CMat a = matmul(b, adjoint(b));
  for (index_t i = 0; i < n; ++i) a(i, i) += cxd{eps, 0.0};
  return a;
}

/// Asserts two complex matrices are element-wise close.
inline void expect_mat_near(const CMat& a, const CMat& b, double tol,
                            const char* what = "") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      EXPECT_NEAR(std::abs(a(i, j) - b(i, j)), 0.0, tol)
          << what << " at (" << i << "," << j << ")";
    }
  }
}

/// Asserts two complex vectors are element-wise close.
inline void expect_vec_near(const CVec& a, const CVec& b, double tol,
                            const char* what = "") {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (index_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, tol) << what << " at " << i;
  }
}

/// Checks Q^H Q = I.
inline void expect_orthonormal_columns(const CMat& q, double tol) {
  const CMat g = matmul_adj_left(q, q);
  for (index_t j = 0; j < g.cols(); ++j) {
    for (index_t i = 0; i < g.rows(); ++i) {
      const double expected = (i == j) ? 1.0 : 0.0;
      EXPECT_NEAR(std::abs(g(i, j)), expected, tol)
          << "gram at (" << i << "," << j << ")";
    }
  }
}

}  // namespace roarray::testing
