#include "music/model_order.hpp"

#include <gtest/gtest.h>

#include "dsp/steering.hpp"
#include "linalg/eig.hpp"
#include "music/covariance.hpp"
#include "../test_util.hpp"

namespace roarray::music {
namespace {

namespace rt = roarray::testing;
using linalg::cxd;
using linalg::index_t;
using linalg::RVec;

/// Eigenvalues of a covariance with `k` planted sources on a d-element
/// array plus noise.
RVec planted_eigenvalues(index_t d, const std::vector<double>& angles,
                         index_t snapshots, double noise_sigma,
                         std::mt19937_64& rng) {
  dsp::ArrayConfig cfg;
  cfg.num_antennas = d;
  cfg.antenna_spacing_m = cfg.wavelength_m / 2.0;
  CMat y(d, snapshots);
  std::normal_distribution<double> n(0.0, 1.0);
  for (index_t t = 0; t < snapshots; ++t) {
    for (double a : angles) {
      const auto s = dsp::steering_aoa(a, cfg);
      const cxd amp{n(rng), n(rng)};
      for (index_t i = 0; i < d; ++i) y(i, t) += amp * s[i];
    }
    for (index_t i = 0; i < d; ++i) {
      y(i, t) += cxd{n(rng) * noise_sigma, n(rng) * noise_sigma};
    }
  }
  return linalg::eig_hermitian(sample_covariance(y)).eigenvalues;
}

TEST(ModelOrder, ZeroSourcesPureNoise) {
  auto rng = rt::make_rng(131);
  const RVec lam = planted_eigenvalues(6, {}, 400, 1.0, rng);
  EXPECT_EQ(estimate_model_order(lam, 400), 0);
}

TEST(ModelOrder, DetectsOneSource) {
  auto rng = rt::make_rng(132);
  const RVec lam = planted_eigenvalues(6, {70.0}, 400, 0.1, rng);
  EXPECT_EQ(estimate_model_order(lam, 400), 1);
}

TEST(ModelOrder, DetectsThreeSources) {
  auto rng = rt::make_rng(133);
  const RVec lam = planted_eigenvalues(8, {40.0, 90.0, 140.0}, 600, 0.1, rng);
  EXPECT_EQ(estimate_model_order(lam, 600), 3);
}

TEST(ModelOrder, AicAndMdlAgreeOnEasyCases) {
  auto rng = rt::make_rng(134);
  const RVec lam = planted_eigenvalues(7, {60.0, 120.0}, 500, 0.05, rng);
  EXPECT_EQ(estimate_model_order(lam, 500, OrderCriterion::kMdl), 2);
  EXPECT_EQ(estimate_model_order(lam, 500, OrderCriterion::kAic), 2);
}

TEST(ModelOrder, UnderestimatesAtVeryLowSnrMdl) {
  // At terrible SNR the signal eigenvalue sinks into the noise spread —
  // MDL then under-reports the source count. This is exactly the
  // degradation that motivates ROArray's K-free formulation.
  auto rng = rt::make_rng(135);
  const RVec lam = planted_eigenvalues(5, {60.0, 100.0}, 30, 5.0, rng);
  EXPECT_LT(estimate_model_order(lam, 30), 2);
}

TEST(ModelOrder, InvalidInputsThrow) {
  EXPECT_THROW(estimate_model_order(RVec(1), 10), std::invalid_argument);
  EXPECT_THROW(estimate_model_order(RVec(4), 0), std::invalid_argument);
}

TEST(ModelOrder, HandlesRankDeficientCovariance) {
  // Zero eigenvalues (more antennas than snapshots) must not produce
  // NaNs or throws.
  RVec lam(6);
  lam[4] = 1.0;
  lam[5] = 10.0;
  const index_t k = estimate_model_order(lam, 4);
  EXPECT_GE(k, 0);
  EXPECT_LT(k, 6);
}

class ModelOrderSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(ModelOrderSweep, CorrectCountAcrossSourceNumbers) {
  const index_t true_k = GetParam();
  std::vector<double> angles;
  for (index_t i = 0; i < true_k; ++i) {
    angles.push_back(30.0 + 120.0 * static_cast<double>(i) /
                                std::max<index_t>(1, true_k - 1));
  }
  if (true_k == 1) angles = {75.0};
  auto rng = rt::make_rng(static_cast<std::uint64_t>(777 + true_k));
  const RVec lam = planted_eigenvalues(10, angles, 800, 0.05, rng);
  EXPECT_EQ(estimate_model_order(lam, 800), true_k);
}

INSTANTIATE_TEST_SUITE_P(Counts, ModelOrderSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace roarray::music
