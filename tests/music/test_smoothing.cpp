#include "music/smoothing.hpp"

#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "dsp/steering.hpp"
#include "linalg/eig.hpp"
#include "music/covariance.hpp"
#include "../test_util.hpp"

namespace roarray::music {
namespace {

namespace rt = roarray::testing;
using linalg::cxd;

TEST(Smoothing, OutputDimensionsMatchWindowCounts) {
  const CMat csi(3, 30);
  const SmoothingConfig cfg;  // 2 x 15
  const CMat s = smooth_csi(csi, cfg);
  EXPECT_EQ(s.rows(), 30);   // 2 * 15
  EXPECT_EQ(s.cols(), 32);   // (3-2+1) * (30-15+1)
}

TEST(Smoothing, WindowMustFit) {
  const CMat csi(3, 30);
  EXPECT_THROW(smooth_csi(csi, {.sub_antennas = 4, .sub_carriers = 15}),
               std::invalid_argument);
  EXPECT_THROW(smooth_csi(csi, {.sub_antennas = 2, .sub_carriers = 31}),
               std::invalid_argument);
  EXPECT_THROW(smooth_csi(csi, {.sub_antennas = 0, .sub_carriers = 15}),
               std::invalid_argument);
}

TEST(Smoothing, FullWindowIsStackedCsi) {
  auto rng = rt::make_rng(111);
  const CMat csi = rt::random_cmat(3, 30, rng);
  const CMat s = smooth_csi(csi, {.sub_antennas = 3, .sub_carriers = 30});
  ASSERT_EQ(s.cols(), 1);
  for (linalg::index_t l = 0; l < 30; ++l) {
    for (linalg::index_t m = 0; m < 3; ++m) {
      EXPECT_EQ(s(l * 3 + m, 0), csi(m, l));
    }
  }
}

TEST(Smoothing, SnapshotsFollowSubSteeringModel) {
  // A single path's smoothed snapshots must all be scalar multiples of
  // the sub-array steering vector: that is what makes joint MUSIC valid.
  const dsp::ArrayConfig cfg;
  channel::Path p;
  p.aoa_deg = 77.0;
  p.toa_s = 210e-9;
  p.gain = cxd{1.0, 0.5};
  const CMat csi = channel::synthesize_csi({p}, cfg);
  const SmoothingConfig sc;
  const CMat snaps = smooth_csi(csi, sc);
  const auto steer = dsp::steering_joint_sub(p.aoa_deg, p.toa_s, cfg,
                                             sc.sub_antennas, sc.sub_carriers);
  for (linalg::index_t j = 0; j < snaps.cols(); ++j) {
    // Correlation |<snap, steer>| / (||snap|| ||steer||) == 1.
    const auto snap = snaps.col_vec(j);
    const double corr =
        std::abs(dot(snap, steer)) / (norm2(snap) * norm2(steer));
    EXPECT_NEAR(corr, 1.0, 1e-10) << "snapshot " << j;
  }
}

TEST(Smoothing, MultiPacketConcatenation) {
  auto rng = rt::make_rng(112);
  const std::vector<CMat> packets = {rt::random_cmat(3, 30, rng),
                                     rt::random_cmat(3, 30, rng),
                                     rt::random_cmat(3, 30, rng)};
  const SmoothingConfig cfg;
  const CMat all = smooth_csi_packets(packets, cfg);
  EXPECT_EQ(all.cols(), 96);  // 3 packets * 32
  const CMat first = smooth_csi(packets[0], cfg);
  const CMat last = smooth_csi(packets[2], cfg);
  rt::expect_vec_near(all.col_vec(0), first.col_vec(0), 0.0, "first snapshot");
  rt::expect_vec_near(all.col_vec(95), last.col_vec(31), 0.0, "last snapshot");
}

TEST(Smoothing, EmptyPacketListThrows) {
  EXPECT_THROW(smooth_csi_packets({}, SmoothingConfig{}), std::invalid_argument);
}

TEST(Smoothing, InconsistentShapesThrow) {
  const std::vector<CMat> packets = {CMat(3, 30), CMat(2, 30)};
  EXPECT_THROW(smooth_csi_packets(packets, SmoothingConfig{}),
               std::invalid_argument);
}

TEST(Smoothing, RestoresRankForJointMusic) {
  // One packet = one rank-1 stacked snapshot, but smoothing yields
  // snapshots spanning a higher-dimensional space for 2 paths.
  const dsp::ArrayConfig cfg;
  channel::Path p1;
  p1.aoa_deg = 50.0;
  p1.toa_s = 80e-9;
  p1.gain = cxd{1.0, 0.0};
  channel::Path p2;
  p2.aoa_deg = 130.0;
  p2.toa_s = 320e-9;
  p2.gain = cxd{0.7, 0.2};
  const CMat csi = channel::synthesize_csi({p1, p2}, cfg);
  const CMat snaps = smooth_csi(csi, SmoothingConfig{});
  const CMat r = sample_covariance(snaps);
  const auto eg = linalg::eig_hermitian(r);
  // At least 2 significant eigenvalues (the two paths are decorrelated
  // by the sliding window).
  const double largest = eg.eigenvalues[r.rows() - 1];
  EXPECT_GT(eg.eigenvalues[r.rows() - 2], 1e-4 * largest);
}

}  // namespace
}  // namespace roarray::music
