#include "music/covariance.hpp"

#include <gtest/gtest.h>

#include "dsp/steering.hpp"
#include "linalg/eig.hpp"
#include "../test_util.hpp"

namespace roarray::music {
namespace {

namespace rt = roarray::testing;
using linalg::CVec;
using linalg::cxd;

TEST(Covariance, NoSnapshotsThrows) {
  EXPECT_THROW(sample_covariance(CMat(4, 0)), std::invalid_argument);
}

TEST(Covariance, SingleSnapshotOuterProduct) {
  CMat y(2, 1);
  y(0, 0) = cxd{1.0, 0.0};
  y(1, 0) = cxd{0.0, 2.0};
  const CMat r = sample_covariance(y);
  EXPECT_NEAR(std::abs(r(0, 0) - cxd{1.0, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(r(1, 1) - cxd{4.0, 0.0}), 0.0, 1e-14);
  // r(0,1) = y0 * conj(y1) = 1 * (-2i) = -2i.
  EXPECT_NEAR(std::abs(r(0, 1) - cxd{0.0, -2.0}), 0.0, 1e-14);
}

TEST(Covariance, IsHermitianPsd) {
  auto rng = rt::make_rng(101);
  const CMat y = rt::random_cmat(6, 40, rng);
  const CMat r = sample_covariance(y);
  rt::expect_mat_near(r, adjoint(r), 1e-12, "Hermitian");
  const auto eg = linalg::eig_hermitian(r);
  for (linalg::index_t i = 0; i < 6; ++i) EXPECT_GE(eg.eigenvalues[i], -1e-10);
}

TEST(Covariance, ScalesAsAverage) {
  // Duplicating snapshots must not change the covariance.
  auto rng = rt::make_rng(102);
  const CMat y = rt::random_cmat(4, 10, rng);
  CMat y2(4, 20);
  for (linalg::index_t j = 0; j < 10; ++j) {
    y2.set_col(j, y.col_vec(j));
    y2.set_col(10 + j, y.col_vec(j));
  }
  rt::expect_mat_near(sample_covariance(y), sample_covariance(y2), 1e-12,
                      "duplication invariance");
}

TEST(ForwardBackward, PreservesHermitianity) {
  auto rng = rt::make_rng(103);
  const CMat r = sample_covariance(rt::random_cmat(5, 20, rng));
  const CMat fb = forward_backward_average(r);
  rt::expect_mat_near(fb, adjoint(fb), 1e-12, "Hermitian after FB");
}

TEST(ForwardBackward, FixedPointOfPersymmetricMatrix) {
  // FB averaging is idempotent.
  auto rng = rt::make_rng(104);
  const CMat r = sample_covariance(rt::random_cmat(4, 15, rng));
  const CMat fb = forward_backward_average(r);
  rt::expect_mat_near(forward_backward_average(fb), fb, 1e-12, "idempotent");
}

TEST(ForwardBackward, PreservesTrace) {
  auto rng = rt::make_rng(105);
  const CMat r = sample_covariance(rt::random_cmat(6, 30, rng));
  const CMat fb = forward_backward_average(r);
  cxd tr{}, tr_fb{};
  for (linalg::index_t i = 0; i < 6; ++i) {
    tr += r(i, i);
    tr_fb += fb(i, i);
  }
  EXPECT_NEAR(std::abs(tr - tr_fb), 0.0, 1e-12);
}

TEST(ForwardBackward, NonSquareThrows) {
  EXPECT_THROW(forward_backward_average(CMat(2, 3)), std::invalid_argument);
}

TEST(ForwardBackward, DecorrelatesCoherentSources) {
  // Two fully coherent sources make the plain covariance rank 1; FB
  // averaging raises the signal-subspace rank to 2, which is exactly why
  // subspace methods need it on a ULA.
  const dsp::ArrayConfig cfg{.num_antennas = 5};
  const auto s1 = dsp::steering_aoa(50.0, cfg);
  const auto s2 = dsp::steering_aoa(120.0, cfg);
  CMat y(5, 10);
  for (linalg::index_t t = 0; t < 10; ++t) {
    const cxd a = std::polar(1.0, 0.4 * static_cast<double>(t));
    for (linalg::index_t i = 0; i < 5; ++i) {
      y(i, t) = a * (s1[i] + cxd{0.8, 0.3} * s2[i]);  // coherent mixture
    }
  }
  const CMat r = sample_covariance(y);
  const auto eg_plain = linalg::eig_hermitian(r);
  const auto eg_fb = linalg::eig_hermitian(forward_backward_average(r));
  // Second-largest eigenvalue: negligible without FB, substantial with.
  const double second_plain = eg_plain.eigenvalues[3];
  const double second_fb = eg_fb.eigenvalues[3];
  EXPECT_GT(second_fb, 100.0 * std::max(second_plain, 1e-12));
}

}  // namespace
}  // namespace roarray::music
