#include "music/music.hpp"

#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "dsp/sanitize.hpp"
#include "music/covariance.hpp"
#include "music/smoothing.hpp"
#include "../test_util.hpp"

namespace roarray::music {
namespace {

namespace rt = roarray::testing;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

/// Builds the sample covariance of noisy snapshots of planted sources.
CMat planted_covariance(const std::vector<double>& angles_deg,
                        const dsp::ArrayConfig& cfg, index_t snapshots,
                        double noise_sigma, std::mt19937_64& rng) {
  CMat y(cfg.num_antennas, snapshots);
  std::normal_distribution<double> n(0.0, 1.0);
  for (index_t t = 0; t < snapshots; ++t) {
    for (double a : angles_deg) {
      const auto s = dsp::steering_aoa(a, cfg);
      const cxd amp{n(rng), n(rng)};  // independent per source per snapshot
      for (index_t i = 0; i < cfg.num_antennas; ++i) y(i, t) += amp * s[i];
    }
    for (index_t i = 0; i < cfg.num_antennas; ++i) {
      y(i, t) += cxd{n(rng) * noise_sigma, n(rng) * noise_sigma};
    }
  }
  return sample_covariance(y);
}

TEST(NoiseSubspace, DimensionAndOrthogonality) {
  auto rng = rt::make_rng(121);
  const dsp::ArrayConfig cfg{.num_antennas = 5};
  const CMat r = planted_covariance({60.0}, cfg, 200, 0.05, rng);
  const CMat en = noise_subspace(r, 1);
  EXPECT_EQ(en.rows(), 5);
  EXPECT_EQ(en.cols(), 4);
  rt::expect_orthonormal_columns(en, 1e-9);
  // Noise subspace is (nearly) orthogonal to the source steering vector.
  const auto s = dsp::steering_aoa(60.0, cfg);
  for (index_t j = 0; j < 4; ++j) {
    cxd proj{};
    for (index_t i = 0; i < 5; ++i) proj += std::conj(en(i, j)) * s[i];
    EXPECT_LT(std::abs(proj), 0.1) << "column " << j;
  }
}

TEST(NoiseSubspace, InvalidKThrows) {
  const CMat r = CMat::identity(4);
  EXPECT_THROW(noise_subspace(r, 0), std::invalid_argument);
  EXPECT_THROW(noise_subspace(r, 4), std::invalid_argument);
}

TEST(MusicAoa, FindsSingleSourceAtHighSnr) {
  auto rng = rt::make_rng(122);
  const dsp::ArrayConfig cfg;
  const CMat r = planted_covariance({150.0}, cfg, 300, 0.02, rng);
  const auto spec = music_spectrum_aoa(r, 1, dsp::Grid(0.0, 180.0, 181), cfg);
  const auto peaks = spec.find_peaks(1);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks[0].aoa_deg, 150.0, 2.0);
}

TEST(MusicAoa, ResolvesTwoSourcesWithThreeAntennas) {
  auto rng = rt::make_rng(123);
  const dsp::ArrayConfig cfg;
  const CMat r = planted_covariance({50.0, 120.0}, cfg, 500, 0.02, rng);
  const auto spec = music_spectrum_aoa(r, 2, dsp::Grid(0.0, 180.0, 181), cfg);
  const auto peaks = spec.find_peaks(2, 0.01, 5);
  ASSERT_EQ(peaks.size(), 2u);
  const double a = std::min(peaks[0].aoa_deg, peaks[1].aoa_deg);
  const double b = std::max(peaks[0].aoa_deg, peaks[1].aoa_deg);
  EXPECT_NEAR(a, 50.0, 4.0);
  EXPECT_NEAR(b, 120.0, 4.0);
}

TEST(MusicAoa, CovarianceDimensionMismatchThrows) {
  const dsp::ArrayConfig cfg;  // 3 antennas
  EXPECT_THROW(
      music_spectrum_aoa(CMat::identity(4), 1, dsp::Grid(0.0, 180.0, 19), cfg),
      std::invalid_argument);
}

TEST(MusicAoa, SpectrumDegradesWithNoise) {
  // The defining weakness the paper attacks: beam sharpness collapses as
  // SNR falls. Sharpness = peak / mean of the normalized spectrum.
  const dsp::ArrayConfig cfg;
  auto sharpness_at = [&](double sigma) {
    auto rng = rt::make_rng(124);
    const CMat r = planted_covariance({150.0}, cfg, 60, sigma, rng);
    const auto spec = music_spectrum_aoa(r, 1, dsp::Grid(0.0, 180.0, 181), cfg);
    double mean = 0.0;
    for (index_t i = 0; i < spec.values.size(); ++i) mean += spec.values[i];
    mean /= static_cast<double>(spec.values.size());
    return 1.0 / mean;  // spectrum normalized to peak 1
  };
  EXPECT_GT(sharpness_at(0.05), sharpness_at(1.2));
}

TEST(MusicJoint, LocalizesPathInAngleAndTime) {
  const dsp::ArrayConfig cfg;
  channel::Path p;
  p.aoa_deg = 100.0;
  p.toa_s = 240e-9;
  p.gain = cxd{1.0, 0.0};
  auto rng = rt::make_rng(125);
  CMat csi = channel::synthesize_csi({p}, cfg);
  channel::add_noise(csi, 25.0, rng);
  const SmoothingConfig sc;
  CMat r = sample_covariance(smooth_csi(csi, sc));
  r = forward_backward_average(r);
  const auto spec = music_spectrum_joint(r, 3, dsp::Grid(0.0, 180.0, 91),
                                         dsp::Grid(0.0, 784e-9, 50), cfg,
                                         sc.sub_antennas, sc.sub_carriers);
  const auto peaks = spec.find_peaks(1);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks[0].aoa_deg, 100.0, 4.0);
  EXPECT_NEAR(peaks[0].toa_s, 240e-9, 40e-9);
}

TEST(MusicJoint, SeparatesTwoPathsByToa) {
  // Two paths at nearby angles but distinct delays: the frequency
  // dimension must split them (the paper's aperture-expansion argument).
  const dsp::ArrayConfig cfg;
  channel::Path p1;
  p1.aoa_deg = 90.0;
  p1.toa_s = 60e-9;
  p1.gain = cxd{1.0, 0.0};
  channel::Path p2;
  p2.aoa_deg = 110.0;
  p2.toa_s = 360e-9;
  p2.gain = cxd{0.8, 0.2};
  auto rng = rt::make_rng(126);
  CMat csi = channel::synthesize_csi({p1, p2}, cfg);
  channel::add_noise(csi, 25.0, rng);
  const SmoothingConfig sc;
  CMat r = sample_covariance(smooth_csi(csi, sc));
  r = forward_backward_average(r);
  const auto spec = music_spectrum_joint(r, 4, dsp::Grid(0.0, 180.0, 91),
                                         dsp::Grid(0.0, 784e-9, 50), cfg,
                                         sc.sub_antennas, sc.sub_carriers);
  const auto peaks = spec.find_peaks(2, 0.05, 3, 3);
  ASSERT_EQ(peaks.size(), 2u);
  const double t_min = std::min(peaks[0].toa_s, peaks[1].toa_s);
  const double t_max = std::max(peaks[0].toa_s, peaks[1].toa_s);
  EXPECT_NEAR(t_min, 60e-9, 50e-9);
  EXPECT_NEAR(t_max, 360e-9, 50e-9);
}

TEST(MusicJoint, DimensionMismatchThrows) {
  const dsp::ArrayConfig cfg;
  EXPECT_THROW(music_spectrum_joint(CMat::identity(10), 2,
                                    dsp::Grid(0.0, 180.0, 10),
                                    dsp::Grid(0.0, 700e-9, 5), cfg, 2, 15),
               std::invalid_argument);
}

class MusicAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(MusicAngleSweep, SingleSourceRecoveredAcrossAngles) {
  const double truth = GetParam();
  auto rng = rt::make_rng(static_cast<std::uint64_t>(truth * 7 + 3));
  const dsp::ArrayConfig cfg;
  const CMat r = planted_covariance({truth}, cfg, 200, 0.05, rng);
  const auto spec = music_spectrum_aoa(r, 1, dsp::Grid(0.0, 180.0, 361), cfg);
  const auto peaks = spec.find_peaks(1);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks[0].aoa_deg, truth, 3.0);
}

// Endfire angles (near 0/180) have poor ULA resolution; sweep the
// usable field of view.
INSTANTIATE_TEST_SUITE_P(Angles, MusicAngleSweep,
                         ::testing::Values(25.0, 45.0, 70.0, 90.0, 115.0,
                                           140.0, 160.0));

}  // namespace
}  // namespace roarray::music
