#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "channel/multipath.hpp"
#include "music/arraytrack.hpp"
#include "music/spotfi.hpp"
#include "../test_util.hpp"

namespace roarray::music {
namespace {

namespace rt = roarray::testing;
using channel::BurstConfig;
using channel::Path;
using linalg::cxd;

const dsp::ArrayConfig kArray;

std::vector<Path> los_dominant_paths(double direct_aoa, double direct_toa) {
  Path direct;
  direct.aoa_deg = direct_aoa;
  direct.toa_s = direct_toa;
  direct.gain = cxd{1.0, 0.0};
  Path refl;
  refl.aoa_deg = direct_aoa > 90.0 ? direct_aoa - 60.0 : direct_aoa + 60.0;
  refl.toa_s = direct_toa + 150e-9;
  refl.gain = cxd{0.35, 0.2};
  return {direct, refl};
}

channel::PacketBurst make_burst(const std::vector<Path>& paths, double snr_db,
                                linalg::index_t packets, std::uint64_t seed) {
  auto rng = rt::make_rng(seed);
  BurstConfig cfg;
  cfg.num_packets = packets;
  cfg.snr_db = snr_db;
  return channel::generate_burst(paths, kArray, cfg, rng);
}

TEST(ArrayTrack, FindsDominantAoaAtHighSnr) {
  const auto paths = los_dominant_paths(120.0, 40e-9);
  const auto burst = make_burst(paths, 25.0, 15, 201);
  const ArrayTrackResult r =
      arraytrack_estimate(burst.csi, ArrayTrackConfig{}, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.direct_aoa_deg, 120.0, 6.0);
}

TEST(ArrayTrack, NoPacketsThrows) {
  EXPECT_THROW(arraytrack_estimate({}, ArrayTrackConfig{}, kArray),
               std::invalid_argument);
}

TEST(ArrayTrack, ShapeMismatchThrows) {
  const std::vector<linalg::CMat> bad = {linalg::CMat(2, 30)};
  EXPECT_THROW(arraytrack_estimate(bad, ArrayTrackConfig{}, kArray),
               std::invalid_argument);
}

TEST(ArrayTrack, SpectrumNormalized) {
  const auto paths = los_dominant_paths(90.0, 50e-9);
  const auto burst = make_burst(paths, 20.0, 5, 202);
  const ArrayTrackResult r =
      arraytrack_estimate(burst.csi, ArrayTrackConfig{}, kArray);
  double mx = 0.0;
  for (linalg::index_t i = 0; i < r.spectrum.values.size(); ++i) {
    mx = std::max(mx, r.spectrum.values[i]);
  }
  EXPECT_NEAR(mx, 1.0, 1e-9);
}

TEST(ArrayTrack, DegradesGracefullyAtLowSnr) {
  // Must still return a valid (if inaccurate) estimate at 0 dB.
  const auto paths = los_dominant_paths(60.0, 45e-9);
  const auto burst = make_burst(paths, 0.0, 15, 203);
  const ArrayTrackResult r =
      arraytrack_estimate(burst.csi, ArrayTrackConfig{}, kArray);
  EXPECT_TRUE(r.valid);
  EXPECT_GE(r.direct_aoa_deg, 0.0);
  EXPECT_LE(r.direct_aoa_deg, 180.0);
}

TEST(Spotfi, SinglePacketLocatesDirectPath) {
  const auto paths = los_dominant_paths(130.0, 60e-9);
  const auto burst = make_burst(paths, 25.0, 1, 204);
  const SpotfiResult r = spotfi_estimate(burst.csi, SpotfiConfig{}, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.direct_aoa_deg, 130.0, 8.0);
}

TEST(Spotfi, MultiPacketClusteringTightensEstimate) {
  const auto paths = los_dominant_paths(75.0, 55e-9);
  const auto burst = make_burst(paths, 18.0, 15, 205);
  const SpotfiResult r = spotfi_estimate(burst.csi, SpotfiConfig{}, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.direct_aoa_deg, 75.0, 8.0);
  EXPECT_FALSE(r.clusters.empty());
  EXPECT_GE(r.candidates.size(), burst.csi.size());  // >= 1 peak per packet
}

TEST(Spotfi, DirectToaNearRebiasForLosChannel) {
  // With sanitization, the direct path lands near the rebias delay.
  const auto paths = los_dominant_paths(100.0, 45e-9);
  const auto burst = make_burst(paths, 25.0, 10, 206);
  SpotfiConfig cfg;
  const SpotfiResult r = spotfi_estimate(burst.csi, cfg, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(r.direct_toa_s, 300e-9);
}

TEST(Spotfi, KeepSpectrumPopulatesFirstPacketSpectrum) {
  const auto paths = los_dominant_paths(110.0, 50e-9);
  const auto burst = make_burst(paths, 20.0, 2, 207);
  const SpotfiResult with =
      spotfi_estimate(burst.csi, SpotfiConfig{}, kArray, true);
  EXPECT_GT(with.first_packet_spectrum.values.size(), 0);
  const SpotfiResult without =
      spotfi_estimate(burst.csi, SpotfiConfig{}, kArray, false);
  EXPECT_EQ(without.first_packet_spectrum.values.size(), 0);
}

TEST(Spotfi, NoPacketsThrows) {
  EXPECT_THROW(spotfi_estimate({}, SpotfiConfig{}, kArray),
               std::invalid_argument);
}

TEST(Spotfi, FixedKToleratesFewerTruePaths) {
  // SpotFi hardwires K = 5; with only 1 true path it must not crash and
  // should still pick the right direct AoA at high SNR.
  std::vector<Path> one;
  Path direct;
  direct.aoa_deg = 95.0;
  direct.toa_s = 70e-9;
  direct.gain = cxd{1.0, 0.0};
  one.push_back(direct);
  const auto burst = make_burst(one, 30.0, 5, 208);
  const SpotfiResult r = spotfi_estimate(burst.csi, SpotfiConfig{}, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.direct_aoa_deg, 95.0, 6.0);
}

class BaselineAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(BaselineAngleSweep, SpotfiTracksDirectAoaAtHighSnr) {
  const double truth = GetParam();
  const auto paths = los_dominant_paths(truth, 50e-9);
  const auto burst = make_burst(
      paths, 22.0, 8, static_cast<std::uint64_t>(truth * 13 + 1));
  const SpotfiResult r = spotfi_estimate(burst.csi, SpotfiConfig{}, kArray);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.direct_aoa_deg, truth, 10.0);
}

INSTANTIATE_TEST_SUITE_P(Angles, BaselineAngleSweep,
                         ::testing::Values(40.0, 65.0, 90.0, 115.0, 140.0));

}  // namespace
}  // namespace roarray::music
