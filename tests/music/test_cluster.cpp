#include "music/cluster.hpp"

#include <gtest/gtest.h>

namespace roarray::music {
namespace {

std::vector<FeaturePoint> blob(double cx, double cy, int n, double spread,
                               double weight = 1.0) {
  std::vector<FeaturePoint> pts;
  for (int i = 0; i < n; ++i) {
    FeaturePoint p;
    p.x = cx + spread * (static_cast<double>(i % 5) - 2.0) / 5.0;
    p.y = cy + spread * (static_cast<double>(i % 3) - 1.0) / 3.0;
    p.weight = weight;
    pts.push_back(p);
  }
  return pts;
}

TEST(Kmeans, EmptyInputThrows) {
  EXPECT_THROW(kmeans({}, 2), std::invalid_argument);
}

TEST(Kmeans, InvalidKThrows) {
  EXPECT_THROW(kmeans(blob(0, 0, 3, 0.1), 0), std::invalid_argument);
}

TEST(Kmeans, SinglePointSingleCluster) {
  const auto clusters = kmeans(blob(0.5, 0.5, 1, 0.0), 3);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_DOUBLE_EQ(clusters[0].cx, 0.5);
  EXPECT_DOUBLE_EQ(clusters[0].cy, 0.5);
  EXPECT_EQ(clusters[0].members.size(), 1u);
}

TEST(Kmeans, SeparatesTwoBlobs) {
  auto pts = blob(0.1, 0.1, 12, 0.05);
  const auto b2 = blob(0.9, 0.8, 12, 0.05);
  pts.insert(pts.end(), b2.begin(), b2.end());
  const auto clusters = kmeans(pts, 2);
  ASSERT_EQ(clusters.size(), 2u);
  const bool first_low = clusters[0].cx < 0.5;
  const Cluster& low = first_low ? clusters[0] : clusters[1];
  const Cluster& high = first_low ? clusters[1] : clusters[0];
  EXPECT_NEAR(low.cx, 0.1, 0.05);
  EXPECT_NEAR(low.cy, 0.1, 0.05);
  EXPECT_NEAR(high.cx, 0.9, 0.05);
  EXPECT_NEAR(high.cy, 0.8, 0.05);
  EXPECT_EQ(low.members.size(), 12u);
  EXPECT_EQ(high.members.size(), 12u);
}

TEST(Kmeans, WeightsPullCentroids) {
  std::vector<FeaturePoint> pts;
  FeaturePoint heavy;
  heavy.x = 1.0;
  heavy.weight = 9.0;
  FeaturePoint light;
  light.x = 0.0;
  light.weight = 1.0;
  pts.push_back(heavy);
  pts.push_back(light);
  const auto clusters = kmeans(pts, 1);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_NEAR(clusters[0].cx, 0.9, 1e-9);  // weighted centroid
}

TEST(Kmeans, VarianceReflectsSpread) {
  const auto tight = kmeans(blob(0.5, 0.5, 15, 0.02), 1);
  const auto loose = kmeans(blob(0.5, 0.5, 15, 0.4), 1);
  ASSERT_EQ(tight.size(), 1u);
  ASSERT_EQ(loose.size(), 1u);
  EXPECT_LT(tight[0].var_x, loose[0].var_x);
  EXPECT_LT(tight[0].var_y, loose[0].var_y);
}

TEST(Kmeans, KClampedToPointCount) {
  const auto clusters = kmeans(blob(0.2, 0.2, 3, 0.3), 10);
  EXPECT_LE(clusters.size(), 3u);
  std::size_t members = 0;
  for (const auto& c : clusters) members += c.members.size();
  EXPECT_EQ(members, 3u);
}

TEST(Kmeans, DeterministicAcrossRuns) {
  auto pts = blob(0.3, 0.3, 8, 0.1);
  const auto b2 = blob(0.7, 0.6, 9, 0.1);
  pts.insert(pts.end(), b2.begin(), b2.end());
  const auto c1 = kmeans(pts, 3);
  const auto c2 = kmeans(pts, 3);
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_DOUBLE_EQ(c1[i].cx, c2[i].cx);
    EXPECT_DOUBLE_EQ(c1[i].cy, c2[i].cy);
  }
}

TEST(Kmeans, EveryPointAssignedExactlyOnce) {
  auto pts = blob(0.2, 0.8, 10, 0.2);
  const auto b2 = blob(0.8, 0.2, 10, 0.2);
  pts.insert(pts.end(), b2.begin(), b2.end());
  const auto clusters = kmeans(pts, 4);
  std::vector<int> seen(pts.size(), 0);
  for (const auto& c : clusters) {
    for (auto idx : c.members) seen[static_cast<std::size_t>(idx)]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

}  // namespace
}  // namespace roarray::music
