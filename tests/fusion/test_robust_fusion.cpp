// Unit suite for the robust NLoS-aware fusion layer (src/fusion/):
// loss-function contracts, clean-data bit-compatibility with weighted
// least squares, breakdown behaviour with lying APs, the ToA
// positive-bias model, and input/config validation.
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "fusion/fusion.hpp"
#include "fusion/loss.hpp"

namespace roarray::fusion {
namespace {

/// Five wall-mounted APs around the default 18 x 12 m room, axes angled
/// so every array faces the interior (mirroring the paper's testbed
/// style deployment).
std::vector<channel::ApPose> five_aps() {
  return {
      {{0.0, 2.0}, 90.0},  {{0.0, 10.0}, 45.0},  {{9.0, 12.0}, 0.0},
      {{18.0, 9.0}, 270.0}, {{10.0, 0.0}, 180.0},
  };
}

/// Observations with exact geometric AoAs for `target` (weights 1.0,
/// no ToA) — the all-inlier baseline every robust mode must nail.
std::vector<Observation> clean_observations(const channel::Vec2& target) {
  std::vector<Observation> obs;
  for (const channel::ApPose& ap : five_aps()) {
    Observation o;
    o.pose = ap;
    o.aoa_deg = ap.aoa_of_point(target);
    obs.push_back(o);
  }
  return obs;
}

TEST(RobustLossTest, HuberWeightIsExactlyOneInsideBand) {
  EXPECT_EQ(robust_weight(RobustLoss::kHuber, 0.0, 1.0, 4.0), 1.0);
  EXPECT_EQ(robust_weight(RobustLoss::kHuber, 0.999, 1.0, 4.0), 1.0);
  EXPECT_EQ(robust_weight(RobustLoss::kHuber, 1.0, 1.0, 4.0), 1.0);
  EXPECT_NEAR(robust_weight(RobustLoss::kHuber, 2.0, 1.0, 4.0), 0.5, 1e-15);
  EXPECT_EQ(robust_weight(RobustLoss::kLeastSquares, 100.0, 1.0, 4.0), 1.0);
}

TEST(RobustLossTest, TukeyRedescendsToZero) {
  EXPECT_EQ(robust_weight(RobustLoss::kTukey, 0.0, 1.0, 4.0), 1.0);
  EXPECT_GT(robust_weight(RobustLoss::kTukey, 2.0, 1.0, 4.0), 0.0);
  EXPECT_EQ(robust_weight(RobustLoss::kTukey, 4.0, 1.0, 4.0), 0.0);
  EXPECT_EQ(robust_weight(RobustLoss::kTukey, 100.0, 1.0, 4.0), 0.0);
  // rho saturates at c^2/6 for gross outliers: bounded total influence.
  const double cap = 4.0 * 4.0 / 6.0;
  EXPECT_NEAR(robust_rho(RobustLoss::kTukey, 4.0, 1.0, 4.0), cap, 1e-15);
  EXPECT_NEAR(robust_rho(RobustLoss::kTukey, 50.0, 1.0, 4.0), cap, 1e-15);
}

TEST(RobustLossTest, RhoIsContinuousAtTheHuberKnee) {
  const double below = robust_rho(RobustLoss::kHuber, 1.0 - 1e-12, 1.0, 4.0);
  const double above = robust_rho(RobustLoss::kHuber, 1.0 + 1e-12, 1.0, 4.0);
  EXPECT_NEAR(below, above, 1e-10);
  EXPECT_NEAR(robust_rho(RobustLoss::kHuber, 1.0, 1.0, 4.0), 0.5, 1e-15);
}

TEST(FuseRobustTest, RecoversTruthOnCleanData) {
  const channel::Vec2 target{9.63, 4.58};
  const auto obs = clean_observations(target);
  const channel::Room room;
  FusionConfig cfg;
  const FusionReport rep = fuse_robust(obs, room, {9.6, 4.6}, cfg);
  EXPECT_TRUE(rep.converged);
  EXPECT_FALSE(rep.used_ransac);
  EXPECT_EQ(rep.fallback, FusionFallback::kNone);
  EXPECT_NEAR(rep.position.x, target.x, 1e-4);
  EXPECT_NEAR(rep.position.y, target.y, 1e-4);
  EXPECT_EQ(rep.inliers, 5);
  ASSERT_EQ(rep.per_ap.size(), obs.size());
  for (const ApDiagnostics& d : rep.per_ap) {
    EXPECT_TRUE(d.inlier);
    EXPECT_EQ(d.robust_weight, 1.0);  // inside the Huber band: exactly 1.
    EXPECT_LT(std::abs(d.residual_m), 1e-3);
  }
}

// The bit-compatibility contract from the module header: with every
// residual inside the Huber band the kHuber weights are exactly 1.0, so
// the IRLS trajectory — every intermediate double — matches the plain
// weighted-least-squares solve bit for bit.
TEST(FuseRobustTest, CleanDataHuberBitCompatibleWithWeightedLs) {
  const channel::Vec2 target{5.21, 7.77};
  auto obs = clean_observations(target);
  // Unequal weights so the test also covers the RSSI weighting path.
  const double weights[] = {0.4, 1.7, 0.9, 2.3, 1.1};
  for (std::size_t i = 0; i < obs.size(); ++i) obs[i].weight = weights[i];
  const channel::Room room;
  const channel::Vec2 init{5.2, 7.8};  // grid-quantized seed, as in loc.

  FusionConfig huber;
  huber.loss = RobustLoss::kHuber;
  FusionConfig ls;
  ls.loss = RobustLoss::kLeastSquares;

  const FusionReport a = fuse_robust(obs, room, init, huber);
  const FusionReport b = fuse_robust(obs, room, init, ls);
  // Bitwise, not approximate: same iterates, same arithmetic.
  EXPECT_EQ(a.position.x, b.position.x);
  EXPECT_EQ(a.position.y, b.position.y);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.inliers, b.inliers);
  ASSERT_EQ(a.per_ap.size(), b.per_ap.size());
  for (std::size_t i = 0; i < a.per_ap.size(); ++i) {
    EXPECT_EQ(a.per_ap[i].residual_m, b.per_ap[i].residual_m);
    EXPECT_EQ(a.per_ap[i].robust_weight, b.per_ap[i].robust_weight);
  }
}

TEST(FuseRobustTest, OneLiarOfFiveBarelyMovesTheFix) {
  const channel::Vec2 target{12.4, 6.9};
  auto obs = clean_observations(target);
  obs[2].aoa_deg += 35.0;  // blocked-LoS AP: confidently wrong bearing.
  const channel::Room room;
  FusionConfig cfg;
  const FusionReport rep = fuse_robust(obs, room, {12.0, 7.0}, cfg);
  EXPECT_NEAR(rep.position.x, target.x, 0.3);
  EXPECT_NEAR(rep.position.y, target.y, 0.3);
  ASSERT_EQ(rep.per_ap.size(), 5u);
  EXPECT_FALSE(rep.per_ap[2].inlier);
  EXPECT_GT(rep.per_ap[2].residual_deg, cfg.inlier_residual_deg);
  EXPECT_GE(rep.inliers, 4);
}

TEST(FuseRobustTest, TwoLiarsOfFiveStillRecovered) {
  const channel::Vec2 target{4.2, 8.4};
  auto obs = clean_observations(target);
  obs[0].aoa_deg -= 40.0;
  obs[3].aoa_deg += 28.0;
  const channel::Room room;
  FusionConfig cfg;
  cfg.loss = RobustLoss::kTukey;  // redescending: liars cut out entirely.
  const FusionReport rep = fuse_robust(obs, room, {4.0, 8.5}, cfg);
  EXPECT_NEAR(rep.position.x, target.x, 0.5);
  EXPECT_NEAR(rep.position.y, target.y, 0.5);
  EXPECT_TRUE(rep.per_ap[1].inlier);
  EXPECT_TRUE(rep.per_ap[2].inlier);
  EXPECT_TRUE(rep.per_ap[4].inlier);
}

TEST(FuseRobustTest, TukeyZeroesGrossOutlierWeight) {
  const channel::Vec2 target{9.0, 6.0};
  auto obs = clean_observations(target);
  obs[4].aoa_deg = std::fmin(179.0, obs[4].aoa_deg + 60.0);
  const channel::Room room;
  FusionConfig cfg;
  cfg.loss = RobustLoss::kTukey;
  const FusionReport rep = fuse_robust(obs, room, {9.0, 6.0}, cfg);
  EXPECT_EQ(rep.per_ap[4].robust_weight, 0.0);
  EXPECT_FALSE(rep.per_ap[4].inlier);
}

TEST(FuseRobustTest, ToaExcessFlagsBiasedApEvenWithConsistentAoa) {
  const channel::Vec2 target{9.0, 6.0};
  auto obs = clean_observations(target);
  for (Observation& o : obs) {
    o.has_toa = true;
    o.toa_s = 100e-9;  // sanitizer rebias: every honest AP reports ~alike.
  }
  obs[1].toa_s = 200e-9;  // wrong peak picked: late arrival, right-ish AoA.
  const channel::Room room;
  FusionConfig cfg;
  const FusionReport rep = fuse_robust(obs, room, {9.0, 6.0}, cfg);
  // Estimated bias = excess over median beyond the 40 ns slack.
  EXPECT_NEAR(rep.per_ap[1].toa_bias_s, 60e-9, 1e-12);
  EXPECT_FALSE(rep.per_ap[1].inlier);
  EXPECT_LT(rep.per_ap[1].robust_weight, 0.2);
  // The honest APs carry no estimated bias and stay inliers.
  for (std::size_t i : {0u, 2u, 3u, 4u}) {
    EXPECT_EQ(rep.per_ap[i].toa_bias_s, 0.0);
    EXPECT_TRUE(rep.per_ap[i].inlier);
  }
  // The position is untouched: the ToA term carries no range information
  // by design, it only downweights.
  EXPECT_NEAR(rep.position.x, target.x, 1e-3);
  EXPECT_NEAR(rep.position.y, target.y, 1e-3);
}

TEST(FuseRobustTest, ToaTermNeedsQuorum) {
  const channel::Vec2 target{9.0, 6.0};
  auto obs = clean_observations(target);
  // Only two APs report ToA: below toa_min_observations, the term is off
  // and a wild ToA must not hurt anyone.
  obs[0].has_toa = true;
  obs[0].toa_s = 900e-9;
  obs[1].has_toa = true;
  obs[1].toa_s = 100e-9;
  const channel::Room room;
  const FusionReport rep = fuse_robust(obs, room, {9.0, 6.0}, FusionConfig{});
  EXPECT_EQ(rep.per_ap[0].toa_bias_s, 0.0);
  EXPECT_TRUE(rep.per_ap[0].inlier);
  EXPECT_EQ(rep.inliers, 5);
}

TEST(FuseRobustTest, ResultIsClampedToRoom) {
  // Two APs on the left wall both pointing at a target; the third lies
  // hard. Whatever happens, the fix must stay inside the room.
  const channel::Vec2 target{1.0, 1.0};
  auto obs = clean_observations(target);
  obs[0].aoa_deg = 179.0;
  const channel::Room room;
  const FusionReport rep = fuse_robust(obs, room, {0.1, 0.1}, FusionConfig{});
  EXPECT_TRUE(room.contains(rep.position));
}

TEST(FuseRobustTest, RejectsDegenerateInputs) {
  const channel::Room room;
  const FusionConfig cfg;
  std::vector<Observation> one(1);
  EXPECT_THROW((void)fuse_robust(one, room, {1.0, 1.0}, cfg),
               std::invalid_argument);
  auto obs = clean_observations({9.0, 6.0});
  obs[0].weight = 0.0;
  EXPECT_THROW((void)fuse_robust(obs, room, {9.0, 6.0}, cfg),
               std::invalid_argument);
  obs[0].weight = 1.0;
  obs[1].aoa_deg = std::nan("");
  EXPECT_THROW((void)fuse_robust(obs, room, {9.0, 6.0}, cfg),
               std::invalid_argument);
}

TEST(FusionConfigTest, ValidateRejectsNonsense) {
  FusionConfig cfg;
  cfg.huber_delta_deg = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.max_iterations = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.min_inlier_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.toa_slack_s = -1e-9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.toa_min_observations = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(FusionNamesTest, EnumNamesAreStable) {
  EXPECT_STREQ(robust_loss_name(RobustLoss::kHuber), "huber");
  EXPECT_STREQ(robust_loss_name(RobustLoss::kTukey), "tukey");
  EXPECT_STREQ(robust_loss_name(RobustLoss::kLeastSquares), "least-squares");
  EXPECT_STREQ(fusion_fallback_name(FusionFallback::kNone), "none");
  EXPECT_STREQ(fusion_fallback_name(FusionFallback::kRansac), "ransac");
  EXPECT_STREQ(fusion_fallback_name(FusionFallback::kRansacNoGain),
               "ransac-no-gain");
  EXPECT_STREQ(fusion_fallback_name(FusionFallback::kDegenerate),
               "degenerate");
}

}  // namespace
}  // namespace roarray::fusion
