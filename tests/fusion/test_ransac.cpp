// RANSAC hypothesis-stage tests: bearing-pair intersection geometry,
// mirror-fold enumeration, deterministic subsampling under a fixed
// seed, and end-to-end rescue of a fix that IRLS alone cannot save.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "fusion/fusion.hpp"
#include "fusion/ransac.hpp"

namespace roarray::fusion {
namespace {

std::vector<channel::ApPose> eight_aps() {
  return {
      {{0.0, 2.0}, 90.0},   {{0.0, 10.0}, 45.0},  {{9.0, 12.0}, 0.0},
      {{18.0, 9.0}, 270.0}, {{10.0, 0.0}, 180.0}, {{18.0, 3.0}, 250.0},
      {{4.0, 12.0}, 340.0}, {{0.0, 6.0}, 80.0},
  };
}

std::vector<Observation> exact_observations(
    const std::vector<channel::ApPose>& aps, const channel::Vec2& target) {
  std::vector<Observation> obs;
  for (const channel::ApPose& ap : aps) {
    Observation o;
    o.pose = ap;
    o.aoa_deg = ap.aoa_of_point(target);
    obs.push_back(o);
  }
  return obs;
}

bool near(const channel::Vec2& a, const channel::Vec2& b, double tol) {
  return std::abs(a.x - b.x) <= tol && std::abs(a.y - b.y) <= tol;
}

TEST(RansacTest, ExactPairIntersectsAtTheTarget) {
  const channel::Vec2 target{7.3, 5.1};
  const auto aps = eight_aps();
  auto obs = exact_observations({aps[0], aps[3]}, target);
  const channel::Room room;
  const auto hyps = bearing_pair_hypotheses(obs, room, FusionConfig{});
  ASSERT_FALSE(hyps.empty());
  // One of the fold combinations must land on the true target; mirror
  // ghosts may also appear (and are what the consensus stage rejects).
  EXPECT_TRUE(std::any_of(hyps.begin(), hyps.end(), [&](const Hypothesis& h) {
    return near(h.position, target, 1e-9);
  }));
  for (const Hypothesis& h : hyps) {
    EXPECT_TRUE(room.contains(h.position));
    EXPECT_EQ(h.ap_a, 0);
    EXPECT_EQ(h.ap_b, 1);
  }
}

TEST(RansacTest, EveryPairYieldsATruthHypothesis) {
  const channel::Vec2 target{11.8, 7.6};
  const auto obs = exact_observations(eight_aps(), target);
  const channel::Room room;
  FusionConfig cfg;  // 28 pairs < default max_hypothesis_pairs = 64.
  const auto hyps = bearing_pair_hypotheses(obs, room, cfg);
  // With exhaustive enumeration, every one of the 28 pairs contributes a
  // candidate at the true position (among its ghosts).
  int at_truth = 0;
  for (const Hypothesis& h : hyps) {
    if (near(h.position, target, 1e-9)) ++at_truth;
  }
  EXPECT_EQ(at_truth, 28);
}

TEST(RansacTest, FixedSeedIsDeterministicAcrossCalls) {
  const channel::Vec2 target{6.0, 9.0};
  const auto obs = exact_observations(eight_aps(), target);
  const channel::Room room;
  FusionConfig cfg;
  cfg.max_hypothesis_pairs = 6;  // < 28: forces the seeded subsample.
  const auto a = bearing_pair_hypotheses(obs, room, cfg);
  const auto b = bearing_pair_hypotheses(obs, room, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].position.x, b[i].position.x);
    EXPECT_EQ(a[i].position.y, b[i].position.y);
    EXPECT_EQ(a[i].ap_a, b[i].ap_a);
    EXPECT_EQ(a[i].ap_b, b[i].ap_b);
  }
}

TEST(RansacTest, FuseRobustIsDeterministicWithOutliersAndSubsampling) {
  const channel::Vec2 target{13.5, 4.0};
  auto obs = exact_observations(eight_aps(), target);
  obs[1].aoa_deg += 50.0;
  obs[4].aoa_deg -= 45.0;
  obs[6].aoa_deg += 30.0;
  const channel::Room room;
  FusionConfig cfg;
  cfg.max_hypothesis_pairs = 8;  // exercise the seeded-subsample path.
  // A far-off seed makes the first IRLS converge somewhere poor so the
  // hypothesis stage actually runs.
  const FusionReport a = fuse_robust(obs, room, {1.0, 11.0}, cfg);
  const FusionReport b = fuse_robust(obs, room, {1.0, 11.0}, cfg);
  EXPECT_EQ(a.position.x, b.position.x);
  EXPECT_EQ(a.position.y, b.position.y);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.used_ransac, b.used_ransac);
  EXPECT_EQ(a.fallback, b.fallback);
  EXPECT_EQ(a.inliers, b.inliers);
}

TEST(RansacTest, HypothesisStageRescuesABadInitialFix) {
  // Three of eight APs lie and the initial fix sits in the wrong corner:
  // gradient descent from there cannot cross the room, but a bearing
  // pair of two honest APs proposes the true position directly.
  const channel::Vec2 target{15.0, 3.0};
  auto obs = exact_observations(eight_aps(), target);
  obs[0].aoa_deg += 55.0;
  obs[2].aoa_deg -= 50.0;
  obs[7].aoa_deg += 45.0;
  const channel::Room room;
  FusionConfig cfg;
  // Demand near-total consensus so the hypothesis stage must engage
  // (5 honest of 8 can never reach 90%).
  cfg.min_inlier_fraction = 0.9;
  const FusionReport rep = fuse_robust(obs, room, {1.0, 11.0}, cfg);
  EXPECT_TRUE(rep.used_ransac);
  EXPECT_NEAR(rep.position.x, target.x, 0.5);
  EXPECT_NEAR(rep.position.y, target.y, 0.5);
  EXPECT_GE(rep.inliers, 5);
}

}  // namespace
}  // namespace roarray::fusion
