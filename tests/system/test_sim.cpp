#include "sim/scenario.hpp"
#include "sim/testbed.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::sim {
namespace {

namespace rt = roarray::testing;

TEST(Testbed, PaperTestbedMatchesPaperGeometry) {
  const Testbed tb = make_paper_testbed();
  EXPECT_DOUBLE_EQ(tb.room.width_m, 18.0);
  EXPECT_DOUBLE_EQ(tb.room.height_m, 12.0);
  EXPECT_EQ(tb.aps.size(), 6u);  // paper: 6 desktop APs
  for (const ApPose& ap : tb.aps) {
    EXPECT_TRUE(tb.room.contains(ap.position));
  }
}

TEST(Testbed, LocationSamplingRespectsMargin) {
  auto rng = rt::make_rng(401);
  const Testbed tb = make_paper_testbed();
  const auto locs = sample_client_locations(300, tb.room, rng, 1.5);
  EXPECT_EQ(locs.size(), 300u);  // paper: 300 test locations
  for (const Vec2& p : locs) {
    EXPECT_GE(p.x, 1.5);
    EXPECT_LE(p.x, 16.5);
    EXPECT_GE(p.y, 1.5);
    EXPECT_LE(p.y, 10.5);
  }
}

TEST(Testbed, SamplingInvalidArgsThrow) {
  auto rng = rt::make_rng(402);
  const Room room{18.0, 12.0};
  EXPECT_THROW(sample_client_locations(-1, room, rng), std::invalid_argument);
  EXPECT_THROW(sample_client_locations(5, room, rng, 9.0), std::invalid_argument);
}

TEST(SnrBands, SamplesFallInDeclaredRanges) {
  auto rng = rt::make_rng(403);
  for (int i = 0; i < 50; ++i) {
    const double hi = sample_snr_db(SnrBand::kHigh, rng);
    EXPECT_GE(hi, 15.0);
    const double med = sample_snr_db(SnrBand::kMedium, rng);
    EXPECT_GT(med, 2.0);
    EXPECT_LT(med, 15.0);
    const double lo = sample_snr_db(SnrBand::kLow, rng);
    EXPECT_LE(lo, 2.0);
  }
}

TEST(SnrBands, NamesAreDistinct) {
  EXPECT_STRNE(snr_band_name(SnrBand::kHigh), snr_band_name(SnrBand::kLow));
  EXPECT_STRNE(snr_band_name(SnrBand::kHigh), snr_band_name(SnrBand::kMedium));
}

TEST(Scenario, GeneratesOneMeasurementPerAp) {
  auto rng = rt::make_rng(404);
  const Testbed tb = make_paper_testbed();
  ScenarioConfig cfg;
  const auto ms = generate_measurements(tb, {9.0, 6.0}, cfg, rng);
  ASSERT_EQ(ms.size(), 6u);
  for (const ApMeasurement& m : ms) {
    EXPECT_EQ(m.burst.csi.size(), static_cast<std::size_t>(cfg.num_packets));
    EXPECT_GT(m.rssi_weight, 0.0);
    EXPECT_FALSE(m.paths.empty());
    EXPECT_GE(m.true_direct_aoa_deg, 0.0);
    EXPECT_LE(m.true_direct_aoa_deg, 180.0);
  }
}

TEST(Scenario, GroundTruthAoaMatchesGeometry) {
  auto rng = rt::make_rng(405);
  const Testbed tb = make_paper_testbed();
  const Vec2 client{12.0, 4.0};
  ScenarioConfig cfg;
  const auto ms = generate_measurements(tb, client, cfg, rng);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    EXPECT_NEAR(ms[i].true_direct_aoa_deg, tb.aps[i].aoa_of_point(client),
                1e-9);
  }
}

TEST(Scenario, RssiWeightDecaysWithDistance) {
  auto rng = rt::make_rng(406);
  const Testbed tb = make_paper_testbed();
  ScenarioConfig cfg;
  // Client adjacent to AP 0 (west wall).
  const auto near_ms = generate_measurements(tb, {2.0, 6.0}, cfg, rng);
  const auto far_ms = generate_measurements(tb, {16.0, 6.0}, cfg, rng);
  EXPECT_GT(near_ms[0].rssi_weight, far_ms[0].rssi_weight);
}

TEST(Scenario, SnrBandRespected) {
  auto rng = rt::make_rng(407);
  const Testbed tb = make_paper_testbed();
  ScenarioConfig cfg;
  cfg.snr_band = SnrBand::kLow;
  const auto ms = generate_measurements(tb, {9.0, 6.0}, cfg, rng);
  for (const ApMeasurement& m : ms) {
    EXPECT_LE(m.snr_db, 2.0);
  }
}

TEST(Scenario, PolarizationScaleAppliedToBurst) {
  auto rng1 = rt::make_rng(408);
  auto rng2 = rt::make_rng(408);
  const Testbed tb = make_paper_testbed();
  ScenarioConfig full;
  ScenarioConfig weak;
  weak.polarization_scale = 0.3;
  const auto m_full = generate_measurements(tb, {9.0, 6.0}, full, rng1);
  const auto m_weak = generate_measurements(tb, {9.0, 6.0}, weak, rng2);
  EXPECT_LT(m_weak[0].rssi_weight, m_full[0].rssi_weight);
}

TEST(Scenario, EmptyTestbedThrows) {
  auto rng = rt::make_rng(409);
  Testbed tb;
  tb.room = Room{18.0, 12.0};
  EXPECT_THROW(generate_measurements(tb, {9.0, 6.0}, ScenarioConfig{}, rng),
               std::invalid_argument);
}

TEST(Scenario, DeterministicGivenSeed) {
  const Testbed tb = make_paper_testbed();
  auto rng1 = rt::make_rng(410);
  auto rng2 = rt::make_rng(410);
  const auto a = generate_measurements(tb, {9.0, 6.0}, ScenarioConfig{}, rng1);
  const auto b = generate_measurements(tb, {9.0, 6.0}, ScenarioConfig{}, rng2);
  rt::expect_mat_near(a[0].burst.csi[0], b[0].burst.csi[0], 0.0, "determinism");
  EXPECT_DOUBLE_EQ(a[3].snr_db, b[3].snr_db);
}

TEST(Adversarial, InactiveConfigLeavesScenariosBitIdentical) {
  // The adversarial machinery must not consume any rng draws when every
  // mode is off, or seeds (and the golden corpus) would shift.
  const Testbed tb = make_paper_testbed();
  auto rng1 = rt::make_rng(420);
  auto rng2 = rt::make_rng(420);
  ScenarioConfig plain;
  ScenarioConfig with_defaults;
  EXPECT_FALSE(with_defaults.adversarial.active());
  const auto a = generate_measurements(tb, {5.0, 7.0}, plain, rng1);
  const auto b = generate_measurements(tb, {5.0, 7.0}, with_defaults, rng2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    rt::expect_mat_near(a[i].burst.csi[0], b[i].burst.csi[0], 0.0,
                        "inactive adversarial");
    EXPECT_FALSE(b[i].adversarial_blocked);
    EXPECT_FALSE(b[i].adversarial_wrong_peak);
    EXPECT_FALSE(b[i].adversarial_toa_bias);
  }
}

TEST(Adversarial, BlockedApLosesItsDirectPathButKeepsTruth) {
  const Testbed tb = make_paper_testbed();
  const Vec2 client{9.0, 6.0};
  ScenarioConfig cfg;
  cfg.los_block_probability = 0.0;  // isolate the adversarial block.
  cfg.adversarial.num_blocked_aps = 2;
  auto rng = rt::make_rng(421);
  const auto ms = generate_measurements(tb, client, cfg, rng);
  int blocked = 0;
  for (const ApMeasurement& m : ms) {
    // Truth always reflects the pristine geometric direct path.
    EXPECT_NEAR(m.true_direct_aoa_deg, m.pose.aoa_of_point(client), 1e-9);
    if (!m.adversarial_blocked) continue;
    ++blocked;
    // The erased direct path: every surviving path arrives later than
    // the geometric LoS would have.
    const double los_toa =
        channel::distance(m.pose.position, client) / dsp::kSpeedOfLight;
    for (const channel::Path& p : m.paths) {
      EXPECT_GT(p.toa_s, los_toa + 1e-12);
    }
  }
  EXPECT_EQ(blocked, 2);
}

TEST(Adversarial, ToaBiasDelaysOnlyTheDirectPath) {
  const Testbed tb = make_paper_testbed();
  const Vec2 client{6.5, 4.0};
  ScenarioConfig cfg;
  cfg.los_block_probability = 0.0;
  cfg.adversarial.num_toa_bias_aps = 1;
  cfg.adversarial.toa_bias_s = 80e-9;
  auto rng = rt::make_rng(422);
  const auto ms = generate_measurements(tb, client, cfg, rng);
  int biased = 0;
  for (const ApMeasurement& m : ms) {
    if (!m.adversarial_toa_bias) continue;
    ++biased;
    const double los_toa =
        channel::distance(m.pose.position, client) / dsp::kSpeedOfLight;
    // The direct path (the one at the geometric LoS AoA) arrives late by
    // the configured bias; reflections are untouched, so the direct may
    // no longer be first.
    bool found_direct = false;
    for (const channel::Path& p : m.paths) {
      if (std::abs(p.aoa_deg - m.true_direct_aoa_deg) < 1e-9) {
        EXPECT_NEAR(p.toa_s, los_toa + cfg.adversarial.toa_bias_s, 1e-12);
        found_direct = true;
      }
    }
    EXPECT_TRUE(found_direct);
    // Paths stay sorted by ToA after the re-sort.
    for (std::size_t i = 1; i < m.paths.size(); ++i) {
      EXPECT_LE(m.paths[i - 1].toa_s, m.paths[i].toa_s);
    }
  }
  EXPECT_EQ(biased, 1);
}

TEST(Adversarial, WrongPeakBoostsAReflectionAboveTheDirect) {
  const Testbed tb = make_paper_testbed();
  const Vec2 client{12.0, 8.0};
  ScenarioConfig cfg;
  cfg.los_block_probability = 0.0;
  cfg.adversarial.wrong_peak_probability = 1.0;  // every AP corrupted.
  auto rng = rt::make_rng(423);
  const auto ms = generate_measurements(tb, client, cfg, rng);
  for (const ApMeasurement& m : ms) {
    if (!m.adversarial_wrong_peak) continue;  // single-path link corner.
    const double direct = std::abs(m.paths.front().gain);
    double strongest = 0.0;
    for (std::size_t i = 1; i < m.paths.size(); ++i) {
      strongest = std::max(strongest, std::abs(m.paths[i].gain));
    }
    // The boost enforces the configured amplitude ratio, which puts the
    // direct path's relative power under the estimator's 0.4 gate.
    EXPECT_GE(strongest, cfg.adversarial.wrong_peak_boost * direct - 1e-12);
  }
  EXPECT_TRUE(std::any_of(ms.begin(), ms.end(), [](const ApMeasurement& m) {
    return m.adversarial_wrong_peak;
  }));
}

TEST(Adversarial, SelectionIsDeterministicGivenSeed) {
  const Testbed tb = make_paper_testbed();
  ScenarioConfig cfg;
  cfg.adversarial.num_blocked_aps = 1;
  cfg.adversarial.num_toa_bias_aps = 1;
  cfg.adversarial.wrong_peak_probability = 0.3;
  auto rng1 = rt::make_rng(424);
  auto rng2 = rt::make_rng(424);
  const auto a = generate_measurements(tb, {9.0, 6.0}, cfg, rng1);
  const auto b = generate_measurements(tb, {9.0, 6.0}, cfg, rng2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].adversarial_blocked, b[i].adversarial_blocked);
    EXPECT_EQ(a[i].adversarial_toa_bias, b[i].adversarial_toa_bias);
    EXPECT_EQ(a[i].adversarial_wrong_peak, b[i].adversarial_wrong_peak);
    rt::expect_mat_near(a[i].burst.csi[0], b[i].burst.csi[0], 0.0,
                        "adversarial determinism");
  }
  // Blocked and biased sets are disjoint by construction.
  for (const ApMeasurement& m : a) {
    EXPECT_FALSE(m.adversarial_blocked && m.adversarial_toa_bias);
  }
}

}  // namespace
}  // namespace roarray::sim
