// Failure-injection tests: the pipeline must degrade gracefully, not
// crash or return garbage, under blocked links, extreme SNR, degenerate
// geometry, and starved inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/roarray.hpp"
#include "loc/localize.hpp"
#include "music/arraytrack.hpp"
#include "music/spotfi.hpp"
#include "sim/scenario.hpp"
#include "../test_util.hpp"

namespace roarray {
namespace {

namespace rt = roarray::testing;

TEST(FailureInjection, HeavilyBlockedDirectPathStillYieldsEstimate) {
  const sim::Testbed tb = sim::make_paper_testbed();
  auto rng = rt::make_rng(951);
  sim::ScenarioConfig cfg;
  cfg.los_block_probability = 1.0;  // every link blocked
  cfg.los_block_loss_db = 15.0;
  cfg.snr_band = sim::SnrBand::kMedium;
  const auto ms = sim::generate_measurements(tb, {9.0, 6.0}, cfg, rng);
  for (const auto& m : ms) {
    core::RoArrayConfig rcfg;
    rcfg.solver.max_iterations = 200;
    const auto r = core::roarray_estimate(m.burst.csi, rcfg, cfg.array);
    EXPECT_TRUE(r.valid);
    EXPECT_GE(r.direct.aoa_deg, 0.0);
    EXPECT_LE(r.direct.aoa_deg, 180.0);
  }
}

TEST(FailureInjection, ExtremeLowSnrDoesNotCrashAnySystem) {
  channel::Path p;
  p.aoa_deg = 90.0;
  p.toa_s = 60e-9;
  p.gain = linalg::cxd{1.0, 0.0};
  auto rng = rt::make_rng(952);
  channel::BurstConfig bc;
  bc.num_packets = 5;
  bc.snr_db = -15.0;  // buried in noise
  const dsp::ArrayConfig arr;
  const auto burst = channel::generate_burst({p}, arr, bc, rng);

  core::RoArrayConfig rcfg;
  rcfg.solver.max_iterations = 150;
  EXPECT_NO_THROW({
    const auto r = core::roarray_estimate(burst.csi, rcfg, arr);
    (void)r;
  });
  EXPECT_NO_THROW({
    const auto r = music::spotfi_estimate(burst.csi, music::SpotfiConfig{}, arr);
    (void)r;
  });
  EXPECT_NO_THROW({
    const auto r = music::arraytrack_estimate(burst.csi,
                                              music::ArrayTrackConfig{}, arr);
    (void)r;
  });
}

TEST(FailureInjection, PureNoiseInputHandledEverywhere) {
  auto rng = rt::make_rng(953);
  const dsp::ArrayConfig arr;
  std::vector<linalg::CMat> noise_packets;
  for (int i = 0; i < 3; ++i) {
    noise_packets.push_back(rt::random_cmat(arr.num_antennas,
                                            arr.num_subcarriers, rng));
  }
  core::RoArrayConfig rcfg;
  rcfg.solver.max_iterations = 150;
  EXPECT_NO_THROW({
    const auto r = core::roarray_estimate(noise_packets, rcfg, arr);
    (void)r;
  });
  EXPECT_NO_THROW({
    const auto r =
        music::spotfi_estimate(noise_packets, music::SpotfiConfig{}, arr);
    (void)r;
  });
}

TEST(FailureInjection, ZeroCsiInputDoesNotDivideByZero) {
  const dsp::ArrayConfig arr;
  const std::vector<linalg::CMat> zero = {
      linalg::CMat(arr.num_antennas, arr.num_subcarriers)};
  core::RoArrayConfig rcfg;
  rcfg.solver.max_iterations = 50;
  // A zero operator input: the solver throws a domain error (documented)
  // or returns an invalid result; it must not crash or return NaN paths.
  try {
    const auto r = core::roarray_estimate(zero, rcfg, arr);
    if (r.valid) {
      EXPECT_TRUE(std::isfinite(r.direct.aoa_deg));
    }
  } catch (const std::domain_error&) {
    SUCCEED();
  }
}

TEST(FailureInjection, SingleApLocalizationIsBoundedNotCrashing) {
  // One AoA constrains only a bearing; the fix must still be inside the
  // room and valid.
  const sim::Testbed tb = sim::make_paper_testbed();
  loc::LocalizeConfig lcfg;
  lcfg.room = tb.room;
  lcfg.grid_step_m = 0.2;
  const std::vector<loc::ApObservation> obs = {
      {tb.aps[0], 45.0, 1.0},
  };
  const auto fix = loc::localize(obs, lcfg);
  ASSERT_TRUE(fix.valid);
  EXPECT_TRUE(tb.room.contains(fix.position));
}

TEST(FailureInjection, ZeroWeightObservationsAreNeutral) {
  const sim::Testbed tb = sim::make_paper_testbed();
  loc::LocalizeConfig lcfg;
  lcfg.room = tb.room;
  lcfg.grid_step_m = 0.1;
  const sim::Vec2 target{7.0, 5.0};
  std::vector<loc::ApObservation> obs;
  for (std::size_t i = 0; i < 3; ++i) {
    obs.push_back({tb.aps[i], tb.aps[i].aoa_of_point(target), 1.0});
  }
  // A wildly wrong observation with zero weight must not move the fix.
  obs.push_back({tb.aps[3], 5.0, 0.0});
  const auto fix = loc::localize(obs, lcfg);
  ASSERT_TRUE(fix.valid);
  EXPECT_LT(channel::distance(fix.position, target), 0.3);
}

TEST(FailureInjection, ClientOnTopOfApHandled) {
  const sim::Testbed tb = sim::make_paper_testbed();
  auto rng = rt::make_rng(954);
  // Client 1 mm from AP 0: the tracer clamps the degenerate path length.
  const sim::Vec2 client{tb.aps[0].position.x + 1e-4,
                         tb.aps[0].position.y};
  sim::ScenarioConfig cfg;
  cfg.num_packets = 2;
  EXPECT_NO_THROW({
    const auto ms = sim::generate_measurements(tb, client, cfg, rng);
    (void)ms;
  });
}

TEST(FailureInjection, MissingApsReduceButDoNotBreakLocalization) {
  // Only 2 of 6 APs report: localization still returns an in-room fix.
  const sim::Testbed tb = sim::make_paper_testbed();
  auto rng = rt::make_rng(955);
  sim::ScenarioConfig cfg = sim::scenario_for_band(sim::SnrBand::kHigh);
  cfg.num_packets = 5;
  const auto ms = sim::generate_measurements(tb, {10.0, 7.0}, cfg, rng);
  std::vector<loc::ApObservation> obs;
  for (std::size_t i = 0; i < 2; ++i) {
    core::RoArrayConfig rcfg;
    rcfg.solver.max_iterations = 200;
    const auto r = core::roarray_estimate(ms[i].burst.csi, rcfg, cfg.array);
    if (r.valid) obs.push_back({ms[i].pose, r.direct.aoa_deg, ms[i].rssi_weight});
  }
  loc::LocalizeConfig lcfg;
  lcfg.room = tb.room;
  lcfg.grid_step_m = 0.1;
  const auto fix = loc::localize(obs, lcfg);
  ASSERT_TRUE(fix.valid);
  EXPECT_TRUE(tb.room.contains(fix.position));
}

TEST(FailureInjection, SaturatedDetectionDelayDegradesButReturns) {
  // Delays beyond the sanitizer's aliasing limit: estimates may be
  // wrong, but must be well-formed.
  channel::Path p;
  p.aoa_deg = 110.0;
  p.toa_s = 50e-9;
  p.gain = linalg::cxd{1.0, 0.0};
  auto rng = rt::make_rng(956);
  channel::BurstConfig bc;
  bc.num_packets = 8;
  bc.snr_db = 15.0;
  bc.max_detection_delay_s = 700e-9;  // way past the 400 ns limit
  const dsp::ArrayConfig arr;
  const auto burst = channel::generate_burst({p}, arr, bc, rng);
  core::RoArrayConfig rcfg;
  rcfg.solver.max_iterations = 200;
  const auto r = core::roarray_estimate(burst.csi, rcfg, arr);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(std::isfinite(r.direct.aoa_deg));
  EXPECT_TRUE(std::isfinite(r.direct.toa_s));
}

}  // namespace
}  // namespace roarray
