#include "eval/stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "../test_util.hpp"
#include "runtime/seed.hpp"

namespace roarray::eval {
namespace {

namespace rt = roarray::testing;

TEST(BootstrapCi, BracketsTheMedian) {
  auto rng = rt::make_rng(1011);
  std::normal_distribution<double> n(5.0, 1.0);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(n(rng));
  const ConfidenceInterval ci = bootstrap_median_ci(samples, rng);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  // 95% CI for the median of N(5,1) with n=200 is tight around 5.
  EXPECT_NEAR(ci.point, 5.0, 0.3);
  EXPECT_LT(ci.hi - ci.lo, 0.8);
}

TEST(BootstrapCi, WiderWithFewerSamples) {
  auto rng = rt::make_rng(1012);
  std::normal_distribution<double> n(0.0, 1.0);
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) small.push_back(n(rng));
  for (int i = 0; i < 500; ++i) large.push_back(n(rng));
  const auto ci_small = bootstrap_median_ci(small, rng);
  const auto ci_large = bootstrap_median_ci(large, rng);
  EXPECT_GT(ci_small.hi - ci_small.lo, ci_large.hi - ci_large.lo);
}

TEST(BootstrapCi, HigherConfidenceIsWider) {
  auto rng = rt::make_rng(1013);
  std::normal_distribution<double> n(0.0, 1.0);
  std::vector<double> samples;
  for (int i = 0; i < 60; ++i) samples.push_back(n(rng));
  auto rng_a = rt::make_rng(1);
  auto rng_b = rt::make_rng(1);
  const auto ci90 = bootstrap_median_ci(samples, rng_a, 0.90);
  const auto ci99 = bootstrap_median_ci(samples, rng_b, 0.99);
  EXPECT_GE(ci99.hi - ci99.lo, ci90.hi - ci90.lo);
}

TEST(BootstrapCi, InvalidInputsThrow) {
  auto rng = rt::make_rng(1014);
  std::vector<double> empty;
  EXPECT_THROW(bootstrap_median_ci(empty, rng), std::invalid_argument);
  std::vector<double> ok = {1.0, 2.0};
  EXPECT_THROW(bootstrap_median_ci(ok, rng, 1.5), std::invalid_argument);
  EXPECT_THROW(bootstrap_median_ci(ok, rng, 0.95, 2), std::invalid_argument);
}

TEST(BootstrapCi, RegressionPinsPercentileIndexing) {
  // Fixed sample set + seed: pins the percentile endpoints to the
  // nearest-rank (lower) / ceiling (upper) indexing. The old floored
  // upper index shifted ci.hi one order statistic low on fractional
  // ranks, silently narrowing the interval.
  const std::vector<double> samples = {0.8, 1.1, 1.9, 2.4, 3.0,
                                       3.6, 4.2, 5.0, 6.5, 9.1};
  auto rng = rt::make_rng(2026);
  const ConfidenceInterval ci = bootstrap_median_ci(samples, rng, 0.95, 200);
  EXPECT_DOUBLE_EQ(ci.point, 3.3);  // (3.0 + 3.6) / 2
  EXPECT_DOUBLE_EQ(ci.lo, 1.9);
  EXPECT_DOUBLE_EQ(ci.hi, 5.35);
}

TEST(BootstrapCi, DeterministicGivenSeed) {
  std::vector<double> samples = {1.0, 3.0, 2.0, 5.0, 4.0, 6.0, 0.5};
  auto rng_a = rt::make_rng(77);
  auto rng_b = rt::make_rng(77);
  const auto a = bootstrap_median_ci(samples, rng_a);
  const auto b = bootstrap_median_ci(samples, rng_b);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapCi, DerivedTrialSeedsAreReproducibleAndDistinct) {
  // The eval pipeline seeds each trial with derive_seed(base, trial);
  // the resulting bootstrap intervals must replay bit-exactly from the
  // base seed alone, while distinct trials see distinct streams.
  std::vector<double> samples;
  {
    auto srng = rt::make_rng(9001);
    std::normal_distribution<double> n(10.0, 3.0);
    for (int i = 0; i < 40; ++i) samples.push_back(n(srng));
  }
  const std::uint64_t base = 0xfeedface;
  std::vector<ConfidenceInterval> first, second;
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    auto rng_a = rt::make_rng(runtime::derive_seed(base, trial));
    auto rng_b = rt::make_rng(runtime::derive_seed(base, trial));
    first.push_back(bootstrap_median_ci(samples, rng_a));
    second.push_back(bootstrap_median_ci(samples, rng_b));
  }
  bool any_interval_differs_between_trials = false;
  for (std::size_t t = 0; t < first.size(); ++t) {
    EXPECT_DOUBLE_EQ(first[t].lo, second[t].lo) << "trial " << t;
    EXPECT_DOUBLE_EQ(first[t].hi, second[t].hi) << "trial " << t;
    if (t > 0 && (first[t].lo != first[0].lo || first[t].hi != first[0].hi)) {
      any_interval_differs_between_trials = true;
    }
  }
  EXPECT_TRUE(any_interval_differs_between_trials)
      << "derived seeds collapsed to identical bootstrap streams";
}

TEST(BootstrapCi, DeterministicAcrossResampleCounts) {
  // Changing only the resample count must not perturb the point
  // estimate (the sample median is resample-independent).
  const std::vector<double> samples = {0.8, 1.1, 1.9, 2.4, 3.0, 3.6};
  auto rng_a = rt::make_rng(31);
  auto rng_b = rt::make_rng(31);
  const auto a = bootstrap_median_ci(samples, rng_a, 0.95, 200);
  const auto b = bootstrap_median_ci(samples, rng_b, 0.95, 2000);
  EXPECT_DOUBLE_EQ(a.point, b.point);
}

TEST(KsStatistic, IdenticalDistributionsGiveZero) {
  const Cdf a({1.0, 2.0, 3.0});
  const Cdf b({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.0);
}

TEST(KsStatistic, DisjointSupportsGiveOne) {
  const Cdf a({1.0, 2.0, 3.0});
  const Cdf b({10.0, 11.0});
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(KsStatistic, SymmetricAndBounded) {
  auto rng = rt::make_rng(1015);
  std::normal_distribution<double> n1(0.0, 1.0), n2(0.5, 1.5);
  std::vector<double> s1, s2;
  for (int i = 0; i < 100; ++i) {
    s1.push_back(n1(rng));
    s2.push_back(n2(rng));
  }
  const Cdf a(s1), b(s2);
  const double d_ab = ks_statistic(a, b);
  EXPECT_DOUBLE_EQ(d_ab, ks_statistic(b, a));
  EXPECT_GT(d_ab, 0.0);
  EXPECT_LE(d_ab, 1.0);
}

TEST(KsStatistic, GrowsWithDistributionShift) {
  auto rng = rt::make_rng(1016);
  std::normal_distribution<double> base(0.0, 1.0);
  std::vector<double> s0;
  for (int i = 0; i < 300; ++i) s0.push_back(base(rng));
  const Cdf a(s0);
  double prev = 0.0;
  for (double shift : {0.3, 1.0, 3.0}) {
    std::vector<double> s;
    for (double v : s0) s.push_back(v + shift);
    const double d = ks_statistic(a, Cdf(s));
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(KsStatistic, EmptyThrows) {
  const Cdf a({1.0});
  EXPECT_THROW(ks_statistic(a, Cdf{}), std::invalid_argument);
}

}  // namespace
}  // namespace roarray::eval
