#include "eval/cdf.hpp"
#include "eval/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace roarray::eval {
namespace {

TEST(Cdf, EmptyBehaviour) {
  const Cdf c;
  EXPECT_TRUE(c.empty());
  EXPECT_THROW(c.median(), std::domain_error);
  EXPECT_THROW(c.mean(), std::domain_error);
  EXPECT_THROW(c.fraction_below(1.0), std::domain_error);
}

TEST(Cdf, RejectsNonFinite) {
  EXPECT_THROW(Cdf({1.0, std::nan("")}), std::invalid_argument);
  EXPECT_THROW(Cdf({INFINITY}), std::invalid_argument);
}

TEST(Cdf, SingleSample) {
  const Cdf c({3.0});
  EXPECT_DOUBLE_EQ(c.median(), 3.0);
  EXPECT_DOUBLE_EQ(c.percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(c.percentile(1.0), 3.0);
}

TEST(Cdf, MedianOfOddAndEvenCounts) {
  EXPECT_DOUBLE_EQ(Cdf({3.0, 1.0, 2.0}).median(), 2.0);
  EXPECT_DOUBLE_EQ(Cdf({4.0, 1.0, 2.0, 3.0}).median(), 2.5);
}

TEST(Cdf, PercentileInterpolatesLinearly) {
  const Cdf c({0.0, 10.0});
  EXPECT_DOUBLE_EQ(c.percentile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(c.percentile(0.9), 9.0);
}

TEST(Cdf, PercentileArgChecked) {
  const Cdf c({1.0});
  EXPECT_THROW(c.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW(c.percentile(1.1), std::invalid_argument);
}

TEST(Cdf, MinMaxMean) {
  const Cdf c({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 5.0);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
}

TEST(Cdf, FractionBelow) {
  const Cdf c({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(c.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_below(10.0), 1.0);
}

TEST(Cdf, MonotonePercentiles) {
  const Cdf c({0.3, 2.0, 0.7, 5.5, 1.1, 4.2, 3.3});
  double prev = c.percentile(0.0);
  for (double f = 0.05; f <= 1.0; f += 0.05) {
    const double v = c.percentile(f);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(Report, CdfTableContainsCurvesAndRows) {
  std::ostringstream os;
  print_cdf_table(os, "Fig test", {{"roarray", Cdf({0.5, 1.0})},
                                   {"spotfi", Cdf({1.5, 3.0})}},
                  {0.5, 0.9}, "m");
  const std::string s = os.str();
  EXPECT_NE(s.find("Fig test"), std::string::npos);
  EXPECT_NE(s.find("roarray"), std::string::npos);
  EXPECT_NE(s.find("50%"), std::string::npos);
  EXPECT_NE(s.find("90%"), std::string::npos);
}

TEST(Report, CdfTableHandlesEmptyCurve) {
  std::ostringstream os;
  print_cdf_table(os, "t", {{"empty", Cdf{}}}, {0.5}, "m");
  EXPECT_NE(os.str().find("n/a"), std::string::npos);
}

TEST(Report, SummaryListsAllCurves) {
  std::ostringstream os;
  print_cdf_summary(os, {{"a", Cdf({1.0})}, {"b", Cdf({2.0, 4.0})}}, "deg");
  const std::string s = os.str();
  EXPECT_NE(s.find("median"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("n=2"), std::string::npos);
}

TEST(Report, SeriesLengthMismatchThrows) {
  std::ostringstream os;
  EXPECT_THROW(
      print_series(os, "t", "x", {1.0, 2.0}, {{"bad", {1.0}}}),
      std::invalid_argument);
}

TEST(Report, SeriesPrintsAllColumns) {
  std::ostringstream os;
  print_series(os, "spectrum", "deg", {0.0, 90.0},
               {{"p1", {0.1, 1.0}}, {"p2", {0.2, 0.4}}});
  const std::string s = os.str();
  EXPECT_NE(s.find("p1"), std::string::npos);
  EXPECT_NE(s.find("p2"), std::string::npos);
  EXPECT_NE(s.find("90.0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JsonWriter edge cases: escaping, non-finite doubles, structure checks.

TEST(JsonWriter, EscapesQuotesBackslashesAndControlCharacters) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("a\"b\\c");
  w.value(std::string_view("line\nbreak\ttab \x01 bell\x07"));
  w.end_object();
  const std::string s = os.str();
  EXPECT_NE(s.find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_NE(s.find("line\\nbreak\\ttab \\u0001 bell\\u0007"), std::string::npos);
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, NonFiniteDoublesEmitNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.value(INFINITY);
  w.value(-INFINITY);
  w.value(1.5);
  w.end_array();
  const std::string s = os.str();
  // Three nulls, and never the invalid bare tokens printf would emit.
  std::size_t nulls = 0;
  for (std::size_t pos = s.find("null"); pos != std::string::npos;
       pos = s.find("null", pos + 1)) {
    ++nulls;
  }
  EXPECT_EQ(nulls, 3u);
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(JsonWriter, DoublesRoundTripThroughShortestForm) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(0.1);
  w.value(1.0 / 3.0);
  w.end_array();
  const std::string s = os.str();
  EXPECT_NE(s.find("0.1"), std::string::npos);
  // The parsed-back value must equal the original exactly.
  const auto third_pos = s.find("0.3");
  ASSERT_NE(third_pos, std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(s.substr(third_pos)), 1.0 / 3.0);
}

TEST(JsonWriter, StructuralMisuseThrows) {
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // value without a key.
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close.
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.value(1.0);
    EXPECT_THROW(w.value(2.0), std::logic_error);  // two top-level values.
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_array();
    EXPECT_FALSE(w.complete());  // unbalanced: not complete.
  }
}

TEST(JsonWriter, CdfSummaryHandlesEmptyCdf) {
  std::ostringstream os;
  write_cdf_summary_json(os, {{"empty", Cdf{}}, {"one", Cdf({2.0})}});
  const std::string s = os.str();
  EXPECT_NE(s.find("\"empty\""), std::string::npos);
  EXPECT_NE(s.find("\"n\": 0"), std::string::npos);
  EXPECT_NE(s.find("null"), std::string::npos);  // null stats for empty curve.
  EXPECT_NE(s.find("\"one\""), std::string::npos);
  EXPECT_NE(s.find("\"n\": 1"), std::string::npos);
}

TEST(Report, SketchProducesRows) {
  std::ostringstream os;
  print_spectrum_sketch(os, {0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 0.3, 0.0}, 4);
  // Four sketch rows plus axis line.
  int lines = 0;
  for (char ch : os.str()) {
    if (ch == '\n') ++lines;
  }
  EXPECT_GE(lines, 5);
}

}  // namespace
}  // namespace roarray::eval
