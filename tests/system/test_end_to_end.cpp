// Integration tests: full pipeline from simulated testbed to location
// fix, for all three systems (ROArray, SpotFi, ArrayTrack).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/roarray.hpp"
#include "loc/localize.hpp"
#include "music/arraytrack.hpp"
#include "music/spotfi.hpp"
#include "runtime/operator_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/scenario.hpp"
#include "../test_util.hpp"

namespace roarray {
namespace {

namespace rt = roarray::testing;

loc::LocalizeConfig loc_config(const sim::Testbed& tb) {
  loc::LocalizeConfig cfg;
  cfg.room = tb.room;
  cfg.grid_step_m = 0.1;
  return cfg;
}

/// Shared estimation runtime for the whole test binary: one operator
/// cache and one small pool. Results are identical to the serial
/// per-call path (see tests/runtime), so the assertions below are
/// unchanged from when this helper looped over APs itself.
runtime::EstimateContext shared_context() {
  static runtime::OperatorCache cache;
  static runtime::ThreadPool pool(2);
  return {&cache, &pool};
}

/// Runs ROArray on every AP's burst (batched over the shared pool) and
/// triangulates.
loc::LocalizeResult localize_roarray(const sim::Testbed& tb,
                                     const std::vector<sim::ApMeasurement>& ms,
                                     const core::RoArrayConfig& rcfg,
                                     const dsp::ArrayConfig& arr) {
  const runtime::EstimateContext ctx = shared_context();
  std::vector<core::CsiBurst> bursts;
  bursts.reserve(ms.size());
  for (const auto& m : ms) bursts.push_back(m.burst.csi);
  const auto results = core::roarray_estimate_batch(bursts, rcfg, arr, ctx);
  std::vector<loc::ApObservation> obs;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    if (!results[i].valid) continue;
    obs.push_back({ms[i].pose, results[i].direct.aoa_deg, ms[i].rssi_weight});
  }
  return loc::localize(obs, loc_config(tb), ctx.pool);
}

TEST(EndToEnd, RoArrayLocalizesAtHighSnr) {
  const sim::Testbed tb = sim::make_paper_testbed();
  auto rng = rt::make_rng(501);
  const sim::Vec2 client{11.0, 7.5};
  sim::ScenarioConfig cfg;
  cfg.num_packets = 5;
  cfg.snr_band = sim::SnrBand::kHigh;
  const auto ms = sim::generate_measurements(tb, client, cfg, rng);
  core::RoArrayConfig rcfg;
  rcfg.solver.max_iterations = 300;
  const loc::LocalizeResult fix = localize_roarray(tb, ms, rcfg, cfg.array);
  ASSERT_TRUE(fix.valid);
  EXPECT_LT(channel::distance(fix.position, client), 1.5);
}

TEST(EndToEnd, RoArrayStillLocalizesAtLowSnr) {
  const sim::Testbed tb = sim::make_paper_testbed();
  auto rng = rt::make_rng(502);
  const sim::Vec2 client{6.0, 5.0};
  sim::ScenarioConfig cfg;
  cfg.num_packets = 15;
  cfg.snr_band = sim::SnrBand::kLow;
  const auto ms = sim::generate_measurements(tb, client, cfg, rng);
  core::RoArrayConfig rcfg;
  rcfg.solver.max_iterations = 300;
  const loc::LocalizeResult fix = localize_roarray(tb, ms, rcfg, cfg.array);
  ASSERT_TRUE(fix.valid);
  // The paper reports 0.91 m median at low SNR; allow generous slack for
  // a single location / seed.
  EXPECT_LT(channel::distance(fix.position, client), 3.0);
}

TEST(EndToEnd, SpotfiLocalizesAtHighSnr) {
  // SpotFi's error distribution has a heavy tail (Fig. 6a: p90 > 2.5 m),
  // so assert on the median over a few locations instead of one draw.
  const sim::Testbed tb = sim::make_paper_testbed();
  auto rng = rt::make_rng(503);
  sim::ScenarioConfig cfg = sim::scenario_for_band(sim::SnrBand::kHigh);
  cfg.num_packets = 15;
  const std::vector<sim::Vec2> clients = {{9.5, 4.0}, {5.0, 7.5}, {13.0, 6.0}};
  std::vector<double> errors;
  for (const sim::Vec2& client : clients) {
    const auto ms = sim::generate_measurements(tb, client, cfg, rng);
    std::vector<loc::ApObservation> obs;
    for (const auto& m : ms) {
      const music::SpotfiResult r =
          music::spotfi_estimate(m.burst.csi, music::SpotfiConfig{}, cfg.array);
      if (!r.valid) continue;
      obs.push_back({m.pose, r.direct_aoa_deg, m.rssi_weight});
    }
    const loc::LocalizeResult fix = loc::localize(obs, loc_config(tb));
    ASSERT_TRUE(fix.valid);
    errors.push_back(channel::distance(fix.position, client));
  }
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[1], 3.0);  // median of three
}

TEST(EndToEnd, ArrayTrackLocalizesCoarselyAtHighSnr) {
  const sim::Testbed tb = sim::make_paper_testbed();
  auto rng = rt::make_rng(504);
  const sim::Vec2 client{8.0, 8.0};
  sim::ScenarioConfig cfg;
  cfg.num_packets = 15;
  cfg.snr_band = sim::SnrBand::kHigh;
  const auto ms = sim::generate_measurements(tb, client, cfg, rng);
  std::vector<loc::ApObservation> obs;
  for (const auto& m : ms) {
    const music::ArrayTrackResult r = music::arraytrack_estimate(
        m.burst.csi, music::ArrayTrackConfig{}, cfg.array);
    if (!r.valid) continue;
    obs.push_back({m.pose, r.direct_aoa_deg, m.rssi_weight});
  }
  const loc::LocalizeResult fix = loc::localize(obs, loc_config(tb));
  ASSERT_TRUE(fix.valid);
  // ArrayTrack's aperture is tiny; the paper reports 2.3 m median even
  // at high SNR. Just require a sane fix.
  EXPECT_LT(channel::distance(fix.position, client), 6.0);
}

TEST(EndToEnd, GroundTruthAnglesGiveDecimeterFix) {
  // Upper-bound sanity: with perfect AoAs the localization grid search
  // is the only error source.
  const sim::Testbed tb = sim::make_paper_testbed();
  auto rng = rt::make_rng(505);
  const sim::Vec2 client{13.0, 9.0};
  sim::ScenarioConfig cfg;
  const auto ms = sim::generate_measurements(tb, client, cfg, rng);
  std::vector<loc::ApObservation> obs;
  for (const auto& m : ms) {
    obs.push_back({m.pose, m.true_direct_aoa_deg, m.rssi_weight});
  }
  const loc::LocalizeResult fix = loc::localize(obs, loc_config(tb));
  ASSERT_TRUE(fix.valid);
  EXPECT_LT(channel::distance(fix.position, client), 0.15);
}

TEST(EndToEnd, SingleMeasurementPerApStillWorks) {
  // ROArray's single-packet claim, end to end.
  const sim::Testbed tb = sim::make_paper_testbed();
  auto rng = rt::make_rng(506);
  const sim::Vec2 client{10.0, 6.0};
  sim::ScenarioConfig cfg;
  cfg.num_packets = 1;
  cfg.snr_band = sim::SnrBand::kHigh;
  const auto ms = sim::generate_measurements(tb, client, cfg, rng);
  core::RoArrayConfig rcfg;
  rcfg.solver.max_iterations = 300;
  const loc::LocalizeResult fix = localize_roarray(tb, ms, rcfg, cfg.array);
  ASSERT_TRUE(fix.valid);
  EXPECT_LT(channel::distance(fix.position, client), 2.0);
}

}  // namespace
}  // namespace roarray
