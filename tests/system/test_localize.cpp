#include "loc/localize.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "sim/testbed.hpp"

namespace roarray::loc {
namespace {

LocalizeConfig paper_config() {
  LocalizeConfig cfg;
  cfg.room = channel::Room{18.0, 12.0};
  cfg.grid_step_m = 0.1;
  return cfg;
}

/// Observations with perfect AoAs for a target from the paper testbed.
std::vector<ApObservation> perfect_observations(const Vec2& target,
                                                std::size_t num_aps) {
  const sim::Testbed tb = sim::make_paper_testbed();
  std::vector<ApObservation> obs;
  for (std::size_t i = 0; i < std::min(num_aps, tb.aps.size()); ++i) {
    ApObservation o;
    o.pose = tb.aps[i];
    o.aoa_deg = tb.aps[i].aoa_of_point(target);
    o.weight = 1.0;
    obs.push_back(o);
  }
  return obs;
}

TEST(Localize, PerfectAoasRecoverTargetToGridResolution) {
  const Vec2 target{7.3, 4.8};
  const auto obs = perfect_observations(target, 6);
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.position.x, target.x, 0.15);
  EXPECT_NEAR(r.position.y, target.y, 0.15);
}

TEST(Localize, EmptyObservationsInvalid) {
  const LocalizeResult r = localize({}, paper_config());
  EXPECT_FALSE(r.valid);
}

TEST(Localize, BadGridStepThrows) {
  LocalizeConfig cfg = paper_config();
  cfg.grid_step_m = 0.0;
  EXPECT_THROW(localize(perfect_observations({5, 5}, 3), cfg),
               std::invalid_argument);
}

TEST(Localize, TwoApsSufficeWithPerfectAngles) {
  const Vec2 target{12.0, 7.0};
  const auto obs = perfect_observations(target, 2);
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  // ULA mirror ambiguity can allow multiple optima; with the paper
  // testbed poses the target side is identifiable for interior points.
  EXPECT_NEAR(r.position.x, target.x, 0.5);
  EXPECT_NEAR(r.position.y, target.y, 0.5);
}

TEST(Localize, WeightsArbitrateConflictingAoas) {
  // Two APs vote for different targets; the heavier one must win.
  const Vec2 target_a{5.0, 5.0};
  const Vec2 target_b{14.0, 8.0};
  const sim::Testbed tb = sim::make_paper_testbed();
  std::vector<ApObservation> obs;
  // Three APs for target A with high weight.
  for (int i = 0; i < 3; ++i) {
    ApObservation o;
    o.pose = tb.aps[static_cast<std::size_t>(i)];
    o.aoa_deg = o.pose.aoa_of_point(target_a);
    o.weight = 10.0;
    obs.push_back(o);
  }
  // Three APs for target B with tiny weight.
  for (int i = 3; i < 6; ++i) {
    ApObservation o;
    o.pose = tb.aps[static_cast<std::size_t>(i)];
    o.aoa_deg = o.pose.aoa_of_point(target_b);
    o.weight = 0.01;
    obs.push_back(o);
  }
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  EXPECT_LT(channel::distance(r.position, target_a), 1.0);
}

TEST(Localize, NoisyAnglesDegradeGracefully) {
  const Vec2 target{9.0, 6.0};
  auto obs = perfect_observations(target, 6);
  // Bias every AoA by 5 degrees.
  for (auto& o : obs) o.aoa_deg = std::min(180.0, o.aoa_deg + 5.0);
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  const double err = channel::distance(r.position, target);
  EXPECT_GT(err, 0.05);  // not exact anymore
  EXPECT_LT(err, 3.0);   // but bounded
}

TEST(Localize, CostIsZeroForConsistentObservations) {
  const Vec2 target{6.0, 6.0};
  const auto obs = perfect_observations(target, 6);
  const LocalizeResult r = localize(obs, paper_config());
  // Grid point nearest to the target has near-zero cost.
  EXPECT_LT(r.cost, 10.0);
}

// Regression: all-zero (or otherwise degenerate) RSSI weights used to
// make every grid candidate cost 0, silently returning a "valid" (0, 0)
// fix; a NaN weight likewise poisoned the scan but still reported
// valid. Both must now surface as a typed error.
TEST(Localize, AllZeroWeightsAreATypedErrorNotABogusFix) {
  auto obs = perfect_observations({7.0, 5.0}, 5);
  for (auto& o : obs) o.weight = 0.0;
  const LocalizeResult r = localize(obs, paper_config());
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.status, LocalizeStatus::kDegenerateWeights);
  EXPECT_FALSE(r.used_fusion);
}

TEST(Localize, NanWeightsAreATypedErrorNotABogusFix) {
  auto obs = perfect_observations({7.0, 5.0}, 5);
  for (auto& o : obs) o.weight = std::nan("");
  const LocalizeResult r = localize(obs, paper_config());
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.status, LocalizeStatus::kDegenerateWeights);
}

TEST(Localize, DegenerateObservationsAreScreenedNotFatal) {
  // Two poisoned observations ride along with four good ones: the round
  // still resolves, and the fused diagnostics stay aligned with the
  // caller's indices (screened slots keep default entries).
  const Vec2 target{7.3, 4.8};
  auto obs = perfect_observations(target, 6);
  obs[1].weight = 0.0;
  obs[4].weight = std::nan("");
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.status, LocalizeStatus::kOk);
  EXPECT_NEAR(r.position.x, target.x, 0.15);
  EXPECT_NEAR(r.position.y, target.y, 0.15);
  ASSERT_TRUE(r.used_fusion);
  ASSERT_EQ(r.fusion.per_ap.size(), obs.size());
  EXPECT_FALSE(r.fusion.per_ap[1].inlier);
  EXPECT_FALSE(r.fusion.per_ap[4].inlier);
  EXPECT_TRUE(r.fusion.per_ap[0].inlier);
}

TEST(Localize, StatusNamesAreStable) {
  EXPECT_STREQ(localize_status_name(LocalizeStatus::kOk), "ok");
  EXPECT_STREQ(localize_status_name(LocalizeStatus::kNoObservations),
               "no-observations");
  EXPECT_STREQ(localize_status_name(LocalizeStatus::kDegenerateWeights),
               "degenerate-weights");
}

TEST(Localize, EmptyStatusIsNoObservations) {
  const LocalizeResult r = localize({}, paper_config());
  EXPECT_EQ(r.status, LocalizeStatus::kNoObservations);
}

// The robust layer's acceptance story at the localize API: one blocked
// AP (confidently wrong AoA) barely moves the robust fix while the
// naive argmin visibly drifts.
TEST(Localize, RobustFixShrugsOffOneLyingApWhereNaiveDrifts) {
  const Vec2 target{11.0, 7.5};
  auto obs = perfect_observations(target, 5);
  obs[2].aoa_deg = std::min(180.0, obs[2].aoa_deg + 30.0);

  LocalizeConfig naive_cfg = paper_config();
  naive_cfg.robust = false;
  const LocalizeResult naive = localize(obs, naive_cfg);
  const LocalizeResult robust = localize(obs, paper_config());
  ASSERT_TRUE(naive.valid);
  ASSERT_TRUE(robust.valid);
  ASSERT_TRUE(robust.used_fusion);
  const double naive_err = channel::distance(naive.position, target);
  const double robust_err = channel::distance(robust.position, target);
  EXPECT_LT(robust_err, 0.2);
  EXPECT_LT(robust_err, naive_err);
  EXPECT_FALSE(robust.fusion.per_ap[2].inlier);
}

class LocalizeTargetSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LocalizeTargetSweep, InteriorTargetsRecovered) {
  const auto [x, y] = GetParam();
  const Vec2 target{x, y};
  const auto obs = perfect_observations(target, 6);
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  EXPECT_LT(channel::distance(r.position, target), 0.3)
      << "target (" << x << ", " << y << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Targets, LocalizeTargetSweep,
    ::testing::Values(std::pair<double, double>{2.0, 2.0},
                      std::pair<double, double>{16.0, 10.0},
                      std::pair<double, double>{9.0, 6.0},
                      std::pair<double, double>{3.5, 9.5},
                      std::pair<double, double>{14.2, 2.7}));

}  // namespace
}  // namespace roarray::loc
