#include "loc/localize.hpp"

#include <gtest/gtest.h>

#include "sim/testbed.hpp"

namespace roarray::loc {
namespace {

LocalizeConfig paper_config() {
  LocalizeConfig cfg;
  cfg.room = channel::Room{18.0, 12.0};
  cfg.grid_step_m = 0.1;
  return cfg;
}

/// Observations with perfect AoAs for a target from the paper testbed.
std::vector<ApObservation> perfect_observations(const Vec2& target,
                                                std::size_t num_aps) {
  const sim::Testbed tb = sim::make_paper_testbed();
  std::vector<ApObservation> obs;
  for (std::size_t i = 0; i < std::min(num_aps, tb.aps.size()); ++i) {
    ApObservation o;
    o.pose = tb.aps[i];
    o.aoa_deg = tb.aps[i].aoa_of_point(target);
    o.weight = 1.0;
    obs.push_back(o);
  }
  return obs;
}

TEST(Localize, PerfectAoasRecoverTargetToGridResolution) {
  const Vec2 target{7.3, 4.8};
  const auto obs = perfect_observations(target, 6);
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.position.x, target.x, 0.15);
  EXPECT_NEAR(r.position.y, target.y, 0.15);
}

TEST(Localize, EmptyObservationsInvalid) {
  const LocalizeResult r = localize({}, paper_config());
  EXPECT_FALSE(r.valid);
}

TEST(Localize, BadGridStepThrows) {
  LocalizeConfig cfg = paper_config();
  cfg.grid_step_m = 0.0;
  EXPECT_THROW(localize(perfect_observations({5, 5}, 3), cfg),
               std::invalid_argument);
}

TEST(Localize, TwoApsSufficeWithPerfectAngles) {
  const Vec2 target{12.0, 7.0};
  const auto obs = perfect_observations(target, 2);
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  // ULA mirror ambiguity can allow multiple optima; with the paper
  // testbed poses the target side is identifiable for interior points.
  EXPECT_NEAR(r.position.x, target.x, 0.5);
  EXPECT_NEAR(r.position.y, target.y, 0.5);
}

TEST(Localize, WeightsArbitrateConflictingAoas) {
  // Two APs vote for different targets; the heavier one must win.
  const Vec2 target_a{5.0, 5.0};
  const Vec2 target_b{14.0, 8.0};
  const sim::Testbed tb = sim::make_paper_testbed();
  std::vector<ApObservation> obs;
  // Three APs for target A with high weight.
  for (int i = 0; i < 3; ++i) {
    ApObservation o;
    o.pose = tb.aps[static_cast<std::size_t>(i)];
    o.aoa_deg = o.pose.aoa_of_point(target_a);
    o.weight = 10.0;
    obs.push_back(o);
  }
  // Three APs for target B with tiny weight.
  for (int i = 3; i < 6; ++i) {
    ApObservation o;
    o.pose = tb.aps[static_cast<std::size_t>(i)];
    o.aoa_deg = o.pose.aoa_of_point(target_b);
    o.weight = 0.01;
    obs.push_back(o);
  }
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  EXPECT_LT(channel::distance(r.position, target_a), 1.0);
}

TEST(Localize, NoisyAnglesDegradeGracefully) {
  const Vec2 target{9.0, 6.0};
  auto obs = perfect_observations(target, 6);
  // Bias every AoA by 5 degrees.
  for (auto& o : obs) o.aoa_deg = std::min(180.0, o.aoa_deg + 5.0);
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  const double err = channel::distance(r.position, target);
  EXPECT_GT(err, 0.05);  // not exact anymore
  EXPECT_LT(err, 3.0);   // but bounded
}

TEST(Localize, CostIsZeroForConsistentObservations) {
  const Vec2 target{6.0, 6.0};
  const auto obs = perfect_observations(target, 6);
  const LocalizeResult r = localize(obs, paper_config());
  // Grid point nearest to the target has near-zero cost.
  EXPECT_LT(r.cost, 10.0);
}

class LocalizeTargetSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LocalizeTargetSweep, InteriorTargetsRecovered) {
  const auto [x, y] = GetParam();
  const Vec2 target{x, y};
  const auto obs = perfect_observations(target, 6);
  const LocalizeResult r = localize(obs, paper_config());
  ASSERT_TRUE(r.valid);
  EXPECT_LT(channel::distance(r.position, target), 0.3)
      << "target (" << x << ", " << y << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Targets, LocalizeTargetSweep,
    ::testing::Values(std::pair<double, double>{2.0, 2.0},
                      std::pair<double, double>{16.0, 10.0},
                      std::pair<double, double>{9.0, 6.0},
                      std::pair<double, double>{3.5, 9.5},
                      std::pair<double, double>{14.2, 2.7}));

}  // namespace
}  // namespace roarray::loc
