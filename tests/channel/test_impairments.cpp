// Impairment-physics tests: antenna gains, polarization deviation,
// path-phase jitter — each must produce its documented physical effect.
#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "../test_util.hpp"

namespace roarray::channel {
namespace {

namespace rt = roarray::testing;
using linalg::CMat;
using linalg::cxd;
using linalg::index_t;

const dsp::ArrayConfig kArray;

std::vector<Path> one_path() {
  Path p;
  p.aoa_deg = 100.0;
  p.toa_s = 80e-9;
  p.gain = cxd{1.0, 0.0};
  return {p};
}

TEST(Impairments, AntennaGainsScaleRows) {
  CsiImpairments imp;
  imp.antenna_gains = {cxd{2.0, 0.0}, cxd{1.0, 0.0}, cxd{0.0, 0.5}};
  const CMat with = synthesize_csi(one_path(), kArray, imp);
  const CMat clean = synthesize_csi(one_path(), kArray);
  for (index_t s = 0; s < kArray.num_subcarriers; ++s) {
    EXPECT_NEAR(std::abs(with(0, s)), 2.0 * std::abs(clean(0, s)), 1e-12);
    EXPECT_NEAR(std::abs(with(2, s)), 0.5 * std::abs(clean(2, s)), 1e-12);
  }
}

TEST(Impairments, WrongGainCountThrows) {
  CsiImpairments imp;
  imp.antenna_gains = {cxd{1.0, 0.0}};
  EXPECT_THROW(synthesize_csi(one_path(), kArray, imp), std::invalid_argument);
}

TEST(Impairments, PolarizationDeviationLowersRealizedSnr) {
  // With deviation, signal power drops ~cos^2 while noise stays fixed:
  // the realized SNR of the burst must be lower.
  auto measure_noise_ratio = [&](double dev_rad) {
    auto rng = rt::make_rng(931);
    BurstConfig cfg;
    cfg.num_packets = 20;
    cfg.snr_db = 15.0;
    cfg.max_detection_delay_s = 0.0;
    cfg.polarization_deviation_rad = dev_rad;
    const PacketBurst b = generate_burst(one_path(), kArray, cfg, rng);
    // Signal power of the realized (attenuated) mean CSI vs noise sigma.
    double sig = 0.0;
    for (const auto& csi : b.csi) sig += mean_power(csi);
    return (sig / static_cast<double>(b.csi.size())) /
           (b.noise_sigma * b.noise_sigma);
  };
  const double clean = measure_noise_ratio(0.0);
  const double tilted = measure_noise_ratio(dsp::deg_to_rad(45.0));
  EXPECT_GT(clean, 1.8 * tilted);
}

TEST(Impairments, PolarizationDeviationDistortsManifold) {
  // Per-antenna ratios across a burst must deviate from the clean
  // steering ratios when the client antenna is tilted.
  auto rng = rt::make_rng(932);
  BurstConfig cfg;
  cfg.num_packets = 1;
  cfg.snr_db = 60.0;  // effectively noiseless
  cfg.max_detection_delay_s = 0.0;
  cfg.polarization_deviation_rad = dsp::deg_to_rad(40.0);
  const PacketBurst tilted = generate_burst(one_path(), kArray, cfg, rng);
  const CMat clean = synthesize_csi(one_path(), kArray);
  double max_ratio_dev = 0.0;
  for (index_t s = 0; s < kArray.num_subcarriers; ++s) {
    for (index_t a = 1; a < kArray.num_antennas; ++a) {
      const cxd r_clean = clean(a, s) / clean(0, s);
      const cxd r_tilt = tilted.csi[0](a, s) / tilted.csi[0](0, s);
      max_ratio_dev = std::max(max_ratio_dev, std::abs(r_clean - r_tilt));
    }
  }
  EXPECT_GT(max_ratio_dev, 0.05);
}

TEST(Impairments, ZeroDeviationLeavesBurstClean) {
  auto rng1 = rt::make_rng(933);
  auto rng2 = rt::make_rng(933);
  BurstConfig with;
  with.polarization_deviation_rad = 0.0;
  BurstConfig without;
  const PacketBurst a = generate_burst(one_path(), kArray, with, rng1);
  const PacketBurst b = generate_burst(one_path(), kArray, without, rng2);
  rt::expect_mat_near(a.csi[0], b.csi[0], 0.0, "zero deviation is a no-op");
}

TEST(Impairments, PhaseJitterDecorrelatesPackets) {
  // Cross-packet correlation of the stacked CSI drops when jitter grows.
  auto correlation_at = [&](double jitter) {
    Path p1;
    p1.aoa_deg = 100.0;
    p1.toa_s = 80e-9;
    p1.gain = cxd{1.0, 0.0};
    Path p2;
    p2.aoa_deg = 40.0;
    p2.toa_s = 250e-9;
    p2.gain = cxd{0.8, 0.3};
    auto rng = rt::make_rng(934);
    BurstConfig cfg;
    cfg.num_packets = 2;
    cfg.snr_db = 60.0;
    cfg.max_detection_delay_s = 0.0;
    cfg.path_phase_jitter_rad = jitter;
    const PacketBurst b = generate_burst({p1, p2}, kArray, cfg, rng);
    cxd acc{};
    double n1 = 0.0, n2 = 0.0;
    for (index_t s = 0; s < kArray.num_subcarriers; ++s) {
      for (index_t a = 0; a < kArray.num_antennas; ++a) {
        acc += std::conj(b.csi[0](a, s)) * b.csi[1](a, s);
        n1 += std::norm(b.csi[0](a, s));
        n2 += std::norm(b.csi[1](a, s));
      }
    }
    return std::abs(acc) / std::sqrt(n1 * n2);
  };
  EXPECT_NEAR(correlation_at(0.0), 1.0, 1e-4);  // 60 dB still adds tiny noise
  EXPECT_LT(correlation_at(1.5), 0.995);
}

TEST(Impairments, CombinedImpairmentsCompose) {
  // All impairments at once must not throw and must keep finite values.
  auto rng = rt::make_rng(935);
  BurstConfig cfg;
  cfg.num_packets = 4;
  cfg.snr_db = 5.0;
  cfg.max_detection_delay_s = 150e-9;
  cfg.antenna_phase_offsets_rad = {0.0, 1.0, 2.0};
  cfg.antenna_gains = {cxd{1.1, 0.0}, cxd{0.9, 0.0}, cxd{1.0, 0.05}};
  cfg.polarization_scale = 0.8;
  cfg.polarization_deviation_rad = 0.3;
  cfg.path_phase_jitter_rad = 0.4;
  const PacketBurst b = generate_burst(one_path(), kArray, cfg, rng);
  for (const auto& csi : b.csi) {
    for (index_t s = 0; s < csi.cols(); ++s) {
      for (index_t a = 0; a < csi.rows(); ++a) {
        EXPECT_TRUE(std::isfinite(csi(a, s).real()));
        EXPECT_TRUE(std::isfinite(csi(a, s).imag()));
      }
    }
  }
}

TEST(Impairments, ScattererPathsHaveCorrectGeometry) {
  const Room room{18.0, 12.0};
  const ApPose ap{{1.0, 6.0}, 90.0};
  const Vec2 client{9.0, 6.0};
  const Vec2 scatterer{5.0, 9.0};
  MultipathConfig cfg;
  cfg.max_reflections = 0;  // direct + scatterer only
  const std::vector<Vec2> scatterers = {scatterer};
  const auto paths = trace_paths(room, ap, client, cfg, kArray, scatterers);
  ASSERT_EQ(paths.size(), 2u);
  const Path& sc = paths.back();
  const double expect_len = distance(client, scatterer) + distance(scatterer, ap.position);
  EXPECT_NEAR(sc.length_m, expect_len, 1e-9);
  EXPECT_NEAR(sc.aoa_deg, ap.aoa_of_direction(scatterer - ap.position), 1e-9);
  EXPECT_EQ(sc.reflections, 1);
  EXPECT_GT(sc.toa_s, paths.front().toa_s);
}

TEST(Impairments, ScattererOutsideRoomThrows) {
  const Room room{18.0, 12.0};
  const ApPose ap{{1.0, 6.0}, 90.0};
  const std::vector<Vec2> bad = {{30.0, 5.0}};
  EXPECT_THROW(
      trace_paths(room, ap, {9.0, 6.0}, MultipathConfig{}, kArray, bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace roarray::channel
