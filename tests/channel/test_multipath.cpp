#include "channel/multipath.hpp"

#include <gtest/gtest.h>

#include "dsp/constants.hpp"

namespace roarray::channel {
namespace {

const Room kRoom{18.0, 12.0};
const dsp::ArrayConfig kArray;

TEST(Multipath, DirectPathIsFirstAndMatchesGeometry) {
  const ApPose ap{{1.0, 6.0}, 90.0};
  const Vec2 client{10.0, 6.0};
  const auto paths = trace_paths(kRoom, ap, client, MultipathConfig{}, kArray);
  ASSERT_FALSE(paths.empty());
  const Path& direct = paths.front();
  EXPECT_EQ(direct.reflections, 0);
  EXPECT_NEAR(direct.length_m, 9.0, 1e-9);
  EXPECT_NEAR(direct.toa_s, 9.0 / dsp::kSpeedOfLight, 1e-15);
  EXPECT_NEAR(direct.aoa_deg, ap.aoa_of_point(client), 1e-9);
}

TEST(Multipath, PathsSortedByToa) {
  const ApPose ap{{2.0, 3.0}, 0.0};
  const Vec2 client{14.0, 9.0};
  MultipathConfig cfg;
  cfg.max_reflections = 2;
  const auto paths = trace_paths(kRoom, ap, client, cfg, kArray);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].toa_s, paths[i].toa_s);
  }
}

TEST(Multipath, DirectPathHasSmallestToa) {
  const ApPose ap{{0.5, 6.0}, 90.0};
  const Vec2 client{9.0, 4.0};
  MultipathConfig cfg;
  cfg.max_reflections = 2;
  const auto paths = trace_paths(kRoom, ap, client, cfg, kArray);
  EXPECT_EQ(paths.front().reflections, 0);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GT(paths[i].toa_s, paths.front().toa_s);
  }
}

TEST(Multipath, FirstOrderGivesUpToFivePaths) {
  const ApPose ap{{1.0, 1.0}, 0.0};
  const Vec2 client{16.0, 10.0};
  MultipathConfig cfg;
  cfg.max_reflections = 1;
  cfg.min_rel_amplitude = 0.0;
  const auto paths = trace_paths(kRoom, ap, client, cfg, kArray);
  EXPECT_EQ(paths.size(), 5u);  // direct + 4 walls
}

TEST(Multipath, ZeroReflectionsGivesDirectOnly) {
  const ApPose ap{{1.0, 1.0}, 0.0};
  const Vec2 client{16.0, 10.0};
  MultipathConfig cfg;
  cfg.max_reflections = 0;
  const auto paths = trace_paths(kRoom, ap, client, cfg, kArray);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].reflections, 0);
}

TEST(Multipath, ReflectedAmplitudesAreWeaker) {
  const ApPose ap{{1.0, 6.0}, 90.0};
  const Vec2 client{9.0, 6.0};
  const auto paths = trace_paths(kRoom, ap, client, MultipathConfig{}, kArray);
  const double direct_amp = std::abs(paths.front().gain);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LT(std::abs(paths[i].gain), direct_amp);
  }
}

TEST(Multipath, AmplitudeFollowsInverseDistance) {
  const ApPose ap{{1.0, 6.0}, 90.0};
  MultipathConfig cfg;
  cfg.max_reflections = 0;
  const auto near = trace_paths(kRoom, ap, {3.0, 6.0}, cfg, kArray);
  const auto far = trace_paths(kRoom, ap, {9.0, 6.0}, cfg, kArray);
  // 2 m vs 8 m: amplitude ratio 4.
  EXPECT_NEAR(std::abs(near[0].gain) / std::abs(far[0].gain), 4.0, 1e-9);
}

TEST(Multipath, ReflectionLossScalesBouncedPaths) {
  const ApPose ap{{4.0, 6.0}, 90.0};
  const Vec2 client{14.0, 6.0};
  MultipathConfig lossy;
  lossy.reflection_loss = 0.2;
  lossy.min_rel_amplitude = 0.0;
  MultipathConfig strong;
  strong.reflection_loss = 0.8;
  strong.min_rel_amplitude = 0.0;
  const auto p_lossy = trace_paths(kRoom, ap, client, lossy, kArray);
  const auto p_strong = trace_paths(kRoom, ap, client, strong, kArray);
  ASSERT_EQ(p_lossy.size(), p_strong.size());
  for (std::size_t i = 0; i < p_lossy.size(); ++i) {
    if (p_lossy[i].reflections == 1) {
      EXPECT_NEAR(std::abs(p_strong[i].gain) / std::abs(p_lossy[i].gain), 4.0,
                  1e-9);
    }
  }
}

TEST(Multipath, WeakPathFilterPrunes) {
  const ApPose ap{{1.0, 6.0}, 90.0};
  const Vec2 client{2.0, 6.0};  // very close: direct dominates
  MultipathConfig cfg;
  cfg.max_reflections = 2;
  cfg.min_rel_amplitude = 0.5;  // aggressive pruning
  const auto paths = trace_paths(kRoom, ap, client, cfg, kArray);
  EXPECT_LT(paths.size(), 17u);
  for (const Path& p : paths) {
    EXPECT_GE(std::abs(p.gain), 0.5 * std::abs(paths.front().gain) - 1e-12);
  }
}

TEST(Multipath, SecondOrderSparsityMatchesPaperAssumption) {
  // The dominant-path count should stay small (~5), per the paper.
  const ApPose ap{{0.5, 6.0}, 90.0};
  const Vec2 client{12.0, 8.0};
  MultipathConfig cfg;
  cfg.max_reflections = 2;
  cfg.min_rel_amplitude = 0.15;  // "dominant" = within ~16 dB of strongest
  const auto paths = trace_paths(kRoom, ap, client, cfg, kArray);
  EXPECT_GE(paths.size(), 3u);
  EXPECT_LE(paths.size(), 10u);
}

TEST(Multipath, EndpointsOutsideRoomThrow) {
  const ApPose inside{{1.0, 1.0}, 0.0};
  EXPECT_THROW(
      trace_paths(kRoom, inside, {30.0, 5.0}, MultipathConfig{}, kArray),
      std::invalid_argument);
  const ApPose outside{{-1.0, 1.0}, 0.0};
  EXPECT_THROW(
      trace_paths(kRoom, outside, {5.0, 5.0}, MultipathConfig{}, kArray),
      std::invalid_argument);
}

TEST(Multipath, ConfigValidation) {
  MultipathConfig cfg;
  cfg.max_reflections = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = MultipathConfig{};
  cfg.reflection_loss = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = MultipathConfig{};
  cfg.amplitude_at_1m = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Multipath, WallReflectionAoaMatchesImagePoint) {
  // Reflection off y=0 wall: image of client (9, 4) is (9, -4).
  const ApPose ap{{1.0, 2.0}, 0.0};
  const Vec2 client{9.0, 4.0};
  MultipathConfig cfg;
  cfg.max_reflections = 1;
  cfg.min_rel_amplitude = 0.0;
  const auto paths = trace_paths(kRoom, ap, client, cfg, kArray);
  const double expect_len = distance(ap.position, {9.0, -4.0});
  bool found = false;
  for (const Path& p : paths) {
    if (p.reflections == 1 && std::abs(p.length_m - expect_len) < 1e-9) {
      found = true;
      EXPECT_NEAR(p.aoa_deg, ap.aoa_of_direction(Vec2{9.0, -4.0} - ap.position),
                  1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Multipath, TotalPowerPositiveAndDominatedByDirect) {
  const ApPose ap{{0.5, 6.0}, 90.0};
  const Vec2 client{6.0, 6.0};
  const auto paths = trace_paths(kRoom, ap, client, MultipathConfig{}, kArray);
  const double total = total_path_power(paths);
  EXPECT_GT(total, 0.0);
  EXPECT_GT(std::norm(paths.front().gain) / total, 0.4);
}

}  // namespace
}  // namespace roarray::channel
