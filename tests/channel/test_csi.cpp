#include "channel/csi.hpp"

#include <gtest/gtest.h>

#include "dsp/steering.hpp"
#include "../test_util.hpp"

namespace roarray::channel {
namespace {

using linalg::CMat;
using linalg::cxd;
using linalg::index_t;

const dsp::ArrayConfig kArray;

Path make_path(double aoa, double toa, cxd gain) {
  Path p;
  p.aoa_deg = aoa;
  p.toa_s = toa;
  p.gain = gain;
  return p;
}

TEST(Csi, SinglePathMatchesSteeringModel) {
  const auto paths = std::vector<Path>{make_path(72.0, 150e-9, cxd{0.8, 0.4})};
  const CMat c = synthesize_csi(paths, kArray);
  ASSERT_EQ(c.rows(), 3);
  ASSERT_EQ(c.cols(), 30);
  const cxd lam = dsp::lambda_aoa(72.0, kArray.spacing_over_wavelength());
  const cxd gam = dsp::gamma_toa(150e-9, kArray.subcarrier_spacing_hz);
  for (index_t l = 0; l < 30; ++l) {
    for (index_t m = 0; m < 3; ++m) {
      const cxd expect = paths[0].gain * std::pow(lam, static_cast<double>(m)) *
                         std::pow(gam, static_cast<double>(l));
      EXPECT_NEAR(std::abs(c(m, l) - expect), 0.0, 1e-9);
    }
  }
}

TEST(Csi, SuperpositionOfPaths) {
  const std::vector<Path> p1{make_path(30.0, 50e-9, cxd{1.0, 0.0})};
  const std::vector<Path> p2{make_path(120.0, 240e-9, cxd{0.3, -0.2})};
  std::vector<Path> both = p1;
  both.push_back(p2[0]);
  CMat sum = synthesize_csi(p1, kArray);
  sum += synthesize_csi(p2, kArray);
  roarray::testing::expect_mat_near(synthesize_csi(both, kArray), sum, 1e-10,
                                    "superposition");
}

TEST(Csi, DetectionDelayShiftsAllToas) {
  const auto paths = std::vector<Path>{make_path(72.0, 100e-9, cxd{1.0, 0.0})};
  CsiImpairments imp;
  imp.detection_delay_s = 60e-9;
  const CMat delayed = synthesize_csi(paths, kArray, imp);
  const auto shifted = std::vector<Path>{make_path(72.0, 160e-9, cxd{1.0, 0.0})};
  roarray::testing::expect_mat_near(delayed, synthesize_csi(shifted, kArray),
                                    1e-10, "delay equals ToA shift");
}

TEST(Csi, AntennaPhaseOffsetsRotateRows) {
  const auto paths = std::vector<Path>{make_path(85.0, 90e-9, cxd{1.0, 0.0})};
  CsiImpairments imp;
  imp.antenna_phase_offsets_rad = {0.0, 1.1, -0.7};
  const CMat with_off = synthesize_csi(paths, kArray, imp);
  const CMat clean = synthesize_csi(paths, kArray);
  for (index_t l = 0; l < 30; ++l) {
    for (index_t m = 0; m < 3; ++m) {
      const cxd expect = clean(m, l) * std::polar(1.0, imp.antenna_phase_offsets_rad[
          static_cast<std::size_t>(m)]);
      EXPECT_NEAR(std::abs(with_off(m, l) - expect), 0.0, 1e-10);
    }
  }
}

TEST(Csi, WrongOffsetCountThrows) {
  const auto paths = std::vector<Path>{make_path(85.0, 90e-9, cxd{1.0, 0.0})};
  CsiImpairments imp;
  imp.antenna_phase_offsets_rad = {0.0, 1.0};  // 2 offsets for 3 antennas
  EXPECT_THROW(synthesize_csi(paths, kArray, imp), std::invalid_argument);
}

TEST(Csi, PolarizationScaleAttenuates) {
  const auto paths = std::vector<Path>{make_path(85.0, 90e-9, cxd{1.0, 0.0})};
  CsiImpairments imp;
  imp.polarization_scale = 0.5;
  const CMat scaled = synthesize_csi(paths, kArray, imp);
  const CMat clean = synthesize_csi(paths, kArray);
  EXPECT_NEAR(mean_power(scaled), 0.25 * mean_power(clean), 1e-12);
  imp.polarization_scale = 0.0;
  EXPECT_THROW(synthesize_csi(paths, kArray, imp), std::invalid_argument);
  imp.polarization_scale = 1.5;
  EXPECT_THROW(synthesize_csi(paths, kArray, imp), std::invalid_argument);
}

TEST(Csi, AddNoiseHitsTargetSnr) {
  auto rng = roarray::testing::make_rng(99);
  const auto paths = std::vector<Path>{make_path(100.0, 70e-9, cxd{1.0, 0.0})};
  // Average the realized SNR over many draws.
  const double snr_db = 10.0;
  double noise_acc = 0.0;
  const int trials = 200;
  const CMat clean = synthesize_csi(paths, kArray);
  const double sig_power = mean_power(clean);
  for (int t = 0; t < trials; ++t) {
    CMat noisy = clean;
    add_noise(noisy, snr_db, rng);
    CMat diff = noisy;
    diff -= clean;
    noise_acc += mean_power(diff);
  }
  const double realized_snr =
      10.0 * std::log10(sig_power / (noise_acc / trials));
  EXPECT_NEAR(realized_snr, snr_db, 0.3);
}

TEST(Csi, AddNoiseReturnsSigma) {
  auto rng = roarray::testing::make_rng(7);
  const auto paths = std::vector<Path>{make_path(100.0, 70e-9, cxd{2.0, 0.0})};
  CMat c = synthesize_csi(paths, kArray);
  const double p = mean_power(c);
  const double sigma = add_noise(c, 0.0, rng);  // SNR 0 dB: noise power = signal
  EXPECT_NEAR(sigma, std::sqrt(p), 1e-12);
}

TEST(Csi, RssiMonotoneInPower) {
  const auto strong = std::vector<Path>{make_path(90.0, 50e-9, cxd{2.0, 0.0})};
  const auto weak = std::vector<Path>{make_path(90.0, 50e-9, cxd{0.2, 0.0})};
  EXPECT_GT(rssi_db(synthesize_csi(strong, kArray)),
            rssi_db(synthesize_csi(weak, kArray)));
  // 10x amplitude = 20 dB.
  EXPECT_NEAR(rssi_db(synthesize_csi(strong, kArray)) -
                  rssi_db(synthesize_csi(weak, kArray)),
              20.0, 1e-9);
}

TEST(Burst, GeneratesRequestedPackets) {
  auto rng = roarray::testing::make_rng(11);
  const auto paths = std::vector<Path>{make_path(140.0, 80e-9, cxd{1.0, 0.0})};
  BurstConfig cfg;
  cfg.num_packets = 7;
  const PacketBurst b = generate_burst(paths, kArray, cfg, rng);
  EXPECT_EQ(b.csi.size(), 7u);
  EXPECT_EQ(b.detection_delays.size(), 7u);
  for (double d : b.detection_delays) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, cfg.max_detection_delay_s);
  }
}

TEST(Burst, DelaysVaryAcrossPackets) {
  auto rng = roarray::testing::make_rng(13);
  const auto paths = std::vector<Path>{make_path(140.0, 80e-9, cxd{1.0, 0.0})};
  BurstConfig cfg;
  cfg.num_packets = 10;
  cfg.max_detection_delay_s = 200e-9;
  const PacketBurst b = generate_burst(paths, kArray, cfg, rng);
  double mn = b.detection_delays[0], mx = b.detection_delays[0];
  for (double d : b.detection_delays) {
    mn = std::min(mn, d);
    mx = std::max(mx, d);
  }
  EXPECT_GT(mx - mn, 10e-9);  // almost surely spread out
}

TEST(Burst, InvalidConfigThrows) {
  auto rng = roarray::testing::make_rng(17);
  const auto paths = std::vector<Path>{make_path(140.0, 80e-9, cxd{1.0, 0.0})};
  BurstConfig cfg;
  cfg.num_packets = 0;
  EXPECT_THROW(generate_burst(paths, kArray, cfg, rng), std::invalid_argument);
  cfg = BurstConfig{};
  cfg.max_detection_delay_s = -1e-9;
  EXPECT_THROW(generate_burst(paths, kArray, cfg, rng), std::invalid_argument);
}

TEST(Burst, DeterministicGivenSeed) {
  const auto paths = std::vector<Path>{make_path(140.0, 80e-9, cxd{1.0, 0.0})};
  auto rng1 = roarray::testing::make_rng(23);
  auto rng2 = roarray::testing::make_rng(23);
  const PacketBurst a = generate_burst(paths, kArray, BurstConfig{}, rng1);
  const PacketBurst b = generate_burst(paths, kArray, BurstConfig{}, rng2);
  roarray::testing::expect_mat_near(a.csi[0], b.csi[0], 0.0, "determinism");
}

}  // namespace
}  // namespace roarray::channel
