#include "channel/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "channel/multipath.hpp"
#include "dsp/constants.hpp"

namespace roarray::channel {
namespace {

TEST(Vec2, BasicArithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  const Vec2 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 4.0);
  EXPECT_DOUBLE_EQ(s.y, 1.0);
  const Vec2 d = a - b;
  EXPECT_DOUBLE_EQ(d.x, -2.0);
  const Vec2 m = a * 2.0;
  EXPECT_DOUBLE_EQ(m.y, 4.0);
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

TEST(Vec2, NormalizedZeroThrows) {
  EXPECT_THROW((Vec2{0.0, 0.0}).normalized(), std::domain_error);
  const Vec2 u = Vec2{0.0, 5.0}.normalized();
  EXPECT_DOUBLE_EQ(u.y, 1.0);
}

TEST(Room, ContainsChecksBounds) {
  const Room r{18.0, 12.0};
  EXPECT_TRUE(r.contains({9.0, 6.0}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_FALSE(r.contains({-0.1, 6.0}));
  EXPECT_FALSE(r.contains({9.0, 12.1}));
}

TEST(Room, ValidateRejectsDegenerate) {
  EXPECT_THROW((Room{0.0, 5.0}).validate(), std::invalid_argument);
  EXPECT_THROW((Room{5.0, -1.0}).validate(), std::invalid_argument);
}

TEST(ApPose, AxisUnitFollowsAngle) {
  const ApPose horizontal{{0.0, 0.0}, 0.0};
  EXPECT_NEAR(horizontal.axis_unit().x, 1.0, 1e-12);
  const ApPose vertical{{0.0, 0.0}, 90.0};
  EXPECT_NEAR(vertical.axis_unit().y, 1.0, 1e-12);
}

TEST(ApPose, AoaOfPointBasicAngles) {
  // Horizontal array at origin: a target on +x is endfire (0 deg),
  // a target on +y is broadside (90 deg), a target on -x is 180 deg.
  const ApPose ap{{0.0, 0.0}, 0.0};
  EXPECT_NEAR(ap.aoa_of_point({5.0, 0.0}), 0.0, 1e-9);
  EXPECT_NEAR(ap.aoa_of_point({0.0, 5.0}), 90.0, 1e-9);
  EXPECT_NEAR(ap.aoa_of_point({-5.0, 0.0}), 180.0, 1e-9);
  EXPECT_NEAR(ap.aoa_of_point({5.0, 5.0}), 45.0, 1e-9);
}

TEST(ApPose, AoaIsMirrorSymmetricAboutAxis) {
  // A ULA cannot distinguish a source above the axis from one below.
  const ApPose ap{{0.0, 0.0}, 0.0};
  EXPECT_NEAR(ap.aoa_of_point({3.0, 2.0}), ap.aoa_of_point({3.0, -2.0}), 1e-9);
}

TEST(ApPose, RotatedArrayShiftsReference) {
  const ApPose ap{{2.0, 2.0}, 90.0};  // axis along +y
  EXPECT_NEAR(ap.aoa_of_point({2.0, 8.0}), 0.0, 1e-9);   // along axis
  EXPECT_NEAR(ap.aoa_of_point({8.0, 2.0}), 90.0, 1e-9);  // broadside
}

TEST(ApPose, AoaRangeAlwaysValid) {
  const ApPose ap{{9.0, 6.0}, 37.0};
  for (double x = 0.5; x < 18.0; x += 2.5) {
    for (double y = 0.5; y < 12.0; y += 2.5) {
      if (distance({x, y}, ap.position) < 1e-9) continue;
      const double aoa = ap.aoa_of_point({x, y});
      EXPECT_GE(aoa, 0.0);
      EXPECT_LE(aoa, 180.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Second-order (corner) bounce geometry through trace_paths.

MultipathConfig second_order_config() {
  MultipathConfig cfg;
  cfg.max_reflections = 2;
  cfg.reflection_loss = 0.8;      // keep double bounces above the floor.
  cfg.min_rel_amplitude = 1e-4;
  return cfg;
}

TEST(CornerBounces, EveryPathIsAtLeastAsLongAsTheDirect) {
  const Room room{10.0, 8.0};
  const ApPose ap{{7.5, 5.5}, 20.0};
  const Vec2 client{2.0, 2.5};
  const auto paths = trace_paths(room, ap, client, second_order_config(),
                                 dsp::ArrayConfig{});
  ASSERT_GE(paths.size(), 2u);
  EXPECT_EQ(paths.front().reflections, 0);
  bool saw_double = false;
  for (const Path& p : paths) {
    EXPECT_GE(p.length_m, paths.front().length_m - 1e-12);
    EXPECT_NEAR(p.toa_s, p.length_m / dsp::kSpeedOfLight, 1e-18);
    if (p.reflections == 2) saw_double = true;
  }
  EXPECT_TRUE(saw_double) << "no second-order bounce survived the floor";
}

TEST(CornerBounces, CornerImageMergesBothWallOrdersCoherently) {
  // Mirroring across a vertical and a horizontal wall commutes, so the
  // corner image appears once per wall order; trace_paths must merge
  // the two coincident paths into one with double the single-image
  // amplitude (coherent sum of identical phases).
  const Room room{10.0, 8.0};
  const ApPose ap{{6.0, 4.0}, 0.0};
  const Vec2 client{2.0, 3.0};
  const auto cfg = second_order_config();
  const dsp::ArrayConfig array;
  const auto paths = trace_paths(room, ap, client, cfg, array);

  // Corner image across x=0 then y=0: (-cx, -cy).
  const Vec2 corner_image{-client.x, -client.y};
  const double len = distance(ap.position, corner_image);
  const double expected_amp =
      2.0 * cfg.amplitude_at_1m / len * cfg.reflection_loss * cfg.reflection_loss;
  bool found = false;
  for (const Path& p : paths) {
    if (p.reflections != 2) continue;
    if (std::abs(p.length_m - len) > 1e-9) continue;
    found = true;
    EXPECT_NEAR(std::abs(p.gain), expected_amp, 1e-9);
    EXPECT_NEAR(p.aoa_deg,
                ap.aoa_of_direction(corner_image - ap.position), 1e-9);
  }
  EXPECT_TRUE(found) << "corner double-bounce path missing";

  // Opposite-wall orders do NOT commute: x=0 then x=W translates by
  // +2W while x=W then x=0 translates by -2W, so both images survive
  // as distinct paths (no merge, single-image amplitude).
  const Vec2 left_right{2.0 * room.width_m + client.x, client.y};
  const double lr_len = distance(ap.position, left_right);
  for (const Path& p : paths) {
    if (p.reflections == 2 && std::abs(p.length_m - lr_len) < 1e-9) {
      EXPECT_NEAR(std::abs(p.gain),
                  cfg.amplitude_at_1m / lr_len * cfg.reflection_loss *
                      cfg.reflection_loss,
                  1e-9);
    }
  }
}

TEST(CornerBounces, ClientInCornerStillTracesSortedFinitePaths) {
  const Room room{10.0, 8.0};
  const ApPose ap{{9.0, 7.0}, 0.0};
  const Vec2 client{0.0, 0.0};  // exactly in the corner.
  const auto paths = trace_paths(room, ap, client, second_order_config(),
                                 dsp::ArrayConfig{});
  ASSERT_FALSE(paths.empty());
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].toa_s, paths[i - 1].toa_s);
  }
  for (const Path& p : paths) {
    EXPECT_TRUE(std::isfinite(p.aoa_deg));
    EXPECT_TRUE(std::isfinite(std::abs(p.gain)));
    EXPECT_GE(p.aoa_deg, 0.0);
    EXPECT_LE(p.aoa_deg, 180.0);
  }
}

// ---------------------------------------------------------------------------
// Degenerate scatterer placements.

TEST(Scatterers, CoincidentWithArrayIsSkippedNotFatal) {
  const Room room{10.0, 8.0};
  const ApPose ap{{6.0, 4.0}, 0.0};
  const Vec2 client{2.0, 3.0};
  MultipathConfig cfg;
  cfg.max_reflections = 0;
  const std::vector<Vec2> scatterers{ap.position};
  std::vector<Path> paths;
  ASSERT_NO_THROW(paths = trace_paths(room, ap, client, cfg,
                                      dsp::ArrayConfig{}, scatterers));
  // Only the direct path: the degenerate scatterer contributes nothing.
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths.front().reflections, 0);
}

TEST(Scatterers, CoincidentWithClientIsSkippedNotFatal) {
  const Room room{10.0, 8.0};
  const ApPose ap{{6.0, 4.0}, 0.0};
  const Vec2 client{2.0, 3.0};
  MultipathConfig cfg;
  cfg.max_reflections = 0;
  const std::vector<Vec2> scatterers{client};
  std::vector<Path> paths;
  ASSERT_NO_THROW(paths = trace_paths(room, ap, client, cfg,
                                      dsp::ArrayConfig{}, scatterers));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths.front().reflections, 0);
}

TEST(Scatterers, NearButNotCoincidentStillScatters) {
  const Room room{10.0, 8.0};
  const ApPose ap{{6.0, 4.0}, 0.0};
  const Vec2 client{2.0, 3.0};
  MultipathConfig cfg;
  cfg.max_reflections = 0;
  cfg.min_rel_amplitude = 0.0;
  const std::vector<Vec2> scatterers{{6.0, 4.1}};  // 10 cm off the AP.
  const auto paths =
      trace_paths(room, ap, client, cfg, dsp::ArrayConfig{}, scatterers);
  ASSERT_EQ(paths.size(), 2u);
  const Path& bounce = paths.back();
  EXPECT_EQ(bounce.reflections, 1);
  EXPECT_NEAR(bounce.aoa_deg, 90.0, 1e-9);  // arrives broadside from +y.
}

}  // namespace
}  // namespace roarray::channel
