#include "channel/geometry.hpp"

#include <gtest/gtest.h>

namespace roarray::channel {
namespace {

TEST(Vec2, BasicArithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  const Vec2 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 4.0);
  EXPECT_DOUBLE_EQ(s.y, 1.0);
  const Vec2 d = a - b;
  EXPECT_DOUBLE_EQ(d.x, -2.0);
  const Vec2 m = a * 2.0;
  EXPECT_DOUBLE_EQ(m.y, 4.0);
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

TEST(Vec2, NormalizedZeroThrows) {
  EXPECT_THROW((Vec2{0.0, 0.0}).normalized(), std::domain_error);
  const Vec2 u = Vec2{0.0, 5.0}.normalized();
  EXPECT_DOUBLE_EQ(u.y, 1.0);
}

TEST(Room, ContainsChecksBounds) {
  const Room r{18.0, 12.0};
  EXPECT_TRUE(r.contains({9.0, 6.0}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_FALSE(r.contains({-0.1, 6.0}));
  EXPECT_FALSE(r.contains({9.0, 12.1}));
}

TEST(Room, ValidateRejectsDegenerate) {
  EXPECT_THROW((Room{0.0, 5.0}).validate(), std::invalid_argument);
  EXPECT_THROW((Room{5.0, -1.0}).validate(), std::invalid_argument);
}

TEST(ApPose, AxisUnitFollowsAngle) {
  const ApPose horizontal{{0.0, 0.0}, 0.0};
  EXPECT_NEAR(horizontal.axis_unit().x, 1.0, 1e-12);
  const ApPose vertical{{0.0, 0.0}, 90.0};
  EXPECT_NEAR(vertical.axis_unit().y, 1.0, 1e-12);
}

TEST(ApPose, AoaOfPointBasicAngles) {
  // Horizontal array at origin: a target on +x is endfire (0 deg),
  // a target on +y is broadside (90 deg), a target on -x is 180 deg.
  const ApPose ap{{0.0, 0.0}, 0.0};
  EXPECT_NEAR(ap.aoa_of_point({5.0, 0.0}), 0.0, 1e-9);
  EXPECT_NEAR(ap.aoa_of_point({0.0, 5.0}), 90.0, 1e-9);
  EXPECT_NEAR(ap.aoa_of_point({-5.0, 0.0}), 180.0, 1e-9);
  EXPECT_NEAR(ap.aoa_of_point({5.0, 5.0}), 45.0, 1e-9);
}

TEST(ApPose, AoaIsMirrorSymmetricAboutAxis) {
  // A ULA cannot distinguish a source above the axis from one below.
  const ApPose ap{{0.0, 0.0}, 0.0};
  EXPECT_NEAR(ap.aoa_of_point({3.0, 2.0}), ap.aoa_of_point({3.0, -2.0}), 1e-9);
}

TEST(ApPose, RotatedArrayShiftsReference) {
  const ApPose ap{{2.0, 2.0}, 90.0};  // axis along +y
  EXPECT_NEAR(ap.aoa_of_point({2.0, 8.0}), 0.0, 1e-9);   // along axis
  EXPECT_NEAR(ap.aoa_of_point({8.0, 2.0}), 90.0, 1e-9);  // broadside
}

TEST(ApPose, AoaRangeAlwaysValid) {
  const ApPose ap{{9.0, 6.0}, 37.0};
  for (double x = 0.5; x < 18.0; x += 2.5) {
    for (double y = 0.5; y < 12.0; y += 2.5) {
      if (distance({x, y}, ap.position) < 1e-9) continue;
      const double aoa = ap.aoa_of_point({x, y});
      EXPECT_GE(aoa, 0.0);
      EXPECT_LE(aoa, 180.0);
    }
  }
}

}  // namespace
}  // namespace roarray::channel
