#include "dsp/grid.hpp"

#include <gtest/gtest.h>

namespace roarray::dsp {
namespace {

TEST(Grid, EndpointsIncluded) {
  const Grid g(0.0, 180.0, 181);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[180], 180.0);
  EXPECT_DOUBLE_EQ(g.step(), 1.0);
}

TEST(Grid, SinglePoint) {
  const Grid g(5.0, 5.0, 1);
  EXPECT_EQ(g.size(), 1);
  EXPECT_DOUBLE_EQ(g[0], 5.0);
  EXPECT_DOUBLE_EQ(g.step(), 0.0);
  EXPECT_EQ(g.nearest_index(100.0), 0);
}

TEST(Grid, InvalidArgumentsThrow) {
  EXPECT_THROW(Grid(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Grid(1.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Grid::with_step(0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Grid::with_step(0.0, 1.0, -0.5), std::invalid_argument);
}

TEST(Grid, WithStepLandsOnGridPoints) {
  const Grid g = Grid::with_step(0.0, 180.0, 2.0);
  EXPECT_EQ(g.size(), 91);
  EXPECT_DOUBLE_EQ(g.hi(), 180.0);
  EXPECT_DOUBLE_EQ(g[45], 90.0);
}

TEST(Grid, WithStepTruncatesPartialStep) {
  const Grid g = Grid::with_step(0.0, 10.0, 3.0);  // 0, 3, 6, 9
  EXPECT_EQ(g.size(), 4);
  EXPECT_DOUBLE_EQ(g.hi(), 9.0);
}

TEST(Grid, WithStepReversedBoundsThrow) {
  EXPECT_THROW(Grid::with_step(1.0, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(Grid::with_step(0.0, -1e-6, 0.5), std::invalid_argument);
  // Degenerate but valid: a single-point grid.
  const Grid g = Grid::with_step(2.0, 2.0, 0.5);
  EXPECT_EQ(g.size(), 1);
  EXPECT_DOUBLE_EQ(g[0], 2.0);
}

TEST(Grid, WithStepEpsilonAbsorbsRoundoffAtHi) {
  // 0.7 / 0.1 evaluates just below 7 in binary; the 1e-9 slack must
  // still count hi as landing on the grid (8 points, not 7).
  const Grid g = Grid::with_step(0.0, 0.7, 0.1);
  EXPECT_EQ(g.size(), 8);
  EXPECT_NEAR(g.hi(), 0.7, 1e-12);
}

TEST(Grid, NearestIndexRoundsAndClamps) {
  const Grid g(0.0, 10.0, 11);
  EXPECT_EQ(g.nearest_index(3.4), 3);
  EXPECT_EQ(g.nearest_index(3.6), 4);
  EXPECT_EQ(g.nearest_index(-5.0), 0);
  EXPECT_EQ(g.nearest_index(50.0), 10);
}

TEST(Grid, AtBoundsChecked) {
  const Grid g(0.0, 1.0, 2);
  EXPECT_THROW(g.at(2), std::out_of_range);
  EXPECT_THROW(g.at(-1), std::out_of_range);
  EXPECT_DOUBLE_EQ(g.at(1), 1.0);
}

TEST(Grid, ValuesVectorMatchesIndexing) {
  const Grid g(-1.0, 1.0, 5);
  const auto v = g.values();
  ASSERT_EQ(v.size(), 5);
  for (linalg::index_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(v[i], g[i]);
}

TEST(Grid, DefaultGridsMatchPaperParameters) {
  const Grid aoa = default_aoa_grid();
  EXPECT_DOUBLE_EQ(aoa.lo(), 0.0);
  EXPECT_DOUBLE_EQ(aoa.hi(), 180.0);
  const Grid toa = default_toa_grid();
  EXPECT_EQ(toa.size(), 50);  // paper: N_tau = 50
  EXPECT_LE(toa.hi(), 800e-9);  // within the unambiguous range
}

class GridRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(GridRoundTrip, NearestIndexOfGridValueIsExact) {
  const Grid g(0.0, 180.0, 91);
  const double frac = GetParam();
  const auto idx = static_cast<linalg::index_t>(frac * 90);
  EXPECT_EQ(g.nearest_index(g[idx]), idx);
}

INSTANTIATE_TEST_SUITE_P(Fractions, GridRoundTrip,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

}  // namespace
}  // namespace roarray::dsp
