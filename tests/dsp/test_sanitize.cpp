#include "dsp/sanitize.hpp"

#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "channel/multipath.hpp"
#include "dsp/steering.hpp"
#include "../test_util.hpp"

namespace roarray::dsp {
namespace {

using channel::CsiImpairments;
using channel::Path;
using linalg::CMat;
using linalg::cxd;
using linalg::index_t;

std::vector<Path> two_paths() {
  Path direct;
  direct.aoa_deg = 150.0;
  direct.toa_s = 40e-9;
  direct.gain = cxd{1.0, 0.0};
  Path reflected;
  reflected.aoa_deg = 60.0;
  reflected.toa_s = 90e-9;
  reflected.gain = cxd{0.4, 0.3};
  return {direct, reflected};
}

TEST(Sanitize, RemovesDetectionDelayDifferenceBetweenPackets) {
  const ArrayConfig cfg;
  const auto paths = two_paths();
  CsiImpairments a;
  a.detection_delay_s = 30e-9;
  CsiImpairments b;
  b.detection_delay_s = 170e-9;
  const CMat csi_a = channel::synthesize_csi(paths, cfg, a);
  const CMat csi_b = channel::synthesize_csi(paths, cfg, b);

  const auto sa = sanitize_csi(csi_a, cfg);
  const auto sb = sanitize_csi(csi_b, cfg);
  // After sanitization both packets must agree (same channel, delays gone).
  roarray::testing::expect_mat_near(sa.csi, sb.csi, 1e-6,
                                    "sanitized packets identical");
}

TEST(Sanitize, RemovedDelayTracksInjectedDelay) {
  const ArrayConfig cfg;
  const auto paths = two_paths();
  CsiImpairments imp_a;
  imp_a.detection_delay_s = 50e-9;
  CsiImpairments imp_b;
  imp_b.detection_delay_s = 250e-9;
  const auto ra = sanitize_csi(channel::synthesize_csi(paths, cfg, imp_a), cfg);
  const auto rb = sanitize_csi(channel::synthesize_csi(paths, cfg, imp_b), cfg);
  // The difference in removed delay equals the injected difference.
  EXPECT_NEAR(rb.removed_delay_s - ra.removed_delay_s, 200e-9, 2e-9);
}

TEST(Sanitize, PreservesAntennaPhaseRelationships) {
  // AoA information lives in the per-antenna phase differences within a
  // subcarrier; sanitization must not distort them.
  const ArrayConfig cfg;
  const auto paths = two_paths();
  CsiImpairments imp;
  imp.detection_delay_s = 120e-9;
  const CMat raw = channel::synthesize_csi(paths, cfg, imp);
  const CMat clean = sanitize_csi(raw, cfg).csi;
  for (index_t s = 0; s < cfg.num_subcarriers; ++s) {
    for (index_t a = 1; a < cfg.num_antennas; ++a) {
      const cxd ratio_raw = raw(a, s) / raw(0, s);
      const cxd ratio_clean = clean(a, s) / clean(0, s);
      EXPECT_NEAR(std::abs(ratio_raw - ratio_clean), 0.0, 1e-9);
    }
  }
}

TEST(Sanitize, RebiasKeepsDirectToaNearBias) {
  // Single LoS path: after sanitization the fitted delay of the packet
  // equals the rebias value (the path sits at the bias ToA).
  const ArrayConfig cfg;
  std::vector<Path> paths;
  Path direct;
  direct.aoa_deg = 120.0;
  direct.toa_s = 33e-9;
  direct.gain = cxd{1.0, 0.0};
  paths.push_back(direct);
  CsiImpairments imp;
  imp.detection_delay_s = 300e-9;
  const double bias = 100e-9;
  const CMat clean =
      sanitize_csi(channel::synthesize_csi(paths, cfg, imp), cfg, bias).csi;
  // The remaining linear phase corresponds to a delay == bias.
  const auto again = sanitize_csi(clean, cfg, 0.0);
  EXPECT_NEAR(again.removed_delay_s, bias, 3e-9);
}

TEST(Sanitize, IdempotentOnceSanitized) {
  const ArrayConfig cfg;
  const auto paths = two_paths();
  CsiImpairments imp;
  imp.detection_delay_s = 77e-9;
  const CMat once =
      sanitize_csi(channel::synthesize_csi(paths, cfg, imp), cfg).csi;
  const CMat twice = sanitize_csi(once, cfg).csi;
  roarray::testing::expect_mat_near(once, twice, 1e-8, "idempotent");
}

class SanitizeDelaySweep : public ::testing::TestWithParam<double> {};

TEST_P(SanitizeDelaySweep, PacketsAlignAcrossDelays) {
  const ArrayConfig cfg;
  const auto paths = two_paths();
  CsiImpairments ref;
  ref.detection_delay_s = 0.0;
  const CMat base = sanitize_csi(channel::synthesize_csi(paths, cfg, ref), cfg).csi;
  CsiImpairments imp;
  imp.detection_delay_s = GetParam();
  const CMat other =
      sanitize_csi(channel::synthesize_csi(paths, cfg, imp), cfg).csi;
  roarray::testing::expect_mat_near(base, other, 1e-6, "delay sweep");
}

// Delays are bounded so the mean total delay (detection delay + path
// ToAs) stays under the 1/(2 f_delta) = 400 ns linear-fit aliasing limit.
INSTANTIATE_TEST_SUITE_P(Delays, SanitizeDelaySweep,
                         ::testing::Values(10e-9, 60e-9, 130e-9, 220e-9,
                                           300e-9));

}  // namespace
}  // namespace roarray::dsp
