#include "dsp/steering.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace roarray::dsp {
namespace {

using linalg::cxd;
using linalg::index_t;

TEST(ArrayConfig, Intel5300Defaults) {
  const ArrayConfig cfg = intel5300_config();
  EXPECT_EQ(cfg.num_antennas, 3);
  EXPECT_EQ(cfg.num_subcarriers, 30);
  EXPECT_DOUBLE_EQ(cfg.spacing_over_wavelength(), 0.5);
  EXPECT_NEAR(cfg.max_unambiguous_toa_s(), 800e-9, 1e-15);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ArrayConfig, ValidationCatchesBadGeometry) {
  ArrayConfig cfg;
  cfg.antenna_spacing_m = 0.06;  // > lambda / 2 = 0.026
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ArrayConfig{};
  cfg.num_antennas = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ArrayConfig{};
  cfg.subcarrier_spacing_hz = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Steering, BroadsideIntroducesNoPhaseShift) {
  // theta = 90: cos(theta) = 0, all antennas in phase.
  const ArrayConfig cfg;
  const auto s = steering_aoa(90.0, cfg);
  for (index_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(std::abs(s[i] - cxd{1.0, 0.0}), 0.0, 1e-12);
  }
}

TEST(Steering, EndfirePhaseMatchesHalfWavelengthSpacing) {
  // theta = 0 with d = lambda/2: phase step = -pi per antenna.
  const ArrayConfig cfg;
  const auto s = steering_aoa(0.0, cfg);
  EXPECT_NEAR(std::abs(s[1] - cxd{-1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(s[2] - cxd{1.0, 0.0}), 0.0, 1e-12);
}

TEST(Steering, ElementsHaveUnitModulus) {
  const ArrayConfig cfg;
  for (double theta : {0.0, 17.0, 45.0, 90.0, 133.0, 180.0}) {
    const auto s = steering_aoa(theta, cfg);
    for (index_t i = 0; i < s.size(); ++i) {
      EXPECT_NEAR(std::abs(s[i]), 1.0, 1e-12) << "theta=" << theta;
    }
  }
}

TEST(Steering, MirrorAnglesGiveConjugateVectors) {
  // cos(180 - t) = -cos(t) => Lambda(180 - t) = conj(Lambda(t)).
  const ArrayConfig cfg;
  const auto s1 = steering_aoa(30.0, cfg);
  const auto s2 = steering_aoa(150.0, cfg);
  for (index_t i = 0; i < s1.size(); ++i) {
    EXPECT_NEAR(std::abs(s2[i] - std::conj(s1[i])), 0.0, 1e-12);
  }
}

TEST(Steering, GammaPeriodicInMaxToa) {
  const ArrayConfig cfg;
  const double tau_max = cfg.max_unambiguous_toa_s();
  const cxd g1 = gamma_toa(100e-9, cfg.subcarrier_spacing_hz);
  const cxd g2 = gamma_toa(100e-9 + tau_max, cfg.subcarrier_spacing_hz);
  EXPECT_NEAR(std::abs(g1 - g2), 0.0, 1e-9);
}

TEST(Steering, GammaMatchesPaperExample) {
  // Paper Sec. III-B: 5 ns ToA across 20 MHz spacing gives 0.628 rad.
  const cxd g = gamma_toa(5e-9, 20e6);
  EXPECT_NEAR(std::arg(g), -0.628, 1e-3);
}

TEST(Steering, JointVectorHasKroneckerStructure) {
  const ArrayConfig cfg;
  const double theta = 72.0;
  const double tau = 230e-9;
  const auto joint = steering_joint(theta, tau, cfg);
  ASSERT_EQ(joint.size(), cfg.num_antennas * cfg.num_subcarriers);
  const cxd lam = lambda_aoa(theta, cfg.spacing_over_wavelength());
  const cxd gam = gamma_toa(tau, cfg.subcarrier_spacing_hz);
  for (index_t l = 0; l < cfg.num_subcarriers; ++l) {
    for (index_t m = 0; m < cfg.num_antennas; ++m) {
      const cxd expect = std::pow(lam, static_cast<double>(m)) *
                         std::pow(gam, static_cast<double>(l));
      EXPECT_NEAR(std::abs(joint[l * cfg.num_antennas + m] - expect), 0.0, 1e-9);
    }
  }
}

TEST(Steering, JointAtZeroToaReplicatesSpatialVector) {
  const ArrayConfig cfg;
  const auto joint = steering_joint(60.0, 0.0, cfg);
  const auto spatial = steering_aoa(60.0, cfg);
  for (index_t l = 0; l < cfg.num_subcarriers; ++l) {
    for (index_t m = 0; m < cfg.num_antennas; ++m) {
      EXPECT_NEAR(std::abs(joint[l * cfg.num_antennas + m] - spatial[m]), 0.0,
                  1e-12);
    }
  }
}

TEST(Steering, SubArrayBoundsChecked) {
  const ArrayConfig cfg;
  EXPECT_THROW(steering_joint_sub(10.0, 0.0, cfg, 4, 10), std::invalid_argument);
  EXPECT_THROW(steering_joint_sub(10.0, 0.0, cfg, 2, 31), std::invalid_argument);
  EXPECT_THROW(steering_joint_sub(10.0, 0.0, cfg, 0, 10), std::invalid_argument);
}

TEST(Steering, MatrixColumnsMatchVectors) {
  const ArrayConfig cfg;
  const Grid aoa(0.0, 180.0, 19);
  const auto a = steering_matrix_aoa(aoa, cfg);
  ASSERT_EQ(a.rows(), cfg.num_antennas);
  ASSERT_EQ(a.cols(), 19);
  for (index_t i = 0; i < 19; ++i) {
    const auto s = steering_aoa(aoa[i], cfg);
    for (index_t r = 0; r < a.rows(); ++r) {
      EXPECT_NEAR(std::abs(a(r, i) - s[r]), 0.0, 1e-12);
    }
  }
}

TEST(Steering, JointMatrixColumnOrderIsAoaFastest) {
  const ArrayConfig cfg;
  const Grid aoa(0.0, 180.0, 5);
  const Grid toa(0.0, 400e-9, 3);
  const auto s = steering_matrix_joint(aoa, toa, cfg);
  ASSERT_EQ(s.cols(), 15);
  // Column (j * Nth + i) must equal steering_joint(aoa[i], toa[j]).
  const index_t i = 3, j = 2;
  const auto expect = steering_joint(aoa[i], toa[j], cfg);
  const auto col = s.col_vec(j * 5 + i);
  roarray::testing::expect_vec_near(col, expect, 1e-12, "joint column");
}

TEST(Steering, ToaMatrixColumnsArePowersOfGamma) {
  const ArrayConfig cfg;
  const Grid toa(0.0, 600e-9, 7);
  const auto a = steering_matrix_toa(toa, cfg);
  ASSERT_EQ(a.rows(), cfg.num_subcarriers);
  for (index_t j = 0; j < 7; ++j) {
    const cxd gam = gamma_toa(toa[j], cfg.subcarrier_spacing_hz);
    for (index_t l = 0; l < a.rows(); ++l) {
      EXPECT_NEAR(std::abs(a(l, j) - std::pow(gam, static_cast<double>(l))),
                  0.0, 1e-9);
    }
  }
}

/// Distinct grid angles must give distinguishable steering vectors
/// (injectivity of the parameterization on (0, 180)).
class SteeringDistinct : public ::testing::TestWithParam<double> {};

TEST_P(SteeringDistinct, NeighboringAnglesAreNotCollinear) {
  const ArrayConfig cfg;
  const double theta = GetParam();
  const auto s1 = steering_aoa(theta, cfg);
  const auto s2 = steering_aoa(theta + 2.0, cfg);
  const double corr = std::abs(dot(s1, s2)) / (norm2(s1) * norm2(s2));
  EXPECT_LT(corr, 1.0 - 1e-6) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SteeringDistinct,
                         ::testing::Values(5.0, 30.0, 60.0, 88.0, 120.0, 980.0 / 7));

}  // namespace
}  // namespace roarray::dsp
