#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include "channel/csi.hpp"
#include "../test_util.hpp"

namespace roarray::dsp {
namespace {

namespace rt = roarray::testing;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

/// Direct O(N^2) DFT for reference.
CVec dft_reference(const CVec& x) {
  const index_t n = x.size();
  CVec out(n);
  for (index_t k = 0; k < n; ++k) {
    cxd acc{};
    for (index_t t = 0; t < n; ++t) {
      acc += x[t] * std::polar(1.0, -2.0 * kPi * static_cast<double>(k * t) /
                                        static_cast<double>(n));
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft, MatchesDirectDft) {
  auto rng = rt::make_rng(991);
  for (index_t n : {2, 4, 8, 32, 128}) {
    CVec x = rt::random_cvec(n, rng);
    const CVec ref = dft_reference(x);
    fft_inplace(x);
    rt::expect_vec_near(x, ref, 1e-9 * static_cast<double>(n), "fft == dft");
  }
}

TEST(Fft, InverseRoundTrip) {
  auto rng = rt::make_rng(992);
  CVec x = rt::random_cvec(64, rng);
  const CVec orig = x;
  fft_inplace(x);
  ifft_inplace(x);
  rt::expect_vec_near(x, orig, 1e-10, "ifft(fft(x)) == x");
}

TEST(Fft, ParsevalHolds) {
  auto rng = rt::make_rng(993);
  CVec x = rt::random_cvec(128, rng);
  const double time_energy = norm2_sq(x);
  fft_inplace(x);
  EXPECT_NEAR(norm2_sq(x) / 128.0, time_energy, 1e-8 * time_energy);
}

TEST(Fft, NonPowerOfTwoThrows) {
  CVec x(12);
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
  CVec empty(0);
  EXPECT_THROW(fft_inplace(empty), std::invalid_argument);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  CVec x(16);
  x[0] = cxd{1.0, 0.0};
  fft_inplace(x);
  for (index_t k = 0; k < 16; ++k) {
    EXPECT_NEAR(std::abs(x[k] - cxd{1.0, 0.0}), 0.0, 1e-12);
  }
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(30), 32);
  EXPECT_EQ(next_pow2(129), 256);
  EXPECT_THROW(next_pow2(0), std::invalid_argument);
}

TEST(Pdp, PeaksAtPathDelay) {
  const ArrayConfig cfg;
  channel::Path p;
  p.aoa_deg = 90.0;
  p.toa_s = 240e-9;
  p.gain = cxd{1.0, 0.0};
  const auto csi = channel::synthesize_csi({p}, cfg);
  const PowerDelayProfile pdp = power_delay_profile(csi, cfg);
  // Find the strongest bin.
  index_t best = 0;
  for (index_t k = 0; k < pdp.power.size(); ++k) {
    if (pdp.power[k] > pdp.power[best]) best = k;
  }
  // Delay resolution of 30 subcarriers x 1.25 MHz is ~27 ns; zero-pad
  // interpolation localizes the peak well within one raw bin.
  EXPECT_NEAR(pdp.delays_s[best], 240e-9, 15e-9);
  EXPECT_DOUBLE_EQ(pdp.power[best], 1.0);  // normalized
}

TEST(Pdp, TwoPathsTwoPeaks) {
  const ArrayConfig cfg;
  channel::Path p1;
  p1.aoa_deg = 90.0;
  p1.toa_s = 100e-9;
  p1.gain = cxd{1.0, 0.0};
  channel::Path p2;
  p2.aoa_deg = 40.0;
  p2.toa_s = 450e-9;
  p2.gain = cxd{0.8, 0.0};
  const auto csi = channel::synthesize_csi({p1, p2}, cfg);
  const PowerDelayProfile pdp = power_delay_profile(csi, cfg);
  // Power near both true delays must dominate power far from them.
  auto power_near = [&](double tau) {
    double mx = 0.0;
    for (index_t k = 0; k < pdp.power.size(); ++k) {
      if (std::abs(pdp.delays_s[k] - tau) < 30e-9) {
        mx = std::max(mx, pdp.power[k]);
      }
    }
    return mx;
  };
  EXPECT_GT(power_near(100e-9), 0.5);
  EXPECT_GT(power_near(450e-9), 0.3);
  EXPECT_LT(power_near(700e-9), 0.2);
}

TEST(Pdp, InvalidArgsThrow) {
  const ArrayConfig cfg;
  EXPECT_THROW(power_delay_profile(linalg::CMat(3, 0), cfg),
               std::invalid_argument);
  const linalg::CMat csi(3, 30);
  EXPECT_THROW(power_delay_profile(csi, cfg, 31), std::invalid_argument);
  EXPECT_THROW(power_delay_profile(csi, cfg, 16), std::invalid_argument);
}

}  // namespace
}  // namespace roarray::dsp
