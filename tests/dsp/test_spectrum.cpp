#include "dsp/spectrum.hpp"

#include <gtest/gtest.h>

namespace roarray::dsp {
namespace {

using linalg::index_t;
using linalg::RMat;
using linalg::RVec;

Spectrum1d make_1d(std::initializer_list<double> vals) {
  Spectrum1d s;
  s.grid = Grid(0.0, static_cast<double>(vals.size() - 1),
                static_cast<index_t>(vals.size()));
  s.values = RVec(static_cast<index_t>(vals.size()));
  index_t i = 0;
  for (double v : vals) s.values[i++] = v;
  return s;
}

TEST(Spectrum1d, NormalizeScalesPeakToOne) {
  Spectrum1d s = make_1d({1.0, 4.0, 2.0});
  s.normalize();
  EXPECT_DOUBLE_EQ(s.values[1], 1.0);
  EXPECT_DOUBLE_EQ(s.values[0], 0.25);
}

TEST(Spectrum1d, NormalizeNoOpOnZeroSpectrum) {
  Spectrum1d s = make_1d({0.0, 0.0});
  s.normalize();
  EXPECT_DOUBLE_EQ(s.values[0], 0.0);
}

TEST(Spectrum1d, FindsInteriorPeaks) {
  const Spectrum1d s = make_1d({0.1, 0.9, 0.2, 0.5, 1.0, 0.3});
  const auto peaks = s.find_peaks(5, 0.05, 1);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_DOUBLE_EQ(peaks[0].value, 1.0);  // strongest first
  EXPECT_EQ(peaks[0].aoa_index, 4);
  EXPECT_EQ(peaks[1].aoa_index, 1);
}

TEST(Spectrum1d, EndpointsCanBePeaks) {
  const Spectrum1d s = make_1d({1.0, 0.2, 0.1, 0.8});
  const auto peaks = s.find_peaks(5);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].aoa_index, 0);
  EXPECT_EQ(peaks[1].aoa_index, 3);
}

TEST(Spectrum1d, MaxPeaksRespected) {
  const Spectrum1d s = make_1d({1.0, 0.1, 0.9, 0.1, 0.8, 0.1, 0.7});
  EXPECT_EQ(s.find_peaks(2).size(), 2u);
}

TEST(Spectrum1d, MinHeightFiltersWeakPeaks) {
  const Spectrum1d s = make_1d({0.02, 0.001, 1.0, 0.001, 0.02});
  const auto peaks = s.find_peaks(5, /*min_rel_height=*/0.1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].aoa_index, 2);
}

TEST(Spectrum1d, MinSeparationSuppressesNeighbors) {
  const Spectrum1d s = make_1d({0.0, 1.0, 0.5, 0.9, 0.0});
  const auto close = s.find_peaks(5, 0.05, /*min_separation=*/1);
  EXPECT_EQ(close.size(), 2u);
  const auto wide = s.find_peaks(5, 0.05, /*min_separation=*/3);
  ASSERT_EQ(wide.size(), 1u);
  EXPECT_EQ(wide[0].aoa_index, 1);
}

TEST(Spectrum1d, PlateauYieldsSinglePeak) {
  const Spectrum1d s = make_1d({0.0, 1.0, 1.0, 1.0, 0.0});
  EXPECT_EQ(s.find_peaks(5).size(), 1u);
}

TEST(Spectrum2d, FindsPeakAtCorrectCoordinates) {
  Spectrum2d s;
  s.aoa_grid = Grid(0.0, 180.0, 10);
  s.toa_grid = Grid(0.0, 900e-9, 10);
  s.values = RMat(10, 10);
  s.values(3, 7) = 1.0;
  s.values(8, 1) = 0.6;
  const auto peaks = s.find_peaks(5);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].aoa_index, 3);
  EXPECT_EQ(peaks[0].toa_index, 7);
  EXPECT_DOUBLE_EQ(peaks[0].aoa_deg, s.aoa_grid[3]);
  EXPECT_DOUBLE_EQ(peaks[0].toa_s, s.toa_grid[7]);
  EXPECT_EQ(peaks[1].aoa_index, 8);
}

TEST(Spectrum2d, SuppressionWindowIsRectangular) {
  Spectrum2d s;
  s.aoa_grid = Grid(0.0, 9.0, 10);
  s.toa_grid = Grid(0.0, 9.0, 10);
  s.values = RMat(10, 10);
  s.values(4, 4) = 1.0;
  s.values(5, 6) = 0.9;  // within 2 samples in aoa, 2 in toa
  const auto tight = s.find_peaks(5, 0.05, 1, 1);
  EXPECT_EQ(tight.size(), 2u);
  const auto wide = s.find_peaks(5, 0.05, 3, 3);
  EXPECT_EQ(wide.size(), 1u);
}

TEST(Spectrum2d, AoaMarginalTakesMaxOverToa) {
  Spectrum2d s;
  s.aoa_grid = Grid(0.0, 2.0, 3);
  s.toa_grid = Grid(0.0, 1.0, 2);
  s.values = RMat(3, 2);
  s.values(0, 0) = 0.3;
  s.values(0, 1) = 0.7;
  s.values(2, 0) = 1.0;
  const Spectrum1d m = s.aoa_marginal();
  ASSERT_EQ(m.values.size(), 3);
  EXPECT_DOUBLE_EQ(m.values[0], 0.7);
  EXPECT_DOUBLE_EQ(m.values[1], 0.0);
  EXPECT_DOUBLE_EQ(m.values[2], 1.0);
}

TEST(Spectrum1d, WrapPeriodMakesSuppressionCircular) {
  // Peaks at the first and last sample of a circular grid are the same
  // physical atom (the fold-aliased [0, 180] AoA grid): with the wrap
  // period declared, the weaker edge peak must be suppressed.
  // Regression: separation used to be plain |index difference|, so the
  // edges measured as maximally far apart and both peaks survived.
  const Spectrum1d s = make_1d({1.0, 0.2, 0.1, 0.2, 0.9});
  const auto unwrapped = s.find_peaks(5, 0.05, /*min_separation=*/2);
  EXPECT_EQ(unwrapped.size(), 2u);
  const auto wrapped =
      s.find_peaks(5, 0.05, /*min_separation=*/2, /*wrap_period=*/4);
  ASSERT_EQ(wrapped.size(), 1u);
  EXPECT_EQ(wrapped[0].aoa_index, 0);
}

TEST(Spectrum2d, AoaWrapPeriodSuppressesPeaksStraddlingTheFoldBoundary) {
  // 2-deg spacing over [0, 180]: indices 1 (2 deg) and 89 (178 deg) are
  // 4 deg apart through the fold, well inside a 5-sample window, yet 88
  // samples apart by plain index distance. Regression: without the wrap
  // period both used to be kept.
  Spectrum2d s;
  s.aoa_grid = Grid(0.0, 180.0, 91);
  s.toa_grid = Grid(0.0, 900e-9, 10);
  s.values = RMat(91, 10);
  s.values(1, 4) = 1.0;
  s.values(89, 4) = 0.8;
  const auto unwrapped = s.find_peaks(5, 0.05, /*min_sep_aoa=*/5, 1);
  EXPECT_EQ(unwrapped.size(), 2u);
  const auto wrapped =
      s.find_peaks(5, 0.05, /*min_sep_aoa=*/5, 1, /*aoa_wrap_period=*/90);
  ASSERT_EQ(wrapped.size(), 1u);
  EXPECT_EQ(wrapped[0].aoa_index, 1);

  // The ToA window still gates jointly: same edge-straddling AoAs at
  // far-apart ToAs are distinct paths and both survive.
  s.values(89, 4) = 0.0;
  s.values(89, 9) = 0.8;
  const auto far_toa =
      s.find_peaks(5, 0.05, /*min_sep_aoa=*/5, 2, /*aoa_wrap_period=*/90);
  EXPECT_EQ(far_toa.size(), 2u);
}

TEST(Spectrum2d, EmptySpectrumYieldsNoPeaks) {
  Spectrum2d s;
  s.aoa_grid = Grid(0.0, 1.0, 2);
  s.toa_grid = Grid(0.0, 1.0, 2);
  s.values = RMat(2, 2);
  EXPECT_TRUE(s.find_peaks(5).empty());
}

}  // namespace
}  // namespace roarray::dsp
