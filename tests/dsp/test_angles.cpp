#include "dsp/angles.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <stdexcept>

#include "dsp/constants.hpp"
#include "dsp/steering.hpp"

namespace roarray::dsp {
namespace {

TEST(Angles, DegRadRoundTrip) {
  for (double d : {-270.0, -90.0, 0.0, 45.0, 180.0, 359.0}) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(d)), d, 1e-12);
  }
}

TEST(Angles, Wrap360) {
  EXPECT_DOUBLE_EQ(wrap_deg_360(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg_360(360.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg_360(-30.0), 330.0);
  EXPECT_DOUBLE_EQ(wrap_deg_360(725.0), 5.0);
}

TEST(Angles, Wrap180) {
  EXPECT_DOUBLE_EQ(wrap_deg_180(180.0), 180.0);
  EXPECT_DOUBLE_EQ(wrap_deg_180(181.0), -179.0);
  EXPECT_DOUBLE_EQ(wrap_deg_180(-181.0), 179.0);
}

TEST(Angles, AngleDiffSymmetricAndBounded) {
  EXPECT_DOUBLE_EQ(angle_diff_deg(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(350.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(0.0, 180.0), 180.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(90.0, 90.0), 0.0);
}

TEST(Angles, FoldToUlaRange) {
  EXPECT_DOUBLE_EQ(fold_to_ula_range(45.0), 45.0);
  EXPECT_DOUBLE_EQ(fold_to_ula_range(180.0), 180.0);
  // Mirror symmetry across the array axis: 200 deg looks like 160 deg.
  EXPECT_DOUBLE_EQ(fold_to_ula_range(200.0), 160.0);
  EXPECT_DOUBLE_EQ(fold_to_ula_range(-45.0), 45.0);
  EXPECT_DOUBLE_EQ(fold_to_ula_range(359.0), 1.0);
}

TEST(Angles, RadDegRoundTripBothDirectionsAndLargeMagnitudes) {
  for (double r : {-3.0 * kPi, -kPi, -0.5, 0.0, 1e-9, kPi / 6.0, 2.0 * kPi}) {
    EXPECT_NEAR(deg_to_rad(rad_to_deg(r)), r, 1e-15);
  }
  // Large magnitudes keep relative (not absolute) precision.
  for (double d : {-3.6e7, 1e6, 7.2e8}) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(d)), d, 1e-6 * std::abs(d));
  }
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi / 2.0), 90.0);
}

TEST(Angles, FoldIsContinuousAndSymmetricAtBroadside) {
  // +-90 deg is broadside to the ULA axis; folding maps both sides of
  // the array onto the same [0, 180] range without a jump there.
  EXPECT_DOUBLE_EQ(fold_to_ula_range(90.0), 90.0);
  EXPECT_DOUBLE_EQ(fold_to_ula_range(-90.0), 90.0);
  EXPECT_DOUBLE_EQ(fold_to_ula_range(270.0), 90.0);
  const double eps = 1e-9;
  EXPECT_NEAR(fold_to_ula_range(90.0 + eps), 90.0 + eps, 1e-12);
  EXPECT_NEAR(fold_to_ula_range(90.0 - eps), 90.0 - eps, 1e-12);
  EXPECT_NEAR(fold_to_ula_range(-90.0 - eps), 90.0 + eps, 1e-12);
  EXPECT_NEAR(fold_to_ula_range(-90.0 + eps), 90.0 - eps, 1e-12);
}

TEST(Angles, WrapBoundariesAreHalfOpen) {
  // wrap_deg_360 -> [0, 360): the upper endpoint maps to 0.
  EXPECT_DOUBLE_EQ(wrap_deg_360(360.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg_360(-360.0), 0.0);
  EXPECT_LT(wrap_deg_360(359.9999999), 360.0);
  // wrap_deg_180 -> (-180, 180]: exactly -180 folds to +180.
  EXPECT_DOUBLE_EQ(wrap_deg_180(-180.0), 180.0);
  EXPECT_DOUBLE_EQ(wrap_deg_180(540.0), 180.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(90.0, 270.0), 180.0);
  EXPECT_NEAR(angle_diff_deg(89.9, -89.9), 179.8, 1e-9);
}

TEST(Angles, DegenerateSpacingCarriesNoAoaInformation) {
  // d/lambda = 0 collapses the array to a point: the inter-antenna
  // phase ratio is exactly 1 regardless of the arrival angle, so the
  // steering model degenerates and AoA becomes unobservable.
  for (double theta : {0.0, 30.0, 90.0, 150.0, 180.0}) {
    const cxd r = lambda_aoa(theta, 0.0);
    EXPECT_NEAR(r.real(), 1.0, 1e-15) << "theta " << theta;
    EXPECT_NEAR(r.imag(), 0.0, 1e-15) << "theta " << theta;
  }
  // At exactly half-wavelength spacing both endfire directions hit the
  // same ratio e^{-+j pi} = -1: the edge of the unambiguous regime.
  const cxd e0 = lambda_aoa(0.0, 0.5);
  const cxd e180 = lambda_aoa(180.0, 0.5);
  EXPECT_NEAR(std::abs(e0 - cxd(-1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(e0 - e180), 0.0, 1e-12);
}

TEST(Angles, ValidateRejectsAliasingSpacing) {
  ArrayConfig cfg;
  cfg.antenna_spacing_m = cfg.wavelength_m / 2.0;  // exactly lambda/2: legal.
  EXPECT_NO_THROW(cfg.validate());
  cfg.antenna_spacing_m = cfg.wavelength_m / 2.0 + 1e-6;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.antenna_spacing_m = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Angles, SteeringMirrorAmbiguityMatchesFolding) {
  // A bearing and its fold into [0, 180] produce identical steering
  // vectors — the physical ambiguity fold_to_ula_range encodes.
  const ArrayConfig cfg;
  for (double bearing : {200.0, 275.0, -45.0, 351.0}) {
    const CVec a = steering_aoa(bearing, cfg);
    const CVec b = steering_aoa(fold_to_ula_range(bearing), cfg);
    ASSERT_EQ(a.size(), b.size());
    for (linalg::index_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12) << "bearing " << bearing;
    }
  }
}

TEST(Angles, FoldedAoaSeparationWrapsAcrossTheEndfireAlias) {
  // 2 deg and 178 deg straddle the fold: physically 4 deg apart at
  // half-wavelength spacing (a(0) == a(180)), not 176.
  EXPECT_DOUBLE_EQ(folded_aoa_separation_deg(2.0, 178.0), 4.0);
  EXPECT_DOUBLE_EQ(folded_aoa_separation_deg(178.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(folded_aoa_separation_deg(0.0, 180.0), 0.0);
  // Interior angles keep the plain difference.
  EXPECT_DOUBLE_EQ(folded_aoa_separation_deg(80.0, 96.0), 16.0);
  EXPECT_DOUBLE_EQ(folded_aoa_separation_deg(45.0, 135.0), 90.0);
  // Inputs outside [0, 180] are folded first: -2 mirrors to 2.
  EXPECT_DOUBLE_EQ(folded_aoa_separation_deg(-2.0, 178.0), 4.0);
  EXPECT_DOUBLE_EQ(folded_aoa_separation_deg(182.0, 2.0), 4.0);
}

TEST(Angles, AoaWrapPeriodDetectsTheCircularGrid) {
  const ArrayConfig half_wavelength;  // d / lambda == 0.5 exactly
  ASSERT_DOUBLE_EQ(half_wavelength.spacing_over_wavelength(), 0.5);
  // Full [0, 180] grid at lambda/2: endpoints alias, period = n - 1.
  EXPECT_EQ(aoa_wrap_period(Grid(0.0, 180.0, 91), half_wavelength), 90);
  EXPECT_EQ(aoa_wrap_period(Grid(0.0, 180.0, 61), half_wavelength), 60);
  // Partial grids are not circular.
  EXPECT_EQ(aoa_wrap_period(Grid(0.0, 170.0, 18), half_wavelength), 0);
  EXPECT_EQ(aoa_wrap_period(Grid(10.0, 180.0, 18), half_wavelength), 0);
  // Sub-half-wavelength spacing: a(0) != a(180), endpoints distinct.
  ArrayConfig narrow = half_wavelength;
  narrow.antenna_spacing_m = 0.4 * narrow.wavelength_m;
  EXPECT_EQ(aoa_wrap_period(Grid(0.0, 180.0, 91), narrow), 0);
  // Degenerate grids never wrap.
  EXPECT_EQ(aoa_wrap_period(Grid(0.0, 180.0, 2), half_wavelength), 0);
}

class AngleDiffProperty : public ::testing::TestWithParam<double> {};

TEST_P(AngleDiffProperty, InvariantUnderFullTurns) {
  const double a = GetParam();
  const double b = 77.0;
  EXPECT_NEAR(angle_diff_deg(a, b), angle_diff_deg(a + 360.0, b), 1e-10);
  EXPECT_NEAR(angle_diff_deg(a, b), angle_diff_deg(a, b - 720.0), 1e-10);
  EXPECT_LE(angle_diff_deg(a, b), 180.0);
  EXPECT_GE(angle_diff_deg(a, b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AngleDiffProperty,
                         ::testing::Values(-350.0, -180.0, -10.0, 0.0, 33.3,
                                           90.0, 179.0, 270.0, 359.9));

}  // namespace
}  // namespace roarray::dsp
