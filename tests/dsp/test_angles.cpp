#include "dsp/angles.hpp"

#include <gtest/gtest.h>

namespace roarray::dsp {
namespace {

TEST(Angles, DegRadRoundTrip) {
  for (double d : {-270.0, -90.0, 0.0, 45.0, 180.0, 359.0}) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(d)), d, 1e-12);
  }
}

TEST(Angles, Wrap360) {
  EXPECT_DOUBLE_EQ(wrap_deg_360(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg_360(360.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg_360(-30.0), 330.0);
  EXPECT_DOUBLE_EQ(wrap_deg_360(725.0), 5.0);
}

TEST(Angles, Wrap180) {
  EXPECT_DOUBLE_EQ(wrap_deg_180(180.0), 180.0);
  EXPECT_DOUBLE_EQ(wrap_deg_180(181.0), -179.0);
  EXPECT_DOUBLE_EQ(wrap_deg_180(-181.0), 179.0);
}

TEST(Angles, AngleDiffSymmetricAndBounded) {
  EXPECT_DOUBLE_EQ(angle_diff_deg(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(350.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(0.0, 180.0), 180.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(90.0, 90.0), 0.0);
}

TEST(Angles, FoldToUlaRange) {
  EXPECT_DOUBLE_EQ(fold_to_ula_range(45.0), 45.0);
  EXPECT_DOUBLE_EQ(fold_to_ula_range(180.0), 180.0);
  // Mirror symmetry across the array axis: 200 deg looks like 160 deg.
  EXPECT_DOUBLE_EQ(fold_to_ula_range(200.0), 160.0);
  EXPECT_DOUBLE_EQ(fold_to_ula_range(-45.0), 45.0);
  EXPECT_DOUBLE_EQ(fold_to_ula_range(359.0), 1.0);
}

class AngleDiffProperty : public ::testing::TestWithParam<double> {};

TEST_P(AngleDiffProperty, InvariantUnderFullTurns) {
  const double a = GetParam();
  const double b = 77.0;
  EXPECT_NEAR(angle_diff_deg(a, b), angle_diff_deg(a + 360.0, b), 1e-10);
  EXPECT_NEAR(angle_diff_deg(a, b), angle_diff_deg(a, b - 720.0), 1e-10);
  EXPECT_LE(angle_diff_deg(a, b), 180.0);
  EXPECT_GE(angle_diff_deg(a, b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AngleDiffProperty,
                         ::testing::Values(-350.0, -180.0, -10.0, 0.0, 33.3,
                                           90.0, 179.0, 270.0, 359.9));

}  // namespace
}  // namespace roarray::dsp
