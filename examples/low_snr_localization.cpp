// Low-SNR localization: the paper's headline scenario. A client in the
// 18 m x 12 m testbed is heard by 6 APs at <= 2 dB SNR; ROArray, SpotFi
// and ArrayTrack each estimate per-AP direct-path AoAs, which are fused
// by the RSSI-weighted grid search (paper Eq. 19). ROArray's sparse
// recovery keeps working where the MUSIC-based baselines fall apart.
#include <cstdio>
#include <random>

#include "core/roarray.hpp"
#include "loc/localize.hpp"
#include "music/arraytrack.hpp"
#include "music/spotfi.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace roarray;

  const sim::Testbed testbed = sim::make_paper_testbed();
  const sim::Vec2 client{11.5, 4.5};

  // Low-SNR round: weak links, more blocked direct paths.
  sim::ScenarioConfig scenario = sim::scenario_for_band(sim::SnrBand::kLow);
  scenario.num_packets = 15;
  std::mt19937_64 rng(2026);
  const auto measurements =
      sim::generate_measurements(testbed, client, scenario, rng);

  loc::LocalizeConfig loc_cfg;
  loc_cfg.room = testbed.room;
  loc_cfg.grid_step_m = 0.1;  // the paper's 10 cm candidate grid

  std::printf("client ground truth: (%.1f, %.1f) m; per-AP SNRs:", client.x,
              client.y);
  for (const auto& m : measurements) std::printf(" %.1f", m.snr_db);
  std::printf(" dB\n\n");

  // --- ROArray ---
  {
    std::vector<loc::ApObservation> obs;
    for (const auto& m : measurements) {
      core::RoArrayConfig cfg;
      cfg.solver.max_iterations = 300;
      const auto r = core::roarray_estimate(m.burst.csi, cfg, scenario.array);
      if (r.valid) obs.push_back({m.pose, r.direct.aoa_deg, m.rssi_weight});
    }
    const auto fix = loc::localize(obs, loc_cfg);
    std::printf("ROArray:    fix (%5.1f, %5.1f) m, error %.2f m\n",
                fix.position.x, fix.position.y,
                channel::distance(fix.position, client));
  }

  // --- SpotFi ---
  {
    std::vector<loc::ApObservation> obs;
    for (const auto& m : measurements) {
      const auto r = music::spotfi_estimate(m.burst.csi, music::SpotfiConfig{},
                                            scenario.array);
      if (r.valid) obs.push_back({m.pose, r.direct_aoa_deg, m.rssi_weight});
    }
    const auto fix = loc::localize(obs, loc_cfg);
    std::printf("SpotFi:     fix (%5.1f, %5.1f) m, error %.2f m\n",
                fix.position.x, fix.position.y,
                channel::distance(fix.position, client));
  }

  // --- ArrayTrack ---
  {
    std::vector<loc::ApObservation> obs;
    for (const auto& m : measurements) {
      const auto r = music::arraytrack_estimate(
          m.burst.csi, music::ArrayTrackConfig{}, scenario.array);
      if (r.valid) obs.push_back({m.pose, r.direct_aoa_deg, m.rssi_weight});
    }
    const auto fix = loc::localize(obs, loc_cfg);
    std::printf("ArrayTrack: fix (%5.1f, %5.1f) m, error %.2f m\n",
                fix.position.x, fix.position.y,
                channel::distance(fix.position, client));
  }
  return 0;
}
