// Phase calibration: every channel switch leaves random static phase
// offsets on the receive chains, which silently wreck AoA estimation.
// This example injects offsets, estimates them with the ROArray- and
// MUSIC-driven autocalibration (paper Section III-D, Fig. 8b), and
// shows the AoA estimate before and after correction.
#include <cstdio>
#include <random>

#include "channel/csi.hpp"
#include "core/calibration.hpp"
#include "core/roarray.hpp"

int main() {
  using namespace roarray;
  using linalg::cxd;

  const dsp::ArrayConfig array_cfg;

  // Channel: direct path from a *known* calibration direction plus a
  // reflection (calibration uses a transmitter at a surveyed spot).
  const double known_aoa = 125.0;
  channel::Path direct;
  direct.aoa_deg = known_aoa;
  direct.toa_s = 60e-9;
  direct.gain = cxd{1.0, 0.0};
  channel::Path reflection;
  reflection.aoa_deg = 60.0;
  reflection.toa_s = 220e-9;
  reflection.gain = cxd{0.4, 0.2};

  // Inject per-antenna phase offsets (radians).
  const std::vector<double> true_offsets = {0.0, 2.2, 0.9};
  std::mt19937_64 rng(11);
  channel::BurstConfig burst_cfg;
  burst_cfg.num_packets = 3;
  burst_cfg.snr_db = 20.0;
  burst_cfg.antenna_phase_offsets_rad = true_offsets;
  const auto burst =
      channel::generate_burst({direct, reflection}, array_cfg, burst_cfg, rng);

  std::printf("injected offsets: %.2f, %.2f, %.2f rad\n", true_offsets[0],
              true_offsets[1], true_offsets[2]);

  // AoA estimate with uncorrected chains.
  core::RoArrayConfig rcfg;
  rcfg.solver.max_iterations = 300;
  const auto dirty = core::roarray_estimate(burst.csi, rcfg, array_cfg);
  std::printf("uncalibrated direct-path estimate: %.1f deg (truth %.1f)\n",
              dirty.direct.aoa_deg, known_aoa);

  // Estimate offsets with both spectrum-driven schemes.
  for (const auto method : {core::CalibrationMethod::kRoArray,
                            core::CalibrationMethod::kMusic}) {
    core::CalibrationConfig ccfg;
    ccfg.method = method;
    const auto cal =
        core::estimate_phase_offsets(burst.csi, known_aoa, array_cfg, ccfg);
    std::vector<linalg::CMat> corrected;
    for (const auto& c : burst.csi) {
      corrected.push_back(core::apply_phase_correction(c, cal.offsets_rad));
    }
    const auto clean = core::roarray_estimate(corrected, rcfg, array_cfg);
    std::printf("%s calibration: offsets %.2f, %.2f, %.2f rad -> "
                "estimate %.1f deg\n",
                method == core::CalibrationMethod::kRoArray ? "ROArray"
                                                            : "MUSIC  ",
                cal.offsets_rad[0], cal.offsets_rad[1], cal.offsets_rad[2],
                clean.direct.aoa_deg);
  }
  return 0;
}
