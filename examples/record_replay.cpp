// Record/replay quickstart: capture a simulated measurement campaign to
// a CSI trace file, replay it through the streaming LocalizationService,
// and verify the replayed position fixes are bit-identical to running
// the offline pipeline (roarray_estimate_batch + loc::localize) on the
// live measurements.
//
//   sim      -> simulate rounds, record them with sim::record_round
//   io       -> TraceWriter / TraceReader round-trip (CRC-checked)
//   serve    -> submit replayed rounds to LocalizationService
//   compare  -> replay must reproduce the closed-loop run exactly
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "core/roarray.hpp"
#include "io/trace_reader.hpp"
#include "io/trace_writer.hpp"
#include "loc/localize.hpp"
#include "runtime/operator_cache.hpp"
#include "serve/service.hpp"
#include "sim/recorder.hpp"
#include "sim/scenario.hpp"
#include "sim/testbed.hpp"

int main(int argc, char** argv) {
  using namespace roarray;
  const char* trace_path =
      argc > 1 ? argv[1] : "record_replay_trace.bin";

  // A small campaign: 2 clients heard by the first 3 paper-testbed APs.
  sim::Testbed testbed = sim::make_paper_testbed();
  testbed.aps.resize(3);
  sim::ScenarioConfig scfg = sim::scenario_for_band(sim::SnrBand::kHigh);
  scfg.num_packets = 5;
  std::mt19937_64 rng(11);
  const auto clients = sim::sample_client_locations(2, testbed.room, rng);

  std::vector<std::vector<sim::ApMeasurement>> rounds_live;
  {
    io::TraceWriter writer(trace_path, scfg.array);
    std::uint64_t tick = 0;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      rounds_live.push_back(
          sim::generate_measurements(testbed, clients[c], scfg, rng));
      tick = sim::record_round(writer, rounds_live.back(),
                               static_cast<std::uint64_t>(c), tick);
    }
    writer.flush();
    std::printf("recorded %llu records to %s\n",
                static_cast<unsigned long long>(writer.records_written()),
                trace_path);
  }

  core::RoArrayConfig estimator;
  estimator.solver.max_iterations = 150;
  loc::LocalizeConfig lcfg;
  lcfg.room = testbed.room;
  runtime::OperatorCache cache;
  const runtime::EstimateContext ctx{&cache, nullptr};

  // Closed loop: the offline pipeline straight on the live measurements.
  std::vector<loc::LocalizeResult> closed;
  for (const auto& ms : rounds_live) {
    std::vector<core::CsiBurst> bursts;
    for (const auto& m : ms) bursts.push_back(m.burst.csi);
    const auto results =
        core::roarray_estimate_batch(bursts, estimator, scfg.array, ctx);
    std::vector<loc::ApObservation> obs;
    for (std::size_t a = 0; a < ms.size(); ++a) {
      if (!results[a].valid) continue;
      obs.push_back({ms[a].pose, results[a].direct.aoa_deg,
                     ms[a].rssi_weight});
    }
    closed.push_back(loc::localize(obs, lcfg));
  }

  // Replay: read the trace back and push it through the service in
  // deterministic manual-pump mode.
  io::TraceReader reader(trace_path);
  const auto rounds = io::read_client_rounds(reader);

  serve::ServeConfig cfg;
  cfg.estimator = estimator;
  cfg.array = reader.array_config();
  cfg.localize = lcfg;
  cfg.ap_poses.assign(testbed.aps.begin(), testbed.aps.end());
  cfg.dispatchers = 0;  // manual pump: fully deterministic replay
  serve::LocalizationService service(cfg, ctx);

  std::vector<serve::Response> replies(rounds.size());
  for (const auto& round : rounds) {
    serve::Request req;
    req.client_id = round.client_id;
    req.submit_tick = round.first_tick;
    for (std::size_t a = 0; a < round.ap_ids.size(); ++a) {
      req.aps.push_back({round.ap_ids[a], round.bursts[a]});
    }
    const auto st = service.submit(
        std::move(req), [&replies](const serve::Response& r) {
          replies[static_cast<std::size_t>(r.client_id)] = r;
        });
    if (st != serve::SubmitStatus::kAccepted) {
      std::printf("submit failed: %s\n", serve::submit_status_name(st));
      return 1;
    }
  }
  service.drain();

  // The replayed fixes must match the closed-loop run bit for bit: the
  // trace stores CSI as IEEE-754 bit patterns and the service computes
  // the same RSSI weights (channel::burst_rssi_weight) the simulator
  // attached, so nothing is allowed to drift.
  bool all_exact = true;
  for (std::size_t c = 0; c < rounds.size(); ++c) {
    const auto& replayed = replies[c].location;
    const bool exact = replies[c].status == serve::ResponseStatus::kOk &&
                       replayed.position.x == closed[c].position.x &&
                       replayed.position.y == closed[c].position.y &&
                       replayed.cost == closed[c].cost;
    all_exact = all_exact && exact;
    const double err = std::hypot(replayed.position.x - clients[c].x,
                                  replayed.position.y - clients[c].y);
    std::printf(
        "client %zu: truth (%5.2f, %5.2f)  replayed fix (%5.2f, %5.2f)  "
        "error %.2f m  replay %s closed loop\n",
        c, clients[c].x, clients[c].y, replayed.position.x,
        replayed.position.y, err, exact ? "==" : "!=");
  }
  std::printf(all_exact ? "replay is bit-identical to the closed-loop run\n"
                        : "REPLAY DIVERGED from the closed-loop run\n");
  return all_exact ? 0 : 1;
}
