// Multi-packet fusion: why coherent processing across the time domain
// matters. Each packet of a burst carries a different unknown detection
// delay, so raw per-packet ToA estimates scatter; after sanitization
// ROArray fuses all packets with one l1-SVD group solve, yielding a
// stable, sharper estimate (paper Section III-D and Fig. 4).
#include <cstdio>
#include <random>

#include "channel/csi.hpp"
#include "core/roarray.hpp"

int main() {
  using namespace roarray;
  using linalg::cxd;

  const dsp::ArrayConfig array_cfg;
  channel::Path direct;
  direct.aoa_deg = 95.0;
  direct.toa_s = 70e-9;
  direct.gain = cxd{1.0, 0.0};
  channel::Path reflection;
  reflection.aoa_deg = 150.0;
  reflection.toa_s = 290e-9;
  reflection.gain = cxd{0.45, 0.3};

  std::mt19937_64 rng(7);
  channel::BurstConfig burst_cfg;
  burst_cfg.num_packets = 20;
  burst_cfg.snr_db = 5.0;                      // a weak link
  burst_cfg.max_detection_delay_s = 180e-9;    // heavy per-packet delays
  burst_cfg.path_phase_jitter_rad = 0.3;
  const auto burst =
      channel::generate_burst({direct, reflection}, array_cfg, burst_cfg, rng);

  // Raw per-packet estimates: ToA includes each packet's own delay.
  std::printf("per-packet raw estimates (no delay correction):\n");
  core::RoArrayConfig raw_cfg;
  raw_cfg.sanitize = false;
  raw_cfg.solver.max_iterations = 250;
  for (int p = 0; p < 5; ++p) {
    const std::vector<linalg::CMat> one = {burst.csi[static_cast<std::size_t>(p)]};
    const auto r = core::roarray_estimate(one, raw_cfg, array_cfg);
    std::printf("  packet %d: direct %.0f deg @ %4.0f ns   "
                "(injected delay %.0f ns)\n",
                p, r.direct.aoa_deg, r.direct.toa_s * 1e9,
                burst.detection_delays[static_cast<std::size_t>(p)] * 1e9);
  }

  // Coherent fusion: sanitize every packet, reduce with l1-SVD, solve once.
  core::RoArrayConfig fused_cfg;
  fused_cfg.solver.max_iterations = 300;
  const auto fused = core::roarray_estimate(burst.csi, fused_cfg, array_cfg);
  std::printf("\nfused over %zu packets: direct %.0f deg @ %.0f ns "
              "(truth %.0f deg; ToA re-biased to ~100 ns)\n",
              burst.csi.size(), fused.direct.aoa_deg, fused.direct.toa_s * 1e9,
              direct.aoa_deg);
  std::printf("paths recovered:\n");
  for (const auto& p : fused.paths) {
    std::printf("  aoa %6.1f deg  toa %4.0f ns  power %.2f\n", p.aoa_deg,
                p.toa_s * 1e9, p.power);
  }
  return 0;
}
