// Channel inspector: three views of the same simulated link —
//   1. ground-truth ray-traced paths,
//   2. the classical time-domain power-delay profile (IFFT of the CSI),
//   3. ROArray's model-based joint AoA/ToA path estimates —
// showing how the sparse estimator resolves what the PDP smears.
#include <cstdio>
#include <iostream>
#include <random>

#include "channel/csi.hpp"
#include "channel/multipath.hpp"
#include "core/roarray.hpp"
#include "dsp/fft.hpp"
#include "eval/report.hpp"
#include "sim/testbed.hpp"

int main() {
  using namespace roarray;

  const sim::Testbed tb = sim::make_paper_testbed();
  const sim::Vec2 client{12.0, 4.0};
  const channel::ApPose& ap = tb.aps[0];

  channel::MultipathConfig mp;
  mp.max_reflections = 1;
  const dsp::ArrayConfig arr;
  const auto paths =
      channel::trace_paths(tb.room, ap, client, mp, arr, tb.scatterers);

  std::printf("ground-truth paths (AP at (%.1f, %.1f), client at (%.1f, %.1f)):\n",
              ap.position.x, ap.position.y, client.x, client.y);
  for (const auto& p : paths) {
    std::printf("  aoa %6.1f deg  toa %5.1f ns  |gain| %.3f  bounces %d\n",
                p.aoa_deg, p.toa_s * 1e9, std::abs(p.gain), p.reflections);
  }

  std::mt19937_64 rng(3);
  channel::BurstConfig bc;
  bc.num_packets = 10;
  bc.snr_db = 18.0;
  bc.max_detection_delay_s = 0.0;  // keep absolute delays for the PDP view
  const auto burst = channel::generate_burst(paths, arr, bc, rng);

  // Time-domain view: power-delay profile of the first packet.
  const dsp::PowerDelayProfile pdp =
      dsp::power_delay_profile(burst.csi[0], arr);
  std::printf("\npower-delay profile (IFFT of CSI, first packet):\n");
  std::vector<double> xs, ys;
  for (linalg::index_t k = 0; k < pdp.power.size() / 2; ++k) {
    xs.push_back(pdp.delays_s[k] * 1e9);
    ys.push_back(pdp.power[k]);
  }
  eval::print_spectrum_sketch(std::cout, xs, ys, 6);
  std::printf("  (x axis: 0 .. %.0f ns)\n", xs.back());

  // Model-based view: ROArray joint estimates over the fused burst.
  core::RoArrayConfig cfg;
  cfg.sanitize = false;  // no detection delay injected above
  cfg.solver.max_iterations = 300;
  const auto r = core::roarray_estimate(burst.csi, cfg, arr);
  std::printf("\nROArray joint estimates (10 fused packets):\n");
  for (const auto& p : r.paths) {
    std::printf("  aoa %6.1f deg  toa %5.1f ns  power %.2f\n", p.aoa_deg,
                p.toa_s * 1e9, p.power);
  }
  std::printf("direct pick: %.1f deg @ %.1f ns (truth %.1f deg @ %.1f ns)\n",
              r.direct.aoa_deg, r.direct.toa_s * 1e9, paths.front().aoa_deg,
              paths.front().toa_s * 1e9);
  return 0;
}
