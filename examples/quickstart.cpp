// Quickstart: estimate the AoA/ToA of every multipath component from a
// single simulated CSI packet and identify the direct path.
//
// This is the smallest end-to-end use of the public API:
//   channel  -> simulate a 2-path indoor channel and one CSI packet
//   core     -> run the ROArray sparse joint AoA/ToA estimator
//   result   -> per-path estimates + the smallest-ToA (direct) path
#include <cstdio>
#include <random>

#include "channel/csi.hpp"
#include "core/roarray.hpp"

int main() {
  using namespace roarray;
  using linalg::cxd;

  // Intel 5300-like front end: 3 antennas x 30 subcarriers (the default).
  const dsp::ArrayConfig array_cfg;

  // A two-path channel: a direct path and one delayed reflection.
  channel::Path direct;
  direct.aoa_deg = 120.0;
  direct.toa_s = 50e-9;
  direct.gain = cxd{1.0, 0.0};
  channel::Path reflection;
  reflection.aoa_deg = 60.0;
  reflection.toa_s = 230e-9;
  reflection.gain = cxd{0.5, 0.3};

  // One noisy CSI measurement at 15 dB SNR.
  std::mt19937_64 rng(42);
  linalg::CMat csi =
      channel::synthesize_csi({direct, reflection}, array_cfg);
  channel::add_noise(csi, 15.0, rng);

  // Run ROArray: sparse recovery over the joint (AoA, ToA) grid.
  core::RoArrayConfig cfg;  // defaults: 2-deg AoA grid, 16-ns ToA grid
  const std::vector<linalg::CMat> packets = {csi};
  const core::RoArrayResult result =
      core::roarray_estimate(packets, cfg, array_cfg);

  std::printf("recovered %zu paths (solver: %d iterations, %s):\n",
              result.paths.size(), result.solver_iterations,
              result.solver_converged ? "converged" : "max iterations");
  for (const core::PathEstimate& p : result.paths) {
    std::printf("  aoa %6.1f deg   toa %5.0f ns   power %.2f\n", p.aoa_deg,
                p.toa_s * 1e9, p.power);
  }
  std::printf("direct path (smallest ToA): %.1f deg  [truth: %.1f deg]\n",
              result.direct.aoa_deg, direct.aoa_deg);
  return 0;
}
