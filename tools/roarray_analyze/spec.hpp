// Machine-readable rule specs for roarray_analyze. Three plain-text
// files, one per rule family, live next to the tool and are parsed into
// these structs:
//
//   layering.txt   module map (path prefixes / exact files -> module
//                  names, longest match wins) plus the allowed
//                  module-dependency edge set. Directives:
//                    module <name> <path> [<path>...]
//                    allow <from-module> <to-module>
//   lock_order.txt the documented mutex hierarchy. Directives:
//                    order <lock-A> > <lock-B>     A may be held while
//                                                  acquiring B
//                    leaf <lock>                   no lock may be
//                                                  acquired while <lock>
//                                                  is held
//                    entrypoint <function>         must never be called
//                                                  with a lock held
//                    callback <identifier>         user-callback call
//                                                  sites; same rule
//                    primitive-exempt <path>       file allowed to touch
//                                                  std::mutex directly
//                  Locks are named <module>::<Class>::<member>.
//   hot_paths.txt  allocation-free scopes. Directives:
//                    hot-dir <path-prefix>         every function in
//                                                  every TU under it
//                    hot-fn <function-name>        one function, wherever
//                                                  it is defined
//
// '#' starts a comment; blank lines are ignored. Unknown directives are
// parse errors (fail closed: a typo must not silently drop a rule).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "finding.hpp"

namespace roarray::srctool {

struct ModuleDef {
  std::string name;
  std::vector<std::string> paths;  ///< repo-relative prefixes or exact files.
};

struct LayeringSpec {
  std::vector<ModuleDef> modules;
  std::vector<std::pair<std::string, std::string>> allows;  ///< from -> to.
};

struct LockOrderSpec {
  /// Documented holds-before pairs: first may be held while acquiring
  /// second. Consistency is checked against the transitive closure.
  std::vector<std::pair<std::string, std::string>> order;
  std::vector<std::string> leaves;
  std::vector<std::string> entrypoints;
  std::vector<std::string> callbacks;
  std::vector<std::string> primitive_exempt;
};

struct HotPathSpec {
  std::vector<std::string> hot_dirs;
  std::vector<std::string> hot_fns;
};

/// Each parser returns false and appends a "spec" finding (anchored at
/// <origin>:<line>) on malformed input; a spec that fails to parse must
/// fail the analysis run, not weaken it.
[[nodiscard]] bool parse_layering_spec(const std::string& text,
                                       const std::string& origin,
                                       LayeringSpec& out,
                                       std::vector<Finding>& findings);
[[nodiscard]] bool parse_lock_order_spec(const std::string& text,
                                         const std::string& origin,
                                         LockOrderSpec& out,
                                         std::vector<Finding>& findings);
[[nodiscard]] bool parse_hot_path_spec(const std::string& text,
                                       const std::string& origin,
                                       HotPathSpec& out,
                                       std::vector<Finding>& findings);

}  // namespace roarray::srctool
