// Shared lightweight C++ lexing primitives for the repo's dependency-free
// source tools (tools/roarray_lint.cpp and tools/roarray_analyze/).
//
// The core operation is strip_code(): given one raw source line it removes
// // and /* */ comments and the contents of string/char literals (carrying
// the block-comment state across lines), so token-level checks never fire
// on prose or quoted text. On top of that sit boundary-aware token search
// (has_token), a positional tokenizer (tokenize) for the structural scans
// in roarray_analyze, and the shared one-line suppression syntax:
//
//     ... // roarray-lint: allow(<rule>) <why>
//     ... // roarray-analyze: allow(<rule>) <why>
//
// Either marker suppresses the named rule on that line in both tools, so a
// file moving between the linters never needs its annotations rewritten.
//
// Header-only and std-only by design: the tools must build anywhere the
// library builds and run as ordinary ctest cases.
#pragma once

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace roarray::srctool {

[[nodiscard]] inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Removes // and /* */ comments and the contents of string/char
/// literals from one line, so token checks don't fire on prose or
/// quoted text. `in_block` carries /* */ state across lines. Quote
/// characters themselves are kept (as an empty literal) so "a string is
/// here" remains visible to structural scans.
[[nodiscard]] inline std::string strip_code(const std::string& line,
                                            bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        ++i;
      }
      out.push_back(quote);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// True if `code` contains `token` at an identifier boundary (so "time("
/// does not match inside "runtime("). With `require_call`, the token
/// must additionally be followed (after whitespace) by '('.
[[nodiscard]] inline bool has_token(std::string_view code,
                                    std::string_view token,
                                    bool require_call = false) {
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string_view::npos) {
    const bool start_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t end = pos + token.size();
    bool end_ok = end >= code.size() || !ident_char(code[end]);
    if (require_call && end_ok) {
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end])) != 0) {
        ++end;
      }
      end_ok = end < code.size() && code[end] == '(';
    }
    if (start_ok && end_ok) return true;
    ++pos;
  }
  return false;
}

/// One-line local suppression, honored by both tools: the raw line
/// carries `roarray-lint: allow(<rules>)` or `roarray-analyze:
/// allow(<rules>)` naming this rule.
[[nodiscard]] inline bool suppressed(const std::string& raw_line,
                                     std::string_view rule) {
  for (const std::string_view marker :
       {"roarray-lint: allow(", "roarray-analyze: allow("}) {
    const std::size_t pos = raw_line.find(marker);
    if (pos == std::string::npos) continue;
    const std::size_t open = pos + marker.size() - 1;
    const std::size_t close = raw_line.find(')', open);
    if (close == std::string::npos) continue;
    const std::string_view rules(raw_line.data() + open + 1,
                                 close - open - 1);
    if (rules.find(rule) != std::string_view::npos) return true;
  }
  return false;
}

[[nodiscard]] inline std::vector<std::string> path_components(
    const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

[[nodiscard]] inline std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

[[nodiscard]] inline bool starts_with(std::string_view s,
                                      std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] inline bool ends_with(std::string_view s,
                                    std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Positional token over one comment/string-stripped line: either an
/// identifier (text holds it) or a single punctuation character.
struct Token {
  bool is_ident = false;
  std::string text;      ///< identifier text, or the one punct char.
  std::size_t col = 0;   ///< 0-based column in the stripped line.
};

/// Splits a stripped line into identifier and punctuation tokens;
/// whitespace separates but is not emitted. Numeric literals come out
/// as identifier-shaped tokens (callers treat them as opaque).
[[nodiscard]] inline std::vector<Token> tokenize(std::string_view code) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (ident_char(c)) {
      std::size_t e = i;
      while (e < code.size() && ident_char(code[e])) ++e;
      out.push_back({true, std::string(code.substr(i, e - i)), i});
      i = e;
      continue;
    }
    out.push_back({false, std::string(1, c), i});
    ++i;
  }
  return out;
}

}  // namespace roarray::srctool
