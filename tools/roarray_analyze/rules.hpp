// The three roarray_analyze rule families, run over a scanned source
// set against the machine-readable specs. See DESIGN.md §12 for rule
// semantics and spec extension guidance.
#pragma once

#include <string>
#include <vector>

#include "code_model.hpp"
#include "finding.hpp"
#include "spec.hpp"

namespace roarray::srctool {

struct Specs {
  LayeringSpec layering;
  std::string layering_origin;
  LockOrderSpec lock_order;
  std::string lock_order_origin;
  HotPathSpec hot;
  std::string hot_origin;
};

/// Scans every file (populating `code` from `raw`), runs layering,
/// lock-order, and hot-alloc checks, drops per-line `allow(<rule>)`
/// suppressions, and returns the surviving findings sorted.
[[nodiscard]] std::vector<Finding> run_rules(std::vector<SourceFile>& files,
                                             const Specs& specs);

}  // namespace roarray::srctool
