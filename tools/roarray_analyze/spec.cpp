#include "spec.hpp"

#include <sstream>

#include "lexer.hpp"

namespace roarray::srctool {

namespace {

/// Splits one spec line into whitespace-separated words, dropping a
/// trailing '#' comment. Returns true if the line carries any words.
[[nodiscard]] bool split_words(const std::string& line,
                               std::vector<std::string>& words) {
  words.clear();
  std::string cur;
  for (const char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!cur.empty()) words.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) words.push_back(cur);
  return !words.empty();
}

void spec_error(const std::string& origin, int line, const std::string& what,
                std::vector<Finding>& findings) {
  findings.push_back({origin, line, "spec", what});
}

}  // namespace

bool parse_layering_spec(const std::string& text, const std::string& origin,
                         LayeringSpec& out, std::vector<Finding>& findings) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> w;
  int lineno = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++lineno;
    if (!split_words(line, w)) continue;
    if (w[0] == "module" && w.size() >= 3) {
      ModuleDef def;
      def.name = w[1];
      def.paths.assign(w.begin() + 2, w.end());
      out.modules.push_back(std::move(def));
    } else if (w[0] == "allow" && w.size() == 3) {
      out.allows.emplace_back(w[1], w[2]);
    } else {
      spec_error(origin, lineno,
                 "malformed layering directive (want 'module <name> <path>...'"
                 " or 'allow <from> <to>'): " + line,
                 findings);
      ok = false;
    }
  }
  return ok;
}

bool parse_lock_order_spec(const std::string& text, const std::string& origin,
                           LockOrderSpec& out,
                           std::vector<Finding>& findings) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> w;
  int lineno = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++lineno;
    if (!split_words(line, w)) continue;
    if (w[0] == "order" && w.size() == 4 && w[2] == ">") {
      out.order.emplace_back(w[1], w[3]);
    } else if (w[0] == "leaf" && w.size() == 2) {
      out.leaves.push_back(w[1]);
    } else if (w[0] == "entrypoint" && w.size() == 2) {
      out.entrypoints.push_back(w[1]);
    } else if (w[0] == "callback" && w.size() == 2) {
      out.callbacks.push_back(w[1]);
    } else if (w[0] == "primitive-exempt" && w.size() == 2) {
      out.primitive_exempt.push_back(w[1]);
    } else {
      spec_error(origin, lineno,
                 "malformed lock-order directive (want 'order <A> > <B>', "
                 "'leaf <lock>', 'entrypoint <fn>', 'callback <name>', or "
                 "'primitive-exempt <path>'): " + line,
                 findings);
      ok = false;
    }
  }
  return ok;
}

bool parse_hot_path_spec(const std::string& text, const std::string& origin,
                         HotPathSpec& out, std::vector<Finding>& findings) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> w;
  int lineno = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++lineno;
    if (!split_words(line, w)) continue;
    if (w[0] == "hot-dir" && w.size() == 2) {
      out.hot_dirs.push_back(w[1]);
    } else if (w[0] == "hot-fn" && w.size() == 2) {
      out.hot_fns.push_back(w[1]);
    } else {
      spec_error(origin, lineno,
                 "malformed hot-path directive (want 'hot-dir <prefix>' or "
                 "'hot-fn <name>'): " + line,
                 findings);
      ok = false;
    }
  }
  return ok;
}

}  // namespace roarray::srctool
