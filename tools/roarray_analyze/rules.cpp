#include "rules.hpp"

#include <map>
#include <optional>
#include <set>
#include <string_view>

#include "lexer.hpp"

namespace roarray::srctool {

namespace {

// ---------------------------------------------------------------------------
// Include layering
// ---------------------------------------------------------------------------

/// Longest-match module lookup: exact file entries beat directory
/// prefixes, longer prefixes beat shorter ones.
[[nodiscard]] std::optional<std::string> module_of(
    const std::string& path, const LayeringSpec& spec) {
  std::optional<std::string> best;
  std::size_t best_len = 0;
  for (const ModuleDef& m : spec.modules) {
    for (const std::string& p : m.paths) {
      const bool match =
          (p == path) || (ends_with(p, "/") && starts_with(path, p));
      if (match && p.size() >= best_len) {
        best_len = p.size();
        best = m.name;
      }
    }
  }
  return best;
}

/// Returns one cycle (as "a -> b -> ... -> a") in the directed graph, or
/// nullopt if the graph is acyclic.
[[nodiscard]] std::optional<std::string> find_cycle(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black.
  std::vector<std::string> stack;
  std::optional<std::string> cycle;

  // NOLINTNEXTLINE(misc-no-recursion): bounded by module/lock count.
  const auto dfs = [&](const auto& self, const std::string& u) -> bool {
    color[u] = 1;
    stack.push_back(u);
    const auto it = adj.find(u);
    if (it != adj.end()) {
      for (const std::string& v : it->second) {
        if (color[v] == 1) {
          std::string path = v;
          for (auto s = stack.rbegin(); s != stack.rend(); ++s) {
            path = *s + " -> " + path;
            if (*s == v) break;
          }
          cycle = path;
          return true;
        }
        if (color[v] == 0 && self(self, v)) return true;
      }
    }
    color[u] = 2;
    stack.pop_back();
    return false;
  };

  for (const auto& [node, _] : adj) {
    if (color[node] == 0 && dfs(dfs, node)) return cycle;
  }
  return std::nullopt;
}

void check_layering(const CodeModel& model, const Specs& specs,
                    std::vector<Finding>& findings) {
  const LayeringSpec& spec = specs.layering;

  std::set<std::string> names;
  for (const ModuleDef& m : spec.modules) {
    if (!names.insert(m.name).second) {
      findings.push_back({specs.layering_origin, 0, "spec",
                          "duplicate module definition: " + m.name});
    }
  }
  std::map<std::string, std::set<std::string>> allow_adj;
  for (const auto& [from, to] : spec.allows) {
    for (const std::string& end : {from, to}) {
      if (names.count(end) == 0) {
        findings.push_back({specs.layering_origin, 0, "spec",
                            "allow edge references unknown module: " + end});
      }
    }
    if (from == to) {
      findings.push_back({specs.layering_origin, 0, "spec",
                          "self allow edge is meaningless: " + from});
      continue;
    }
    allow_adj[from].insert(to);
  }
  if (const auto cycle = find_cycle(allow_adj)) {
    findings.push_back({specs.layering_origin, 0, "spec",
                        "allowed-dependency spec is cyclic (" + *cycle +
                            "); the layering must stay a DAG"});
  }

  for (const IncludeEdge& e : model.includes) {
    const auto from = module_of(e.path, spec);
    if (!from.has_value()) {
      findings.push_back({e.path, e.line, "layering",
                          "file is not covered by the module map in " +
                              specs.layering_origin});
      continue;
    }
    // Quoted includes are repo-root-relative to src/ in this codebase;
    // fixtures may use full repo-relative paths directly.
    std::optional<std::string> to = module_of("src/" + e.target, spec);
    if (!to.has_value()) to = module_of(e.target, spec);
    if (!to.has_value()) {
      findings.push_back({e.path, e.line, "layering",
                          "include target \"" + e.target +
                              "\" is not covered by the module map"});
      continue;
    }
    if (*from == *to) continue;
    if (allow_adj[*from].count(*to) == 0) {
      findings.push_back(
          {e.path, e.line, "layering",
           "include crosses module boundary " + *from + " -> " + *to +
               " which is not an allowed edge in " + specs.layering_origin});
    }
  }
}

// ---------------------------------------------------------------------------
// Lock order
// ---------------------------------------------------------------------------

/// Cross-class call resolution skips method names every container,
/// atomic, or std vocabulary type also has: resolving `shards_.size()`
/// against `OperatorCache::size()` or `job_done_.load()` against
/// `LocalizationService::load()` would fabricate lock edges.
[[nodiscard]] bool generic_method_name(const std::string& name) {
  static const std::set<std::string> kGeneric = {
      "size",  "empty", "clear",   "begin",      "end",        "find",
      "count", "data",  "front",   "back",       "push_back",  "pop_back",
      "emplace_back",   "reserve", "insert",     "erase",      "at",
      "reset", "swap",  "get",     "wait",       "notify_one", "notify_all",
      "lock",  "unlock", "try_lock", "join",     "load",       "store",
      "exchange", "fetch_add", "fetch_sub", "compare_exchange_strong",
      "compare_exchange_weak"};
  return kGeneric.count(name) != 0;
}

struct LockInfo {
  std::string qualified;  ///< <module>::<Class>::<member>.
  std::string path;
  int line = 0;
};

struct LockRegistry {
  /// (class, member) -> info.
  std::map<std::pair<std::string, std::string>, LockInfo> by_key;
  /// member -> declaring classes (for dotted-expression resolution).
  std::map<std::string, std::set<std::string>> classes_of_member;

  [[nodiscard]] std::optional<std::string> resolve(
      const std::string& cls, const std::string& member) const {
    if (!cls.empty()) {
      const auto it = by_key.find({cls, member});
      if (it == by_key.end()) return std::nullopt;
      return it->second.qualified;
    }
    const auto it = classes_of_member.find(member);
    if (it == it_end() || it->second.size() != 1) return std::nullopt;
    const auto hit = by_key.find({*it->second.begin(), member});
    if (hit == by_key.end()) return std::nullopt;
    return hit->second.qualified;
  }

  /// Resolves a held-stack entry of the form "Class::member" (Class may
  /// be empty for dotted acquisitions).
  [[nodiscard]] std::optional<std::string> resolve_held(
      const std::string& encoded) const {
    const std::size_t sep = encoded.find("::");
    if (sep == std::string::npos) return std::nullopt;
    return resolve(encoded.substr(0, sep), encoded.substr(sep + 2));
  }

 private:
  [[nodiscard]] std::map<std::string, std::set<std::string>>::const_iterator
  it_end() const {
    return classes_of_member.end();
  }
};

[[nodiscard]] std::string top_module_dir(const std::string& path) {
  const std::vector<std::string> parts = path_components(path);
  // "src/<dir>/..." -> <dir>; otherwise first component.
  if (parts.size() >= 2 && parts[0] == "src") return parts[1];
  return parts.empty() ? std::string() : parts[0];
}

struct LockEdge {
  std::string from;
  std::string to;
  std::string via;  ///< "" for a direct nested acquisition.
  std::string path;
  int line = 0;
};

void check_lock_order(const CodeModel& model, const Specs& specs,
                      std::vector<Finding>& findings) {
  const LockOrderSpec& spec = specs.lock_order;

  LockRegistry reg;
  for (const LockMember& lm : model.locks) {
    LockInfo info;
    info.qualified = top_module_dir(lm.path) + "::" + lm.cls + "::" + lm.member;
    info.path = lm.path;
    info.line = lm.line;
    reg.by_key[{lm.cls, lm.member}] = info;
    reg.classes_of_member[lm.member].insert(lm.cls);
  }
  std::set<std::string> known;
  for (const auto& [_, info] : reg.by_key) known.insert(info.qualified);

  // Spec sanity: every named lock must exist in the scanned code (a
  // rename must not silently detach the documented hierarchy).
  const auto require_known = [&](const std::string& lock) {
    if (known.count(lock) == 0) {
      findings.push_back({specs.lock_order_origin, 0, "spec",
                          "spec names a lock not found in the scanned "
                          "sources: " + lock});
    }
  };
  std::map<std::string, std::set<std::string>> order_adj;
  for (const auto& [a, b] : spec.order) {
    require_known(a);
    require_known(b);
    if (a == b) {
      findings.push_back({specs.lock_order_origin, 0, "spec",
                          "self order pair is meaningless: " + a});
      continue;
    }
    order_adj[a].insert(b);
  }
  for (const std::string& leaf : spec.leaves) require_known(leaf);
  if (const auto cycle = find_cycle(order_adj)) {
    findings.push_back({specs.lock_order_origin, 0, "spec",
                        "documented lock order is cyclic (" + *cycle + ")"});
  }

  // Transitive closure of the documented order.
  std::map<std::string, std::set<std::string>> closure = order_adj;
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& [a, outs] : closure) {
      std::set<std::string> add;
      for (const std::string& b : outs) {
        const auto it = closure.find(b);
        if (it == closure.end()) continue;
        for (const std::string& c : it->second) {
          if (outs.count(c) == 0) add.insert(c);
        }
      }
      if (!add.empty()) {
        outs.insert(add.begin(), add.end());
        changed = true;
      }
    }
  }

  // Direct lock acquisitions per method, for call-mediated edges and
  // the EXCLUDES/REQUIRES checks. Keys are (class, method).
  std::map<std::pair<std::string, std::string>, std::set<std::string>>
      method_direct;  // qualified locks.
  std::map<std::pair<std::string, std::string>,
           std::set<std::pair<std::string, std::string>>>
      method_direct_keys;  // (lock class, member) pairs.
  std::map<std::string, std::set<std::string>> acquirers_of;  // name -> cls.
  for (const AcquireEvent& ev : model.acquires) {
    const auto lock = reg.resolve(ev.lock_cls, ev.lock_member);
    if (!lock.has_value() || ev.method.empty()) continue;
    method_direct[{ev.cls, ev.method}].insert(*lock);
    method_direct_keys[{ev.cls, ev.method}].insert(
        {ev.lock_cls.empty() ? std::string() : ev.lock_cls, ev.lock_member});
    acquirers_of[ev.method].insert(ev.cls);
  }

  // Edge collection: direct nesting plus one level of call mediation.
  std::vector<LockEdge> edges;
  for (const AcquireEvent& ev : model.acquires) {
    const auto to = reg.resolve(ev.lock_cls, ev.lock_member);
    if (!to.has_value()) continue;
    for (const std::string& h : ev.held) {
      const auto from = reg.resolve_held(h);
      if (!from.has_value()) continue;
      edges.push_back({*from, *to, "", ev.path, ev.line});
    }
  }
  for (const CallEvent& ev : model.calls) {
    if (ev.held.empty()) continue;
    const auto cand_it = acquirers_of.find(ev.callee);
    if (cand_it == acquirers_of.end()) continue;
    std::set<std::string> cands;
    const bool own_has = !ev.cls.empty() && cand_it->second.count(ev.cls) != 0;
    if (!ev.has_receiver && own_has) {
      cands = {ev.cls};  // unqualified call resolves in-class first.
    } else if (!generic_method_name(ev.callee)) {
      cands = cand_it->second;
      if (ev.has_receiver) cands.erase(ev.cls);  // x->f() is not this->f().
    }
    for (const std::string& c : cands) {
      for (const std::string& to : method_direct[{c, ev.callee}]) {
        for (const std::string& h : ev.held) {
          const auto from = reg.resolve_held(h);
          if (!from.has_value()) continue;
          edges.push_back({*from, to, " via call to " + c + "::" + ev.callee,
                           ev.path, ev.line});
        }
      }
    }
  }

  // Edge verdicts.
  const std::set<std::string> leaves(spec.leaves.begin(), spec.leaves.end());
  std::map<std::string, std::set<std::string>> observed_adj;
  std::set<std::string> reported;  // dedupe identical (from,to,site) text.
  for (const LockEdge& e : edges) {
    if (e.from == e.to) {
      const std::string msg = "recursive acquisition: " + e.from +
                              " is acquired while already held" + e.via;
      if (reported.insert(e.path + std::to_string(e.line) + msg).second) {
        findings.push_back({e.path, e.line, "lock-order", msg});
      }
      continue;
    }
    observed_adj[e.from].insert(e.to);
    if (leaves.count(e.from) != 0) {
      const std::string msg = "leaf lock " + e.from +
                              " is held while acquiring " + e.to + e.via +
                              "; leaf locks must not nest";
      if (reported.insert(e.path + std::to_string(e.line) + msg).second) {
        findings.push_back({e.path, e.line, "lock-order", msg});
      }
      continue;
    }
    const auto it = closure.find(e.from);
    if (it == closure.end() || it->second.count(e.to) == 0) {
      const std::string msg =
          "acquisition order " + e.from + " -> " + e.to + e.via +
          " is not documented in " + specs.lock_order_origin +
          "; add an 'order' line if this nesting is intended";
      if (reported.insert(e.path + std::to_string(e.line) + msg).second) {
        findings.push_back({e.path, e.line, "lock-order", msg});
      }
    }
  }
  if (const auto cycle = find_cycle(observed_adj)) {
    const LockEdge* site = edges.empty() ? nullptr : &edges.front();
    findings.push_back({site != nullptr ? site->path : "<sources>",
                        site != nullptr ? site->line : 0, "lock-order",
                        "observed acquisition graph contains a deadlock "
                        "cycle: " + *cycle});
  }

  // Entrypoints and user callbacks must never run under a lock.
  std::set<std::string> no_lock_calls(spec.entrypoints.begin(),
                                      spec.entrypoints.end());
  no_lock_calls.insert(spec.callbacks.begin(), spec.callbacks.end());
  for (const CallEvent& ev : model.calls) {
    if (ev.held.empty() || no_lock_calls.count(ev.callee) == 0) continue;
    std::string held;
    for (const std::string& h : ev.held) {
      const auto q = reg.resolve_held(h);
      held += (held.empty() ? "" : ", ") + q.value_or(h);
    }
    findings.push_back({ev.path, ev.line, "lock-order",
                        "lock (" + held + ") held across call to '" +
                            ev.callee +
                            "', which lock_order.txt marks as a no-lock "
                            "entry point or user callback"});
  }

  // EXCLUDES consistency: any method that acquires one of its own
  // class's locks — directly or through a one-level unqualified call to
  // a sibling method — must carry ROARRAY_EXCLUDES(<member>).
  // Constructors are exempt (nothing else can hold the lock yet).
  const auto check_excludes = [&](const std::string& cls,
                                  const std::string& method,
                                  const std::string& lock_cls,
                                  const std::string& member,
                                  const std::string& path, int line,
                                  const std::string& how) {
    if (cls.empty() || cls == method) return;  // free fn or ctor.
    if (lock_cls != cls) return;  // cross-object: EXCLUDES names members only.
    const auto it = model.annotations.find({cls, method});
    if (it != model.annotations.end() &&
        it->second.excludes.count(member) != 0) {
      return;
    }
    findings.push_back({path, line, "lock-order",
                        cls + "::" + method + " acquires " + cls +
                            "::" + member + how +
                            " but is not annotated ROARRAY_EXCLUDES(" +
                            member + ")"});
  };
  std::set<std::string> excl_seen;
  for (const AcquireEvent& ev : model.acquires) {
    const std::string key =
        ev.cls + "#" + ev.method + "#" + ev.lock_cls + "#" + ev.lock_member;
    if (!excl_seen.insert(key).second) continue;
    check_excludes(ev.cls, ev.method, ev.lock_cls, ev.lock_member, ev.path,
                   ev.line, "");
  }
  for (const CallEvent& ev : model.calls) {
    if (ev.has_receiver || ev.cls.empty()) continue;
    const auto it = method_direct_keys.find({ev.cls, ev.callee});
    if (it == method_direct_keys.end()) continue;
    for (const auto& [lock_cls, member] : it->second) {
      const std::string key =
          ev.cls + "#" + ev.method + "#" + lock_cls + "#" + member;
      if (!excl_seen.insert(key).second) continue;
      check_excludes(ev.cls, ev.method, lock_cls, member, ev.path, ev.line,
                     " (via " + ev.callee + "())");
    }
  }

  // REQUIRES(m) combined with acquiring m is an immediate self-deadlock.
  for (const AcquireEvent& ev : model.acquires) {
    if (ev.cls.empty() || ev.lock_cls != ev.cls) continue;
    const auto it = model.annotations.find({ev.cls, ev.method});
    if (it == model.annotations.end()) continue;
    if (it->second.requires_held.count(ev.lock_member) != 0) {
      findings.push_back({ev.path, ev.line, "lock-order",
                          ev.cls + "::" + ev.method + " is annotated "
                          "ROARRAY_REQUIRES(" + ev.lock_member +
                          ") yet acquires it: guaranteed self-deadlock"});
    }
  }

  // GUARDED_BY must reference a Mutex member of the same class.
  for (const GuardedMember& g : model.guarded) {
    if (g.guard.empty()) continue;
    if (reg.by_key.count({g.cls, g.guard}) == 0) {
      findings.push_back({g.path, g.line, "lock-order",
                          "ROARRAY_GUARDED_BY(" + g.guard +
                              ") names no Mutex member of " + g.cls});
    }
  }

  // Raw std primitives bypass the annotated wrappers and the analyzer.
  const std::set<std::string> exempt(spec.primitive_exempt.begin(),
                                     spec.primitive_exempt.end());
  for (const PrimitiveUse& p : model.primitives) {
    if (exempt.count(p.path) != 0) continue;
    findings.push_back({p.path, p.line, "lock-order",
                        p.what + " is invisible to the annotated lock model; "
                        "use runtime::Mutex / runtime::MutexLock / "
                        "runtime::CondVar"});
  }
}

// ---------------------------------------------------------------------------
// Hot-path allocation
// ---------------------------------------------------------------------------

struct HotRange {
  int first = 0;
  int last = 0;  ///< inclusive; 0/INT_MAX-style whole-file uses first=1.
  std::string reason;
};

/// Token occurrence preceded (modulo whitespace) by '.' or '->' and
/// followed by '(' — a member growth call like `v.push_back(`.
[[nodiscard]] bool has_member_call(std::string_view code,
                                   std::string_view name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string_view::npos) {
    const bool start_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t end = pos + name.size();
    while (end < code.size() &&
           std::isspace(static_cast<unsigned char>(code[end])) != 0) {
      ++end;
    }
    const bool call = end < code.size() && code[end] == '(';
    std::size_t before = pos;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(code[before - 1])) != 0) {
      --before;
    }
    const bool receiver =
        before > 0 && (code[before - 1] == '.' || code[before - 1] == '>');
    if (start_ok && call && receiver) return true;
    ++pos;
  }
  return false;
}

/// `make_shared< / make_unique<` or a plain call — both allocate.
[[nodiscard]] bool has_alloc_call(std::string_view code,
                                  std::string_view name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string_view::npos) {
    const bool start_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t end = pos + name.size();
    bool end_ok = end >= code.size() || !ident_char(code[end]);
    if (end_ok) {
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end])) != 0) {
        ++end;
      }
      end_ok = end < code.size() && (code[end] == '(' || code[end] == '<');
    }
    if (start_ok && end_ok) return true;
    ++pos;
  }
  return false;
}

/// Flags `std::vector<...>` / `std::string` used as an owning value
/// (declaration or construction) rather than a reference/pointer or a
/// nested template argument.
[[nodiscard]] bool has_owning_container(std::string_view code,
                                        std::string_view type) {
  const std::string needle = "std::" + std::string(type);
  std::size_t pos = 0;
  while ((pos = code.find(needle, pos)) != std::string_view::npos) {
    const bool start_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t end = pos + needle.size();
    if (!start_ok || (end < code.size() && ident_char(code[end]))) {
      ++pos;
      continue;
    }
    std::size_t i = end;
    if (i < code.size() && code[i] == '<') {  // skip template args.
      int depth = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
      }
    }
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i])) != 0) {
      ++i;
    }
    if (i >= code.size()) return true;  // declaration continues next line.
    const char c = code[i];
    const bool non_owning = c == '&' || c == '*' || c == '>' || c == ',' ||
                            c == ')' || c == ':';
    if (!non_owning) return true;
    pos = end;
  }
  return false;
}

void check_hot_alloc(const std::vector<SourceFile>& files,
                     const CodeModel& model, const Specs& specs,
                     std::vector<Finding>& findings) {
  const HotPathSpec& spec = specs.hot;
  for (const SourceFile& f : files) {
    std::vector<HotRange> ranges;
    for (const std::string& d : spec.hot_dirs) {
      if (starts_with(f.path, d)) {
        ranges.push_back({1, static_cast<int>(f.raw.size()), "hot-dir " + d});
        break;
      }
    }
    for (const FunctionSpan& fn : model.functions) {
      if (fn.path != f.path) continue;
      for (const std::string& name : spec.hot_fns) {
        if (fn.name == name) {
          ranges.push_back({fn.first_line, fn.last_line, "hot-fn " + name});
        }
      }
    }
    if (ranges.empty()) continue;

    std::set<int> flagged;  // one finding per line per reason class.
    for (const HotRange& r : ranges) {
      for (int ln = r.first; ln <= r.last && ln <= static_cast<int>(f.code.size());
           ++ln) {
        if (flagged.count(ln) != 0) continue;
        const std::string& code = f.code[static_cast<std::size_t>(ln - 1)];
        const std::string t = trim(code);
        if (t.empty() || t[0] == '#') continue;

        std::string what;
        if (has_token(code, "new")) {
          what = "operator new";
        } else {
          for (const std::string_view fn :
               {"malloc", "calloc", "realloc", "aligned_alloc", "strdup",
                "make_unique", "make_shared"}) {
            if (has_alloc_call(code, fn)) {
              what = std::string(fn) + "()";
              break;
            }
          }
        }
        if (what.empty()) {
          for (const std::string_view m :
               {"resize", "push_back", "emplace_back", "reserve", "insert",
                "emplace", "append", "assign"}) {
            if (has_member_call(code, m)) {
              what = "." + std::string(m) + "()";
              break;
            }
          }
        }
        if (what.empty()) {
          for (const std::string_view ty : {"vector", "string"}) {
            if (has_owning_container(code, ty)) {
              what = "owning std::" + std::string(ty);
              break;
            }
          }
        }
        if (what.empty()) continue;
        flagged.insert(ln);
        findings.push_back({f.path, ln, "hot-alloc",
                            "heap allocation in hot path (" + what + ") — " +
                                r.reason +
                                "; preallocate in the caller or use a "
                                "scratch workspace"});
      }
    }
  }
}

}  // namespace

std::vector<Finding> run_rules(std::vector<SourceFile>& files,
                               const Specs& specs) {
  CodeModel model;
  for (SourceFile& f : files) scan_file(f, model);

  std::vector<Finding> findings;
  check_layering(model, specs, findings);
  check_lock_order(model, specs, findings);
  check_hot_alloc(files, model, specs, findings);

  // Per-line suppressions (spec findings are never suppressible).
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    if (f.rule != "spec") {
      const auto it = by_path.find(f.path);
      if (it != by_path.end() && f.line >= 1 &&
          f.line <= static_cast<int>(it->second->raw.size()) &&
          suppressed(it->second->raw[static_cast<std::size_t>(f.line - 1)],
                     f.rule)) {
        continue;
      }
    }
    kept.push_back(std::move(f));
  }
  sort_findings(kept);
  return kept;
}

}  // namespace roarray::srctool
