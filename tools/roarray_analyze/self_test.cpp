// Built-in fixture battery for roarray_analyze (--self-test): every
// rule family gets at least one clean and one violating fixture, plus
// fixtures for suppressions and fail-closed spec handling. Fixtures are
// synthetic in-memory files run through exactly the production pipeline
// (scan -> rules -> suppression filter), so a behavior change that
// weakens a rule fails here before it reaches CI.
#include <cstdio>
#include <string>
#include <vector>

#include "rules.hpp"

namespace roarray::srctool {

namespace {

struct FixtureFile {
  std::string path;
  std::string content;
};

struct Expected {
  std::string rule;
  std::string message_substring;
};

struct Fixture {
  std::string name;
  std::string layering_spec;
  std::string lock_spec;
  std::string hot_spec;
  std::vector<FixtureFile> files;
  std::vector<Expected> expect;
};

/// Layering map used by lock/hot fixtures that don't exercise layering:
/// everything under src/ is one module, so includes never cross edges.
const char* const kOneModule = "module all src/\n";

/// Two-module map with a single allowed downward edge beta -> alpha.
const char* const kTwoModules =
    "module alpha src/alpha/\n"
    "module beta src/beta/\n"
    "allow beta alpha\n";

[[nodiscard]] std::vector<Fixture> make_fixtures() {
  std::vector<Fixture> fx;

  // -- include layering ----------------------------------------------------

  fx.push_back({"layering: allowed downward edge is clean",
                kTwoModules,
                "",
                "",
                {{"src/alpha/a.hpp", "#pragma once\n"},
                 {"src/beta/b.hpp",
                  "#pragma once\n#include \"alpha/a.hpp\"\n"}},
                {}});

  fx.push_back({"layering: upward include flagged",
                kTwoModules,
                "",
                "",
                {{"src/alpha/a.hpp",
                  "#pragma once\n#include \"beta/b.hpp\"\n"},
                 {"src/beta/b.hpp", "#pragma once\n"}},
                {{"layering", "alpha -> beta"}}});

  fx.push_back({"layering: includer outside the module map flagged",
                kTwoModules,
                "",
                "",
                {{"src/gamma/g.hpp",
                  "#pragma once\n#include \"alpha/a.hpp\"\n"},
                 {"src/alpha/a.hpp", "#pragma once\n"}},
                {{"layering", "not covered by the module map"}}});

  fx.push_back({"layering: unmapped include target flagged",
                kTwoModules,
                "",
                "",
                {{"src/alpha/a.hpp",
                  "#pragma once\n#include \"delta/d.hpp\"\n"}},
                {{"layering", "\"delta/d.hpp\""}}});

  fx.push_back({"layering: intra-module include needs no allow edge",
                kTwoModules,
                "",
                "",
                {{"src/alpha/a.hpp",
                  "#pragma once\n#include \"alpha/util.hpp\"\n"},
                 {"src/alpha/util.hpp", "#pragma once\n"}},
                {}});

  fx.push_back({"layering: cyclic allow spec fails closed",
                "module alpha src/alpha/\n"
                "module beta src/beta/\n"
                "allow alpha beta\n"
                "allow beta alpha\n",
                "",
                "",
                {{"src/alpha/a.hpp", "#pragma once\n"}},
                {{"spec", "cyclic"}}});

  fx.push_back({"layering: malformed directive fails closed",
                "module alpha src/alpha/\nalloww beta alpha\n",
                "",
                "",
                {{"src/alpha/a.hpp", "#pragma once\n"}},
                {{"spec", "malformed layering directive"}}});

  fx.push_back({"layering: suppression comment is honored",
                kTwoModules,
                "",
                "",
                {{"src/alpha/a.hpp",
                  "#pragma once\n#include \"beta/b.hpp\"  "
                  "// roarray-analyze: allow(layering) bootstrap shim\n"},
                 {"src/beta/b.hpp", "#pragma once\n"}},
                {}});

  // -- lock order ----------------------------------------------------------

  const char* const kPairHpp =
      "#pragma once\n"
      "namespace serve {\n"
      "class S {\n"
      " public:\n"
      "  void outer() ROARRAY_EXCLUDES(big_, small_);\n"
      " private:\n"
      "  mutable Mutex big_;\n"
      "  mutable Mutex small_;\n"
      "};\n"
      "}  // namespace serve\n";
  const char* const kPairCpp =
      "#include \"serve/s.hpp\"\n"
      "namespace serve {\n"
      "void S::outer() {\n"
      "  MutexLock a(big_);\n"
      "  {\n"
      "    MutexLock b(small_);\n"
      "  }\n"
      "}\n"
      "}  // namespace serve\n";

  fx.push_back({"lock-order: documented nesting is clean",
                kOneModule,
                "order serve::S::big_ > serve::S::small_\n",
                "",
                {{"src/serve/s.hpp", kPairHpp}, {"src/serve/s.cpp", kPairCpp}},
                {}});

  fx.push_back({"lock-order: undocumented nesting flagged",
                kOneModule,
                "",
                "",
                {{"src/serve/s.hpp", kPairHpp}, {"src/serve/s.cpp", kPairCpp}},
                {{"lock-order", "not documented"}}});

  fx.push_back(
      {"lock-order: transitive documentation covers A -> C",
       kOneModule,
       "order serve::T::a_ > serve::T::b_\n"
       "order serve::T::b_ > serve::T::c_\n",
       "",
       {{"src/serve/t.hpp",
         "#pragma once\n"
         "namespace serve {\n"
         "class T {\n"
         " public:\n"
         "  void f() ROARRAY_EXCLUDES(a_, c_);\n"
         " private:\n"
         "  mutable Mutex a_;\n"
         "  mutable Mutex b_;\n"
         "  mutable Mutex c_;\n"
         "};\n"
         "void T::f() {\n"
         "  MutexLock la(a_);\n"
         "  {\n"
         "    MutexLock lc(c_);\n"
         "  }\n"
         "}\n"
         "}\n"}},
       {}});

  fx.push_back(
      {"lock-order: synthetic two-mutex cycle detected",
       kOneModule,
       "",
       "",
       {{"src/serve/ab.hpp",
         "#pragma once\n"
         "namespace serve {\n"
         "class B;\n"
         "class A {\n"
         " public:\n"
         "  void f(B& b) ROARRAY_EXCLUDES(a_);\n"
         "  void acquire_a() ROARRAY_EXCLUDES(a_);\n"
         "  mutable Mutex a_;\n"
         "};\n"
         "class B {\n"
         " public:\n"
         "  void g(A& a) ROARRAY_EXCLUDES(b_);\n"
         "  void acquire_b() ROARRAY_EXCLUDES(b_);\n"
         "  mutable Mutex b_;\n"
         "};\n"
         "void A::acquire_a() { MutexLock l(a_); }\n"
         "void B::acquire_b() { MutexLock l(b_); }\n"
         "void A::f(B& b) {\n"
         "  MutexLock l(a_);\n"
         "  b.acquire_b();\n"
         "}\n"
         "void B::g(A& a) {\n"
         "  MutexLock l(b_);\n"
         "  a.acquire_a();\n"
         "}\n"
         "}\n"}},
       {{"lock-order", "deadlock"},
        {"lock-order", "serve::A::a_ -> serve::B::b_"},
        {"lock-order", "serve::B::b_ -> serve::A::a_"}}});

  fx.push_back(
      {"lock-order: leaf lock must not nest",
       kOneModule,
       "leaf serve::L::small_\n",
       "",
       {{"src/serve/l.hpp",
         "#pragma once\n"
         "namespace serve {\n"
         "class L {\n"
         " public:\n"
         "  void f() ROARRAY_EXCLUDES(small_, other_);\n"
         " private:\n"
         "  mutable Mutex small_;\n"
         "  mutable Mutex other_;\n"
         "};\n"
         "void L::f() {\n"
         "  MutexLock a(small_);\n"
         "  {\n"
         "    MutexLock b(other_);\n"
         "  }\n"
         "}\n"
         "}\n"}},
       {{"lock-order", "leaf lock serve::L::small_"}}});

  fx.push_back(
      {"lock-order: recursive acquisition flagged",
       kOneModule,
       "",
       "",
       {{"src/serve/r.hpp",
         "#pragma once\n"
         "namespace serve {\n"
         "class R {\n"
         " public:\n"
         "  void f() ROARRAY_EXCLUDES(m_);\n"
         " private:\n"
         "  mutable Mutex m_;\n"
         "};\n"
         "void R::f() {\n"
         "  MutexLock a(m_);\n"
         "  {\n"
         "    MutexLock b(m_);\n"
         "  }\n"
         "}\n"
         "}\n"}},
       {{"lock-order", "recursive acquisition"}}});

  fx.push_back(
      {"lock-order: missing EXCLUDES on method and destructor",
       kOneModule,
       "",
       "",
       {{"src/serve/e.hpp",
         "#pragma once\n"
         "namespace serve {\n"
         "class E {\n"
         " public:\n"
         "  ~E();\n"
         "  void poke();\n"
         "  void stop_all() ROARRAY_EXCLUDES(m_);\n"
         " private:\n"
         "  mutable Mutex m_;\n"
         "};\n"
         "void E::poke() { MutexLock l(m_); }\n"
         "void E::stop_all() { MutexLock l(m_); }\n"
         "E::~E() { stop_all(); }\n"
         "}\n"}},
       {{"lock-order", "E::poke acquires E::m_"},
        {"lock-order", "E::~E acquires E::m_ (via stop_all())"}}});

  fx.push_back(
      {"lock-order: annotated destructor is clean",
       kOneModule,
       "",
       "",
       {{"src/serve/d.hpp",
         "#pragma once\n"
         "namespace serve {\n"
         "class D {\n"
         " public:\n"
         "  ~D() ROARRAY_EXCLUDES(m_);\n"
         "  void stop_all() ROARRAY_EXCLUDES(m_);\n"
         " private:\n"
         "  mutable Mutex m_;\n"
         "};\n"
         "void D::stop_all() { MutexLock l(m_); }\n"
         "D::~D() { stop_all(); }\n"
         "}\n"}},
       {}});

  fx.push_back(
      {"lock-order: REQUIRES plus acquire is a self-deadlock",
       kOneModule,
       "",
       "",
       {{"src/serve/q.hpp",
         "#pragma once\n"
         "namespace serve {\n"
         "class Q {\n"
         " public:\n"
         "  void locked_op() ROARRAY_REQUIRES(m_);\n"
         " private:\n"
         "  mutable Mutex m_;\n"
         "};\n"
         "void Q::locked_op() { MutexLock l(m_); }\n"
         "}\n"}},
       {{"lock-order", "guaranteed self-deadlock"},
        {"lock-order", "not annotated ROARRAY_EXCLUDES(m_)"}}});

  fx.push_back(
      {"lock-order: entrypoint and callback under a held lock",
       kOneModule,
       "entrypoint estimate_entry\ncallback on_done\n",
       "",
       {{"src/serve/c.hpp",
         "#pragma once\n"
         "namespace serve {\n"
         "class C {\n"
         " public:\n"
         "  void f() ROARRAY_EXCLUDES(m_);\n"
         " private:\n"
         "  mutable Mutex m_;\n"
         "};\n"
         "void C::f() {\n"
         "  MutexLock l(m_);\n"
         "  estimate_entry(1);\n"
         "  on_done(2);\n"
         "}\n"
         "}\n"}},
       {{"lock-order", "across call to 'estimate_entry'"},
        {"lock-order", "across call to 'on_done'"}}});

  fx.push_back(
      {"lock-order: GUARDED_BY must name a real mutex member",
       kOneModule,
       "",
       "",
       {{"src/serve/g.hpp",
         "#pragma once\n"
         "namespace serve {\n"
         "class G {\n"
         " private:\n"
         "  mutable Mutex m_;\n"
         "  int ok_ ROARRAY_GUARDED_BY(m_) = 0;\n"
         "  int bad_ ROARRAY_GUARDED_BY(nope_) = 0;\n"
         "};\n"
         "}\n"}},
       {{"lock-order", "ROARRAY_GUARDED_BY(nope_)"}}});

  fx.push_back(
      {"lock-order: raw std primitives outside the exempt wrapper",
       kOneModule,
       "primitive-exempt src/alpha/wrap.hpp\n",
       "",
       {{"src/alpha/wrap.hpp",
         "#pragma once\nclass W { std::mutex ok_; };\n"},
        {"src/serve/raw.hpp",
         "#pragma once\nclass V { std::mutex bad_; };\n"}},
       {{"lock-order", "std::mutex is invisible"}}});

  fx.push_back({"lock-order: spec naming an unknown lock fails closed",
                kOneModule,
                "order serve::Ghost::m_ > serve::Ghost::n_\n",
                "",
                {{"src/serve/empty.hpp", "#pragma once\n"}},
                {{"spec", "serve::Ghost::m_"},
                 {"spec", "serve::Ghost::n_"}}});

  // -- hot-path allocation -------------------------------------------------

  fx.push_back(
      {"hot-alloc: allocation-free backend kernel is clean",
       kOneModule,
       "",
       "hot-dir src/linalg/backend/\n",
       {{"src/linalg/backend/k.cpp",
         "#include \"linalg/backend/k.hpp\"\n"
         "void axpy(int n, const double* x, double* y) {\n"
         "  for (int i = 0; i < n; ++i) y[i] += 2.0 * x[i];\n"
         "}\n"},
        {"src/linalg/backend/k.hpp", "#pragma once\n"}},
       {}});

  fx.push_back(
      {"hot-alloc: push_back in a backend kernel flagged",
       kOneModule,
       "",
       "hot-dir src/linalg/backend/\n",
       {{"src/linalg/backend/k.cpp",
         "void collect(int n, Sink& out) {\n"
         "  for (int i = 0; i < n; ++i) out.vals.push_back(i);\n"
         "}\n"}},
       {{"hot-alloc", ".push_back()"}}});

  fx.push_back(
      {"hot-alloc: operator new in a backend kernel flagged",
       kOneModule,
       "",
       "hot-dir src/linalg/backend/\n",
       {{"src/linalg/backend/k.cpp",
         "double* scratch(int n) {\n"
         "  return new double[static_cast<unsigned long>(n)];\n"
         "}\n"}},
       {{"hot-alloc", "operator new"}}});

  fx.push_back(
      {"hot-alloc: hot-fn scope flags only the named function",
       kOneModule,
       "",
       "hot-fn prox_fn\n",
       {{"src/sparse/p.hpp",
         "#pragma once\n"
         "namespace sparse {\n"
         "inline void prox_fn(int n, double* x) {\n"
         "  std::vector<double> tmp(static_cast<unsigned long>(n), 0.0);\n"
         "  for (int i = 0; i < n; ++i) x[i] += tmp[static_cast<unsigned long>(i)];\n"
         "}\n"
         "inline void cold_fn(int n) {\n"
         "  std::vector<double> fine(static_cast<unsigned long>(n), 0.0);\n"
         "  (void)fine;\n"
         "}\n"
         "}\n"}},
       {{"hot-alloc", "owning std::vector"}}});

  fx.push_back(
      {"hot-alloc: references and pointers to containers are fine",
       kOneModule,
       "",
       "hot-fn hot_ref\n",
       {{"src/sparse/r.hpp",
         "#pragma once\n"
         "inline void hot_ref(const std::vector<double>& v, std::string* s) {\n"
         "  (void)v;\n"
         "  (void)s;\n"
         "}\n"}},
       {}});

  fx.push_back(
      {"hot-alloc: suppression with rationale is honored",
       kOneModule,
       "",
       "hot-dir src/linalg/backend/\n",
       {{"src/linalg/backend/k.cpp",
         "void setup(int n, Sink& out) {\n"
         "  out.vals.reserve(static_cast<unsigned long>(n));  "
         "// roarray-analyze: allow(hot-alloc) one-time warmup before loop\n"
         "}\n"}},
       {}});

  fx.push_back(
      {"hot-alloc: legacy roarray-lint marker also suppresses",
       kOneModule,
       "",
       "hot-dir src/linalg/backend/\n",
       {{"src/linalg/backend/k.cpp",
         "void setup(int n, Sink& out) {\n"
         "  out.vals.reserve(static_cast<unsigned long>(n));  "
         "// roarray-lint: allow(hot-alloc) one-time warmup before loop\n"
         "}\n"}},
       {}});

  fx.push_back({"hot-alloc: malformed hot-path directive fails closed",
                kOneModule,
                "",
                "hot-dirs src/linalg/backend/\n",
                {{"src/serve/empty.hpp", "#pragma once\n"}},
                {{"spec", "malformed hot-path directive"}}});

  return fx;
}

[[nodiscard]] bool run_fixture(const Fixture& fx, std::string& diag) {
  Specs specs;
  specs.layering_origin = "layering.txt";
  specs.lock_order_origin = "lock_order.txt";
  specs.hot_origin = "hot_paths.txt";
  std::vector<Finding> spec_findings;
  (void)parse_layering_spec(fx.layering_spec, specs.layering_origin,
                            specs.layering, spec_findings);
  (void)parse_lock_order_spec(fx.lock_spec, specs.lock_order_origin,
                              specs.lock_order, spec_findings);
  (void)parse_hot_path_spec(fx.hot_spec, specs.hot_origin, specs.hot,
                            spec_findings);

  std::vector<SourceFile> files;
  for (const FixtureFile& ff : fx.files) {
    SourceFile sf;
    sf.path = ff.path;
    std::string cur;
    for (const char c : ff.content) {
      if (c == '\n') {
        sf.raw.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) sf.raw.push_back(cur);
    files.push_back(std::move(sf));
  }

  std::vector<Finding> got = run_rules(files, specs);
  got.insert(got.end(), spec_findings.begin(), spec_findings.end());

  std::vector<bool> used(got.size(), false);
  bool ok = true;
  for (const Expected& e : fx.expect) {
    bool matched = false;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (used[i] || got[i].rule != e.rule) continue;
      if (got[i].message.find(e.message_substring) == std::string::npos) {
        continue;
      }
      used[i] = true;
      matched = true;
      break;
    }
    if (!matched) {
      diag += "  missing expected [" + e.rule + "] ~ \"" +
              e.message_substring + "\"\n";
      ok = false;
    }
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!used[i]) {
      diag += "  unexpected " + got[i].path + ":" +
              std::to_string(got[i].line) + " [" + got[i].rule + "] " +
              got[i].message + "\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int run_self_test() {
  const std::vector<Fixture> fixtures = make_fixtures();
  int failed = 0;
  for (const Fixture& fx : fixtures) {
    std::string diag;
    if (!run_fixture(fx, diag)) {
      std::fprintf(stderr, "self-test FAIL: %s\n%s", fx.name.c_str(),
                   diag.c_str());
      ++failed;
    }
  }
  if (failed != 0) {
    std::fprintf(stderr, "roarray_analyze self-test: %d fixture(s) failed\n",
                 failed);
    return 1;
  }
  std::printf("roarray_analyze self-test: %zu fixtures OK\n", fixtures.size());
  return 0;
}

}  // namespace roarray::srctool
