// Lightweight structural model of a C++ source tree, extracted with the
// shared lexer (no real parser, no compiler dependency). One scan pass
// per file recovers exactly the facts the three rule families need:
//
//   * quoted #include edges                       (include-layering DAG)
//   * class definitions and their Mutex members   (lock registry)
//   * ROARRAY_GUARDED_BY / REQUIRES / EXCLUDES annotations per member
//     and per method                              (annotation checks)
//   * function definitions with body line spans   (hot-path scopes)
//   * MutexLock acquisition sites, with the set of locks lexically held
//     at that point                               (acquisition-order graph)
//   * call sites inside function bodies, with held locks and receiver
//     kind                                        (call-mediated edges,
//                                                  entrypoint/callback
//                                                  checks)
//   * raw std lock primitives (std::mutex & friends) outside the
//     annotated wrappers                          (TSA-visibility rule)
//
// The scanner is scope-aware (namespace / class / function / block via
// brace depth) but deliberately not name-resolving: locks are keyed
// (Class, member) and qualified to <module>::<Class>::<member> later,
// and cross-object calls are resolved by method name with a
// conservative ambiguity policy in the rules layer. Known limits are
// documented in DESIGN.md §12.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace roarray::srctool {

/// One scanned file: repo-relative path plus raw and comment/string-
/// stripped lines (1-based access via index + 1).
struct SourceFile {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

struct IncludeEdge {
  std::string path;    ///< includer (repo-relative).
  int line = 0;
  std::string target;  ///< quoted include text, e.g. "dsp/grid.hpp".
};

struct LockMember {
  std::string cls;     ///< declaring class.
  std::string member;  ///< e.g. "mutex_".
  std::string path;
  int line = 0;
};

struct GuardedMember {
  std::string cls;
  std::string member;  ///< may be empty when the declarator defeats the scan.
  std::string guard;   ///< first identifier inside ROARRAY_GUARDED_BY(...).
  std::string path;
  int line = 0;
};

struct MethodAnnotations {
  std::set<std::string> excludes;  ///< member names from ROARRAY_EXCLUDES.
  std::set<std::string> requires_held;  ///< from ROARRAY_REQUIRES.
};

/// A MutexLock construction site. `held` lists "Class::member" locks
/// lexically held at that point in the same function body.
struct AcquireEvent {
  std::string cls;      ///< owner class of the enclosing method ("" = free).
  std::string method;
  std::string lock_cls;     ///< resolved declaring class of the lock.
  std::string lock_member;
  std::vector<std::string> held;  ///< "Class::member" entries.
  std::string path;
  int line = 0;
};

/// A call site inside a function body: `callee(...)`, `x.callee(...)`,
/// or `x->callee(...)`.
struct CallEvent {
  std::string cls;
  std::string method;
  std::string callee;
  bool has_receiver = false;  ///< preceded by '.' or '->'.
  std::vector<std::string> held;
  std::string path;
  int line = 0;
};

struct FunctionSpan {
  std::string cls;   ///< "" for free functions.
  std::string name;  ///< "~X" for destructors; ctors share the class name.
  std::string path;
  int first_line = 0;  ///< line carrying the opening '{'.
  int last_line = 0;   ///< line carrying the matching '}'.
};

struct PrimitiveUse {
  std::string what;  ///< e.g. "std::mutex".
  std::string path;
  int line = 0;
};

struct CodeModel {
  std::vector<IncludeEdge> includes;
  std::vector<LockMember> locks;
  std::vector<GuardedMember> guarded;
  std::map<std::pair<std::string, std::string>, MethodAnnotations>
      annotations;  ///< (class, method) -> annotations, decls + defs merged.
  std::vector<AcquireEvent> acquires;
  std::vector<CallEvent> calls;
  std::vector<FunctionSpan> functions;
  std::vector<PrimitiveUse> primitives;
};

/// Populates `file.code` from `file.raw` and folds the file's structure
/// into `model`. Call once per file; the model accumulates.
void scan_file(SourceFile& file, CodeModel& model);

}  // namespace roarray::srctool
