// Finding record shared by the roarray_analyze rule families, plus the
// human-readable and --json renderers.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace roarray::srctool {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;     ///< "layering" | "lock-order" | "hot-alloc" | "spec".
  std::string message;
};

inline void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

inline void print_findings(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
}

[[nodiscard]] inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Machine output: one stable JSON document on stdout. Consumers key on
/// `findings[].rule` and the file:line anchor.
inline void print_findings_json(const std::vector<Finding>& findings,
                                std::size_t files_scanned) {
  std::printf("{\n  \"files_scanned\": %zu,\n  \"findings\": [",
              files_scanned);
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::printf(
        "%s\n    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
        "\"message\": \"%s\"}",
        i == 0 ? "" : ",", json_escape(f.path).c_str(), f.line,
        json_escape(f.rule).c_str(), json_escape(f.message).c_str());
  }
  std::printf("%s]\n}\n", findings.empty() ? "" : "\n  ");
}

}  // namespace roarray::srctool
