// roarray_analyze — semantic companion to roarray_lint. Three rule
// families driven by machine-readable specs living next to the binary's
// sources (see spec.hpp for the directive grammar):
//
//   layering   include edges must follow the module DAG in layering.txt
//   lock-order mutex acquisition graph must match lock_order.txt
//   hot-alloc  no heap allocation in hot_paths.txt scopes
//
// Usage:
//   roarray_analyze [--json] [--spec-dir <dir>] <path>...
//   roarray_analyze --self-test
//
// Exit codes: 0 clean, 1 findings, 2 usage/spec/read errors. Findings
// are suppressible per line with `// roarray-analyze: allow(<rule>) why`.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace roarray::srctool {
int run_self_test();
}

namespace {

namespace fs = std::filesystem;
using namespace roarray::srctool;

/// Maps any on-disk path to the repo-relative form the specs use
/// ("src/..."), so absolute ctest invocations and relative CLI runs
/// produce identical findings.
[[nodiscard]] std::string repo_relative(const std::string& path) {
  std::string p = path;
  for (char& c : p) {
    if (c == '\\') c = '/';
  }
  const std::size_t pos = p.rfind("/src/");
  if (pos != std::string::npos) return p.substr(pos + 1);
  if (starts_with(p, "./")) return p.substr(2);
  return p;
}

[[nodiscard]] bool source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".hpp" || e == ".cpp" || e == ".h" || e == ".cc";
}

[[nodiscard]] bool read_lines(const std::string& path,
                              std::vector<std::string>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out.push_back(line);
  }
  return true;
}

[[nodiscard]] bool read_whole(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string spec_dir = "tools/roarray_analyze";
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return run_self_test();
    if (arg == "--json") {
      json = true;
    } else if (arg == "--spec-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "roarray_analyze: --spec-dir needs a value\n");
        return 2;
      }
      spec_dir = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--json] [--spec-dir <dir>] <path>... | "
                   "--self-test\n",
                   argv[0]);
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--spec-dir <dir>] <path>... | "
                 "--self-test\n",
                 argv[0]);
    return 2;
  }

  Specs specs;
  specs.layering_origin = spec_dir + "/layering.txt";
  specs.lock_order_origin = spec_dir + "/lock_order.txt";
  specs.hot_origin = spec_dir + "/hot_paths.txt";
  std::vector<Finding> spec_errors;
  bool specs_ok = true;
  {
    std::string text;
    if (!read_whole(specs.layering_origin, text)) {
      std::fprintf(stderr, "roarray_analyze: cannot read %s\n",
                   specs.layering_origin.c_str());
      return 2;
    }
    specs_ok &= parse_layering_spec(text, specs.layering_origin,
                                    specs.layering, spec_errors);
    if (!read_whole(specs.lock_order_origin, text)) {
      std::fprintf(stderr, "roarray_analyze: cannot read %s\n",
                   specs.lock_order_origin.c_str());
      return 2;
    }
    specs_ok &= parse_lock_order_spec(text, specs.lock_order_origin,
                                      specs.lock_order, spec_errors);
    if (!read_whole(specs.hot_origin, text)) {
      std::fprintf(stderr, "roarray_analyze: cannot read %s\n",
                   specs.hot_origin.c_str());
      return 2;
    }
    specs_ok &=
        parse_hot_path_spec(text, specs.hot_origin, specs.hot, spec_errors);
  }
  if (!specs_ok) {
    // Fail closed: a mistyped directive must stop the run, not weaken it.
    sort_findings(spec_errors);
    print_findings(spec_errors);
    return 2;
  }

  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        const fs::path& p = it->path();
        const std::string name = p.filename().string();
        if (it->is_directory() && (name == ".git" || starts_with(name, "build"))) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && source_ext(p)) {
          paths.push_back(p.string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      std::fprintf(stderr, "roarray_analyze: no such file or directory: %s\n",
                   root.c_str());
      return 2;
    }
  }

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    SourceFile sf;
    sf.path = repo_relative(p);
    if (!read_lines(p, sf.raw)) {
      std::fprintf(stderr, "roarray_analyze: cannot read %s\n", p.c_str());
      return 2;
    }
    files.push_back(std::move(sf));
  }

  const std::vector<Finding> findings = run_rules(files, specs);
  if (json) {
    print_findings_json(findings, files.size());
  } else {
    print_findings(findings);
    if (findings.empty()) {
      std::printf("roarray_analyze: OK (%zu files, 0 findings)\n",
                  files.size());
    } else {
      std::printf("roarray_analyze: %zu finding(s) in %zu files\n",
                  findings.size(), files.size());
    }
  }
  return findings.empty() ? 0 : 1;
}
