#include "code_model.hpp"

#include <array>
#include <optional>
#include <string_view>

#include "lexer.hpp"

namespace roarray::srctool {

namespace {

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = kBlock;
  std::string name;
  std::string owner;  ///< functions only: owning class ("" = free).
  int depth = 0;      ///< brace depth after the opening '{'.
  int start_line = 0;
};

struct HeldLock {
  std::string cls;
  std::string member;
  int depth = 0;  ///< brace depth at acquisition; released when we leave it.
};

[[nodiscard]] bool in_set(std::string_view s,
                          const std::vector<std::string_view>& set) {
  for (const std::string_view e : set) {
    if (s == e) return true;
  }
  return false;
}

const std::vector<std::string_view> kCallSkip = {
    "if",     "for",     "while",    "switch",        "catch",
    "return", "sizeof",  "alignof",  "decltype",      "noexcept",
    "new",    "delete",  "throw",    "operator",      "static_assert",
    "assert", "alignas", "co_await", "co_return",     "co_yield"};

/// Identifiers that cannot be a function name in a definition header
/// (rejects function-pointer declarators like `void (*fn)(...)`).
const std::vector<std::string_view> kNotAFunctionName = {
    "void",   "int",    "bool",     "char",   "short",   "long",
    "float",  "double", "unsigned", "signed", "auto",    "const",
    "constexpr", "static", "inline", "return", "typename", "template",
    "using",  "typedef", "class",   "struct", "enum",    "union",
    "if",     "for",    "while",    "switch", "catch",   "do",
    "else",   "new",    "delete",   "throw",  "sizeof"};

const std::vector<std::string_view> kStdLockPrimitives = {
    "mutex",        "timed_mutex",        "recursive_mutex",
    "shared_mutex", "recursive_timed_mutex",
    "lock_guard",   "unique_lock",        "scoped_lock",
    "shared_lock",  "condition_variable", "condition_variable_any"};

struct FunctionSig {
  std::string name;
  std::string owner;
  bool is_ctor = false;
};

/// Extracts {name, owner} from a pending definition/declaration header:
/// the identifier before the first '(', honoring `Class::name` and `~`.
[[nodiscard]] std::optional<FunctionSig> extract_function_sig(
    const std::vector<Token>& pending, const std::string& enclosing_class) {
  std::size_t paren = pending.size();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!pending[i].is_ident && pending[i].text == "(") {
      paren = i;
      break;
    }
  }
  if (paren == pending.size() || paren == 0) return std::nullopt;
  std::size_t ni = paren - 1;
  if (!pending[ni].is_ident) return std::nullopt;
  FunctionSig sig;
  sig.name = pending[ni].text;
  if (in_set(sig.name, kNotAFunctionName)) return std::nullopt;
  bool dtor = false;
  if (ni > 0 && pending[ni - 1].text == "~") {
    dtor = true;
    --ni;  // qualifier (if any) sits before the '~'.
  }
  sig.owner = enclosing_class;
  if (ni >= 2 && pending[ni - 1].text == "::" && pending[ni - 2].is_ident) {
    sig.owner = pending[ni - 2].text;
  }
  if (dtor) sig.name = "~" + sig.name;
  sig.is_ctor = !sig.owner.empty() && sig.name == sig.owner;
  return sig;
}

/// Collects ROARRAY_EXCLUDES(...) / ROARRAY_REQUIRES(...) argument
/// identifiers out of a pending declaration or definition header.
void extract_annotations(const std::vector<Token>& pending,
                         MethodAnnotations& out) {
  for (std::size_t i = 0; i + 1 < pending.size(); ++i) {
    const bool excludes = pending[i].text == "ROARRAY_EXCLUDES";
    const bool requires_held = pending[i].text == "ROARRAY_REQUIRES";
    if ((!excludes && !requires_held) || pending[i + 1].text != "(") continue;
    int depth = 0;
    for (std::size_t j = i + 1; j < pending.size(); ++j) {
      if (pending[j].text == "(") {
        ++depth;
      } else if (pending[j].text == ")") {
        if (--depth == 0) break;
      } else if (pending[j].is_ident) {
        if (excludes) {
          out.excludes.insert(pending[j].text);
        } else {
          out.requires_held.insert(pending[j].text);
        }
      }
    }
  }
}

class FileScanner {
 public:
  FileScanner(SourceFile& file, CodeModel& model)
      : file_(file), model_(model) {}

  void run() {
    bool in_block_comment = false;
    bool pp_continues = false;
    file_.code.clear();
    file_.code.reserve(file_.raw.size());
    for (std::size_t li = 0; li < file_.raw.size(); ++li) {
      const std::string& raw = file_.raw[li];
      line_ = static_cast<int>(li) + 1;
      std::string code = strip_code(raw, in_block_comment);
      const std::string trimmed = trim(code);
      const bool is_pp = pp_continues || (!trimmed.empty() && trimmed[0] == '#');
      if (is_pp) {
        pp_continues = !raw.empty() && raw.back() == '\\';
        if (starts_with(trimmed, "#include")) record_include(raw);
        file_.code.push_back(std::move(code));
        continue;
      }
      pp_continues = false;
      feed_line(code);
      file_.code.push_back(std::move(code));
    }
    // Close any dangling scopes so spans are recorded even for
    // truncated fixtures.
    while (!scopes_.empty()) {
      close_scope(scopes_.back());
      scopes_.pop_back();
    }
  }

 private:
  void record_include(const std::string& raw) {
    const std::size_t open = raw.find('"');
    if (open == std::string::npos) return;  // angle include: out of scope.
    const std::size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) return;
    model_.includes.push_back(
        {file_.path, line_, raw.substr(open + 1, close - open - 1)});
  }

  void feed_line(const std::string& code) {
    std::vector<Token> toks = tokenize(code);
    // Fold ':'+':' into "::" and '-'+'>' into "->" so downstream
    // pattern checks see one token per operator.
    std::vector<Token> merged;
    merged.reserve(toks.size());
    for (const Token& t : toks) {
      if (!merged.empty() && !merged.back().is_ident && !t.is_ident &&
          merged.back().col + merged.back().text.size() == t.col &&
          ((merged.back().text == ":" && t.text == ":") ||
           (merged.back().text == "-" && t.text == ">"))) {
        merged.back().text += t.text;
        continue;
      }
      merged.push_back(t);
    }
    for (const Token& t : merged) handle_token(t);
  }

  void handle_token(const Token& t) {
    check_std_primitive(t);
    if (capturing_) {
      handle_capture_token(t);
      push_prev(t);
      return;
    }
    if (!t.is_ident) {
      const std::string& p = t.text;
      if (p == "(") {
        on_open_paren();
        ++paren_depth_;
        pending_.push_back(t);
      } else if (p == ")") {
        --paren_depth_;
        pending_.push_back(t);
      } else if (p == "{") {
        on_open_brace();
      } else if (p == "}") {
        on_close_brace();
      } else if (p == ";") {
        if (paren_depth_ == 0) {
          on_statement_end();
        }
      } else if (p == ":") {
        if (pending_.size() == 1 && pending_[0].is_ident &&
            (pending_[0].text == "public" || pending_[0].text == "private" ||
             pending_[0].text == "protected")) {
          clear_pending();
        } else {
          pending_.push_back(t);
        }
      } else {
        if (p == "=" && paren_depth_ == 0) pending_eq_ = true;
        pending_.push_back(t);
      }
    } else {
      pending_.push_back(t);
    }
    push_prev(t);
  }

  void check_std_primitive(const Token& t) {
    if (t.is_ident && in_set(t.text, kStdLockPrimitives) &&
        prev1_ == "::" && prev2_ == "std") {
      model_.primitives.push_back({"std::" + t.text, file_.path, line_});
    }
  }

  void push_prev(const Token& t) {
    prev2_ = std::move(prev1_);
    prev1_ = t.text;
  }

  // -- '(' : acquisition and call detection ------------------------------

  void on_open_paren() {
    if (!in_function() || pending_.empty()) return;
    const Token& last = pending_.back();
    if (!last.is_ident) return;
    if (pending_.size() >= 2 && pending_[pending_.size() - 2].is_ident &&
        pending_[pending_.size() - 2].text == "MutexLock") {
      // `MutexLock <var>(` — capture the lock expression.
      capturing_ = true;
      capture_entry_depth_ = paren_depth_;
      capture_line_ = line_;
      capture_tokens_.clear();
      return;
    }
    if (in_set(last.text, kCallSkip) || last.text == "MutexLock") return;
    const Scope* fn = innermost_function();
    CallEvent ev;
    ev.cls = fn->owner;
    ev.method = fn->name;
    ev.callee = last.text;
    ev.has_receiver =
        pending_.size() >= 2 && (pending_[pending_.size() - 2].text == "." ||
                                 pending_[pending_.size() - 2].text == "->");
    ev.held = held_snapshot();
    ev.path = file_.path;
    ev.line = line_;
    model_.calls.push_back(std::move(ev));
  }

  void handle_capture_token(const Token& t) {
    if (!t.is_ident && t.text == "(") {
      ++paren_depth_;
      capture_tokens_.push_back(t);
      return;
    }
    if (!t.is_ident && t.text == ")") {
      --paren_depth_;
      if (paren_depth_ == capture_entry_depth_) {
        finish_acquisition();
        capturing_ = false;
        return;
      }
      capture_tokens_.push_back(t);
      return;
    }
    capture_tokens_.push_back(t);
  }

  void finish_acquisition() {
    std::string member;
    std::size_t ident_count = 0;
    for (const Token& t : capture_tokens_) {
      if (t.is_ident) {
        member = t.text;
        ++ident_count;
      }
    }
    if (member.empty()) return;
    const Scope* fn = innermost_function();
    AcquireEvent ev;
    ev.cls = fn != nullptr ? fn->owner : std::string();
    ev.method = fn != nullptr ? fn->name : std::string();
    ev.lock_member = member;
    // A bare `mutex_` resolves to the enclosing method's class; anything
    // dotted (`obj.mutex_`) is left for the rules layer to resolve by
    // unique member name across the lock registry.
    ev.lock_cls = ident_count == 1 ? ev.cls : std::string();
    ev.held = held_snapshot();
    ev.path = file_.path;
    ev.line = capture_line_;
    model_.acquires.push_back(ev);
    held_.push_back({ev.lock_cls, ev.lock_member, brace_depth_});
  }

  // -- '{' / '}' : scope management --------------------------------------

  void on_open_brace() {
    Scope s;
    s.start_line = line_;
    if (in_function() || paren_depth_ > 0) {
      s.kind = Scope::kBlock;  // lambda bodies, nested blocks, init lists.
    } else {
      s = classify_scope();
      s.start_line = line_;
    }
    ++brace_depth_;
    s.depth = brace_depth_;
    scopes_.push_back(std::move(s));
    clear_pending();
  }

  [[nodiscard]] Scope classify_scope() {
    Scope s;
    s.kind = Scope::kBlock;
    bool saw_namespace = false;
    bool saw_enum = false;
    std::size_t type_kw = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const Token& t = pending_[i];
      if (!t.is_ident) continue;
      if (t.text == "namespace") saw_namespace = true;
      if (t.text == "enum") saw_enum = true;
      if ((t.text == "class" || t.text == "struct" || t.text == "union") &&
          type_kw == pending_.size()) {
        // `template <class T>` parameters are not type definitions.
        const bool tpl_param =
            i > 0 && (pending_[i - 1].text == "<" || pending_[i - 1].text == ",");
        if (!tpl_param) type_kw = i;
      }
    }
    if (saw_namespace) {
      s.kind = Scope::kNamespace;
      for (const Token& t : pending_) {
        if (t.is_ident && t.text != "namespace" && t.text != "inline") {
          s.name += (s.name.empty() ? "" : "::") + t.text;
        }
      }
      return s;
    }
    if (saw_enum) return s;
    if (type_kw != pending_.size()) {
      s.kind = Scope::kClass;
      // Name: last identifier before the base-clause ':' (skipping
      // attribute macros like ROARRAY_CAPABILITY("...") and `final`).
      for (std::size_t i = type_kw + 1; i < pending_.size(); ++i) {
        const Token& t = pending_[i];
        if (!t.is_ident && t.text == ":") break;
        if (t.is_ident && t.text != "final") s.name = t.text;
      }
      return s;
    }
    if (!pending_eq_) {
      const std::optional<FunctionSig> sig =
          extract_function_sig(pending_, current_class());
      if (sig.has_value()) {
        s.kind = Scope::kFunction;
        s.name = sig->name;
        s.owner = sig->owner;
        if (!sig->is_ctor) {
          MethodAnnotations anno;
          extract_annotations(pending_, anno);
          merge_annotations(sig->owner, sig->name, anno);
        }
        return s;
      }
    }
    return s;  // aggregate initializer or other brace construct.
  }

  void on_close_brace() {
    --brace_depth_;
    while (!scopes_.empty() && scopes_.back().depth > brace_depth_) {
      close_scope(scopes_.back());
      scopes_.pop_back();
    }
    while (!held_.empty() && held_.back().depth > brace_depth_) {
      held_.pop_back();
    }
    clear_pending();
  }

  void close_scope(const Scope& s) {
    if (s.kind != Scope::kFunction) return;
    model_.functions.push_back(
        {s.owner, s.name, file_.path, s.start_line, line_});
  }

  // -- ';' : member declarations at class scope ---------------------------

  void on_statement_end() {
    if (innermost_kind() == Scope::kClass) parse_class_member();
    clear_pending();
  }

  void parse_class_member() {
    const std::string cls = current_class();
    const std::size_t n = pending_.size();
    // Lock member: `... Mutex <name>;` with nothing (no '&'/'*') between
    // the type and the name — MutexLock's `Mutex& m_;` must not register.
    if (n >= 2 && pending_[n - 1].is_ident && pending_[n - 2].is_ident &&
        pending_[n - 2].text == "Mutex") {
      model_.locks.push_back({cls, pending_[n - 1].text, file_.path, line_});
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (pending_[i].is_ident && pending_[i].text == "ROARRAY_GUARDED_BY") {
        GuardedMember g;
        g.cls = cls;
        if (i > 0 && pending_[i - 1].is_ident) g.member = pending_[i - 1].text;
        if (i + 2 < n && pending_[i + 1].text == "(" &&
            pending_[i + 2].is_ident) {
          g.guard = pending_[i + 2].text;
        }
        g.path = file_.path;
        g.line = line_;
        model_.guarded.push_back(std::move(g));
        return;
      }
    }
    // Method declaration carrying thread-safety annotations.
    MethodAnnotations anno;
    extract_annotations(pending_, anno);
    if (anno.excludes.empty() && anno.requires_held.empty()) return;
    const std::optional<FunctionSig> sig = extract_function_sig(pending_, cls);
    if (sig.has_value() && !sig->is_ctor) {
      merge_annotations(sig->owner, sig->name, anno);
    }
  }

  void merge_annotations(const std::string& owner, const std::string& name,
                         const MethodAnnotations& anno) {
    MethodAnnotations& slot = model_.annotations[{owner, name}];
    slot.excludes.insert(anno.excludes.begin(), anno.excludes.end());
    slot.requires_held.insert(anno.requires_held.begin(),
                              anno.requires_held.end());
  }

  // -- helpers ------------------------------------------------------------

  [[nodiscard]] bool in_function() const {
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::kFunction) return true;
    }
    return false;
  }

  [[nodiscard]] const Scope* innermost_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return &*it;
    }
    return nullptr;
  }

  [[nodiscard]] Scope::Kind innermost_kind() const {
    return scopes_.empty() ? Scope::kNamespace : scopes_.back().kind;
  }

  [[nodiscard]] std::string current_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return {};
  }

  [[nodiscard]] std::vector<std::string> held_snapshot() const {
    std::vector<std::string> out;
    out.reserve(held_.size());
    for (const HeldLock& h : held_) out.push_back(h.cls + "::" + h.member);
    return out;
  }

  void clear_pending() {
    pending_.clear();
    pending_eq_ = false;
  }

  SourceFile& file_;
  CodeModel& model_;
  int line_ = 0;
  int brace_depth_ = 0;
  int paren_depth_ = 0;
  std::vector<Scope> scopes_;
  std::vector<Token> pending_;
  bool pending_eq_ = false;
  std::vector<HeldLock> held_;
  bool capturing_ = false;
  int capture_entry_depth_ = 0;
  int capture_line_ = 0;
  std::vector<Token> capture_tokens_;
  std::string prev1_;
  std::string prev2_;
};

}  // namespace

void scan_file(SourceFile& file, CodeModel& model) {
  FileScanner scanner(file, model);
  scanner.run();
}

}  // namespace roarray::srctool
