// roarray_lint — repo-invariant linter for rules the generic tools
// (clang-tidy, compiler warnings) cannot express.
//
// Rules (scoped by path; see rule_applies):
//   determinism     No std::rand / random_device / wall-clock or timer
//                   calls inside src/. Library results must be a pure
//                   function of inputs + explicit seeds; entropy and
//                   clocks belong to tests, benches, and tools.
//   no-iostream     No <iostream> include or std::cout/cerr/clog/cin
//                   use inside src/. Library code reports through
//                   return values and exceptions; stream state is
//                   global and its static init order is a liability.
//   pragma-once     Every header carries #pragma once.
//   mutable-global  No mutable namespace-scope variables in src/
//                   outside src/runtime/ — shared mutable state is the
//                   runtime layer's job, where it is mutex-guarded and
//                   thread-safety-annotated.
//   unchecked-io    No discarded fread/fwrite results inside src/io.
//                   A short read/write there is data, not noise: it must
//                   flow into the typed TraceError/ReadStatus machinery,
//                   so statement-position and (void)-cast calls are
//                   banned (results used in a condition/assignment pass).
//   intrinsics      Raw SIMD intrinsics — <immintrin.h>/<arm_neon.h>
//                   includes, `_mm*`/`__m<N>` identifiers, NEON
//                   `v*q_f64`-style names — live only in
//                   src/linalg/backend/. Everything else goes through
//                   the Backend kernel table, so vector code stays
//                   behind one dispatch point with a scalar twin.
//
// A finding on a specific line can be locally suppressed with a
// justification comment on that line:
//     ... // roarray-lint: allow(<rule>) <why>
//
// Usage:
//   roarray_lint <path>...   lint files / directory trees (exit 1 on
//                            findings)
//   roarray_lint --self-test run the built-in fixture suite (exit 1 on
//                            mismatch)
//
// Dependency-free by design (std only) so it builds in any environment
// and runs as an ordinary ctest case. The comment/string-aware scanning
// primitives (strip_code, has_token, suppression parsing) are shared
// with roarray_analyze via roarray_analyze/lexer.hpp — one lexer, two
// tools — which is also why the `roarray-analyze: allow(...)` marker
// suppresses here too.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "roarray_analyze/finding.hpp"
#include "roarray_analyze/lexer.hpp"

namespace {

namespace fs = std::filesystem;

using roarray::srctool::Finding;
using roarray::srctool::has_token;
using roarray::srctool::ident_char;
using roarray::srctool::path_components;
using roarray::srctool::starts_with;
using roarray::srctool::strip_code;
using roarray::srctool::suppressed;
using roarray::srctool::trim;

struct PathScope {
  bool in_src = false;      ///< some directory component is "src".
  bool in_runtime = false;  ///< under a "runtime" component inside src.
  bool in_io = false;       ///< under an "io" component inside src.
  bool in_backend = false;  ///< under "linalg/backend" inside src.
};

[[nodiscard]] PathScope classify(const std::string& path) {
  PathScope scope;
  const auto parts = path_components(path);
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "src") {
      scope.in_src = true;
      for (std::size_t j = i + 1; j + 1 < parts.size(); ++j) {
        if (parts[j] == "runtime") scope.in_runtime = true;
        if (parts[j] == "io") scope.in_io = true;
        if (parts[j] == "linalg" && j + 2 < parts.size() &&
            parts[j + 1] == "backend") {
          scope.in_backend = true;
        }
      }
    }
  }
  return scope;
}

/// Tokens that make library output depend on process entropy or clocks.
/// `require_call` distinguishes calls from substrings of longer names.
struct ForbiddenToken {
  const char* token;
  bool require_call;
};
constexpr ForbiddenToken kDeterminismTokens[] = {
    {"rand", true},          {"srand", true},
    {"rand_r", true},        {"random_device", false},
    {"system_clock", false}, {"steady_clock", false},
    {"high_resolution_clock", false},
    {"gettimeofday", true},  {"clock_gettime", true},
    {"time", true},          {"clock", true},
    {"localtime", true},     {"gmtime", true},
};

/// Heuristic for a mutable namespace-scope variable definition. Only
/// lines at column 0 are considered (this codebase does not indent
/// namespace contents; class members and function bodies are indented),
/// and declaration keywords that cannot define a mutable object bail
/// out early. Function definitions/declarations are excluded by the
/// no-parenthesis requirement.
[[nodiscard]] bool looks_like_mutable_global(const std::string& code) {
  if (code.empty() || std::isspace(static_cast<unsigned char>(code[0])) != 0) {
    return false;
  }
  const std::string t = trim(code);
  for (const char* benign :
       {"#", "//", "}", "{", "using ", "typedef ", "namespace ", "template",
        "struct ", "class ", "enum ", "return ", "friend ", "extern ",
        "case ", "public", "private", "protected", "ROARRAY_", "TEST"}) {
    if (starts_with(t, benign)) return false;
  }
  if (t.find("const") != std::string::npos) return false;  // const/constexpr
  if (t.find('(') != std::string::npos) return false;      // function-ish
  const bool storage = starts_with(t, "static ") || starts_with(t, "inline ") ||
                       starts_with(t, "thread_local ") ||
                       starts_with(t, "mutable ");
  const bool defines = t.find('=') != std::string::npos ||
                       (!t.empty() && t.back() == ';');
  if (!defines) return false;
  if (storage) return true;
  if (!ident_char(t[0])) return false;
  // Plain `T name = init;` at namespace scope. Without an initializer,
  // require at least two identifier-ish tokens (`std::random_device rd;`)
  // so single-word statements don't trip.
  if (t.find('=') != std::string::npos) return true;
  int words = 0;
  bool in_word = false;
  for (const char c : t) {
    const bool w = ident_char(c);
    if (w && !in_word) ++words;
    in_word = w;
  }
  return words >= 2;
}

/// True when `code` (already comment/string-stripped) contains a raw
/// SIMD intrinsic identifier: anything beginning `_mm` (SSE/AVX/AVX-512
/// calls and masks), `__m<digit>` (the vector register types), or a
/// NEON-style `v...q_{f,s,u}<width>` / `v...q_lane` name.
[[nodiscard]] bool has_intrinsic_token(std::string_view code) {
  std::size_t i = 0;
  while (i < code.size()) {
    if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t e = i;
    while (e < code.size() && ident_char(code[e])) ++e;
    const std::string_view id = code.substr(i, e - i);
    if (starts_with(id, "_mm")) return true;
    if (starts_with(id, "__m") && id.size() > 3 &&
        std::isdigit(static_cast<unsigned char>(id[3])) != 0) {
      return true;
    }
    if (id.size() > 6 && id[0] == 'v' &&
        (id.find("q_f64") != std::string_view::npos ||
         id.find("q_f32") != std::string_view::npos ||
         id.find("q_u64") != std::string_view::npos ||
         id.find("q_s64") != std::string_view::npos ||
         id.find("q_lane_") != std::string_view::npos)) {
      return true;
    }
    i = e;
  }
  return false;
}

/// Detects an fread/fwrite call whose result is visibly discarded: the
/// trimmed statement begins with the call itself, optionally behind a
/// (void) cast. Results consumed by a condition, assignment, or
/// comparison leave the call mid-expression and do not match.
[[nodiscard]] bool discards_stdio_result(const std::string& trimmed) {
  std::string_view t = trimmed;
  if (starts_with(t, "(void)")) {
    t.remove_prefix(6);
    while (!t.empty() && std::isspace(static_cast<unsigned char>(t[0])) != 0) {
      t.remove_prefix(1);
    }
  }
  for (const std::string_view call : {"std::fread", "std::fwrite", "::fread",
                                      "::fwrite", "fread", "fwrite"}) {
    if (!starts_with(t, call)) continue;
    std::size_t i = call.size();
    while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i])) != 0) {
      ++i;
    }
    if (i < t.size() && t[i] == '(') return true;
  }
  return false;
}

void scan_content(const std::string& path, const std::string& content,
                  std::vector<Finding>& findings) {
  const PathScope scope = classify(path);
  const bool is_header = path.size() >= 4 &&
                         (path.compare(path.size() - 4, 4, ".hpp") == 0 ||
                          path.compare(path.size() - 2, 2, ".h") == 0);

  std::istringstream in(content);
  std::string raw;
  bool in_block = false;
  bool saw_pragma_once = false;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string code = strip_code(raw, in_block);
    const std::string t = trim(code);
    if (t == "#pragma once") saw_pragma_once = true;

    // Applies everywhere the linter looks (src, tests, benches, tools),
    // with src/linalg/backend/ as the only sanctioned home.
    if (!scope.in_backend && !suppressed(raw, "intrinsics")) {
      const bool include_hit =
          starts_with(t, "#include") &&
          (t.find("immintrin.h") != std::string::npos ||
           t.find("arm_neon.h") != std::string::npos);
      if (include_hit || has_intrinsic_token(code)) {
        findings.push_back(
            {path, lineno, "intrinsics",
             "raw SIMD intrinsics are confined to src/linalg/backend/ "
             "(add a kernel to the Backend table instead)"});
      }
    }

    if (scope.in_src) {
      if (!suppressed(raw, "determinism")) {
        for (const ForbiddenToken& f : kDeterminismTokens) {
          if (has_token(code, f.token, f.require_call)) {
            findings.push_back(
                {path, lineno, "determinism",
                 std::string("forbidden nondeterminism source '") + f.token +
                     "' in library code (seed explicitly instead)"});
            break;
          }
        }
      }
      if (!suppressed(raw, "no-iostream")) {
        const bool include_hit = starts_with(t, "#include") &&
                                 t.find("<iostream>") != std::string::npos;
        const bool use_hit = has_token(code, "cout") ||
                             has_token(code, "cerr") ||
                             has_token(code, "clog") || has_token(code, "cin");
        if (include_hit || use_hit) {
          findings.push_back({path, lineno, "no-iostream",
                              "iostream is banned in library targets (return "
                              "values / exceptions instead)"});
        }
      }
      if (scope.in_io && !suppressed(raw, "unchecked-io") &&
          discards_stdio_result(t)) {
        findings.push_back(
            {path, lineno, "unchecked-io",
             "discarded fread/fwrite result in src/io (short reads/writes "
             "must reach the typed TraceError/ReadStatus paths)"});
      }
      if (!scope.in_runtime && !suppressed(raw, "mutable-global") &&
          looks_like_mutable_global(code)) {
        findings.push_back(
            {path, lineno, "mutable-global",
             "mutable namespace-scope state outside src/runtime/ (move it "
             "into the runtime layer and guard it)"});
      }
    }
  }
  if (is_header && !saw_pragma_once) {
    findings.push_back(
        {path, 1, "pragma-once", "header is missing #pragma once"});
  }
}

[[nodiscard]] bool scan_file(const std::string& path,
                             std::vector<Finding>& findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "roarray_lint: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  scan_content(path, buf.str(), findings);
  return true;
}

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

[[nodiscard]] bool collect(const std::string& arg,
                           std::vector<std::string>& files) {
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    for (auto it = fs::recursive_directory_iterator(arg, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          (name == ".git" || starts_with(name, "build"))) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path().string());
      }
    }
    return !ec;
  }
  if (fs::is_regular_file(arg, ec)) {
    files.push_back(arg);
    return true;
  }
  std::fprintf(stderr, "roarray_lint: no such file or directory: %s\n",
               arg.c_str());
  return false;
}

// ---------------------------------------------------------------------------
// Self-test fixtures: each snippet is scanned under a virtual path and
// must produce exactly the expected rule hits.

struct Fixture {
  const char* name;
  const char* path;
  const char* content;
  std::vector<std::string> expected_rules;  ///< sorted, may repeat.
};

[[nodiscard]] int run_self_test() {
  const std::vector<Fixture> fixtures = {
      {"rand call flagged", "src/dsp/a.cpp",
       "int f() { return rand(); }\n", {"determinism"}},
      {"std::rand flagged", "src/dsp/a.cpp",
       "#include <cstdlib>\nint f() { return std::rand(); }\n",
       {"determinism"}},
      {"random_device flagged", "src/core/b.cpp",
       "std::random_device rd;\n", {"determinism", "mutable-global"}},
      {"wall clock flagged", "src/core/b.cpp",
       "auto t = std::chrono::system_clock::now();\n", {"determinism"}},
      {"time() call flagged", "src/core/b.cpp",
       "long f() { return time(nullptr); }\n", {"determinism"}},
      {"runtime( is not time(", "src/core/b.cpp",
       "void runtime(int); void f() { runtime (3); }\n", {}},
      {"comment mention ok", "src/core/b.cpp",
       "// steady_clock would break determinism here\nint x() { return 1; }\n",
       {}},
      {"string mention ok", "src/core/b.cpp",
       "const char* k = \"std::rand() is banned\";\n", {}},
      {"block comment ok", "src/core/b.cpp",
       "/* srand(7) was\n   the old seeding */\nint y() { return 2; }\n", {}},
      {"suppression honored", "src/core/b.cpp",
       "long f() { return time(nullptr); }  // roarray-lint: allow(determinism)"
       " boot stamp only\n",
       {}},
      {"clock outside src ok", "bench/b.cpp",
       "auto t = std::chrono::steady_clock::now();\n", {}},
      {"iostream include flagged", "src/eval/c.cpp",
       "#include <iostream>\n", {"no-iostream"}},
      {"cerr use flagged", "src/eval/c.cpp",
       "void f() { std::cerr << 1; }\n", {"no-iostream"}},
      {"iostream in tests ok", "tests/t.cpp", "#include <iostream>\n", {}},
      {"missing pragma once", "src/dsp/h.hpp", "int f();\n", {"pragma-once"}},
      {"pragma once present", "src/dsp/h.hpp",
       "// doc\n#pragma once\nint f();\n", {}},
      {"pragma enforced outside src too", "tests/t.hpp", "int f();\n",
       {"pragma-once"}},
      {"mutable global flagged", "src/music/g.cpp",
       "static int call_count = 0;\n", {"mutable-global"}},
      {"inline global flagged", "src/music/g.hpp",
       "#pragma once\ninline int hits = 0;\n", {"mutable-global"}},
      {"plain global flagged", "src/music/g.cpp",
       "int counter = 0;\n", {"mutable-global"}},
      {"const global ok", "src/music/g.cpp",
       "static const int kLimit = 3;\n", {}},
      {"constexpr global ok", "src/music/g.hpp",
       "#pragma once\ninline constexpr double kPi = 3.14;\n", {}},
      {"function def ok", "src/music/g.cpp",
       "static int helper() { return 1; }\n", {}},
      {"indented local ok", "src/music/g.cpp",
       "int f() {\n  static int memo = compute();\n  return memo;\n}\n", {}},
      {"runtime exempt", "src/runtime/pool.cpp",
       "inline thread_local bool in_region = false;\n", {}},
      {"global in tests ok", "tests/t.cpp", "static int hits = 0;\n", {}},
      {"suppressed global ok", "src/music/g.cpp",
       "static int hits = 0;  // roarray-lint: allow(mutable-global) why\n",
       {}},
      {"bare fread flagged in io", "src/io/r.cpp",
       "void f(FILE* fp, char* b) {\n  fread(b, 1, 8, fp);\n}\n",
       {"unchecked-io"}},
      {"void-cast fwrite flagged in io", "src/io/w.cpp",
       "void f(FILE* fp, const char* b) {\n  (void)fwrite(b, 1, 8, fp);\n}\n",
       {"unchecked-io"}},
      {"std::fread flagged in io", "src/io/r.cpp",
       "void f(FILE* fp, char* b) {\n  std::fread(b, 1, 8, fp);\n}\n",
       {"unchecked-io"}},
      {"checked fread ok in io", "src/io/r.cpp",
       "bool f(FILE* fp, char* b) {\n  return fread(b, 1, 8, fp) == 8;\n}\n",
       {}},
      {"assigned fwrite ok in io", "src/io/w.cpp",
       "void f(FILE* fp, const char* b) {\n"
       "  const size_t n = fwrite(b, 1, 8, fp);\n  (void)n;\n}\n",
       {}},
      {"fread-like name ok in io", "src/io/r.cpp",
       "void fread_all(int);\nvoid f() {\n  fread_all(3);\n}\n", {}},
      {"bare fread outside io ok", "src/sim/s.cpp",
       "void f(FILE* fp, char* b) {\n  fread(b, 1, 8, fp);\n}\n", {}},
      {"suppressed fread ok in io", "src/io/r.cpp",
       "void f(FILE* fp, char* b) {\n"
       "  fread(b, 1, 8, fp);  // roarray-lint: allow(unchecked-io) probe\n"
       "}\n",
       {}},
      {"immintrin include flagged outside backend", "src/linalg/gemm.cpp",
       "#include <immintrin.h>\n", {"intrinsics"}},
      {"arm_neon include flagged outside backend", "src/dsp/x.cpp",
       "#include <arm_neon.h>\n", {"intrinsics"}},
      {"avx call flagged outside backend", "src/sparse/p.cpp",
       "void f(double* x) {\n  __m256d v = _mm256_loadu_pd(x);\n"
       "  _mm256_storeu_pd(x, v);\n}\n",
       {"intrinsics", "intrinsics"}},
      {"neon call flagged outside backend", "src/channel/c.cpp",
       "void f(double* x) {\n  auto v = vld1q_f64(x);\n"
       "  vst1q_f64(x, vfmaq_f64(v, v, v));\n}\n",
       {"intrinsics", "intrinsics"}},
      {"intrinsics flagged in tests too", "tests/t.cpp",
       "void f(double* x) {\n  auto v = _mm_loadu_pd(x);\n  (void)v;\n}\n",
       {"intrinsics"}},
      {"intrinsics ok inside backend", "src/linalg/backend/simd_avx2.cpp",
       "#include <immintrin.h>\n"
       "void f(double* x) {\n  _mm256_storeu_pd(x, _mm256_setzero_pd());\n}\n",
       {}},
      {"intrinsic in comment ok", "src/linalg/gemm.cpp",
       "// the backend's _mm256_fmadd_pd path handles this\nint f();\n", {}},
      {"intrinsic in string ok", "src/eval/r.cpp",
       "const char* k = \"_mm256_fmadd_pd\";\n", {}},
      {"vector-ish name ok", "src/music/m.cpp",
       "int vq_f6(int virtq_lanes);\nvoid f(int verify_f64q);\n", {}},
      {"suppressed intrinsic ok", "src/dsp/y.cpp",
       "auto v = _mm_pause();  // roarray-lint: allow(intrinsics) spin hint\n",
       {}},
      // Serve-layer pair: the sharded router is src/ code like any
      // other — iostream debugging is flagged, while a clean header
      // with #pragma once and leaf-lock annotations passes untouched.
      {"iostream flagged in serve router", "src/serve/sharded.cpp",
       "#include <iostream>\nvoid dbg() { std::cout << \"steal\\n\"; }\n",
       {"no-iostream", "no-iostream"}},
      {"annotated serve header ok", "src/serve/sharded.hpp",
       "// router front end\n#pragma once\n"
       "#include \"runtime/thread_annotations.hpp\"\n"
       "class S {\n  mutable roarray::runtime::Mutex router_mutex_;\n"
       "  bool stopping_ ROARRAY_GUARDED_BY(router_mutex_) = false;\n};\n",
       {}},
  };

  int failures = 0;
  for (const Fixture& fx : fixtures) {
    std::vector<Finding> findings;
    scan_content(fx.path, fx.content, findings);
    std::vector<std::string> got;
    got.reserve(findings.size());
    for (const Finding& f : findings) got.push_back(f.rule);
    std::sort(got.begin(), got.end());
    std::vector<std::string> want = fx.expected_rules;
    std::sort(want.begin(), want.end());
    if (got != want) {
      ++failures;
      std::string got_s, want_s;
      for (const auto& r : got) got_s += r + " ";
      for (const auto& r : want) want_s += r + " ";
      std::fprintf(stderr, "self-test FAIL: %s\n  want: [%s]\n  got:  [%s]\n",
                   fx.name, want_s.c_str(), got_s.c_str());
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "roarray_lint self-test: %d fixture(s) failed\n",
                 failures);
    return 1;
  }
  std::printf("roarray_lint self-test: %zu fixtures OK\n", fixtures.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s [--self-test] <path>...\n", argv[0]);
    return 2;
  }
  if (std::string_view(argv[1]) == "--self-test") return run_self_test();

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (!collect(argv[i], files)) return 2;
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const std::string& f : files) {
    if (!scan_file(f, findings)) return 2;
  }
  roarray::srctool::print_findings(findings);
  if (!findings.empty()) {
    std::fprintf(stderr, "roarray_lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), files.size());
    return 1;
  }
  std::printf("roarray_lint: %zu files clean\n", files.size());
  return 0;
}
