#include "channel/csi.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/steering.hpp"
#include "linalg/backend/backend.hpp"

namespace roarray::channel {

using linalg::cxd;
using linalg::index_t;

CMat synthesize_csi(const std::vector<Path>& paths, const dsp::ArrayConfig& cfg,
                    const CsiImpairments& imp) {
  cfg.validate();
  const index_t m = cfg.num_antennas;
  const index_t l = cfg.num_subcarriers;
  if (!imp.antenna_phase_offsets_rad.empty() &&
      static_cast<index_t>(imp.antenna_phase_offsets_rad.size()) != m) {
    throw std::invalid_argument("synthesize_csi: phase offset count != antennas");
  }
  if (imp.polarization_scale <= 0.0 || imp.polarization_scale > 1.0) {
    throw std::invalid_argument("synthesize_csi: polarization_scale must be in (0,1]");
  }

  CMat c(m, l);
  const auto& bk = linalg::backend::active();
  for (const Path& p : paths) {
    const cxd lam = dsp::lambda_aoa(p.aoa_deg, cfg.spacing_over_wavelength());
    const cxd gam = dsp::gamma_toa(p.toa_s + imp.detection_delay_s,
                                   cfg.subcarrier_spacing_hz);
    const cxd g = p.gain * imp.polarization_scale;
    cxd gl{1.0, 0.0};
    for (index_t sc = 0; sc < l; ++sc) {
      // Column sc accumulates (g gl) lam^ant over antennas: one backend
      // phase recurrence per (path, subcarrier) column.
      bk.phase_ramp_accum(g * gl, lam, m, c.data() + sc * m);
      gl *= gam;
    }
  }
  if (!imp.antenna_phase_offsets_rad.empty()) {
    for (index_t ant = 0; ant < m; ++ant) {
      const cxd rot = std::polar(1.0, imp.antenna_phase_offsets_rad[
          static_cast<std::size_t>(ant)]);
      for (index_t sc = 0; sc < l; ++sc) c(ant, sc) *= rot;
    }
  }
  if (!imp.antenna_gains.empty()) {
    if (static_cast<index_t>(imp.antenna_gains.size()) != m) {
      throw std::invalid_argument("synthesize_csi: antenna gain count != antennas");
    }
    for (index_t ant = 0; ant < m; ++ant) {
      const cxd g = imp.antenna_gains[static_cast<std::size_t>(ant)];
      for (index_t sc = 0; sc < l; ++sc) c(ant, sc) *= g;
    }
  }
  return c;
}

double mean_power(const CMat& csi) {
  if (csi.size() == 0) return 0.0;
  double acc = 0.0;
  for (index_t j = 0; j < csi.cols(); ++j)
    for (index_t i = 0; i < csi.rows(); ++i) acc += std::norm(csi(i, j));
  return acc / static_cast<double>(csi.size());
}

double rssi_db(const CMat& csi) {
  const double p = mean_power(csi);
  return 10.0 * std::log10(std::max(p, 1e-30));
}

double burst_rssi_weight(std::span<const CMat> packets) {
  if (packets.empty()) return 0.0;
  double acc = 0.0;
  for (const CMat& csi : packets) acc += mean_power(csi);
  return acc / static_cast<double>(packets.size());
}

double add_noise(CMat& csi, double snr_db, std::mt19937_64& rng) {
  const double signal_power = mean_power(csi);
  const double noise_power = signal_power / std::pow(10.0, snr_db / 10.0);
  // Circularly symmetric: variance split evenly between re and im.
  const double sigma_component = std::sqrt(noise_power / 2.0);
  std::normal_distribution<double> n(0.0, sigma_component);
  for (index_t j = 0; j < csi.cols(); ++j) {
    for (index_t i = 0; i < csi.rows(); ++i) {
      csi(i, j) += cxd{n(rng), n(rng)};
    }
  }
  return std::sqrt(noise_power);
}

PacketBurst generate_burst(const std::vector<Path>& paths,
                           const dsp::ArrayConfig& array_cfg,
                           const BurstConfig& cfg, std::mt19937_64& rng) {
  if (cfg.num_packets < 1) {
    throw std::invalid_argument("generate_burst: need at least one packet");
  }
  if (cfg.max_detection_delay_s < 0.0) {
    throw std::invalid_argument("generate_burst: negative detection delay bound");
  }
  std::uniform_real_distribution<double> delay(0.0, cfg.max_detection_delay_s);
  std::normal_distribution<double> jitter(0.0, cfg.path_phase_jitter_rad);

  // Polarization deviation: overall cos^2 power loss plus per-antenna
  // manifold distortion, fixed for the burst (the client does not move).
  std::vector<cxd> pol_gains;
  double pol_scale = 1.0;
  if (cfg.polarization_deviation_rad != 0.0) {
    const double dev = std::abs(cfg.polarization_deviation_rad);
    const double c = std::cos(dev);
    pol_scale = std::max(c * c, 0.05);
    const double distortion = std::sin(dev);
    std::normal_distribution<double> amp(0.0, 0.4 * distortion);
    std::normal_distribution<double> ph(0.0, 1.2 * distortion);
    pol_gains.resize(static_cast<std::size_t>(array_cfg.num_antennas));
    for (auto& g : pol_gains) {
      g = std::polar(std::max(0.1, 1.0 + amp(rng)), ph(rng));
    }
  }

  PacketBurst out;
  out.csi.reserve(static_cast<std::size_t>(cfg.num_packets));
  out.detection_delays.reserve(static_cast<std::size_t>(cfg.num_packets));
  for (index_t p = 0; p < cfg.num_packets; ++p) {
    CsiImpairments imp;
    imp.detection_delay_s = cfg.max_detection_delay_s > 0.0 ? delay(rng) : 0.0;
    imp.antenna_phase_offsets_rad = cfg.antenna_phase_offsets_rad;
    imp.polarization_scale = cfg.polarization_scale * pol_scale;
    imp.antenna_gains = pol_gains;
    if (!cfg.antenna_gains.empty()) {
      if (imp.antenna_gains.empty()) {
        imp.antenna_gains = cfg.antenna_gains;
      } else {
        for (std::size_t a = 0; a < imp.antenna_gains.size(); ++a) {
          imp.antenna_gains[a] *= cfg.antenna_gains[a];
        }
      }
    }
    std::vector<Path> jittered = paths;
    if (cfg.path_phase_jitter_rad > 0.0) {
      for (Path& path : jittered) {
        path.gain *= std::polar(1.0, jitter(rng));
      }
    }
    CMat c = synthesize_csi(jittered, array_cfg, imp);
    // snr_db targets the unattenuated channel: polarization losses eat
    // into the link budget instead of being silently compensated.
    const double total_scale = cfg.polarization_scale * pol_scale;
    const double effective_snr_db =
        cfg.snr_db + 20.0 * std::log10(std::max(total_scale, 1e-6));
    out.noise_sigma = add_noise(c, effective_snr_db, rng);
    out.csi.push_back(std::move(c));
    out.detection_delays.push_back(imp.detection_delay_s);
  }
  return out;
}

}  // namespace roarray::channel
