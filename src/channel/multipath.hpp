// Image-method multipath ray tracing for a rectangular room.
#pragma once

#include <span>
#include <vector>

#include "channel/geometry.hpp"
#include "dsp/constants.hpp"
#include "linalg/types.hpp"

namespace roarray::channel {

using linalg::cxd;
using linalg::index_t;

/// One propagation path from client to AP.
struct Path {
  double aoa_deg = 0.0;   ///< angle of arrival at the AP array, [0, 180].
  double toa_s = 0.0;     ///< absolute propagation time (length / c).
  cxd gain{};             ///< complex attenuation a_k (amplitude + phase).
  int reflections = 0;    ///< 0 = direct (LoS), 1 = single bounce, ...
  double length_m = 0.0;  ///< geometric path length.
};

/// Multipath generation parameters.
struct MultipathConfig {
  int max_reflections = 1;        ///< 1 => direct + 4 wall bounces.
  double reflection_loss = 0.45;  ///< amplitude kept per wall bounce.
  double amplitude_at_1m = 1.0;   ///< free-space amplitude reference.
  /// Paths weaker than this fraction of the strongest path are dropped,
  /// keeping the dominant-path count sparse as the paper assumes.
  double min_rel_amplitude = 0.02;
  /// Effective scattering amplitude of point scatterers (furniture,
  /// people): a scatterer at distances (d1, d2) from client and AP
  /// contributes amplitude amplitude_at_1m * scatter_coeff / (d1 * d2).
  double scatter_coeff = 0.5;

  void validate() const {
    if (max_reflections < 0 || max_reflections > 2) {
      throw std::invalid_argument("MultipathConfig: max_reflections must be 0..2");
    }
    if (reflection_loss < 0.0 || reflection_loss > 1.0) {
      throw std::invalid_argument("MultipathConfig: reflection_loss must be in [0,1]");
    }
    if (amplitude_at_1m <= 0.0) {
      throw std::invalid_argument("MultipathConfig: non-positive amplitude");
    }
  }
};

/// Traces the direct path and up-to-second-order wall reflections from
/// `client` to the array at `ap` inside `room` using the image method.
///
/// Path amplitude follows free-space spreading amplitude_at_1m / length
/// times reflection_loss per bounce; path phase is the carrier phase
/// -2*pi*length/lambda. Optional point scatterers add single-bounce
/// diffuse paths (client -> scatterer -> AP). Paths are returned sorted
/// by ascending ToA, so paths.front() is always the direct path. Both
/// endpoints must lie inside the room.
[[nodiscard]] std::vector<Path> trace_paths(
    const Room& room, const ApPose& ap, const Vec2& client,
    const MultipathConfig& cfg, const dsp::ArrayConfig& array_cfg,
    std::span<const Vec2> scatterers = {});

/// Total received signal power (sum of squared path amplitudes).
[[nodiscard]] double total_path_power(const std::vector<Path>& paths);

}  // namespace roarray::channel
