#include "channel/multipath.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace roarray::channel {

namespace {

/// Mirrors a point across one of the four room walls.
/// wall: 0 = x=0, 1 = x=W, 2 = y=0, 3 = y=H.
Vec2 mirror(const Vec2& p, int wall, const Room& room) {
  switch (wall) {
    case 0: return {-p.x, p.y};
    case 1: return {2.0 * room.width_m - p.x, p.y};
    case 2: return {p.x, -p.y};
    case 3: return {p.x, 2.0 * room.height_m - p.y};
    default: throw std::invalid_argument("mirror: bad wall index");
  }
}

/// Builds the path arriving at `ap` from the (possibly mirrored) image
/// of the client, with `bounces` wall reflections.
Path make_path(const ApPose& ap, const Vec2& image, int bounces,
               const MultipathConfig& cfg, const dsp::ArrayConfig& array_cfg) {
  Path p;
  p.reflections = bounces;
  p.length_m = distance(ap.position, image);
  // Guard against a degenerate zero-length path (client on top of AP).
  p.length_m = std::max(p.length_m, 1e-3);
  p.toa_s = p.length_m / dsp::kSpeedOfLight;
  p.aoa_deg = ap.aoa_of_direction(image - ap.position);
  const double amp = cfg.amplitude_at_1m / p.length_m *
                     std::pow(cfg.reflection_loss, bounces);
  const double phase = -2.0 * dsp::kPi * p.length_m / array_cfg.wavelength_m;
  p.gain = std::polar(amp, phase);
  return p;
}

}  // namespace

std::vector<Path> trace_paths(const Room& room, const ApPose& ap,
                              const Vec2& client, const MultipathConfig& cfg,
                              const dsp::ArrayConfig& array_cfg,
                              std::span<const Vec2> scatterers) {
  room.validate();
  cfg.validate();
  array_cfg.validate();
  if (!room.contains(ap.position) || !room.contains(client)) {
    throw std::invalid_argument("trace_paths: endpoints must be inside the room");
  }

  std::vector<Path> paths;
  paths.push_back(make_path(ap, client, 0, cfg, array_cfg));
  const double direct_toa = paths.front().toa_s;

  for (const Vec2& sc : scatterers) {
    if (!room.contains(sc)) {
      throw std::invalid_argument("trace_paths: scatterer outside the room");
    }
    // A scatterer sitting on an endpoint forms no distinct bounce path:
    // at the AP its arrival direction is undefined (zero-length leg),
    // and at the client it coincides with the direct path. Skip it.
    if (distance(sc, ap.position) < 1e-9 || distance(client, sc) < 1e-9) {
      continue;
    }
    const double d1 = std::max(distance(client, sc), 1e-3);
    const double d2 = std::max(distance(sc, ap.position), 1e-3);
    Path p;
    p.reflections = 1;
    p.length_m = d1 + d2;
    p.toa_s = p.length_m / dsp::kSpeedOfLight;
    p.aoa_deg = ap.aoa_of_direction(sc - ap.position);
    const double amp = cfg.amplitude_at_1m * cfg.scatter_coeff / (d1 * d2);
    const double phase = -2.0 * dsp::kPi * p.length_m / array_cfg.wavelength_m;
    p.gain = std::polar(amp, phase);
    paths.push_back(p);
  }

  if (cfg.max_reflections >= 1) {
    for (int wall = 0; wall < 4; ++wall) {
      paths.push_back(make_path(ap, mirror(client, wall, room), 1, cfg, array_cfg));
    }
  }
  if (cfg.max_reflections >= 2) {
    // Second-order images: reflect across wall a then wall b. Mirroring
    // twice across the same wall is the identity, and opposite-wall
    // pairs in both orders give distinct images, so enumerate ordered
    // pairs with a != b.
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        if (a == b) continue;
        const Vec2 image = mirror(mirror(client, a, room), b, room);
        paths.push_back(make_path(ap, image, 2, cfg, array_cfg));
      }
    }
  }

  // Drop negligible paths (keeps the dominant-path count sparse). The
  // direct path is exempt: it always physically exists (no occlusion in
  // this model) and anchors the ground truth every downstream consumer
  // reads from paths.front(), even when a nearby scatterer out-amps it.
  double max_amp = 0.0;
  for (const Path& p : paths) max_amp = std::max(max_amp, std::abs(p.gain));
  const double floor_amp = cfg.min_rel_amplitude * max_amp;
  std::erase_if(paths, [&](const Path& p) {
    return p.reflections > 0 && std::abs(p.gain) < floor_amp;
  });

  // The triangle inequality puts every indirect path at or beyond the
  // direct ToA, but rounded leg sums can undershoot it by a few ulp
  // (e.g. a scatterer collinear with the client-AP segment). Clamp so
  // the contract "paths.front() is the direct path" survives FP.
  for (Path& p : paths) {
    if (p.reflections > 0) p.toa_s = std::max(p.toa_s, direct_toa);
  }

  // Deduplicate second-order images that coincide (e.g. corner cases):
  // two paths with nearly identical AoA and ToA merge coherently.
  // Ties sort direct-first so an exactly-collinear bounce cannot
  // displace (or absorb) the direct path.
  std::sort(paths.begin(), paths.end(), [](const Path& x, const Path& y) {
    if (x.toa_s != y.toa_s) return x.toa_s < y.toa_s;
    return x.reflections < y.reflections;
  });
  std::vector<Path> merged;
  for (const Path& p : paths) {
    if (!merged.empty() &&
        std::abs(merged.back().toa_s - p.toa_s) < 1e-12 &&
        dsp::angle_diff_deg(merged.back().aoa_deg, p.aoa_deg) < 1e-6) {
      merged.back().gain += p.gain;
    } else {
      merged.push_back(p);
    }
  }
  return merged;
}

double total_path_power(const std::vector<Path>& paths) {
  double acc = 0.0;
  for (const Path& p : paths) acc += std::norm(p.gain);
  return acc;
}

}  // namespace roarray::channel
