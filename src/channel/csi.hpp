// CSI synthesis: turns multipath geometry into the complex M x L channel
// matrices an Intel-5300-like receiver would report (paper Eq. 4).
#pragma once

#include <random>
#include <span>
#include <vector>

#include "channel/multipath.hpp"
#include "dsp/constants.hpp"
#include "linalg/matrix.hpp"

namespace roarray::channel {

using linalg::CMat;

/// Hardware / capture impairments applied to a synthesized CSI matrix.
struct CsiImpairments {
  /// Packet detection delay: an unknown per-packet time offset added to
  /// every path's ToA (the paper's Fig. 4 nuisance). Seconds.
  double detection_delay_s = 0.0;
  /// Per-antenna static phase offsets in radians (size M; empty = none).
  /// These are the offsets phase calibration must undo.
  std::vector<double> antenna_phase_offsets_rad;
  /// Amplitude scale from antenna polarization mismatch, in (0, 1].
  double polarization_scale = 1.0;
  /// Arbitrary per-antenna complex gains (size M; empty = unity).
  /// Models manifold distortion, e.g. the per-element polarization
  /// response mismatch of a tilted client antenna (paper Fig. 8c).
  std::vector<cxd> antenna_gains;
};

/// Noiseless CSI matrix (M x L) for the given paths:
/// C(m, l) = sum_k a_k * Lambda(theta_k)^m * Gamma(toa_k + delay)^l
///           * exp(j beta_m) * polarization_scale.
[[nodiscard]] CMat synthesize_csi(const std::vector<Path>& paths,
                                  const dsp::ArrayConfig& cfg,
                                  const CsiImpairments& imp = {});

/// Adds circularly-symmetric complex Gaussian noise so the resulting
/// per-element SNR equals snr_db (relative to the mean signal power of
/// `csi`). Returns the noise standard deviation that was used.
double add_noise(CMat& csi, double snr_db, std::mt19937_64& rng);

/// Mean per-element signal power of a CSI matrix.
[[nodiscard]] double mean_power(const CMat& csi);

/// RSSI in dB (arbitrary reference) from mean CSI power.
[[nodiscard]] double rssi_db(const CMat& csi);

/// Burst-level RSSI fusion weight: the mean of mean_power over the
/// packets, accumulated in packet order. This exact expression (same
/// order, same division) is shared by simulation and replay so the
/// localization weights are bit-identical either way; 0 for an empty
/// burst.
[[nodiscard]] double burst_rssi_weight(std::span<const CMat> packets);

/// A burst of CSI measurements from consecutive packets, each with its
/// own detection delay and noise realization but shared geometry.
struct PacketBurst {
  std::vector<CMat> csi;                 ///< one M x L matrix per packet.
  std::vector<double> detection_delays;  ///< ground-truth per-packet delays.
  double noise_sigma = 0.0;              ///< per-element noise std used.
};

/// Parameters for generating a burst of packets.
struct BurstConfig {
  linalg::index_t num_packets = 15;
  double snr_db = 20.0;
  /// Detection delays are drawn uniformly from [0, max_detection_delay_s].
  double max_detection_delay_s = 100e-9;
  std::vector<double> antenna_phase_offsets_rad;  ///< static per-AP offsets.
  /// Static per-antenna complex gains (empty = unity), e.g. receive-chain
  /// gain imbalance. Composed with any polarization-induced gains.
  std::vector<cxd> antenna_gains;
  double polarization_scale = 1.0;
  /// Std-dev of a per-packet, per-path Gaussian phase perturbation
  /// [rad]. Models the slow temporal decorrelation real channels show
  /// across packets (residual CFO/SFO, micro-mobility); 0 = a perfectly
  /// static, fully coherent channel.
  double path_phase_jitter_rad = 0.0;
  /// Client-antenna polarization deviation from the AP polarization
  /// plane [rad]. Nonzero deviation both attenuates the received power
  /// (cos^2 law) and perturbs the per-AP-antenna gains (drawn once per
  /// burst), distorting the 1-D array manifold — the failure mode the
  /// paper's Fig. 8c measures.
  double polarization_deviation_rad = 0.0;
};

/// Generates `cfg.num_packets` CSI measurements of the same multipath
/// channel with independent detection delays and noise.
[[nodiscard]] PacketBurst generate_burst(const std::vector<Path>& paths,
                                         const dsp::ArrayConfig& array_cfg,
                                         const BurstConfig& cfg,
                                         std::mt19937_64& rng);

}  // namespace roarray::channel
