// 2-D geometry primitives: points, rooms, and AP array poses.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/angles.hpp"
#include "dsp/constants.hpp"

namespace roarray::channel {

/// A 2-D point / vector in meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  [[nodiscard]] Vec2 operator+(const Vec2& o) const noexcept { return {x + o.x, y + o.y}; }
  [[nodiscard]] Vec2 operator-(const Vec2& o) const noexcept { return {x - o.x, y - o.y}; }
  [[nodiscard]] Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }

  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }

  [[nodiscard]] double dot(const Vec2& o) const noexcept { return x * o.x + y * o.y; }

  /// Unit vector in the same direction; throws on the zero vector.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    if (n <= 0.0) throw std::domain_error("Vec2::normalized: zero vector");
    return {x / n, y / n};
  }
};

[[nodiscard]] inline double distance(const Vec2& a, const Vec2& b) noexcept {
  return (a - b).norm();
}

/// An axis-aligned rectangular room with walls at x=0, x=width,
/// y=0, y=height (the paper's testbed is 18 m x 12 m).
struct Room {
  double width_m = 18.0;
  double height_m = 12.0;

  [[nodiscard]] bool contains(const Vec2& p) const noexcept {
    return p.x >= 0.0 && p.x <= width_m && p.y >= 0.0 && p.y <= height_m;
  }

  void validate() const {
    if (width_m <= 0.0 || height_m <= 0.0) {
      throw std::invalid_argument("Room: non-positive dimensions");
    }
  }
};

/// Pose of an AP's uniform linear array: the phase-center position and
/// the direction of the array axis (the line the antennas lie on),
/// measured counter-clockwise from +x in degrees.
struct ApPose {
  Vec2 position;
  double axis_deg = 0.0;

  /// Unit vector along the array axis.
  [[nodiscard]] Vec2 axis_unit() const noexcept {
    const double r = dsp::deg_to_rad(axis_deg);
    return {std::cos(r), std::sin(r)};
  }

  /// AoA (in [0, 180] degrees, relative to the array axis) of a signal
  /// arriving from direction `incoming_from` (unit vector pointing from
  /// the AP toward the apparent source).
  [[nodiscard]] double aoa_of_direction(const Vec2& incoming_from) const {
    const Vec2 u = incoming_from.normalized();
    const double c = std::clamp(u.dot(axis_unit()), -1.0, 1.0);
    return dsp::rad_to_deg(std::acos(c));
  }

  /// AoA of the direct (line-of-sight) path from a target position.
  [[nodiscard]] double aoa_of_point(const Vec2& target) const {
    return aoa_of_direction(target - position);
  }
};

}  // namespace roarray::channel
