// Testbed substrate: the paper's 18 m x 12 m classroom with 6 APs and
// randomly sampled client test locations (Section IV-A, Figure 5).
#pragma once

#include <random>
#include <vector>

#include "channel/geometry.hpp"

namespace roarray::sim {

using channel::ApPose;
using channel::Room;
using channel::Vec2;
using linalg::index_t;

/// A deployment: room geometry, AP array poses, and the fixed point
/// scatterers (furniture, pillars, people) that enrich the multipath.
struct Testbed {
  Room room;
  std::vector<ApPose> aps;
  std::vector<Vec2> scatterers;
};

/// The paper's testbed: 18 m x 12 m classroom covered by 6 three-antenna
/// APs mounted near the walls with arrays parallel to the nearest wall,
/// plus a fixed set of interior scatterers (desks, cabinets, people).
[[nodiscard]] Testbed make_paper_testbed();

/// Samples `n` client locations uniformly inside the room, keeping
/// `margin_m` away from the walls (mirrors the red test dots of Fig. 5).
[[nodiscard]] std::vector<Vec2> sample_client_locations(index_t n,
                                                        const Room& room,
                                                        std::mt19937_64& rng,
                                                        double margin_m = 1.5);

}  // namespace roarray::sim
