#include "sim/recorder.hpp"

namespace roarray::sim {

std::uint64_t record_burst(io::TraceWriter& writer,
                           const channel::PacketBurst& burst,
                           std::uint32_t ap_id, std::uint64_t client_id,
                           double snr_db, std::uint64_t start_tick) {
  io::TraceRecord rec;
  rec.ap_id = ap_id;
  rec.client_id = client_id;
  rec.snr_db = snr_db;
  std::uint64_t tick = start_tick;
  for (const auto& csi : burst.csi) {
    rec.timestamp_tick = tick++;
    rec.csi = csi;
    writer.append(rec);
  }
  return tick;
}

std::uint64_t record_round(io::TraceWriter& writer,
                           std::span<const ApMeasurement> measurements,
                           std::uint64_t client_id, std::uint64_t start_tick) {
  std::uint64_t tick = start_tick;
  for (std::size_t ap = 0; ap < measurements.size(); ++ap) {
    const ApMeasurement& m = measurements[ap];
    tick = record_burst(writer, m.burst, static_cast<std::uint32_t>(ap),
                        client_id, m.snr_db, tick);
  }
  return tick;
}

}  // namespace roarray::sim
