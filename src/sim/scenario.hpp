// Scenario generation: produces the per-AP CSI measurement sets the
// figure benches and integration tests consume, with controlled SNR
// bands and ground truth attached.
#pragma once

#include <random>
#include <vector>

#include "channel/csi.hpp"
#include "channel/multipath.hpp"
#include "dsp/constants.hpp"
#include "sim/testbed.hpp"

namespace roarray::sim {

/// The paper's three SNR regimes (Section IV-B).
enum class SnrBand {
  kHigh,    ///< >= 15 dB.
  kMedium,  ///< (2, 15) dB.
  kLow,     ///< <= 2 dB.
};

/// Human-readable band name ("high SNRs, >=15 dB", ...).
[[nodiscard]] const char* snr_band_name(SnrBand band);

/// Draws a per-AP SNR uniformly from the band's range
/// (high: [15, 25], medium: (2, 15), low: [-3, 2] dB).
[[nodiscard]] double sample_snr_db(SnrBand band, std::mt19937_64& rng);

/// Adversarial corruption injected on top of a scenario: the NLoS
/// failure modes the robust fusion layer (src/fusion/) defends against.
/// All modes default off; an inactive config draws nothing from the
/// round rng, so existing scenarios stay bit-identical. Which APs lie is
/// drawn deterministically from the round rng (blocked set first, then
/// the ToA-bias set among the remaining APs, then per-AP wrong-peak
/// coin flips), so a fixed seed always corrupts the same APs.
struct AdversarialConfig {
  /// APs whose direct path is erased outright (hard NLoS: a cabinet or
  /// wall fully shadows the LoS). The AP still reports — through its
  /// reflections — so its AoA is confidently wrong, not merely noisy.
  int num_blocked_aps = 0;
  /// Angular half-width of the shadow the blocking obstruction casts: a
  /// cabinet occludes a cone around the LoS, not just the geometric
  /// ray, so every path within this many degrees of the direct AoA is
  /// erased with it. This keeps the surviving strongest path — the AoA
  /// the estimator locks onto — confidently wrong instead of letting a
  /// scatterer sitting near the LoS line stand in for the direct path.
  double blocked_shadow_deg = 20.0;
  /// Fraction of the pre-block total path power the shadowed channel
  /// retains: hard NLoS rarely costs much *total* power — the energy
  /// still arrives, just via reflections instead of the LoS — which is
  /// exactly what makes the blocked AP's wrong AoA confident (full RSSI
  /// weight) rather than self-attenuating. The surviving reflections
  /// are renormalized to this fraction of the original power; lower
  /// values model lossy obstructions, 0 disables renormalization and
  /// the reflections keep their natural (much weaker) gains.
  double blocked_power_fraction = 1.0;
  /// Per-AP probability that the strongest reflection is boosted above
  /// the direct path until the direct's relative power falls below the
  /// estimator's min_direct_rel_power gate, making the peak picker lock
  /// onto the reflection.
  double wrong_peak_probability = 0.0;
  /// Amplitude ratio (reflection : direct) the boost enforces. 2.5 puts
  /// the direct's relative power at 0.16 — well under the default 0.4
  /// gate.
  double wrong_peak_boost = 2.5;
  /// APs whose direct path arrives late (through-wall propagation):
  /// only the direct path is delayed — an all-path shift would be
  /// removed wholesale by CSI sanitization — and mildly attenuated.
  int num_toa_bias_aps = 0;
  double toa_bias_s = 80e-9;
  double toa_bias_loss_db = 3.0;

  [[nodiscard]] bool active() const {
    return num_blocked_aps > 0 || wrong_peak_probability > 0.0 ||
           num_toa_bias_aps > 0;
  }
};

/// Everything needed to simulate one client's measurement round.
struct ScenarioConfig {
  /// Defaults give a realistic indoor channel — up to second-order
  /// bounces plus scatterers — pruned so the *dominant* path count per
  /// link stays around the ~5 the paper observes (Section I). Without
  /// pruning, dozens of micro-paths survive, which no K <= 5 subspace
  /// model can represent.
  channel::MultipathConfig multipath{.max_reflections = 2,
                                     .reflection_loss = 0.55,
                                     .min_rel_amplitude = 0.14,
                                     .scatter_coeff = 0.4};
  dsp::ArrayConfig array;
  linalg::index_t num_packets = 15;
  /// Probability that a given (AP, client) direct path is obstructed by
  /// furniture/people, attenuating it by los_block_loss_db. A blocked
  /// direct path is often *not* the strongest anymore — the situation
  /// that separates smallest-ToA pickers from strongest-peak pickers.
  double los_block_probability = 0.25;
  double los_block_loss_db = 9.0;
  /// Std-dev of the residual per-antenna phase error left after factory
  /// calibration [rad], drawn once per AP per round. Real arrays are
  /// never perfectly calibrated; this sets the few-degree AoA error
  /// floor all systems share. Ignored when antenna_phase_offsets_rad is
  /// set explicitly.
  double residual_phase_noise_rad = 0.0;
  /// Std-dev of the per-antenna receive-chain amplitude imbalance
  /// (relative, drawn once per AP per round).
  double residual_gain_noise = 0.1;
  SnrBand snr_band = SnrBand::kHigh;
  double max_detection_delay_s = 100e-9;
  /// Per-antenna phase offsets applied at every AP (empty = calibrated).
  std::vector<double> antenna_phase_offsets_rad;
  double polarization_scale = 1.0;
  /// Per-packet path-phase decorrelation (see BurstConfig). The default
  /// mirrors the mild temporal variation of a real indoor deployment.
  double path_phase_jitter_rad = 0.3;
  /// Client-antenna polarization deviation (see BurstConfig).
  double polarization_deviation_rad = 0.0;
  /// Adversarial NLoS corruption (default: all modes off).
  AdversarialConfig adversarial;
};

/// CSI measurements from one AP for one client position, with ground
/// truth for evaluation.
struct ApMeasurement {
  ApPose pose;
  channel::PacketBurst burst;
  double snr_db = 0.0;            ///< SNR the burst was generated at.
  double rssi_weight = 0.0;       ///< linear received power (Eq. 19 weight).
  double true_direct_aoa_deg = 0.0;
  double true_direct_toa_s = 0.0;
  std::vector<channel::Path> paths;  ///< full ground-truth multipath.
  /// Which adversarial corruption (if any) hit this AP; truth above is
  /// always the *pristine* geometric direct path, so evaluation measures
  /// error against reality, not against the corruption.
  bool adversarial_blocked = false;
  bool adversarial_wrong_peak = false;
  bool adversarial_toa_bias = false;
};

/// Simulates one measurement round: every AP in the testbed hears the
/// client through its own multipath channel at a band-sampled SNR.
[[nodiscard]] std::vector<ApMeasurement> generate_measurements(
    const Testbed& testbed, const Vec2& client, const ScenarioConfig& cfg,
    std::mt19937_64& rng);

/// Scenario preset for an SNR band. In a real deployment low SNR is not
/// an independent knob — links are weak *because* they are blocked or
/// far — so the preset couples the band with matching LoS-blockage
/// severity (high: 0.15/6 dB, medium: 0.35/9 dB, low: 0.6/12 dB).
[[nodiscard]] ScenarioConfig scenario_for_band(SnrBand band);

}  // namespace roarray::sim
