// Scenario generation: produces the per-AP CSI measurement sets the
// figure benches and integration tests consume, with controlled SNR
// bands and ground truth attached.
#pragma once

#include <random>
#include <vector>

#include "channel/csi.hpp"
#include "channel/multipath.hpp"
#include "dsp/constants.hpp"
#include "sim/testbed.hpp"

namespace roarray::sim {

/// The paper's three SNR regimes (Section IV-B).
enum class SnrBand {
  kHigh,    ///< >= 15 dB.
  kMedium,  ///< (2, 15) dB.
  kLow,     ///< <= 2 dB.
};

/// Human-readable band name ("high SNRs, >=15 dB", ...).
[[nodiscard]] const char* snr_band_name(SnrBand band);

/// Draws a per-AP SNR uniformly from the band's range
/// (high: [15, 25], medium: (2, 15), low: [-3, 2] dB).
[[nodiscard]] double sample_snr_db(SnrBand band, std::mt19937_64& rng);

/// Everything needed to simulate one client's measurement round.
struct ScenarioConfig {
  /// Defaults give a realistic indoor channel — up to second-order
  /// bounces plus scatterers — pruned so the *dominant* path count per
  /// link stays around the ~5 the paper observes (Section I). Without
  /// pruning, dozens of micro-paths survive, which no K <= 5 subspace
  /// model can represent.
  channel::MultipathConfig multipath{.max_reflections = 2,
                                     .reflection_loss = 0.55,
                                     .min_rel_amplitude = 0.14,
                                     .scatter_coeff = 0.4};
  dsp::ArrayConfig array;
  linalg::index_t num_packets = 15;
  /// Probability that a given (AP, client) direct path is obstructed by
  /// furniture/people, attenuating it by los_block_loss_db. A blocked
  /// direct path is often *not* the strongest anymore — the situation
  /// that separates smallest-ToA pickers from strongest-peak pickers.
  double los_block_probability = 0.25;
  double los_block_loss_db = 9.0;
  /// Std-dev of the residual per-antenna phase error left after factory
  /// calibration [rad], drawn once per AP per round. Real arrays are
  /// never perfectly calibrated; this sets the few-degree AoA error
  /// floor all systems share. Ignored when antenna_phase_offsets_rad is
  /// set explicitly.
  double residual_phase_noise_rad = 0.0;
  /// Std-dev of the per-antenna receive-chain amplitude imbalance
  /// (relative, drawn once per AP per round).
  double residual_gain_noise = 0.1;
  SnrBand snr_band = SnrBand::kHigh;
  double max_detection_delay_s = 100e-9;
  /// Per-antenna phase offsets applied at every AP (empty = calibrated).
  std::vector<double> antenna_phase_offsets_rad;
  double polarization_scale = 1.0;
  /// Per-packet path-phase decorrelation (see BurstConfig). The default
  /// mirrors the mild temporal variation of a real indoor deployment.
  double path_phase_jitter_rad = 0.3;
  /// Client-antenna polarization deviation (see BurstConfig).
  double polarization_deviation_rad = 0.0;
};

/// CSI measurements from one AP for one client position, with ground
/// truth for evaluation.
struct ApMeasurement {
  ApPose pose;
  channel::PacketBurst burst;
  double snr_db = 0.0;            ///< SNR the burst was generated at.
  double rssi_weight = 0.0;       ///< linear received power (Eq. 19 weight).
  double true_direct_aoa_deg = 0.0;
  double true_direct_toa_s = 0.0;
  std::vector<channel::Path> paths;  ///< full ground-truth multipath.
};

/// Simulates one measurement round: every AP in the testbed hears the
/// client through its own multipath channel at a band-sampled SNR.
[[nodiscard]] std::vector<ApMeasurement> generate_measurements(
    const Testbed& testbed, const Vec2& client, const ScenarioConfig& cfg,
    std::mt19937_64& rng);

/// Scenario preset for an SNR band. In a real deployment low SNR is not
/// an independent knob — links are weak *because* they are blocked or
/// far — so the preset couples the band with matching LoS-blockage
/// severity (high: 0.15/6 dB, medium: 0.35/9 dB, low: 0.6/12 dB).
[[nodiscard]] ScenarioConfig scenario_for_band(SnrBand band);

}  // namespace roarray::sim
