#include "sim/testbed.hpp"

#include <stdexcept>

namespace roarray::sim {

Testbed make_paper_testbed() {
  Testbed t;
  t.room = Room{18.0, 12.0};
  // Arrays sit 0.5 m off the walls, axes parallel to the nearest wall so
  // the [0, 180] deg half-plane faces into the room.
  t.aps = {
      ApPose{{0.5, 6.0}, 90.0},    // west wall, vertical array
      ApPose{{17.5, 6.0}, 90.0},   // east wall
      ApPose{{9.0, 0.5}, 0.0},     // south wall, horizontal array
      ApPose{{9.0, 11.5}, 0.0},    // north wall
      ApPose{{4.5, 0.5}, 0.0},     // south-west
      ApPose{{13.5, 11.5}, 0.0},   // north-east
  };
  // Fixed interior scatterers: a classroom's desks, cabinets and people,
  // spread over the floor (deterministic so experiments are repeatable).
  t.scatterers = {
      {3.2, 2.8},  {6.7, 9.1},  {10.4, 3.6}, {13.8, 7.9}, {15.6, 2.2},
      {2.4, 10.1}, {8.9, 6.4},  {12.1, 10.6}, {5.3, 5.7},  {16.2, 9.3},
  };
  return t;
}

std::vector<Vec2> sample_client_locations(index_t n, const Room& room,
                                          std::mt19937_64& rng,
                                          double margin_m) {
  room.validate();
  if (n < 0) throw std::invalid_argument("sample_client_locations: n < 0");
  if (2.0 * margin_m >= room.width_m || 2.0 * margin_m >= room.height_m) {
    throw std::invalid_argument("sample_client_locations: margin too large");
  }
  std::uniform_real_distribution<double> ux(margin_m, room.width_m - margin_m);
  std::uniform_real_distribution<double> uy(margin_m, room.height_m - margin_m);
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) out.push_back({ux(rng), uy(rng)});
  return out;
}

}  // namespace roarray::sim
