// Bridges simulation output into the trace format: records a client's
// measurement round packet-by-packet so the round can later be replayed
// bit-exactly through the offline pipeline or the localization service.
#pragma once

#include <cstdint>
#include <span>

#include "io/trace_writer.hpp"
#include "sim/scenario.hpp"

namespace roarray::sim {

/// Writes one AP's packet burst as consecutive records. Ticks count up
/// from `start_tick`, one per packet; returns the tick after the last
/// packet.
std::uint64_t record_burst(io::TraceWriter& writer,
                           const channel::PacketBurst& burst,
                           std::uint32_t ap_id, std::uint64_t client_id,
                           double snr_db, std::uint64_t start_tick);

/// Records a full measurement round — every AP's burst, AP ids taken
/// from the measurement order — and returns the tick after the round.
/// Replaying the resulting records through io::read_client_rounds
/// reconstructs exactly the bursts recorded here (same packet order,
/// same bit patterns).
std::uint64_t record_round(io::TraceWriter& writer,
                           std::span<const ApMeasurement> measurements,
                           std::uint64_t client_id, std::uint64_t start_tick);

}  // namespace roarray::sim
