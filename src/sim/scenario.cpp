#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace roarray::sim {

namespace {

/// Deterministic partial Fisher-Yates: the first `take` entries of the
/// returned index list are a uniform draw of AP indices from the round
/// rng (rng() modulo span — the tiny modulo bias is irrelevant for a
/// simulator and keeps the draw count fixed at one per slot).
std::vector<std::size_t> draw_ap_subset(std::size_t num_aps, std::size_t take,
                                        std::mt19937_64& rng) {
  std::vector<std::size_t> idx(num_aps);
  for (std::size_t i = 0; i < num_aps; ++i) idx[i] = i;
  take = std::min(take, num_aps);
  for (std::size_t k = 0; k < take; ++k) {
    const std::size_t pick = k + static_cast<std::size_t>(
        rng() % static_cast<std::uint64_t>(num_aps - k));
    std::swap(idx[k], idx[pick]);
  }
  idx.resize(take);
  return idx;
}

/// Index of the strongest non-direct path, or 0 when there is none.
std::size_t strongest_reflection(const std::vector<channel::Path>& paths) {
  std::size_t best = 0;
  double best_gain = -1.0;
  for (std::size_t i = 1; i < paths.size(); ++i) {
    const double g = std::abs(paths[i].gain);
    if (g > best_gain) {
      best_gain = g;
      best = i;
    }
  }
  return best;
}

}  // namespace

const char* snr_band_name(SnrBand band) {
  switch (band) {
    case SnrBand::kHigh: return "high SNRs, >=15 dB";
    case SnrBand::kMedium: return "medium SNRs, (2,15) dB";
    case SnrBand::kLow: return "low SNRs, <=2 dB";
  }
  return "unknown";
}

double sample_snr_db(SnrBand band, std::mt19937_64& rng) {
  switch (band) {
    case SnrBand::kHigh: {
      std::uniform_real_distribution<double> d(15.0, 25.0);
      return d(rng);
    }
    case SnrBand::kMedium: {
      std::uniform_real_distribution<double> d(2.5, 14.5);
      return d(rng);
    }
    case SnrBand::kLow: {
      std::uniform_real_distribution<double> d(-3.0, 2.0);
      return d(rng);
    }
  }
  throw std::invalid_argument("sample_snr_db: unknown band");
}

ScenarioConfig scenario_for_band(SnrBand band) {
  ScenarioConfig cfg;
  cfg.snr_band = band;
  switch (band) {
    case SnrBand::kHigh:
      cfg.los_block_probability = 0.15;
      cfg.los_block_loss_db = 6.0;
      break;
    case SnrBand::kMedium:
      cfg.los_block_probability = 0.35;
      cfg.los_block_loss_db = 9.0;
      break;
    case SnrBand::kLow:
      cfg.los_block_probability = 0.6;
      cfg.los_block_loss_db = 12.0;
      break;
  }
  return cfg;
}

std::vector<ApMeasurement> generate_measurements(const Testbed& testbed,
                                                 const Vec2& client,
                                                 const ScenarioConfig& cfg,
                                                 std::mt19937_64& rng) {
  if (testbed.aps.empty()) {
    throw std::invalid_argument("generate_measurements: testbed has no APs");
  }
  // Adversarial AP selection happens up front from the round rng —
  // blocked set first, then the ToA-bias set among the remaining APs —
  // so a fixed seed always corrupts the same APs. An inactive config
  // draws nothing, keeping pre-existing scenarios bit-identical.
  const AdversarialConfig& adv = cfg.adversarial;
  std::vector<char> blocked(testbed.aps.size(), 0);
  std::vector<char> toa_biased(testbed.aps.size(), 0);
  if (adv.num_blocked_aps > 0 || adv.num_toa_bias_aps > 0) {
    const auto chosen = draw_ap_subset(
        testbed.aps.size(),
        static_cast<std::size_t>(std::max(0, adv.num_blocked_aps)) +
            static_cast<std::size_t>(std::max(0, adv.num_toa_bias_aps)),
        rng);
    for (std::size_t k = 0; k < chosen.size(); ++k) {
      if (k < static_cast<std::size_t>(std::max(0, adv.num_blocked_aps))) {
        blocked[chosen[k]] = 1;
      } else {
        toa_biased[chosen[k]] = 1;
      }
    }
  }

  std::vector<ApMeasurement> out;
  out.reserve(testbed.aps.size());
  for (std::size_t ap_index = 0; ap_index < testbed.aps.size(); ++ap_index) {
    const ApPose& ap = testbed.aps[ap_index];
    ApMeasurement m;
    m.pose = ap;
    m.paths = channel::trace_paths(testbed.room, ap, client, cfg.multipath,
                                   cfg.array, testbed.scatterers);
    if (cfg.los_block_probability > 0.0) {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      if (u(rng) < cfg.los_block_probability) {
        // Obstructed direct path: attenuated but still first in ToA.
        m.paths.front().gain *=
            std::pow(10.0, -cfg.los_block_loss_db / 20.0);
      }
    }
    m.true_direct_aoa_deg = m.paths.front().aoa_deg;  // sorted by ToA
    m.true_direct_toa_s = m.paths.front().toa_s;

    // Adversarial corruption, after truth capture: truth stays the
    // pristine geometric direct path.
    if (blocked[ap_index]) {
      m.adversarial_blocked = true;
      // The obstruction shadows a cone around the LoS: the direct path
      // and every path arriving within blocked_shadow_deg of it go.
      const double direct_aoa = m.paths.front().aoa_deg;
      std::vector<channel::Path> survivors;
      for (std::size_t p = 1; p < m.paths.size(); ++p) {
        if (std::abs(m.paths[p].aoa_deg - direct_aoa) >
            adv.blocked_shadow_deg) {
          survivors.push_back(m.paths[p]);
        }
      }
      if (!survivors.empty()) {
        if (adv.blocked_power_fraction > 0.0) {
          // Hard NLoS keeps the total power: renormalize the surviving
          // reflections so the AP reports its wrong AoA at full weight
          // instead of flagging itself through a collapsed RSSI.
          double pre = 0.0, post = 0.0;
          for (const channel::Path& p : m.paths) pre += std::norm(p.gain);
          for (const channel::Path& p : survivors) post += std::norm(p.gain);
          if (post > 0.0) {
            const double s =
                std::sqrt(adv.blocked_power_fraction * pre / post);
            for (channel::Path& p : survivors) p.gain *= s;
          }
        }
        m.paths = std::move(survivors);  // ToA order is preserved.
      } else {
        // Everything arrives through the shadow: -40 dB across the
        // board (the single-path corner case and the fully-shadowed
        // geometry collapse to the same outcome).
        for (channel::Path& p : m.paths) p.gain *= 1e-2;
      }
    } else if (toa_biased[ap_index] && adv.toa_bias_s > 0.0) {
      m.adversarial_toa_bias = true;
      // Delay ONLY the direct path: an all-path shift is a common delay
      // that CSI sanitization removes wholesale; a direct-only shift
      // partially survives it, which is the symptom the fusion layer's
      // positive-bias model keys on.
      m.paths.front().toa_s += adv.toa_bias_s;
      m.paths.front().gain *= std::pow(10.0, -adv.toa_bias_loss_db / 20.0);
      std::stable_sort(m.paths.begin(), m.paths.end(),
                       [](const channel::Path& a, const channel::Path& b) {
                         return a.toa_s < b.toa_s;
                       });
    }
    if (adv.wrong_peak_probability > 0.0 && !m.adversarial_blocked) {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      if (u(rng) < adv.wrong_peak_probability && m.paths.size() > 1) {
        m.adversarial_wrong_peak = true;
        // Boost the strongest reflection until the direct path's
        // relative power falls below the estimator's direct-path gate,
        // so the peak picker locks onto the reflection.
        const std::size_t r = strongest_reflection(m.paths);
        const double direct = std::abs(m.paths.front().gain);
        const double refl = std::abs(m.paths[r].gain);
        if (refl > 0.0 && direct > 0.0) {
          const double target = adv.wrong_peak_boost * direct;
          if (refl < target) m.paths[r].gain *= target / refl;
        }
      }
    }

    m.snr_db = sample_snr_db(cfg.snr_band, rng);

    channel::BurstConfig bc;
    bc.num_packets = cfg.num_packets;
    bc.snr_db = m.snr_db;
    bc.max_detection_delay_s = cfg.max_detection_delay_s;
    bc.antenna_phase_offsets_rad = cfg.antenna_phase_offsets_rad;
    if (bc.antenna_phase_offsets_rad.empty() &&
        cfg.residual_phase_noise_rad > 0.0) {
      std::normal_distribution<double> resid(0.0, cfg.residual_phase_noise_rad);
      bc.antenna_phase_offsets_rad.resize(
          static_cast<std::size_t>(cfg.array.num_antennas));
      for (double& o : bc.antenna_phase_offsets_rad) o = resid(rng);
    }
    if (cfg.residual_gain_noise > 0.0) {
      std::normal_distribution<double> gain(1.0, cfg.residual_gain_noise);
      bc.antenna_gains.resize(static_cast<std::size_t>(cfg.array.num_antennas));
      for (auto& g : bc.antenna_gains) {
        g = linalg::cxd{std::max(0.2, gain(rng)), 0.0};
      }
    }
    bc.polarization_scale = cfg.polarization_scale;
    bc.path_phase_jitter_rad = cfg.path_phase_jitter_rad;
    bc.polarization_deviation_rad = cfg.polarization_deviation_rad;
    m.burst = channel::generate_burst(m.paths, cfg.array, bc, rng);
    // Measured RSSI (signal + noise), as a real receiver would report —
    // at low SNR the noise floor flattens the weights.
    m.rssi_weight = channel::burst_rssi_weight(m.burst.csi);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace roarray::sim
