#include "sim/scenario.hpp"

#include <stdexcept>

namespace roarray::sim {

const char* snr_band_name(SnrBand band) {
  switch (band) {
    case SnrBand::kHigh: return "high SNRs, >=15 dB";
    case SnrBand::kMedium: return "medium SNRs, (2,15) dB";
    case SnrBand::kLow: return "low SNRs, <=2 dB";
  }
  return "unknown";
}

double sample_snr_db(SnrBand band, std::mt19937_64& rng) {
  switch (band) {
    case SnrBand::kHigh: {
      std::uniform_real_distribution<double> d(15.0, 25.0);
      return d(rng);
    }
    case SnrBand::kMedium: {
      std::uniform_real_distribution<double> d(2.5, 14.5);
      return d(rng);
    }
    case SnrBand::kLow: {
      std::uniform_real_distribution<double> d(-3.0, 2.0);
      return d(rng);
    }
  }
  throw std::invalid_argument("sample_snr_db: unknown band");
}

ScenarioConfig scenario_for_band(SnrBand band) {
  ScenarioConfig cfg;
  cfg.snr_band = band;
  switch (band) {
    case SnrBand::kHigh:
      cfg.los_block_probability = 0.15;
      cfg.los_block_loss_db = 6.0;
      break;
    case SnrBand::kMedium:
      cfg.los_block_probability = 0.35;
      cfg.los_block_loss_db = 9.0;
      break;
    case SnrBand::kLow:
      cfg.los_block_probability = 0.6;
      cfg.los_block_loss_db = 12.0;
      break;
  }
  return cfg;
}

std::vector<ApMeasurement> generate_measurements(const Testbed& testbed,
                                                 const Vec2& client,
                                                 const ScenarioConfig& cfg,
                                                 std::mt19937_64& rng) {
  if (testbed.aps.empty()) {
    throw std::invalid_argument("generate_measurements: testbed has no APs");
  }
  std::vector<ApMeasurement> out;
  out.reserve(testbed.aps.size());
  for (const ApPose& ap : testbed.aps) {
    ApMeasurement m;
    m.pose = ap;
    m.paths = channel::trace_paths(testbed.room, ap, client, cfg.multipath,
                                   cfg.array, testbed.scatterers);
    if (cfg.los_block_probability > 0.0) {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      if (u(rng) < cfg.los_block_probability) {
        // Obstructed direct path: attenuated but still first in ToA.
        m.paths.front().gain *=
            std::pow(10.0, -cfg.los_block_loss_db / 20.0);
      }
    }
    m.true_direct_aoa_deg = m.paths.front().aoa_deg;  // sorted by ToA
    m.true_direct_toa_s = m.paths.front().toa_s;
    m.snr_db = sample_snr_db(cfg.snr_band, rng);

    channel::BurstConfig bc;
    bc.num_packets = cfg.num_packets;
    bc.snr_db = m.snr_db;
    bc.max_detection_delay_s = cfg.max_detection_delay_s;
    bc.antenna_phase_offsets_rad = cfg.antenna_phase_offsets_rad;
    if (bc.antenna_phase_offsets_rad.empty() &&
        cfg.residual_phase_noise_rad > 0.0) {
      std::normal_distribution<double> resid(0.0, cfg.residual_phase_noise_rad);
      bc.antenna_phase_offsets_rad.resize(
          static_cast<std::size_t>(cfg.array.num_antennas));
      for (double& o : bc.antenna_phase_offsets_rad) o = resid(rng);
    }
    if (cfg.residual_gain_noise > 0.0) {
      std::normal_distribution<double> gain(1.0, cfg.residual_gain_noise);
      bc.antenna_gains.resize(static_cast<std::size_t>(cfg.array.num_antennas));
      for (auto& g : bc.antenna_gains) {
        g = linalg::cxd{std::max(0.2, gain(rng)), 0.0};
      }
    }
    bc.polarization_scale = cfg.polarization_scale;
    bc.path_phase_jitter_rad = cfg.path_phase_jitter_rad;
    bc.polarization_deviation_rad = cfg.polarization_deviation_rad;
    m.burst = channel::generate_burst(m.paths, cfg.array, bc, rng);
    // Measured RSSI (signal + noise), as a real receiver would report —
    // at low SNR the noise floor flattens the weights.
    m.rssi_weight = channel::burst_rssi_weight(m.burst.csi);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace roarray::sim
