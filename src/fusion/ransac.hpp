// RANSAC hypothesis stage for robust fusion: candidate positions from
// minimal AP subsets. A single ULA AoA constrains the target to two
// mirror bearing rays (the array cannot tell the two sides of its axis
// apart), so a minimal subset is one AP *pair* and every hypothesis is
// a ray-ray intersection — up to four per pair once both folds of both
// APs are enumerated.
//
// Enumeration is deterministic: pairs in (i < j) lexicographic order,
// fold combinations in a fixed order, and — only when the pair count
// exceeds FusionConfig::max_hypothesis_pairs — a splitmix64-seeded
// Fisher-Yates subsample, so a fixed seed always scores the same
// hypothesis list.
#pragma once

#include <span>
#include <vector>

#include "fusion/fusion.hpp"

namespace roarray::fusion {

/// One candidate position and the pair that generated it.
struct Hypothesis {
  Vec2 position;
  int ap_a = 0;  ///< observation indices of the generating pair.
  int ap_b = 0;
};

/// Enumerates bearing-ray intersection hypotheses for every scored AP
/// pair, keeping only candidates inside `room` and strictly in front of
/// both arrays. Deterministic (see the file comment).
[[nodiscard]] std::vector<Hypothesis> bearing_pair_hypotheses(
    std::span<const Observation> observations, const Room& room,
    const FusionConfig& cfg);

}  // namespace roarray::fusion
