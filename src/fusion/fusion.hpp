// Robust NLoS-aware multi-AP fusion: turns per-AP (AoA, ToA, RSSI
// weight) observations into one position fix that degrades gracefully
// when some APs lie (blocked direct path, wrong spectral peak picked,
// positively biased ToA) instead of cliffing the way a plain
// RSSI-weighted average does.
//
// Model. Against a position hypothesis x each AP i contributes a
// geometric consistency residual, measured in *angle*:
//
//     r_i(x) = hypot( phi_i(x) - phi_hat_i,                      [AoA, deg]
//                     (w_toa * c * max(0, dtoa_i - slack)) / d_i )  [ToA]
//
// where d_i is the AP-to-x distance, phi_i(x) the AoA the AP would see
// for a target at x, and dtoa_i the AP's reported direct-path ToA
// excess over the round median. Angle is the natural residual domain:
// the estimator's AoA noise is (to first order) constant per AP in
// angle, so degree-denominated loss scales and inlier thresholds treat
// near and far APs alike — a meter-scale (arc-length) residual would
// grow with d_i and systematically over-reject distant honest APs.
// The Gauss-Newton rows are still formed on the arc-length residual
// d_i * dphi (finite at endfire, where the pure angular gradient blows
// up) with a 1/d_i^2 maximum-likelihood weight, which minimizes exactly
// the weighted angular objective. The ToA term is the explicit NLoS
// positive-bias model: the estimator's sanitization step removes
// absolute range information from the reported ToA (DESIGN.md §13), so
// a late ToA cannot place the client — but it is a strong one-sided
// symptom of a wrong peak / blocked path, and it downweights an AP even
// when its (wrong) AoA happens to look consistent. The slack-thresholded
// excess is reported per AP as the estimated bias.
//
// Solver. IRLS with a Huber (default) or Tukey loss over r_i: each
// iteration takes one Gauss-Newton step on the robust-weighted AoA
// residuals (the ToA term is independent of x and only shapes the
// weights). When the converged solution explains too few APs
// (inlier fraction below FusionConfig::min_inlier_fraction) a
// RANSAC-style hypothesis stage runs: bearing-ray intersections of
// minimal AP pairs (both ULA mirror folds) are scored by consensus,
// and the best hypothesis is IRLS-polished; the candidate explaining
// more APs (ties: lower robust cost) wins.
//
// Determinism contract. Every quantity is a pure function of the
// observation list and the config: fixed loss scales (no data-driven
// sigma), fixed iteration caps, exhaustive pair enumeration up to
// max_hypothesis_pairs and a seeded shuffle beyond it. With
// RobustLoss::kHuber and every residual inside the Huber band the
// weights are exactly 1.0, so the solve is bit-identical to
// RobustLoss::kLeastSquares (weighted Gauss-Newton) on the same data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "channel/geometry.hpp"
#include "fusion/loss.hpp"

namespace roarray::fusion {

using channel::ApPose;
using channel::Room;
using channel::Vec2;

/// One AP's contribution to the fusion problem.
struct Observation {
  ApPose pose;
  double aoa_deg = 0.0;  ///< estimated direct-path AoA, [0, 180].
  /// Estimated direct-path ToA. Only the excess over the round median
  /// is used (see the file comment); has_toa gates the term entirely
  /// (AoA-only estimators like ArrayTrack feed has_toa = false).
  double toa_s = 0.0;
  bool has_toa = false;
  double weight = 1.0;  ///< RSSI-derived weight (linear power, relative).
};

struct FusionConfig {
  /// Robust loss over the combined per-AP angular residual (degrees).
  RobustLoss loss = RobustLoss::kHuber;
  double huber_delta_deg = 4.0;
  double tukey_c_deg = 20.0;

  /// ToA positive-bias model: excess over the round-median ToA beyond
  /// this slack counts as estimated NLoS bias (the slack absorbs the
  /// per-AP channel-delay-spread variation sanitization leaves behind).
  double toa_slack_s = 40e-9;
  /// Scale on the ToA excess inside the combined residual; 0 disables
  /// the ToA term. The excess needs >= toa_min_observations APs
  /// reporting ToA (a median over fewer is meaningless).
  double toa_excess_weight = 0.5;
  int toa_min_observations = 3;

  /// IRLS / Gauss-Newton loop.
  int max_iterations = 30;
  double tolerance_m = 1e-6;  ///< step-norm early exit.
  double max_step_m = 3.0;    ///< per-iteration step clamp.

  /// An AP is an inlier when its combined angular residual is below
  /// this many degrees.
  double inlier_residual_deg = 10.0;
  /// IRLS solutions explaining a smaller inlier fraction than this
  /// trigger the RANSAC hypothesis stage.
  double min_inlier_fraction = 0.6;
  /// Pair hypotheses actually scored: all pairs when there are at most
  /// this many, otherwise a seeded deterministic subsample.
  int max_hypothesis_pairs = 64;
  std::uint64_t ransac_seed = 0x9e3779b97f4a7c15ull;

  /// Throws std::invalid_argument on non-finite / non-positive scales,
  /// iteration caps < 1, or fractions outside [0, 1].
  void validate() const;
};

/// Why the robust path did (or did not) deliver a refined fix.
enum class FusionFallback {
  kNone,             ///< IRLS from the caller's initial fix was kept.
  kRansac,           ///< low inlier fraction; a RANSAC hypothesis won.
  kRansacNoGain,     ///< RANSAC ran but no hypothesis beat the IRLS fix.
  kDegenerate,       ///< Gauss-Newton had no usable geometry; initial
                     ///< fix returned unrefined.
};

[[nodiscard]] const char* fusion_fallback_name(FusionFallback f) noexcept;

/// Per-observation diagnostics, index-aligned with the input span.
struct ApDiagnostics {
  bool inlier = false;          ///< residual_deg <= inlier_residual_deg.
  double residual_deg = 0.0;    ///< combined angular residual at the fix.
  double residual_m = 0.0;      ///< same misfit as arc length at d_i [m].
  double aoa_residual_deg = 0.0;  ///< signed AoA misfit at the final fix.
  /// Estimated NLoS positive ToA bias (slack-thresholded excess over
  /// the round median); 0 when has_toa is false or the term is off.
  double toa_bias_s = 0.0;
  double robust_weight = 0.0;   ///< final IRLS weight (loss only, in [0,1]).
};

struct FusionReport {
  Vec2 position;
  double cost = 0.0;        ///< total robust cost at `position`.
  bool converged = false;   ///< IRLS step norm fell below tolerance_m.
  int iterations = 0;       ///< IRLS iterations of the winning solve.
  bool used_ransac = false; ///< the hypothesis stage was entered.
  FusionFallback fallback = FusionFallback::kNone;
  int inliers = 0;          ///< observations flagged inlier.
  std::vector<ApDiagnostics> per_ap;  ///< one per input observation.
};

/// Robust fusion entry point. `initial` seeds the IRLS loop (callers
/// pass the naive weighted grid fix); the result is clamped to `room`.
/// Requires at least 2 observations with finite AoA and positive finite
/// weight (throws std::invalid_argument otherwise — loc::localize
/// screens its inputs before calling). Deterministic: see the file
/// comment. Never called with a lock held (lock_order.txt entrypoint).
[[nodiscard]] FusionReport fuse_robust(std::span<const Observation> observations,
                                       const Room& room, const Vec2& initial,
                                       const FusionConfig& cfg);

}  // namespace roarray::fusion
