// Robust loss functions for the IRLS fusion solver: the rho / weight
// pairs of the classic M-estimators, on a fixed (configured) scale so
// every evaluation is a pure function of its inputs — no data-driven
// scale estimate sneaks run-to-run variation into the solve.
#pragma once

#include <stdexcept>

namespace roarray::fusion {

/// Which M-estimator shapes the per-AP weights.
enum class RobustLoss {
  /// Plain weighted least squares: weight identically 1.0. Exists so
  /// the robust path can be compared bit-for-bit against the naive
  /// solve (with every residual inside the Huber band the kHuber
  /// weights are also exactly 1.0, making the two paths bit-identical).
  kLeastSquares,
  /// Quadratic inside |r| <= delta, linear outside: outliers keep a
  /// bounded pull on the solution.
  kHuber,
  /// Tukey biweight: smooth redescending influence that goes exactly to
  /// zero at |r| >= c, so gross outliers are cut out entirely.
  kTukey,
};

[[nodiscard]] constexpr const char* robust_loss_name(RobustLoss loss) noexcept {
  switch (loss) {
    case RobustLoss::kLeastSquares: return "least-squares";
    case RobustLoss::kHuber: return "huber";
    case RobustLoss::kTukey: return "tukey";
  }
  return "unknown";
}

/// IRLS weight psi(r)/r for a non-negative residual magnitude `r`.
/// Exact 1.0 in the quadratic region of every loss (see kLeastSquares).
[[nodiscard]] inline double robust_weight(RobustLoss loss, double r,
                                          double huber_delta, double tukey_c) {
  switch (loss) {
    case RobustLoss::kLeastSquares:
      return 1.0;
    case RobustLoss::kHuber:
      return r <= huber_delta ? 1.0 : huber_delta / r;
    case RobustLoss::kTukey: {
      if (r >= tukey_c) return 0.0;
      const double u = r / tukey_c;
      const double t = 1.0 - u * u;
      return t * t;
    }
  }
  throw std::invalid_argument("robust_weight: unknown loss");
}

/// The loss value rho(r) itself (used to rank hypotheses, not to drive
/// the IRLS update). Matches robust_weight: rho'(r)/r == weight.
[[nodiscard]] inline double robust_rho(RobustLoss loss, double r,
                                       double huber_delta, double tukey_c) {
  switch (loss) {
    case RobustLoss::kLeastSquares:
      return 0.5 * r * r;
    case RobustLoss::kHuber:
      return r <= huber_delta ? 0.5 * r * r
                              : huber_delta * (r - 0.5 * huber_delta);
    case RobustLoss::kTukey: {
      const double c2_6 = tukey_c * tukey_c / 6.0;
      if (r >= tukey_c) return c2_6;
      const double u = r / tukey_c;
      const double t = 1.0 - u * u;
      return c2_6 * (1.0 - t * t * t);
    }
  }
  throw std::invalid_argument("robust_rho: unknown loss");
}

}  // namespace roarray::fusion
