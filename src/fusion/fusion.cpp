#include "fusion/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "dsp/angles.hpp"
#include "dsp/constants.hpp"
#include "fusion/ransac.hpp"

namespace roarray::fusion {

namespace {

/// Observations closer than this to the hypothesis are geometrically
/// degenerate (AoA undefined on top of an AP) and skipped.
constexpr double kMinApDistanceM = 1e-6;

/// Per-observation residual decomposition at one position hypothesis.
struct Residual {
  bool usable = false;        ///< false when x sits on the AP.
  double aoa_m = 0.0;         ///< signed arc-length AoA misfit [m].
  double aoa_deg = 0.0;       ///< signed angular misfit [deg].
  double combined_m = 0.0;    ///< hypot(aoa_m, toa term) [m], for reports.
  double combined_deg = 0.0;  ///< angular combined residual [deg] — the
                              ///< quantity the loss and inlier gate see.
  double dist_m = 0.0;        ///< AP-to-hypothesis distance.
  Vec2 grad;                  ///< d(aoa_m)/dx (Gauss-Newton row).
};

/// Slack-thresholded ToA excess over the round median, in seconds, one
/// entry per observation (0 when the term is disabled for it). This is
/// the NLoS positive-bias estimate: independent of the position
/// hypothesis, it only shapes the robust weights and the report.
std::vector<double> toa_bias_estimates(std::span<const Observation> obs,
                                       const FusionConfig& cfg) {
  std::vector<double> bias(obs.size(), 0.0);
  if (cfg.toa_excess_weight <= 0.0) return bias;
  std::vector<double> toas;
  toas.reserve(obs.size());
  for (const Observation& o : obs) {
    if (o.has_toa && std::isfinite(o.toa_s)) toas.push_back(o.toa_s);
  }
  if (static_cast<int>(toas.size()) < cfg.toa_min_observations) return bias;
  // Median by partial sort; lower median for even counts keeps the
  // reference pessimistic (an early reference can only increase the
  // one-sided excess of late reporters, never hide one).
  const std::size_t mid = (toas.size() - 1) / 2;
  std::nth_element(toas.begin(), toas.begin() + static_cast<std::ptrdiff_t>(mid),
                   toas.end());
  const double median = toas[mid];
  for (std::size_t i = 0; i < obs.size(); ++i) {
    if (!obs[i].has_toa || !std::isfinite(obs[i].toa_s)) continue;
    bias[i] = std::max(0.0, obs[i].toa_s - median - cfg.toa_slack_s);
  }
  return bias;
}

/// Evaluates one observation's residual and its Gauss-Newton row at x.
/// `toa_excess_m` is the (x-independent) meters-scaled ToA excess term.
Residual eval_residual(const Observation& o, const Vec2& x,
                       double toa_excess_m) {
  Residual r;
  const Vec2 rel = x - o.pose.position;
  const double d = rel.norm();
  if (d < kMinApDistanceM) return r;
  r.usable = true;
  r.dist_m = d;
  const Vec2 u = rel * (1.0 / d);
  const Vec2 axis = o.pose.axis_unit();
  const double c = std::clamp(u.dot(axis), -1.0, 1.0);
  const double phi_deg = dsp::rad_to_deg(std::acos(c));
  // Both angles live in [0, 180], so the plain difference is already
  // the signed misfit; no wrap needed.
  r.aoa_deg = phi_deg - o.aoa_deg;
  const double dphi_rad = dsp::deg_to_rad(r.aoa_deg);
  r.aoa_m = d * dphi_rad;
  r.combined_m = std::hypot(r.aoa_m, toa_excess_m);
  // The ToA excess folds in as the angle it would subtend at this AP's
  // distance, so the combined residual lives entirely in degrees.
  r.combined_deg = std::hypot(r.aoa_deg, dsp::rad_to_deg(toa_excess_m / d));
  // grad(d * dphi) = u * dphi + d * grad(phi), with
  // grad(phi) = -(axis - c u) / (d sqrt(1 - c^2)). Near endfire the
  // angular gradient blows up; the range-direction term alone still
  // gives a finite, correct descent row there.
  const double s2 = 1.0 - c * c;
  Vec2 g = u * dphi_rad;
  if (s2 > 1e-12) {
    const double inv_s = 1.0 / std::sqrt(s2);
    g = g - (axis - u * c) * inv_s;
  }
  r.grad = g;
  return r;
}

/// A scored position. Candidates are ranked by consensus size first and
/// *truncated* robust cost second (each residual capped at the inlier
/// threshold before rho, MSAC-style): an outlier contributes the same
/// saturated amount to every candidate, so fitting the inliers tighter
/// always ranks better — ranking by the full robust cost would let a
/// far outlier's unbounded Huber tail veto an exact inlier fit. The
/// full robust cost is still carried for reporting.
struct Scored {
  Vec2 x;
  int inliers = 0;
  double cost = 0.0;       ///< full robust cost (FusionReport::cost).
  double trunc_cost = 0.0; ///< ranking cost, residuals saturated.
};

[[nodiscard]] bool strictly_better(const Scored& a, const Scored& b) noexcept {
  if (a.inliers != b.inliers) return a.inliers > b.inliers;
  return a.trunc_cost < b.trunc_cost;
}

class Problem {
 public:
  Problem(std::span<const Observation> obs, const Room& room,
          const FusionConfig& cfg)
      : obs_(obs), room_(room), cfg_(cfg), toa_bias_(toa_bias_estimates(obs, cfg)) {}

  [[nodiscard]] double toa_excess_m(std::size_t i) const {
    return cfg_.toa_excess_weight * dsp::kSpeedOfLight * toa_bias_[i];
  }

  [[nodiscard]] const std::vector<double>& toa_bias() const { return toa_bias_; }

  /// Gauss-Newton statistical weight of observation i: the caller's
  /// RSSI weight scaled by 1/d^2. AoA noise is (to first order) constant
  /// per AP in *angle*, so the meter-scale arc residual d*dphi the GN
  /// rows are built on has variance growing with d^2 — the ML weight
  /// makes the quadratic objective exactly the weighted *angular* misfit
  /// sum, matching the degree-denominated robust loss and the naive
  /// grid's objective.
  [[nodiscard]] static double stat_weight(const Observation& o,
                                          const Residual& r) {
    return o.weight / (r.dist_m * r.dist_m);
  }

  /// Robust consensus score of a position over every observation. Cost
  /// units are RSSI-weighted deg^2-ish (rho of the angular residual):
  /// in the quadratic band this is the naive grid objective.
  [[nodiscard]] Scored score(const Vec2& x) const {
    Scored s;
    s.x = x;
    for (std::size_t i = 0; i < obs_.size(); ++i) {
      const Residual r = eval_residual(obs_[i], x, toa_excess_m(i));
      if (!r.usable) continue;
      const double w = obs_[i].weight;
      s.cost += w * robust_rho(cfg_.loss, r.combined_deg,
                               cfg_.huber_delta_deg, cfg_.tukey_c_deg);
      s.trunc_cost += w *
          robust_rho(cfg_.loss,
                     std::min(r.combined_deg, cfg_.inlier_residual_deg),
                     cfg_.huber_delta_deg, cfg_.tukey_c_deg);
      if (r.combined_deg <= cfg_.inlier_residual_deg) ++s.inliers;
    }
    return s;
  }

  /// Inlier mask at `x` (1 = angular residual within the threshold).
  [[nodiscard]] std::vector<char> inlier_mask(const Vec2& x) const {
    std::vector<char> mask(obs_.size(), 0);
    for (std::size_t i = 0; i < obs_.size(); ++i) {
      const Residual r = eval_residual(obs_[i], x, toa_excess_m(i));
      mask[i] = r.usable && r.combined_deg <= cfg_.inlier_residual_deg ? 1 : 0;
    }
    return mask;
  }

  struct IrlsResult {
    Vec2 x;
    int iterations = 0;
    bool converged = false;
    bool degenerate = false;  ///< no usable Gauss-Newton system at all.
  };

  /// IRLS from `start` over the observations whose index passes
  /// `active` (nullptr = all). Deterministic: fixed caps and scales.
  [[nodiscard]] IrlsResult irls(const Vec2& start,
                                const std::vector<char>* active) const {
    IrlsResult out;
    out.x = clamp_to_room(start);
    bool ever_solved = false;
    for (int it = 0; it < cfg_.max_iterations; ++it) {
      double sxx = 0.0, sxy = 0.0, syy = 0.0, bx = 0.0, by = 0.0;
      for (std::size_t i = 0; i < obs_.size(); ++i) {
        if (active != nullptr && (*active)[i] == 0) continue;
        const Residual r = eval_residual(obs_[i], out.x, toa_excess_m(i));
        if (!r.usable) continue;
        const double w =
            stat_weight(obs_[i], r) *
            robust_weight(cfg_.loss, r.combined_deg,
                          cfg_.huber_delta_deg, cfg_.tukey_c_deg);
        sxx += w * r.grad.x * r.grad.x;
        sxy += w * r.grad.x * r.grad.y;
        syy += w * r.grad.y * r.grad.y;
        bx -= w * r.aoa_m * r.grad.x;
        by -= w * r.aoa_m * r.grad.y;
      }
      const double det = sxx * syy - sxy * sxy;
      const double scale = std::max(1.0, sxx + syy);
      if (!(det > 1e-12 * scale * scale)) break;  // singular geometry.
      ever_solved = true;
      Vec2 step{(syy * bx - sxy * by) / det, (sxx * by - sxy * bx) / det};
      const double norm = step.norm();
      if (norm > cfg_.max_step_m) step = step * (cfg_.max_step_m / norm);
      out.x = clamp_to_room(out.x + step);
      out.iterations = it + 1;
      if (step.norm() < cfg_.tolerance_m) {
        out.converged = true;
        break;
      }
    }
    out.degenerate = !ever_solved;
    return out;
  }

  [[nodiscard]] Vec2 clamp_to_room(const Vec2& x) const {
    return {std::clamp(x.x, 0.0, room_.width_m),
            std::clamp(x.y, 0.0, room_.height_m)};
  }

  /// Index-aligned diagnostics at the final position.
  [[nodiscard]] std::vector<ApDiagnostics> diagnostics(const Vec2& x) const {
    std::vector<ApDiagnostics> out(obs_.size());
    for (std::size_t i = 0; i < obs_.size(); ++i) {
      const Residual r = eval_residual(obs_[i], x, toa_excess_m(i));
      ApDiagnostics& d = out[i];
      d.toa_bias_s = toa_bias_[i];
      if (!r.usable) continue;
      d.residual_deg = r.combined_deg;
      d.residual_m = r.combined_m;
      d.aoa_residual_deg = r.aoa_deg;
      d.inlier = r.combined_deg <= cfg_.inlier_residual_deg;
      d.robust_weight = robust_weight(cfg_.loss, r.combined_deg,
                                      cfg_.huber_delta_deg, cfg_.tukey_c_deg);
    }
    return out;
  }

 private:
  std::span<const Observation> obs_;
  const Room& room_;
  const FusionConfig& cfg_;
  std::vector<double> toa_bias_;
};

}  // namespace

void FusionConfig::validate() const {
  auto positive = [](double v, const char* what) {
    if (!std::isfinite(v) || v <= 0.0) {
      throw std::invalid_argument(std::string("FusionConfig: ") + what +
                                  " must be positive and finite");
    }
  };
  positive(huber_delta_deg, "huber_delta_deg");
  positive(tukey_c_deg, "tukey_c_deg");
  positive(tolerance_m, "tolerance_m");
  positive(max_step_m, "max_step_m");
  positive(inlier_residual_deg, "inlier_residual_deg");
  if (!std::isfinite(toa_slack_s) || toa_slack_s < 0.0) {
    throw std::invalid_argument("FusionConfig: toa_slack_s must be >= 0");
  }
  if (!std::isfinite(toa_excess_weight) || toa_excess_weight < 0.0) {
    throw std::invalid_argument("FusionConfig: toa_excess_weight must be >= 0");
  }
  if (toa_min_observations < 2) {
    throw std::invalid_argument("FusionConfig: toa_min_observations must be >= 2");
  }
  if (max_iterations < 1) {
    throw std::invalid_argument("FusionConfig: max_iterations must be >= 1");
  }
  if (!std::isfinite(min_inlier_fraction) || min_inlier_fraction < 0.0 ||
      min_inlier_fraction > 1.0) {
    throw std::invalid_argument(
        "FusionConfig: min_inlier_fraction must be in [0, 1]");
  }
  if (max_hypothesis_pairs < 1) {
    throw std::invalid_argument("FusionConfig: max_hypothesis_pairs must be >= 1");
  }
}

const char* fusion_fallback_name(FusionFallback f) noexcept {
  switch (f) {
    case FusionFallback::kNone: return "none";
    case FusionFallback::kRansac: return "ransac";
    case FusionFallback::kRansacNoGain: return "ransac-no-gain";
    case FusionFallback::kDegenerate: return "degenerate";
  }
  return "unknown";
}

FusionReport fuse_robust(std::span<const Observation> observations,
                         const Room& room, const Vec2& initial,
                         const FusionConfig& cfg) {
  cfg.validate();
  room.validate();
  if (observations.size() < 2) {
    throw std::invalid_argument("fuse_robust: need at least 2 observations");
  }
  for (const Observation& o : observations) {
    if (!std::isfinite(o.aoa_deg) || !std::isfinite(o.weight) || o.weight <= 0.0) {
      throw std::invalid_argument(
          "fuse_robust: observations need finite AoA and positive weight");
    }
  }

  const Problem problem(observations, room, cfg);
  FusionReport report;

  // Stage 1: IRLS from the caller's initial fix.
  const Problem::IrlsResult base = problem.irls(initial, nullptr);
  Scored best = problem.score(base.x);
  report.iterations = base.iterations;
  report.converged = base.converged;
  if (base.degenerate) {
    // No usable Gauss-Newton geometry (e.g. every AP collinear with the
    // hypothesis): hand the initial fix back unrefined but scored.
    best = problem.score(problem.clamp_to_room(initial));
    report.fallback = FusionFallback::kDegenerate;
  }

  // Stage 1b: inlier refit. The robust loss bounds an outlier's pull
  // but does not zero it (Huber stays linear), so when the converged
  // fix still sees outliers, refit on its inlier consensus alone and
  // keep the result if it ranks better. Clean data (every observation
  // an inlier) skips this entirely, preserving the bit-compatibility
  // contract with the plain weighted solve.
  const auto n_obs = static_cast<int>(observations.size());
  if (report.fallback != FusionFallback::kDegenerate && best.inliers >= 2 &&
      best.inliers < n_obs) {
    const std::vector<char> active = problem.inlier_mask(best.x);
    const Problem::IrlsResult refit = problem.irls(best.x, &active);
    const Scored s = problem.score(refit.x);
    if (strictly_better(s, best)) {
      best = s;
      report.iterations = refit.iterations;
      report.converged = refit.converged;
    }
  }

  // Stage 2: RANSAC hypothesis stage when the refined fix still
  // explains too few APs. Hypotheses are scored raw; the best consensus
  // set is IRLS-polished and the winner is whichever candidate explains
  // more observations (ties: lower truncated cost, then the earlier
  // candidate).
  const double inlier_fraction =
      static_cast<double>(best.inliers) / static_cast<double>(n_obs);
  if (report.fallback != FusionFallback::kDegenerate &&
      inlier_fraction < cfg.min_inlier_fraction && observations.size() >= 3) {
    report.used_ransac = true;
    const auto hypotheses = bearing_pair_hypotheses(observations, room, cfg);
    Scored best_hyp;
    best_hyp.inliers = -1;
    for (const Hypothesis& h : hypotheses) {
      const Scored s = problem.score(h.position);
      if (best_hyp.inliers < 0 || strictly_better(s, best_hyp)) best_hyp = s;
    }
    if (best_hyp.inliers >= 2) {
      // Consensus set of the winning hypothesis, then polish on it.
      const std::vector<char> active = problem.inlier_mask(best_hyp.x);
      const Problem::IrlsResult polished = problem.irls(best_hyp.x, &active);
      const Scored s = problem.score(polished.x);
      if (strictly_better(s, best)) {
        best = s;
        report.iterations = polished.iterations;
        report.converged = polished.converged;
        report.fallback = FusionFallback::kRansac;
      } else {
        report.fallback = FusionFallback::kRansacNoGain;
      }
    } else {
      report.fallback = FusionFallback::kRansacNoGain;
    }
  }

  report.position = best.x;
  report.cost = best.cost;
  report.inliers = best.inliers;
  report.per_ap = problem.diagnostics(best.x);
  return report;
}

}  // namespace roarray::fusion
