#include "fusion/ransac.hpp"

#include <cmath>
#include <cstdint>
#include <utility>

#include "dsp/angles.hpp"

namespace roarray::fusion {

namespace {

/// splitmix64 step: the standard 64-bit mixer (deterministic, no
/// <random> state), used only to subsample the pair list.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// `axis` rotated by `deg` counter-clockwise.
[[nodiscard]] Vec2 rotate_deg(const Vec2& axis, double deg) noexcept {
  const double r = dsp::deg_to_rad(deg);
  const double c = std::cos(r);
  const double s = std::sin(r);
  return {c * axis.x - s * axis.y, s * axis.x + c * axis.y};
}

/// Intersects the rays p_a + t_a u_a and p_b + t_b u_b. Returns true
/// with the intersection when the rays meet strictly in front of both
/// APs (t > min_range) and are not near-parallel.
[[nodiscard]] bool intersect_rays(const Vec2& pa, const Vec2& ua,
                                  const Vec2& pb, const Vec2& ub, Vec2& out) {
  constexpr double kMinRangeM = 0.05;
  const double det = ub.x * ua.y - ub.y * ua.x;  // cross(ub, ua)
  if (std::abs(det) < 1e-9) return false;        // parallel bearings.
  const Vec2 d = pb - pa;
  const double ta = (ub.x * d.y - ub.y * d.x) / det;
  const double tb = (ua.x * d.y - ua.y * d.x) / det;
  if (ta <= kMinRangeM || tb <= kMinRangeM) return false;
  out = pa + ua * ta;
  return true;
}

}  // namespace

std::vector<Hypothesis> bearing_pair_hypotheses(
    std::span<const Observation> observations, const Room& room,
    const FusionConfig& cfg) {
  const int n = static_cast<int>(observations.size());
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  if (static_cast<int>(pairs.size()) > cfg.max_hypothesis_pairs) {
    // Seeded Fisher-Yates prefix: the first max_hypothesis_pairs
    // entries after the partial shuffle are a uniform deterministic
    // subsample of the pair list.
    std::uint64_t state = cfg.ransac_seed;
    for (int k = 0; k < cfg.max_hypothesis_pairs; ++k) {
      const auto span_left = static_cast<std::uint64_t>(
          static_cast<int>(pairs.size()) - k);
      const auto pick = static_cast<std::size_t>(
          static_cast<std::uint64_t>(k) + splitmix64(state) % span_left);
      std::swap(pairs[static_cast<std::size_t>(k)], pairs[pick]);
    }
    pairs.resize(static_cast<std::size_t>(cfg.max_hypothesis_pairs));
  }

  std::vector<Hypothesis> out;
  out.reserve(pairs.size() * 4);
  for (const auto& [i, j] : pairs) {
    const Observation& a = observations[static_cast<std::size_t>(i)];
    const Observation& b = observations[static_cast<std::size_t>(j)];
    // Both ULA folds of both APs, in a fixed order.
    const Vec2 dirs_a[2] = {rotate_deg(a.pose.axis_unit(), a.aoa_deg),
                            rotate_deg(a.pose.axis_unit(), -a.aoa_deg)};
    const Vec2 dirs_b[2] = {rotate_deg(b.pose.axis_unit(), b.aoa_deg),
                            rotate_deg(b.pose.axis_unit(), -b.aoa_deg)};
    for (const Vec2& ua : dirs_a) {
      for (const Vec2& ub : dirs_b) {
        Vec2 x;
        if (!intersect_rays(a.pose.position, ua, b.pose.position, ub, x)) {
          continue;
        }
        if (!room.contains(x)) continue;
        out.push_back({x, i, j});
      }
    }
  }
  return out;
}

}  // namespace roarray::fusion
