// In-process streaming localization service: clients submit per-round
// CSI (one burst per contacted AP), the service batches concurrent
// requests through core::roarray_estimate_batch on a shared runtime
// context, fuses per-AP AoA estimates with loc::localize, and delivers
// a Response through the caller's callback.
//
// Time is logical: the service never reads a clock. Callers stamp
// submissions with a monotonic Tick and push the current tick in via
// advance_time(); deadlines and batch linger are expressed in the same
// unit. Determinism contract: with dispatchers == 0 (manual pump()) the
// whole service is single-threaded and every outcome — batch splits,
// estimates, responses — is a pure function of the submission/tick
// sequence. With dispatcher threads, per-request estimates are still
// bit-identical to the offline pipeline (estimate_batch + localize);
// only batch grouping and response order depend on scheduling.
//
// Concurrency invariants (DESIGN.md §8): mutex_ is a leaf lock — it is
// never held across calls into the estimator, the localizer, the
// runtime pool/cache, or user callbacks. Queue admission, time, stats,
// and lifecycle flags are all guarded by it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "core/roarray.hpp"
#include "loc/localize.hpp"
#include "runtime/context.hpp"
#include "runtime/thread_annotations.hpp"

namespace roarray::serve {

using linalg::index_t;

/// Logical service time; callers define the unit (e.g. microseconds, or
/// packet indices when replaying a trace).
using Tick = std::uint64_t;

/// Service tuning knobs plus the estimation/localization configuration
/// every request shares.
struct ServeConfig {
  core::RoArrayConfig estimator;
  dsp::ArrayConfig array;
  loc::LocalizeConfig localize;
  /// Deployment geometry: ap_poses[i] is the pose of ap_id i. Requests
  /// naming an ap_id outside this table are rejected as invalid.
  std::vector<channel::ApPose> ap_poses;

  /// Most requests fused into one estimate_batch call.
  index_t max_batch = 8;
  /// Admission bound: submissions beyond this many queued requests are
  /// rejected with SubmitStatus::kQueueFull.
  index_t queue_capacity = 64;
  /// How long a non-full batch may wait for company before dispatch.
  /// Boundary convention (shared with deadline_ticks): a window of W
  /// ticks is over strictly after tick submit + W, so a batch is ready
  /// once it is full, or once now > the oldest member's submit_tick +
  /// batch_linger_ticks. 0 = dispatch greedily.
  Tick batch_linger_ticks = 0;
  /// Requests whose window has closed (now > submit_tick +
  /// deadline_ticks) at batch-formation time are completed with
  /// ResponseStatus::kDeadlineExpired instead of being estimated (never
  /// silently dropped); a request processed at exactly submit_tick +
  /// deadline_ticks completes normally. 0 disables deadlines.
  Tick deadline_ticks = 0;
  /// Dispatcher threads pulling batches off the queue. 0 = no threads;
  /// the caller drives processing with pump() / drain() (deterministic
  /// single-threaded mode for tests and replay).
  int dispatchers = 1;
  /// Bound on ServiceStats::latency_ticks: the sample buffer is a ring
  /// holding the most recent this-many completion latencies, so a soak
  /// run cannot grow service memory without limit. latency_recorded
  /// still counts every sample ever taken.
  index_t latency_sample_cap = 16384;

  /// Throws std::invalid_argument on nonsense (empty AP table, bad
  /// array geometry, non-positive batch/queue bounds, negative
  /// dispatcher count, non-positive localization grid step).
  void validate() const;
};

/// Admission outcome of LocalizationService::submit.
enum class SubmitStatus {
  kAccepted,
  kQueueFull,        ///< backpressure: queue_capacity requests pending.
  kStopped,          ///< service is stopping / stopped.
  kInvalidRequest,   ///< unknown ap_id, empty burst, or CSI shape mismatch.
};

[[nodiscard]] const char* submit_status_name(SubmitStatus status) noexcept;

/// Terminal state of an accepted request.
enum class ResponseStatus {
  kOk,
  kDeadlineExpired,  ///< batch formed after submit_tick + deadline_ticks.
  kNoObservations,   ///< every per-AP estimate came back invalid.
};

[[nodiscard]] const char* response_status_name(ResponseStatus status) noexcept;

/// One AP's contribution to a request: which AP heard the client and
/// the CSI packets it captured.
struct ApSubmission {
  std::uint32_t ap_id = 0;
  std::vector<linalg::CMat> packets;
};

/// One client's localization request (one measurement round).
struct Request {
  std::uint64_t client_id = 0;
  Tick submit_tick = 0;
  std::vector<ApSubmission> aps;
};

/// Per-AP estimate echoed back alongside the fused position.
struct ApEstimate {
  std::uint32_t ap_id = 0;
  bool valid = false;
  double aoa_deg = 0.0;
  double toa_s = 0.0;
  double power = 0.0;
  double weight = 0.0;  ///< RSSI fusion weight (channel::burst_rssi_weight).
  /// Robust-fusion verdict for this AP (meaningful only when valid and
  /// the response's location.used_fusion is set): did the fused position
  /// explain this AP, its geometric residual, and its estimated NLoS
  /// positive ToA bias (DESIGN.md §13).
  bool fused_inlier = false;
  double fused_residual_m = 0.0;
  double fused_toa_bias_s = 0.0;
};

struct Response {
  std::uint64_t request_id = 0;
  std::uint64_t client_id = 0;
  ResponseStatus status = ResponseStatus::kOk;
  loc::LocalizeResult location;      ///< valid only when status == kOk.
  std::vector<ApEstimate> ap_estimates;  ///< empty when deadline-expired.
  Tick submit_tick = 0;
  Tick done_tick = 0;
};

/// Invoked exactly once per accepted request, after processing, outside
/// every service lock (re-entrant submit/advance_time from a callback
/// is allowed). May be empty. A thrown exception does not propagate:
/// the service swallows it (counted in ServiceStats::callback_exceptions)
/// so sibling callbacks in the batch still run and dispatcher threads
/// survive.
using ResponseCallback = std::function<void(const Response&)>;

/// Monotonic service counters. Snapshot via LocalizationService::stats.
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_stopped = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t deadline_dropped = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t completed_no_observations = 0;
  std::uint64_t batches = 0;
  /// Requests moved out of / into this service's queue by cross-shard
  /// work stealing (serve::ShardedService). A transferred request stays
  /// `accepted` on the service that originally admitted it and completes
  /// on the receiver, so at quiescence with no rejections:
  ///   completed == accepted - transferred_out + transferred_in.
  std::uint64_t transferred_out = 0;
  std::uint64_t transferred_in = 0;
  /// Response callbacks that threw (the exceptions are swallowed so the
  /// rest of the batch completes; see ResponseCallback).
  std::uint64_t callback_exceptions = 0;
  /// Robust-fusion health (see loc::LocalizeResult / fusion::FusionReport):
  /// completions that went through the fusion layer, how many of those
  /// escalated to the RANSAC hypothesis stage, how many ended on a
  /// non-kNone fallback reason, and the total APs the fused fix rejected
  /// as outliers.
  std::uint64_t fusion_used = 0;
  std::uint64_t fusion_ransac = 0;
  std::uint64_t fusion_fallbacks = 0;
  std::uint64_t fusion_ap_rejected = 0;
  /// batch_size_hist[k] = batches dispatched with k+1 requests.
  std::vector<std::uint64_t> batch_size_hist;
  /// Per-completed-request done_tick - submit_tick (excludes deadline
  /// drops). Bounded ring of the most recent ServeConfig::
  /// latency_sample_cap samples (oldest overwritten first); feed to
  /// eval::Cdf for percentiles. latency_recorded counts every sample
  /// ever taken, so `latency_recorded > latency_ticks.size()` tells a
  /// reader the ring wrapped.
  std::vector<double> latency_ticks;
  std::uint64_t latency_recorded = 0;
};

/// A queued request popped from one service for injection into another
/// (cross-shard work stealing). The original request_id is dropped; the
/// receiver assigns a fresh one from its own sequence.
struct Transfer {
  Request req;
  ResponseCallback on_done;
};

class LocalizationService {
 public:
  /// Validates `cfg` (throws std::invalid_argument) and starts
  /// cfg.dispatchers dispatcher threads. `ctx` members are borrowed and
  /// must outlive the service; both may be null (serial, per-call
  /// operator setup).
  explicit LocalizationService(ServeConfig cfg,
                               runtime::EstimateContext ctx = {});

  LocalizationService(const LocalizationService&) = delete;
  LocalizationService& operator=(const LocalizationService&) = delete;

  /// Drains and stops (same as stop()).
  ~LocalizationService() ROARRAY_EXCLUDES(mutex_);

  /// Validates and enqueues a request. On kAccepted the callback will
  /// be invoked exactly once; on any rejection it never is. submit also
  /// advances service time to req.submit_tick if that is ahead.
  SubmitStatus submit(Request req, ResponseCallback on_done)
      ROARRAY_EXCLUDES(mutex_);

  /// Advances service time (monotonic; lagging values are ignored) and
  /// wakes dispatchers so lingering batches and expired deadlines are
  /// re-examined.
  void advance_time(Tick now) ROARRAY_EXCLUDES(mutex_);

  /// Manual-mode step (dispatchers == 0, but legal in any mode):
  /// processes one ready batch on the calling thread. Returns false when
  /// no batch is ready under the linger rule.
  bool pump() ROARRAY_EXCLUDES(mutex_);

  /// Processes everything queued (ignoring linger) and blocks until no
  /// request is queued or in flight. The service keeps accepting
  /// submissions during and after a drain.
  void drain() ROARRAY_EXCLUDES(mutex_);

  /// Graceful shutdown: rejects new submissions (kStopped), processes
  /// every already-accepted request, then joins the dispatchers.
  /// Idempotent; called by the destructor.
  void stop() ROARRAY_EXCLUDES(mutex_);

  [[nodiscard]] ServiceStats stats() const ROARRAY_EXCLUDES(mutex_);
  [[nodiscard]] const ServeConfig& config() const noexcept { return cfg_; }

  /// Requests currently queued (admitted, not yet taken into a batch).
  /// Advisory: the value may be stale by the time the caller acts on it.
  [[nodiscard]] index_t queue_depth() const ROARRAY_EXCLUDES(mutex_);
  /// Queued plus in-flight requests; 0 means the service is idle (every
  /// admitted request has completed). Advisory, like queue_depth().
  [[nodiscard]] index_t load() const ROARRAY_EXCLUDES(mutex_);

  /// Work-stealing hooks (used by serve::ShardedService; see DESIGN.md
  /// §10). steal() pops up to max_n requests off the BACK of the queue
  /// — the newest entries, so the front request that linger/deadline
  /// rules key on is untouched unless the queue empties — and counts
  /// them as transferred_out. The caller owns every returned Transfer
  /// and must deliver each to submit_transfer() of some service (or
  /// back to this one); dropping one silently breaks the exactly-once
  /// callback contract.
  [[nodiscard]] std::vector<Transfer> steal(index_t max_n)
      ROARRAY_EXCLUDES(mutex_);

  /// Enqueues a stolen request. Admission-exempt: no validation (the
  /// original submit validated), no queue_capacity check (the stealing
  /// policy bounds the overshoot), no accepted count (the victim keeps
  /// it); counted as transferred_in. Still refuses with kStopped once
  /// stop() has begun — `t` is left intact in that case so the caller
  /// can re-route it (ShardedService prevents the race by ordering
  /// steals before shard shutdown).
  SubmitStatus submit_transfer(Transfer&& t) ROARRAY_EXCLUDES(mutex_);

 private:
  struct Pending {
    std::uint64_t request_id = 0;
    Request req;
    ResponseCallback on_done;
  };

  void dispatcher_loop() ROARRAY_EXCLUDES(mutex_);
  /// A batch can be dispatched now. `force` ignores the linger rule
  /// (used by drain/stop); an expired front request always counts as
  /// ready so deadline drops happen promptly.
  [[nodiscard]] bool batch_ready_locked(bool force) const
      ROARRAY_REQUIRES(mutex_);
  /// Pops one batch off the queue; deadline-expired requests go to
  /// `expired` instead (they do not consume batch slots). Returns false
  /// when nothing was popped.
  [[nodiscard]] bool take_batch_locked(bool force, std::vector<Pending>& batch,
                                       std::vector<Pending>& expired)
      ROARRAY_REQUIRES(mutex_);
  /// Runs estimation + localization for `batch`, completes `expired`,
  /// updates stats, and invokes callbacks. Never holds mutex_ across
  /// the estimator or callbacks.
  void process_batch(std::vector<Pending> batch, std::vector<Pending> expired)
      ROARRAY_EXCLUDES(mutex_);
  /// One take-and-process step; returns false when nothing was ready.
  bool step(bool force) ROARRAY_EXCLUDES(mutex_);

  const ServeConfig cfg_;
  const runtime::EstimateContext ctx_;

  mutable runtime::Mutex mutex_;
  runtime::CondVar ready_cv_;  ///< dispatchers sleep here for work.
  runtime::CondVar idle_cv_;   ///< drain()/stop() sleep here for quiescence.
  std::deque<Pending> queue_ ROARRAY_GUARDED_BY(mutex_);
  Tick now_ ROARRAY_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_request_id_ ROARRAY_GUARDED_BY(mutex_) = 1;
  /// Requests taken off the queue but not yet completed.
  std::uint64_t in_flight_ ROARRAY_GUARDED_BY(mutex_) = 0;
  /// Active drain() calls; while positive, linger is ignored.
  int drain_requests_ ROARRAY_GUARDED_BY(mutex_) = 0;
  bool stopping_ ROARRAY_GUARDED_BY(mutex_) = false;
  ServiceStats stats_ ROARRAY_GUARDED_BY(mutex_);

  std::vector<std::thread> dispatchers_;
  std::atomic<bool> stop_done_{false};
};

}  // namespace roarray::serve
