// Multi-shard serving front end: N independent LocalizationService
// shards behind one router, scaling the in-process serving story
// horizontally while keeping every per-shard invariant of service.hpp
// intact.
//
//   * Sticky routing. A client's requests always land on
//     shard_of(client_id) — a pure splitmix64 hash, stable across
//     process restarts — so the per-geometry operators its solves warm
//     up stay hot in that shard's private OperatorCache
//     (runtime::ShardRuntime owns one cache per shard).
//   * Queue-depth admission control. A submission whose home shard
//     already holds admission_depth queued requests is shed
//     immediately with kQueueFull — typed backpressure the client sees
//     in microseconds — instead of being admitted into a queue deep
//     enough that it (or its neighbors) would blow a logical-tick
//     deadline later.
//   * Work stealing. When a shard goes idle while another has backlog
//     beyond steal_min_backlog, the router moves roughly half of the
//     victim's queue (newest entries) to the idle shard. Per-request
//     results are grouping- and shard-independent (estimates are
//     per-burst deterministic and fusion weights are request-local),
//     so a stolen request completes bit-identically to a non-stolen
//     one; stealing trades cache affinity for utilization, never
//     correctness.
//   * Determinism. With shard.dispatchers == 0 the caller drives every
//     shard through pump()/drain() on one thread; routing, stealing,
//     and batch formation are all pure functions of the submission/
//     tick sequence, and per-request results are bit-identical to the
//     single-service pump/drain path for any shard count (the
//     ShardedReplayMatchesSingleService property pins this).
//
// Lock order (DESIGN.md §8): router_mutex_ sits strictly above every
// shard's leaf mutex_. It is held only across queue-depth queries and
// queue transfers — never across estimation, localization, or user
// callbacks — so the global lock graph stays acyclic:
// router → shard-leaf, and (inside a shard's batch processing)
// pool call_mutex_ → pool mutex_.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/seed.hpp"
#include "runtime/shard_context.hpp"
#include "runtime/thread_annotations.hpp"
#include "serve/service.hpp"

namespace roarray::serve {

struct ShardedConfig {
  /// Per-shard service configuration. dispatchers is the thread count
  /// PER SHARD (0 keeps every shard in deterministic manual mode);
  /// queue_capacity and latency_sample_cap are likewise per shard.
  ServeConfig shard;
  int shards = 1;
  /// Early-shed bound: a submission finding this many requests already
  /// queued on its home shard is rejected kQueueFull by the router
  /// before touching the shard. 0 = use shard.queue_capacity (shed
  /// only when the shard itself would reject). Values above
  /// shard.queue_capacity are legal but ineffective (the shard's own
  /// bound hits first).
  index_t admission_depth = 0;
  /// Move backlog from a shard with more than this many queued
  /// requests to an idle shard. Meaningful only with work_stealing.
  index_t steal_min_backlog = 2;
  bool work_stealing = true;

  /// Throws std::invalid_argument on nonsense (delegates to
  /// shard.validate(), then checks the sharding knobs).
  void validate() const;
};

/// Per-shard snapshots plus their exact field-wise sum, taken in one
/// call so the two views reconcile: every aggregate counter equals the
/// sum of the per_shard counters (the test suite pins this), and
/// aggregate.latency_ticks is the concatenation in shard order.
struct ShardedStats {
  std::vector<ServiceStats> per_shard;
  ServiceStats aggregate;
  /// Router-level counters (not part of any shard's stats): requests
  /// shed by admission control, steal events, and requests moved.
  std::uint64_t shed_admission = 0;
  std::uint64_t steal_events = 0;
  std::uint64_t stolen_requests = 0;
};

/// Field-wise accumulation used to build ShardedStats::aggregate;
/// exposed so tests can reconcile independently. Histograms are added
/// index-wise (the longer size wins), latency samples are appended and
/// latency_recorded summed.
void accumulate_stats(ServiceStats& into, const ServiceStats& from);

class ShardedService {
 public:
  /// Validates `cfg` (throws std::invalid_argument), builds cfg.shards
  /// LocalizationService instances each owning a private OperatorCache
  /// over the optional shared `pool` (borrowed; may be null).
  explicit ShardedService(ShardedConfig cfg,
                          runtime::ThreadPool* pool = nullptr);

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Drains and stops (same as stop()).
  ~ShardedService() ROARRAY_EXCLUDES(router_mutex_);

  /// Home shard of a client: splitmix64(client_id) mod shards. Pure —
  /// identical across instances, restarts, and machines.
  [[nodiscard]] int shard_of(std::uint64_t client_id) const noexcept {
    return static_cast<int>(runtime::mix_seed(client_id) %
                            static_cast<std::uint64_t>(shards_.size()));
  }

  /// Routes to the home shard. Sheds kQueueFull when the shard's queue
  /// depth is at or beyond admission_depth (checked before validation —
  /// overload is decided on the cheapest signal first; the home
  /// shard's clock still advances to req.submit_tick). Otherwise
  /// delegates to LocalizationService::submit. May trigger a steal
  /// pass when the home shard is backlogged.
  SubmitStatus submit(Request req, ResponseCallback on_done)
      ROARRAY_EXCLUDES(router_mutex_);

  /// Broadcasts the tick to every shard (per-shard clocks also advance
  /// via their own submissions), then runs a steal pass so a shard
  /// idled by the new tick picks up backlog.
  void advance_time(Tick now) ROARRAY_EXCLUDES(router_mutex_);

  /// Manual-mode step: pumps every shard once in shard order, then
  /// runs a steal pass. Returns true when any shard processed a batch.
  /// Deterministic with shard.dispatchers == 0.
  bool pump() ROARRAY_EXCLUDES(router_mutex_);

  /// Blocks until every shard is simultaneously quiescent (re-checking
  /// after each sweep because a steal can move work into a shard that
  /// already drained). Keeps accepting submissions, like the per-shard
  /// drain.
  void drain() ROARRAY_EXCLUDES(router_mutex_);

  /// Graceful shutdown: disables stealing, then stops every shard (each
  /// completes its admitted requests). Idempotent; called by the
  /// destructor.
  void stop() ROARRAY_EXCLUDES(router_mutex_);

  [[nodiscard]] ShardedStats stats() const ROARRAY_EXCLUDES(router_mutex_);
  [[nodiscard]] int num_shards() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] const ShardedConfig& config() const noexcept { return cfg_; }
  /// Read-only access to one shard (tests and benches).
  [[nodiscard]] const LocalizationService& shard(int i) const {
    return *shards_.at(static_cast<std::size_t>(i));
  }

 private:
  /// One steal pass: if some shard is idle and another holds more than
  /// steal_min_backlog queued requests, move about half of the victim's
  /// backlog to the idle shard. No-op while stopping (stop() acquires
  /// router_mutex_ after flipping stopping_, so an in-progress steal
  /// always finishes before any shard shuts down — submit_transfer can
  /// never hit a stopped shard). Returns true when requests moved.
  bool maybe_steal() ROARRAY_EXCLUDES(router_mutex_);

  [[nodiscard]] index_t admission_limit() const noexcept {
    return cfg_.admission_depth > 0 ? cfg_.admission_depth
                                    : cfg_.shard.queue_capacity;
  }

  const ShardedConfig cfg_;
  runtime::ShardRuntime runtime_;
  std::vector<std::unique_ptr<LocalizationService>> shards_;

  mutable runtime::Mutex router_mutex_;
  bool stopping_ ROARRAY_GUARDED_BY(router_mutex_) = false;
  std::uint64_t steal_events_ ROARRAY_GUARDED_BY(router_mutex_) = 0;
  std::uint64_t stolen_requests_ ROARRAY_GUARDED_BY(router_mutex_) = 0;
  /// Router-level shed counter; atomic so the submit fast path never
  /// touches router_mutex_.
  std::atomic<std::uint64_t> shed_admission_{0};
};

}  // namespace roarray::serve
