#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "channel/csi.hpp"

namespace roarray::serve {

const char* submit_status_name(SubmitStatus status) noexcept {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kStopped: return "stopped";
    case SubmitStatus::kInvalidRequest: return "invalid-request";
  }
  return "unknown";
}

const char* response_status_name(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kDeadlineExpired: return "deadline-expired";
    case ResponseStatus::kNoObservations: return "no-observations";
  }
  return "unknown";
}

void ServeConfig::validate() const {
  array.validate();
  if (ap_poses.empty()) {
    throw std::invalid_argument("ServeConfig: ap_poses must name at least one AP");
  }
  if (max_batch < 1) {
    throw std::invalid_argument("ServeConfig: max_batch must be >= 1");
  }
  if (queue_capacity < 1) {
    throw std::invalid_argument("ServeConfig: queue_capacity must be >= 1");
  }
  if (dispatchers < 0) {
    throw std::invalid_argument("ServeConfig: dispatchers must be >= 0");
  }
  if (latency_sample_cap < 1) {
    throw std::invalid_argument("ServeConfig: latency_sample_cap must be >= 1");
  }
  if (!std::isfinite(localize.grid_step_m) || localize.grid_step_m <= 0.0) {
    throw std::invalid_argument(
        "ServeConfig: localize.grid_step_m must be positive and finite");
  }
  if (localize.robust_min_aps < 2) {
    throw std::invalid_argument(
        "ServeConfig: localize.robust_min_aps must be >= 2");
  }
  localize.fusion.validate();
}

LocalizationService::LocalizationService(ServeConfig cfg,
                                         runtime::EstimateContext ctx)
    : cfg_(std::move(cfg)), ctx_(ctx) {
  cfg_.validate();
  stats_.batch_size_hist.assign(static_cast<std::size_t>(cfg_.max_batch), 0);
  dispatchers_.reserve(static_cast<std::size_t>(cfg_.dispatchers));
  for (int i = 0; i < cfg_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

LocalizationService::~LocalizationService() { stop(); }

SubmitStatus LocalizationService::submit(Request req, ResponseCallback on_done) {
  bool invalid = req.aps.empty();
  for (const ApSubmission& ap : req.aps) {
    if (ap.ap_id >= cfg_.ap_poses.size() || ap.packets.empty()) {
      invalid = true;
      break;
    }
    for (const linalg::CMat& csi : ap.packets) {
      if (csi.rows() != cfg_.array.num_antennas ||
          csi.cols() != cfg_.array.num_subcarriers) {
        invalid = true;
        break;
      }
    }
    if (invalid) break;
  }
  runtime::MutexLock lk(mutex_);
  if (req.submit_tick > now_) now_ = req.submit_tick;
  if (invalid) {
    ++stats_.rejected_invalid;
    return SubmitStatus::kInvalidRequest;
  }
  if (stopping_) {
    ++stats_.rejected_stopped;
    return SubmitStatus::kStopped;
  }
  if (static_cast<index_t>(queue_.size()) >= cfg_.queue_capacity) {
    ++stats_.rejected_queue_full;
    return SubmitStatus::kQueueFull;
  }
  Pending p;
  p.request_id = next_request_id_++;
  p.req = std::move(req);
  p.on_done = std::move(on_done);
  queue_.push_back(std::move(p));
  ++stats_.accepted;
  ready_cv_.notify_one();
  return SubmitStatus::kAccepted;
}

void LocalizationService::advance_time(Tick now) {
  runtime::MutexLock lk(mutex_);
  if (now > now_) now_ = now;
  // Linger windows and deadlines may have matured.
  ready_cv_.notify_all();
}

bool LocalizationService::batch_ready_locked(bool force) const {
  if (queue_.empty()) return false;
  if (force || static_cast<index_t>(queue_.size()) >= cfg_.max_batch ||
      cfg_.batch_linger_ticks == 0) {
    return true;
  }
  // Boundary convention (shared with the deadline checks below and in
  // take_batch_locked): a window of W ticks is over strictly after tick
  // submit + W, so a batch formed at exactly submit + W still lingers
  // and a request processed at exactly submit + deadline completes
  // normally.
  const Tick oldest = queue_.front().req.submit_tick;
  if (now_ > oldest + cfg_.batch_linger_ticks) return true;
  // An expired request at the front must be dropped promptly even while
  // the linger window is still open.
  return cfg_.deadline_ticks > 0 && now_ > oldest + cfg_.deadline_ticks;
}

bool LocalizationService::take_batch_locked(bool force,
                                            std::vector<Pending>& batch,
                                            std::vector<Pending>& expired) {
  if (!batch_ready_locked(force)) return false;
  while (!queue_.empty() &&
         static_cast<index_t>(batch.size()) < cfg_.max_batch) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    if (cfg_.deadline_ticks > 0 &&
        now_ > p.req.submit_tick + cfg_.deadline_ticks) {
      expired.push_back(std::move(p));
    } else {
      batch.push_back(std::move(p));
    }
  }
  in_flight_ += batch.size() + expired.size();
  if (!queue_.empty()) ready_cv_.notify_one();
  return !batch.empty() || !expired.empty();
}

void LocalizationService::process_batch(std::vector<Pending> batch,
                                        std::vector<Pending> expired) {
  // take_batch_locked already counted these requests into in_flight_;
  // if anything below throws before the stats block settles them, the
  // count must still come back down or drain()/stop() wedge forever
  // waiting for quiescence.
  auto settle_in_flight_on_error = [this, n = batch.size() + expired.size()] {
    runtime::MutexLock lk(mutex_);
    in_flight_ -= n;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  };

  std::vector<Response> responses;
  try {
    // Per-AP fusion weights must come from the packets before the bursts
    // are moved into the flattened estimator input.
    std::vector<std::vector<double>> weights(batch.size());
    std::vector<core::CsiBurst> bursts;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Request& req = batch[i].req;
      weights[i].reserve(req.aps.size());
      for (ApSubmission& ap : req.aps) {
        weights[i].push_back(channel::burst_rssi_weight(ap.packets));
        bursts.push_back(std::move(ap.packets));
      }
    }
    std::vector<core::RoArrayResult> results;
    if (!bursts.empty()) {
      results = core::roarray_estimate_batch(bursts, cfg_.estimator, cfg_.array,
                                             ctx_);
    }

    responses.reserve(batch.size() + expired.size());
    std::size_t burst_index = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Pending& p = batch[i];
      Response r;
      r.request_id = p.request_id;
      r.client_id = p.req.client_id;
      r.submit_tick = p.req.submit_tick;
      std::vector<loc::ApObservation> observations;
      std::vector<std::size_t> obs_ap;  // observation slot -> ap_estimates index.
      r.ap_estimates.reserve(p.req.aps.size());
      for (std::size_t j = 0; j < p.req.aps.size(); ++j) {
        const core::RoArrayResult& est = results[burst_index++];
        ApEstimate ae;
        ae.ap_id = p.req.aps[j].ap_id;
        ae.valid = est.valid;
        ae.weight = weights[i][j];
        if (est.valid) {
          ae.aoa_deg = est.direct.aoa_deg;
          ae.toa_s = est.direct.toa_s;
          ae.power = est.direct.power;
          loc::ApObservation obs;
          obs.pose = cfg_.ap_poses[ae.ap_id];
          obs.aoa_deg = ae.aoa_deg;
          obs.weight = ae.weight;
          obs.toa_s = ae.toa_s;
          obs.has_toa = true;
          observations.push_back(obs);
          obs_ap.push_back(j);
        }
        r.ap_estimates.push_back(ae);
      }
      if (observations.empty()) {
        r.status = ResponseStatus::kNoObservations;
      } else {
        r.location = loc::localize(observations, cfg_.localize, ctx_.pool);
        // A degenerate round (e.g. every RSSI weight zero) now carries a
        // typed status out of the localizer instead of a bogus (0,0) fix.
        r.status = r.location.valid ? ResponseStatus::kOk
                                    : ResponseStatus::kNoObservations;
        if (r.location.used_fusion) {
          for (std::size_t k = 0; k < obs_ap.size(); ++k) {
            const fusion::ApDiagnostics& d = r.location.fusion.per_ap[k];
            ApEstimate& ae = r.ap_estimates[obs_ap[k]];
            ae.fused_inlier = d.inlier;
            ae.fused_residual_m = d.residual_m;
            ae.fused_toa_bias_s = d.toa_bias_s;
          }
        }
      }
      responses.push_back(std::move(r));
    }
    for (const Pending& p : expired) {
      Response r;
      r.request_id = p.request_id;
      r.client_id = p.req.client_id;
      r.submit_tick = p.req.submit_tick;
      r.status = ResponseStatus::kDeadlineExpired;
      responses.push_back(std::move(r));
    }
  } catch (...) {
    settle_in_flight_on_error();
    throw;
  }

  {
    runtime::MutexLock lk(mutex_);
    const Tick done = now_;
    for (std::size_t i = 0; i < responses.size(); ++i) {
      Response& r = responses[i];
      r.done_tick = done;
      switch (r.status) {
        case ResponseStatus::kOk:
          ++stats_.completed_ok;
          if (r.location.used_fusion) {
            ++stats_.fusion_used;
            if (r.location.fusion.used_ransac) ++stats_.fusion_ransac;
            if (r.location.fusion.fallback != fusion::FusionFallback::kNone) {
              ++stats_.fusion_fallbacks;
            }
            stats_.fusion_ap_rejected += r.location.fusion.per_ap.size() -
                static_cast<std::size_t>(r.location.fusion.inliers);
          }
          break;
        case ResponseStatus::kNoObservations:
          ++stats_.completed_no_observations;
          break;
        case ResponseStatus::kDeadlineExpired:
          ++stats_.deadline_dropped;
          break;
      }
      if (r.status != ResponseStatus::kDeadlineExpired) {
        // Bounded ring: grow until latency_sample_cap, then overwrite
        // the oldest sample (latency_recorded % cap cycles through the
        // buffer), so a soak run cannot grow memory without limit.
        const auto cap = static_cast<std::size_t>(cfg_.latency_sample_cap);
        const double sample = static_cast<double>(r.done_tick - r.submit_tick);
        if (stats_.latency_ticks.size() < cap) {
          stats_.latency_ticks.push_back(sample);
        } else {
          stats_.latency_ticks[static_cast<std::size_t>(
              stats_.latency_recorded % cap)] = sample;
        }
        ++stats_.latency_recorded;
      }
    }
    if (!batch.empty()) {
      ++stats_.batches;
      ++stats_.batch_size_hist[batch.size() - 1];
    }
    in_flight_ -= batch.size() + expired.size();
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }

  // Callbacks run outside the lock and are user code: a throwing one
  // must not rob its siblings of their completion (every accepted
  // request gets its callback invoked) or escape into a dispatcher
  // thread (std::terminate). Exceptions are swallowed and counted.
  std::uint64_t callback_exceptions = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const ResponseCallback& cb =
        i < batch.size() ? batch[i].on_done : expired[i - batch.size()].on_done;
    if (!cb) continue;
    try {
      cb(responses[i]);
    } catch (...) {
      ++callback_exceptions;
    }
  }
  if (callback_exceptions > 0) {
    runtime::MutexLock lk(mutex_);
    stats_.callback_exceptions += callback_exceptions;
  }
}

bool LocalizationService::step(bool force) {
  std::vector<Pending> batch;
  std::vector<Pending> expired;
  {
    runtime::MutexLock lk(mutex_);
    if (!take_batch_locked(force, batch, expired)) return false;
  }
  process_batch(std::move(batch), std::move(expired));
  return true;
}

void LocalizationService::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    {
      runtime::MutexLock lk(mutex_);
      for (;;) {
        const bool force = stopping_ || drain_requests_ > 0;
        if (batch_ready_locked(force)) {
          (void)take_batch_locked(force, batch, expired);
          break;
        }
        if (stopping_) return;  // queue drained; shut down.
        ready_cv_.wait(mutex_);
      }
    }
    process_batch(std::move(batch), std::move(expired));
  }
}

bool LocalizationService::pump() { return step(false); }

void LocalizationService::drain() {
  // Manual mode: this thread is the only processor, so just run the
  // queue dry here. (Also covers hybrid use with dispatcher threads —
  // stepping concurrently is safe, the final wait below is what matters.)
  while (step(true)) {
  }
  runtime::MutexLock lk(mutex_);
  ++drain_requests_;
  ready_cv_.notify_all();
  while (!queue_.empty() || in_flight_ != 0) idle_cv_.wait(mutex_);
  --drain_requests_;
}

void LocalizationService::stop() {
  if (stop_done_.exchange(true)) return;
  {
    runtime::MutexLock lk(mutex_);
    stopping_ = true;
    ready_cv_.notify_all();
  }
  for (std::thread& t : dispatchers_) t.join();
  // Manual mode (no dispatchers) still owes every accepted request a
  // response: run the remaining queue dry on this thread.
  while (step(true)) {
  }
}

ServiceStats LocalizationService::stats() const {
  runtime::MutexLock lk(mutex_);
  return stats_;
}

index_t LocalizationService::queue_depth() const {
  runtime::MutexLock lk(mutex_);
  return static_cast<index_t>(queue_.size());
}

index_t LocalizationService::load() const {
  runtime::MutexLock lk(mutex_);
  return static_cast<index_t>(queue_.size()) +
         static_cast<index_t>(in_flight_);
}

std::vector<Transfer> LocalizationService::steal(index_t max_n) {
  std::vector<Transfer> out;
  runtime::MutexLock lk(mutex_);
  while (!queue_.empty() && static_cast<index_t>(out.size()) < max_n) {
    Pending p = std::move(queue_.back());
    queue_.pop_back();
    out.push_back({std::move(p.req), std::move(p.on_done)});
  }
  // Popped newest-first; hand them over oldest-first so the receiver
  // preserves their relative submission order.
  std::reverse(out.begin(), out.end());
  stats_.transferred_out += out.size();
  // Stealing the whole backlog makes this service quiescent: wake any
  // drain()/stop() waiting for that.
  if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  return out;
}

SubmitStatus LocalizationService::submit_transfer(Transfer&& t) {
  runtime::MutexLock lk(mutex_);
  if (t.req.submit_tick > now_) now_ = t.req.submit_tick;
  if (stopping_) {
    ++stats_.rejected_stopped;
    return SubmitStatus::kStopped;
  }
  Pending p;
  p.request_id = next_request_id_++;
  p.req = std::move(t.req);
  p.on_done = std::move(t.on_done);
  queue_.push_back(std::move(p));
  ++stats_.transferred_in;
  ready_cv_.notify_one();
  return SubmitStatus::kAccepted;
}

}  // namespace roarray::serve
