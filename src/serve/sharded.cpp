#include "serve/sharded.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace roarray::serve {

void ShardedConfig::validate() const {
  shard.validate();
  if (shards < 1) {
    throw std::invalid_argument("ShardedConfig: shards must be >= 1");
  }
  if (admission_depth < 0) {
    throw std::invalid_argument(
        "ShardedConfig: admission_depth must be >= 0 (0 = queue_capacity)");
  }
  if (steal_min_backlog < 1) {
    throw std::invalid_argument(
        "ShardedConfig: steal_min_backlog must be >= 1");
  }
}

void accumulate_stats(ServiceStats& into, const ServiceStats& from) {
  into.accepted += from.accepted;
  into.rejected_queue_full += from.rejected_queue_full;
  into.rejected_stopped += from.rejected_stopped;
  into.rejected_invalid += from.rejected_invalid;
  into.deadline_dropped += from.deadline_dropped;
  into.completed_ok += from.completed_ok;
  into.completed_no_observations += from.completed_no_observations;
  into.batches += from.batches;
  into.transferred_out += from.transferred_out;
  into.transferred_in += from.transferred_in;
  into.callback_exceptions += from.callback_exceptions;
  if (into.batch_size_hist.size() < from.batch_size_hist.size()) {
    into.batch_size_hist.resize(from.batch_size_hist.size(), 0);
  }
  for (std::size_t k = 0; k < from.batch_size_hist.size(); ++k) {
    into.batch_size_hist[k] += from.batch_size_hist[k];
  }
  into.latency_ticks.insert(into.latency_ticks.end(),
                            from.latency_ticks.begin(),
                            from.latency_ticks.end());
  into.latency_recorded += from.latency_recorded;
}

ShardedService::ShardedService(ShardedConfig cfg, runtime::ThreadPool* pool)
    : cfg_(std::move(cfg)), runtime_(std::max(cfg_.shards, 1), pool) {
  cfg_.validate();
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(
        std::make_unique<LocalizationService>(cfg_.shard, runtime_.context(s)));
  }
}

ShardedService::~ShardedService() { stop(); }

SubmitStatus ShardedService::submit(Request req, ResponseCallback on_done) {
  LocalizationService& home = *shards_[static_cast<std::size_t>(
      shard_of(req.client_id))];
  const index_t depth = home.queue_depth();
  if (depth >= admission_limit()) {
    // Early shed: typed backpressure now beats a deadline miss later.
    // The shard's clock still advances so linger windows and deadlines
    // of already-queued requests mature (submit would have done this).
    shed_admission_.fetch_add(1, std::memory_order_relaxed);
    home.advance_time(req.submit_tick);
    if (cfg_.work_stealing) (void)maybe_steal();
    return SubmitStatus::kQueueFull;
  }
  const SubmitStatus st = home.submit(std::move(req), std::move(on_done));
  if (st == SubmitStatus::kAccepted && cfg_.work_stealing &&
      depth + 1 > cfg_.steal_min_backlog) {
    (void)maybe_steal();
  }
  return st;
}

void ShardedService::advance_time(Tick now) {
  for (auto& s : shards_) s->advance_time(now);
  if (cfg_.work_stealing) (void)maybe_steal();
}

bool ShardedService::pump() {
  bool any = false;
  for (auto& s : shards_) {
    const bool did = s->pump();
    any = any || did;
  }
  if (cfg_.work_stealing) (void)maybe_steal();
  return any;
}

void ShardedService::drain() {
  for (;;) {
    for (auto& s : shards_) s->drain();
    // A steal can move backlog into a shard that already drained this
    // sweep; holding router_mutex_ for the idle check excludes
    // in-progress steals (their popped requests are otherwise invisible
    // to every shard's load()).
    bool all_idle = true;
    {
      runtime::MutexLock lk(router_mutex_);
      for (auto& s : shards_) {
        if (s->load() != 0) {
          all_idle = false;
          break;
        }
      }
    }
    if (all_idle) return;
  }
}

void ShardedService::stop() {
  {
    runtime::MutexLock lk(router_mutex_);
    // Any steal that started before this lock acquisition has finished
    // (maybe_steal holds the lock end to end), and none will start
    // after: shard shutdown below can never strand a stolen request.
    stopping_ = true;
  }
  for (auto& s : shards_) s->stop();
}

ShardedStats ShardedService::stats() const {
  ShardedStats out;
  out.per_shard.reserve(shards_.size());
  for (const auto& s : shards_) out.per_shard.push_back(s->stats());
  for (const ServiceStats& s : out.per_shard) {
    accumulate_stats(out.aggregate, s);
  }
  {
    runtime::MutexLock lk(router_mutex_);
    out.steal_events = steal_events_;
    out.stolen_requests = stolen_requests_;
  }
  out.shed_admission = shed_admission_.load(std::memory_order_relaxed);
  return out;
}

bool ShardedService::maybe_steal() {
  if (shards_.size() < 2) return false;
  runtime::MutexLock lk(router_mutex_);
  if (stopping_) return false;
  int thief = -1;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->load() == 0) {
      thief = static_cast<int>(i);
      break;
    }
  }
  if (thief < 0) return false;
  int victim = -1;
  index_t deepest = cfg_.steal_min_backlog;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const index_t depth = shards_[i]->queue_depth();
    if (depth > deepest) {
      deepest = depth;
      victim = static_cast<int>(i);
    }
  }
  if (victim < 0) return false;
  std::vector<Transfer> moved =
      shards_[static_cast<std::size_t>(victim)]->steal((deepest + 1) / 2);
  if (moved.empty()) return false;
  for (Transfer& t : moved) {
    // Cannot fail: shards stop only after stopping_ is set under
    // router_mutex_, which this pass holds. submit_transfer leaves `t`
    // intact on refusal, so the defensive fallback hands the same
    // request back to the victim rather than dropping its callback.
    if (shards_[static_cast<std::size_t>(thief)]->submit_transfer(
            std::move(t)) != SubmitStatus::kAccepted) {
      (void)shards_[static_cast<std::size_t>(victim)]->submit_transfer(
          std::move(t));
    }
  }
  ++steal_events_;
  stolen_requests_ += moved.size();
  return true;
}

}  // namespace roarray::serve
