// Per-shard runtime ownership for the sharded serving front end: one
// OperatorCache per shard over an optional shared ThreadPool.
//
// Sticky client routing (serve::ShardedService) only pays off if the
// per-geometry operators a client's requests warm up stay local to the
// shard that serves it — a single process-wide cache would put every
// shard's first-touch construction and map lookups behind one mutex.
// Each shard therefore owns its cache outright (no cross-shard cache
// traffic at all), while the ThreadPool stays shared: pool lanes are
// hardware-bound, and estimate_batch calls from different shards
// already serialize at the pool's single job slot (DESIGN.md §8).
//
// Cache duplication across shards is bounded and cheap: the working
// set is a handful of (grid, array) combinations and entries are
// immutable once built, so k shards cost at most k copies of that
// handful — the price of zero sharing.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/operator_cache.hpp"

namespace roarray::runtime {

class ShardRuntime {
 public:
  /// Builds `shards` independent caches. `shared_pool` is borrowed and
  /// may be null (shards estimate serially); it must outlive this
  /// object. Throws std::invalid_argument when shards < 1.
  explicit ShardRuntime(int shards, ThreadPool* shared_pool = nullptr)
      : pool_(shared_pool) {
    if (shards < 1) {
      throw std::invalid_argument("ShardRuntime: shards must be >= 1");
    }
    caches_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      caches_.push_back(std::make_unique<OperatorCache>());
    }
  }

  [[nodiscard]] int shards() const noexcept {
    return static_cast<int>(caches_.size());
  }

  [[nodiscard]] OperatorCache& cache(int shard) {
    return *caches_.at(static_cast<std::size_t>(shard));
  }

  [[nodiscard]] const OperatorCache& cache(int shard) const {
    return *caches_.at(static_cast<std::size_t>(shard));
  }

  /// The EstimateContext shard `shard` runs its solves with: that
  /// shard's private cache plus the shared pool (possibly null).
  [[nodiscard]] EstimateContext context(int shard) {
    return {&cache(shard), pool_};
  }

  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_; }

 private:
  std::vector<std::unique_ptr<OperatorCache>> caches_;
  ThreadPool* pool_;
};

}  // namespace roarray::runtime
