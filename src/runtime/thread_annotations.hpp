// Portable Clang Thread Safety Analysis annotations, plus the annotated
// mutex primitives the runtime layer locks with.
//
// Clang's -Wthread-safety pass statically proves that every access to a
// ROARRAY_GUARDED_BY member happens while its mutex is held. The macros
// expand to the underlying attributes under clang and to nothing under
// every other compiler, so the annotations cost nothing off clang and
// gate the build (-Werror=thread-safety, see the root CMakeLists) on it.
//
// The standard library's mutex types carry no capability attributes on
// libstdc++, so locking a std::mutex through std::lock_guard is
// invisible to the analysis — every guarded access would be flagged.
// Mutex / MutexLock / CondVar below are thin annotated wrappers over
// std::mutex / std::condition_variable_any that make the lock state
// visible to the pass. All mutex-protected state in the runtime
// (ThreadPool, OperatorCache) locks through these.
//
// Annotation cheat sheet:
//   ROARRAY_CAPABILITY(name)    the class is a lockable capability.
//   ROARRAY_GUARDED_BY(m)       member readable/writable only with m held.
//   ROARRAY_PT_GUARDED_BY(m)    the pointee (not the pointer) needs m.
//   ROARRAY_REQUIRES(m)         caller must hold m across this call.
//   ROARRAY_EXCLUDES(m)         caller must NOT hold m (non-reentrant).
//   ROARRAY_ACQUIRE / RELEASE   this function takes / drops the lock.
//   ROARRAY_NO_THREAD_SAFETY_ANALYSIS  opt a function out (last resort;
//                               justify at the use site).
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ROARRAY_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ROARRAY_THREAD_ANNOTATION
#define ROARRAY_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define ROARRAY_CAPABILITY(x) ROARRAY_THREAD_ANNOTATION(capability(x))
#define ROARRAY_SCOPED_CAPABILITY ROARRAY_THREAD_ANNOTATION(scoped_lockable)
#define ROARRAY_GUARDED_BY(x) ROARRAY_THREAD_ANNOTATION(guarded_by(x))
#define ROARRAY_PT_GUARDED_BY(x) ROARRAY_THREAD_ANNOTATION(pt_guarded_by(x))
#define ROARRAY_REQUIRES(...) \
  ROARRAY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ROARRAY_EXCLUDES(...) \
  ROARRAY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ROARRAY_ACQUIRE(...) \
  ROARRAY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ROARRAY_RELEASE(...) \
  ROARRAY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ROARRAY_TRY_ACQUIRE(...) \
  ROARRAY_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ROARRAY_ASSERT_CAPABILITY(x) \
  ROARRAY_THREAD_ANNOTATION(assert_capability(x))
#define ROARRAY_RETURN_CAPABILITY(x) ROARRAY_THREAD_ANNOTATION(lock_returned(x))
#define ROARRAY_NO_THREAD_SAFETY_ANALYSIS \
  ROARRAY_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace roarray::runtime {

/// std::mutex with capability annotations. Satisfies Lockable, so it
/// works directly with CondVar (condition_variable_any) below.
class ROARRAY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ROARRAY_ACQUIRE() { m_.lock(); }
  void unlock() ROARRAY_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() ROARRAY_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  std::mutex m_;
};

/// Scoped lock over Mutex (std::lock_guard equivalent the analysis can
/// see). Holds the lock from construction to end of scope.
class ROARRAY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ROARRAY_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() ROARRAY_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable that waits on Mutex directly. wait() is annotated
/// REQUIRES(m): the caller holds m before the call and holds it again
/// when the call returns (the internal unlock/relock nets out), which is
/// exactly the lock state the analysis should assume. Use the manual
/// `while (!predicate) cv.wait(m);` form — a predicate lambda would be
/// analyzed as a separate unannotated function and defeat the checking.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m) ROARRAY_REQUIRES(m) { cv_.wait(m); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace roarray::runtime
