#include "runtime/operator_cache.hpp"

#include "dsp/steering.hpp"
#include "sparse/power.hpp"

namespace roarray::runtime {

OperatorKey OperatorKey::of(const dsp::Grid& aoa_grid, const dsp::Grid& toa_grid,
                            const dsp::ArrayConfig& array_cfg) {
  OperatorKey k;
  k.aoa_lo = aoa_grid.lo();
  k.aoa_hi = aoa_grid.hi();
  k.aoa_n = aoa_grid.size();
  k.toa_lo = toa_grid.lo();
  k.toa_hi = toa_grid.hi();
  k.toa_n = toa_grid.size();
  k.antennas = array_cfg.num_antennas;
  k.subcarriers = array_cfg.num_subcarriers;
  k.spacing_over_wavelength = array_cfg.spacing_over_wavelength();
  k.subcarrier_spacing_hz = array_cfg.subcarrier_spacing_hz;
  return k;
}

std::shared_ptr<const CachedOperator> build_cached_operator(
    const dsp::Grid& aoa_grid, const dsp::Grid& toa_grid,
    const dsp::ArrayConfig& array_cfg) {
  array_cfg.validate();
  auto entry = std::make_shared<CachedOperator>(CachedOperator{
      sparse::KroneckerOperator(dsp::steering_matrix_aoa(aoa_grid, array_cfg),
                                dsp::steering_matrix_toa(toa_grid, array_cfg)),
      0.0, CMat{}, CMat{}, CMat{}});
  entry->norm_sq = sparse::operator_norm_sq(entry->op);
  entry->left_gram = matmul(entry->op.left(), adjoint(entry->op.left()));
  entry->right_gram = matmul(entry->op.right(), adjoint(entry->op.right()));
  entry->row_gram = entry->op.row_gram();
  return entry;
}

std::shared_ptr<const CachedOperator> OperatorCache::get(
    const dsp::Grid& aoa_grid, const dsp::Grid& toa_grid,
    const dsp::ArrayConfig& array_cfg) {
  const OperatorKey key = OperatorKey::of(aoa_grid, toa_grid, array_cfg);
  MutexLock lk(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;
  // Build under the lock: first-touch stalls siblings briefly but
  // guarantees exactly one instance per key.
  auto entry = build_cached_operator(aoa_grid, toa_grid, array_cfg);
  entries_.emplace(key, entry);
  return entry;
}

std::shared_ptr<const CachedOperator> OperatorCache::get_coarse(
    const dsp::Grid& fine_aoa_grid, const dsp::Grid& fine_toa_grid,
    const dsp::ArrayConfig& array_cfg, const sparse::CoarseFineConfig& cf) {
  return get(sparse::decimate_grid(fine_aoa_grid, cf.aoa_decimation),
             sparse::decimate_grid(fine_toa_grid, cf.toa_decimation),
             array_cfg);
}

std::size_t OperatorCache::size() const {
  MutexLock lk(mutex_);
  return entries_.size();
}

void OperatorCache::clear() {
  MutexLock lk(mutex_);
  entries_.clear();
}

}  // namespace roarray::runtime
