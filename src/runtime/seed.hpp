// Deterministic seed derivation shared by everything that fans a base
// seed out into independent RNG streams: the bench per-location trial
// loops, the property-test case scheduler, and any future sharded
// Monte Carlo driver. Keeping the mixing function in one place means a
// seed printed by one component (e.g. a proptest failure line)
// reproduces the exact stream any other component would draw.
#pragma once

#include <cstdint>

namespace roarray::runtime {

/// splitmix64 finalizer: a bijective avalanche mix on 64-bit values.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stream seed for sub-task `index` of a run seeded with `base`.
/// Adjacent (base, index) pairs land far apart, so per-index streams
/// can be consumed in any order (or concurrently) without overlap.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::uint64_t index) noexcept {
  return mix_seed(base + 0x9e3779b97f4a7c15ULL * (index + 1));
}

}  // namespace roarray::runtime
