// Memoization of the per-(grid, array) estimation setup.
//
// Every roarray_estimate call needs (1) the Kronecker steering factors
// A_theta / A_tau of the joint operator (paper Eq. 16), (2) the
// power-iteration Lipschitz estimate lambda_max(S^H S) the proximal
// solvers step against, and (3) the factor row-Grams the ADMM Woodbury
// solve composes. None of these depend on the measurements — only on
// the sampling grids and the array front end — so across packets, APs,
// and Monte Carlo trials they are identical. The cache builds each
// entry once and hands out a shared const pointer that is safe to use
// concurrently from any number of threads.
#pragma once

#include <map>
#include <memory>
#include <tuple>

#include "dsp/constants.hpp"
#include "dsp/grid.hpp"
#include "runtime/thread_annotations.hpp"
#include "sparse/coarse_fine.hpp"
#include "sparse/operator.hpp"

namespace roarray::runtime {

using linalg::CMat;
using linalg::index_t;

/// One fully-initialized, immutable estimation setup.
struct CachedOperator {
  sparse::KroneckerOperator op;  ///< shared joint steering operator.
  double norm_sq = 0.0;    ///< lambda_max(S^H S) from power iteration.
  CMat left_gram;          ///< A_theta A_theta^H (M x M).
  CMat right_gram;         ///< A_tau A_tau^H (L x L).
  CMat row_gram;           ///< S S^H = right_gram (x) left_gram (ML x ML).
};

/// Cache key: everything the steering factors depend on. Grids compare
/// by (lo, hi, n); the array by the physical quantities that enter the
/// steering phases and the operator shape.
struct OperatorKey {
  double aoa_lo = 0.0, aoa_hi = 0.0;
  index_t aoa_n = 0;
  double toa_lo = 0.0, toa_hi = 0.0;
  index_t toa_n = 0;
  index_t antennas = 0, subcarriers = 0;
  double spacing_over_wavelength = 0.0;
  double subcarrier_spacing_hz = 0.0;

  [[nodiscard]] static OperatorKey of(const dsp::Grid& aoa_grid,
                                      const dsp::Grid& toa_grid,
                                      const dsp::ArrayConfig& array_cfg);

  [[nodiscard]] auto tie() const {
    return std::tie(aoa_lo, aoa_hi, aoa_n, toa_lo, toa_hi, toa_n, antennas,
                    subcarriers, spacing_over_wavelength, subcarrier_spacing_hz);
  }
  [[nodiscard]] bool operator<(const OperatorKey& o) const {
    return tie() < o.tie();
  }
  [[nodiscard]] bool operator==(const OperatorKey& o) const {
    return tie() == o.tie();
  }
};

/// Thread-safe memo of CachedOperator entries. Entries are never
/// evicted (the working set is a handful of grid/array combinations);
/// call clear() between unrelated workloads if memory matters.
///
/// Concurrency invariant (checked by clang -Wthread-safety): the entry
/// map is guarded by mutex_; entries themselves are immutable once
/// published, so the shared_ptr handed out by get() is safe to use from
/// any thread with no further locking — even concurrently with clear().
class OperatorCache {
 public:
  /// Returns the shared entry for this (grids, array) combination,
  /// building it on first use. Equal keys always return the same
  /// instance; the entry is immutable and safe to share across threads.
  [[nodiscard]] std::shared_ptr<const CachedOperator> get(
      const dsp::Grid& aoa_grid, const dsp::Grid& toa_grid,
      const dsp::ArrayConfig& array_cfg) ROARRAY_EXCLUDES(mutex_);

  /// Entry for the decimated (coarse) companion of the fine grids, as
  /// used by the coarse-to-fine solve path. Just a convenience over
  /// get() on sparse::decimate_grid'ed grids — coarse entries share
  /// the same memo, so repeated estimates with the same
  /// CoarseFineConfig reuse one coarse operator and its power
  /// iteration.
  [[nodiscard]] std::shared_ptr<const CachedOperator> get_coarse(
      const dsp::Grid& fine_aoa_grid, const dsp::Grid& fine_toa_grid,
      const dsp::ArrayConfig& array_cfg,
      const sparse::CoarseFineConfig& cf) ROARRAY_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const ROARRAY_EXCLUDES(mutex_);
  void clear() ROARRAY_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<OperatorKey, std::shared_ptr<const CachedOperator>> entries_
      ROARRAY_GUARDED_BY(mutex_);
};

/// Builds one entry from scratch (what get() does on a miss). Exposed
/// for tests and for callers that want an uncached baseline.
[[nodiscard]] std::shared_ptr<const CachedOperator> build_cached_operator(
    const dsp::Grid& aoa_grid, const dsp::Grid& toa_grid,
    const dsp::ArrayConfig& array_cfg);

}  // namespace roarray::runtime
