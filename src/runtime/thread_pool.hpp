// A small persistent thread pool with a deterministic parallel_for.
//
// The pool exists so Monte Carlo trial loops, per-AP estimation fan-out,
// and multi-snapshot operator applications can share one set of worker
// threads instead of spawning ad hoc. Determinism contract: parallel_for
// runs body(i) exactly once for every i in [0, n); bodies must write to
// disjoint, index-addressed slots, and any reduction over those slots is
// done by the caller in index order — so results are bit-identical to a
// serial loop regardless of thread count or scheduling.
//
// Concurrency invariants (statically checked by clang -Wthread-safety
// via the annotations from runtime/thread_annotations.hpp):
//   - call_mutex_ serializes top-level parallel_for calls: at most one
//     job exists at a time, and the job descriptor (job_body_, job_n_,
//     job_chunk_, job_generation_, job_error_) plus stop_ are guarded
//     by mutex_.
//   - job_next_ / job_done_ / active_workers_ are atomics shared by the
//     claim loop; they are intentionally not mutex-guarded.
//   - The pointee of job_body_ (the caller's std::function) is only
//     dereferenced between job setup and the completion wait in the
//     same parallel_for call, during which it is immutable; the wait
//     for active_workers_ == 0 guarantees no straggler dereferences it
//     after parallel_for returns.
//
// Header-only on purpose: roarray_sparse and roarray_loc use it without
// depending on the roarray_runtime library (which itself depends on
// roarray_sparse for the operator cache).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "linalg/types.hpp"
#include "runtime/thread_annotations.hpp"

namespace roarray::runtime {

using linalg::index_t;

namespace detail {
/// True while the current thread is executing a parallel_for body; used
/// to run nested parallel regions serially instead of deadlocking on the
/// single shared job slot.
inline thread_local bool in_parallel_region = false;
}  // namespace detail

class ThreadPool {
 public:
  /// Reads the thread-count knob: ROARRAY_THREADS if set to a positive
  /// integer, otherwise std::thread::hardware_concurrency (min 1).
  [[nodiscard]] static int default_thread_count() {
    if (const char* env = std::getenv("ROARRAY_THREADS")) {
      const int n = std::atoi(env);
      if (n > 0) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

  /// Pool with `threads` total lanes of parallelism (the calling thread
  /// participates, so `threads - 1` workers are spawned).
  explicit ThreadPool(int threads = default_thread_count())
      : threads_(threads > 0 ? threads : 1) {
    for (int i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains before stopping: taking call_mutex_ first means any
  /// parallel_for already in flight on another thread finishes its job
  /// (and stops touching pool members) before the workers are told to
  /// exit — shutdown-while-busy is well-defined.
  ~ThreadPool() ROARRAY_EXCLUDES(call_mutex_, mutex_) {
    {
      MutexLock call_lk(call_mutex_);
      MutexLock lk(mutex_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  /// Total parallelism degree (workers + the calling thread).
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Runs body(i) once for each i in [0, n), distributing contiguous
  /// chunks over the workers and the calling thread. Blocks until every
  /// index is done. The first exception thrown by a body is rethrown on
  /// the calling thread after the loop drains. Nested calls (from inside
  /// a body) execute serially on the calling thread.
  void parallel_for(index_t n, const std::function<void(index_t)>& body) const
      ROARRAY_EXCLUDES(call_mutex_, mutex_) {
    if (n <= 0) return;
    if (threads_ == 1 || n == 1 || detail::in_parallel_region) {
      run_serial(n, body);
      return;
    }
    // One job at a time; concurrent top-level callers queue up here.
    MutexLock call_lock(call_mutex_);
    {
      MutexLock lk(mutex_);
      job_body_ = &body;
      job_n_ = n;
      job_chunk_ = chunk_size(n);
      job_next_.store(0, std::memory_order_relaxed);
      job_done_.store(0, std::memory_order_relaxed);
      job_error_ = nullptr;
      ++job_generation_;
    }
    job_cv_.notify_all();
    work_on_current_job();
    // Wait until every index is done AND no worker is still inside the
    // claim loop — a straggler holding the old body pointer must not
    // observe the next job's counters.
    std::exception_ptr error;
    {
      MutexLock lk(mutex_);
      while (job_done_.load() < job_n_ || active_workers_.load() != 0) {
        done_cv_.wait(mutex_);
      }
      job_body_ = nullptr;
      error = job_error_;
    }
    if (error) std::rethrow_exception(error);
  }

  /// Range/tile variant used by the blocked GEMM kernels: partitions
  /// [0, n) into ceil(n / grain) contiguous ranges of at most `grain`
  /// indices and runs body(begin, end) exactly once per range. The
  /// partition depends only on (n, grain) — never on the thread count —
  /// so a kernel that writes each output element from exactly one range
  /// produces bit-identical results at any parallelism degree. Blocks
  /// until every range is done; exceptions propagate like parallel_for.
  void parallel_for_range(
      index_t n, index_t grain,
      const std::function<void(index_t, index_t)>& body) const
      ROARRAY_EXCLUDES(call_mutex_, mutex_) {
    if (n <= 0) return;
    const index_t g = grain > 0 ? grain : 1;
    const index_t tiles = (n + g - 1) / g;
    parallel_for(tiles, [&](index_t t) {
      const index_t begin = t * g;
      const index_t end = begin + g < n ? begin + g : n;
      body(begin, end);
    });
  }

  /// Deterministic map: slot i of the result receives fn(i). The output
  /// vector is index-ordered, so downstream reductions see results in
  /// exactly the order a serial loop would produce them.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map(index_t n, Fn&& fn) const
      ROARRAY_EXCLUDES(call_mutex_, mutex_) {
    std::vector<T> out(static_cast<std::size_t>(n > 0 ? n : 0));
    parallel_for(n, [&](index_t i) { out[static_cast<std::size_t>(i)] = fn(i); });
    return out;
  }

 private:
  static void run_serial(index_t n, const std::function<void(index_t)>& body) {
    for (index_t i = 0; i < n; ++i) body(i);
  }

  [[nodiscard]] index_t chunk_size(index_t n) const {
    const index_t target = static_cast<index_t>(threads_) * 4;
    const index_t c = (n + target - 1) / target;
    return c > 0 ? c : 1;
  }

  /// Claims chunks of the current job until none remain. Runs on workers
  /// and on the submitting thread alike.
  void work_on_current_job() const ROARRAY_EXCLUDES(mutex_) {
    const std::function<void(index_t)>* body;
    index_t n, chunk;
    {
      MutexLock lk(mutex_);
      body = job_body_;
      n = job_n_;
      chunk = job_chunk_;
      if (body) active_workers_.fetch_add(1, std::memory_order_acq_rel);
    }
    if (!body) return;
    detail::in_parallel_region = true;
    for (;;) {
      const index_t begin = job_next_.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const index_t end = begin + chunk < n ? begin + chunk : n;
      try {
        for (index_t i = begin; i < end; ++i) (*body)(i);
      } catch (...) {
        MutexLock lk(mutex_);
        if (!job_error_) job_error_ = std::current_exception();
      }
      if (job_done_.fetch_add(end - begin, std::memory_order_acq_rel) +
              (end - begin) >= n) {
        // Lock before notifying so a waiter between predicate check and
        // sleep cannot miss the wakeup.
        MutexLock lk(mutex_);
        done_cv_.notify_all();
      }
    }
    detail::in_parallel_region = false;
    if (active_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lk(mutex_);
      done_cv_.notify_all();
    }
  }

  void worker_loop() const ROARRAY_EXCLUDES(mutex_) {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        MutexLock lk(mutex_);
        while (!stop_ &&
               !(job_body_ != nullptr && job_generation_ != seen_generation &&
                 job_next_.load() < job_n_)) {
          job_cv_.wait(mutex_);
        }
        if (stop_) return;
        seen_generation = job_generation_;
      }
      work_on_current_job();
    }
  }

  const int threads_;
  std::vector<std::thread> workers_;

  /// Serializes top-level parallel_for calls (and drains them in the
  /// destructor). Always acquired before mutex_ — never the other way.
  mutable Mutex call_mutex_;
  /// Guards the per-job descriptor and the stop flag below.
  mutable Mutex mutex_;
  mutable CondVar job_cv_;   ///< workers sleep here between jobs.
  mutable CondVar done_cv_;  ///< the submitter sleeps here until done.
  mutable const std::function<void(index_t)>* job_body_
      ROARRAY_GUARDED_BY(mutex_) = nullptr;
  mutable index_t job_n_ ROARRAY_GUARDED_BY(mutex_) = 0;
  mutable index_t job_chunk_ ROARRAY_GUARDED_BY(mutex_) = 1;
  mutable std::uint64_t job_generation_ ROARRAY_GUARDED_BY(mutex_) = 0;
  mutable std::atomic<index_t> job_next_{0};
  mutable std::atomic<index_t> job_done_{0};
  mutable std::atomic<int> active_workers_{0};
  mutable std::exception_ptr job_error_ ROARRAY_GUARDED_BY(mutex_);
  mutable bool stop_ ROARRAY_GUARDED_BY(mutex_) = false;
};

}  // namespace roarray::runtime
