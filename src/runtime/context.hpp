// The runtime context handed to estimation entry points: an optional
// operator cache (reuse per-grid setup across calls) and an optional
// thread pool (fan work out across cores). Both may be null — every
// consumer falls back to per-call setup / serial execution, producing
// bit-identical results either way.
#pragma once

namespace roarray::runtime {

class OperatorCache;
class ThreadPool;

struct EstimateContext {
  OperatorCache* cache = nullptr;  ///< non-owning; nullptr = build per call.
  ThreadPool* pool = nullptr;      ///< non-owning; nullptr = run serial.
};

}  // namespace roarray::runtime
