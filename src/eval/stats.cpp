#include "eval/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace roarray::eval {

ConfidenceInterval bootstrap_median_ci(const std::vector<double>& samples,
                                       std::mt19937_64& rng, double confidence,
                                       int resamples) {
  if (samples.empty()) {
    throw std::invalid_argument("bootstrap_median_ci: no samples");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("bootstrap_median_ci: confidence in (0,1)");
  }
  if (resamples < 10) {
    throw std::invalid_argument("bootstrap_median_ci: need >= 10 resamples");
  }

  const Cdf base(samples);
  std::uniform_int_distribution<std::size_t> pick(0, samples.size() - 1);
  std::vector<double> medians;
  medians.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> draw(samples.size());
  for (int r = 0; r < resamples; ++r) {
    for (double& d : draw) d = samples[pick(rng)];
    medians.push_back(Cdf(draw).median());
  }
  std::sort(medians.begin(), medians.end());
  const double alpha = 1.0 - confidence;
  // Percentile endpoints: flooring both fractional ranks biased the
  // upper endpoint low (an interval narrower than the nominal level).
  // Use nearest-rank for the lower bound and ceiling for the upper so
  // the interval always covers at least the requested mass.
  const auto at = [&](std::size_t i) {
    return medians[std::min(i, medians.size() - 1)];
  };
  const double last = static_cast<double>(medians.size() - 1);
  ConfidenceInterval ci;
  ci.lo = at(static_cast<std::size_t>(std::lround((alpha / 2.0) * last)));
  ci.hi = at(static_cast<std::size_t>(std::ceil((1.0 - alpha / 2.0) * last)));
  ci.point = base.median();
  return ci;
}

double ks_statistic(const Cdf& a, const Cdf& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_statistic: empty distribution");
  }
  double d = 0.0;
  for (double x : a.sorted_samples()) {
    d = std::max(d, std::abs(a.fraction_below(x) - b.fraction_below(x)));
  }
  for (double x : b.sorted_samples()) {
    d = std::max(d, std::abs(a.fraction_below(x) - b.fraction_below(x)));
  }
  return d;
}

}  // namespace roarray::eval
