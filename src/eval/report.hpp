// Reporting helpers shared by the figure benches: plain-text tables
// matching the paper's figure plots, plus a small dependency-free JSON
// emitter for machine-readable artifacts (BENCH_micro.json, golden
// corpus reports).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "eval/cdf.hpp"

namespace roarray::eval {

/// A named CDF (one curve of a paper figure).
struct NamedCdf {
  std::string name;
  Cdf cdf;
};

/// Prints a figure-style CDF table: one row per percentile in
/// `fractions`, one column per curve. Values formatted with `unit`.
void print_cdf_table(std::ostream& os, const std::string& title,
                     const std::vector<NamedCdf>& curves,
                     const std::vector<double>& fractions,
                     const std::string& unit);

/// Prints a summary line per curve: median / mean / 90th percentile.
void print_cdf_summary(std::ostream& os, const std::vector<NamedCdf>& curves,
                       const std::string& unit);

/// Prints an (x, y...) series table, e.g. a spectrum: column headers then
/// one row per x with the matching y from every series.
void print_series(std::ostream& os, const std::string& title,
                  const std::string& x_name, const std::vector<double>& x,
                  const std::vector<std::pair<std::string, std::vector<double>>>&
                      series);

/// Renders a 1-D spectrum as a rough ASCII sketch (for eyeballing the
/// sharpness that the paper's polar plots show).
void print_spectrum_sketch(std::ostream& os, const std::vector<double>& x,
                           const std::vector<double>& values, int height = 8);

/// Streaming JSON emitter. Handles the two failure modes hand-rolled
/// fprintf JSON gets wrong: strings are escaped per RFC 8259 (quotes,
/// backslashes, control characters) and non-finite doubles — which JSON
/// cannot represent — are emitted as null instead of the invalid tokens
/// printf produces (nan, inf). Structural misuse (value without a key
/// inside an object, unbalanced end_*) throws std::logic_error so a
/// malformed report fails the producing process rather than the
/// consumer. Output is pretty-printed with 2-space indentation.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next object member (escaped).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);  ///< non-finite -> null.
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& null();

  /// True once every begin_* has been matched by its end_* and a
  /// top-level value was written.
  [[nodiscard]] bool complete() const noexcept;

  /// RFC 8259 string escaping (without the surrounding quotes).
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };
  void before_value(bool is_key);
  void after_value();
  void newline_indent();

  std::ostream& os_;
  std::vector<Ctx> stack_;
  std::vector<bool> has_members_;
  bool expect_key_ = false;   ///< inside an object, next token must be a key.
  bool have_key_ = false;     ///< a key was just written; value must follow.
  bool done_ = false;         ///< a complete top-level value was emitted.
};

/// Per-curve summary (median / mean / p90 / sample count) as a JSON
/// array, one object per curve. Empty CDFs emit n = 0 with null
/// statistics — the same rows print_cdf_summary renders as "no samples".
void write_cdf_summary_json(std::ostream& os, const std::vector<NamedCdf>& curves);

}  // namespace roarray::eval
