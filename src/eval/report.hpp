// Plain-text reporting helpers shared by the figure benches: each bench
// prints the same rows/series the paper's figure plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/cdf.hpp"

namespace roarray::eval {

/// A named CDF (one curve of a paper figure).
struct NamedCdf {
  std::string name;
  Cdf cdf;
};

/// Prints a figure-style CDF table: one row per percentile in
/// `fractions`, one column per curve. Values formatted with `unit`.
void print_cdf_table(std::ostream& os, const std::string& title,
                     const std::vector<NamedCdf>& curves,
                     const std::vector<double>& fractions,
                     const std::string& unit);

/// Prints a summary line per curve: median / mean / 90th percentile.
void print_cdf_summary(std::ostream& os, const std::vector<NamedCdf>& curves,
                       const std::string& unit);

/// Prints an (x, y...) series table, e.g. a spectrum: column headers then
/// one row per x with the matching y from every series.
void print_series(std::ostream& os, const std::string& title,
                  const std::string& x_name, const std::vector<double>& x,
                  const std::vector<std::pair<std::string, std::vector<double>>>&
                      series);

/// Renders a 1-D spectrum as a rough ASCII sketch (for eyeballing the
/// sharpness that the paper's polar plots show).
void print_spectrum_sketch(std::ostream& os, const std::vector<double>& x,
                           const std::vector<double>& values, int height = 8);

}  // namespace roarray::eval
