// Statistical utilities for comparing systems rigorously: bootstrap
// confidence intervals for medians and the Kolmogorov-Smirnov distance
// between error distributions.
#pragma once

#include <random>
#include <vector>

#include "eval/cdf.hpp"

namespace roarray::eval {

/// A two-sided confidence interval.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  ///< the point estimate the interval brackets.
};

/// Percentile-bootstrap confidence interval for the median of `samples`
/// at the given confidence level (e.g. 0.95). Deterministic given the
/// rng. Throws std::invalid_argument on empty input, bad level, or a
/// non-positive resample count.
[[nodiscard]] ConfidenceInterval bootstrap_median_ci(
    const std::vector<double>& samples, std::mt19937_64& rng,
    double confidence = 0.95, int resamples = 1000);

/// Kolmogorov-Smirnov statistic sup_x |F_a(x) - F_b(x)| between two
/// empirical distributions. 0 = identical, 1 = disjoint supports.
[[nodiscard]] double ks_statistic(const Cdf& a, const Cdf& b);

}  // namespace roarray::eval
