#include "eval/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace roarray::eval {

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  for (double s : sorted_) {
    if (!std::isfinite(s)) {
      throw std::invalid_argument("Cdf: non-finite sample");
    }
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::percentile(double fraction) const {
  if (sorted_.empty()) throw std::domain_error("Cdf::percentile: empty");
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("Cdf::percentile: fraction outside [0, 1]");
  }
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = fraction * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Cdf::mean() const {
  if (sorted_.empty()) throw std::domain_error("Cdf::mean: empty");
  double acc = 0.0;
  for (double s : sorted_) acc += s;
  return acc / static_cast<double>(sorted_.size());
}

double Cdf::fraction_below(double x) const {
  if (sorted_.empty()) throw std::domain_error("Cdf::fraction_below: empty");
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

}  // namespace roarray::eval
