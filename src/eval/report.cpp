#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace roarray::eval {

void print_cdf_table(std::ostream& os, const std::string& title,
                     const std::vector<NamedCdf>& curves,
                     const std::vector<double>& fractions,
                     const std::string& unit) {
  os << "== " << title << " ==\n";
  os << std::left << std::setw(12) << "percentile";
  for (const NamedCdf& c : curves) os << std::setw(16) << (c.name + " (" + unit + ")");
  os << "\n";
  for (double f : fractions) {
    os << std::left << std::setw(12) << (std::to_string(static_cast<int>(f * 100)) + "%");
    for (const NamedCdf& c : curves) {
      if (c.cdf.empty()) {
        os << std::setw(16) << "n/a";
      } else {
        os << std::setw(16) << std::fixed << std::setprecision(3)
           << c.cdf.percentile(f);
      }
    }
    os << "\n";
  }
}

void print_cdf_summary(std::ostream& os, const std::vector<NamedCdf>& curves,
                       const std::string& unit) {
  for (const NamedCdf& c : curves) {
    os << "  " << std::left << std::setw(14) << c.name;
    if (c.cdf.empty()) {
      os << "no samples\n";
      continue;
    }
    os << "median " << std::fixed << std::setprecision(3) << c.cdf.median()
       << " " << unit << ", mean " << c.cdf.mean() << " " << unit
       << ", p90 " << c.cdf.percentile(0.9) << " " << unit << " (n="
       << c.cdf.size() << ")\n";
  }
}

void print_series(std::ostream& os, const std::string& title,
                  const std::string& x_name, const std::vector<double>& x,
                  const std::vector<std::pair<std::string, std::vector<double>>>&
                      series) {
  for (const auto& [name, y] : series) {
    if (y.size() != x.size()) {
      throw std::invalid_argument("print_series: length mismatch for " + name);
    }
  }
  os << "== " << title << " ==\n";
  os << std::left << std::setw(14) << x_name;
  for (const auto& [name, y] : series) os << std::setw(14) << name;
  os << "\n";
  for (std::size_t i = 0; i < x.size(); ++i) {
    os << std::left << std::setw(14) << std::fixed << std::setprecision(4) << x[i];
    for (const auto& [name, y] : series) os << std::setw(14) << y[i];
    os << "\n";
  }
}

void print_spectrum_sketch(std::ostream& os, const std::vector<double>& x,
                           const std::vector<double>& values, int height) {
  if (x.size() != values.size() || x.empty() || height < 1) return;
  double mx = 0.0;
  for (double v : values) mx = std::max(mx, v);
  if (mx <= 0.0) mx = 1.0;
  // Downsample to at most 72 columns.
  const std::size_t cols = std::min<std::size_t>(72, values.size());
  std::vector<double> col_val(cols, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t c = i * cols / values.size();
    col_val[c] = std::max(col_val[c], values[i]);
  }
  for (int row = height; row >= 1; --row) {
    const double level = mx * static_cast<double>(row) / height;
    os << "  |";
    for (std::size_t c = 0; c < cols; ++c) {
      os << (col_val[c] >= level ? '#' : ' ');
    }
    os << "\n";
  }
  os << "  +";
  for (std::size_t c = 0; c < cols; ++c) os << '-';
  os << "\n   " << std::fixed << std::setprecision(1) << x.front()
     << std::string(cols > 12 ? cols - 12 : 1, ' ') << x.back() << "\n";
}

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += ch;  // UTF-8 bytes pass through unmodified.
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value(bool is_key) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (!stack_.empty()) {
    if (stack_.back() == Ctx::kObject) {
      if (is_key && !expect_key_) {
        throw std::logic_error("JsonWriter: key where a value is expected");
      }
      if (!is_key && expect_key_) {
        throw std::logic_error("JsonWriter: object member needs a key first");
      }
    } else if (is_key) {
      throw std::logic_error("JsonWriter: key inside an array");
    }
    const bool starts_member =
        is_key || stack_.back() == Ctx::kArray;
    if (starts_member) {
      if (has_members_.back()) os_ << ',';
      has_members_.back() = true;
      newline_indent();
    }
  } else if (is_key) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value(false);
  os_ << '{';
  stack_.push_back(Ctx::kObject);
  has_members_.push_back(false);
  expect_key_ = true;
  have_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value(false);
  os_ << '[';
  stack_.push_back(Ctx::kArray);
  has_members_.push_back(false);
  expect_key_ = false;
  have_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Ctx::kObject) {
    throw std::logic_error("JsonWriter: end_object without open object");
  }
  if (have_key_) throw std::logic_error("JsonWriter: dangling key");
  const bool had = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had) newline_indent();
  os_ << '}';
  expect_key_ = !stack_.empty() && stack_.back() == Ctx::kObject;
  if (stack_.empty()) {
    done_ = true;
    os_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Ctx::kArray) {
    throw std::logic_error("JsonWriter: end_array without open array");
  }
  const bool had = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had) newline_indent();
  os_ << ']';
  expect_key_ = !stack_.empty() && stack_.back() == Ctx::kObject;
  if (stack_.empty()) {
    done_ = true;
    os_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Ctx::kObject) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  before_value(true);
  os_ << '"' << escape(k) << "\": ";
  expect_key_ = false;
  have_key_ = true;
  return *this;
}

namespace {

/// Shortest decimal that round-trips a finite double (printf %.17g is
/// exact but noisy; try increasing precision until the value survives).
void write_double(std::ostream& os, double v) {
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  os << buf;
}

}  // namespace

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value(false);
  write_double(os_, v);
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value(false);
  os_ << v;
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value(false);
  os_ << (v ? "true" : "false");
  after_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value(false);
  os_ << '"' << escape(s) << '"';
  after_value();
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value(false);
  os_ << "null";
  after_value();
  return *this;
}

void JsonWriter::after_value() {
  have_key_ = false;
  expect_key_ = !stack_.empty() && stack_.back() == Ctx::kObject;
  if (stack_.empty()) {
    done_ = true;
    os_ << '\n';
  }
}

bool JsonWriter::complete() const noexcept { return done_ && stack_.empty(); }

void write_cdf_summary_json(std::ostream& os,
                            const std::vector<NamedCdf>& curves) {
  JsonWriter w(os);
  w.begin_array();
  for (const NamedCdf& c : curves) {
    w.begin_object();
    w.key("name").value(c.name);
    w.key("n").value(static_cast<std::int64_t>(c.cdf.size()));
    if (c.cdf.empty()) {
      w.key("median").null();
      w.key("mean").null();
      w.key("p90").null();
    } else {
      w.key("median").value(c.cdf.median());
      w.key("mean").value(c.cdf.mean());
      w.key("p90").value(c.cdf.percentile(0.9));
    }
    w.end_object();
  }
  w.end_array();
}

}  // namespace roarray::eval
