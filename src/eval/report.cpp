#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace roarray::eval {

void print_cdf_table(std::ostream& os, const std::string& title,
                     const std::vector<NamedCdf>& curves,
                     const std::vector<double>& fractions,
                     const std::string& unit) {
  os << "== " << title << " ==\n";
  os << std::left << std::setw(12) << "percentile";
  for (const NamedCdf& c : curves) os << std::setw(16) << (c.name + " (" + unit + ")");
  os << "\n";
  for (double f : fractions) {
    os << std::left << std::setw(12) << (std::to_string(static_cast<int>(f * 100)) + "%");
    for (const NamedCdf& c : curves) {
      if (c.cdf.empty()) {
        os << std::setw(16) << "n/a";
      } else {
        os << std::setw(16) << std::fixed << std::setprecision(3)
           << c.cdf.percentile(f);
      }
    }
    os << "\n";
  }
}

void print_cdf_summary(std::ostream& os, const std::vector<NamedCdf>& curves,
                       const std::string& unit) {
  for (const NamedCdf& c : curves) {
    os << "  " << std::left << std::setw(14) << c.name;
    if (c.cdf.empty()) {
      os << "no samples\n";
      continue;
    }
    os << "median " << std::fixed << std::setprecision(3) << c.cdf.median()
       << " " << unit << ", mean " << c.cdf.mean() << " " << unit
       << ", p90 " << c.cdf.percentile(0.9) << " " << unit << " (n="
       << c.cdf.size() << ")\n";
  }
}

void print_series(std::ostream& os, const std::string& title,
                  const std::string& x_name, const std::vector<double>& x,
                  const std::vector<std::pair<std::string, std::vector<double>>>&
                      series) {
  for (const auto& [name, y] : series) {
    if (y.size() != x.size()) {
      throw std::invalid_argument("print_series: length mismatch for " + name);
    }
  }
  os << "== " << title << " ==\n";
  os << std::left << std::setw(14) << x_name;
  for (const auto& [name, y] : series) os << std::setw(14) << name;
  os << "\n";
  for (std::size_t i = 0; i < x.size(); ++i) {
    os << std::left << std::setw(14) << std::fixed << std::setprecision(4) << x[i];
    for (const auto& [name, y] : series) os << std::setw(14) << y[i];
    os << "\n";
  }
}

void print_spectrum_sketch(std::ostream& os, const std::vector<double>& x,
                           const std::vector<double>& values, int height) {
  if (x.size() != values.size() || x.empty() || height < 1) return;
  double mx = 0.0;
  for (double v : values) mx = std::max(mx, v);
  if (mx <= 0.0) mx = 1.0;
  // Downsample to at most 72 columns.
  const std::size_t cols = std::min<std::size_t>(72, values.size());
  std::vector<double> col_val(cols, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t c = i * cols / values.size();
    col_val[c] = std::max(col_val[c], values[i]);
  }
  for (int row = height; row >= 1; --row) {
    const double level = mx * static_cast<double>(row) / height;
    os << "  |";
    for (std::size_t c = 0; c < cols; ++c) {
      os << (col_val[c] >= level ? '#' : ' ');
    }
    os << "\n";
  }
  os << "  +";
  for (std::size_t c = 0; c < cols; ++c) os << '-';
  os << "\n   " << std::fixed << std::setprecision(1) << x.front()
     << std::string(cols > 12 ? cols - 12 : 1, ' ') << x.back() << "\n";
}

}  // namespace roarray::eval
