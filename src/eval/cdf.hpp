// Empirical CDFs and summary statistics for the evaluation harness.
#pragma once

#include <vector>

#include "linalg/types.hpp"

namespace roarray::eval {

using linalg::index_t;

/// An empirical cumulative distribution built from error samples.
class Cdf {
 public:
  Cdf() = default;

  /// Builds from samples (copied, then sorted ascending). Non-finite
  /// samples are rejected with std::invalid_argument.
  explicit Cdf(std::vector<double> samples);

  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(sorted_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }

  /// Value below which `fraction` (in [0, 1]) of the samples fall
  /// (linear interpolation between order statistics). Throws
  /// std::domain_error on an empty CDF, std::invalid_argument on a
  /// fraction outside [0, 1].
  [[nodiscard]] double percentile(double fraction) const;

  [[nodiscard]] double median() const { return percentile(0.5); }
  [[nodiscard]] double min() const { return percentile(0.0); }
  [[nodiscard]] double max() const { return percentile(1.0); }
  [[nodiscard]] double mean() const;

  /// Empirical CDF value at x: fraction of samples <= x.
  [[nodiscard]] double fraction_below(double x) const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

}  // namespace roarray::eval
