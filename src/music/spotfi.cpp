#include "music/spotfi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/sanitize.hpp"
#include "music/covariance.hpp"
#include "music/model_order.hpp"

namespace roarray::music {

SpotfiResult spotfi_estimate(std::span<const CMat> packets,
                             const SpotfiConfig& cfg,
                             const dsp::ArrayConfig& array_cfg,
                             bool keep_spectrum) {
  if (packets.empty()) throw std::invalid_argument("spotfi_estimate: no packets");

  SpotfiResult out;
  const double toa_span = std::max(cfg.toa_grid.hi() - cfg.toa_grid.lo(), 1e-12);

  for (std::size_t p = 0; p < packets.size(); ++p) {
    CMat csi = packets[p];
    if (cfg.sanitize) {
      csi = dsp::sanitize_csi(csi, array_cfg, cfg.rebias_delay_s).csi;
    }
    const CMat snapshots = smooth_csi(csi, cfg.smoothing);
    CMat r = sample_covariance(snapshots);
    if (cfg.forward_backward) r = forward_backward_average(r);

    const index_t dim = r.rows();
    index_t k = std::clamp<index_t>(cfg.num_paths, 1, dim - 1);
    if (cfg.adaptive_order) {
      const auto eg = linalg::eig_hermitian(r);
      const index_t mdl = estimate_model_order(eg.eigenvalues, snapshots.cols());
      k = std::clamp<index_t>(mdl, 1, k);
    }
    const dsp::Spectrum2d spec = music_spectrum_joint(
        r, k, cfg.aoa_grid, cfg.toa_grid, array_cfg,
        cfg.smoothing.sub_antennas, cfg.smoothing.sub_carriers);
    if (keep_spectrum && p == 0) out.first_packet_spectrum = spec;

    const auto peaks = spec.find_peaks(cfg.max_peaks_per_packet,
                                       /*min_rel_height=*/0.1,
                                       /*min_sep_aoa=*/2, /*min_sep_toa=*/2);
    for (const dsp::Peak& pk : peaks) {
      if (pk.aoa_deg < cfg.edge_exclusion_deg ||
          pk.aoa_deg > 180.0 - cfg.edge_exclusion_deg) {
        continue;  // endfire artifact region
      }
      PathCandidate c;
      c.aoa_deg = pk.aoa_deg;
      c.toa_s = pk.toa_s;
      c.power = pk.value;
      c.packet = static_cast<index_t>(p);
      out.candidates.push_back(c);
    }
  }
  if (out.candidates.empty()) return out;

  // Cluster pooled candidates in normalized (AoA, ToA) space.
  std::vector<FeaturePoint> pts;
  pts.reserve(out.candidates.size());
  for (const PathCandidate& c : out.candidates) {
    FeaturePoint f;
    f.x = c.aoa_deg / 180.0;
    f.y = (c.toa_s - cfg.toa_grid.lo()) / toa_span;
    f.weight = c.power;
    pts.push_back(f);
  }
  out.clusters = kmeans(pts, cfg.num_paths);
  if (out.clusters.empty()) return out;

  // SpotFi's direct-path likelihood: heavy, stable, early clusters win.
  double max_weight = 0.0;
  for (const Cluster& cl : out.clusters) {
    max_weight = std::max(max_weight, cl.total_weight);
  }
  double best_score = 0.0;
  index_t best = -1;
  for (std::size_t c = 0; c < out.clusters.size(); ++c) {
    const Cluster& cl = out.clusters[c];
    if (cl.total_weight < cfg.min_cluster_weight_ratio * max_weight) continue;
    const double score = cfg.w_weight * std::log1p(cl.total_weight) -
                         cfg.w_aoa_var * cl.var_x -
                         cfg.w_toa_var * cl.var_y -
                         cfg.w_toa_mean * cl.cy;
    if (best < 0 || score > best_score) {
      best_score = score;
      best = static_cast<index_t>(c);
    }
  }
  const Cluster& win = out.clusters[static_cast<std::size_t>(best)];
  out.direct_cluster = best;
  out.direct_aoa_deg = win.cx * 180.0;
  out.direct_toa_s = cfg.toa_grid.lo() + win.cy * toa_span;
  out.valid = true;
  return out;
}

}  // namespace roarray::music
