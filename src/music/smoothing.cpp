#include "music/smoothing.hpp"

#include <stdexcept>

namespace roarray::music {

CMat smooth_csi(const CMat& csi, const SmoothingConfig& cfg) {
  const index_t m = csi.rows();
  const index_t l = csi.cols();
  const index_t ms = cfg.sub_antennas;
  const index_t ls = cfg.sub_carriers;
  if (ms < 1 || ms > m || ls < 1 || ls > l) {
    throw std::invalid_argument("smooth_csi: window does not fit CSI matrix");
  }
  const index_t na = m - ms + 1;  // antenna window positions
  const index_t nc = l - ls + 1;  // subcarrier window positions
  CMat out(ms * ls, na * nc);
  for (index_t ca = 0; ca < na; ++ca) {
    for (index_t cc = 0; cc < nc; ++cc) {
      const index_t snap = ca * nc + cc;
      for (index_t wl = 0; wl < ls; ++wl) {
        for (index_t wm = 0; wm < ms; ++wm) {
          out(wl * ms + wm, snap) = csi(ca + wm, cc + wl);
        }
      }
    }
  }
  return out;
}

CMat smooth_csi_packets(std::span<const CMat> packets,
                        const SmoothingConfig& cfg) {
  if (packets.empty()) {
    throw std::invalid_argument("smooth_csi_packets: no packets");
  }
  const CMat first = smooth_csi(packets[0], cfg);
  const index_t per_packet = first.cols();
  CMat out(first.rows(), per_packet * static_cast<index_t>(packets.size()));
  for (index_t j = 0; j < per_packet; ++j) out.set_col(j, first.col_vec(j));
  for (std::size_t p = 1; p < packets.size(); ++p) {
    if (packets[p].rows() != packets[0].rows() ||
        packets[p].cols() != packets[0].cols()) {
      throw std::invalid_argument("smooth_csi_packets: inconsistent CSI shapes");
    }
    const CMat s = smooth_csi(packets[p], cfg);
    for (index_t j = 0; j < per_packet; ++j) {
      out.set_col(static_cast<index_t>(p) * per_packet + j, s.col_vec(j));
    }
  }
  return out;
}

}  // namespace roarray::music
