// The MUSIC pseudo-spectrum (Schmidt 1986), 1-D (AoA) and joint 2-D
// (AoA, ToA) variants — the engine behind the ArrayTrack and SpotFi
// baselines the paper compares against.
#pragma once

#include "dsp/grid.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/steering.hpp"
#include "linalg/eig.hpp"
#include "linalg/matrix.hpp"

namespace roarray::music {

using linalg::CMat;
using linalg::index_t;

/// Extracts the noise subspace (eigenvectors of the d - k smallest
/// eigenvalues) from a d x d Hermitian covariance. Throws
/// std::invalid_argument unless 0 < k < d.
[[nodiscard]] CMat noise_subspace(const CMat& covariance, index_t k);

/// 1-D spatial MUSIC: P(theta) = 1 / ||E_n^H s(theta)||^2 over the grid.
/// `covariance` is M x M, k the assumed source count. The returned
/// spectrum is normalized to peak 1.
[[nodiscard]] dsp::Spectrum1d music_spectrum_aoa(const CMat& covariance,
                                                 index_t k,
                                                 const dsp::Grid& aoa_grid_deg,
                                                 const dsp::ArrayConfig& cfg);

/// Joint 2-D MUSIC over (AoA, ToA) on smoothed (ms*ls)-dimensional
/// snapshots: the steering vectors are steering_joint_sub(..., ms, ls).
/// `covariance` must be (ms*ls) x (ms*ls). Normalized to peak 1.
[[nodiscard]] dsp::Spectrum2d music_spectrum_joint(
    const CMat& covariance, index_t k, const dsp::Grid& aoa_grid_deg,
    const dsp::Grid& toa_grid_s, const dsp::ArrayConfig& cfg,
    index_t sub_antennas, index_t sub_carriers);

}  // namespace roarray::music
