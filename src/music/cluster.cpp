#include "music/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace roarray::music {

namespace {

double dist_sq(const FeaturePoint& p, double cx, double cy) {
  const double dx = p.x - cx;
  const double dy = p.y - cy;
  return dx * dx + dy * dy;
}

}  // namespace

std::vector<Cluster> kmeans(const std::vector<FeaturePoint>& points, index_t k,
                            int max_iterations) {
  if (points.empty()) throw std::invalid_argument("kmeans: no points");
  if (k < 1) throw std::invalid_argument("kmeans: k < 1");
  k = std::min<index_t>(k, static_cast<index_t>(points.size()));

  // Farthest-first initialization, seeded at the heaviest point:
  // deterministic and spreads centers across the candidate cloud.
  std::vector<std::pair<double, double>> centers;
  index_t seed = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].weight > points[static_cast<std::size_t>(seed)].weight) {
      seed = static_cast<index_t>(i);
    }
  }
  centers.emplace_back(points[static_cast<std::size_t>(seed)].x,
                       points[static_cast<std::size_t>(seed)].y);
  while (static_cast<index_t>(centers.size()) < k) {
    double best_d = -1.0;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double d = std::numeric_limits<double>::max();
      for (const auto& [cx, cy] : centers) {
        d = std::min(d, dist_sq(points[i], cx, cy));
      }
      if (d > best_d) {
        best_d = d;
        best_i = i;
      }
    }
    centers.emplace_back(points[best_i].x, points[best_i].y);
  }

  std::vector<index_t> assign(points.size(), 0);
  for (int it = 0; it < max_iterations; ++it) {
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      index_t best_c = 0;
      for (std::size_t c = 0; c < centers.size(); ++c) {
        const double d = dist_sq(points[i], centers[c].first, centers[c].second);
        if (d < best) {
          best = d;
          best_c = static_cast<index_t>(c);
        }
      }
      if (assign[i] != best_c) {
        assign[i] = best_c;
        changed = true;
      }
    }
    // Weighted centroid update.
    std::vector<double> wx(centers.size(), 0.0), wy(centers.size(), 0.0),
        w(centers.size(), 0.0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<std::size_t>(assign[i]);
      wx[c] += points[i].weight * points[i].x;
      wy[c] += points[i].weight * points[i].y;
      w[c] += points[i].weight;
    }
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (w[c] > 0.0) centers[c] = {wx[c] / w[c], wy[c] / w[c]};
    }
    if (!changed && it > 0) break;
  }

  // Assemble non-empty clusters with weighted statistics.
  std::vector<Cluster> out(centers.size());
  for (std::size_t c = 0; c < centers.size(); ++c) {
    out[c].cx = centers[c].first;
    out[c].cy = centers[c].second;
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto& cl = out[static_cast<std::size_t>(assign[i])];
    cl.members.push_back(static_cast<index_t>(i));
    cl.total_weight += points[i].weight;
  }
  for (auto& cl : out) {
    if (cl.members.empty() || cl.total_weight <= 0.0) continue;
    double vx = 0.0, vy = 0.0;
    for (index_t idx : cl.members) {
      const auto& p = points[static_cast<std::size_t>(idx)];
      vx += p.weight * (p.x - cl.cx) * (p.x - cl.cx);
      vy += p.weight * (p.y - cl.cy) * (p.y - cl.cy);
    }
    cl.var_x = vx / cl.total_weight;
    cl.var_y = vy / cl.total_weight;
  }
  std::erase_if(out, [](const Cluster& c) { return c.members.empty(); });
  return out;
}

}  // namespace roarray::music
