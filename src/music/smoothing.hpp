// SpotFi-style 2-D spatial smoothing over antennas x subcarriers.
//
// A single packet gives one M x L CSI snapshot — far too few snapshots
// for a (M*L)-dimensional covariance. SpotFi slides a sub-array window
// of `ms` antennas x `ls` subcarriers over the CSI matrix; each window
// position contributes one (ms*ls)-dimensional snapshot whose steering
// structure matches steering_joint_sub(theta, tau, cfg, ms, ls).
#pragma once

#include <span>

#include "dsp/constants.hpp"
#include "linalg/matrix.hpp"

namespace roarray::music {

using linalg::CMat;
using linalg::index_t;

/// Smoothing window geometry. Defaults are SpotFi's choice for the
/// Intel 5300 (2 of 3 antennas, 15 of 30 subcarriers), giving
/// 30-dimensional snapshots and (3-2+1)*(30-15+1) = 32 snapshots/packet.
struct SmoothingConfig {
  index_t sub_antennas = 2;    ///< ms.
  index_t sub_carriers = 15;   ///< ls.
};

/// Builds the smoothed snapshot matrix for one packet:
/// (ms*ls) x ((M-ms+1)*(L-ls+1)), element ordering antenna-fastest to
/// match steering_joint_sub. Throws std::invalid_argument if the window
/// does not fit.
[[nodiscard]] CMat smooth_csi(const CMat& csi, const SmoothingConfig& cfg);

/// Concatenates smoothed snapshots from several packets column-wise.
[[nodiscard]] CMat smooth_csi_packets(std::span<const CMat> packets,
                                      const SmoothingConfig& cfg);

}  // namespace roarray::music
