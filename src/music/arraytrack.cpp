#include "music/arraytrack.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/steering.hpp"
#include "music/covariance.hpp"
#include "music/model_order.hpp"

namespace roarray::music {

using linalg::cxd;

ArrayTrackResult arraytrack_estimate(std::span<const CMat> packets,
                                     const ArrayTrackConfig& cfg,
                                     const dsp::ArrayConfig& array_cfg) {
  if (packets.empty()) {
    throw std::invalid_argument("arraytrack_estimate: no packets");
  }
  const index_t m = array_cfg.num_antennas;
  const index_t l = array_cfg.num_subcarriers;

  // ArrayTrack is a per-packet pipeline: each packet's subcarriers form
  // the snapshots of one M x M covariance, one MUSIC pseudo-spectrum is
  // computed per packet, and the per-packet spectra are averaged. (At
  // low SNR the per-packet subspace estimates individually degrade —
  // the behavior the paper measures — unlike a single covariance pooled
  // over the whole burst, which would average the noise away.)
  ArrayTrackResult out;
  out.spectrum.grid = cfg.aoa_grid;
  out.spectrum.values = linalg::RVec(cfg.aoa_grid.size());
  CMat r_pooled(m, m);  // pooled covariance for the Bartlett anchor
  const index_t groups = std::clamp<index_t>(cfg.snapshots_per_packet, 1, l);
  for (const CMat& csi : packets) {
    if (csi.rows() != m || csi.cols() != l) {
      throw std::invalid_argument("arraytrack_estimate: CSI shape mismatch");
    }
    // Coherently average consecutive subcarriers into `groups` snapshots
    // (preamble time-sample model; see ArrayTrackConfig).
    CMat snapshots(m, groups);
    for (index_t g = 0; g < groups; ++g) {
      const index_t lo = g * l / groups;
      const index_t hi = (g + 1) * l / groups;
      for (index_t a = 0; a < m; ++a) {
        cxd acc{};
        for (index_t s = lo; s < hi; ++s) acc += csi(a, s);
        snapshots(a, g) =
            acc / static_cast<double>(std::max<index_t>(1, hi - lo));
      }
    }
    CMat r = sample_covariance(snapshots);
    r_pooled += r;
    if (cfg.forward_backward) r = forward_backward_average(r);

    index_t k = std::clamp<index_t>(cfg.num_paths, 1, m - 1);
    if (cfg.adaptive_order) {
      const auto eg = linalg::eig_hermitian(r);
      const index_t mdl = estimate_model_order(eg.eigenvalues, groups);
      k = std::clamp<index_t>(mdl, 1, k);
    }
    const dsp::Spectrum1d spec = music_spectrum_aoa(r, k, cfg.aoa_grid, array_cfg);
    for (index_t i = 0; i < cfg.aoa_grid.size(); ++i) {
      out.spectrum.values[i] += spec.values[i];
    }
  }
  out.spectrum.normalize();
  const CMat r = r_pooled * cxd{1.0 / static_cast<double>(packets.size()), 0.0};
  out.peaks = out.spectrum.find_peaks(/*max_peaks=*/cfg.num_paths + 1,
                                      /*min_rel_height=*/0.05,
                                      /*min_separation=*/2);
  if (!out.peaks.empty() && !cfg.bartlett_anchor) {
    // Historical behavior: strongest peak = direct path.
    out.direct_aoa_deg = out.peaks.front().aoa_deg;
    out.valid = true;
  } else if (!out.peaks.empty()) {
    // With M = 3 and K = 2 the 1-dimensional noise space has two
    // spectral roots; when the true paths nearly coincide the second
    // root is spurious and can outshine the real one. Anchor the pick
    // on the dominant-energy (Bartlett) direction: the direct path is
    // the MUSIC peak closest to where the signal power actually points.
    double bartlett_best = -1.0;
    double bartlett_dir = out.peaks.front().aoa_deg;
    for (index_t i = 0; i < cfg.aoa_grid.size(); ++i) {
      const auto s = dsp::steering_aoa(cfg.aoa_grid[i], array_cfg);
      const linalg::CVec rs = matvec(r, s);
      const double power = std::abs(dot(s, rs));
      if (power > bartlett_best) {
        bartlett_best = power;
        bartlett_dir = cfg.aoa_grid[i];
      }
    }
    const dsp::Peak* pick = &out.peaks.front();
    for (const dsp::Peak& p : out.peaks) {
      if (std::abs(p.aoa_deg - bartlett_dir) <
          std::abs(pick->aoa_deg - bartlett_dir)) {
        pick = &p;
      }
    }
    // If every MUSIC peak is far from the energy direction, they are
    // all spurious roots — fall back to plain beamforming.
    if (std::abs(pick->aoa_deg - bartlett_dir) > 15.0) {
      out.direct_aoa_deg = bartlett_dir;
    } else {
      out.direct_aoa_deg = pick->aoa_deg;
    }
    out.valid = true;
  }
  return out;
}

}  // namespace roarray::music
