// Model-order (source count) estimation from covariance eigenvalues.
// SpotFi fixes K = 5 (paper footnote 8); these information-theoretic
// estimators exist so tests and ablations can quantify what that
// inaccuracy costs MUSIC — and show ROArray does not need K at all.
#pragma once

#include "linalg/types.hpp"
#include "linalg/vector.hpp"

namespace roarray::music {

using linalg::index_t;
using linalg::RVec;

/// Criterion flavor.
enum class OrderCriterion {
  kAic,  ///< Akaike information criterion.
  kMdl,  ///< minimum description length (consistent; preferred).
};

/// Estimates the number of sources from the (ascending) eigenvalues of a
/// d x d sample covariance built from `num_snapshots` snapshots, by
/// minimizing AIC/MDL over k = 0 .. d-1 (Wax & Kailath 1985). Returns a
/// value in [0, d-1]. Throws std::invalid_argument on empty input or
/// non-positive snapshot count.
[[nodiscard]] index_t estimate_model_order(const RVec& eigenvalues_ascending,
                                           index_t num_snapshots,
                                           OrderCriterion criterion
                                           = OrderCriterion::kMdl);

}  // namespace roarray::music
