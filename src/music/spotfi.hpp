// SpotFi baseline (Kotaru et al., SIGCOMM 2015): per-packet smoothed
// joint (AoA, ToA) MUSIC, peak extraction, and across-packet clustering
// with a likelihood-weighted direct-path pick. This is the non-coherent
// packet processing the paper contrasts with ROArray's fusion.
#pragma once

#include <span>
#include <vector>

#include "dsp/grid.hpp"
#include "dsp/spectrum.hpp"
#include "music/cluster.hpp"
#include "music/music.hpp"
#include "music/smoothing.hpp"

namespace roarray::music {

/// One (AoA, ToA) path candidate from a packet's MUSIC spectrum.
struct PathCandidate {
  double aoa_deg = 0.0;
  double toa_s = 0.0;
  double power = 0.0;   ///< normalized spectrum power of the peak.
  index_t packet = 0;   ///< which packet produced it.
};

struct SpotfiConfig {
  dsp::Grid aoa_grid = dsp::Grid(0.0, 180.0, 91);
  dsp::Grid toa_grid = dsp::Grid(0.0, 784e-9, 50);
  SmoothingConfig smoothing;
  /// Maximum source count, clamped internally to the snapshot dimension
  /// minus one. SpotFi hardwires K = 5 (paper footnote 8); the default
  /// here is a little higher because under-modeling a rich channel
  /// (true paths > K) shifts and fabricates peaks — set 5 to reproduce
  /// the strict historical behavior.
  index_t num_paths = 8;
  /// When true (default), the per-packet K is estimated by MDL and
  /// capped at num_paths, which keeps the baseline as strong as its
  /// published high-SNR numbers. Set false to reproduce the strict
  /// fixed-K behavior the paper criticizes (footnote 8) — with too-large
  /// K the spectrum grows spurious peaks.
  bool adaptive_order = true;
  index_t max_peaks_per_packet = 5;
  /// Peaks within this many degrees of endfire (0 / 180) are discarded:
  /// the ULA manifold degenerates there and MUSIC piles spurious energy
  /// onto the grid edges.
  double edge_exclusion_deg = 4.0;
  bool forward_backward = true;
  /// Sanitize (detrend detection delay) before smoothing, as SpotFi does.
  bool sanitize = true;
  double rebias_delay_s = 100e-9;

  /// Direct-path likelihood weights over normalized cluster features
  /// (AoA normalized by 180 deg, ToA by the grid span):
  /// l = w_weight*log(1+weight) - w_aoa_var*var_aoa - w_toa_var*var_toa
  ///     - w_toa_mean*mean_toa.
  double w_weight = 0.2;
  double w_aoa_var = 10.0;
  double w_toa_var = 10.0;
  double w_toa_mean = 12.0;
  /// Clusters lighter than this fraction of the heaviest cluster cannot
  /// be the direct path: spectrum sidelobes can form consistent (and
  /// hence low-variance, early-ToA) clusters, but they stay weak.
  double min_cluster_weight_ratio = 0.3;
};

struct SpotfiResult {
  double direct_aoa_deg = 0.0;
  double direct_toa_s = 0.0;
  bool valid = false;
  std::vector<PathCandidate> candidates;  ///< pooled per-packet peaks.
  std::vector<Cluster> clusters;          ///< in normalized feature space.
  index_t direct_cluster = -1;            ///< index into clusters.
  dsp::Spectrum2d first_packet_spectrum;  ///< kept when keep_spectrum.
};

/// Runs the full SpotFi pipeline on a burst of CSI packets.
/// Set keep_spectrum to retain the first packet's joint spectrum (used
/// by the figure benches; costs memory, not accuracy).
[[nodiscard]] SpotfiResult spotfi_estimate(std::span<const CMat> packets,
                                           const SpotfiConfig& cfg,
                                           const dsp::ArrayConfig& array_cfg,
                                           bool keep_spectrum = false);

}  // namespace roarray::music
