#include "music/covariance.hpp"

#include <stdexcept>

namespace roarray::music {

using linalg::cxd;

CMat sample_covariance(const CMat& snapshots) {
  if (snapshots.cols() < 1) {
    throw std::invalid_argument("sample_covariance: no snapshots");
  }
  CMat r = matmul(snapshots, adjoint(snapshots));
  r *= cxd{1.0 / static_cast<double>(snapshots.cols()), 0.0};
  return r;
}

CMat forward_backward_average(const CMat& r) {
  if (r.rows() != r.cols()) {
    throw std::invalid_argument("forward_backward_average: not square");
  }
  const index_t n = r.rows();
  CMat out(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      // (J conj(R) J)(i, j) = conj(R(n-1-i, n-1-j))
      out(i, j) = 0.5 * (r(i, j) + std::conj(r(n - 1 - i, n - 1 - j)));
    }
  }
  return out;
}

}  // namespace roarray::music
