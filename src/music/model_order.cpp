#include "music/model_order.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace roarray::music {

index_t estimate_model_order(const RVec& eigenvalues_ascending,
                             index_t num_snapshots, OrderCriterion criterion) {
  const index_t d = eigenvalues_ascending.size();
  if (d < 2) throw std::invalid_argument("estimate_model_order: need >= 2 eigenvalues");
  if (num_snapshots < 1) {
    throw std::invalid_argument("estimate_model_order: need >= 1 snapshot");
  }
  const double n = static_cast<double>(num_snapshots);

  // Work with descending eigenvalues clipped to a tiny positive floor so
  // logs stay finite on rank-deficient covariances.
  RVec lam(d);
  for (index_t i = 0; i < d; ++i) {
    lam[i] = std::max(eigenvalues_ascending[d - 1 - i], 1e-300);
  }

  double best_score = 0.0;
  index_t best_k = 0;
  for (index_t k = 0; k < d; ++k) {
    // Likelihood term over the d - k smallest eigenvalues: log of the
    // ratio of geometric to arithmetic mean.
    const index_t tail = d - k;
    double log_geo = 0.0;
    double arith = 0.0;
    for (index_t i = k; i < d; ++i) {
      log_geo += std::log(lam[i]);
      arith += lam[i];
    }
    log_geo /= static_cast<double>(tail);
    arith /= static_cast<double>(tail);
    const double log_ratio = log_geo - std::log(std::max(arith, 1e-300));
    const double likelihood = -n * static_cast<double>(tail) * log_ratio;

    const double free_params =
        static_cast<double>(k) * static_cast<double>(2 * d - k);
    const double penalty = criterion == OrderCriterion::kAic
                               ? free_params
                               : 0.5 * free_params * std::log(n);
    const double score = likelihood + penalty;
    if (k == 0 || score < best_score) {
      best_score = score;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace roarray::music
