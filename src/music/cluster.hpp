// Deterministic k-means clustering in 2-D (AoA, ToA) feature space,
// used by the SpotFi baseline to merge per-packet path candidates.
#pragma once

#include <vector>

#include "linalg/types.hpp"

namespace roarray::music {

using linalg::index_t;

/// A 2-D feature point (already normalized by the caller).
struct FeaturePoint {
  double x = 0.0;
  double y = 0.0;
  double weight = 1.0;  ///< spectrum power of the candidate.
};

/// One cluster of feature points.
struct Cluster {
  double cx = 0.0;  ///< weighted centroid x.
  double cy = 0.0;  ///< weighted centroid y.
  double var_x = 0.0;
  double var_y = 0.0;
  double total_weight = 0.0;
  std::vector<index_t> members;  ///< indices into the input points.
};

/// k-means with deterministic farthest-first initialization. Returns at
/// most k non-empty clusters (fewer if points < k or clusters empty out).
/// Throws std::invalid_argument on empty input or k < 1.
[[nodiscard]] std::vector<Cluster> kmeans(const std::vector<FeaturePoint>& points,
                                          index_t k, int max_iterations = 50);

}  // namespace roarray::music
