#include "music/music.hpp"

#include <cmath>
#include <stdexcept>

namespace roarray::music {

using linalg::CVec;
using linalg::cxd;
using linalg::RVec;

CMat noise_subspace(const CMat& covariance, index_t k) {
  const index_t d = covariance.rows();
  if (k < 1 || k >= d) {
    throw std::invalid_argument("noise_subspace: need 0 < k < dim");
  }
  const linalg::EigResult eg = linalg::eig_hermitian(covariance);
  // Eigenvalues ascending: the first d - k eigenvectors span the noise space.
  CMat en(d, d - k);
  for (index_t j = 0; j < d - k; ++j) {
    for (index_t i = 0; i < d; ++i) en(i, j) = eg.eigenvectors(i, j);
  }
  return en;
}

namespace {

/// 1 / ||E_n^H s||^2 with a floor to avoid dividing by zero at exact
/// signal directions (noise-free covariance corner case).
double music_power(const CMat& en, const CVec& s) {
  double acc = 0.0;
  for (index_t j = 0; j < en.cols(); ++j) {
    cxd proj{};
    for (index_t i = 0; i < en.rows(); ++i) proj += std::conj(en(i, j)) * s[i];
    acc += std::norm(proj);
  }
  return 1.0 / std::max(acc, 1e-12);
}

}  // namespace

dsp::Spectrum1d music_spectrum_aoa(const CMat& covariance, index_t k,
                                   const dsp::Grid& aoa_grid_deg,
                                   const dsp::ArrayConfig& cfg) {
  if (covariance.rows() != cfg.num_antennas) {
    throw std::invalid_argument("music_spectrum_aoa: covariance dim != antennas");
  }
  const CMat en = noise_subspace(covariance, k);
  dsp::Spectrum1d out;
  out.grid = aoa_grid_deg;
  out.values = RVec(aoa_grid_deg.size());
  for (index_t i = 0; i < aoa_grid_deg.size(); ++i) {
    const CVec s = dsp::steering_aoa(aoa_grid_deg[i], cfg);
    out.values[i] = music_power(en, s);
  }
  out.normalize();
  return out;
}

dsp::Spectrum2d music_spectrum_joint(const CMat& covariance, index_t k,
                                     const dsp::Grid& aoa_grid_deg,
                                     const dsp::Grid& toa_grid_s,
                                     const dsp::ArrayConfig& cfg,
                                     index_t sub_antennas,
                                     index_t sub_carriers) {
  if (covariance.rows() != sub_antennas * sub_carriers) {
    throw std::invalid_argument("music_spectrum_joint: covariance dim mismatch");
  }
  const CMat en = noise_subspace(covariance, k);
  dsp::Spectrum2d out;
  out.aoa_grid = aoa_grid_deg;
  out.toa_grid = toa_grid_s;
  out.values = linalg::RMat(aoa_grid_deg.size(), toa_grid_s.size());
  for (index_t j = 0; j < toa_grid_s.size(); ++j) {
    for (index_t i = 0; i < aoa_grid_deg.size(); ++i) {
      const CVec s = dsp::steering_joint_sub(aoa_grid_deg[i], toa_grid_s[j],
                                             cfg, sub_antennas, sub_carriers);
      out.values(i, j) = music_power(en, s);
    }
  }
  out.normalize();
  return out;
}

}  // namespace roarray::music
