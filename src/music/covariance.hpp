// Sample covariance estimation for subspace methods.
#pragma once

#include "linalg/matrix.hpp"

namespace roarray::music {

using linalg::CMat;
using linalg::index_t;

/// Sample covariance R = (1/T) Y Y^H from a d x T snapshot matrix.
/// Throws std::invalid_argument if there are no snapshots.
[[nodiscard]] CMat sample_covariance(const CMat& snapshots);

/// Forward-backward averaging: R_fb = (R + J conj(R) J) / 2 with J the
/// exchange matrix. Decorrelates coherent sources on a ULA and improves
/// conditioning at low snapshot counts.
[[nodiscard]] CMat forward_backward_average(const CMat& r);

}  // namespace roarray::music
