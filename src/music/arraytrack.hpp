// ArrayTrack baseline (Xiong & Jamieson, NSDI 2013): spatial-only MUSIC
// on the raw antenna array. Following the paper's comparison setup, it
// is implemented for the same 3-antenna hardware (Section IV-A: "we
// implement its algorithms using the aforementioned hardware settings").
// Without client/AP motion, the direct path is taken as the strongest
// spectrum peak — exactly the limitation the paper calls out.
#pragma once

#include <span>

#include "dsp/grid.hpp"
#include "dsp/spectrum.hpp"
#include "music/music.hpp"

namespace roarray::music {

struct ArrayTrackConfig {
  dsp::Grid aoa_grid = dsp::Grid(0.0, 180.0, 181);
  /// Maximum source count; clamped to M - 1. ArrayTrack's tiny aperture
  /// resolves at most M - 1 = 2 paths.
  index_t num_paths = 2;
  /// Estimate the per-burst source count by MDL (capped at num_paths)
  /// instead of forcing it — forcing K too high on an effectively
  /// rank-1 channel yields spurious dominant peaks.
  bool adaptive_order = true;
  bool forward_backward = true;  ///< apply FB averaging to the covariance.
  /// ArrayTrack predates per-subcarrier CSI processing: it works on a
  /// short run of preamble time samples, not on 30 independent
  /// subcarrier snapshots (exploiting those is SpotFi's contribution).
  /// Model this by coherently averaging consecutive subcarriers into
  /// this many snapshots per packet.
  index_t snapshots_per_packet = 5;
  /// Without client/AP motion ArrayTrack has no principled direct-path
  /// test and takes the strongest spectrum peak (the behavior the paper
  /// compares against; default). Enabling the Bartlett anchor picks the
  /// MUSIC peak nearest the dominant-energy direction instead — a
  /// non-historical enhancement kept for ablation.
  bool bartlett_anchor = false;
};

struct ArrayTrackResult {
  dsp::Spectrum1d spectrum;       ///< packet-averaged AoA pseudo-spectrum.
  std::vector<dsp::Peak> peaks;   ///< detected AoA peaks, strongest first.
  double direct_aoa_deg = 0.0;    ///< strongest peak (ArrayTrack's pick).
  bool valid = false;             ///< false if no peak was found.
};

/// Runs ArrayTrack on a burst of CSI packets (each M x L): subcarriers
/// and packets all serve as snapshots for one M x M covariance.
[[nodiscard]] ArrayTrackResult arraytrack_estimate(std::span<const CMat> packets,
                                                   const ArrayTrackConfig& cfg,
                                                   const dsp::ArrayConfig& array_cfg);

}  // namespace roarray::music
