#include "loc/localize.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "dsp/angles.hpp"

namespace roarray::loc {

LocalizeResult localize(std::span<const ApObservation> observations,
                        const LocalizeConfig& cfg) {
  cfg.room.validate();
  if (cfg.grid_step_m <= 0.0) {
    throw std::invalid_argument("localize: grid step must be positive");
  }
  LocalizeResult out;
  if (observations.empty()) return out;

  const auto nx = static_cast<linalg::index_t>(
      std::floor(cfg.room.width_m / cfg.grid_step_m)) + 1;
  const auto ny = static_cast<linalg::index_t>(
      std::floor(cfg.room.height_m / cfg.grid_step_m)) + 1;

  double best = std::numeric_limits<double>::max();
  for (linalg::index_t iy = 0; iy < ny; ++iy) {
    for (linalg::index_t ix = 0; ix < nx; ++ix) {
      const Vec2 cand{static_cast<double>(ix) * cfg.grid_step_m,
                      static_cast<double>(iy) * cfg.grid_step_m};
      double cost = 0.0;
      bool degenerate = false;
      for (const ApObservation& o : observations) {
        // Skip candidates sitting exactly on an AP (AoA undefined).
        if (channel::distance(cand, o.pose.position) < 1e-9) {
          degenerate = true;
          break;
        }
        const double phi = o.pose.aoa_of_point(cand);
        const double d = dsp::angle_diff_deg(phi, o.aoa_deg);
        cost += o.weight * d * d;
      }
      if (degenerate) continue;
      if (cost < best) {
        best = cost;
        out.position = cand;
      }
    }
  }
  out.cost = best;
  out.valid = true;
  return out;
}

}  // namespace roarray::loc
