#include "loc/localize.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "dsp/angles.hpp"
#include "runtime/thread_pool.hpp"

namespace roarray::loc {

namespace {

/// Best candidate within one grid row (fixed iy), scanning ix ascending
/// with a strict-less update — the same order and tie-breaking as the
/// original single-loop scan.
struct RowBest {
  double cost = std::numeric_limits<double>::max();
  linalg::index_t ix = -1;  ///< -1 = every candidate in the row degenerate.
};

RowBest scan_row(linalg::index_t iy, linalg::index_t nx, double step,
                 std::span<const ApObservation> observations) {
  RowBest best;
  for (linalg::index_t ix = 0; ix < nx; ++ix) {
    const Vec2 cand{static_cast<double>(ix) * step,
                    static_cast<double>(iy) * step};
    double cost = 0.0;
    bool degenerate = false;
    for (const ApObservation& o : observations) {
      // Skip candidates sitting exactly on an AP (AoA undefined).
      if (channel::distance(cand, o.pose.position) < 1e-9) {
        degenerate = true;
        break;
      }
      const double phi = o.pose.aoa_of_point(cand);
      const double d = dsp::angle_diff_deg(phi, o.aoa_deg);
      cost += o.weight * d * d;
    }
    if (degenerate) continue;
    if (cost < best.cost) {
      best.cost = cost;
      best.ix = ix;
    }
  }
  return best;
}

}  // namespace

LocalizeResult localize(std::span<const ApObservation> observations,
                        const LocalizeConfig& cfg,
                        const runtime::ThreadPool* pool) {
  cfg.room.validate();
  if (cfg.grid_step_m <= 0.0) {
    throw std::invalid_argument("localize: grid step must be positive");
  }
  LocalizeResult out;
  if (observations.empty()) return out;

  const auto nx = static_cast<linalg::index_t>(
      std::floor(cfg.room.width_m / cfg.grid_step_m)) + 1;
  const auto ny = static_cast<linalg::index_t>(
      std::floor(cfg.room.height_m / cfg.grid_step_m)) + 1;

  // Each row's minimum is independent; computing rows concurrently and
  // reducing them in ascending iy reproduces the serial (iy outer, ix
  // inner, strict <) argmin exactly.
  std::vector<RowBest> rows(static_cast<std::size_t>(ny));
  auto row_body = [&](linalg::index_t iy) {
    rows[static_cast<std::size_t>(iy)] =
        scan_row(iy, nx, cfg.grid_step_m, observations);
  };
  if (pool != nullptr) {
    pool->parallel_for(ny, row_body);
  } else {
    for (linalg::index_t iy = 0; iy < ny; ++iy) row_body(iy);
  }

  double best = std::numeric_limits<double>::max();
  for (linalg::index_t iy = 0; iy < ny; ++iy) {
    const RowBest& rb = rows[static_cast<std::size_t>(iy)];
    if (rb.ix < 0) continue;
    if (rb.cost < best) {
      best = rb.cost;
      out.position = Vec2{static_cast<double>(rb.ix) * cfg.grid_step_m,
                          static_cast<double>(iy) * cfg.grid_step_m};
    }
  }
  out.cost = best;
  out.valid = true;
  return out;
}

}  // namespace roarray::loc
