#include "loc/localize.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dsp/angles.hpp"
#include "runtime/thread_pool.hpp"

namespace roarray::loc {

namespace {

/// Best candidate within one grid row (fixed iy), scanning ix ascending
/// with a strict-less update — the same order and tie-breaking as the
/// original single-loop scan.
struct RowBest {
  double cost = std::numeric_limits<double>::max();
  linalg::index_t ix = -1;  ///< -1 = every candidate in the row degenerate.
};

RowBest scan_row(linalg::index_t iy, linalg::index_t nx, double step,
                 std::span<const ApObservation> observations) {
  RowBest best;
  for (linalg::index_t ix = 0; ix < nx; ++ix) {
    const Vec2 cand{static_cast<double>(ix) * step,
                    static_cast<double>(iy) * step};
    double cost = 0.0;
    bool degenerate = false;
    for (const ApObservation& o : observations) {
      // Skip candidates sitting exactly on an AP (AoA undefined).
      if (channel::distance(cand, o.pose.position) < 1e-9) {
        degenerate = true;
        break;
      }
      const double phi = o.pose.aoa_of_point(cand);
      const double d = dsp::angle_diff_deg(phi, o.aoa_deg);
      cost += o.weight * d * d;
    }
    if (degenerate) continue;
    if (cost < best.cost) {
      best.cost = cost;
      best.ix = ix;
    }
  }
  return best;
}

/// An observation contributes only with a finite AoA and a positive,
/// finite weight; anything else (all-zero RSSI weights, NaNs from an
/// upstream failure) previously produced a silent bogus (0, 0) fix.
[[nodiscard]] bool usable_observation(const ApObservation& o) noexcept {
  return std::isfinite(o.aoa_deg) && std::isfinite(o.weight) && o.weight > 0.0;
}

}  // namespace

const char* localize_status_name(LocalizeStatus s) noexcept {
  switch (s) {
    case LocalizeStatus::kOk: return "ok";
    case LocalizeStatus::kNoObservations: return "no-observations";
    case LocalizeStatus::kDegenerateWeights: return "degenerate-weights";
  }
  return "unknown";
}

LocalizeResult localize(std::span<const ApObservation> observations,
                        const LocalizeConfig& cfg,
                        const runtime::ThreadPool* pool) {
  cfg.room.validate();
  if (cfg.grid_step_m <= 0.0) {
    throw std::invalid_argument("localize: grid step must be positive");
  }
  LocalizeResult out;
  if (observations.empty()) return out;

  std::vector<ApObservation> usable;
  std::vector<std::size_t> src_index;  // usable slot -> input index.
  usable.reserve(observations.size());
  src_index.reserve(observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i) {
    if (!usable_observation(observations[i])) continue;
    usable.push_back(observations[i]);
    src_index.push_back(i);
  }
  if (usable.empty()) {
    out.status = LocalizeStatus::kDegenerateWeights;
    return out;
  }

  const auto nx = static_cast<linalg::index_t>(
      std::floor(cfg.room.width_m / cfg.grid_step_m)) + 1;
  const auto ny = static_cast<linalg::index_t>(
      std::floor(cfg.room.height_m / cfg.grid_step_m)) + 1;

  // Each row's minimum is independent; computing rows concurrently and
  // reducing them in ascending iy reproduces the serial (iy outer, ix
  // inner, strict <) argmin exactly.
  std::vector<RowBest> rows(static_cast<std::size_t>(ny));
  auto row_body = [&](linalg::index_t iy) {
    rows[static_cast<std::size_t>(iy)] =
        scan_row(iy, nx, cfg.grid_step_m, usable);
  };
  if (pool != nullptr) {
    pool->parallel_for(ny, row_body);
  } else {
    for (linalg::index_t iy = 0; iy < ny; ++iy) row_body(iy);
  }

  double best = std::numeric_limits<double>::max();
  for (linalg::index_t iy = 0; iy < ny; ++iy) {
    const RowBest& rb = rows[static_cast<std::size_t>(iy)];
    if (rb.ix < 0) continue;
    if (rb.cost < best) {
      best = rb.cost;
      out.position = Vec2{static_cast<double>(rb.ix) * cfg.grid_step_m,
                          static_cast<double>(iy) * cfg.grid_step_m};
    }
  }
  out.cost = best;
  out.valid = true;
  out.status = LocalizeStatus::kOk;

  // Robust fusion refinement, seeded by the grid argmin. Below the AP
  // floor the grid fix stands alone: a 2-AP robust solve has no
  // redundancy to tell an inlier from a liar.
  if (cfg.robust && static_cast<int>(usable.size()) >= cfg.robust_min_aps) {
    std::vector<fusion::Observation> fobs(usable.size());
    for (std::size_t i = 0; i < usable.size(); ++i) {
      fobs[i].pose = usable[i].pose;
      fobs[i].aoa_deg = usable[i].aoa_deg;
      fobs[i].weight = usable[i].weight;
      fobs[i].toa_s = usable[i].toa_s;
      fobs[i].has_toa = usable[i].has_toa && std::isfinite(usable[i].toa_s);
    }
    fusion::FusionReport report =
        fusion::fuse_robust(fobs, cfg.room, out.position, cfg.fusion);
    out.used_fusion = true;
    out.position = report.position;
    out.cost = report.cost;
    // Re-align per-AP diagnostics with the caller's input span; screened
    // observations keep default (non-inlier, zero-weight) entries.
    std::vector<fusion::ApDiagnostics> aligned(observations.size());
    for (std::size_t i = 0; i < src_index.size(); ++i) {
      aligned[src_index[i]] = report.per_ap[i];
    }
    report.per_ap = std::move(aligned);
    out.fusion = std::move(report);
  }
  return out;
}

}  // namespace roarray::loc
