// Multi-AP localization: RSSI-weighted AoA triangulation on a candidate
// grid (paper Eq. 19, Section III-D "Multi-AP localization").
#pragma once

#include <span>
#include <vector>

#include "channel/geometry.hpp"

namespace roarray::runtime {
class ThreadPool;
}

namespace roarray::loc {

using channel::ApPose;
using channel::Room;
using channel::Vec2;

/// One AP's contribution: its pose, the estimated direct-path AoA, and
/// an RSSI-derived weight (linear power; relative scale is what matters).
struct ApObservation {
  ApPose pose;
  double aoa_deg = 0.0;
  double weight = 1.0;
};

struct LocalizeConfig {
  Room room;
  double grid_step_m = 0.1;  ///< the paper's 10 cm search grid.
};

struct LocalizeResult {
  Vec2 position;
  double cost = 0.0;   ///< weighted squared AoA deviation at the optimum.
  bool valid = false;  ///< false when no observations were given.
};

/// Finds argmin_x sum_i R_i * (phi_i(x) - phi_hat_i)^2 over a uniform
/// grid covering the room, where phi_i(x) is the AoA AP i would observe
/// for a target at x. Throws std::invalid_argument on a non-positive
/// grid step. A non-null pool splits the candidate grid by row; the
/// per-row minima are reduced in row order with the same strict-less
/// tie-breaking as the serial scan, so the result is identical at any
/// thread count.
[[nodiscard]] LocalizeResult localize(std::span<const ApObservation> observations,
                                      const LocalizeConfig& cfg,
                                      const runtime::ThreadPool* pool = nullptr);

}  // namespace roarray::loc
