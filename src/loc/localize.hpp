// Multi-AP localization: RSSI-weighted AoA triangulation on a candidate
// grid (paper Eq. 19, Section III-D "Multi-AP localization"), refined by
// the robust NLoS-aware fusion layer (src/fusion/, DESIGN.md §13) when
// enough APs report.
#pragma once

#include <span>
#include <vector>

#include "channel/geometry.hpp"
#include "fusion/fusion.hpp"

namespace roarray::runtime {
class ThreadPool;
}

namespace roarray::loc {

using channel::ApPose;
using channel::Room;
using channel::Vec2;

/// One AP's contribution: its pose, the estimated direct-path AoA, and
/// an RSSI-derived weight (linear power; relative scale is what matters).
/// ToA is optional (has_toa gates it) and feeds only the fusion layer's
/// NLoS positive-bias model — sanitization strips absolute range from
/// it, so it never places the client on its own.
struct ApObservation {
  ApPose pose;
  double aoa_deg = 0.0;
  double weight = 1.0;
  double toa_s = 0.0;
  bool has_toa = false;
};

struct LocalizeConfig {
  Room room;
  double grid_step_m = 0.1;  ///< the paper's 10 cm search grid.
  /// Robust fusion refinement (default on). The naive weighted grid
  /// argmin always runs first and seeds the IRLS solve; with robust off
  /// — or fewer usable APs than robust_min_aps — the grid fix is
  /// returned as-is, exactly the pre-fusion behaviour.
  bool robust = true;
  int robust_min_aps = 3;
  fusion::FusionConfig fusion;
};

/// Typed outcome of a localize call. Only kOk yields a usable position.
enum class LocalizeStatus {
  kOk,
  kNoObservations,      ///< empty observation span.
  kDegenerateWeights,   ///< every observation had a non-finite AoA or a
                        ///< non-positive / non-finite weight.
};

[[nodiscard]] const char* localize_status_name(LocalizeStatus s) noexcept;

struct LocalizeResult {
  Vec2 position;
  /// Weighted squared AoA deviation at the grid optimum; when
  /// used_fusion is set, the fusion layer's total robust cost instead.
  double cost = 0.0;
  bool valid = false;  ///< == (status == LocalizeStatus::kOk).
  LocalizeStatus status = LocalizeStatus::kNoObservations;
  /// True when the robust fusion layer produced `position`; false on the
  /// naive-grid path (robust off, or fewer than robust_min_aps usable
  /// observations).
  bool used_fusion = false;
  /// Fusion diagnostics, index-aligned with the *input* span (entries
  /// for observations screened out as degenerate stay default). Only
  /// meaningful when used_fusion is true.
  fusion::FusionReport fusion;
};

/// Finds argmin_x sum_i R_i * (phi_i(x) - phi_hat_i)^2 over a uniform
/// grid covering the room, where phi_i(x) is the AoA AP i would observe
/// for a target at x, then (by default) refines it with the robust
/// fusion layer. Observations with non-finite AoA or non-positive /
/// non-finite weight are screened out; if none survive the result
/// carries a typed error status instead of a silent bogus fix. Throws
/// std::invalid_argument on a non-positive grid step. A non-null pool
/// splits the candidate grid by row; the per-row minima are reduced in
/// row order with the same strict-less tie-breaking as the serial scan,
/// so the result is identical at any thread count (the fusion refinement
/// is single-threaded and deterministic by construction).
[[nodiscard]] LocalizeResult localize(std::span<const ApObservation> observations,
                                      const LocalizeConfig& cfg,
                                      const runtime::ThreadPool* pool = nullptr);

}  // namespace roarray::loc
