// ROArray: robust joint AoA/ToA estimation by sparse recovery over a
// (theta, tau) sampling grid — the paper's primary contribution
// (Sections III-A, III-B, III-D).
//
// Pipeline per burst of CSI packets:
//   1. (optional) sanitize each packet: remove the per-packet detection
//      delay so packets are coherently fusable;
//   2. stack each M x L CSI matrix into a 90-dim measurement (Eq. 15);
//   3. multi-packet fusion: l1-SVD reduction of the snapshot matrix to
//      its dominant subspace (Section III-D "Multi-Packet fusion");
//   4. solve the l1 (single snapshot, Eq. 18) or l2,1 (fused) problem
//      over the Kronecker-structured joint steering operator (Eq. 16);
//   5. peaks of |a| reshaped over the grid are the paths; the smallest
//      ToA peak is the direct path (Section III-B).
#pragma once

#include <span>
#include <vector>

#include "dsp/constants.hpp"
#include "dsp/grid.hpp"
#include "dsp/spectrum.hpp"
#include "linalg/matrix.hpp"
#include "runtime/context.hpp"
#include "sparse/coarse_fine.hpp"
#include "sparse/fista.hpp"

namespace roarray::core {

using linalg::CMat;
using linalg::CVec;
using linalg::index_t;

/// One estimated propagation path.
struct PathEstimate {
  double aoa_deg = 0.0;
  double toa_s = 0.0;
  double power = 0.0;  ///< normalized spectrum power in (0, 1].
};

struct RoArrayConfig {
  dsp::Grid aoa_grid = dsp::Grid(0.0, 180.0, 91);
  dsp::Grid toa_grid = dsp::Grid(0.0, 784e-9, 50);
  sparse::SolveConfig solver;  ///< FISTA by default; kappa auto.
  /// Sanitize packets (detection-delay detrend) before fusing. Required
  /// for coherent multi-packet fusion; optional for single packets.
  bool sanitize = true;
  double rebias_delay_s = 100e-9;
  /// Dominant-subspace size for l1-SVD fusion; <= 0 = estimate from the
  /// singular-value profile.
  index_t fusion_rank = -1;
  /// Peak extraction.
  index_t max_paths = 6;
  double min_peak_rel_height = 0.12;
  /// Minimum grid-sample separation between accepted spectrum peaks
  /// along each axis (a candidate is suppressed only when it is within
  /// BOTH windows of an already accepted peak). Smaller values resolve
  /// closer path pairs at the risk of reporting sidelobes as paths.
  index_t min_peak_sep_aoa = 2;
  index_t min_peak_sep_toa = 1;
  /// The direct path is the smallest-ToA peak whose power is at least
  /// this fraction of the strongest peak; weaker residual spikes are
  /// listed in `paths` but never win the direct-path pick.
  double min_direct_rel_power = 0.4;
  /// Coarse-to-fine solve path (sparse/coarse_fine.hpp): when enabled,
  /// a cheap greedy pass over decimated grids selects candidate
  /// (AoA, ToA) cells and the convex solve runs restricted to the
  /// refined support. Roughly 10x faster per estimate; results agree
  /// with the full-grid solve to grid resolution on well-separated
  /// paths but are not bit-identical to it (off-support coefficients
  /// are exactly zero). Default off.
  sparse::CoarseFineConfig coarse_fine;
};

/// Full estimation result.
struct RoArrayResult {
  std::vector<PathEstimate> paths;  ///< sorted by ascending ToA.
  PathEstimate direct;              ///< smallest-ToA path.
  bool valid = false;               ///< false if no path was found.
  dsp::Spectrum2d spectrum;         ///< |a| over the (AoA, ToA) grid.
  int solver_iterations = 0;
  bool solver_converged = false;
};

/// Stacks an M x L CSI matrix into the measurement vector of Eq. 15
/// (antenna-fastest ordering).
[[nodiscard]] CVec stack_csi(const CMat& csi);

/// Reshapes sparse coefficient magnitudes onto the (AoA, ToA) grid as a
/// normalized 2-D spectrum (coefficient (i, j) at column j * Nth + i).
[[nodiscard]] dsp::Spectrum2d coefficients_to_spectrum(const CVec& coeffs,
                                                       const dsp::Grid& aoa_grid,
                                                       const dsp::Grid& toa_grid);

/// Same, from the row norms of a multi-snapshot coefficient matrix.
[[nodiscard]] dsp::Spectrum2d coefficients_to_spectrum(const CMat& coeffs,
                                                       const dsp::Grid& aoa_grid,
                                                       const dsp::Grid& toa_grid);

/// Runs the ROArray estimator on a burst of CSI packets (one or many).
/// With an optional per-iteration callback receiving the current sparse
/// iterate (single-packet path only), used to trace spectrum sharpening
/// (paper Fig. 3).
[[nodiscard]] RoArrayResult roarray_estimate(
    std::span<const CMat> packets, const RoArrayConfig& cfg,
    const dsp::ArrayConfig& array_cfg,
    const sparse::IterationCallback& callback = nullptr);

/// Same, with a runtime context: a non-null cache reuses the steering
/// factors / Lipschitz estimate across calls sharing (grids, array); a
/// non-null pool parallelizes multi-snapshot operator applications.
/// Results are bit-identical to the context-free overload.
[[nodiscard]] RoArrayResult roarray_estimate(
    std::span<const CMat> packets, const RoArrayConfig& cfg,
    const dsp::ArrayConfig& array_cfg, const runtime::EstimateContext& ctx,
    const sparse::IterationCallback& callback = nullptr);

/// One CSI burst (the packets of one AP for one measurement round).
using CsiBurst = std::vector<CMat>;

/// Runs roarray_estimate over many bursts — e.g. one per AP, or one per
/// Monte Carlo trial — fanning out across ctx.pool (serial when null)
/// with the operator setup shared through ctx.cache. results[i] is
/// bit-identical to roarray_estimate(bursts[i], ...) at any thread
/// count.
///
/// Concurrency contract (DESIGN.md §8): the only cross-thread state is
/// the slot-per-burst results vector — worker i writes slot i and
/// nothing else — plus the internally synchronized cache/pool in ctx.
/// No locking happens at this layer, and none must be added without
/// thread-safety annotations (runtime/thread_annotations.hpp).
[[nodiscard]] std::vector<RoArrayResult> roarray_estimate_batch(
    std::span<const CsiBurst> bursts, const RoArrayConfig& cfg,
    const dsp::ArrayConfig& array_cfg, const runtime::EstimateContext& ctx = {});

/// AoA-only sparse spectrum (paper Section III-A): solves the group
/// problem over the spatial steering factor with every subcarrier as a
/// snapshot. Cheaper than the joint solve; used by phase calibration.
[[nodiscard]] dsp::Spectrum1d roarray_aoa_spectrum(
    const CMat& csi, const dsp::Grid& aoa_grid,
    const dsp::ArrayConfig& array_cfg, const sparse::SolveConfig& solver = {});

}  // namespace roarray::core
