#include "core/roarray.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "dsp/sanitize.hpp"
#include "dsp/steering.hpp"
#include "music/model_order.hpp"
#include "runtime/operator_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/l1svd.hpp"
#include "sparse/operator.hpp"

namespace roarray::core {

using linalg::cxd;
using linalg::RMat;

CVec stack_csi(const CMat& csi) {
  const index_t m = csi.rows();
  const index_t l = csi.cols();
  CVec y(m * l);
  for (index_t s = 0; s < l; ++s) {
    for (index_t a = 0; a < m; ++a) y[s * m + a] = csi(a, s);
  }
  return y;
}

dsp::Spectrum2d coefficients_to_spectrum(const CVec& coeffs,
                                         const dsp::Grid& aoa_grid,
                                         const dsp::Grid& toa_grid) {
  const index_t nth = aoa_grid.size();
  const index_t ntau = toa_grid.size();
  if (coeffs.size() != nth * ntau) {
    throw std::invalid_argument("coefficients_to_spectrum: size mismatch");
  }
  dsp::Spectrum2d out;
  out.aoa_grid = aoa_grid;
  out.toa_grid = toa_grid;
  out.values = RMat(nth, ntau);
  for (index_t j = 0; j < ntau; ++j) {
    for (index_t i = 0; i < nth; ++i) {
      out.values(i, j) = std::abs(coeffs[j * nth + i]);
    }
  }
  out.normalize();
  return out;
}

dsp::Spectrum2d coefficients_to_spectrum(const CMat& coeffs,
                                         const dsp::Grid& aoa_grid,
                                         const dsp::Grid& toa_grid) {
  const index_t nth = aoa_grid.size();
  const index_t ntau = toa_grid.size();
  if (coeffs.rows() != nth * ntau) {
    throw std::invalid_argument("coefficients_to_spectrum: size mismatch");
  }
  dsp::Spectrum2d out;
  out.aoa_grid = aoa_grid;
  out.toa_grid = toa_grid;
  out.values = RMat(nth, ntau);
  for (index_t j = 0; j < ntau; ++j) {
    for (index_t i = 0; i < nth; ++i) {
      double row_sq = 0.0;
      for (index_t k = 0; k < coeffs.cols(); ++k) {
        row_sq += std::norm(coeffs(j * nth + i, k));
      }
      out.values(i, j) = std::sqrt(row_sq);
    }
  }
  out.normalize();
  return out;
}

namespace {

/// Extracts paths from the spectrum and fills the result's path fields.
void extract_paths(RoArrayResult& out, const RoArrayConfig& cfg) {
  const auto peaks = out.spectrum.find_peaks(cfg.max_paths,
                                             cfg.min_peak_rel_height,
                                             cfg.min_peak_sep_aoa,
                                             cfg.min_peak_sep_toa);
  for (const dsp::Peak& p : peaks) {
    PathEstimate e;
    e.aoa_deg = p.aoa_deg;
    e.toa_s = p.toa_s;
    e.power = p.value;
    out.paths.push_back(e);
  }
  std::sort(out.paths.begin(), out.paths.end(),
            [](const PathEstimate& a, const PathEstimate& b) {
              return a.toa_s < b.toa_s;
            });
  if (!out.paths.empty()) {
    // Direct path = smallest ToA (paper Section III-B), restricted to
    // peaks strong enough to be real paths rather than residual spikes.
    double max_power = 0.0;
    for (const PathEstimate& p : out.paths) max_power = std::max(max_power, p.power);
    const double floor_power = cfg.min_direct_rel_power * max_power;
    out.direct = out.paths.front();
    for (const PathEstimate& p : out.paths) {
      if (p.power >= floor_power) {
        out.direct = p;
        break;  // paths sorted by ToA: first strong one is the direct
      }
    }
    out.valid = true;
  }
}

}  // namespace

RoArrayResult roarray_estimate(std::span<const CMat> packets,
                               const RoArrayConfig& cfg,
                               const dsp::ArrayConfig& array_cfg,
                               const sparse::IterationCallback& callback) {
  return roarray_estimate(packets, cfg, array_cfg, runtime::EstimateContext{},
                          callback);
}

RoArrayResult roarray_estimate(std::span<const CMat> packets,
                               const RoArrayConfig& cfg,
                               const dsp::ArrayConfig& array_cfg,
                               const runtime::EstimateContext& ctx,
                               const sparse::IterationCallback& callback) {
  if (packets.empty()) throw std::invalid_argument("roarray_estimate: no packets");
  array_cfg.validate();

  // The steering factors and the power-iteration Lipschitz estimate
  // depend only on (grids, array); reuse them through the cache when
  // one is supplied. The cached Lipschitz equals the per-call power
  // iteration exactly, so the solve is bit-identical either way.
  std::shared_ptr<const runtime::CachedOperator> cached;
  std::optional<sparse::KroneckerOperator> local_op;
  sparse::SolveConfig solver = cfg.solver;
  if (ctx.cache != nullptr) {
    cached = ctx.cache->get(cfg.aoa_grid, cfg.toa_grid, array_cfg);
    if (solver.lipschitz_hint <= 0.0) solver.lipschitz_hint = cached->norm_sq;
  } else {
    local_op.emplace(dsp::steering_matrix_aoa(cfg.aoa_grid, array_cfg),
                     dsp::steering_matrix_toa(cfg.toa_grid, array_cfg));
  }
  const sparse::KroneckerOperator& op = cached ? cached->op : *local_op;

  // Gather (optionally sanitized) stacked measurements.
  CMat snapshots(array_cfg.num_antennas * array_cfg.num_subcarriers,
                 static_cast<index_t>(packets.size()));
  for (std::size_t p = 0; p < packets.size(); ++p) {
    CMat csi = packets[p];
    if (csi.rows() != array_cfg.num_antennas ||
        csi.cols() != array_cfg.num_subcarriers) {
      throw std::invalid_argument("roarray_estimate: CSI shape mismatch");
    }
    if (cfg.sanitize) {
      csi = dsp::sanitize_csi(csi, array_cfg, cfg.rebias_delay_s).csi;
    }
    snapshots.set_col(static_cast<index_t>(p), stack_csi(csi));
  }

  RoArrayResult out;
  if (packets.size() == 1) {
    const sparse::SolveResult sol =
        sparse::solve_l1(op, snapshots.col_vec(0), solver, callback);
    out.solver_iterations = sol.iterations;
    out.solver_converged = sol.converged;
    out.spectrum = coefficients_to_spectrum(sol.x, cfg.aoa_grid, cfg.toa_grid);
  } else {
    // Multi-packet fusion: l1-SVD reduction, then one row-sparse solve.
    sparse::SvdReduction red =
        sparse::reduce_snapshots(snapshots, cfg.fusion_rank);
    if (cfg.fusion_rank <= 0) {
      // The simple threshold rule over-keeps noise directions at low
      // SNR (smooth singular-value decay). Re-estimate the signal rank
      // with MDL over the singular-value profile, capped at max_paths.
      const index_t p = snapshots.cols();
      const index_t r = red.singular_values.size();
      linalg::RVec lam(r);  // ascending eigenvalues of (1/p) Y Y^H
      for (index_t i = 0; i < r; ++i) {
        const double s = red.singular_values[r - 1 - i];
        lam[i] = s * s / static_cast<double>(p);
      }
      const index_t mdl = music::estimate_model_order(lam, p);
      const index_t rank =
          std::clamp<index_t>(mdl, 1, std::min(cfg.max_paths, red.reduced.cols()));
      if (rank < red.reduced.cols()) {
        CMat trimmed(red.reduced.rows(), rank);
        for (index_t j = 0; j < rank; ++j) {
          trimmed.set_col(j, red.reduced.col_vec(j));
        }
        red.reduced = std::move(trimmed);
        red.rank_estimate = rank;
      }
    }
    const sparse::GroupSolveResult sol =
        sparse::solve_group_l1(op, red.reduced, solver, ctx.pool);
    out.solver_iterations = sol.iterations;
    out.solver_converged = sol.converged;
    out.spectrum = coefficients_to_spectrum(sol.x, cfg.aoa_grid, cfg.toa_grid);
  }
  extract_paths(out, cfg);
  return out;
}

std::vector<RoArrayResult> roarray_estimate_batch(
    std::span<const CsiBurst> bursts, const RoArrayConfig& cfg,
    const dsp::ArrayConfig& array_cfg, const runtime::EstimateContext& ctx) {
  std::vector<RoArrayResult> results(bursts.size());
  if (bursts.empty()) return results;
  // Warm the cache before fanning out so workers share one entry
  // instead of stalling on the first-touch build.
  if (ctx.cache != nullptr) {
    (void)ctx.cache->get(cfg.aoa_grid, cfg.toa_grid, array_cfg);
  }
  // Per-burst estimation is independent; slot i receives burst i's
  // result, so any thread count yields the serial output exactly.
  // Inside a worker the nested per-snapshot parallelism degrades to
  // serial (see ThreadPool), keeping the fan-out deadlock-free.
  auto run_one = [&](index_t i) {
    results[static_cast<std::size_t>(i)] =
        roarray_estimate(bursts[static_cast<std::size_t>(i)], cfg, array_cfg, ctx);
  };
  if (ctx.pool != nullptr) {
    ctx.pool->parallel_for(static_cast<index_t>(bursts.size()), run_one);
  } else {
    for (index_t i = 0; i < static_cast<index_t>(bursts.size()); ++i) run_one(i);
  }
  return results;
}

dsp::Spectrum1d roarray_aoa_spectrum(const CMat& csi, const dsp::Grid& aoa_grid,
                                     const dsp::ArrayConfig& array_cfg,
                                     const sparse::SolveConfig& solver) {
  if (csi.rows() != array_cfg.num_antennas) {
    throw std::invalid_argument("roarray_aoa_spectrum: CSI rows != antennas");
  }
  const sparse::DenseOperator op(dsp::steering_matrix_aoa(aoa_grid, array_cfg));
  // Every subcarrier is one spatial snapshot; the row-sparse solution's
  // row norms are the AoA spectrum.
  const sparse::GroupSolveResult sol = sparse::solve_group_l1(op, csi, solver);

  dsp::Spectrum1d out;
  out.grid = aoa_grid;
  out.values = linalg::RVec(aoa_grid.size());
  for (index_t i = 0; i < aoa_grid.size(); ++i) {
    double row_sq = 0.0;
    for (index_t k = 0; k < sol.x.cols(); ++k) row_sq += std::norm(sol.x(i, k));
    out.values[i] = std::sqrt(row_sq);
  }
  out.normalize();
  return out;
}

}  // namespace roarray::core
