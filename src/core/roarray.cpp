#include "core/roarray.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "dsp/angles.hpp"
#include "dsp/sanitize.hpp"
#include "dsp/steering.hpp"
#include "music/model_order.hpp"
#include "runtime/operator_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/coarse_fine.hpp"
#include "sparse/l1svd.hpp"
#include "sparse/operator.hpp"
#include "sparse/power.hpp"

namespace roarray::core {

using linalg::cxd;
using linalg::RMat;

CVec stack_csi(const CMat& csi) {
  const index_t m = csi.rows();
  const index_t l = csi.cols();
  CVec y(m * l);
  for (index_t s = 0; s < l; ++s) {
    for (index_t a = 0; a < m; ++a) y[s * m + a] = csi(a, s);
  }
  return y;
}

dsp::Spectrum2d coefficients_to_spectrum(const CVec& coeffs,
                                         const dsp::Grid& aoa_grid,
                                         const dsp::Grid& toa_grid) {
  const index_t nth = aoa_grid.size();
  const index_t ntau = toa_grid.size();
  if (coeffs.size() != nth * ntau) {
    throw std::invalid_argument("coefficients_to_spectrum: size mismatch");
  }
  dsp::Spectrum2d out;
  out.aoa_grid = aoa_grid;
  out.toa_grid = toa_grid;
  out.values = RMat(nth, ntau);
  for (index_t j = 0; j < ntau; ++j) {
    for (index_t i = 0; i < nth; ++i) {
      out.values(i, j) = std::abs(coeffs[j * nth + i]);
    }
  }
  out.normalize();
  return out;
}

dsp::Spectrum2d coefficients_to_spectrum(const CMat& coeffs,
                                         const dsp::Grid& aoa_grid,
                                         const dsp::Grid& toa_grid) {
  const index_t nth = aoa_grid.size();
  const index_t ntau = toa_grid.size();
  if (coeffs.rows() != nth * ntau) {
    throw std::invalid_argument("coefficients_to_spectrum: size mismatch");
  }
  dsp::Spectrum2d out;
  out.aoa_grid = aoa_grid;
  out.toa_grid = toa_grid;
  out.values = RMat(nth, ntau);
  for (index_t j = 0; j < ntau; ++j) {
    for (index_t i = 0; i < nth; ++i) {
      double row_sq = 0.0;
      for (index_t k = 0; k < coeffs.cols(); ++k) {
        row_sq += std::norm(coeffs(j * nth + i, k));
      }
      out.values(i, j) = std::sqrt(row_sq);
    }
  }
  out.normalize();
  return out;
}

namespace {

/// Extracts paths from the spectrum and fills the result's path fields.
/// aoa_wrap_period > 0 marks the AoA axis circular (the full [0, 180]
/// grid at half-wavelength spacing aliases its endpoints — see
/// dsp::aoa_wrap_period), so the peak min-separation window wraps.
void extract_paths(RoArrayResult& out, const RoArrayConfig& cfg,
                   index_t aoa_wrap_period) {
  const auto peaks = out.spectrum.find_peaks(cfg.max_paths,
                                             cfg.min_peak_rel_height,
                                             cfg.min_peak_sep_aoa,
                                             cfg.min_peak_sep_toa,
                                             aoa_wrap_period);
  for (const dsp::Peak& p : peaks) {
    PathEstimate e;
    e.aoa_deg = p.aoa_deg;
    e.toa_s = p.toa_s;
    e.power = p.value;
    out.paths.push_back(e);
  }
  std::sort(out.paths.begin(), out.paths.end(),
            [](const PathEstimate& a, const PathEstimate& b) {
              return a.toa_s < b.toa_s;
            });
  if (!out.paths.empty()) {
    // Direct path = smallest ToA (paper Section III-B), restricted to
    // peaks strong enough to be real paths rather than residual spikes.
    double max_power = 0.0;
    for (const PathEstimate& p : out.paths) max_power = std::max(max_power, p.power);
    const double floor_power = cfg.min_direct_rel_power * max_power;
    out.direct = out.paths.front();
    for (const PathEstimate& p : out.paths) {
      if (p.power >= floor_power) {
        out.direct = p;
        break;  // paths sorted by ToA: first strong one is the direct
      }
    }
    out.valid = true;
  }
}

/// Result of the restricted (coarse-to-fine) solve, already scattered
/// back onto the full grid.
struct CoarseFineSolve {
  CMat coefficients;  ///< full cols x snapshots, zeros off-support.
  int iterations = 0;
  bool converged = true;
};

/// The coarse-to-fine solve path: greedy candidate selection on the
/// decimated-grid operator, then the convex solve restricted to the
/// refined factored support (see sparse/coarse_fine.hpp and DESIGN.md
/// "Coarse-to-fine factored dictionary"). `y` holds the solve input
/// columns (the stacked snapshots, or the l1-SVD reduced ones).
CoarseFineSolve solve_coarse_to_fine(const sparse::KroneckerOperator& op,
                                     const CMat& y, const RoArrayConfig& cfg,
                                     const dsp::ArrayConfig& array_cfg,
                                     sparse::SolveConfig solver,
                                     const runtime::EstimateContext& ctx,
                                     const sparse::IterationCallback& callback) {
  const sparse::CoarseFineConfig& cf = cfg.coarse_fine;
  std::shared_ptr<const runtime::CachedOperator> coarse_cached;
  std::optional<sparse::KroneckerOperator> coarse_local;
  if (ctx.cache != nullptr) {
    coarse_cached =
        ctx.cache->get_coarse(cfg.aoa_grid, cfg.toa_grid, array_cfg, cf);
  } else {
    coarse_local.emplace(
        dsp::steering_matrix_aoa(
            sparse::decimate_grid(cfg.aoa_grid, cf.aoa_decimation), array_cfg),
        dsp::steering_matrix_toa(
            sparse::decimate_grid(cfg.toa_grid, cf.toa_decimation), array_cfg));
  }
  const sparse::KroneckerOperator& coarse_op =
      coarse_cached ? coarse_cached->op : *coarse_local;

  const sparse::FactoredSupport support = sparse::select_factored_support(
      coarse_op, y, cfg.aoa_grid.size(), cfg.toa_grid.size(), cf);

  CoarseFineSolve out;
  if (support.empty()) {
    // No correlated energy anywhere (all-zero measurement): the full
    // solve would return all zeros too.
    out.coefficients = CMat(op.cols(), y.cols());
    return out;
  }

  const sparse::SupportOperator sub(op, support.aoa, support.toa);
  // Cached / caller Lipschitz hints describe the FULL operator; the
  // restricted one needs its own (tighter) constant. The restriction is
  // itself a Kronecker product of the gathered factors, so lambda_max
  // factorizes: ||L (x) R||^2 = ||L||^2 ||R||^2 — two deterministic
  // power iterations on the tiny factor matrices instead of one on the
  // joint operator, identical cached vs uncached.
  solver.lipschitz_hint =
      sparse::operator_norm_sq(sparse::DenseOperator(sub.sub().left())) *
      sparse::operator_norm_sq(sparse::DenseOperator(sub.sub().right()));
  if (cf.max_refine_iterations > 0) {
    solver.max_iterations =
        std::min(solver.max_iterations, cf.max_refine_iterations);
  }
  if (cf.refine_tolerance > 0.0) {
    solver.tolerance = std::max(solver.tolerance, cf.refine_tolerance);
  }

  if (y.cols() == 1) {
    sparse::IterationCallback cb;
    if (callback) {
      cb = [&callback, &sub](int it, const CVec& x) {
        callback(it, sub.scatter(x));
      };
    }
    const sparse::SolveResult sol =
        sparse::solve_l1(sub, y.col_vec(0), solver, cb);
    out.iterations = sol.iterations;
    out.converged = sol.converged;
    out.coefficients = CMat(op.cols(), 1);
    out.coefficients.set_col(0, sub.scatter(sol.x));
  } else {
    const sparse::GroupSolveResult sol =
        sparse::solve_group_l1(sub, y, solver, ctx.pool);
    out.iterations = sol.iterations;
    out.converged = sol.converged;
    out.coefficients = sub.scatter(sol.x);
  }
  return out;
}

}  // namespace

RoArrayResult roarray_estimate(std::span<const CMat> packets,
                               const RoArrayConfig& cfg,
                               const dsp::ArrayConfig& array_cfg,
                               const sparse::IterationCallback& callback) {
  return roarray_estimate(packets, cfg, array_cfg, runtime::EstimateContext{},
                          callback);
}

RoArrayResult roarray_estimate(std::span<const CMat> packets,
                               const RoArrayConfig& cfg,
                               const dsp::ArrayConfig& array_cfg,
                               const runtime::EstimateContext& ctx,
                               const sparse::IterationCallback& callback) {
  if (packets.empty()) throw std::invalid_argument("roarray_estimate: no packets");
  array_cfg.validate();

  // The steering factors and the power-iteration Lipschitz estimate
  // depend only on (grids, array); reuse them through the cache when
  // one is supplied. The cached Lipschitz equals the per-call power
  // iteration exactly, so the solve is bit-identical either way.
  std::shared_ptr<const runtime::CachedOperator> cached;
  std::optional<sparse::KroneckerOperator> local_op;
  sparse::SolveConfig solver = cfg.solver;
  if (ctx.cache != nullptr) {
    cached = ctx.cache->get(cfg.aoa_grid, cfg.toa_grid, array_cfg);
    if (solver.lipschitz_hint <= 0.0) solver.lipschitz_hint = cached->norm_sq;
  } else {
    local_op.emplace(dsp::steering_matrix_aoa(cfg.aoa_grid, array_cfg),
                     dsp::steering_matrix_toa(cfg.toa_grid, array_cfg));
  }
  const sparse::KroneckerOperator& op = cached ? cached->op : *local_op;

  // Gather (optionally sanitized) stacked measurements.
  CMat snapshots(array_cfg.num_antennas * array_cfg.num_subcarriers,
                 static_cast<index_t>(packets.size()));
  for (std::size_t p = 0; p < packets.size(); ++p) {
    CMat csi = packets[p];
    if (csi.rows() != array_cfg.num_antennas ||
        csi.cols() != array_cfg.num_subcarriers) {
      throw std::invalid_argument("roarray_estimate: CSI shape mismatch");
    }
    if (cfg.sanitize) {
      csi = dsp::sanitize_csi(csi, array_cfg, cfg.rebias_delay_s).csi;
    }
    snapshots.set_col(static_cast<index_t>(p), stack_csi(csi));
  }

  RoArrayResult out;
  if (packets.size() == 1) {
    if (cfg.coarse_fine.enabled) {
      const CoarseFineSolve sol = solve_coarse_to_fine(
          op, snapshots, cfg, array_cfg, solver, ctx, callback);
      out.solver_iterations = sol.iterations;
      out.solver_converged = sol.converged;
      out.spectrum = coefficients_to_spectrum(sol.coefficients.col_vec(0),
                                              cfg.aoa_grid, cfg.toa_grid);
    } else {
      const sparse::SolveResult sol =
          sparse::solve_l1(op, snapshots.col_vec(0), solver, callback);
      out.solver_iterations = sol.iterations;
      out.solver_converged = sol.converged;
      out.spectrum = coefficients_to_spectrum(sol.x, cfg.aoa_grid, cfg.toa_grid);
    }
  } else {
    // Multi-packet fusion: l1-SVD reduction, then one row-sparse solve.
    sparse::SvdReduction red =
        sparse::reduce_snapshots(snapshots, cfg.fusion_rank);
    if (cfg.fusion_rank <= 0) {
      // The simple threshold rule over-keeps noise directions at low
      // SNR (smooth singular-value decay). Re-estimate the signal rank
      // with MDL over the singular-value profile, capped at max_paths.
      const index_t p = snapshots.cols();
      const index_t r = red.singular_values.size();
      linalg::RVec lam(r);  // ascending eigenvalues of (1/p) Y Y^H
      for (index_t i = 0; i < r; ++i) {
        const double s = red.singular_values[r - 1 - i];
        lam[i] = s * s / static_cast<double>(p);
      }
      const index_t mdl = music::estimate_model_order(lam, p);
      const index_t rank =
          std::clamp<index_t>(mdl, 1, std::min(cfg.max_paths, red.reduced.cols()));
      if (rank < red.reduced.cols()) {
        CMat trimmed(red.reduced.rows(), rank);
        for (index_t j = 0; j < rank; ++j) {
          trimmed.set_col(j, red.reduced.col_vec(j));
        }
        red.reduced = std::move(trimmed);
        red.rank_estimate = rank;
      }
    }
    if (cfg.coarse_fine.enabled) {
      const CoarseFineSolve sol = solve_coarse_to_fine(
          op, red.reduced, cfg, array_cfg, solver, ctx, nullptr);
      out.solver_iterations = sol.iterations;
      out.solver_converged = sol.converged;
      out.spectrum =
          coefficients_to_spectrum(sol.coefficients, cfg.aoa_grid, cfg.toa_grid);
    } else {
      const sparse::GroupSolveResult sol =
          sparse::solve_group_l1(op, red.reduced, solver, ctx.pool);
      out.solver_iterations = sol.iterations;
      out.solver_converged = sol.converged;
      out.spectrum = coefficients_to_spectrum(sol.x, cfg.aoa_grid, cfg.toa_grid);
    }
  }
  extract_paths(out, cfg, dsp::aoa_wrap_period(cfg.aoa_grid, array_cfg));
  return out;
}

std::vector<RoArrayResult> roarray_estimate_batch(
    std::span<const CsiBurst> bursts, const RoArrayConfig& cfg,
    const dsp::ArrayConfig& array_cfg, const runtime::EstimateContext& ctx) {
  std::vector<RoArrayResult> results(bursts.size());
  if (bursts.empty()) return results;
  // Warm the cache before fanning out so workers share one entry
  // instead of stalling on the first-touch build.
  if (ctx.cache != nullptr) {
    (void)ctx.cache->get(cfg.aoa_grid, cfg.toa_grid, array_cfg);
    if (cfg.coarse_fine.enabled) {
      (void)ctx.cache->get_coarse(cfg.aoa_grid, cfg.toa_grid, array_cfg,
                                  cfg.coarse_fine);
    }
  }
  // Per-burst estimation is independent; slot i receives burst i's
  // result, so any thread count yields the serial output exactly.
  // Inside a worker the nested per-snapshot parallelism degrades to
  // serial (see ThreadPool), keeping the fan-out deadlock-free.
  auto run_one = [&](index_t i) {
    results[static_cast<std::size_t>(i)] =
        roarray_estimate(bursts[static_cast<std::size_t>(i)], cfg, array_cfg, ctx);
  };
  if (ctx.pool != nullptr) {
    ctx.pool->parallel_for(static_cast<index_t>(bursts.size()), run_one);
  } else {
    for (index_t i = 0; i < static_cast<index_t>(bursts.size()); ++i) run_one(i);
  }
  return results;
}

dsp::Spectrum1d roarray_aoa_spectrum(const CMat& csi, const dsp::Grid& aoa_grid,
                                     const dsp::ArrayConfig& array_cfg,
                                     const sparse::SolveConfig& solver) {
  if (csi.rows() != array_cfg.num_antennas) {
    throw std::invalid_argument("roarray_aoa_spectrum: CSI rows != antennas");
  }
  const sparse::DenseOperator op(dsp::steering_matrix_aoa(aoa_grid, array_cfg));
  // Every subcarrier is one spatial snapshot; the row-sparse solution's
  // row norms are the AoA spectrum.
  const sparse::GroupSolveResult sol = sparse::solve_group_l1(op, csi, solver);

  dsp::Spectrum1d out;
  out.grid = aoa_grid;
  out.values = linalg::RVec(aoa_grid.size());
  for (index_t i = 0; i < aoa_grid.size(); ++i) {
    double row_sq = 0.0;
    for (index_t k = 0; k < sol.x.cols(); ++k) row_sq += std::norm(sol.x(i, k));
    out.values[i] = std::sqrt(row_sq);
  }
  out.normalize();
  return out;
}

}  // namespace roarray::core
