// Streaming facade: accumulates CSI packets as they arrive (e.g. from a
// live capture) in a sliding window and re-runs the fused ROArray
// estimate on demand — the "works with one or a limited number of
// packets" operating mode, packaged for online use.
#pragma once

#include <deque>
#include <optional>

#include "core/roarray.hpp"

namespace roarray::core {

struct TrackerConfig {
  RoArrayConfig estimator;
  dsp::ArrayConfig array;
  /// Sliding-window capacity; older packets are evicted. Must be >= 1.
  index_t window_packets = 15;
};

/// Accumulates packets and produces fused estimates over the current
/// window. Estimates are cached until the window content changes.
class RoArrayTracker {
 public:
  explicit RoArrayTracker(TrackerConfig cfg);

  /// Adds one CSI packet (M x L); evicts the oldest beyond the window.
  /// Throws std::invalid_argument on a shape mismatch.
  void push(const linalg::CMat& csi);

  /// Number of packets currently in the window.
  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(window_.size());
  }

  /// Removes all buffered packets (and the cached estimate).
  void reset();

  /// Fused estimate over the current window; std::nullopt when empty.
  /// Cached: repeated calls without new packets are free.
  [[nodiscard]] std::optional<RoArrayResult> estimate();

 private:
  TrackerConfig cfg_;
  std::deque<linalg::CMat> window_;
  std::optional<RoArrayResult> cached_;
};

}  // namespace roarray::core
