#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/roarray.hpp"
#include "music/covariance.hpp"
#include "music/music.hpp"

namespace roarray::core {

using linalg::CMat;
using linalg::cxd;
using linalg::index_t;

CMat apply_phase_correction(const CMat& csi, std::span<const double> offsets_rad) {
  if (static_cast<index_t>(offsets_rad.size()) != csi.rows()) {
    throw std::invalid_argument("apply_phase_correction: offset count mismatch");
  }
  CMat out = csi;
  for (index_t a = 0; a < csi.rows(); ++a) {
    const cxd rot = std::polar(1.0, -offsets_rad[static_cast<std::size_t>(a)]);
    for (index_t s = 0; s < csi.cols(); ++s) out(a, s) *= rot;
  }
  return out;
}

namespace {

/// Spectrum concentration at the known calibration direction: the value
/// of the (peak-normalized) spectrum near known_aoa divided by the
/// spectrum mean. Correct offsets re-align the antenna phases, moving
/// the dominant peak onto the known direction and sharpening it.
double concentration_at(const dsp::Spectrum1d& spec, index_t target_idx) {
  double mean = 0.0;
  for (index_t i = 0; i < spec.values.size(); ++i) mean += spec.values[i];
  mean /= std::max<double>(1.0, static_cast<double>(spec.values.size()));
  if (mean <= 0.0) return 0.0;
  // Neighbor cells count at reduced weight: tolerates an off-grid truth
  // without flattening the objective around the optimum.
  double v = spec.values[target_idx];
  double nb = 0.0;
  if (target_idx > 0) nb = std::max(nb, spec.values[target_idx - 1]);
  if (target_idx + 1 < spec.values.size()) {
    nb = std::max(nb, spec.values[target_idx + 1]);
  }
  v = std::max(v, 0.6 * nb);
  return v / mean;
}

/// Objective: average concentration over the calibration packets, after
/// correcting with the candidate offsets.
class Objective {
 public:
  Objective(std::span<const CMat> packets, double known_aoa_deg,
            const dsp::ArrayConfig& array_cfg, const CalibrationConfig& cfg)
      : packets_(packets),
        target_idx_(cfg.aoa_grid.nearest_index(known_aoa_deg)),
        array_cfg_(array_cfg),
        cfg_(cfg) {}

  [[nodiscard]] double evaluate(const std::vector<double>& offsets) const {
    const index_t n = std::min<index_t>(cfg_.max_packets,
                                        static_cast<index_t>(packets_.size()));
    double acc = 0.0;
    for (index_t p = 0; p < n; ++p) {
      const CMat corrected = apply_phase_correction(
          packets_[static_cast<std::size_t>(p)], offsets);
      if (cfg_.method == CalibrationMethod::kRoArray) {
        const dsp::Spectrum1d spec = roarray_aoa_spectrum(
            corrected, cfg_.aoa_grid, array_cfg_, cfg_.solver);
        acc += concentration_at(spec, target_idx_);
      } else {
        // No forward-backward averaging here: FB assumes a
        // centro-Hermitian (already calibrated) manifold, and applying
        // it under a wrong offset hypothesis creates spurious optima.
        const CMat r = music::sample_covariance(corrected);
        const index_t k =
            std::min<index_t>(2, array_cfg_.num_antennas - 1);
        const dsp::Spectrum1d spec =
            music::music_spectrum_aoa(r, k, cfg_.aoa_grid, array_cfg_);
        acc += concentration_at(spec, target_idx_);
      }
    }
    return acc / static_cast<double>(n);
  }

 private:
  std::span<const CMat> packets_;
  index_t target_idx_;
  const dsp::ArrayConfig& array_cfg_;
  const CalibrationConfig& cfg_;
};

/// A scored offset hypothesis.
struct Candidate {
  double score = -1.0;
  std::vector<double> offsets;
};

/// Recursive grid sweep over the free offsets (antennas 1..M-1),
/// keeping the `keep` best-scoring hypotheses.
void sweep(const Objective& obj, std::vector<double>& offsets, std::size_t dim,
           const std::vector<double>& center, double lo_delta, double hi_delta,
           int steps, std::size_t keep, std::vector<Candidate>& best) {
  if (dim == offsets.size()) {
    const double score = obj.evaluate(offsets);
    if (best.size() < keep || score > best.back().score) {
      best.push_back({score, offsets});
      std::sort(best.begin(), best.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.score > b.score;
                });
      if (best.size() > keep) best.pop_back();
    }
    return;
  }
  if (dim == 0) {
    // First antenna is the phase reference.
    offsets[0] = 0.0;
    sweep(obj, offsets, 1, center, lo_delta, hi_delta, steps, keep, best);
    return;
  }
  for (int s = 0; s < steps; ++s) {
    const double frac = steps > 1 ? static_cast<double>(s) /
                                        static_cast<double>(steps - 1)
                                  : 0.5;
    offsets[dim] = center[dim] + lo_delta + frac * (hi_delta - lo_delta);
    sweep(obj, offsets, dim + 1, center, lo_delta, hi_delta, steps, keep, best);
  }
}

}  // namespace

CalibrationResult estimate_phase_offsets(std::span<const CMat> packets,
                                         double known_aoa_deg,
                                         const dsp::ArrayConfig& array_cfg,
                                         const CalibrationConfig& cfg) {
  if (packets.empty()) {
    throw std::invalid_argument("estimate_phase_offsets: no packets");
  }
  if (array_cfg.num_antennas > 4) {
    throw std::invalid_argument(
        "estimate_phase_offsets: search is exponential; supports <= 4 antennas");
  }
  if (cfg.coarse_steps < 2 || cfg.refine_levels < 0) {
    throw std::invalid_argument("estimate_phase_offsets: bad search parameters");
  }
  if (known_aoa_deg < 0.0 || known_aoa_deg > 180.0) {
    throw std::invalid_argument(
        "estimate_phase_offsets: known AoA must be in [0, 180]");
  }

  const auto m = static_cast<std::size_t>(array_cfg.num_antennas);
  const Objective obj(packets, known_aoa_deg, array_cfg, cfg);

  std::vector<double> offsets(m, 0.0);

  // Coarse pass over [0, 2 pi) per free dimension, keeping the 3 best
  // hypotheses (the objective can have near-tied local basins).
  std::vector<Candidate> coarse;
  sweep(obj, offsets, 0, std::vector<double>(m, 0.0), 0.0,
        2.0 * dsp::kPi * (1.0 - 1.0 / cfg.coarse_steps), cfg.coarse_steps,
        /*keep=*/3, coarse);

  // Refine each coarse candidate: shrink a +/- window 3x per level.
  Candidate winner;
  for (const Candidate& start : coarse) {
    std::vector<Candidate> local = {start};
    double window = 2.0 * dsp::kPi / cfg.coarse_steps;
    for (int level = 0; level < cfg.refine_levels; ++level) {
      const std::vector<double> center = local.front().offsets;
      sweep(obj, offsets, 0, center, -window, window, 5, /*keep=*/1, local);
      window /= 3.0;
    }
    if (local.front().score > winner.score) winner = local.front();
  }

  CalibrationResult out;
  out.offsets_rad = std::move(winner.offsets);
  // Report offsets wrapped into [0, 2 pi).
  for (double& o : out.offsets_rad) {
    o = std::fmod(o, 2.0 * dsp::kPi);
    if (o < 0.0) o += 2.0 * dsp::kPi;
  }
  out.sharpness = winner.score;
  return out;
}

}  // namespace roarray::core
