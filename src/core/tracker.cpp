#include "core/tracker.hpp"

#include <stdexcept>
#include <vector>

namespace roarray::core {

RoArrayTracker::RoArrayTracker(TrackerConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.array.validate();
  if (cfg_.window_packets < 1) {
    throw std::invalid_argument("RoArrayTracker: window_packets < 1");
  }
}

void RoArrayTracker::push(const linalg::CMat& csi) {
  if (csi.rows() != cfg_.array.num_antennas ||
      csi.cols() != cfg_.array.num_subcarriers) {
    throw std::invalid_argument("RoArrayTracker::push: CSI shape mismatch");
  }
  window_.push_back(csi);
  while (static_cast<index_t>(window_.size()) > cfg_.window_packets) {
    window_.pop_front();
  }
  cached_.reset();
}

void RoArrayTracker::reset() {
  window_.clear();
  cached_.reset();
}

std::optional<RoArrayResult> RoArrayTracker::estimate() {
  if (window_.empty()) return std::nullopt;
  if (!cached_) {
    const std::vector<linalg::CMat> packets(window_.begin(), window_.end());
    cached_ = roarray_estimate(packets, cfg_.estimator, cfg_.array);
  }
  return cached_;
}

}  // namespace roarray::core
