// Phase autocalibration (paper Section III-D "Phase calibration").
//
// Channel changes introduce a random static phase offset per receive
// chain; uncorrected, these offsets corrupt every AoA estimate. Like
// Phaser, calibration searches per-antenna offsets that maximize the
// concentration of an AoA spectrum at a known calibration direction (a
// transmitter at a surveyed spot — offsets alone are gauge-ambiguous: a
// linear phase ramp (0, a, 2a) across a ULA only *shifts* every AoA, so
// some reference direction is required to pin the gauge). The paper's
// Fig. 8b ablation is about *which* spectrum drives the search:
// ROArray's sparse spectrum is sharper than MUSIC's, so the objective is
// better conditioned and the offsets are identified more precisely.
#pragma once

#include <span>
#include <vector>

#include "dsp/constants.hpp"
#include "dsp/grid.hpp"
#include "linalg/matrix.hpp"
#include "sparse/fista.hpp"

namespace roarray::core {

/// Which AoA spectrum drives the sharpness objective.
enum class CalibrationMethod {
  kRoArray,  ///< sparse-recovery spectrum (this paper).
  kMusic,    ///< MUSIC spectrum (Phaser's original choice).
};

struct CalibrationConfig {
  CalibrationMethod method = CalibrationMethod::kRoArray;
  /// Coarse search steps per offset dimension over [0, 2 pi).
  int coarse_steps = 12;
  /// Refinement levels; each shrinks the step 3x around the incumbent.
  int refine_levels = 3;
  /// AoA grid for the calibration spectra (coarser than estimation).
  dsp::Grid aoa_grid = dsp::Grid(0.0, 180.0, 91);
  /// Cheap solver settings for the many candidate evaluations.
  sparse::SolveConfig solver{.max_iterations = 60, .tolerance = 1e-4};
  /// How many packets to average the sharpness objective over.
  linalg::index_t max_packets = 3;
};

struct CalibrationResult {
  /// Estimated per-antenna offsets in radians; offsets_rad[0] == 0
  /// (the first chain is the phase reference).
  std::vector<double> offsets_rad;
  double sharpness = 0.0;  ///< objective value at the optimum.
};

/// Removes known/estimated offsets: antenna m is rotated by
/// exp(-j offsets[m]). Inverse of the impairment model.
[[nodiscard]] linalg::CMat apply_phase_correction(
    const linalg::CMat& csi, std::span<const double> offsets_rad);

/// Estimates per-antenna phase offsets from calibration packets whose
/// direct path arrives from the known direction `known_aoa_deg`, by grid
/// search + refinement on the objective P(known_aoa) / mean(P). Throws
/// std::invalid_argument when there are no packets or the array has more
/// than 4 antennas (the search is exponential in antennas; the paper's
/// hardware has 3).
[[nodiscard]] CalibrationResult estimate_phase_offsets(
    std::span<const linalg::CMat> packets, double known_aoa_deg,
    const dsp::ArrayConfig& array_cfg, const CalibrationConfig& cfg = {});

}  // namespace roarray::core
