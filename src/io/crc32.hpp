// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to detect
// corruption in the on-disk CSI trace format. Table-driven and
// constexpr so the table is baked at compile time and the routines are
// usable from tests on raw byte images.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace roarray::io {

namespace detail {

[[nodiscard]] constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// Starting state for an incremental CRC-32.
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept {
  return 0xFFFFFFFFU;
}

/// Folds `n` bytes into the running state.
[[nodiscard]] constexpr std::uint32_t crc32_update(std::uint32_t state,
                                                   const unsigned char* data,
                                                   std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    state = detail::kCrc32Table[(state ^ data[i]) & 0xFFU] ^ (state >> 8);
  }
  return state;
}

/// Final xor-out step.
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFU;
}

/// One-shot CRC-32 of a byte buffer.
[[nodiscard]] constexpr std::uint32_t crc32(const unsigned char* data,
                                            std::size_t n) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, n));
}

}  // namespace roarray::io
