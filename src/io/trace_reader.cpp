#include "io/trace_reader.hpp"

#include <istream>
#include <unordered_map>
#include <utility>

#include "io/crc32.hpp"

namespace roarray::io {

const char* read_status_name(ReadStatus status) noexcept {
  switch (status) {
    case ReadStatus::kOk: return "ok";
    case ReadStatus::kEndOfTrace: return "end-of-trace";
    case ReadStatus::kTruncated: return "truncated";
    case ReadStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

TraceReader::TraceReader(std::istream& is, RecoveryMode mode)
    : is_(is), mode_(mode) {
  read_and_validate_header();
}

TraceReader::TraceReader(const std::string& path, RecoveryMode mode)
    : owned_(path, std::ios::binary), is_(owned_), mode_(mode) {
  if (!owned_) {
    throw TraceError(TraceErrorCode::kBadHeader,
                     "cannot open trace file for reading: " + path);
  }
  read_and_validate_header();
}

void TraceReader::read_and_validate_header() {
  unsigned char image[kHeaderBytes];
  is_.read(reinterpret_cast<char*>(image), kHeaderBytes);
  header_ = decode_header(image, static_cast<std::size_t>(is_.gcount()));
  record_size_ = header_.record_size_bytes();
  win_.reserve(2 * record_size_);
}

void TraceReader::ensure(std::size_t n) {
  if (available() >= n) return;
  if (head_ > 0) {
    win_.erase(win_.begin(),
               win_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  while (win_.size() < n && is_) {
    const std::size_t old = win_.size();
    const std::size_t want = n - old;
    win_.resize(old + want);
    is_.read(reinterpret_cast<char*>(win_.data() + old),
             static_cast<std::streamsize>(want));
    const auto got = static_cast<std::size_t>(is_.gcount());
    win_.resize(old + got);
    if (got == 0) break;
  }
}

void TraceReader::consume(std::size_t n) { head_ += n; }

bool TraceReader::resync() {
  // The byte at head_ begins a damaged span: skip it, then hunt for the
  // next record magic, pulling more of the stream in as needed.
  bytes_skipped_ += 1;
  consume(1);
  for (;;) {
    ensure(record_size_);
    if (available() < 4) {
      bytes_skipped_ += available();
      consume(available());
      return false;
    }
    for (std::size_t p = head_; p + 4 <= win_.size(); ++p) {
      if (wire::get_u32(win_.data() + p) == kRecordMagic) {
        bytes_skipped_ += p - head_;
        head_ = p;
        return true;
      }
    }
    // No magic in the window; keep the last 3 bytes in case a magic
    // straddles the boundary with the next read.
    const std::size_t drop = available() - 3;
    bytes_skipped_ += drop;
    consume(drop);
  }
}

ReadStatus TraceReader::next(TraceRecord& out) {
  if (latched_ != ReadStatus::kOk) return latched_;
  for (;;) {
    ensure(record_size_);
    if (available() == 0) return latch(ReadStatus::kEndOfTrace);
    if (available() < record_size_) {
      if (mode_ == RecoveryMode::kStrict) return latch(ReadStatus::kTruncated);
      bytes_skipped_ += available();
      consume(available());
      return latch(ReadStatus::kEndOfTrace);
    }
    const unsigned char* base = win_.data() + head_;
    const bool magic_ok = wire::get_u32(base) == kRecordMagic;
    const bool crc_ok =
        magic_ok && wire::get_u32(base + record_size_ - 4) ==
                        crc32(base, record_size_ - 4);
    if (!crc_ok) {
      if (mode_ == RecoveryMode::kStrict) return latch(ReadStatus::kCorrupt);
      ++records_skipped_;
      if (!resync()) return latch(ReadStatus::kEndOfTrace);
      continue;
    }
    out.ap_id = wire::get_u32(base + 4);
    out.client_id = wire::get_u64(base + 8);
    out.timestamp_tick = wire::get_u64(base + 16);
    out.snr_db = wire::get_f64(base + 24);
    const auto rows = static_cast<index_t>(header_.num_antennas);
    const auto cols = static_cast<index_t>(header_.num_subcarriers);
    out.csi = linalg::CMat(rows, cols);
    const unsigned char* p = base + 32;
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        const double re = wire::get_f64(p);
        const double im = wire::get_f64(p + 8);
        out.csi(i, j) = linalg::cxd(re, im);
        p += 16;
      }
    }
    consume(record_size_);
    ++records_read_;
    return ReadStatus::kOk;
  }
}

std::vector<ClientRound> read_client_rounds(TraceReader& reader) {
  std::vector<ClientRound> rounds;
  std::unordered_map<std::uint64_t, std::size_t> round_of;
  TraceRecord rec;
  for (;;) {
    const ReadStatus status = reader.next(rec);
    if (status == ReadStatus::kEndOfTrace) break;
    if (status == ReadStatus::kTruncated) {
      throw TraceError(TraceErrorCode::kTruncatedRecord,
                       "trace ended mid-record after " +
                           std::to_string(reader.records_read()) + " records");
    }
    if (status == ReadStatus::kCorrupt) {
      throw TraceError(TraceErrorCode::kCorruptRecord,
                       "corrupt trace record after " +
                           std::to_string(reader.records_read()) + " records");
    }
    auto [it, inserted] = round_of.try_emplace(rec.client_id, rounds.size());
    if (inserted) {
      rounds.emplace_back();
      rounds.back().client_id = rec.client_id;
      rounds.back().first_tick = rec.timestamp_tick;
    }
    ClientRound& round = rounds[it->second];
    std::size_t ap_slot = round.ap_ids.size();
    for (std::size_t k = 0; k < round.ap_ids.size(); ++k) {
      if (round.ap_ids[k] == rec.ap_id) {
        ap_slot = k;
        break;
      }
    }
    if (ap_slot == round.ap_ids.size()) {
      round.ap_ids.push_back(rec.ap_id);
      round.bursts.emplace_back();
      round.snr_db.push_back(rec.snr_db);
    }
    round.bursts[ap_slot].push_back(std::move(rec.csi));
  }
  return rounds;
}

}  // namespace roarray::io
