// Streaming CSI trace writer: header on construction, one fixed-size
// CRC-protected record per append, bounded memory (a single reused
// record buffer regardless of trace length). See format.hpp for the
// byte layout.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/format.hpp"

namespace roarray::io {

class TraceWriter {
 public:
  /// Writes the header for `array_cfg` to `os`. The stream must be
  /// binary-clean (no text translation); it is borrowed, not owned.
  /// Throws TraceError(kWriteFailed) if the header cannot be written.
  TraceWriter(std::ostream& os, const dsp::ArrayConfig& array_cfg);

  /// Opens `path` (truncating) and writes the header. Throws
  /// TraceError(kWriteFailed) when the file cannot be opened.
  TraceWriter(const std::string& path, const dsp::ArrayConfig& array_cfg);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one record. The CSI matrix must match the header geometry
  /// (TraceError(kGeometryMismatch) otherwise); stream failures throw
  /// TraceError(kWriteFailed).
  void append(const TraceRecord& record);

  /// Flushes the underlying stream; throws TraceError(kWriteFailed) if
  /// the stream is in a failed state afterwards.
  void flush();

  [[nodiscard]] const TraceHeader& header() const noexcept { return header_; }
  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_;
  }

 private:
  void write_header();

  std::ofstream owned_;  ///< backing file for the path constructor.
  std::ostream& os_;
  TraceHeader header_;
  std::vector<unsigned char> buf_;  ///< reused per-record scratch.
  std::uint64_t records_ = 0;
};

}  // namespace roarray::io
