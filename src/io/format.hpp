// On-disk CSI packet-trace format shared by TraceWriter / TraceReader.
//
// A trace is one 64-byte file header followed by zero or more
// fixed-size records. Everything multi-byte is little-endian on disk
// regardless of host endianness (serialized byte-by-byte, doubles as
// their IEEE-754 bit patterns, so CSI values round-trip bit-exactly).
//
// File header (64 bytes):
//   offset size field
//   0      8    magic "ROARRCSI"
//   8      4    version (u32, currently 1)
//   12     4    header_size (u32, = 64; lets future versions grow)
//   16     4    num_antennas M (u32)
//   20     4    num_subcarriers L (u32)
//   24     8    wavelength_m (f64)
//   32     8    antenna_spacing_m (f64)
//   40     8    subcarrier_spacing_hz (f64)
//   48     8    reserved (u64, 0)
//   56     4    reserved (u32, 0)
//   60     4    CRC-32 of bytes [0, 60)
//
// Record (36 + 16*M*L bytes):
//   offset      size    field
//   0           4       record magic (u32, "RTRC" on disk) — resync anchor
//   4           4       ap_id (u32)
//   8           8       client_id (u64)
//   16          8       timestamp_tick (u64) — caller-supplied logical time
//   24          8       snr_db (f64)
//   32          16*M*L  CSI matrix, column-major (antenna-fastest, the
//                       same layout as linalg::Matrix): per element
//                       re (f64) then im (f64)
//   32 + 16*M*L 4       CRC-32 of bytes [0, 32 + 16*M*L) — i.e. every
//                       record byte before the CRC field, magic included
//
// Versioning policy: the version is bumped whenever any byte layout
// above changes; readers reject (typed error, never a guess) any
// version they were not built for. See DESIGN.md §9.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "dsp/constants.hpp"
#include "linalg/matrix.hpp"

namespace roarray::io {

using linalg::index_t;

/// "ROARRCSI" read as a little-endian u64.
inline constexpr std::uint64_t kTraceMagic = 0x4953435252414F52ULL;
inline constexpr std::uint32_t kTraceVersion = 1;
/// "RTRC" on disk when written little-endian.
inline constexpr std::uint32_t kRecordMagic = 0x43525452U;

inline constexpr std::size_t kHeaderBytes = 64;
/// Record bytes that are not CSI payload: magic + ids + tick + snr + CRC.
inline constexpr std::size_t kRecordOverheadBytes = 36;
/// Geometry bound a well-formed header must respect; guards the reader
/// against allocating absurd buffers from a corrupted header.
inline constexpr std::uint32_t kMaxDimension = 4096;

/// Everything that can go wrong with a trace, as a typed code so
/// callers can branch without parsing message strings.
enum class TraceErrorCode {
  kBadMagic,          ///< file does not start with the trace magic.
  kVersionMismatch,   ///< written by an incompatible format version.
  kBadHeader,         ///< header truncated, CRC-corrupt, or nonsensical.
  kGeometryMismatch,  ///< record CSI shape does not match the header.
  kWriteFailed,       ///< output stream / file failure.
  kTruncatedRecord,   ///< stream ended mid-record (strict-mode read).
  kCorruptRecord,     ///< record magic or CRC mismatch (strict-mode read).
};

[[nodiscard]] const char* trace_error_name(TraceErrorCode code) noexcept;

/// Typed trace failure. Thrown for header / usage / stream errors;
/// per-record data errors are reported as ReadStatus by the reader
/// (and only escalate to this from convenience wrappers).
class TraceError : public std::runtime_error {
 public:
  TraceError(TraceErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] TraceErrorCode code() const noexcept { return code_; }

 private:
  TraceErrorCode code_;
};

/// Decoded file header: the array geometry every record's CSI matrix
/// must match.
struct TraceHeader {
  std::uint32_t version = kTraceVersion;
  std::uint32_t num_antennas = 0;
  std::uint32_t num_subcarriers = 0;
  double wavelength_m = 0.0;
  double antenna_spacing_m = 0.0;
  double subcarrier_spacing_hz = 0.0;

  [[nodiscard]] static TraceHeader of(const dsp::ArrayConfig& array_cfg);

  /// The ArrayConfig a replaying consumer should estimate with.
  [[nodiscard]] dsp::ArrayConfig array_config() const;

  /// Fixed per-record size implied by the geometry.
  [[nodiscard]] std::size_t record_size_bytes() const noexcept {
    return kRecordOverheadBytes +
           16U * static_cast<std::size_t>(num_antennas) *
               static_cast<std::size_t>(num_subcarriers);
  }
};

/// One CSI packet observation: which AP heard which client when, at
/// what SNR, and the M x L CSI matrix the receiver reported.
/// `timestamp_tick` is a caller-defined logical time (the library never
/// reads a clock); recorders typically use packet indices and services
/// map ticks to whatever real time base drives them.
struct TraceRecord {
  std::uint32_t ap_id = 0;
  std::uint64_t client_id = 0;
  std::uint64_t timestamp_tick = 0;
  double snr_db = 0.0;
  linalg::CMat csi;
};

namespace wire {

/// Little-endian byte codec. Append-to-vector on the write side,
/// pointer reads on the read side; doubles travel as their IEEE-754
/// bit patterns (bit-exact round trip, including non-finite values).
inline void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  out.push_back(static_cast<unsigned char>(v & 0xFFU));
  out.push_back(static_cast<unsigned char>((v >> 8) & 0xFFU));
  out.push_back(static_cast<unsigned char>((v >> 16) & 0xFFU));
  out.push_back(static_cast<unsigned char>((v >> 24) & 0xFFU));
}

inline void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xFFU));
  }
}

inline void put_f64(std::vector<unsigned char>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

[[nodiscard]] inline std::uint32_t get_u32(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] inline std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] inline double get_f64(const unsigned char* p) noexcept {
  return std::bit_cast<double>(get_u64(p));
}

}  // namespace wire

/// Serializes the 64-byte header image (CRC included).
[[nodiscard]] std::vector<unsigned char> encode_header(const TraceHeader& h);

/// Parses and validates a 64-byte header image. Throws TraceError
/// (kBadMagic / kVersionMismatch / kBadHeader) on any defect.
[[nodiscard]] TraceHeader decode_header(const unsigned char* bytes,
                                        std::size_t n);

}  // namespace roarray::io
