#include "io/trace_writer.hpp"

#include <ostream>

#include "io/crc32.hpp"

namespace roarray::io {

TraceWriter::TraceWriter(std::ostream& os, const dsp::ArrayConfig& array_cfg)
    : os_(os), header_(TraceHeader::of(array_cfg)) {
  write_header();
}

TraceWriter::TraceWriter(const std::string& path,
                         const dsp::ArrayConfig& array_cfg)
    : owned_(path, std::ios::binary | std::ios::trunc),
      os_(owned_),
      header_(TraceHeader::of(array_cfg)) {
  if (!owned_) {
    throw TraceError(TraceErrorCode::kWriteFailed,
                     "cannot open trace file for writing: " + path);
  }
  write_header();
}

void TraceWriter::write_header() {
  const std::vector<unsigned char> image = encode_header(header_);
  os_.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  if (!os_) {
    throw TraceError(TraceErrorCode::kWriteFailed,
                     "writing trace header failed");
  }
}

void TraceWriter::append(const TraceRecord& record) {
  const auto rows = static_cast<index_t>(header_.num_antennas);
  const auto cols = static_cast<index_t>(header_.num_subcarriers);
  if (record.csi.rows() != rows || record.csi.cols() != cols) {
    throw TraceError(
        TraceErrorCode::kGeometryMismatch,
        "record CSI is " + std::to_string(record.csi.rows()) + "x" +
            std::to_string(record.csi.cols()) + " but the trace header says " +
            std::to_string(rows) + "x" + std::to_string(cols));
  }
  buf_.clear();
  buf_.reserve(header_.record_size_bytes());
  wire::put_u32(buf_, kRecordMagic);
  wire::put_u32(buf_, record.ap_id);
  wire::put_u64(buf_, record.client_id);
  wire::put_u64(buf_, record.timestamp_tick);
  wire::put_f64(buf_, record.snr_db);
  // Column-major (antenna-fastest), matching linalg::Matrix storage.
  for (index_t j = 0; j < cols; ++j) {
    for (index_t i = 0; i < rows; ++i) {
      const linalg::cxd v = record.csi(i, j);
      wire::put_f64(buf_, v.real());
      wire::put_f64(buf_, v.imag());
    }
  }
  wire::put_u32(buf_, crc32(buf_.data(), buf_.size()));
  os_.write(reinterpret_cast<const char*>(buf_.data()),
            static_cast<std::streamsize>(buf_.size()));
  if (!os_) {
    throw TraceError(TraceErrorCode::kWriteFailed,
                     "writing trace record " + std::to_string(records_) +
                         " failed");
  }
  ++records_;
}

void TraceWriter::flush() {
  os_.flush();
  if (!os_) {
    throw TraceError(TraceErrorCode::kWriteFailed, "flushing trace failed");
  }
}

}  // namespace roarray::io
