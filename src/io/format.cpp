#include "io/format.hpp"

#include <cmath>

#include "io/crc32.hpp"

namespace roarray::io {

const char* trace_error_name(TraceErrorCode code) noexcept {
  switch (code) {
    case TraceErrorCode::kBadMagic: return "bad-magic";
    case TraceErrorCode::kVersionMismatch: return "version-mismatch";
    case TraceErrorCode::kBadHeader: return "bad-header";
    case TraceErrorCode::kGeometryMismatch: return "geometry-mismatch";
    case TraceErrorCode::kWriteFailed: return "write-failed";
    case TraceErrorCode::kTruncatedRecord: return "truncated-record";
    case TraceErrorCode::kCorruptRecord: return "corrupt-record";
  }
  return "unknown";
}

TraceHeader TraceHeader::of(const dsp::ArrayConfig& array_cfg) {
  array_cfg.validate();
  if (array_cfg.num_antennas > static_cast<index_t>(kMaxDimension) ||
      array_cfg.num_subcarriers > static_cast<index_t>(kMaxDimension)) {
    throw TraceError(TraceErrorCode::kBadHeader,
                     "TraceHeader: array geometry exceeds format bounds");
  }
  TraceHeader h;
  h.num_antennas = static_cast<std::uint32_t>(array_cfg.num_antennas);
  h.num_subcarriers = static_cast<std::uint32_t>(array_cfg.num_subcarriers);
  h.wavelength_m = array_cfg.wavelength_m;
  h.antenna_spacing_m = array_cfg.antenna_spacing_m;
  h.subcarrier_spacing_hz = array_cfg.subcarrier_spacing_hz;
  return h;
}

dsp::ArrayConfig TraceHeader::array_config() const {
  dsp::ArrayConfig cfg;
  cfg.num_antennas = static_cast<index_t>(num_antennas);
  cfg.num_subcarriers = static_cast<index_t>(num_subcarriers);
  cfg.wavelength_m = wavelength_m;
  cfg.antenna_spacing_m = antenna_spacing_m;
  cfg.subcarrier_spacing_hz = subcarrier_spacing_hz;
  return cfg;
}

std::vector<unsigned char> encode_header(const TraceHeader& h) {
  std::vector<unsigned char> out;
  out.reserve(kHeaderBytes);
  wire::put_u64(out, kTraceMagic);
  wire::put_u32(out, h.version);
  wire::put_u32(out, static_cast<std::uint32_t>(kHeaderBytes));
  wire::put_u32(out, h.num_antennas);
  wire::put_u32(out, h.num_subcarriers);
  wire::put_f64(out, h.wavelength_m);
  wire::put_f64(out, h.antenna_spacing_m);
  wire::put_f64(out, h.subcarrier_spacing_hz);
  wire::put_u64(out, 0);  // reserved
  wire::put_u32(out, 0);  // reserved
  wire::put_u32(out, crc32(out.data(), out.size()));
  return out;
}

TraceHeader decode_header(const unsigned char* bytes, std::size_t n) {
  if (n < kHeaderBytes) {
    throw TraceError(TraceErrorCode::kBadHeader,
                     "trace header truncated: " + std::to_string(n) + " of " +
                         std::to_string(kHeaderBytes) + " bytes");
  }
  if (wire::get_u64(bytes) != kTraceMagic) {
    throw TraceError(TraceErrorCode::kBadMagic,
                     "not a ROArray CSI trace (magic mismatch)");
  }
  const std::uint32_t version = wire::get_u32(bytes + 8);
  if (version != kTraceVersion) {
    throw TraceError(TraceErrorCode::kVersionMismatch,
                     "trace format version " + std::to_string(version) +
                         " is not the supported version " +
                         std::to_string(kTraceVersion));
  }
  const std::uint32_t stored_crc = wire::get_u32(bytes + kHeaderBytes - 4);
  if (crc32(bytes, kHeaderBytes - 4) != stored_crc) {
    throw TraceError(TraceErrorCode::kBadHeader, "trace header CRC mismatch");
  }
  TraceHeader h;
  h.version = version;
  const std::uint32_t header_size = wire::get_u32(bytes + 12);
  h.num_antennas = wire::get_u32(bytes + 16);
  h.num_subcarriers = wire::get_u32(bytes + 20);
  h.wavelength_m = wire::get_f64(bytes + 24);
  h.antenna_spacing_m = wire::get_f64(bytes + 32);
  h.subcarrier_spacing_hz = wire::get_f64(bytes + 40);
  if (header_size != kHeaderBytes || h.num_antennas == 0 ||
      h.num_subcarriers == 0 || h.num_antennas > kMaxDimension ||
      h.num_subcarriers > kMaxDimension || !std::isfinite(h.wavelength_m) ||
      !std::isfinite(h.antenna_spacing_m) ||
      !std::isfinite(h.subcarrier_spacing_hz) || h.wavelength_m <= 0.0 ||
      h.antenna_spacing_m <= 0.0 || h.subcarrier_spacing_hz <= 0.0) {
    throw TraceError(TraceErrorCode::kBadHeader,
                     "trace header carries nonsensical geometry");
  }
  return h;
}

}  // namespace roarray::io
