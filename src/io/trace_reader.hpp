// Streaming CSI trace reader: validates the header up front (typed
// errors for bad magic / version mismatch / corrupt headers), then
// yields records one at a time with bounded memory. Truncation and
// per-record corruption are detected via the fixed record size and the
// per-record CRC; strict mode reports them as statuses, recovery mode
// scans forward to the next record magic and keeps going.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/format.hpp"

namespace roarray::io {

/// Outcome of one TraceReader::next call.
enum class ReadStatus {
  kOk,          ///< a record was decoded into the output argument.
  kEndOfTrace,  ///< clean end: the stream ended on a record boundary.
  kTruncated,   ///< stream ended mid-record (strict mode only).
  kCorrupt,     ///< record magic or CRC mismatch (strict mode only).
};

[[nodiscard]] const char* read_status_name(ReadStatus status) noexcept;

/// What to do when a record fails its integrity checks.
enum class RecoveryMode {
  kStrict,       ///< report the defect; the reader latches the error.
  kSkipCorrupt,  ///< resync on the next record magic and keep reading.
};

class TraceReader {
 public:
  /// Reads and validates the header from `is` (borrowed, binary-clean).
  /// Throws TraceError on kBadMagic / kVersionMismatch / kBadHeader.
  explicit TraceReader(std::istream& is,
                       RecoveryMode mode = RecoveryMode::kStrict);

  /// Opens `path` and validates the header. Additionally throws
  /// TraceError(kBadHeader) when the file cannot be opened.
  explicit TraceReader(const std::string& path,
                       RecoveryMode mode = RecoveryMode::kStrict);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] const TraceHeader& header() const noexcept { return header_; }
  [[nodiscard]] dsp::ArrayConfig array_config() const {
    return header_.array_config();
  }

  /// Advances to the next record. Returns kOk and fills `out`, or a
  /// terminal status. In strict mode the first kTruncated / kCorrupt
  /// latches: every later call reports the same status. In recovery
  /// mode those statuses never surface — damaged spans are skipped
  /// (counted in records_skipped / bytes_skipped) and only kOk or
  /// kEndOfTrace is returned.
  [[nodiscard]] ReadStatus next(TraceRecord& out);

  [[nodiscard]] std::uint64_t records_read() const noexcept {
    return records_read_;
  }
  /// Damaged records dropped by recovery mode (0 in strict mode).
  [[nodiscard]] std::uint64_t records_skipped() const noexcept {
    return records_skipped_;
  }
  /// Bytes discarded while resyncing (0 in strict mode).
  [[nodiscard]] std::uint64_t bytes_skipped() const noexcept {
    return bytes_skipped_;
  }

 private:
  void read_and_validate_header();
  [[nodiscard]] std::size_t available() const noexcept {
    return win_.size() - head_;
  }
  /// Tops the window up to `n` unconsumed bytes (stops early at EOF).
  void ensure(std::size_t n);
  void consume(std::size_t n);
  /// Recovery transition: drop `parsed_from` bytes ahead of head_ while
  /// hunting for the next record magic; positions head_ on it. Returns
  /// false when the stream ends first (everything left is discarded).
  [[nodiscard]] bool resync();
  [[nodiscard]] ReadStatus latch(ReadStatus status) {
    latched_ = status;
    return status;
  }

  std::ifstream owned_;  ///< backing file for the path constructor.
  std::istream& is_;
  RecoveryMode mode_;
  TraceHeader header_;
  std::size_t record_size_ = 0;
  std::vector<unsigned char> win_;  ///< read window; bounded by record size.
  std::size_t head_ = 0;            ///< first unconsumed byte in win_.
  ReadStatus latched_ = ReadStatus::kOk;
  std::uint64_t records_read_ = 0;
  std::uint64_t records_skipped_ = 0;
  std::uint64_t bytes_skipped_ = 0;
};

/// One client's grouped measurement round, reassembled from a trace:
/// per contacted AP (first-appearance order) the burst of CSI packets
/// in record order. This is the unit a LocalizationService request
/// replays.
struct ClientRound {
  std::uint64_t client_id = 0;
  std::uint64_t first_tick = 0;
  std::vector<std::uint32_t> ap_ids;               ///< parallel to bursts.
  std::vector<std::vector<linalg::CMat>> bursts;   ///< packets per AP.
  std::vector<double> snr_db;                      ///< first-packet SNR per AP.
};

/// Drains `reader`, grouping records into per-client rounds (clients in
/// first-appearance order). In strict mode a damaged record throws
/// TraceError (kTruncatedRecord / kCorruptRecord); in recovery mode
/// damaged spans are skipped by the reader and this never throws.
[[nodiscard]] std::vector<ClientRound> read_client_rounds(TraceReader& reader);

}  // namespace roarray::io
