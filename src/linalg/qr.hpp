// Householder QR decomposition and QR-based linear solves (complex).
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::linalg {

/// Thin QR factorization A = Q R with Q (m x n, orthonormal columns)
/// and R (n x n, upper triangular). Requires m >= n.
struct QrResult {
  CMat q;  ///< m x n with orthonormal columns (Q^H Q = I).
  CMat r;  ///< n x n upper triangular.
};

/// Computes the thin Householder QR factorization of a (m >= n).
/// Throws std::invalid_argument if m < n.
[[nodiscard]] QrResult qr(const CMat& a);

/// Solves the least-squares problem min_x ||A x - b||_2 for full-column-rank
/// A (m >= n) via Householder QR. Throws std::invalid_argument on shape
/// mismatch and std::domain_error if A is numerically rank deficient.
[[nodiscard]] CVec lstsq(const CMat& a, const CVec& b);

/// Solves the square system A x = b via QR. Throws std::domain_error if A
/// is numerically singular.
[[nodiscard]] CVec solve(const CMat& a, const CVec& b);

/// Solves A X = B for a square A and multiple right-hand sides.
[[nodiscard]] CMat solve(const CMat& a, const CMat& b);

}  // namespace roarray::linalg
