// Pluggable compute backends for the complex kernel hot path.
//
// A Backend is a table of raw-buffer kernels (GEMM microkernels, the
// soft-threshold / group-prox element passes, and the steering-vector
// phase recurrences). The `scalar` table holds today's hand-separated
// real-arithmetic loops, extracted verbatim from gemm.cpp / prox.hpp /
// steering.cpp; the `simd` table hand-vectorizes the same kernels
// (AVX2+FMA on x86-64, NEON on aarch64) behind compile-time feature
// macros with a runtime CPU check, so a binary built with the SIMD
// translation units still runs on machines without the vector units.
//
// Selection is process-global and resolved once: callers reach the
// active table through active(), or pass an explicit table to the
// kernel entry points (gemm, soft_threshold_inplace, ...) for
// differential testing. ROARRAY_BACKEND=scalar|simd|auto overrides the
// default (auto). Selection is deliberately NOT per-request: operator
// caches and pool workers are shared across requests, and mixing
// backends inside one process would let a cached Gram matrix or
// Lipschitz constant disagree with the kernels consuming it. A device
// backend (CUDA) would slot in as another table plus a memory-space
// contract; see DESIGN.md "Compute backends".
//
// Determinism contract per table:
//   * Every kernel is bit-identical across thread counts (the tile
//     partition and reduction order never depend on the pool), for the
//     scalar AND the simd table alike.
//   * The scalar table reproduces the pre-backend kernels bit-for-bit
//     (the loops moved, the arithmetic did not).
//   * scalar vs simd may differ only to rounding: the simd kernels keep
//     ascending-k traversal but may round differently (FMA contraction,
//     lane-split partial sums in gemm_adj_tile, squared-magnitude
//     threshold compare in soft_threshold). Per-kernel tolerances are
//     documented next to each pointer and enforced by
//     tests/linalg/test_backend.cpp.
#pragma once

#include "linalg/types.hpp"

namespace roarray::linalg::backend {

/// Outputs with at most this many rows use the fixed-height column
/// kernel (`gemm_cols`) instead of the generic tile.
inline constexpr index_t kSmallRowLimit = 16;

/// Reductions at most this deep use the fixed-depth column kernel
/// (`gemm_cols_depth`) when the row count is too large for the
/// fixed-height one.
inline constexpr index_t kSmallDepthLimit = 8;

/// Function-pointer table of hot kernels. All matrix arguments are raw
/// column-major interleaved (re, im) buffers; every pointer is non-null
/// in a published table.
struct Backend {
  /// Short stable identifier ("scalar", "simd-avx2", "simd-neon") —
  /// recorded in bench provenance.
  const char* name;

  /// C(i0:i1, j0:j1) += A(i0:i1, :) B(:, j0:j1); A is m x k, C is m x n.
  /// Skips exact-zero B entries (matmul's zero-skip). Reduction over k
  /// ascends for every output element. simd tolerance vs scalar is the
  /// dot-product forward-error bound gamma_k * sum |a||b| with slack
  /// for complex FMA contraction:
  /// |diff| <= 8 * eps * k * max|A| * max_j sum_l |B(l,j)| per element.
  void (*gemm_tile)(index_t i0, index_t i1, index_t j0, index_t j1,
                    index_t m, index_t k, const cxd* a, const cxd* b, cxd* c);

  /// C(:, j0:j1) = A B(:, j0:j1) for m <= kSmallRowLimit (overwrites,
  /// no prior memset needed). Same zero-skip and tolerance as gemm_tile.
  void (*gemm_cols)(index_t m, index_t j0, index_t j1, index_t k,
                    const cxd* a, const cxd* b, cxd* c);

  /// C(:, j0:j1) = A B(:, j0:j1) for k <= kSmallDepthLimit (overwrites).
  /// Does NOT skip zero B entries (their terms are exact +/-0); the
  /// simd kernel matches that so the two tables see the same terms.
  void (*gemm_cols_depth)(index_t m, index_t j0, index_t j1, index_t k,
                          const cxd* a, const cxd* b, cxd* c);

  /// C(i0:i1, j0:j1) = A(:, i0:i1)^H B(:, j0:j1); A is k x m', B k x n.
  /// simd may split the k reduction into a fixed number of lanes with a
  /// fixed-order horizontal reduce (still thread-count independent);
  /// tolerance vs scalar as gemm_tile.
  void (*gemm_adj_tile)(index_t i0, index_t i1, index_t j0, index_t j1,
                        index_t m, index_t k, const cxd* a, const cxd* b,
                        cxd* c);

  /// x[i] <- x[i] * max(0, 1 - t/|x[i]|), zeroing when |x[i]| <= t.
  /// simd compares squared magnitudes against t^2 (no sqrt on the
  /// shrink-to-zero branch); tolerance vs scalar: 4 * eps * |x| per
  /// element, plus one documented divergence — inputs whose squared
  /// magnitude underflows to zero (|x| < ~1.5e-154) are zeroed by simd
  /// and kept by scalar when t is smaller still.
  void (*soft_threshold)(cxd* x, index_t n, double t);

  /// acc[i] += |col[i]|^2 for one matrix column (the group-prox /
  /// l2,1-norm row sweep). Tolerance vs scalar: 2 * eps * |col[i]|^2
  /// per element per column.
  void (*row_sq_accumulate)(const cxd* col, index_t n, double* acc);

  /// col[i] *= scale[i], writing exact +0 when scale[i] < 0 (the
  /// group-prox "zero the row" marker). Bit-identical across tables.
  void (*row_scale)(cxd* col, index_t n, const double* scale);

  /// out[i] = scale * step^i via the phase recurrence lm *= step
  /// (steering vectors / dictionary factors). simd advances four
  /// elements per step with a step^4 stride; tolerance vs scalar:
  /// 2 * eps * n * |scale| per element (|step| = 1 in every caller).
  void (*phase_ramp)(cxd scale, cxd step, index_t n, cxd* out);

  /// out[i] += scale * step^i (the CSI synthesis accumulation).
  void (*phase_ramp_accum)(cxd scale, cxd step, index_t n, cxd* out);
};

/// The portable table (always available; arithmetic of the pre-backend
/// scalar kernels, bit-for-bit).
[[nodiscard]] const Backend& scalar();

/// The vectorized table compiled into this binary, or nullptr when the
/// build has no SIMD translation unit for this architecture OR the
/// running CPU lacks the required features (AVX2+FMA / NEON).
[[nodiscard]] const Backend* simd();

/// True when a SIMD translation unit was compiled into this binary,
/// independent of whether the running CPU can execute it.
[[nodiscard]] bool simd_compiled();

/// How the active table was chosen (for bench provenance and the CI
/// backend leg).
struct Dispatch {
  const Backend* selected;  ///< the table active() returns.
  const char* requested;    ///< "auto", "scalar", "simd" (env) or "force".
  bool simd_compiled;       ///< a SIMD TU exists in this binary.
  bool simd_supported;      ///< the running CPU has the features.
};

/// The process-global table: force() override if set, else the
/// ROARRAY_BACKEND environment choice, else auto (simd when supported,
/// scalar otherwise). Resolved once and cached; ROARRAY_BACKEND=simd on
/// hardware without the features falls back to scalar (recorded in
/// dispatch_info() so the CI leg can skip gracefully).
[[nodiscard]] const Backend& active();

/// Selection provenance for the current active() result.
[[nodiscard]] Dispatch dispatch_info();

/// Comma-separated vector features detected on this CPU at runtime
/// (e.g. "avx2,fma"), independent of what was compiled in. Empty string
/// when none. Stable storage (string literal).
[[nodiscard]] const char* cpu_features();

/// Test hook: force the active table (nullptr restores env/auto
/// selection). Affects the whole process; tests that force a backend
/// must restore it. Safe to call concurrently with active().
void force(const Backend* be);

}  // namespace roarray::linalg::backend
