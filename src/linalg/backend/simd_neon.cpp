// NEON (aarch64 Advanced SIMD) backend. One 128-bit vector holds one
// complex double; complex multiply-accumulate is one ext (swap) plus
// two FMAs per element. Advanced SIMD is baseline on aarch64, so there
// is no runtime feature check — backend.cpp publishes this table
// whenever the TU is compiled in.
//
// The kernels deliberately mirror the scalar table's traversal and
// zero-skip semantics entry-for-entry (no row-group skips, no lane
// splitting of reductions), so the only divergence vs scalar is FMA
// contraction rounding plus soft_threshold's documented
// squared-magnitude compare — well inside the per-kernel tolerances in
// backend.hpp.
#include "linalg/backend/backend.hpp"

#if !defined(__aarch64__)
#error "simd_neon.cpp must be compiled on aarch64"
#endif

#include <arm_neon.h>

#include <cmath>
#include <cstring>

namespace roarray::linalg::backend {

namespace {

/// acc += (ar, ai) * (br + i bi) on interleaved lanes: one lane swap,
/// two FMAs. vbi must hold {-bi, +bi}.
inline float64x2_t cmla(float64x2_t acc, float64x2_t va, double br,
                        float64x2_t vbi) {
  acc = vfmaq_n_f64(acc, va, br);
  return vfmaq_f64(acc, vextq_f64(va, va, 1), vbi);
}

void gemm_tile(index_t i0, index_t i1, index_t j0, index_t j1, index_t m,
               index_t k, const cxd* a, const cxd* b, cxd* c) {
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * k;
    double* cj = reinterpret_cast<double*>(c + j * m);
    for (index_t kk = 0; kk < k; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      if (br == 0.0 && bi == 0.0) continue;  // matmul's zero-skip
      const float64x2_t vbi = {-bi, bi};
      const double* ak = reinterpret_cast<const double*>(a + kk * m);
      for (index_t i = i0; i < i1; ++i) {
        const float64x2_t va = vld1q_f64(ak + 2 * i);
        const float64x2_t cv = vld1q_f64(cj + 2 * i);
        vst1q_f64(cj + 2 * i, cmla(cv, va, br, vbi));
      }
    }
  }
}

void gemm_cols(index_t m, index_t j0, index_t j1, index_t k, const cxd* a,
               const cxd* b, cxd* c) {
  // Whole C column accumulates in an L1-resident stack buffer (m <= 16).
  alignas(16) double acc[2 * kSmallRowLimit];
  const std::size_t bytes = static_cast<std::size_t>(2 * m) * sizeof(double);
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * k;
    std::memset(acc, 0, bytes);
    for (index_t kk = 0; kk < k; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      if (br == 0.0 && bi == 0.0) continue;  // matmul's zero-skip
      const float64x2_t vbi = {-bi, bi};
      const double* ak = reinterpret_cast<const double*>(a + kk * m);
      for (index_t i = 0; i < m; ++i) {
        const float64x2_t va = vld1q_f64(ak + 2 * i);
        const float64x2_t cv = vld1q_f64(acc + 2 * i);
        vst1q_f64(acc + 2 * i, cmla(cv, va, br, vbi));
      }
    }
    std::memcpy(c + j * m, acc, bytes);
  }
}

void gemm_cols_depth(index_t m, index_t j0, index_t j1, index_t k,
                     const cxd* a, const cxd* b, cxd* c) {
  const double* ad = reinterpret_cast<const double*>(a);
  double br[kSmallDepthLimit] = {};
  float64x2_t vbi[kSmallDepthLimit] = {};
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * k;
    for (index_t kk = 0; kk < k; ++kk) {
      br[kk] = bj[kk].real();
      const double bi = bj[kk].imag();
      vbi[kk] = float64x2_t{-bi, bi};
    }
    double* cj = reinterpret_cast<double*>(c + j * m);
    for (index_t i = 0; i < m; ++i) {
      float64x2_t accv = vdupq_n_f64(0.0);  // no zero-skip (exact +/-0 terms)
      for (index_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vld1q_f64(ad + 2 * kk * m + 2 * i);
        accv = cmla(accv, va, br[kk], vbi[kk]);
      }
      vst1q_f64(cj + 2 * i, accv);
    }
  }
}

void gemm_adj_tile(index_t i0, index_t i1, index_t j0, index_t j1,
                   index_t m, index_t k, const cxd* a, const cxd* b,
                   cxd* c) {
  for (index_t j = j0; j < j1; ++j) {
    const double* bj = reinterpret_cast<const double*>(b + j * k);
    cxd* cj = c + j * m;
    for (index_t i = i0; i < i1; ++i) {
      const double* ai = reinterpret_cast<const double*>(a + i * k);
      float64x2_t acc1 = vdupq_n_f64(0.0);  // lanes: ar*br, aim*bii
      float64x2_t acc2 = vdupq_n_f64(0.0);  // lanes: ar*bii, aim*br
      for (index_t kk = 0; kk < k; ++kk) {
        const float64x2_t va = vld1q_f64(ai + 2 * kk);
        const float64x2_t vb = vld1q_f64(bj + 2 * kk);
        acc1 = vfmaq_f64(acc1, va, vb);
        acc2 = vfmaq_f64(acc2, va, vextq_f64(vb, vb, 1));
      }
      const double sr = vgetq_lane_f64(acc1, 0) + vgetq_lane_f64(acc1, 1);
      const double si = vgetq_lane_f64(acc2, 0) - vgetq_lane_f64(acc2, 1);
      cj[i] = cxd{sr, si};
    }
  }
}

void soft_threshold(cxd* x, index_t n, double t) {
  double* xd = reinterpret_cast<double*>(x);
  const double t2 = t * t;
  for (index_t i = 0; i < n; ++i) {
    const float64x2_t va = vld1q_f64(xd + 2 * i);
    const float64x2_t sq = vmulq_f64(va, va);
    const double m2 = vpaddd_f64(sq);  // |x|^2, no sqrt on the zero branch
    if (m2 <= t2) {  // false for NaN: NaN stays on the scale branch
      vst1q_f64(xd + 2 * i, vdupq_n_f64(0.0));
    } else {
      vst1q_f64(xd + 2 * i, vmulq_n_f64(va, 1.0 - t / std::sqrt(m2)));
    }
  }
}

void row_sq_accumulate(const cxd* col, index_t n, double* acc) {
  const double* cj = reinterpret_cast<const double*>(col);
  for (index_t i = 0; i < n; ++i) {
    const float64x2_t va = vld1q_f64(cj + 2 * i);
    acc[i] += vpaddd_f64(vmulq_f64(va, va));
  }
}

void row_scale(cxd* col, index_t n, const double* scale) {
  double* cj = reinterpret_cast<double*>(col);
  for (index_t i = 0; i < n; ++i) {
    const double s = scale[i];
    if (s < 0.0) {
      vst1q_f64(cj + 2 * i, vdupq_n_f64(0.0));
    } else {
      vst1q_f64(cj + 2 * i, vmulq_n_f64(vld1q_f64(cj + 2 * i), s));
    }
  }
}

/// Two one-element chains advanced by step^2 (see the AVX2 TU for the
/// drift bound; |step| = 1 in every caller).
template <bool Accum>
void phase_ramp_impl(cxd scale, cxd step, index_t n, cxd* out) {
  const cxd p1 = scale * step;
  const cxd s2 = step * step;
  float64x2_t v0 = {scale.real(), scale.imag()};
  float64x2_t v1 = {p1.real(), p1.imag()};
  const double cr = s2.real();
  const float64x2_t vci = {-s2.imag(), s2.imag()};
  double* od = reinterpret_cast<double*>(out);
  index_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (Accum) {
      vst1q_f64(od + 2 * i, vaddq_f64(vld1q_f64(od + 2 * i), v0));
      vst1q_f64(od + 2 * i + 2, vaddq_f64(vld1q_f64(od + 2 * i + 2), v1));
    } else {
      vst1q_f64(od + 2 * i, v0);
      vst1q_f64(od + 2 * i + 2, v1);
    }
    v0 = cmla(vdupq_n_f64(0.0), v0, cr, vci);
    v1 = cmla(vdupq_n_f64(0.0), v1, cr, vci);
  }
  if (i < n) {  // odd count: one element left in the first chain
    const cxd p{vgetq_lane_f64(v0, 0), vgetq_lane_f64(v0, 1)};
    if (Accum) {
      out[i] += p;
    } else {
      out[i] = p;
    }
  }
}

void phase_ramp(cxd scale, cxd step, index_t n, cxd* out) {
  phase_ramp_impl<false>(scale, step, n, out);
}

void phase_ramp_accum(cxd scale, cxd step, index_t n, cxd* out) {
  phase_ramp_impl<true>(scale, step, n, out);
}

constexpr Backend kNeon = {
    "simd-neon",     &gemm_tile, &gemm_cols,         &gemm_cols_depth,
    &gemm_adj_tile,  &soft_threshold, &row_sq_accumulate, &row_scale,
    &phase_ramp,     &phase_ramp_accum,
};

}  // namespace

const Backend* simd_neon_table() { return &kNeon; }

}  // namespace roarray::linalg::backend
