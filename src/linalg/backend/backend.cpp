// Backend selection: force() override, else ROARRAY_BACKEND, else auto
// (simd when this binary has a SIMD table and the CPU supports it).
// Resolution happens once per process and is cached — see backend.hpp
// for why selection is deliberately process-global.
#include "linalg/backend/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace roarray::linalg::backend {

// Defined by the architecture-specific translation units; the CMake
// list adds each file (and its ROARRAY_HAVE_SIMD_* define) only when
// the target architecture and compiler support it, so these symbols
// exist exactly when the define does.
#if defined(ROARRAY_HAVE_SIMD_AVX2)
const Backend* simd_avx2_table();
#endif
#if defined(ROARRAY_HAVE_SIMD_NEON)
const Backend* simd_neon_table();
#endif

bool simd_compiled() {
#if defined(ROARRAY_HAVE_SIMD_AVX2) || defined(ROARRAY_HAVE_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

const Backend* simd() {
#if defined(ROARRAY_HAVE_SIMD_AVX2)
  // The TU is compiled with -mavx2 -mfma; the runtime check keeps the
  // binary usable on CPUs without those units.
  static const Backend* const kSimd =
      (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
          ? simd_avx2_table()
          : nullptr;
  return kSimd;
#elif defined(ROARRAY_HAVE_SIMD_NEON)
  return simd_neon_table();  // Advanced SIMD is aarch64 baseline.
#else
  return nullptr;
#endif
}

const char* cpu_features() {
#if defined(__x86_64__)
  static const char* const kFeatures = [] {
    const bool avx2 = __builtin_cpu_supports("avx2");
    const bool fma = __builtin_cpu_supports("fma");
    const bool avx512 = __builtin_cpu_supports("avx512f");
    if (avx2 && fma && avx512) return "avx2,fma,avx512f";
    if (avx2 && fma) return "avx2,fma";
    if (avx2) return "avx2";
    if (fma) return "fma";
    return "";
  }();
  return kFeatures;
#elif defined(__aarch64__)
  return "neon";
#else
  return "";
#endif
}

namespace {

enum class Request { kAuto, kScalar, kSimd };

/// Parses ROARRAY_BACKEND once. Unknown values fall back to auto (the
/// CI leg probes dispatch_info() rather than relying on errors here).
Request requested() {
  static const Request kRequest = [] {
    const char* env = std::getenv("ROARRAY_BACKEND");
    if (env == nullptr) return Request::kAuto;
    if (std::strcmp(env, "scalar") == 0) return Request::kScalar;
    if (std::strcmp(env, "simd") == 0) return Request::kSimd;
    return Request::kAuto;
  }();
  return kRequest;
}

const char* request_name(Request r) {
  switch (r) {
    case Request::kScalar: return "scalar";
    case Request::kSimd: return "simd";
    default: return "auto";
  }
}

/// The env/auto choice, resolved once. ROARRAY_BACKEND=simd on a CPU
/// without the features still yields scalar (graceful fallback,
/// recorded via dispatch_info().simd_supported).
const Backend* resolved() {
  static const Backend* const kResolved = [] {
    const Backend* vec = simd();
    if (requested() == Request::kScalar) return &scalar();
    return vec != nullptr ? vec : &scalar();
  }();
  return kResolved;
}

std::atomic<const Backend*>& force_slot() {
  static std::atomic<const Backend*> slot{nullptr};
  return slot;
}

}  // namespace

const Backend& active() {
  const Backend* forced = force_slot().load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  return *resolved();
}

Dispatch dispatch_info() {
  Dispatch d;
  d.selected = &active();
  d.requested = force_slot().load(std::memory_order_acquire) != nullptr
                    ? "force"
                    : request_name(requested());
  d.simd_compiled = simd_compiled();
  d.simd_supported = simd() != nullptr;
  return d;
}

void force(const Backend* be) {
  force_slot().store(be, std::memory_order_release);
}

}  // namespace roarray::linalg::backend
