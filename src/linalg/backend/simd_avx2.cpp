// AVX2+FMA backend. Compiled only on x86-64 with -mavx2 -mfma (the
// CMake list adds this TU per-source); backend.cpp gates table
// publication behind a runtime CPU check so the binary still runs on
// machines without the units.
//
// Layout notes. All buffers are interleaved (re, im) column-major, so
// one 256-bit lane holds two complex numbers. Two access schemes are
// used:
//   * interleaved: keep (re, im) adjacent and multiply by a broadcast
//     complex via one permute + two FMAs per vector
//     (gemm_cols/gemm_cols_depth/phase_ramp) — cheap for streaming
//     kernels whose b-scalar is reused across a whole column;
//   * planar: deinterleave four complex rows into a real and an
//     imaginary register via unpacklo/unpackhi (lane order is permuted
//     but consistent between the two, and folds back with the same
//     unpacks), so the GEMM inner loop is pure FMA with no shuffle
//     traffic (gemm_tile).
//
// Determinism: nothing here depends on the thread count — the tile
// partition comes from the caller, and every reduction (including the
// fixed-order horizontal folds in gemm_adj_tile) is a deterministic
// function of the operand shapes. Differences vs the scalar table are
// rounding-only and bounded by the per-kernel tolerances in
// backend.hpp, with two documented exceptions (squared-magnitude
// underflow in soft_threshold; zero-skip granularity in gemm_tile,
// which skips only all-zero B row groups so a zero B entry next to a
// nonzero one contributes exact +/-0 terms).
#include "linalg/backend/backend.hpp"

#if !defined(__x86_64__) || !defined(__AVX2__) || !defined(__FMA__)
#error "simd_avx2.cpp must be compiled on x86-64 with -mavx2 -mfma"
#endif

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <utility>

namespace roarray::linalg::backend {

namespace {

// k-chunk length for gemm_tile: bounds the A panel slice live in L2
// between C-accumulator spills (128 rows x 256 depth x 16 B = 512 KB
// worst case, typically far less because callers tile rows at 128).
constexpr index_t kKc = 256;

/// One j-group of the generic tile: C(i0:i1, j0..j0+NR) +=
/// A(i0:i1, kc:kend) B(kc:kend, j0..j0+NR). Four complex rows are
/// deinterleaved into planar registers; per reduction step the inner
/// body is 4 FMAs per column with no shuffles. Skips a reduction step
/// only when ALL NR b-entries are exactly zero — this still captures
/// the row-sparse iterates the zero-skip exists for (the group prox
/// zeros whole rows of B at once).
template <int NR>
void tile_panel(index_t i0, index_t i1, index_t j0, index_t kc, index_t kend,
                index_t m, index_t k, const cxd* a, const cxd* b, cxd* c) {
  // Planar repack of the B panel, once per (column group, k-chunk):
  // the i-loop below revisits every reduction step per row group, and
  // broadcasting from a hot contiguous pack beats re-reading the
  // strided B columns every time. nzf caches the zero-skip verdict.
  alignas(64) double brp[kKc * NR];
  alignas(64) double bip[kKc * NR];
  unsigned char nzf[kKc];
  const index_t klen = kend - kc;
  for (index_t kk = 0; kk < klen; ++kk) {
    bool any = false;
    for (int jj = 0; jj < NR; ++jj) {
      const cxd bv = b[(j0 + jj) * k + kc + kk];
      brp[kk * NR + jj] = bv.real();
      bip[kk * NR + jj] = bv.imag();
      any = any || bv.real() != 0.0 || bv.imag() != 0.0;
    }
    nzf[kk] = any ? 1 : 0;
  }
  // One named accumulator pair per column, fully unrolled: gcc keeps
  // named locals in ymm registers but spills a loop-indexed __m256d[NR]
  // to the stack (8 reloads + 8 stores per reduction step — measured
  // ~2x slower), so the jj loop is written out via these macros.
#define ROARRAY_TP_MAC(JJ)                                   \
  do {                                                       \
    const __m256d vbr = _mm256_broadcast_sd(brow + (JJ));    \
    const __m256d vbi = _mm256_broadcast_sd(birow + (JJ));   \
    cre##JJ = _mm256_fmadd_pd(are, vbr, cre##JJ);            \
    cre##JJ = _mm256_fnmadd_pd(aim, vbi, cre##JJ);           \
    cim##JJ = _mm256_fmadd_pd(are, vbi, cim##JJ);            \
    cim##JJ = _mm256_fmadd_pd(aim, vbr, cim##JJ);            \
  } while (0)
  // The unpacks that split (re, im) also interleave them back:
  // lo = rows i, i+1 and hi = rows i+2, i+3 in storage order.
#define ROARRAY_TP_STORE(JJ)                                           \
  do {                                                                 \
    double* cj = reinterpret_cast<double*>(c + (j0 + (JJ)) * m);       \
    const __m256d lo = _mm256_unpacklo_pd(cre##JJ, cim##JJ);           \
    const __m256d hi = _mm256_unpackhi_pd(cre##JJ, cim##JJ);           \
    _mm256_storeu_pd(cj + 2 * i,                                       \
                     _mm256_add_pd(_mm256_loadu_pd(cj + 2 * i), lo));  \
    _mm256_storeu_pd(cj + 2 * i + 4,                                   \
                     _mm256_add_pd(_mm256_loadu_pd(cj + 2 * i + 4), hi)); \
  } while (0)
  index_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    __m256d cre0 = _mm256_setzero_pd(), cim0 = _mm256_setzero_pd();
    [[maybe_unused]] __m256d cre1 = cre0, cim1 = cre0;
    [[maybe_unused]] __m256d cre2 = cre0, cim2 = cre0;
    [[maybe_unused]] __m256d cre3 = cre0, cim3 = cre0;
    for (index_t kk = 0; kk < klen; ++kk) {
      if (!nzf[kk]) continue;  // all-zero B row group: matmul's zero-skip
      const double* ak = reinterpret_cast<const double*>(a + (kc + kk) * m);
      const __m256d a0 = _mm256_loadu_pd(ak + 2 * i);
      const __m256d a1 = _mm256_loadu_pd(ak + 2 * i + 4);
      const __m256d are = _mm256_unpacklo_pd(a0, a1);  // rows i,i+2,i+1,i+3
      const __m256d aim = _mm256_unpackhi_pd(a0, a1);  // same permuted order
      const double* brow = brp + kk * NR;
      const double* birow = bip + kk * NR;
      ROARRAY_TP_MAC(0);
      if constexpr (NR > 1) ROARRAY_TP_MAC(1);
      if constexpr (NR > 2) ROARRAY_TP_MAC(2);
      if constexpr (NR > 3) ROARRAY_TP_MAC(3);
    }
    ROARRAY_TP_STORE(0);
    if constexpr (NR > 1) ROARRAY_TP_STORE(1);
    if constexpr (NR > 2) ROARRAY_TP_STORE(2);
    if constexpr (NR > 3) ROARRAY_TP_STORE(3);
  }
#undef ROARRAY_TP_MAC
#undef ROARRAY_TP_STORE
  // Row tail (i1 - i < 4): the scalar kernel restricted to these rows,
  // per-entry zero-skip and all — the same rows land here on every
  // call, so the table stays deterministic.
  for (int jj = 0; jj < NR; ++jj) {
    const cxd* bj = b + (j0 + jj) * k;
    double* cj = reinterpret_cast<double*>(c + (j0 + jj) * m);
    for (index_t kk = kc; kk < kend; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      if (br == 0.0 && bi == 0.0) continue;
      const double* ak = reinterpret_cast<const double*>(a + kk * m);
      for (index_t ii = i; ii < i1; ++ii) {
        const double ar = ak[2 * ii];
        const double ai = ak[2 * ii + 1];
        cj[2 * ii] += ar * br - ai * bi;
        cj[2 * ii + 1] += ar * bi + ai * br;
      }
    }
  }
}

// Column-chunk width for the packed fast path below: bounds the B pack
// at 2 x kKc x kJc doubles (128 KB) of stack.
constexpr index_t kJc = 32;

/// Packed fast path: C(i0:i1, jc:jc+4*ngroups) += A(i0:i1, kc:kend)
/// B(kc:kend, ...) with BOTH operands repacked planar. B is packed once
/// per (column chunk, k-chunk); each four-row A quad is packed once and
/// reused across every column group, turning the stride-m A walk into
/// contiguous aligned loads (the strided walk defeats the hardware
/// prefetcher past each 4 KB page and was the measured bottleneck).
/// Accumulation per output element is unchanged: ascending kk, one
/// visit per (element, chunk).
void tile_packed(index_t i0, index_t i1, index_t jc, index_t ngroups,
                 index_t kc, index_t kend, index_t m, index_t k,
                 const cxd* a, const cxd* b, cxd* c) {
  alignas(64) double brp[kKc * kJc];
  alignas(64) double bip[kKc * kJc];
  alignas(64) double apre[kKc * 4];
  alignas(64) double apim[kKc * 4];
  unsigned char nzf[(kJc / 4) * kKc];   // per-group zero-skip verdicts
  unsigned char nzany[kKc];             // OR over groups: skip the A pack too
  const index_t klen = kend - kc;
  std::memset(nzany, 0, static_cast<std::size_t>(klen));
  for (index_t g = 0; g < ngroups; ++g) {
    for (index_t kk = 0; kk < klen; ++kk) {
      bool any = false;
      for (index_t jj = 0; jj < 4; ++jj) {
        const cxd bv = b[(jc + 4 * g + jj) * k + kc + kk];
        brp[(g * kKc + kk) * 4 + jj] = bv.real();
        bip[(g * kKc + kk) * 4 + jj] = bv.imag();
        any = any || bv.real() != 0.0 || bv.imag() != 0.0;
      }
      nzf[g * kKc + kk] = any ? 1 : 0;
      nzany[kk] |= nzf[g * kKc + kk];
    }
  }
#define ROARRAY_TP_MAC(JJ)                                   \
  do {                                                       \
    const __m256d vbr = _mm256_broadcast_sd(brow + (JJ));    \
    const __m256d vbi = _mm256_broadcast_sd(birow + (JJ));   \
    cre##JJ = _mm256_fmadd_pd(are, vbr, cre##JJ);            \
    cre##JJ = _mm256_fnmadd_pd(aim, vbi, cre##JJ);           \
    cim##JJ = _mm256_fmadd_pd(are, vbi, cim##JJ);            \
    cim##JJ = _mm256_fmadd_pd(aim, vbr, cim##JJ);            \
  } while (0)
#define ROARRAY_TP_STORE(JJ)                                           \
  do {                                                                 \
    double* cj = reinterpret_cast<double*>(c + (j + (JJ)) * m);        \
    const __m256d lo = _mm256_unpacklo_pd(cre##JJ, cim##JJ);           \
    const __m256d hi = _mm256_unpackhi_pd(cre##JJ, cim##JJ);           \
    _mm256_storeu_pd(cj + 2 * i,                                       \
                     _mm256_add_pd(_mm256_loadu_pd(cj + 2 * i), lo));  \
    _mm256_storeu_pd(cj + 2 * i + 4,                                   \
                     _mm256_add_pd(_mm256_loadu_pd(cj + 2 * i + 4), hi)); \
  } while (0)
  index_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    // Planar A quad: rows i..i+3 of the chunk, deinterleaved once. The
    // in-lane unpack order (i, i+2, i+1, i+3) is the same one the store
    // unpacks fold back, so it never leaks. kk steps that every group
    // skips are never read (their pack slots stay stale and unread).
    for (index_t kk = 0; kk < klen; ++kk) {
      if (!nzany[kk]) continue;
      const double* ak = reinterpret_cast<const double*>(a + (kc + kk) * m);
      const __m256d a0 = _mm256_loadu_pd(ak + 2 * i);
      const __m256d a1 = _mm256_loadu_pd(ak + 2 * i + 4);
      _mm256_store_pd(apre + 4 * kk, _mm256_unpacklo_pd(a0, a1));
      _mm256_store_pd(apim + 4 * kk, _mm256_unpackhi_pd(a0, a1));
    }
    for (index_t g = 0; g < ngroups; ++g) {
      const index_t j = jc + 4 * g;
      const unsigned char* gz = nzf + g * kKc;
      const double* gbr = brp + g * kKc * 4;
      const double* gbi = bip + g * kKc * 4;
      __m256d cre0 = _mm256_setzero_pd(), cim0 = _mm256_setzero_pd();
      __m256d cre1 = cre0, cim1 = cre0;
      __m256d cre2 = cre0, cim2 = cre0;
      __m256d cre3 = cre0, cim3 = cre0;
      for (index_t kk = 0; kk < klen; ++kk) {
        if (!gz[kk]) continue;  // all-zero B row group: matmul's zero-skip
        const __m256d are = _mm256_load_pd(apre + 4 * kk);
        const __m256d aim = _mm256_load_pd(apim + 4 * kk);
        const double* brow = gbr + 4 * kk;
        const double* birow = gbi + 4 * kk;
        ROARRAY_TP_MAC(0);
        ROARRAY_TP_MAC(1);
        ROARRAY_TP_MAC(2);
        ROARRAY_TP_MAC(3);
      }
      ROARRAY_TP_STORE(0);
      ROARRAY_TP_STORE(1);
      ROARRAY_TP_STORE(2);
      ROARRAY_TP_STORE(3);
    }
  }
#undef ROARRAY_TP_MAC
#undef ROARRAY_TP_STORE
  // Row tail (i1 - i < 4): the scalar kernel restricted to these rows,
  // per-entry zero-skip and all — the same rows land here on every
  // call, so the table stays deterministic.
  for (index_t j = jc; j < jc + 4 * ngroups; ++j) {
    const cxd* bj = b + j * k;
    double* cj = reinterpret_cast<double*>(c + j * m);
    for (index_t kk = kc; kk < kend; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      if (br == 0.0 && bi == 0.0) continue;
      const double* ak = reinterpret_cast<const double*>(a + kk * m);
      for (index_t ii = i; ii < i1; ++ii) {
        const double ar = ak[2 * ii];
        const double ai = ak[2 * ii + 1];
        cj[2 * ii] += ar * br - ai * bi;
        cj[2 * ii + 1] += ar * bi + ai * br;
      }
    }
  }
}

void gemm_tile(index_t i0, index_t i1, index_t j0, index_t j1, index_t m,
               index_t k, const cxd* a, const cxd* b, cxd* c) {
  // Chunk columns (bounds the B pack) then the reduction (keeps the A
  // slice L2-resident between C-accumulator spills); per output element
  // the chunks, and the steps inside each chunk, still accumulate in
  // ascending k order, and the partition depends only on the shapes.
  for (index_t jc = j0; jc < j1; jc += kJc) {
    const index_t jend = std::min(j1, jc + kJc);
    const index_t ngroups = (jend - jc) / 4;
    const index_t jt = jc + 4 * ngroups;  // first tail column (< 4 left)
    for (index_t kc = 0; kc < k; kc += kKc) {
      const index_t kend = std::min(k, kc + kKc);
      if (ngroups > 0) {
        tile_packed(i0, i1, jc, ngroups, kc, kend, m, k, a, b, c);
      }
      switch (jend - jt) {
        case 3: tile_panel<3>(i0, i1, jt, kc, kend, m, k, a, b, c); break;
        case 2: tile_panel<2>(i0, i1, jt, kc, kend, m, k, a, b, c); break;
        case 1: tile_panel<1>(i0, i1, jt, kc, kend, m, k, a, b, c); break;
        default: break;
      }
    }
  }
}

// Sign mask [-0, +0, -0, +0]: xor-ing a broadcast bi produces
// [-bi, +bi, ...], the multiplier that turns one permute + FMA into a
// complex multiply-accumulate on interleaved lanes.
#define ROARRAY_SIGN_EVEN() _mm256_setr_pd(-0.0, 0.0, -0.0, 0.0)

/// C(:, j0:j1) = A B(:, j0:j1) for a compile-time row count M <= 16.
/// Whole C column lives in registers (ceil(M/2) vectors); per reduction
/// step: one contiguous A-column load, one in-lane permute, two FMAs
/// per vector. Zero-skip matches the scalar kernel per entry.
template <int M>
void cols_kernel(index_t j0, index_t j1, index_t k, const cxd* a,
                 const cxd* b, cxd* c) {
  constexpr int NV = M / 2;           // full 2-complex vectors
  constexpr bool kTail = (M % 2) != 0;  // odd row count: one xmm lane
  const __m256d sign = ROARRAY_SIGN_EVEN();
  const double* ad = reinterpret_cast<const double*>(a);
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * k;
    __m256d acc[NV > 0 ? NV : 1];
    for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_pd();
    [[maybe_unused]] __m128d tacc = _mm_setzero_pd();
    for (index_t kk = 0; kk < k; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      if (br == 0.0 && bi == 0.0) continue;  // matmul's zero-skip
      const __m256d vbr = _mm256_set1_pd(br);
      const __m256d vbi = _mm256_xor_pd(_mm256_set1_pd(bi), sign);
      const double* ak = ad + 2 * kk * M;
      for (int v = 0; v < NV; ++v) {
        const __m256d va = _mm256_loadu_pd(ak + 4 * v);
        acc[v] = _mm256_fmadd_pd(va, vbr, acc[v]);
        acc[v] = _mm256_fmadd_pd(_mm256_permute_pd(va, 0x5), vbi, acc[v]);
      }
      if constexpr (kTail) {
        const __m128d ta = _mm_loadu_pd(ak + 4 * NV);
        tacc = _mm_fmadd_pd(ta, _mm_set1_pd(br), tacc);
        tacc = _mm_fmadd_pd(_mm_shuffle_pd(ta, ta, 0x1),
                            _mm_setr_pd(-bi, bi), tacc);
      }
    }
    double* cj = reinterpret_cast<double*>(c + j * M);
    for (int v = 0; v < NV; ++v) _mm256_storeu_pd(cj + 4 * v, acc[v]);
    if constexpr (kTail) _mm_storeu_pd(cj + 4 * NV, tacc);
  }
}

using ColsKernel = void (*)(index_t, index_t, index_t, const cxd*,
                            const cxd*, cxd*);

template <int... Ms>
constexpr std::array<ColsKernel, sizeof...(Ms)> cols_table(
    std::integer_sequence<int, Ms...>) {
  return {&cols_kernel<Ms + 1>...};
}

constexpr auto kColsKernels =
    cols_table(std::make_integer_sequence<int, kSmallRowLimit>{});

void gemm_cols(index_t m, index_t j0, index_t j1, index_t k, const cxd* a,
               const cxd* b, cxd* c) {
  kColsKernels[static_cast<std::size_t>(m - 1)](j0, j1, k, a, b, c);
}

/// C(:, j0:j1) = A B(:, j0:j1) for k <= 8: the B factors are hoisted
/// into per-depth broadcast registers once per column, then each C
/// vector is produced in one pass over the k contiguous A columns. No
/// zero-skip, matching the scalar fixed-depth kernel (exact +/-0
/// terms).
void gemm_cols_depth(index_t m, index_t j0, index_t j1, index_t k,
                     const cxd* a, const cxd* b, cxd* c) {
  const __m256d sign = ROARRAY_SIGN_EVEN();
  const double* ad = reinterpret_cast<const double*>(a);
  __m256d vbr[kSmallDepthLimit] = {};
  __m256d vbi[kSmallDepthLimit] = {};
  __m128d tbr[kSmallDepthLimit] = {};
  __m128d tbi[kSmallDepthLimit] = {};
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * k;
    for (index_t kk = 0; kk < k; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      vbr[kk] = _mm256_set1_pd(br);
      vbi[kk] = _mm256_xor_pd(_mm256_set1_pd(bi), sign);
      tbr[kk] = _mm_set1_pd(br);
      tbi[kk] = _mm_setr_pd(-bi, bi);
    }
    double* cj = reinterpret_cast<double*>(c + j * m);
    index_t i = 0;
    for (; i + 2 <= m; i += 2) {
      __m256d acc = _mm256_setzero_pd();
      for (index_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_loadu_pd(ad + 2 * kk * m + 2 * i);
        acc = _mm256_fmadd_pd(va, vbr[kk], acc);
        acc = _mm256_fmadd_pd(_mm256_permute_pd(va, 0x5), vbi[kk], acc);
      }
      _mm256_storeu_pd(cj + 2 * i, acc);
    }
    if (i < m) {  // odd row count: final complex in an xmm lane
      __m128d acc = _mm_setzero_pd();
      for (index_t kk = 0; kk < k; ++kk) {
        const __m128d ta = _mm_loadu_pd(ad + 2 * kk * m + 2 * i);
        acc = _mm_fmadd_pd(ta, tbr[kk], acc);
        acc = _mm_fmadd_pd(_mm_shuffle_pd(ta, ta, 0x1), tbi[kk], acc);
      }
      _mm_storeu_pd(cj + 2 * i, acc);
    }
  }
}

/// C(i0:i1, j0:j1) = A(:, i0:i1)^H B(:, j0:j1). Each dot product keeps
/// two vector accumulators (aligned and swapped products) over the
/// contiguous k dimension; the horizontal fold at the end runs in one
/// fixed order, so results depend only on the shapes (NOT on the thread
/// count), but the lane-split partial sums round differently from the
/// scalar ascending sum — rounding-tolerance only.
void gemm_adj_tile(index_t i0, index_t i1, index_t j0, index_t j1,
                   index_t m, index_t k, const cxd* a, const cxd* b,
                   cxd* c) {
  const __m256d sign_odd = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
  for (index_t j = j0; j < j1; ++j) {
    const double* bj = reinterpret_cast<const double*>(b + j * k);
    cxd* cj = c + j * m;
    for (index_t i = i0; i < i1; ++i) {
      const double* ai = reinterpret_cast<const double*>(a + i * k);
      __m256d acc1 = _mm256_setzero_pd();  // lanes: ar*br, aim*bii
      __m256d acc2 = _mm256_setzero_pd();  // lanes: ar*bii, aim*br
      index_t kk = 0;
      for (; kk + 2 <= k; kk += 2) {
        const __m256d va = _mm256_loadu_pd(ai + 2 * kk);
        const __m256d vb = _mm256_loadu_pd(bj + 2 * kk);
        acc1 = _mm256_fmadd_pd(va, vb, acc1);
        acc2 = _mm256_fmadd_pd(va, _mm256_permute_pd(vb, 0x5), acc2);
      }
      // sr = sum of acc1 lanes; si = acc2 with odd lanes negated.
      acc2 = _mm256_xor_pd(acc2, sign_odd);
      const __m128d s1 = _mm_add_pd(_mm256_castpd256_pd128(acc1),
                                    _mm256_extractf128_pd(acc1, 1));
      const __m128d s2 = _mm_add_pd(_mm256_castpd256_pd128(acc2),
                                    _mm256_extractf128_pd(acc2, 1));
      double sr = _mm_cvtsd_f64(s1) + _mm_cvtsd_f64(_mm_unpackhi_pd(s1, s1));
      double si = _mm_cvtsd_f64(s2) + _mm_cvtsd_f64(_mm_unpackhi_pd(s2, s2));
      for (; kk < k; ++kk) {  // odd reduction tail
        const double ar = ai[2 * kk];
        const double aim = ai[2 * kk + 1];
        const double brr = bj[2 * kk];
        const double bii = bj[2 * kk + 1];
        sr += ar * brr + aim * bii;
        si += ar * bii - aim * brr;
      }
      cj[i] = cxd{sr, si};
    }
  }
}

/// Squared-magnitude soft threshold: |x|^2 <= t^2 replaces |x| <= t, so
/// the (common, on sparse iterates) shrink-to-zero branch never touches
/// sqrt or div — both are skipped wholesale when every lane of a vector
/// shrinks. The unordered-NaN compare keeps NaN elements on the scale
/// branch like the scalar kernel. Documented divergence: |x| small
/// enough that |x|^2 underflows to zero is shrunk here but kept by
/// scalar when t is smaller still.
void soft_threshold(cxd* x, index_t n, double t) {
  double* xd = reinterpret_cast<double*>(x);
  const double t2 = t * t;
  const __m256d vt2 = _mm256_set1_pd(t2);
  const __m256d vt = _mm256_set1_pd(t);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d va = _mm256_loadu_pd(xd + 2 * i);
    const __m256d sq = _mm256_mul_pd(va, va);
    const __m256d mag2 = _mm256_add_pd(sq, _mm256_permute_pd(sq, 0x5));
    // Keep where mag2 > t2 OR mag2 is NaN (scalar's |x| <= t is false
    // for NaN, so NaN inputs stay on the multiply branch there too).
    const __m256d keep = _mm256_cmp_pd(mag2, vt2, _CMP_NLE_UQ);
    if (_mm256_movemask_pd(keep) == 0) {
      _mm256_storeu_pd(xd + 2 * i, zero);
      continue;
    }
    const __m256d f = _mm256_sub_pd(one, _mm256_div_pd(vt, _mm256_sqrt_pd(mag2)));
    _mm256_storeu_pd(xd + 2 * i,
                     _mm256_and_pd(_mm256_mul_pd(va, f), keep));
  }
  if (i < n) {  // odd tail: same squared-compare semantics as the lanes
    const double xr = xd[2 * i];
    const double xi = xd[2 * i + 1];
    const double m2 = xr * xr + xi * xi;
    if (m2 <= t2) {
      xd[2 * i] = 0.0;
      xd[2 * i + 1] = 0.0;
    } else {
      const double f = 1.0 - t / std::sqrt(m2);
      xd[2 * i] = xr * f;
      xd[2 * i + 1] = xi * f;
    }
  }
}

/// acc[i] += |col[i]|^2 (group-prox row sweep), two rows per step.
void row_sq_accumulate(const cxd* col, index_t n, double* acc) {
  const double* cj = reinterpret_cast<const double*>(col);
  index_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d va = _mm256_loadu_pd(cj + 2 * i);
    const __m256d sq = _mm256_mul_pd(va, va);
    const __m128d lo = _mm256_castpd256_pd128(sq);
    const __m128d hi = _mm256_extractf128_pd(sq, 1);
    const __m128d s = _mm_add_pd(_mm_unpacklo_pd(lo, hi),
                                 _mm_unpackhi_pd(lo, hi));
    _mm_storeu_pd(acc + i, _mm_add_pd(_mm_loadu_pd(acc + i), s));
  }
  for (; i < n; ++i) {
    acc[i] += cj[2 * i] * cj[2 * i] + cj[2 * i + 1] * cj[2 * i + 1];
  }
}

/// col[i] *= scale[i], exact +0 where scale[i] < 0 (the group-prox
/// "zero the row" marker). Same multiplies as scalar: bit-identical.
void row_scale(cxd* col, index_t n, const double* scale) {
  double* cj = reinterpret_cast<double*>(col);
  const __m256d zero = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d s2 = _mm_loadu_pd(scale + i);
    const __m256d vs = _mm256_set_m128d(_mm_unpackhi_pd(s2, s2),
                                        _mm_unpacklo_pd(s2, s2));
    const __m256d lt = _mm256_cmp_pd(vs, zero, _CMP_LT_OQ);
    const __m256d r = _mm256_andnot_pd(
        lt, _mm256_mul_pd(_mm256_loadu_pd(cj + 2 * i), vs));
    _mm256_storeu_pd(cj + 2 * i, r);
  }
  for (; i < n; ++i) {
    const double s = scale[i];
    if (s < 0.0) {
      cj[2 * i] = 0.0;
      cj[2 * i + 1] = 0.0;
    } else {
      cj[2 * i] *= s;
      cj[2 * i + 1] *= s;
    }
  }
}

/// out[i] (+)= scale * step^i, four elements per iteration: two
/// two-element chains each advanced by step^4 (one permute, one
/// multiply, one fmaddsub per chain). The chained products drift from
/// the scalar recurrence by O(n eps) — |step| = 1 in every caller, so
/// the products stay O(|scale|).
template <bool Accum>
void phase_ramp_impl(cxd scale, cxd step, index_t n, cxd* out) {
  const cxd p1 = scale * step;
  const cxd p2 = p1 * step;
  const cxd p3 = p2 * step;
  const cxd s2 = step * step;
  const cxd s4 = s2 * s2;
  __m256d v0 = _mm256_setr_pd(scale.real(), scale.imag(), p1.real(), p1.imag());
  __m256d v1 = _mm256_setr_pd(p2.real(), p2.imag(), p3.real(), p3.imag());
  const __m256d cr = _mm256_set1_pd(s4.real());
  const __m256d ci = _mm256_set1_pd(s4.imag());
  double* od = reinterpret_cast<double*>(out);
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (Accum) {
      _mm256_storeu_pd(od + 2 * i,
                       _mm256_add_pd(_mm256_loadu_pd(od + 2 * i), v0));
      _mm256_storeu_pd(od + 2 * i + 4,
                       _mm256_add_pd(_mm256_loadu_pd(od + 2 * i + 4), v1));
    } else {
      _mm256_storeu_pd(od + 2 * i, v0);
      _mm256_storeu_pd(od + 2 * i + 4, v1);
    }
    v0 = _mm256_fmaddsub_pd(v0, cr,
                            _mm256_mul_pd(_mm256_permute_pd(v0, 0x5), ci));
    v1 = _mm256_fmaddsub_pd(v1, cr,
                            _mm256_mul_pd(_mm256_permute_pd(v1, 0x5), ci));
  }
  if (i < n) {  // up to three elements left in the chain registers
    alignas(32) double buf[8];
    _mm256_store_pd(buf, v0);
    _mm256_store_pd(buf + 4, v1);
    for (int idx = 0; i < n; ++i, ++idx) {
      const cxd p{buf[2 * idx], buf[2 * idx + 1]};
      if (Accum) {
        out[i] += p;
      } else {
        out[i] = p;
      }
    }
  }
}

void phase_ramp(cxd scale, cxd step, index_t n, cxd* out) {
  phase_ramp_impl<false>(scale, step, n, out);
}

void phase_ramp_accum(cxd scale, cxd step, index_t n, cxd* out) {
  phase_ramp_impl<true>(scale, step, n, out);
}

#undef ROARRAY_SIGN_EVEN

constexpr Backend kAvx2 = {
    "simd-avx2",     &gemm_tile, &gemm_cols,         &gemm_cols_depth,
    &gemm_adj_tile,  &soft_threshold, &row_sq_accumulate, &row_scale,
    &phase_ramp,     &phase_ramp_accum,
};

}  // namespace

const Backend* simd_avx2_table() { return &kAvx2; }

}  // namespace roarray::linalg::backend
