// The portable backend: today's hand-separated real-arithmetic kernels,
// moved here verbatim from linalg/gemm.cpp, sparse/prox.hpp and
// dsp/steering.cpp. The loops moved but the arithmetic (expression
// trees, traversal order, zero-skips) did not, so this table reproduces
// the pre-backend results bit-for-bit. Keep it that way: the golden
// corpus and the cross-backend differential tests both anchor on this
// table.
#include "linalg/backend/backend.hpp"

#include <array>
#include <cstring>
#include <utility>

namespace roarray::linalg::backend {

namespace {

/// C(i0:i1, j0:j1) += A(i0:i1, :) B(:, j0:j1) on interleaved storage.
/// Reduction over kk ascends for every (i, j), matching naive matmul.
void gemm_tile(index_t i0, index_t i1, index_t j0, index_t j1, index_t m,
               index_t k, const cxd* a, const cxd* b, cxd* c) {
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * k;
    double* cj = reinterpret_cast<double*>(c + j * m);
    for (index_t kk = 0; kk < k; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      if (br == 0.0 && bi == 0.0) continue;  // matmul's zero-skip
      const double* ak = reinterpret_cast<const double*>(a + kk * m);
      for (index_t i = i0; i < i1; ++i) {
        const double ar = ak[2 * i];
        const double ai = ak[2 * i + 1];
        cj[2 * i] += ar * br - ai * bi;
        cj[2 * i + 1] += ar * bi + ai * br;
      }
    }
  }
}

/// C(:, j0:j1) = A B(:, j0:j1) for an A with a compile-time row count.
/// The Kronecker fast path spends most of its time in GEMMs whose output
/// has only a few rows (the antenna count M, or M times the snapshot
/// count); the generic tile reloads and restores the C column on every
/// step of the k reduction there. Keeping the whole column in a
/// fixed-size accumulator removes that traffic. Reduction order and the
/// zero-skip match gemm_tile exactly, so results are bit-identical.
template <int M>
void gemm_cols_small(index_t j0, index_t j1, index_t k, const cxd* a,
                     const cxd* b, cxd* c) {
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * k;
    double acc[2 * M] = {};
    for (index_t kk = 0; kk < k; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      if (br == 0.0 && bi == 0.0) continue;  // matmul's zero-skip
      const double* ak = reinterpret_cast<const double*>(a + kk * M);
      for (int i = 0; i < M; ++i) {
        acc[2 * i] += ak[2 * i] * br - ak[2 * i + 1] * bi;
        acc[2 * i + 1] += ak[2 * i] * bi + ak[2 * i + 1] * br;
      }
    }
    std::memcpy(c + j * M, acc, sizeof(acc));
  }
}

using SmallKernel = void (*)(index_t, index_t, index_t, const cxd*,
                             const cxd*, cxd*);

template <int... Ms>
constexpr std::array<SmallKernel, sizeof...(Ms)> small_kernel_table(
    std::integer_sequence<int, Ms...>) {
  return {&gemm_cols_small<Ms + 1>...};
}

constexpr auto kSmallKernels =
    small_kernel_table(std::make_integer_sequence<int, kSmallRowLimit>{});

void gemm_cols(index_t m, index_t j0, index_t j1, index_t k, const cxd* a,
               const cxd* b, cxd* c) {
  kSmallKernels[static_cast<std::size_t>(m - 1)](j0, j1, k, a, b, c);
}

/// C(:, j0:j1) = A B(:, j0:j1) for a compile-time reduction depth K.
/// This is the Kronecker adjoint's final product (tall output, inner
/// dimension = the antenna count). The loop structure is the generic
/// tile's (vectorizable contiguous sweep over the C column per
/// reduction step, ascending as always), but the first step stores
/// instead of accumulating — no memset of C and one fewer read pass
/// per column. Zero B entries are not skipped here: their terms are
/// exact +/-0, which leaves every sum's value unchanged versus the
/// zero-skipping kernels (only the sign of an all-zero sum can
/// differ).
template <int K>
void gemm_cols_small_depth(index_t m, index_t j0, index_t j1, const cxd* a,
                           const cxd* b, cxd* c) {
  const double* ad = reinterpret_cast<const double*>(a);
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * K;
    double* cj = reinterpret_cast<double*>(c + j * m);
    {
      const double br = bj[0].real();
      const double bi = bj[0].imag();
      for (index_t i = 0; i < m; ++i) {
        const double ar = ad[2 * i];
        const double ai = ad[2 * i + 1];
        cj[2 * i] = ar * br - ai * bi;
        cj[2 * i + 1] = ar * bi + ai * br;
      }
    }
    for (int kk = 1; kk < K; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      const double* ak = ad + 2 * kk * m;
      for (index_t i = 0; i < m; ++i) {
        const double ar = ak[2 * i];
        const double ai = ak[2 * i + 1];
        cj[2 * i] += ar * br - ai * bi;
        cj[2 * i + 1] += ar * bi + ai * br;
      }
    }
  }
}

using SmallDepthKernel = void (*)(index_t, index_t, index_t, const cxd*,
                                  const cxd*, cxd*);

template <int... Ks>
constexpr std::array<SmallDepthKernel, sizeof...(Ks)> small_depth_table(
    std::integer_sequence<int, Ks...>) {
  return {&gemm_cols_small_depth<Ks + 1>...};
}

constexpr auto kSmallDepthKernels =
    small_depth_table(std::make_integer_sequence<int, kSmallDepthLimit>{});

void gemm_cols_depth(index_t m, index_t j0, index_t j1, index_t k,
                     const cxd* a, const cxd* b, cxd* c) {
  kSmallDepthKernels[static_cast<std::size_t>(k - 1)](m, j0, j1, a, b, c);
}

/// C(i0:i1, j0:j1) = A(:, i0:i1)^H B(:, j0:j1): contiguous dot products
/// down the shared k dimension, ascending like naive matmul_adj_left.
void gemm_adj_tile(index_t i0, index_t i1, index_t j0, index_t j1,
                   index_t m, index_t k, const cxd* a, const cxd* b,
                   cxd* c) {
  for (index_t j = j0; j < j1; ++j) {
    const double* bj = reinterpret_cast<const double*>(b + j * k);
    cxd* cj = c + j * m;
    for (index_t i = i0; i < i1; ++i) {
      const double* ai = reinterpret_cast<const double*>(a + i * k);
      double sr = 0.0;
      double si = 0.0;
      for (index_t kk = 0; kk < k; ++kk) {
        const double ar = ai[2 * kk];
        const double aim = ai[2 * kk + 1];
        const double brr = bj[2 * kk];
        const double bii = bj[2 * kk + 1];
        sr += ar * brr + aim * bii;
        si += ar * bii - aim * brr;
      }
      cj[i] = cxd{sr, si};
    }
  }
}

/// Complex soft-thresholding: shrink each magnitude by t, preserving
/// phase (the prox.hpp loop; std::abs on complex is hypot-based, which
/// is the reference the simd squared-compare is measured against).
void soft_threshold(cxd* x, index_t n, double t) {
  for (index_t i = 0; i < n; ++i) {
    const double mag = std::abs(x[i]);
    if (mag <= t) {
      x[i] = cxd{};
    } else {
      x[i] *= (1.0 - t / mag);
    }
  }
}

/// acc[i] += |col[i]|^2, the column-major row-norm sweep of the group
/// prox and the l2,1 norm.
void row_sq_accumulate(const cxd* col, index_t n, double* acc) {
  const double* cj = reinterpret_cast<const double*>(col);
  for (index_t i = 0; i < n; ++i) {
    acc[i] += cj[2 * i] * cj[2 * i] + cj[2 * i + 1] * cj[2 * i + 1];
  }
}

/// col[i] *= scale[i], with scale[i] < 0 marking "write exact zero".
void row_scale(cxd* col, index_t n, const double* scale) {
  double* cj = reinterpret_cast<double*>(col);
  for (index_t i = 0; i < n; ++i) {
    const double s = scale[i];
    if (s < 0.0) {
      cj[2 * i] = 0.0;
      cj[2 * i + 1] = 0.0;
    } else {
      cj[2 * i] *= s;
      cj[2 * i + 1] *= s;
    }
  }
}

/// out[i] = scale * step^i via the running-product recurrence — the
/// exact expression steering_joint_sub evaluates (scale enters each
/// element as one multiply; the recurrence itself is never scaled, so
/// error does not compound through scale).
void phase_ramp(cxd scale, cxd step, index_t n, cxd* out) {
  cxd lm{1.0, 0.0};
  for (index_t i = 0; i < n; ++i) {
    out[i] = scale * lm;
    lm *= step;
  }
}

/// out[i] += scale * step^i (the CSI synthesis accumulation).
void phase_ramp_accum(cxd scale, cxd step, index_t n, cxd* out) {
  cxd lm{1.0, 0.0};
  for (index_t i = 0; i < n; ++i) {
    out[i] += scale * lm;
    lm *= step;
  }
}

constexpr Backend kScalar = {
    "scalar",        &gemm_tile, &gemm_cols,         &gemm_cols_depth,
    &gemm_adj_tile,  &soft_threshold, &row_sq_accumulate, &row_scale,
    &phase_ramp,     &phase_ramp_accum,
};

}  // namespace

const Backend& scalar() { return kScalar; }

}  // namespace roarray::linalg::backend
