#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eig.hpp"

namespace roarray::linalg {

namespace {

/// Orthonormalizes the columns of m whose `valid` flag is false against
/// all other columns, filling them with arbitrary orthonormal complements
/// (used when a singular value is numerically zero).
void complete_basis(CMat& m, const std::vector<bool>& valid) {
  const index_t rows = m.rows();
  const index_t cols = m.cols();
  for (index_t j = 0; j < cols; ++j) {
    if (valid[static_cast<std::size_t>(j)]) continue;
    // Try canonical basis vectors until one survives projection.
    for (index_t seed = 0; seed < rows; ++seed) {
      CVec cand(rows);
      cand[seed] = cxd{1.0, 0.0};
      // Two rounds of modified Gram-Schmidt for stability.
      for (int round = 0; round < 2; ++round) {
        for (index_t k = 0; k < cols; ++k) {
          if (k == j) continue;
          if (!valid[static_cast<std::size_t>(k)] && k > j) continue;
          const CVec other = m.col_vec(k);
          const cxd proj = dot(other, cand);
          axpy(-proj, other, cand);
        }
      }
      const double n = norm2(cand);
      if (n > 1e-6) {
        cand *= cxd{1.0 / n, 0.0};
        m.set_col(j, cand);
        break;
      }
    }
  }
}

}  // namespace

index_t SvdResult::rank(double tol) const {
  if (singular_values.size() == 0) return 0;
  const double cutoff = tol * singular_values[0];
  index_t r = 0;
  for (index_t i = 0; i < singular_values.size(); ++i) {
    if (singular_values[i] > cutoff) ++r;
  }
  return r;
}

SvdResult svd(const CMat& a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t r = std::min(m, n);
  SvdResult out;
  out.singular_values = RVec(r);
  out.u = CMat(m, r);
  out.v = CMat(n, r);
  if (r == 0) return out;

  const bool gram_on_right = n <= m;  // eig of A^H A (n x n) vs A A^H (m x m)
  CMat gram = gram_on_right ? matmul_adj_left(a, a)
                            : matmul(a, adjoint(a));
  const EigResult eg = eig_hermitian(gram);

  // Eigenvalues ascending -> take the top r in descending order.
  const index_t gn = gram.rows();
  std::vector<bool> u_valid(static_cast<std::size_t>(r), true);
  std::vector<bool> v_valid(static_cast<std::size_t>(r), true);
  // Recompute each singular value as ||A w|| (or ||A^H w||): this is far
  // more accurate for small sigma than sqrt of the Gram eigenvalue,
  // whose absolute error is ~eps * sigma_max^2.
  double sigma_max = 0.0;
  for (index_t k = 0; k < r; ++k) {
    const index_t src = gn - 1 - k;
    const CVec w = eg.eigenvectors.col_vec(src);
    CVec other = gram_on_right ? matvec(a, w) : matvec_adj(a, w);
    const double sigma = norm2(other);
    sigma_max = std::max(sigma_max, sigma);
    const double cutoff = kRankTol * std::max(sigma_max, 1e-300);
    out.singular_values[k] = sigma;
    if (gram_on_right) {
      out.v.set_col(k, w);
      if (sigma > cutoff) {
        other *= cxd{1.0 / sigma, 0.0};
        out.u.set_col(k, other);
      } else {
        out.singular_values[k] = 0.0;
        u_valid[static_cast<std::size_t>(k)] = false;
      }
    } else {
      out.u.set_col(k, w);
      if (sigma > cutoff) {
        other *= cxd{1.0 / sigma, 0.0};
        out.v.set_col(k, other);
      } else {
        out.singular_values[k] = 0.0;
        v_valid[static_cast<std::size_t>(k)] = false;
      }
    }
  }
  complete_basis(out.u, u_valid);
  complete_basis(out.v, v_valid);
  return out;
}

}  // namespace roarray::linalg
