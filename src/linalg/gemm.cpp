#include "linalg/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "linalg/backend/backend.hpp"
#include "runtime/thread_pool.hpp"

namespace roarray::linalg {

namespace {

// Fixed output-tile shape. The partition must depend only on the output
// shape (never on the thread count) so serial and pooled runs execute
// the exact same tiles and stay bit-identical.
constexpr index_t kRowTile = 128;
constexpr index_t kColTile = 32;

// Below this many fused multiply-adds the pool dispatch overhead beats
// any parallel win; run the tile schedule on the calling thread.
constexpr index_t kParallelFlopFloor = 1 << 15;

using backend::Backend;
using runtime::ThreadPool;

/// Runs `tile(i0, i1, j0, j1)` over the fixed output partition, fanning
/// out along whichever output dimension yields more tiles. Each output
/// element belongs to exactly one tile, so pooled runs are bit-identical
/// to serial ones.
template <typename Tile>
void run_tiled(index_t m, index_t n, index_t k, const ThreadPool* pool,
               const Tile& tile) {
  const index_t row_tiles = (m + kRowTile - 1) / kRowTile;
  const index_t col_tiles = (n + kColTile - 1) / kColTile;
  const bool parallel = pool != nullptr && pool->threads() > 1 &&
                        m * n * (k + 1) >= kParallelFlopFloor &&
                        row_tiles * col_tiles > 1;
  if (col_tiles >= row_tiles) {
    auto cols = [&](index_t j0, index_t j1) {
      for (index_t i0 = 0; i0 < m; i0 += kRowTile) {
        tile(i0, std::min(m, i0 + kRowTile), j0, j1);
      }
    };
    if (parallel) {
      pool->parallel_for_range(n, kColTile, cols);
    } else {
      for (index_t j0 = 0; j0 < n; j0 += kColTile) {
        cols(j0, std::min(n, j0 + kColTile));
      }
    }
  } else {
    auto rows = [&](index_t i0, index_t i1) {
      for (index_t j0 = 0; j0 < n; j0 += kColTile) {
        tile(i0, i1, j0, std::min(n, j0 + kColTile));
      }
    };
    if (parallel) {
      pool->parallel_for_range(m, kRowTile, rows);
    } else {
      for (index_t i0 = 0; i0 < m; i0 += kRowTile) {
        rows(i0, std::min(m, i0 + kRowTile));
      }
    }
  }
}

}  // namespace

void gemm(index_t m, index_t n, index_t k, const cxd* a, const cxd* b,
          cxd* c, const ThreadPool* pool, const Backend* be) {
  if (m <= 0 || n <= 0) return;
  // Resolve the kernel table once per call: every tile of this product
  // (and every pool worker executing one) uses the same table.
  const Backend& bk = be != nullptr ? *be : backend::active();
  if (k <= 0) {
    std::memset(static_cast<void*>(c), 0, static_cast<std::size_t>(m * n) * sizeof(cxd));
    return;
  }
  if (m <= backend::kSmallRowLimit) {
    // Fixed-height kernel: every column is written exactly once (no
    // memset needed), parallelism comes from disjoint column ranges.
    const index_t col_tiles = (n + kColTile - 1) / kColTile;
    const bool parallel = pool != nullptr && pool->threads() > 1 &&
                          m * n * (k + 1) >= kParallelFlopFloor &&
                          col_tiles > 1;
    if (parallel) {
      pool->parallel_for_range(n, kColTile, [&](index_t j0, index_t j1) {
        bk.gemm_cols(m, j0, j1, k, a, b, c);
      });
    } else {
      bk.gemm_cols(m, 0, n, k, a, b, c);
    }
    return;
  }
  if (k <= backend::kSmallDepthLimit) {
    const index_t col_tiles = (n + kColTile - 1) / kColTile;
    const bool parallel = pool != nullptr && pool->threads() > 1 &&
                          m * n * (k + 1) >= kParallelFlopFloor &&
                          col_tiles > 1;
    if (parallel) {
      pool->parallel_for_range(n, kColTile, [&](index_t j0, index_t j1) {
        bk.gemm_cols_depth(m, j0, j1, k, a, b, c);
      });
    } else {
      bk.gemm_cols_depth(m, 0, n, k, a, b, c);
    }
    return;
  }
  std::memset(static_cast<void*>(c), 0, static_cast<std::size_t>(m * n) * sizeof(cxd));
  run_tiled(m, n, k, pool, [&](index_t i0, index_t i1, index_t j0, index_t j1) {
    bk.gemm_tile(i0, i1, j0, j1, m, k, a, b, c);
  });
}

void gemm_adj_left(index_t m, index_t n, index_t k, const cxd* a,
                   const cxd* b, cxd* c, const ThreadPool* pool,
                   const Backend* be) {
  if (m <= 0 || n <= 0) return;
  const Backend& bk = be != nullptr ? *be : backend::active();
  if (k <= 0) {
    std::memset(static_cast<void*>(c), 0, static_cast<std::size_t>(m * n) * sizeof(cxd));
    return;
  }
  run_tiled(m, n, k, pool, [&](index_t i0, index_t i1, index_t j0, index_t j1) {
    bk.gemm_adj_tile(i0, i1, j0, j1, m, k, a, b, c);
  });
}

CMat matmul_blocked(const CMat& a, const CMat& b, const ThreadPool* pool,
                    const Backend* be) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul_blocked: shape mismatch");
  }
  CMat c(a.rows(), b.cols());
  gemm(a.rows(), b.cols(), a.cols(), a.data(), b.data(), c.data(), pool, be);
  return c;
}

CMat matmul_adj_left_blocked(const CMat& a, const CMat& b,
                             const ThreadPool* pool, const Backend* be) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_adj_left_blocked: shape mismatch");
  }
  CMat c(a.cols(), b.cols());
  gemm_adj_left(a.cols(), b.cols(), a.rows(), a.data(), b.data(), c.data(),
                pool, be);
  return c;
}

}  // namespace roarray::linalg
