#include "linalg/gemm.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace roarray::linalg {

namespace {

// Fixed output-tile shape. The partition must depend only on the output
// shape (never on the thread count) so serial and pooled runs execute
// the exact same tiles and stay bit-identical.
constexpr index_t kRowTile = 128;
constexpr index_t kColTile = 32;

// Below this many fused multiply-adds the pool dispatch overhead beats
// any parallel win; run the tile schedule on the calling thread.
constexpr index_t kParallelFlopFloor = 1 << 15;

using runtime::ThreadPool;

/// C(i0:i1, j0:j1) += A(i0:i1, :) B(:, j0:j1) on interleaved storage.
/// Reduction over kk ascends for every (i, j), matching naive matmul.
void gemm_tile(index_t i0, index_t i1, index_t j0, index_t j1, index_t m,
               index_t k, const cxd* a, const cxd* b, cxd* c) {
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * k;
    double* cj = reinterpret_cast<double*>(c + j * m);
    for (index_t kk = 0; kk < k; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      if (br == 0.0 && bi == 0.0) continue;  // matmul's zero-skip
      const double* ak = reinterpret_cast<const double*>(a + kk * m);
      for (index_t i = i0; i < i1; ++i) {
        const double ar = ak[2 * i];
        const double ai = ak[2 * i + 1];
        cj[2 * i] += ar * br - ai * bi;
        cj[2 * i + 1] += ar * bi + ai * br;
      }
    }
  }
}

// Matrices with at most this many rows go through the fixed-height
// kernels below instead of the generic tile.
constexpr index_t kSmallRowLimit = 16;

/// C(:, j0:j1) = A B(:, j0:j1) for an A with a compile-time row count.
/// The Kronecker fast path spends most of its time in GEMMs whose output
/// has only a few rows (the antenna count M, or M times the snapshot
/// count); the generic tile reloads and restores the C column on every
/// step of the k reduction there. Keeping the whole column in a
/// fixed-size accumulator removes that traffic. Reduction order and the
/// zero-skip match gemm_tile exactly, so results are bit-identical.
template <int M>
void gemm_cols_small(index_t j0, index_t j1, index_t k, const cxd* a,
                     const cxd* b, cxd* c) {
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * k;
    double acc[2 * M] = {};
    for (index_t kk = 0; kk < k; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      if (br == 0.0 && bi == 0.0) continue;  // matmul's zero-skip
      const double* ak = reinterpret_cast<const double*>(a + kk * M);
      for (int i = 0; i < M; ++i) {
        acc[2 * i] += ak[2 * i] * br - ak[2 * i + 1] * bi;
        acc[2 * i + 1] += ak[2 * i] * bi + ak[2 * i + 1] * br;
      }
    }
    std::memcpy(c + j * M, acc, sizeof(acc));
  }
}

using SmallKernel = void (*)(index_t, index_t, index_t, const cxd*,
                             const cxd*, cxd*);

template <int... Ms>
constexpr std::array<SmallKernel, sizeof...(Ms)> small_kernel_table(
    std::integer_sequence<int, Ms...>) {
  return {&gemm_cols_small<Ms + 1>...};
}

constexpr auto kSmallKernels =
    small_kernel_table(std::make_integer_sequence<int, kSmallRowLimit>{});

// Reductions at most this deep go through the fixed-depth kernel when
// the row count is too large for the fixed-height one.
constexpr index_t kSmallDepthLimit = 8;

/// C(:, j0:j1) = A B(:, j0:j1) for a compile-time reduction depth K.
/// This is the Kronecker adjoint's final product (tall output, inner
/// dimension = the antenna count). The loop structure is the generic
/// tile's (vectorizable contiguous sweep over the C column per
/// reduction step, ascending as always), but the first step stores
/// instead of accumulating — no memset of C and one fewer read pass
/// per column. Zero B entries are not skipped here: their terms are
/// exact +/-0, which leaves every sum's value unchanged versus the
/// zero-skipping kernels (only the sign of an all-zero sum can
/// differ).
template <int K>
void gemm_cols_small_depth(index_t m, index_t j0, index_t j1, const cxd* a,
                           const cxd* b, cxd* c) {
  const double* ad = reinterpret_cast<const double*>(a);
  for (index_t j = j0; j < j1; ++j) {
    const cxd* bj = b + j * K;
    double* cj = reinterpret_cast<double*>(c + j * m);
    {
      const double br = bj[0].real();
      const double bi = bj[0].imag();
      for (index_t i = 0; i < m; ++i) {
        const double ar = ad[2 * i];
        const double ai = ad[2 * i + 1];
        cj[2 * i] = ar * br - ai * bi;
        cj[2 * i + 1] = ar * bi + ai * br;
      }
    }
    for (int kk = 1; kk < K; ++kk) {
      const double br = bj[kk].real();
      const double bi = bj[kk].imag();
      const double* ak = ad + 2 * kk * m;
      for (index_t i = 0; i < m; ++i) {
        const double ar = ak[2 * i];
        const double ai = ak[2 * i + 1];
        cj[2 * i] += ar * br - ai * bi;
        cj[2 * i + 1] += ar * bi + ai * br;
      }
    }
  }
}

using SmallDepthKernel = void (*)(index_t, index_t, index_t, const cxd*,
                                  const cxd*, cxd*);

template <int... Ks>
constexpr std::array<SmallDepthKernel, sizeof...(Ks)> small_depth_table(
    std::integer_sequence<int, Ks...>) {
  return {&gemm_cols_small_depth<Ks + 1>...};
}

constexpr auto kSmallDepthKernels =
    small_depth_table(std::make_integer_sequence<int, kSmallDepthLimit>{});

/// C(i0:i1, j0:j1) = A(:, i0:i1)^H B(:, j0:j1): contiguous dot products
/// down the shared k dimension, ascending like naive matmul_adj_left.
void gemm_adj_left_tile(index_t i0, index_t i1, index_t j0, index_t j1,
                        index_t m, index_t k, const cxd* a, const cxd* b,
                        cxd* c) {
  for (index_t j = j0; j < j1; ++j) {
    const double* bj = reinterpret_cast<const double*>(b + j * k);
    cxd* cj = c + j * m;
    for (index_t i = i0; i < i1; ++i) {
      const double* ai = reinterpret_cast<const double*>(a + i * k);
      double sr = 0.0;
      double si = 0.0;
      for (index_t kk = 0; kk < k; ++kk) {
        const double ar = ai[2 * kk];
        const double aim = ai[2 * kk + 1];
        const double brr = bj[2 * kk];
        const double bii = bj[2 * kk + 1];
        sr += ar * brr + aim * bii;
        si += ar * bii - aim * brr;
      }
      cj[i] = cxd{sr, si};
    }
  }
}

/// Runs `tile(i0, i1, j0, j1)` over the fixed output partition, fanning
/// out along whichever output dimension yields more tiles. Each output
/// element belongs to exactly one tile, so pooled runs are bit-identical
/// to serial ones.
template <typename Tile>
void run_tiled(index_t m, index_t n, index_t k, const ThreadPool* pool,
               const Tile& tile) {
  const index_t row_tiles = (m + kRowTile - 1) / kRowTile;
  const index_t col_tiles = (n + kColTile - 1) / kColTile;
  const bool parallel = pool != nullptr && pool->threads() > 1 &&
                        m * n * (k + 1) >= kParallelFlopFloor &&
                        row_tiles * col_tiles > 1;
  if (col_tiles >= row_tiles) {
    auto cols = [&](index_t j0, index_t j1) {
      for (index_t i0 = 0; i0 < m; i0 += kRowTile) {
        tile(i0, std::min(m, i0 + kRowTile), j0, j1);
      }
    };
    if (parallel) {
      pool->parallel_for_range(n, kColTile, cols);
    } else {
      for (index_t j0 = 0; j0 < n; j0 += kColTile) {
        cols(j0, std::min(n, j0 + kColTile));
      }
    }
  } else {
    auto rows = [&](index_t i0, index_t i1) {
      for (index_t j0 = 0; j0 < n; j0 += kColTile) {
        tile(i0, i1, j0, std::min(n, j0 + kColTile));
      }
    };
    if (parallel) {
      pool->parallel_for_range(m, kRowTile, rows);
    } else {
      for (index_t i0 = 0; i0 < m; i0 += kRowTile) {
        rows(i0, std::min(m, i0 + kRowTile));
      }
    }
  }
}

}  // namespace

void gemm(index_t m, index_t n, index_t k, const cxd* a, const cxd* b,
          cxd* c, const ThreadPool* pool) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::memset(static_cast<void*>(c), 0, static_cast<std::size_t>(m * n) * sizeof(cxd));
    return;
  }
  if (m <= kSmallRowLimit) {
    // Fixed-height kernel: every column is written exactly once (no
    // memset needed), parallelism comes from disjoint column ranges.
    const SmallKernel kern = kSmallKernels[static_cast<std::size_t>(m - 1)];
    const index_t col_tiles = (n + kColTile - 1) / kColTile;
    const bool parallel = pool != nullptr && pool->threads() > 1 &&
                          m * n * (k + 1) >= kParallelFlopFloor &&
                          col_tiles > 1;
    if (parallel) {
      pool->parallel_for_range(
          n, kColTile, [&](index_t j0, index_t j1) { kern(j0, j1, k, a, b, c); });
    } else {
      kern(0, n, k, a, b, c);
    }
    return;
  }
  if (k <= kSmallDepthLimit) {
    const SmallDepthKernel kern =
        kSmallDepthKernels[static_cast<std::size_t>(k - 1)];
    const index_t col_tiles = (n + kColTile - 1) / kColTile;
    const bool parallel = pool != nullptr && pool->threads() > 1 &&
                          m * n * (k + 1) >= kParallelFlopFloor &&
                          col_tiles > 1;
    if (parallel) {
      pool->parallel_for_range(
          n, kColTile, [&](index_t j0, index_t j1) { kern(m, j0, j1, a, b, c); });
    } else {
      kern(m, 0, n, a, b, c);
    }
    return;
  }
  std::memset(static_cast<void*>(c), 0, static_cast<std::size_t>(m * n) * sizeof(cxd));
  run_tiled(m, n, k, pool, [&](index_t i0, index_t i1, index_t j0, index_t j1) {
    gemm_tile(i0, i1, j0, j1, m, k, a, b, c);
  });
}

void gemm_adj_left(index_t m, index_t n, index_t k, const cxd* a,
                   const cxd* b, cxd* c, const ThreadPool* pool) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::memset(static_cast<void*>(c), 0, static_cast<std::size_t>(m * n) * sizeof(cxd));
    return;
  }
  run_tiled(m, n, k, pool, [&](index_t i0, index_t i1, index_t j0, index_t j1) {
    gemm_adj_left_tile(i0, i1, j0, j1, m, k, a, b, c);
  });
}

CMat matmul_blocked(const CMat& a, const CMat& b, const ThreadPool* pool) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul_blocked: shape mismatch");
  }
  CMat c(a.rows(), b.cols());
  gemm(a.rows(), b.cols(), a.cols(), a.data(), b.data(), c.data(), pool);
  return c;
}

CMat matmul_adj_left_blocked(const CMat& a, const CMat& b,
                             const ThreadPool* pool) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_adj_left_blocked: shape mismatch");
  }
  CMat c(a.cols(), b.cols());
  gemm_adj_left(a.cols(), b.cols(), a.rows(), a.data(), b.data(), c.data(),
                pool);
  return c;
}

}  // namespace roarray::linalg
