// Dense column-major matrix over double or complex<double>.
#pragma once

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

#include "linalg/types.hpp"
#include "linalg/vector.hpp"

namespace roarray::linalg {

/// A dense, heap-backed, column-major matrix.
///
/// Column-major storage keeps steering-matrix columns contiguous, which
/// is the dominant access pattern in this library (per-column steering
/// vectors, GEMV with column updates).
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(index_t rows, index_t cols)
      : rows_(require_dim(rows)), cols_(require_dim(cols)),
        data_(static_cast<std::size_t>(rows_ * cols_)) {}

  /// rows x cols matrix with every element equal to value.
  Matrix(index_t rows, index_t cols, T value)
      : rows_(require_dim(rows)), cols_(require_dim(cols)),
        data_(static_cast<std::size_t>(rows_ * cols_), value) {}

  /// Builds from a row-major nested initializer list (natural notation).
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = static_cast<index_t>(init.size());
    cols_ = rows_ > 0 ? static_cast<index_t>(init.begin()->size()) : 0;
    data_.resize(static_cast<std::size_t>(rows_ * cols_));
    index_t i = 0;
    for (const auto& row : init) {
      if (static_cast<index_t>(row.size()) != cols_) {
        throw std::invalid_argument("Matrix: ragged initializer list");
      }
      index_t j = 0;
      for (const auto& v : row) (*this)(i, j++) = v;
      ++i;
    }
  }

  [[nodiscard]] static Matrix identity(index_t n) {
    Matrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t size() const noexcept { return rows_ * cols_; }

  T& operator()(index_t i, index_t j) noexcept {
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }
  const T& operator()(index_t i, index_t j) const noexcept {
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }

  /// Bounds-checked element access.
  T& at(index_t i, index_t j) {
    check_index(i, j);
    return (*this)(i, j);
  }
  const T& at(index_t i, index_t j) const {
    check_index(i, j);
    return (*this)(i, j);
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  /// Contiguous view of column j.
  [[nodiscard]] std::span<T> col(index_t j) {
    check_col(j);
    return {data_.data() + j * rows_, static_cast<std::size_t>(rows_)};
  }
  [[nodiscard]] std::span<const T> col(index_t j) const {
    check_col(j);
    return {data_.data() + j * rows_, static_cast<std::size_t>(rows_)};
  }

  /// Copies column j into a Vector.
  [[nodiscard]] Vector<T> col_vec(index_t j) const {
    return Vector<T>(col(j));
  }

  /// Copies row i into a Vector.
  [[nodiscard]] Vector<T> row_vec(index_t i) const {
    if (i < 0 || i >= rows_) throw std::out_of_range("Matrix::row_vec");
    Vector<T> r(cols_);
    for (index_t j = 0; j < cols_; ++j) r[j] = (*this)(i, j);
    return r;
  }

  /// Overwrites column j with the contents of v.
  void set_col(index_t j, const Vector<T>& v) {
    if (v.size() != rows_) throw std::invalid_argument("set_col: size mismatch");
    auto c = col(j);
    std::copy(v.begin(), v.end(), c.begin());
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  Matrix& operator+=(const Matrix& rhs) {
    check_same_shape(rhs);
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
    return *this;
  }
  Matrix& operator-=(const Matrix& rhs) {
    check_same_shape(rhs);
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
    return *this;
  }
  Matrix& operator*=(T scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
  }

  [[nodiscard]] friend Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
  }
  [[nodiscard]] friend Matrix operator-(Matrix lhs, const Matrix& rhs) {
    lhs -= rhs;
    return lhs;
  }
  [[nodiscard]] friend Matrix operator*(Matrix lhs, T scalar) {
    lhs *= scalar;
    return lhs;
  }
  [[nodiscard]] friend Matrix operator*(T scalar, Matrix rhs) {
    rhs *= scalar;
    return rhs;
  }

 private:
  static index_t require_dim(index_t n) {
    if (n < 0) throw std::invalid_argument("Matrix: negative dimension");
    return n;
  }
  void check_index(index_t i, index_t j) const {
    if (i < 0 || i >= rows_ || j < 0 || j >= cols_) {
      throw std::out_of_range("Matrix::at: index out of range");
    }
  }
  void check_col(index_t j) const {
    if (j < 0 || j >= cols_) throw std::out_of_range("Matrix::col");
  }
  void check_same_shape(const Matrix& rhs) const {
    if (rhs.rows_ != rows_ || rhs.cols_ != cols_) {
      throw std::invalid_argument("Matrix: shape mismatch");
    }
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  // Cache-line-aligned backing store (see kBufferAlign): the SIMD
  // backends may use aligned loads on column bases.
  std::vector<T, AlignedAllocator<T>> data_;
};

using CMat = Matrix<cxd>;
using RMat = Matrix<double>;

/// Transpose (no conjugation).
template <typename T>
[[nodiscard]] Matrix<T> transpose(const Matrix<T>& a) {
  Matrix<T> t(a.cols(), a.rows());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) t(j, i) = a(i, j);
  return t;
}

/// Conjugate transpose (adjoint). For real matrices this equals transpose.
template <typename T>
[[nodiscard]] Matrix<T> adjoint(const Matrix<T>& a) {
  Matrix<T> t(a.cols(), a.rows());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) t(j, i) = detail::conj_scalar(a(i, j));
  return t;
}

/// Element-wise conjugate.
template <typename T>
[[nodiscard]] Matrix<T> conjugate(const Matrix<T>& a) {
  Matrix<T> c(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) c(i, j) = detail::conj_scalar(a(i, j));
  return c;
}

/// Matrix-vector product y = A x.
template <typename T>
[[nodiscard]] Vector<T> matvec(const Matrix<T>& a, const Vector<T>& x) {
  if (x.size() != a.cols()) throw std::invalid_argument("matvec: size mismatch");
  Vector<T> y(a.rows());
  for (index_t j = 0; j < a.cols(); ++j) {
    const T xj = x[j];
    auto cj = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) y[i] += cj[static_cast<std::size_t>(i)] * xj;
  }
  return y;
}

/// Adjoint matrix-vector product y = A^H x (without forming A^H).
template <typename T>
[[nodiscard]] Vector<T> matvec_adj(const Matrix<T>& a, const Vector<T>& x) {
  if (x.size() != a.rows()) throw std::invalid_argument("matvec_adj: size mismatch");
  Vector<T> y(a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    auto cj = a.col(j);
    T acc{};
    for (index_t i = 0; i < a.rows(); ++i) {
      acc += detail::conj_scalar(cj[static_cast<std::size_t>(i)]) * x[i];
    }
    y[j] = acc;
  }
  return y;
}

/// Matrix product C = A B.
template <typename T>
[[nodiscard]] Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Matrix<T> c(a.rows(), b.cols());
  for (index_t j = 0; j < b.cols(); ++j) {
    for (index_t k = 0; k < a.cols(); ++k) {
      const T bkj = b(k, j);
      if (bkj == T{}) continue;
      auto ak = a.col(k);
      for (index_t i = 0; i < a.rows(); ++i) {
        c(i, j) += ak[static_cast<std::size_t>(i)] * bkj;
      }
    }
  }
  return c;
}

/// C = A^H B computed without forming A^H.
template <typename T>
[[nodiscard]] Matrix<T> matmul_adj_left(const Matrix<T>& a, const Matrix<T>& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_adj_left: shape mismatch");
  Matrix<T> c(a.cols(), b.cols());
  for (index_t j = 0; j < b.cols(); ++j) {
    auto bj = b.col(j);
    for (index_t i = 0; i < a.cols(); ++i) {
      auto ai = a.col(i);
      T acc{};
      for (index_t k = 0; k < a.rows(); ++k) {
        acc += detail::conj_scalar(ai[static_cast<std::size_t>(k)]) *
               bj[static_cast<std::size_t>(k)];
      }
      c(i, j) = acc;
    }
  }
  return c;
}

/// Squared Frobenius norm (no sqrt — use instead of norm_fro(a)^2).
template <typename T>
[[nodiscard]] double norm_fro_sq(const Matrix<T>& a) {
  double acc = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) acc += detail::abs_sq(a(i, j));
  return acc;
}

/// Frobenius norm.
template <typename T>
[[nodiscard]] double norm_fro(const Matrix<T>& a) {
  return std::sqrt(norm_fro_sq(a));
}

/// Maximum element magnitude.
template <typename T>
[[nodiscard]] double norm_max(const Matrix<T>& a) {
  double acc = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) acc = std::max(acc, std::abs(a(i, j)));
  return acc;
}

/// Converts a real matrix to a complex one (imaginary parts zero).
[[nodiscard]] inline CMat to_complex(const RMat& a) {
  CMat c(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) c(i, j) = cxd{a(i, j), 0.0};
  return c;
}

}  // namespace roarray::linalg
