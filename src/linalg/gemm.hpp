// Cache-blocked complex GEMM for the operator hot path.
//
// The generic matmul/matmul_adj_left in matrix.hpp are written against
// std::complex arithmetic, whose operator* lowers to a guarded multiply
// (NaN fix-up branch) and whose scattered per-column loops defeat
// vectorization. These entry points tile the *output* into fixed-size
// blocks, optionally fan the disjoint tiles out over a
// runtime::ThreadPool, and execute each tile through a
// backend::Backend kernel table (scalar, or hand-vectorized SIMD —
// see linalg/backend/backend.hpp for selection and the per-kernel
// scalar-vs-simd tolerances).
//
// Determinism contract: every output element is produced by exactly one
// tile, and within a tile the reduction over the inner dimension runs in
// ascending order — the same order the naive kernels use — so, on the
// scalar table, results match the naive kernels to rounding (<= 1e-12
// relative in practice; identical accumulation order, only instruction
// selection may differ). On any fixed table, results are bit-identical
// across thread counts and between the serial and pooled paths (the
// tile partition depends only on the shapes, never on the pool).
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/types.hpp"

namespace roarray::runtime {
class ThreadPool;
}

namespace roarray::linalg {

namespace backend {
struct Backend;
}

/// C = A B on raw column-major buffers: A is m x k, B is k x n, C is
/// m x n and is overwritten. Mirrors matmul's skip of exact-zero B
/// entries (a large win on soft-thresholded sparse iterates). Null pool
/// (or tiny problems) runs the identical tile schedule serially. Null
/// backend uses the process-global backend::active() table; pass one
/// explicitly only to pin a table (differential tests, benches).
void gemm(index_t m, index_t n, index_t k, const cxd* a, const cxd* b,
          cxd* c, const runtime::ThreadPool* pool = nullptr,
          const backend::Backend* be = nullptr);

/// C = A^H B on raw column-major buffers: A is k x m, B is k x n, C is
/// m x n and is overwritten (A^H is never formed).
void gemm_adj_left(index_t m, index_t n, index_t k, const cxd* a,
                   const cxd* b, cxd* c,
                   const runtime::ThreadPool* pool = nullptr,
                   const backend::Backend* be = nullptr);

/// Blocked drop-in for matmul(a, b). Throws on shape mismatch.
[[nodiscard]] CMat matmul_blocked(const CMat& a, const CMat& b,
                                  const runtime::ThreadPool* pool = nullptr,
                                  const backend::Backend* be = nullptr);

/// Blocked drop-in for matmul_adj_left(a, b) (C = A^H B).
[[nodiscard]] CMat matmul_adj_left_blocked(
    const CMat& a, const CMat& b, const runtime::ThreadPool* pool = nullptr,
    const backend::Backend* be = nullptr);

}  // namespace roarray::linalg
