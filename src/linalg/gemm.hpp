// Cache-blocked complex GEMM kernels for the operator hot path.
//
// The generic matmul/matmul_adj_left in matrix.hpp are written against
// std::complex arithmetic, whose operator* lowers to a guarded multiply
// (NaN fix-up branch) and whose scattered per-column loops defeat
// vectorization. These kernels work on the raw interleaved (re, im)
// storage with hand-separated real arithmetic, tile the *output* into
// fixed-size blocks, and optionally fan the disjoint tiles out over a
// runtime::ThreadPool.
//
// Determinism contract: every output element is produced by exactly one
// tile, and within a tile the reduction over the inner dimension runs in
// ascending order — the same order the naive kernels use — so results
// match the naive kernels to rounding (<= 1e-12 relative in practice;
// identical accumulation order, only instruction selection may differ)
// and are bit-identical across thread counts and between the serial and
// pooled paths (the tile partition depends only on the shapes).
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/types.hpp"

namespace roarray::runtime {
class ThreadPool;
}

namespace roarray::linalg {

/// C = A B on raw column-major buffers: A is m x k, B is k x n, C is
/// m x n and is overwritten. Mirrors matmul's skip of exact-zero B
/// entries (a large win on soft-thresholded sparse iterates). Null pool
/// (or tiny problems) runs the identical tile schedule serially.
void gemm(index_t m, index_t n, index_t k, const cxd* a, const cxd* b,
          cxd* c, const runtime::ThreadPool* pool = nullptr);

/// C = A^H B on raw column-major buffers: A is k x m, B is k x n, C is
/// m x n and is overwritten (A^H is never formed).
void gemm_adj_left(index_t m, index_t n, index_t k, const cxd* a,
                   const cxd* b, cxd* c,
                   const runtime::ThreadPool* pool = nullptr);

/// Blocked drop-in for matmul(a, b). Throws on shape mismatch.
[[nodiscard]] CMat matmul_blocked(const CMat& a, const CMat& b,
                                  const runtime::ThreadPool* pool = nullptr);

/// Blocked drop-in for matmul_adj_left(a, b) (C = A^H B).
[[nodiscard]] CMat matmul_adj_left_blocked(
    const CMat& a, const CMat& b, const runtime::ThreadPool* pool = nullptr);

}  // namespace roarray::linalg
