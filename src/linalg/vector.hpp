// Dense vector over an arbitrary scalar (double or complex<double>).
#pragma once

#include <cmath>
#include <complex>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

#include "linalg/types.hpp"

namespace roarray::linalg {

namespace detail {

/// conj() that is the identity for real scalars, std::conj for complex.
inline double conj_scalar(double x) noexcept { return x; }
inline cxd conj_scalar(const cxd& x) noexcept { return std::conj(x); }

/// |x|^2 for real and complex scalars.
inline double abs_sq(double x) noexcept { return x * x; }
inline double abs_sq(const cxd& x) noexcept { return std::norm(x); }

}  // namespace detail

/// A dense, heap-backed mathematical vector.
///
/// Supports the small set of BLAS-1 style operations the rest of the
/// library needs. Element access is bounds-checked via at(); operator[]
/// is unchecked for hot loops.
template <typename T>
class Vector {
 public:
  Vector() = default;

  /// Zero-initialized vector of size n.
  explicit Vector(index_t n) : data_(static_cast<std::size_t>(require_size(n))) {}

  /// Vector of size n with every element equal to value.
  Vector(index_t n, T value)
      : data_(static_cast<std::size_t>(require_size(n)), value) {}

  Vector(std::initializer_list<T> init) : data_(init) {}

  /// Builds a vector by copying a span of elements.
  explicit Vector(std::span<const T> elems) : data_(elems.begin(), elems.end()) {}

  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(data_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  T& operator[](index_t i) noexcept { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](index_t i) const noexcept {
    return data_[static_cast<std::size_t>(i)];
  }

  /// Bounds-checked element access.
  T& at(index_t i) {
    check_index(i);
    return data_[static_cast<std::size_t>(i)];
  }
  const T& at(index_t i) const {
    check_index(i);
    return data_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<T> span() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_.data(), data_.size()};
  }

  auto begin() noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  auto begin() const noexcept { return data_.begin(); }
  auto end() const noexcept { return data_.end(); }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Resizes, zero-filling any new elements.
  void resize(index_t n) { data_.resize(static_cast<std::size_t>(require_size(n))); }

  Vector& operator+=(const Vector& rhs) {
    check_same_size(rhs);
    for (index_t i = 0; i < size(); ++i) (*this)[i] += rhs[i];
    return *this;
  }
  Vector& operator-=(const Vector& rhs) {
    check_same_size(rhs);
    for (index_t i = 0; i < size(); ++i) (*this)[i] -= rhs[i];
    return *this;
  }
  Vector& operator*=(T scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
  }

  [[nodiscard]] friend Vector operator+(Vector lhs, const Vector& rhs) {
    lhs += rhs;
    return lhs;
  }
  [[nodiscard]] friend Vector operator-(Vector lhs, const Vector& rhs) {
    lhs -= rhs;
    return lhs;
  }
  [[nodiscard]] friend Vector operator*(Vector lhs, T scalar) {
    lhs *= scalar;
    return lhs;
  }
  [[nodiscard]] friend Vector operator*(T scalar, Vector rhs) {
    rhs *= scalar;
    return rhs;
  }

 private:
  static index_t require_size(index_t n) {
    if (n < 0) throw std::invalid_argument("Vector: negative size");
    return n;
  }
  void check_index(index_t i) const {
    if (i < 0 || i >= size()) throw std::out_of_range("Vector::at: index out of range");
  }
  void check_same_size(const Vector& rhs) const {
    if (rhs.size() != size()) throw std::invalid_argument("Vector: size mismatch");
  }

  // Cache-line-aligned backing store (see kBufferAlign).
  std::vector<T, AlignedAllocator<T>> data_;
};

using CVec = Vector<cxd>;
using RVec = Vector<double>;

/// Inner product <x, y> = sum_i conj(x_i) * y_i  (conjugate-linear in x).
template <typename T>
[[nodiscard]] T dot(const Vector<T>& x, const Vector<T>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  T acc{};
  for (index_t i = 0; i < x.size(); ++i) acc += detail::conj_scalar(x[i]) * y[i];
  return acc;
}

/// Euclidean norm.
template <typename T>
[[nodiscard]] double norm2(const Vector<T>& x) {
  double acc = 0.0;
  for (index_t i = 0; i < x.size(); ++i) acc += detail::abs_sq(x[i]);
  return std::sqrt(acc);
}

/// Squared Euclidean norm.
template <typename T>
[[nodiscard]] double norm2_sq(const Vector<T>& x) {
  double acc = 0.0;
  for (index_t i = 0; i < x.size(); ++i) acc += detail::abs_sq(x[i]);
  return acc;
}

/// Sum of element magnitudes (the l1 norm used by the sparse solvers).
template <typename T>
[[nodiscard]] double norm1(const Vector<T>& x) {
  double acc = 0.0;
  for (index_t i = 0; i < x.size(); ++i) acc += std::abs(x[i]);
  return acc;
}

/// Largest element magnitude.
template <typename T>
[[nodiscard]] double norm_inf(const Vector<T>& x) {
  double acc = 0.0;
  for (index_t i = 0; i < x.size(); ++i) acc = std::max(acc, std::abs(x[i]));
  return acc;
}

/// y += alpha * x.
template <typename T>
void axpy(T alpha, const Vector<T>& x, Vector<T>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (index_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace roarray::linalg
