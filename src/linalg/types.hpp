// Basic scalar types and numeric tolerances shared across the library.
#pragma once

#include <complex>
#include <cstddef>
#include <new>

namespace roarray::linalg {

/// Complex double — the scalar type for all CSI and steering arithmetic.
using cxd = std::complex<double>;

/// Index type used throughout (signed arithmetic per ES.102).
using index_t = std::ptrdiff_t;

/// Allocation alignment for matrix/vector storage: one cache line,
/// which also satisfies any vector unit the SIMD backends use (32-byte
/// AVX, 16-byte NEON). Alignment is a property of the allocation, so it
/// survives moves and swaps — the buffer pointer changes owner, never
/// address (tests/linalg/test_backend.cpp asserts this).
inline constexpr std::size_t kBufferAlign = 64;

/// Minimal aligned allocator for the CMat/CVec backing stores. Equality
/// is stateless: any instance can free any other instance's memory.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static_assert(kBufferAlign % alignof(T) == 0,
                "kBufferAlign must satisfy the element type's alignment");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kBufferAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kBufferAlign});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Default relative tolerance for decomposition convergence tests.
inline constexpr double kDefaultTol = 1e-12;

/// Tolerance used to decide numerical rank (singular values below
/// kRankTol * sigma_max are treated as zero).
inline constexpr double kRankTol = 1e-10;

}  // namespace roarray::linalg
