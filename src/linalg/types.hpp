// Basic scalar types and numeric tolerances shared across the library.
#pragma once

#include <complex>
#include <cstddef>

namespace roarray::linalg {

/// Complex double — the scalar type for all CSI and steering arithmetic.
using cxd = std::complex<double>;

/// Index type used throughout (signed arithmetic per ES.102).
using index_t = std::ptrdiff_t;

/// Default relative tolerance for decomposition convergence tests.
inline constexpr double kDefaultTol = 1e-12;

/// Tolerance used to decide numerical rank (singular values below
/// kRankTol * sigma_max are treated as zero).
inline constexpr double kRankTol = 1e-10;

}  // namespace roarray::linalg
