#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace roarray::linalg {

CMat cholesky(const CMat& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix must be square");
  }
  const index_t n = a.rows();
  CMat l(n, n);
  for (index_t j = 0; j < n; ++j) {
    // Diagonal entry: sqrt(a_jj - sum_k |l_jk|^2), must be real positive.
    double diag = a(j, j).real();
    for (index_t k = 0; k < j; ++k) diag -= std::norm(l(j, k));
    if (diag <= 0.0 || !std::isfinite(diag)) {
      throw std::domain_error("cholesky: matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = cxd{ljj, 0.0};
    for (index_t i = j + 1; i < n; ++i) {
      cxd acc = a(i, j);
      for (index_t k = 0; k < j; ++k) acc -= l(i, k) * std::conj(l(j, k));
      l(i, j) = acc / ljj;
    }
  }
  return l;
}

CVec cholesky_solve(const CMat& l, const CVec& b) {
  const index_t n = l.rows();
  if (l.cols() != n) throw std::invalid_argument("cholesky_solve: L must be square");
  if (b.size() != n) throw std::invalid_argument("cholesky_solve: size mismatch");
  // Forward: L y = b.
  CVec y(n);
  for (index_t i = 0; i < n; ++i) {
    cxd acc = b[i];
    for (index_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  // Backward: L^H x = y.
  CVec x(n);
  for (index_t i = n - 1; i >= 0; --i) {
    cxd acc = y[i];
    for (index_t k = i + 1; k < n; ++k) acc -= std::conj(l(k, i)) * x[k];
    x[i] = acc / std::conj(l(i, i));
  }
  return x;
}

}  // namespace roarray::linalg
