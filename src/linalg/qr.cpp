#include "linalg/qr.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace roarray::linalg {

namespace {

/// Householder reflectors computed in-place on a working copy of A.
/// After factorize(), work holds R in its upper triangle and the
/// reflector vectors (below-diagonal part plus vs[k] head) elsewhere.
struct HouseholderQr {
  CMat work;                     // m x n, upper triangle = R
  std::vector<CVec> reflectors;  // reflector k has length m - k, unit 2-norm scaling baked in
  index_t m = 0;
  index_t n = 0;

  explicit HouseholderQr(const CMat& a) : work(a), m(a.rows()), n(a.cols()) {
    if (m < n) throw std::invalid_argument("qr: requires rows >= cols");
    reflectors.reserve(static_cast<std::size_t>(n));
    factorize();
  }

  void factorize() {
    for (index_t k = 0; k < n; ++k) {
      // Build the reflector for column k from work[k:m, k].
      CVec v(m - k);
      double xnorm_sq = 0.0;
      for (index_t i = k; i < m; ++i) {
        v[i - k] = work(i, k);
        xnorm_sq += std::norm(work(i, k));
      }
      const double xnorm = std::sqrt(xnorm_sq);
      if (xnorm > 0.0) {
        // alpha = -phase(x0) * ||x|| so that v = x - alpha e1 avoids cancellation.
        const cxd x0 = v[0];
        const cxd phase = std::abs(x0) > 0.0 ? x0 / std::abs(x0) : cxd{1.0, 0.0};
        const cxd alpha = -phase * xnorm;
        v[0] -= alpha;
        const double vnorm = norm2(v);
        if (vnorm > 0.0) {
          v *= cxd{1.0 / vnorm, 0.0};
          apply_reflector_to_trailing(v, k);
        }
        work(k, k) = alpha;
        for (index_t i = k + 1; i < m; ++i) work(i, k) = cxd{};
      }
      reflectors.push_back(std::move(v));
    }
  }

  /// Applies (I - 2 v v^H) to work[k:m, k+1:n].
  void apply_reflector_to_trailing(const CVec& v, index_t k) {
    for (index_t j = k + 1; j < n; ++j) {
      cxd dot_vx{};
      for (index_t i = k; i < m; ++i) dot_vx += std::conj(v[i - k]) * work(i, j);
      const cxd scale = 2.0 * dot_vx;
      for (index_t i = k; i < m; ++i) work(i, j) -= scale * v[i - k];
    }
  }

  /// Applies Q^H to a vector (in place), i.e. the reflectors in order.
  void apply_qh(CVec& b) const {
    for (index_t k = 0; k < n; ++k) {
      const CVec& v = reflectors[static_cast<std::size_t>(k)];
      if (v.size() == 0) continue;
      cxd dot_vb{};
      for (index_t i = k; i < m; ++i) dot_vb += std::conj(v[i - k]) * b[i];
      const cxd scale = 2.0 * dot_vb;
      for (index_t i = k; i < m; ++i) b[i] -= scale * v[i - k];
    }
  }

  /// Applies Q to a vector (in place), i.e. the reflectors in reverse.
  void apply_q(CVec& b) const {
    for (index_t k = n - 1; k >= 0; --k) {
      const CVec& v = reflectors[static_cast<std::size_t>(k)];
      if (v.size() == 0) continue;
      cxd dot_vb{};
      for (index_t i = k; i < m; ++i) dot_vb += std::conj(v[i - k]) * b[i];
      const cxd scale = 2.0 * dot_vb;
      for (index_t i = k; i < m; ++i) b[i] -= scale * v[i - k];
    }
  }

  /// Back-substitution on the n x n upper triangle of work.
  /// Solves R x = c[0:n]; throws if R has a (numerically) zero pivot.
  [[nodiscard]] CVec back_substitute(const CVec& c) const {
    const double pivot_tol = kRankTol * std::max(1.0, norm_max(work));
    CVec x(n);
    for (index_t i = n - 1; i >= 0; --i) {
      cxd acc = c[i];
      for (index_t j = i + 1; j < n; ++j) acc -= work(i, j) * x[j];
      const cxd rii = work(i, i);
      if (std::abs(rii) <= pivot_tol) {
        throw std::domain_error("qr solve: matrix is numerically rank deficient");
      }
      x[i] = acc / rii;
    }
    return x;
  }
};

}  // namespace

QrResult qr(const CMat& a) {
  HouseholderQr h(a);
  const index_t m = a.rows();
  const index_t n = a.cols();
  QrResult out;
  out.r = CMat(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) out.r(i, j) = h.work(i, j);
  // Thin Q: apply Q to the first n identity columns.
  out.q = CMat(m, n);
  for (index_t j = 0; j < n; ++j) {
    CVec e(m);
    e[j] = cxd{1.0, 0.0};
    h.apply_q(e);
    out.q.set_col(j, e);
  }
  return out;
}

CVec lstsq(const CMat& a, const CVec& b) {
  if (b.size() != a.rows()) throw std::invalid_argument("lstsq: size mismatch");
  HouseholderQr h(a);
  CVec c = b;
  h.apply_qh(c);
  return h.back_substitute(c);
}

CVec solve(const CMat& a, const CVec& b) {
  if (a.rows() != a.cols()) throw std::invalid_argument("solve: matrix must be square");
  return lstsq(a, b);
}

CMat solve(const CMat& a, const CMat& b) {
  if (a.rows() != a.cols()) throw std::invalid_argument("solve: matrix must be square");
  if (b.rows() != a.rows()) throw std::invalid_argument("solve: shape mismatch");
  HouseholderQr h(a);
  CMat x(a.cols(), b.cols());
  for (index_t j = 0; j < b.cols(); ++j) {
    CVec c = b.col_vec(j);
    h.apply_qh(c);
    x.set_col(j, h.back_substitute(c));
  }
  return x;
}

}  // namespace roarray::linalg
